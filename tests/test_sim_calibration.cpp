// Calibration anchor regression tests: every number of the paper's
// evaluation that the DES was calibrated against, asserted with a
// tolerance band. These are the repository's "the reproduction still
// reproduces" net — if a model change drifts a cell beyond its band,
// these tests name the exact figure and cell that broke.
#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace crfs::sim {
namespace {

struct Anchor {
  const char* name;
  mpi::LuClass cls;
  BackendKind backend;
  FsMode mode;
  double paper_seconds;
  double tolerance;  ///< relative (0.3 = +/-30%)
};

class CalibrationAnchor : public ::testing::TestWithParam<Anchor> {};

TEST_P(CalibrationAnchor, WithinBand) {
  const Anchor& a = GetParam();
  ExperimentConfig cfg;
  cfg.stack = mpi::Stack::kMvapich2;
  cfg.lu_class = a.cls;
  cfg.backend = a.backend;
  cfg.mode = a.mode;
  const double measured = run_experiment(cfg).mean_rank_seconds;
  EXPECT_NEAR(measured, a.paper_seconds, a.paper_seconds * a.tolerance)
      << a.name << ": measured " << measured << " s vs paper " << a.paper_seconds
      << " s (band +/-" << a.tolerance * 100 << "%)";
}

// Fig 6 (MVAPICH2), all nine cells, native and CRFS. Bands reflect how
// tightly each cell was fitted (EXPERIMENTS.md discusses the loose ones).
INSTANTIATE_TEST_SUITE_P(
    Fig6, CalibrationAnchor,
    ::testing::Values(
        Anchor{"ext3_B_native", mpi::LuClass::kB, BackendKind::kExt3, FsMode::kNative, 1.9, 0.35},
        Anchor{"ext3_B_crfs", mpi::LuClass::kB, BackendKind::kExt3, FsMode::kCrfs, 0.5, 0.35},
        Anchor{"ext3_C_native", mpi::LuClass::kC, BackendKind::kExt3, FsMode::kNative, 2.9, 0.30},
        Anchor{"ext3_C_crfs", mpi::LuClass::kC, BackendKind::kExt3, FsMode::kCrfs, 0.9, 0.30},
        Anchor{"ext3_D_native", mpi::LuClass::kD, BackendKind::kExt3, FsMode::kNative, 19.0, 0.25},
        Anchor{"ext3_D_crfs", mpi::LuClass::kD, BackendKind::kExt3, FsMode::kCrfs, 17.2, 0.25},
        Anchor{"lustre_B_native", mpi::LuClass::kB, BackendKind::kLustre, FsMode::kNative, 4.0, 0.35},
        Anchor{"lustre_B_crfs", mpi::LuClass::kB, BackendKind::kLustre, FsMode::kCrfs, 0.5, 0.35},
        Anchor{"lustre_C_native", mpi::LuClass::kC, BackendKind::kLustre, FsMode::kNative, 6.0, 0.30},
        Anchor{"lustre_C_crfs", mpi::LuClass::kC, BackendKind::kLustre, FsMode::kCrfs, 1.1, 0.30},
        Anchor{"lustre_D_native", mpi::LuClass::kD, BackendKind::kLustre, FsMode::kNative, 29.3, 0.30},
        Anchor{"lustre_D_crfs", mpi::LuClass::kD, BackendKind::kLustre, FsMode::kCrfs, 20.7, 0.30},
        Anchor{"nfs_B_native", mpi::LuClass::kB, BackendKind::kNfs, FsMode::kNative, 35.5, 0.30},
        Anchor{"nfs_B_crfs", mpi::LuClass::kB, BackendKind::kNfs, FsMode::kCrfs, 10.4, 0.30},
        Anchor{"nfs_C_native", mpi::LuClass::kC, BackendKind::kNfs, FsMode::kNative, 45.3, 0.30},
        Anchor{"nfs_C_crfs", mpi::LuClass::kC, BackendKind::kNfs, FsMode::kCrfs, 21.3, 0.30},
        Anchor{"nfs_D_native", mpi::LuClass::kD, BackendKind::kNfs, FsMode::kNative, 159.4, 0.25},
        Anchor{"nfs_D_crfs", mpi::LuClass::kD, BackendKind::kNfs, FsMode::kCrfs, 163.4, 0.25}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

// Fig 9 anchors: reduction percentages at the endpoints.
TEST(CalibrationFig9, EndpointReductions) {
  const auto at1 = run_cell(mpi::Stack::kMvapich2, mpi::LuClass::kD,
                            BackendKind::kLustre, 16, 1);
  const double red1 = 1.0 - at1.crfs_seconds / at1.native_seconds;
  EXPECT_NEAR(red1, 0.076, 0.08) << "paper: -7.6% at 1 ppn";

  const auto at8 = run_cell(mpi::Stack::kMvapich2, mpi::LuClass::kD,
                            BackendKind::kLustre, 16, 8);
  const double red8 = 1.0 - at8.crfs_seconds / at8.native_seconds;
  EXPECT_NEAR(red8, 0.296, 0.10) << "paper: -29.6% at 8 ppn";
}

// Fig 3 anchor: native per-process spread ~2x.
TEST(CalibrationFig3, NativeSpreadNearTwo) {
  ExperimentConfig cfg;
  cfg.lu_class = mpi::LuClass::kC;
  cfg.nodes = 8;
  cfg.backend = BackendKind::kExt3;
  cfg.mode = FsMode::kNative;
  const double spread = run_experiment(cfg).spread();
  EXPECT_GT(spread, 1.6);
  EXPECT_LT(spread, 2.6);
}

// Headline: the abstract's "up to 5.5X speedup in checkpoint writing
// performance to Lustre" (LU class C).
TEST(CalibrationHeadline, LustreClassC) {
  const auto cell = run_cell(mpi::Stack::kMvapich2, mpi::LuClass::kC, BackendKind::kLustre);
  EXPECT_NEAR(cell.speedup(), 5.5, 2.0);
}

// Abstract: "Up to 8X speedup is obtained if CRFS is used with ext3" —
// across the three stacks' B/C cells, the best ext3 speedup is multi-X.
TEST(CalibrationHeadline, BestExt3SpeedupMultiX) {
  double best = 0;
  for (const auto stack : {mpi::Stack::kMvapich2, mpi::Stack::kMpich2, mpi::Stack::kOpenMpi}) {
    for (const auto cls : {mpi::LuClass::kB, mpi::LuClass::kC}) {
      best = std::max(best, run_cell(stack, cls, BackendKind::kExt3).speedup());
    }
  }
  EXPECT_GT(best, 2.5);
}

// §V-C: "Checkpoint time with Lustre is reduced by 29% for LU class D."
TEST(CalibrationHeadline, LustreClassDReduction) {
  const auto cell = run_cell(mpi::Stack::kMvapich2, mpi::LuClass::kD, BackendKind::kLustre);
  const double reduction = 1.0 - cell.crfs_seconds / cell.native_seconds;
  EXPECT_NEAR(reduction, 0.29, 0.10);
}

}  // namespace
}  // namespace crfs::sim
