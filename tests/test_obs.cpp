// Tests for the crfs::obs subsystem: histogram bucket/percentile math,
// registry snapshot consistency under concurrent writers, TraceRing
// wraparound, Chrome-trace JSON well-formedness (parsed back with
// json_lite), and the pipeline integration contract — per-stage
// histograms fill during a multi-file checkpoint, span events appear only
// when Config::enable_tracing is set.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "backend/mem_backend.h"
#include "backend/wrappers.h"
#include "common/units.h"
#include "crfs/crfs.h"
#include "crfs/fuse_shim.h"
#include "obs/chrome_trace.h"
#include "obs/epoch.h"
#include "obs/health.h"
#include "obs/json_lite.h"
#include "obs/metrics.h"
#include "obs/prom.h"
#include "obs/sampler.h"
#include "obs/slow_store.h"
#include "obs/trace.h"
#include "sim/crfs_sim.h"
#include "sim/engine.h"

namespace crfs {
namespace {

using obs::HistogramSnapshot;
using obs::LatencyHistogram;

// ------------------------------------------------------------ histograms

TEST(LatencyHistogram, BucketBoundaries) {
  // Bucket 0 holds only 0; bucket i holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(LatencyHistogram::bucket_index(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(1), 1);
  EXPECT_EQ(LatencyHistogram::bucket_index(2), 2);
  EXPECT_EQ(LatencyHistogram::bucket_index(3), 2);
  EXPECT_EQ(LatencyHistogram::bucket_index(4), 3);
  EXPECT_EQ(LatencyHistogram::bucket_index(7), 3);
  EXPECT_EQ(LatencyHistogram::bucket_index(8), 4);
  EXPECT_EQ(LatencyHistogram::bucket_index(1023), 10);
  EXPECT_EQ(LatencyHistogram::bucket_index(1024), 11);
  EXPECT_EQ(LatencyHistogram::bucket_index(~std::uint64_t{0}), 64);

  for (int i = 0; i <= 64; ++i) {
    EXPECT_EQ(LatencyHistogram::bucket_index(LatencyHistogram::bucket_lo(i)), i);
    EXPECT_EQ(LatencyHistogram::bucket_index(LatencyHistogram::bucket_hi(i)), i);
  }
  EXPECT_EQ(LatencyHistogram::bucket_lo(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_hi(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_lo(11), 1024u);
  EXPECT_EQ(LatencyHistogram::bucket_hi(11), 2047u);
}

TEST(LatencyHistogram, CountSumMax) {
  LatencyHistogram h;
  h.record(5);
  h.record(100);
  h.record(0);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 105u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_EQ(s.buckets[0], 1u);                                  // the 0
  EXPECT_EQ(s.buckets[LatencyHistogram::bucket_index(5)], 1u);
  EXPECT_EQ(s.buckets[LatencyHistogram::bucket_index(100)], 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 35.0);
}

TEST(LatencyHistogram, PercentilesLandInTheRightBucket) {
  LatencyHistogram h;
  // 90 fast ops (bucket of 100) and 10 slow ones (bucket of 10000).
  for (int i = 0; i < 90; ++i) h.record(100);
  for (int i = 0; i < 10; ++i) h.record(10000);
  const HistogramSnapshot s = h.snapshot();

  const double p50 = s.p50();
  EXPECT_GE(p50, LatencyHistogram::bucket_lo(LatencyHistogram::bucket_index(100)));
  EXPECT_LE(p50, LatencyHistogram::bucket_hi(LatencyHistogram::bucket_index(100)));

  const double p99 = s.p99();
  EXPECT_GE(p99, LatencyHistogram::bucket_lo(LatencyHistogram::bucket_index(10000)));
  EXPECT_LE(p99, 10000.0);  // clamped by the recorded max

  // Quantiles are monotone in q.
  EXPECT_LE(s.quantile(0.1), s.quantile(0.5));
  EXPECT_LE(s.quantile(0.5), s.quantile(0.9));
  EXPECT_LE(s.quantile(0.9), s.quantile(1.0));
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10000.0);
}

TEST(LatencyHistogram, EmptyQuantileIsZero) {
  const HistogramSnapshot s = LatencyHistogram{}.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

// -------------------------------------------------------------- registry

TEST(Registry, GetOrCreateReturnsStableReferences) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("crfs.test.counter");
  obs::Counter& b = reg.counter("crfs.test.counter");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  reg.gauge("crfs.test.gauge").set(-7);
  reg.gauge_fn("crfs.test.sampled", [] { return std::int64_t{42}; });
  reg.histogram("crfs.test.lat_ns").record(10);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "crfs.test.counter");
  EXPECT_EQ(snap.counters[0].second, 3u);
  ASSERT_EQ(snap.gauges.size(), 2u);  // plain gauge + callback gauge
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
  // Callback gauge was sampled at snapshot time.
  bool saw_sampled = false;
  for (const auto& [name, v] : snap.gauges) {
    if (name == "crfs.test.sampled") {
      saw_sampled = true;
      EXPECT_EQ(v, 42);
    }
  }
  EXPECT_TRUE(saw_sampled);
}

TEST(Registry, SnapshotConsistentUnderConcurrentWriters) {
  obs::Registry reg;
  obs::Counter& counter = reg.counter("c");
  LatencyHistogram& hist = reg.histogram("h");

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add(1);
        hist.record(static_cast<std::uint64_t>(i % 1000));
      }
    });
  }
  // Snapshot continuously while writers run: counts must be monotone and
  // internally consistent (quantile math never sees count > bucket sum).
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!stop.load()) {
      const auto snap = reg.snapshot();
      EXPECT_GE(snap.counters[0].second, last);
      last = snap.counters[0].second;
      const HistogramSnapshot hs = snap.histograms[0].second;
      std::uint64_t bucketed = 0;
      for (auto b : hs.buckets) bucketed += b;
      EXPECT_LE(hs.count, bucketed);
      (void)hs.p99();  // must not crash or hang mid-race
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();

  const auto final_snap = reg.snapshot();
  EXPECT_EQ(final_snap.counters[0].second,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(final_snap.histograms[0].second.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Registry, JsonRendersAndParses) {
  obs::Registry reg;
  reg.counter("crfs.io.pwrite_bytes").add(4096);
  reg.gauge("crfs.queue.depth").set(2);
  reg.histogram("crfs.io.pwrite_ns").record(1500);
  const std::string json = reg.snapshot().to_json();
  auto parsed = obs::json::parse(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  const auto* counters = parsed->get("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->get("crfs.io.pwrite_bytes"), nullptr);
  EXPECT_DOUBLE_EQ(counters->get("crfs.io.pwrite_bytes")->number, 4096.0);
  const auto* hists = parsed->get("histograms");
  ASSERT_NE(hists, nullptr);
  const auto* pwrite = hists->get("crfs.io.pwrite_ns");
  ASSERT_NE(pwrite, nullptr);
  EXPECT_DOUBLE_EQ(pwrite->get("count")->number, 1.0);
  EXPECT_DOUBLE_EQ(pwrite->get("max")->number, 1500.0);
}

TEST(MountStatsSnapshot, CopiesAllCounters) {
  MountStats stats;
  stats.app_writes.store(3);
  stats.app_bytes.store(1024);
  stats.chunk_steals.store(1);
  const MountStats::Snapshot s = stats.snapshot();
  EXPECT_EQ(s.app_writes, 3u);
  EXPECT_EQ(s.app_bytes, 1024u);
  EXPECT_EQ(s.chunk_steals, 1u);
  EXPECT_EQ(s.full_flushes, 0u);
}

// ------------------------------------------------------------- TraceRing

TEST(TraceRing, RecordsAndSnapshotsInOrder) {
  obs::TraceRing ring(7, 16);
  ring.record("a", 100, 10);
  ring.record("b", 200, 20);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_EQ(events[0].ts_ns, 100u);
  EXPECT_EQ(events[0].dur_ns, 10u);
  EXPECT_EQ(events[0].tid, 7u);
  EXPECT_STREQ(events[1].name, "b");
}

TEST(TraceRing, WraparoundKeepsTheLatestEvents) {
  constexpr std::size_t kCapacity = 64;
  obs::TraceRing ring(0, kCapacity);
  constexpr std::uint64_t kTotal = 1000;
  for (std::uint64_t i = 0; i < kTotal; ++i) ring.record("e", i, 1);
  EXPECT_EQ(ring.recorded(), kTotal);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), kCapacity);
  // Oldest-first, covering exactly the last kCapacity timestamps.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, kTotal - kCapacity + i);
  }
}

TEST(TraceCollector, PerThreadRingsMergeSorted) {
  obs::TraceCollector collector(128);
  collector.set_enabled(true);
  std::thread t1([&] { collector.ring().record("t1", 50, 5); });
  std::thread t2([&] { collector.ring().record("t2", 10, 5); });
  t1.join();
  t2.join();
  collector.ring().record("main", 30, 5);
  EXPECT_EQ(collector.ring_count(), 3u);
  const auto events = collector.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].ts_ns, 10u);  // sorted by begin time
  EXPECT_EQ(events[1].ts_ns, 30u);
  EXPECT_EQ(events[2].ts_ns, 50u);
  // Distinct rings got distinct lane ids.
  EXPECT_NE(events[0].tid, events[2].tid);
}

TEST(TraceSpan, NoOpWhenDisabled) {
  obs::TraceCollector collector(16);
  { obs::TraceSpan span(collector, "skipped"); }
  EXPECT_EQ(collector.total_recorded(), 0u);
  EXPECT_EQ(collector.ring_count(), 0u);  // not even a ring allocated
  collector.set_enabled(true);
  { obs::TraceSpan span(collector, "kept"); }
  EXPECT_EQ(collector.total_recorded(), 1u);
}

// ---------------------------------------------------------- Chrome trace

TEST(ChromeTrace, EmitsWellFormedTraceEventJson) {
  std::vector<obs::TraceEvent> events;
  events.push_back({"write", 0, 1500, 2500});
  events.push_back({"pwrite", 1, 3000, 10000});
  const std::string json = obs::to_chrome_json(events);

  auto parsed = obs::json::parse(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  ASSERT_TRUE(parsed->is_object());
  const auto* trace_events = parsed->get("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());
  ASSERT_EQ(trace_events->array->size(), 2u);

  // Schema check: every event carries the fields chrome://tracing and
  // Perfetto require for a complete ("X") event.
  for (const auto& ev : *trace_events->array) {
    ASSERT_TRUE(ev.is_object());
    ASSERT_NE(ev.get("name"), nullptr);
    EXPECT_TRUE(ev.get("name")->is_string());
    ASSERT_NE(ev.get("ph"), nullptr);
    EXPECT_EQ(ev.get("ph")->string, "X");
    for (const char* field : {"pid", "tid", "ts", "dur"}) {
      ASSERT_NE(ev.get(field), nullptr) << field;
      EXPECT_TRUE(ev.get(field)->is_number()) << field;
    }
  }
  // Microsecond conversion: 1500 ns -> 1.5 us.
  EXPECT_DOUBLE_EQ((*trace_events->array)[0].get("ts")->number, 1.5);
  EXPECT_DOUBLE_EQ((*trace_events->array)[0].get("dur")->number, 2.5);
}

TEST(ChromeTrace, WritesFileThatParsesBack) {
  std::vector<obs::TraceEvent> events;
  events.push_back({"drain", 2, 0, 42});
  const std::string path = ::testing::TempDir() + "crfs_trace_test.json";
  ASSERT_TRUE(obs::write_chrome_trace(path, events).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  auto parsed = obs::json::parse(content);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get("traceEvents")->array->size(), 1u);
}

// ----------------------------------------------- pipeline integration

// Multi-file checkpoint through FuseShim with small chunks so every stage
// (copy, queue wait, pwrite, drain) sees real traffic.
std::unique_ptr<Crfs> run_checkpoint(bool tracing) {
  Config cfg;
  cfg.chunk_size = 64 * KiB;
  cfg.pool_size = 256 * KiB;
  cfg.io_threads = 2;
  cfg.enable_tracing = tracing;
  cfg.trace_ring_events = 4096;
  auto fs = Crfs::mount(std::make_shared<MemBackend>(), cfg);
  EXPECT_TRUE(fs.ok());
  FuseShim shim(*fs.value(), FuseOptions{});

  std::vector<std::thread> ranks;
  for (int r = 0; r < 3; ++r) {
    ranks.emplace_back([&, r] {
      const std::string path = "rank" + std::to_string(r) + ".ckpt";
      std::vector<std::byte> record(32 * KiB, static_cast<std::byte>(r));
      auto h = shim.open(path, {.create = true, .truncate = true, .write = true});
      ASSERT_TRUE(h.ok());
      for (std::size_t off = 0; off < 2 * MiB; off += record.size()) {
        ASSERT_TRUE(shim.write(h.value(), record, off).ok());
      }
      ASSERT_TRUE(shim.fsync(h.value()).ok());
      ASSERT_TRUE(shim.close(h.value()).ok());
    });
  }
  for (auto& t : ranks) t.join();
  return std::move(fs.value());
}

TEST(PipelineObs, StageHistogramsFillDuringCheckpoint) {
  auto fs = run_checkpoint(/*tracing=*/true);

  // 3 ranks x 2 MiB / 64 KiB chunks = 96 full chunks (+ drain partials).
  const auto snap = fs->metrics().snapshot();
  auto hist = [&](const std::string& name) -> const HistogramSnapshot* {
    for (const auto& [n, h] : snap.histograms) {
      if (n == name) return &h;
    }
    return nullptr;
  };
  const auto* queue_wait = hist("crfs.queue.wait_ns");
  ASSERT_NE(queue_wait, nullptr);
  EXPECT_GE(queue_wait->count, 96u);
  const auto* pwrite = hist("crfs.io.pwrite_ns");
  ASSERT_NE(pwrite, nullptr);
  // One record per BACKEND CALL: batched dequeue coalesces up to io_batch
  // adjacent chunks into a single call, so the floor is 96 / io_batch.
  EXPECT_GE(pwrite->count, 96u / fs->config().io_batch);
  const auto* batch_hist = hist("crfs.io.batch_chunks");
  ASSERT_NE(batch_hist, nullptr);
  EXPECT_GE(batch_hist->count, 1u);  // one record per pop_batch
  const auto* copy = hist("crfs.write.copy_ns");
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->count, 3u * (2 * MiB / (32 * KiB)));  // one per app write
  const auto* drain = hist("crfs.drain.wait_ns");
  ASSERT_NE(drain, nullptr);
  EXPECT_GE(drain->count, 3u);  // one per fsync and close at least

  // Counters agree with the data volume.
  bool saw_bytes = false;
  for (const auto& [name, v] : snap.counters) {
    if (name == "crfs.io.pwrite_bytes") {
      saw_bytes = true;
      EXPECT_EQ(v, 3u * 2 * MiB);
    }
  }
  EXPECT_TRUE(saw_bytes);

  // Span events captured for every instrumented stage.
  const auto events = fs->trace().snapshot();
  ASSERT_FALSE(events.empty());
  bool saw_write = false, saw_pwrite = false, saw_drain = false, saw_flush = false;
  for (const auto& ev : events) {
    const std::string name = ev.name;
    saw_write |= name == "write";
    saw_pwrite |= name == "pwrite";
    saw_drain |= name == "drain";
    saw_flush |= name == "flush";
  }
  EXPECT_TRUE(saw_write);
  EXPECT_TRUE(saw_pwrite);
  EXPECT_TRUE(saw_drain);
  EXPECT_TRUE(saw_flush);

  // The exported trace passes the same schema check as ChromeTrace above.
  const std::string path = ::testing::TempDir() + "crfs_pipeline_trace.json";
  ASSERT_TRUE(fs->export_trace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  auto parsed = obs::json::parse(content);
  ASSERT_TRUE(parsed.has_value());
  const auto* trace_events = parsed->get("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  EXPECT_EQ(trace_events->array->size(), events.size());
}

TEST(PipelineObs, TracingOffLeavesSpansEmptyButCountersOn) {
  auto fs = run_checkpoint(/*tracing=*/false);

  // Spans: exactly none — no ring was even allocated.
  EXPECT_EQ(fs->trace().snapshot().size(), 0u);
  EXPECT_EQ(fs->trace().total_recorded(), 0u);

  // Counters and histograms: still fully populated.
  EXPECT_EQ(fs->stats().snapshot().app_bytes, 3u * 2 * MiB);
  const auto snap = fs->metrics().snapshot();
  for (const auto& [name, h] : snap.histograms) {
    if (name == "crfs.queue.wait_ns" || name == "crfs.io.pwrite_ns" ||
        name == "crfs.write.copy_ns") {
      EXPECT_GT(h.count, 0u) << name;
    }
  }
}

TEST(PipelineObs, StatsReportAndJson) {
  auto fs = run_checkpoint(/*tracing=*/false);
  const std::string report = fs->stats_report();
  EXPECT_NE(report.find("app_writes"), std::string::npos);
  EXPECT_NE(report.find("crfs.io.pwrite_ns"), std::string::npos);
  EXPECT_NE(report.find("crfs.queue.wait_ns"), std::string::npos);
  EXPECT_NE(report.find("p99"), std::string::npos);

  auto parsed = obs::json::parse(fs->stats_json());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_NE(parsed->get("mount"), nullptr);
  EXPECT_DOUBLE_EQ(parsed->get("mount")->get("app_bytes")->number,
                   static_cast<double>(3u * 2 * MiB));
  ASSERT_NE(parsed->get("pipeline"), nullptr);
  EXPECT_NE(parsed->get("pipeline")->get("histograms"), nullptr);
}

// ------------------------------------------------------------ sim engine

// --------------------------------------------------------------- sampler

TEST(Sampler, TickComputesWindowedRates) {
  obs::Registry reg;
  obs::Counter& bytes = reg.counter("crfs.io.pwrite_bytes");
  LatencyHistogram& lat = reg.histogram("crfs.io.pwrite_ns");
  obs::Sampler sampler(reg);

  bytes.add(1000);
  lat.record(50);
  const obs::Sample s0 = sampler.tick(1'000'000'000);
  EXPECT_EQ(s0.seq, 0u);
  EXPECT_EQ(s0.dt_ns, 0u);  // first frame has no window
  ASSERT_NE(s0.counter_rate("crfs.io.pwrite_bytes"), nullptr);
  EXPECT_EQ(s0.counter_rate("crfs.io.pwrite_bytes")->delta, 0u);

  bytes.add(4096);
  lat.record(60);
  lat.record(70);
  const obs::Sample s1 = sampler.tick(2'000'000'000);  // 1 s later
  EXPECT_EQ(s1.seq, 1u);
  EXPECT_EQ(s1.dt_ns, 1'000'000'000u);
  const obs::Rate* br = s1.counter_rate("crfs.io.pwrite_bytes");
  ASSERT_NE(br, nullptr);
  EXPECT_EQ(br->delta, 4096u);
  EXPECT_DOUBLE_EQ(br->per_sec, 4096.0);
  const obs::Rate* hr = s1.histogram_rate("crfs.io.pwrite_ns");
  ASSERT_NE(hr, nullptr);
  EXPECT_EQ(hr->delta, 2u);  // two pwrites completed in the window
  EXPECT_DOUBLE_EQ(hr->per_sec, 2.0);

  EXPECT_EQ(s1.counter_rate("no.such.metric"), nullptr);
  EXPECT_EQ(s1.gauge("no.such.metric"), std::nullopt);
  EXPECT_EQ(sampler.samples_taken(), 2u);
}

TEST(Sampler, GaugeAndHistogramLookups) {
  obs::Registry reg;
  reg.gauge("crfs.queue.depth").set(7);
  reg.gauge_fn("crfs.pool.free_chunks", [] { return std::int64_t{3}; });
  reg.histogram("crfs.io.pwrite_ns").record(123);
  obs::Sampler sampler(reg);
  const obs::Sample s = sampler.tick(1);
  EXPECT_EQ(s.gauge("crfs.queue.depth"), 7);
  EXPECT_EQ(s.gauge("crfs.pool.free_chunks"), 3);
  const obs::HistogramSnapshot* h = s.histogram("crfs.io.pwrite_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
}

TEST(Sampler, RingEvictsOldestFrames) {
  obs::Registry reg;
  obs::Sampler sampler(reg, obs::SamplerOptions{.ring_capacity = 4});
  for (std::uint64_t i = 0; i < 10; ++i) sampler.tick(i * 1000);
  EXPECT_EQ(sampler.samples_taken(), 10u);
  const auto win = sampler.window(100);
  ASSERT_EQ(win.size(), 4u);  // bounded by capacity
  EXPECT_EQ(win.front().seq, 6u);
  EXPECT_EQ(win.back().seq, 9u);  // oldest-first
  ASSERT_TRUE(sampler.latest().has_value());
  EXPECT_EQ(sampler.latest()->seq, 9u);
  EXPECT_EQ(sampler.window(2).size(), 2u);
}

TEST(Sampler, BackgroundThreadTicksAndStops) {
  obs::Registry reg;
  reg.counter("c").add(1);
  obs::Sampler sampler(reg);
  EXPECT_FALSE(sampler.running());
  sampler.start(std::chrono::milliseconds(1));
  EXPECT_TRUE(sampler.running());
  for (int i = 0; i < 500 && sampler.samples_taken() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.samples_taken(), 3u);
  const std::uint64_t after_stop = sampler.samples_taken();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(sampler.samples_taken(), after_stop);  // really stopped
  sampler.stop();                                  // idempotent
}

// ---------------------------------------------------------------- health

// Synthetic telemetry source: health rules read gauges/counters we control
// directly, ticked on a hand-rolled virtual clock.
struct HealthRig {
  obs::Registry reg;
  std::int64_t free_chunks = 8;
  std::int64_t depth = 0;
  obs::LatencyHistogram* pwrite_ns = nullptr;
  obs::Counter* errors = nullptr;
  obs::EventBuffer events;
  obs::Sampler sampler;
  obs::HealthMonitor monitor;
  std::uint64_t now_ns = 0;

  explicit HealthRig(obs::HealthConfig cfg)
      : events(64), sampler(reg), monitor(cfg, events) {
    reg.gauge_fn("crfs.pool.free_chunks", [this] { return free_chunks; });
    reg.gauge_fn("crfs.queue.depth", [this] { return depth; });
    pwrite_ns = &reg.histogram("crfs.io.pwrite_ns");
    errors = &reg.counter("crfs.io.pwrite_errors");
    sampler.set_health_monitor(&monitor);
  }

  void tick() {
    now_ns += 10'000'000;  // 10 ms frames
    sampler.tick(now_ns);
  }

  std::vector<obs::Event> fired(const std::string& rule) const {
    std::vector<obs::Event> out;
    for (const auto& e : events.snapshot()) {
      if (e.rule == rule) out.push_back(e);
    }
    return out;
  }
};

TEST(HealthMonitor, PoolStarvationIsEdgeTriggeredWithHysteresis) {
  HealthRig rig({.starvation_samples = 3});
  rig.tick();  // healthy baseline
  rig.free_chunks = 0;
  rig.tick();
  rig.tick();
  EXPECT_EQ(rig.fired("pool_starvation").size(), 0u);  // run of 2 < 3
  rig.tick();
  ASSERT_EQ(rig.fired("pool_starvation").size(), 1u);  // fires on 3rd
  const obs::Event ev = rig.fired("pool_starvation")[0];
  EXPECT_EQ(ev.severity, obs::Severity::kWarning);
  EXPECT_DOUBLE_EQ(ev.threshold, 3.0);
  EXPECT_GT(ev.ts_ns, 0u);

  // Still starved: no re-fire while the condition holds.
  for (int i = 0; i < 10; ++i) rig.tick();
  EXPECT_EQ(rig.fired("pool_starvation").size(), 1u);

  // Recovery re-arms; a fresh run fires again.
  rig.free_chunks = 4;
  rig.tick();
  rig.free_chunks = 0;
  for (int i = 0; i < 3; ++i) rig.tick();
  EXPECT_EQ(rig.fired("pool_starvation").size(), 2u);
}

TEST(HealthMonitor, QueueStallNeedsDepthAndZeroCompletions) {
  HealthRig rig({.stall_samples = 2});
  rig.tick();
  rig.depth = 5;
  rig.tick();
  rig.tick();
  ASSERT_EQ(rig.fired("queue_stall").size(), 1u);
  EXPECT_EQ(rig.fired("queue_stall")[0].severity, obs::Severity::kCritical);

  // Progress (a pwrite completion in the window) clears the run even
  // though depth stays positive.
  rig.pwrite_ns->record(100);
  rig.tick();
  rig.tick();  // no completion this window, run restarts at 1
  EXPECT_EQ(rig.fired("queue_stall").size(), 1u);
  rig.tick();  // run reaches 2 again -> second stall
  EXPECT_EQ(rig.fired("queue_stall").size(), 2u);

  // Empty queue never stalls, no matter how idle.
  HealthRig idle({.stall_samples = 2});
  for (int i = 0; i < 10; ++i) idle.tick();
  EXPECT_EQ(idle.fired("queue_stall").size(), 0u);
}

TEST(HealthMonitor, SlowPwriteComparesP99AgainstThreshold) {
  HealthRig rig({.slow_pwrite_p99_ns = 1'000'000});
  for (int i = 0; i < 100; ++i) rig.pwrite_ns->record(10'000);  // 10 us: fine
  rig.tick();
  EXPECT_EQ(rig.fired("slow_pwrite").size(), 0u);
  for (int i = 0; i < 100; ++i) rig.pwrite_ns->record(50'000'000);  // 50 ms
  rig.tick();
  ASSERT_EQ(rig.fired("slow_pwrite").size(), 1u);
  EXPECT_GT(rig.fired("slow_pwrite")[0].value, 1'000'000.0);
  rig.tick();  // p99 still high: hysteresis, no second event
  EXPECT_EQ(rig.fired("slow_pwrite").size(), 1u);

  // Disabled by default (threshold 0).
  HealthRig off({});
  for (int i = 0; i < 100; ++i) off.pwrite_ns->record(50'000'000);
  off.tick();
  EXPECT_EQ(off.fired("slow_pwrite").size(), 0u);
}

TEST(HealthMonitor, ErrorBurstIsPerWindow) {
  HealthRig rig({.error_burst = 2});
  rig.tick();
  rig.errors->add(1);
  rig.tick();  // 1 new error < 2
  EXPECT_EQ(rig.fired("error_burst").size(), 0u);
  rig.errors->add(3);
  rig.tick();  // 3 new errors >= 2
  ASSERT_EQ(rig.fired("error_burst").size(), 1u);
  EXPECT_DOUBLE_EQ(rig.fired("error_burst")[0].value, 3.0);
  rig.tick();  // no new errors: totals stay high but the window is clean
  EXPECT_EQ(rig.fired("error_burst").size(), 1u);
  rig.errors->add(2);
  rig.tick();  // bursts are per-window, not edge-triggered
  EXPECT_EQ(rig.fired("error_burst").size(), 2u);
}

TEST(HealthMonitor, IdenticalConsecutiveSamplesNeverDuplicateEvents) {
  // Arm every edge-triggered rule at once, then freeze the world: with
  // nothing changing between samples, each rule must have fired exactly
  // once no matter how many identical frames follow.
  HealthRig rig({.starvation_samples = 2,
                 .stall_samples = 2,
                 .slow_pwrite_p99_ns = 1'000'000});
  rig.tick();  // healthy baseline
  rig.free_chunks = 0;
  rig.depth = 3;
  for (int i = 0; i < 100; ++i) rig.pwrite_ns->record(50'000'000);
  rig.tick();  // sees the pwrite burst: slow_pwrite fires, stall run resets
  rig.tick();  // starvation run reaches 2 and fires
  rig.tick();  // stall run reaches 2 (no completions since) and fires
  ASSERT_EQ(rig.fired("pool_starvation").size(), 1u);
  ASSERT_EQ(rig.fired("queue_stall").size(), 1u);
  ASSERT_EQ(rig.fired("slow_pwrite").size(), 1u);

  const std::uint64_t total_after_fire = rig.events.total();
  for (int i = 0; i < 50; ++i) rig.tick();  // identical frames
  EXPECT_EQ(rig.events.total(), total_after_fire);
  EXPECT_EQ(rig.fired("pool_starvation").size(), 1u);
  EXPECT_EQ(rig.fired("queue_stall").size(), 1u);
  EXPECT_EQ(rig.fired("slow_pwrite").size(), 1u);
}

TEST(HealthMonitor, EdgeStateSurvivesSamplerRestart) {
  // The fired/cleared hysteresis lives in the HealthMonitor, not the
  // Sampler: tearing the sampler down mid-incident and attaching a fresh
  // one (crfsctl watch reconnecting, say) must not re-report the same
  // still-standing condition.
  HealthRig rig({.starvation_samples = 2});
  rig.tick();
  rig.free_chunks = 0;
  rig.tick();
  rig.tick();
  ASSERT_EQ(rig.fired("pool_starvation").size(), 1u);

  // Fresh sampler, same registry + monitor; the pool is still starved.
  obs::Sampler restarted(rig.reg);
  restarted.set_health_monitor(&rig.monitor);
  for (int i = 0; i < 10; ++i) {
    rig.now_ns += 10'000'000;
    restarted.tick(rig.now_ns);
  }
  EXPECT_EQ(rig.fired("pool_starvation").size(), 1u);  // no duplicate

  // Recovery observed by the restarted sampler re-arms the rule...
  rig.free_chunks = 4;
  rig.now_ns += 10'000'000;
  restarted.tick(rig.now_ns);
  // ...so a fresh starvation run fires a second event.
  rig.free_chunks = 0;
  for (int i = 0; i < 2; ++i) {
    rig.now_ns += 10'000'000;
    restarted.tick(rig.now_ns);
  }
  EXPECT_EQ(rig.fired("pool_starvation").size(), 2u);
}

TEST(EventBuffer, BoundedWithTotalCount) {
  obs::EventBuffer buf(2);
  for (int i = 0; i < 5; ++i) {
    buf.push(obs::Event{obs::Severity::kInfo, "r" + std::to_string(i), "", 0, 0,
                        static_cast<std::uint64_t>(i)});
  }
  EXPECT_EQ(buf.total(), 5u);
  EXPECT_EQ(buf.size(), 2u);
  const auto evs = buf.snapshot();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].rule, "r3");  // oldest dropped, order preserved
  EXPECT_EQ(evs[1].rule, "r4");
}

TEST(EventBuffer, EventsRenderAsJson) {
  obs::Event ev{obs::Severity::kCritical, "pwrite_error", "f.ckpt offset=0 errno=5",
                5.0, 0.0, 42};
  auto parsed = obs::json::parse(ev.to_json());
  ASSERT_TRUE(parsed.has_value()) << ev.to_json();
  EXPECT_EQ(parsed->get("severity")->string, "critical");
  EXPECT_EQ(parsed->get("rule")->string, "pwrite_error");
  EXPECT_DOUBLE_EQ(parsed->get("value")->number, 5.0);
  EXPECT_DOUBLE_EQ(parsed->get("ts_ns")->number, 42.0);

  auto arr = obs::json::parse(obs::events_to_json({ev, ev}));
  ASSERT_TRUE(arr.has_value());
  ASSERT_TRUE(arr->is_array());
  EXPECT_EQ(arr->array->size(), 2u);
}

// ------------------------------------------------------------ prometheus

// Minimal exposition-format reader for the round-trip schema check:
// returns the value of the first sample line whose name+labels prefix
// matches `key` exactly.
std::optional<double> prom_value(const std::string& text, const std::string& key) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    if (line.substr(0, sp) == key) return std::stod(line.substr(sp + 1));
  }
  return std::nullopt;
}

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(obs::prometheus_name("crfs.io.pwrite_ns"), "crfs_io_pwrite_ns");
  EXPECT_EQ(obs::prometheus_name("crfs.pool.free_chunks"), "crfs_pool_free_chunks");
}

TEST(Prometheus, ExpositionRoundTripsSchemaCheck) {
  obs::Registry reg;
  reg.counter("crfs.io.pwrite_bytes").add(123456);
  reg.gauge("crfs.queue.depth").set(-2);
  LatencyHistogram& h = reg.histogram("crfs.io.pwrite_ns");
  h.record(0);
  h.record(100);
  h.record(1000);
  h.record(1000000);

  const std::string text = obs::to_prometheus(reg.snapshot());

  // Counters carry the _total suffix; gauges may be negative.
  EXPECT_EQ(prom_value(text, "crfs_io_pwrite_bytes_total"), 123456.0);
  EXPECT_EQ(prom_value(text, "crfs_queue_depth"), -2.0);

  // Histogram schema: cumulative _bucket series, monotone nondecreasing,
  // ending in +Inf, with +Inf == _count and _sum present.
  std::vector<double> cumulative;
  std::optional<double> inf;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("crfs_io_pwrite_ns_bucket{", 0) != 0) continue;
    const double v = std::stod(line.substr(line.rfind(' ') + 1));
    if (line.find("le=\"+Inf\"") != std::string::npos) {
      inf = v;
    } else {
      cumulative.push_back(v);
    }
  }
  ASSERT_FALSE(cumulative.empty());
  for (std::size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_GE(cumulative[i], cumulative[i - 1]) << "bucket " << i;
  }
  ASSERT_TRUE(inf.has_value()) << text;
  EXPECT_GE(*inf, cumulative.back());
  EXPECT_EQ(prom_value(text, "crfs_io_pwrite_ns_count"), *inf);
  EXPECT_EQ(*inf, 4.0);
  EXPECT_EQ(prom_value(text, "crfs_io_pwrite_ns_sum"), 1001100.0);

  // TYPE declarations for all three metric kinds.
  EXPECT_NE(text.find("# TYPE crfs_io_pwrite_bytes_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE crfs_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE crfs_io_pwrite_ns histogram"), std::string::npos);
}

TEST(Prometheus, LabelValueEscaping) {
  EXPECT_EQ(obs::prometheus_label_value("plain-label_1"), "plain-label_1");
  EXPECT_EQ(obs::prometheus_label_value("back\\slash"), "back\\\\slash");
  EXPECT_EQ(obs::prometheus_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::prometheus_label_value("two\nlines"), "two\\nlines");
  EXPECT_EQ(obs::prometheus_label_value("\\\"\n"), "\\\\\\\"\\n");
  EXPECT_EQ(obs::prometheus_label_value(""), "");
}

TEST(Prometheus, EpochLabelsAreEscapedInExposition) {
  // Epoch labels are user strings (epoch_begin / the control file); a
  // hostile one must not break the text exposition format.
  obs::EpochRecord rec;
  rec.id = 3;
  rec.label = "evil\"label\\with\nnewline";
  rec.bytes = 7;
  const std::string text = obs::epochs_to_prometheus({rec});
  EXPECT_NE(text.find("label=\"evil\\\"label\\\\with\\nnewline\""), std::string::npos)
      << text;

  // Every non-comment line still parses as `name{labels} value` — in
  // particular no label value smuggled a raw newline into the stream.
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    char* end = nullptr;
    (void)std::strtod(line.c_str() + sp + 1, &end);
    EXPECT_EQ(*end, '\0') << "unparseable sample value in: " << line;
    EXPECT_NE(line.find('}'), std::string::npos) << line;
  }
}

// ------------------------------------------- pipeline telemetry plane

TEST(PipelineTelemetry, SamplerOffMeansNoSamplerAtAll) {
  Config cfg;
  cfg.chunk_size = 64 * KiB;
  cfg.pool_size = 1 * MiB;
  auto fs = Crfs::mount(std::make_shared<MemBackend>(), cfg);
  ASSERT_TRUE(fs.ok());
  EXPECT_EQ(fs.value()->sampler(), nullptr);  // no object, no thread
  EXPECT_TRUE(fs.value()->events().empty());
}

TEST(PipelineTelemetry, BackgroundSamplerFeedsRatesAndStaysHealthy) {
  Config cfg;
  cfg.chunk_size = 64 * KiB;
  cfg.pool_size = 16 * MiB;  // 256 chunks: starvation impossible here
  cfg.io_threads = 2;
  cfg.sample_ms = 2;
  auto fs = Crfs::mount(std::make_shared<MemBackend>(), cfg);
  ASSERT_TRUE(fs.ok());
  ASSERT_NE(fs.value()->sampler(), nullptr);
  EXPECT_TRUE(fs.value()->sampler()->running());

  {
    FuseShim shim(*fs.value(), FuseOptions{});
    std::vector<std::byte> record(64 * KiB, std::byte{0x5a});
    auto h = shim.open("sampled.ckpt", {.create = true, .truncate = true, .write = true});
    ASSERT_TRUE(h.ok());
    for (std::size_t off = 0; off < 4 * MiB; off += record.size()) {
      ASSERT_TRUE(shim.write(h.value(), record, off).ok());
    }
    ASSERT_TRUE(shim.close(h.value()).ok());
  }
  for (int i = 0; i < 1000 && fs.value()->sampler()->samples_taken() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(fs.value()->sampler()->samples_taken(), 3u);

  const auto latest = fs.value()->sampler()->latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_TRUE(latest->gauge("crfs.pool.free_chunks").has_value());
  EXPECT_TRUE(latest->gauge("crfs.queue.depth").has_value());
  ASSERT_NE(latest->counter_rate("crfs.io.pwrite_bytes"), nullptr);

  // 256 chunks against 64 of data: starvation is impossible, and the
  // backend never errors. (queue_stall CAN legitimately fire when the
  // scheduler starves the IO threads across whole sample windows — e.g.
  // under sanitizers — so real-time runs only pin the impossible rules;
  // SimHealth below covers stall firing/not-firing deterministically.)
  for (const auto& e : fs.value()->events()) {
    EXPECT_NE(e.rule, "pool_starvation") << e.message;
    EXPECT_NE(e.rule, "error_burst") << e.message;
    EXPECT_NE(e.rule, "pwrite_error") << e.message;
  }

  // stats_json carries the events array and the sample count.
  auto parsed = obs::json::parse(fs.value()->stats_json());
  ASSERT_TRUE(parsed.has_value());
  const auto* events = parsed->get("events");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());
  ASSERT_NE(parsed->get("samples_taken"), nullptr);
  EXPECT_GE(parsed->get("samples_taken")->number, 3.0);
}

TEST(PipelineTelemetry, FailedPwriteAttachesStructuredEvent) {
  auto faulty = std::make_shared<FaultyBackend>(std::make_shared<MemBackend>());
  faulty->fail_writes_after(0);  // every pwrite fails with EIO
  Config cfg;
  cfg.chunk_size = 64 * KiB;
  cfg.pool_size = 1 * MiB;
  cfg.io_threads = 1;
  // The structured pwrite_error event is an IO-pool artifact; the bypass
  // would fail this chunk-sized write synchronously with no event.
  cfg.large_write_bypass = false;
  auto fs = Crfs::mount(faulty, cfg);
  ASSERT_TRUE(fs.ok());
  {
    FuseShim shim(*fs.value(), FuseOptions{});
    std::vector<std::byte> record(64 * KiB, std::byte{1});
    auto h = shim.open("doomed.ckpt", {.create = true, .truncate = true, .write = true});
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(shim.write(h.value(), record, 0).ok());  // buffered: still ok
    EXPECT_FALSE(shim.fsync(h.value()).ok());  // sticky error surfaces
    (void)shim.close(h.value());
  }
  const auto events = fs.value()->events();
  ASSERT_FALSE(events.empty());
  const obs::Event& ev = events.front();
  EXPECT_EQ(ev.rule, "pwrite_error");
  EXPECT_EQ(ev.severity, obs::Severity::kCritical);
  EXPECT_NE(ev.message.find("doomed.ckpt"), std::string::npos);
  EXPECT_NE(ev.message.find("offset=0"), std::string::npos);
  EXPECT_NE(ev.message.find("errno=" + std::to_string(EIO)), std::string::npos);
  EXPECT_DOUBLE_EQ(ev.value, static_cast<double>(EIO));
  // The event also reaches the rendered report.
  EXPECT_NE(fs.value()->stats_report().find("pwrite_error"), std::string::npos);
}

// -------------------------------------------- deterministic sim health

// Fixed-bandwidth backend: every chunk write takes len/bw virtual
// seconds, close is free. Slow enough and the pipeline exhibits exactly
// the pathologies the health rules watch for — on the virtual clock, so
// the test is bit-for-bit deterministic.
class FixedRateBackend final : public sim::BackendSim {
 public:
  FixedRateBackend(sim::Simulation& sim, double bytes_per_sec)
      : sim_(sim), bw_(bytes_per_sec) {}
  sim::Task write_call(unsigned, sim::FileId, std::uint64_t, std::uint64_t len,
                       bool) override {
    co_await sim_.delay(static_cast<double>(len) / bw_);
  }
  sim::Task close_file(unsigned, sim::FileId, bool) override { co_return; }
  void stop() override {}

 private:
  sim::Simulation& sim_;
  double bw_;
};

struct SimHealthRun {
  std::vector<obs::Event> events;
  std::uint64_t samples = 0;
  std::uint64_t pool_waits = 0;
};

sim::Task drive_sim_checkpoint(sim::CrfsSimNode& node, std::uint64_t bytes) {
  co_await node.app_write(0, bytes);
  co_await node.close_file(0);
  node.stop();
}

SimHealthRun run_sim_checkpoint(double backend_bytes_per_sec) {
  sim::Simulation sim;
  sim::Calibration cal;
  FixedRateBackend backend(sim, backend_bytes_per_sec);
  Config cfg;
  cfg.chunk_size = 1 * MiB;
  cfg.pool_size = 4 * MiB;  // 4 chunks
  cfg.io_threads = 1;
  sim::CrfsSimNode node(sim, cal, backend, /*node=*/0, cfg, FuseOptions{}, /*ppn=*/1);

  obs::EventBuffer events(64);
  obs::HealthMonitor monitor(obs::HealthConfig{}, events);
  obs::Sampler sampler(node.metrics());
  sampler.set_health_monitor(&monitor);

  node.start();
  sim.spawn(node.sample_loop(sampler, 0.010));  // 10 ms virtual frames
  sim.spawn(drive_sim_checkpoint(node, 16 * MiB));
  sim.run();

  return {events.snapshot(), sampler.samples_taken(), node.pool_waits()};
}

TEST(SimHealth, DegradedBackendFiresStallAndStarvationDeterministically) {
  // 1 MiB/s backend: each 1 MiB chunk pwrite takes a full virtual second,
  // so the 4-chunk pool drains at 1 chunk/s against a writer that fills
  // chunks in milliseconds. Queue depth stays positive across entire
  // seconds with zero completions, and free_chunks pins at 0.
  const SimHealthRun slow = run_sim_checkpoint(1.0 * MiB);
  EXPECT_GT(slow.pool_waits, 0u);
  EXPECT_GT(slow.samples, 100u);  // ~16 virtual seconds of 10 ms frames
  bool saw_stall = false, saw_starvation = false;
  for (const auto& e : slow.events) {
    saw_stall |= e.rule == "queue_stall";
    saw_starvation |= e.rule == "pool_starvation";
  }
  EXPECT_TRUE(saw_stall);
  EXPECT_TRUE(saw_starvation);

  // Virtual time is deterministic: an identical run fires the identical
  // event sequence (same rules at the same virtual timestamps).
  const SimHealthRun again = run_sim_checkpoint(1.0 * MiB);
  ASSERT_EQ(again.events.size(), slow.events.size());
  for (std::size_t i = 0; i < slow.events.size(); ++i) {
    EXPECT_EQ(again.events[i].rule, slow.events[i].rule);
    EXPECT_EQ(again.events[i].ts_ns, slow.events[i].ts_ns);
  }

  // A fast backend (10 GiB/s) never congests: no events at all.
  const SimHealthRun fast = run_sim_checkpoint(10.0 * GiB);
  EXPECT_EQ(fast.events.size(), 0u);
}

// ------------------------------------------------------------ sim engine

TEST(SimTrace, VirtualTimeSpansShareTheSchema) {
  sim::Simulation sim;
  sim.enable_tracing();
  sim.trace_complete("write", 0, 0.001, 0.003);
  sim.trace_complete("pwrite", 101, 0.002, 0.010);
  const auto& events = sim.trace_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ts_ns, 1000000u);  // 1 ms of virtual time
  EXPECT_EQ(events[0].dur_ns, 2000000u);

  const std::string json = obs::to_chrome_json(events);
  auto parsed = obs::json::parse(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get("traceEvents")->array->size(), 2u);

  // Disabled by default: spans are dropped.
  sim::Simulation quiet;
  quiet.trace_complete("write", 0, 0.0, 1.0);
  EXPECT_TRUE(quiet.trace_events().empty());
}

// ------------------------------------------------- causal trace chains

TEST(CausalTrace, ChunkChainStitchesAcrossThreads) {
  auto fs = run_checkpoint(/*tracing=*/true);
  const auto events = fs->trace().snapshot();
  ASSERT_FALSE(events.empty());

  // Group spans by causal id: every traced chunk must show its app-side
  // birth ("write", recorded by the writer thread) and its IO-side
  // stages ("queue"/"submit"/"pwrite", retro-recorded by the worker) —
  // the cross-thread stitch is exactly these ids matching.
  std::unordered_map<std::uint64_t, std::vector<std::string>> chains;
  for (const auto& ev : events) {
    if (ev.trace_id != 0) chains[ev.trace_id].emplace_back(ev.name);
  }
  ASSERT_FALSE(chains.empty());
  bool full_chain = false;
  bool io_side = false;
  for (const auto& [id, names] : chains) {
    const auto has = [&](const char* n) {
      return std::find(names.begin(), names.end(), n) != names.end();
    };
    if (has("queue")) io_side = true;
    if (has("write") && has("queue") && has("pwrite")) full_chain = true;
  }
  EXPECT_TRUE(io_side);
  EXPECT_TRUE(full_chain);

  // IO-side spans carry the interned file path as their tag.
  bool tagged = false;
  for (const auto& ev : events) {
    if (std::string(ev.name) == "pwrite" && ev.tag != nullptr &&
        std::string(ev.tag).find("rank") != std::string::npos) {
      tagged = true;
    }
  }
  EXPECT_TRUE(tagged);

  // Ids are attached to the Chrome export as span args.
  const std::string json = obs::to_chrome_json(events);
  EXPECT_NE(json.find("\"trace_id\":"), std::string::npos);
}

TEST(TraceCollector, DroppedCountsOverwrittenSpans) {
  obs::TraceCollector collector(/*ring_capacity=*/8);
  collector.set_enabled(true);
  obs::TraceRing& ring = collector.ring();
  for (std::uint64_t i = 0; i < 20; ++i) ring.record("x", i, 1);
  EXPECT_EQ(collector.dropped(), 12u);  // 20 recorded, 8 retained
  EXPECT_EQ(collector.snapshot().size(), 8u);
}

// --------------------------------------------- tail-latency forensics

TEST(SlowStore, ThresholdGateAndBoundedRing) {
  obs::SlowStore store(/*capacity=*/2, /*threshold_ns=*/1'000'000);
  EXPECT_FALSE(store.over_threshold(999'999, 0));
  EXPECT_TRUE(store.over_threshold(1'000'000, 0));       // lag trips it
  EXPECT_TRUE(store.over_threshold(0, 2'000'000));       // pwrite time trips it
  for (std::uint64_t id = 1; id <= 3; ++id) {
    obs::SlowExemplar ex;
    ex.trace_id = id;
    ex.path = "f" + std::to_string(id);
    store.capture(std::move(ex));
  }
  EXPECT_EQ(store.size(), 2u);       // bounded: oldest evicted
  EXPECT_EQ(store.captured(), 3u);   // lifetime total survives eviction
  const auto snap = store.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.front().trace_id, 2u);
  EXPECT_EQ(snap.back().trace_id, 3u);

  // 0 disables the gate entirely.
  store.set_threshold_ns(0);
  EXPECT_FALSE(store.over_threshold(~std::uint64_t{0}, ~std::uint64_t{0}));

  auto doc = obs::json::parse(store.to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(doc->get("capacity")->number, 2.0);
  EXPECT_DOUBLE_EQ(doc->get("captured")->number, 3.0);
  ASSERT_NE(doc->get("exemplars"), nullptr);
  EXPECT_EQ(doc->get("exemplars")->array->size(), 2u);
}

TEST(SlowStoreMount, ThrottledBackendCapturesFullCausalChain) {
  // 16 MiB/s backend: each 256 KiB chunk pwrite takes ~16 ms against a
  // 5 ms capture threshold, so every chunk becomes an exemplar. Tracing
  // is on so the exemplar ids can be matched against the span chains.
  Config cfg;
  cfg.chunk_size = 256 * KiB;
  cfg.pool_size = 1 * MiB;
  cfg.io_threads = 1;
  cfg.enable_tracing = true;
  cfg.slow_capture_ms = 5;
  auto fs = Crfs::mount(
      std::make_shared<ThrottledBackend>(std::make_shared<MemBackend>(), 16.0 * MiB),
      cfg);
  ASSERT_TRUE(fs.ok());
  {
    FuseShim shim(*fs.value(), FuseOptions{});
    auto h = shim.open("slow.ckpt", {.create = true, .truncate = true, .write = true});
    ASSERT_TRUE(h.ok());
    std::vector<std::byte> record(64 * KiB, std::byte{7});
    for (std::size_t off = 0; off < MiB; off += record.size()) {
      ASSERT_TRUE(shim.write(h.value(), record, off).ok());
    }
    ASSERT_TRUE(shim.fsync(h.value()).ok());
    ASSERT_TRUE(shim.close(h.value()).ok());
  }

  const auto exemplars = fs.value()->slow_store().snapshot();
  ASSERT_FALSE(exemplars.empty());
  for (const auto& ex : exemplars) {
    EXPECT_GT(ex.trace_id, 0u);
    EXPECT_EQ(ex.path, "slow.ckpt");
    // Monotone stamp chain, copy-in -> durable.
    EXPECT_GT(ex.born_ns, 0u);
    EXPECT_GE(ex.enqueue_ns, ex.born_ns);
    EXPECT_GE(ex.dequeue_ns, ex.enqueue_ns);
    EXPECT_GE(ex.submit_ns, ex.dequeue_ns);
    EXPECT_GT(ex.durable_ns, ex.submit_ns);
    // Disjoint stages telescope back to the total lag.
    EXPECT_EQ(ex.fill_ns + ex.queue_ns + ex.submit_wait_ns + ex.device_ns,
              ex.total_lag_ns);
    EXPECT_GE(ex.fill_ns, ex.pool_stall_ns);  // fill = stall + copy residency
    EXPECT_GE(ex.device_ns, 5'000'000u);      // the throttle is the culprit
    EXPECT_EQ(ex.engine, std::string(fs.value()->active_io_engine()));
  }

  // The exemplar ids resolve against the span chains: the same id appears
  // on the app-side "write" span and the worker-side "queue" span.
  const auto events = fs.value()->trace().snapshot();
  std::unordered_map<std::uint64_t, std::vector<std::string>> chains;
  for (const auto& ev : events) {
    if (ev.trace_id != 0) chains[ev.trace_id].emplace_back(ev.name);
  }
  bool stitched = false;
  for (const auto& ex : exemplars) {
    auto it = chains.find(ex.trace_id);
    if (it == chains.end()) continue;
    const auto has = [&](const char* n) {
      return std::find(it->second.begin(), it->second.end(), n) != it->second.end();
    };
    if (has("write") && has("queue")) stitched = true;
  }
  EXPECT_TRUE(stitched);

  // Self-health surfaces: lifetime capture counter and occupancy gauge.
  const auto snap = fs.value()->metrics().snapshot();
  std::uint64_t captured = 0;
  for (const auto& [name, v] : snap.counters) {
    if (name == "crfs.slow.captured") captured = v;
  }
  EXPECT_EQ(captured, fs.value()->slow_store().captured());
  bool saw_gauge = false;
  for (const auto& [name, v] : snap.gauges) {
    if (name == "crfs.slow.exemplars") {
      saw_gauge = true;
      EXPECT_EQ(static_cast<std::size_t>(v), exemplars.size());
    }
    if (name == "crfs.trace.dropped_spans") EXPECT_GE(v, 0);
  }
  EXPECT_TRUE(saw_gauge);

  // And the store is part of the stats_json schema.
  auto doc = obs::json::parse(fs.value()->stats_json());
  ASSERT_TRUE(doc.has_value());
  const auto* slow = doc->get("slow");
  ASSERT_TRUE(slow != nullptr && slow->is_object());
  EXPECT_GT(slow->get("exemplars")->array->size(), 0u);
}

// ------------------------------------------ sim mirror: slow exemplars

struct SimSlowRun {
  std::string slow_json;
  std::vector<obs::SlowExemplar> exemplars;
  std::vector<obs::EpochRecord> epochs;
};

SimSlowRun run_sim_slow_checkpoint() {
  sim::Simulation sim;
  sim::Calibration cal;
  FixedRateBackend backend(sim, 1.0 * MiB);  // 1 MiB chunk = 1 virtual second
  Config cfg;
  cfg.chunk_size = 1 * MiB;
  cfg.pool_size = 4 * MiB;
  cfg.io_threads = 1;
  cfg.slow_capture_ms = 100;  // every 1 s device write trips it
  sim::CrfsSimNode node(sim, cal, backend, /*node=*/0, cfg, FuseOptions{}, /*ppn=*/1);
  node.epoch_begin("sim-ckpt");
  node.start();
  sim.spawn(drive_sim_checkpoint(node, 4 * MiB));
  sim.run();
  node.epoch_end();
  return {node.slow_json(), node.slow_store().snapshot(), node.epochs()};
}

TEST(SimSlowExemplars, DeterministicChainsAreByteIdenticalAcrossReplays) {
  const SimSlowRun a = run_sim_slow_checkpoint();
  ASSERT_FALSE(a.exemplars.empty());
  for (const auto& ex : a.exemplars) {
    EXPECT_GT(ex.trace_id, 0u);
    EXPECT_GE(ex.enqueue_ns, ex.born_ns);
    EXPECT_GE(ex.dequeue_ns, ex.enqueue_ns);
    EXPECT_GE(ex.submit_ns, ex.dequeue_ns);
    EXPECT_GT(ex.durable_ns, ex.submit_ns);
    EXPECT_EQ(ex.fill_ns + ex.queue_ns + ex.submit_wait_ns + ex.device_ns,
              ex.total_lag_ns);
    EXPECT_GE(ex.device_ns, 900'000'000u);  // ~1 virtual second per chunk
  }
  // Byte-identical replay: same workload, same virtual clock, same ids.
  const SimSlowRun b = run_sim_slow_checkpoint();
  EXPECT_EQ(a.slow_json, b.slow_json);
}

TEST(SimEpochStages, CriticalPathDecompositionTracksWallTime) {
  // Single-chunk epoch on one worker: the chunk's stages are the epoch's
  // critical path, so copy + stall + queue + submit + device must land
  // within 5% of the epoch's wall time (the §IV-C barrier overlaps the
  // device stage and is reported beside the sum, not inside it).
  sim::Simulation sim;
  sim::Calibration cal;
  FixedRateBackend backend(sim, 1.0 * MiB);
  Config cfg;
  cfg.chunk_size = 1 * MiB;
  cfg.pool_size = 4 * MiB;
  cfg.io_threads = 1;
  sim::CrfsSimNode node(sim, cal, backend, /*node=*/0, cfg, FuseOptions{}, /*ppn=*/1);
  node.epoch_begin("one-chunk");
  node.start();
  sim.spawn(drive_sim_checkpoint(node, 1 * MiB));
  sim.run();
  node.epoch_end();

  const auto records = node.epochs();
  ASSERT_EQ(records.size(), 1u);
  const obs::EpochRecord& rec = records.front();
  EXPECT_EQ(rec.chunks, 1u);
  const double wall_ns = static_cast<double>(rec.end_ns - rec.start_ns);
  ASSERT_GT(wall_ns, 0.0);
  const double stage_sum =
      static_cast<double>(rec.copy_ns + rec.pool_stall_ns + rec.queue_residency_ns +
                          rec.submit_wait_ns + rec.device_ns);
  EXPECT_NEAR(stage_sum, wall_ns, wall_ns * 0.05);
  EXPECT_GT(rec.device_ns, 900'000'000u);  // the 1 s backend write dominates
  EXPECT_GT(rec.barrier_ns, 0u);           // close blocked on the §IV-C drain
}

}  // namespace
}  // namespace crfs
