// Tests for the crfs::obs subsystem: histogram bucket/percentile math,
// registry snapshot consistency under concurrent writers, TraceRing
// wraparound, Chrome-trace JSON well-formedness (parsed back with
// json_lite), and the pipeline integration contract — per-stage
// histograms fill during a multi-file checkpoint, span events appear only
// when Config::enable_tracing is set.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "backend/mem_backend.h"
#include "common/units.h"
#include "crfs/crfs.h"
#include "crfs/fuse_shim.h"
#include "obs/chrome_trace.h"
#include "obs/json_lite.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/engine.h"

namespace crfs {
namespace {

using obs::HistogramSnapshot;
using obs::LatencyHistogram;

// ------------------------------------------------------------ histograms

TEST(LatencyHistogram, BucketBoundaries) {
  // Bucket 0 holds only 0; bucket i holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(LatencyHistogram::bucket_index(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(1), 1);
  EXPECT_EQ(LatencyHistogram::bucket_index(2), 2);
  EXPECT_EQ(LatencyHistogram::bucket_index(3), 2);
  EXPECT_EQ(LatencyHistogram::bucket_index(4), 3);
  EXPECT_EQ(LatencyHistogram::bucket_index(7), 3);
  EXPECT_EQ(LatencyHistogram::bucket_index(8), 4);
  EXPECT_EQ(LatencyHistogram::bucket_index(1023), 10);
  EXPECT_EQ(LatencyHistogram::bucket_index(1024), 11);
  EXPECT_EQ(LatencyHistogram::bucket_index(~std::uint64_t{0}), 64);

  for (int i = 0; i <= 64; ++i) {
    EXPECT_EQ(LatencyHistogram::bucket_index(LatencyHistogram::bucket_lo(i)), i);
    EXPECT_EQ(LatencyHistogram::bucket_index(LatencyHistogram::bucket_hi(i)), i);
  }
  EXPECT_EQ(LatencyHistogram::bucket_lo(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_hi(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_lo(11), 1024u);
  EXPECT_EQ(LatencyHistogram::bucket_hi(11), 2047u);
}

TEST(LatencyHistogram, CountSumMax) {
  LatencyHistogram h;
  h.record(5);
  h.record(100);
  h.record(0);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 105u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_EQ(s.buckets[0], 1u);                                  // the 0
  EXPECT_EQ(s.buckets[LatencyHistogram::bucket_index(5)], 1u);
  EXPECT_EQ(s.buckets[LatencyHistogram::bucket_index(100)], 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 35.0);
}

TEST(LatencyHistogram, PercentilesLandInTheRightBucket) {
  LatencyHistogram h;
  // 90 fast ops (bucket of 100) and 10 slow ones (bucket of 10000).
  for (int i = 0; i < 90; ++i) h.record(100);
  for (int i = 0; i < 10; ++i) h.record(10000);
  const HistogramSnapshot s = h.snapshot();

  const double p50 = s.p50();
  EXPECT_GE(p50, LatencyHistogram::bucket_lo(LatencyHistogram::bucket_index(100)));
  EXPECT_LE(p50, LatencyHistogram::bucket_hi(LatencyHistogram::bucket_index(100)));

  const double p99 = s.p99();
  EXPECT_GE(p99, LatencyHistogram::bucket_lo(LatencyHistogram::bucket_index(10000)));
  EXPECT_LE(p99, 10000.0);  // clamped by the recorded max

  // Quantiles are monotone in q.
  EXPECT_LE(s.quantile(0.1), s.quantile(0.5));
  EXPECT_LE(s.quantile(0.5), s.quantile(0.9));
  EXPECT_LE(s.quantile(0.9), s.quantile(1.0));
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10000.0);
}

TEST(LatencyHistogram, EmptyQuantileIsZero) {
  const HistogramSnapshot s = LatencyHistogram{}.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

// -------------------------------------------------------------- registry

TEST(Registry, GetOrCreateReturnsStableReferences) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("crfs.test.counter");
  obs::Counter& b = reg.counter("crfs.test.counter");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  reg.gauge("crfs.test.gauge").set(-7);
  reg.gauge_fn("crfs.test.sampled", [] { return std::int64_t{42}; });
  reg.histogram("crfs.test.lat_ns").record(10);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "crfs.test.counter");
  EXPECT_EQ(snap.counters[0].second, 3u);
  ASSERT_EQ(snap.gauges.size(), 2u);  // plain gauge + callback gauge
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
  // Callback gauge was sampled at snapshot time.
  bool saw_sampled = false;
  for (const auto& [name, v] : snap.gauges) {
    if (name == "crfs.test.sampled") {
      saw_sampled = true;
      EXPECT_EQ(v, 42);
    }
  }
  EXPECT_TRUE(saw_sampled);
}

TEST(Registry, SnapshotConsistentUnderConcurrentWriters) {
  obs::Registry reg;
  obs::Counter& counter = reg.counter("c");
  LatencyHistogram& hist = reg.histogram("h");

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add(1);
        hist.record(static_cast<std::uint64_t>(i % 1000));
      }
    });
  }
  // Snapshot continuously while writers run: counts must be monotone and
  // internally consistent (quantile math never sees count > bucket sum).
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!stop.load()) {
      const auto snap = reg.snapshot();
      EXPECT_GE(snap.counters[0].second, last);
      last = snap.counters[0].second;
      const HistogramSnapshot hs = snap.histograms[0].second;
      std::uint64_t bucketed = 0;
      for (auto b : hs.buckets) bucketed += b;
      EXPECT_LE(hs.count, bucketed);
      (void)hs.p99();  // must not crash or hang mid-race
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();

  const auto final_snap = reg.snapshot();
  EXPECT_EQ(final_snap.counters[0].second,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(final_snap.histograms[0].second.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Registry, JsonRendersAndParses) {
  obs::Registry reg;
  reg.counter("crfs.io.pwrite_bytes").add(4096);
  reg.gauge("crfs.queue.depth").set(2);
  reg.histogram("crfs.io.pwrite_ns").record(1500);
  const std::string json = reg.snapshot().to_json();
  auto parsed = obs::json::parse(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  const auto* counters = parsed->get("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->get("crfs.io.pwrite_bytes"), nullptr);
  EXPECT_DOUBLE_EQ(counters->get("crfs.io.pwrite_bytes")->number, 4096.0);
  const auto* hists = parsed->get("histograms");
  ASSERT_NE(hists, nullptr);
  const auto* pwrite = hists->get("crfs.io.pwrite_ns");
  ASSERT_NE(pwrite, nullptr);
  EXPECT_DOUBLE_EQ(pwrite->get("count")->number, 1.0);
  EXPECT_DOUBLE_EQ(pwrite->get("max")->number, 1500.0);
}

TEST(MountStatsSnapshot, CopiesAllCounters) {
  MountStats stats;
  stats.app_writes.store(3);
  stats.app_bytes.store(1024);
  stats.chunk_steals.store(1);
  const MountStats::Snapshot s = stats.snapshot();
  EXPECT_EQ(s.app_writes, 3u);
  EXPECT_EQ(s.app_bytes, 1024u);
  EXPECT_EQ(s.chunk_steals, 1u);
  EXPECT_EQ(s.full_flushes, 0u);
}

// ------------------------------------------------------------- TraceRing

TEST(TraceRing, RecordsAndSnapshotsInOrder) {
  obs::TraceRing ring(7, 16);
  ring.record("a", 100, 10);
  ring.record("b", 200, 20);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_EQ(events[0].ts_ns, 100u);
  EXPECT_EQ(events[0].dur_ns, 10u);
  EXPECT_EQ(events[0].tid, 7u);
  EXPECT_STREQ(events[1].name, "b");
}

TEST(TraceRing, WraparoundKeepsTheLatestEvents) {
  constexpr std::size_t kCapacity = 64;
  obs::TraceRing ring(0, kCapacity);
  constexpr std::uint64_t kTotal = 1000;
  for (std::uint64_t i = 0; i < kTotal; ++i) ring.record("e", i, 1);
  EXPECT_EQ(ring.recorded(), kTotal);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), kCapacity);
  // Oldest-first, covering exactly the last kCapacity timestamps.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, kTotal - kCapacity + i);
  }
}

TEST(TraceCollector, PerThreadRingsMergeSorted) {
  obs::TraceCollector collector(128);
  collector.set_enabled(true);
  std::thread t1([&] { collector.ring().record("t1", 50, 5); });
  std::thread t2([&] { collector.ring().record("t2", 10, 5); });
  t1.join();
  t2.join();
  collector.ring().record("main", 30, 5);
  EXPECT_EQ(collector.ring_count(), 3u);
  const auto events = collector.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].ts_ns, 10u);  // sorted by begin time
  EXPECT_EQ(events[1].ts_ns, 30u);
  EXPECT_EQ(events[2].ts_ns, 50u);
  // Distinct rings got distinct lane ids.
  EXPECT_NE(events[0].tid, events[2].tid);
}

TEST(TraceSpan, NoOpWhenDisabled) {
  obs::TraceCollector collector(16);
  { obs::TraceSpan span(collector, "skipped"); }
  EXPECT_EQ(collector.total_recorded(), 0u);
  EXPECT_EQ(collector.ring_count(), 0u);  // not even a ring allocated
  collector.set_enabled(true);
  { obs::TraceSpan span(collector, "kept"); }
  EXPECT_EQ(collector.total_recorded(), 1u);
}

// ---------------------------------------------------------- Chrome trace

TEST(ChromeTrace, EmitsWellFormedTraceEventJson) {
  std::vector<obs::TraceEvent> events;
  events.push_back({"write", 0, 1500, 2500});
  events.push_back({"pwrite", 1, 3000, 10000});
  const std::string json = obs::to_chrome_json(events);

  auto parsed = obs::json::parse(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  ASSERT_TRUE(parsed->is_object());
  const auto* trace_events = parsed->get("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());
  ASSERT_EQ(trace_events->array->size(), 2u);

  // Schema check: every event carries the fields chrome://tracing and
  // Perfetto require for a complete ("X") event.
  for (const auto& ev : *trace_events->array) {
    ASSERT_TRUE(ev.is_object());
    ASSERT_NE(ev.get("name"), nullptr);
    EXPECT_TRUE(ev.get("name")->is_string());
    ASSERT_NE(ev.get("ph"), nullptr);
    EXPECT_EQ(ev.get("ph")->string, "X");
    for (const char* field : {"pid", "tid", "ts", "dur"}) {
      ASSERT_NE(ev.get(field), nullptr) << field;
      EXPECT_TRUE(ev.get(field)->is_number()) << field;
    }
  }
  // Microsecond conversion: 1500 ns -> 1.5 us.
  EXPECT_DOUBLE_EQ((*trace_events->array)[0].get("ts")->number, 1.5);
  EXPECT_DOUBLE_EQ((*trace_events->array)[0].get("dur")->number, 2.5);
}

TEST(ChromeTrace, WritesFileThatParsesBack) {
  std::vector<obs::TraceEvent> events;
  events.push_back({"drain", 2, 0, 42});
  const std::string path = ::testing::TempDir() + "crfs_trace_test.json";
  ASSERT_TRUE(obs::write_chrome_trace(path, events).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  auto parsed = obs::json::parse(content);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get("traceEvents")->array->size(), 1u);
}

// ----------------------------------------------- pipeline integration

// Multi-file checkpoint through FuseShim with small chunks so every stage
// (copy, queue wait, pwrite, drain) sees real traffic.
std::unique_ptr<Crfs> run_checkpoint(bool tracing) {
  Config cfg;
  cfg.chunk_size = 64 * KiB;
  cfg.pool_size = 256 * KiB;
  cfg.io_threads = 2;
  cfg.enable_tracing = tracing;
  cfg.trace_ring_events = 4096;
  auto fs = Crfs::mount(std::make_shared<MemBackend>(), cfg);
  EXPECT_TRUE(fs.ok());
  FuseShim shim(*fs.value(), FuseOptions{});

  std::vector<std::thread> ranks;
  for (int r = 0; r < 3; ++r) {
    ranks.emplace_back([&, r] {
      const std::string path = "rank" + std::to_string(r) + ".ckpt";
      std::vector<std::byte> record(32 * KiB, static_cast<std::byte>(r));
      auto h = shim.open(path, {.create = true, .truncate = true, .write = true});
      ASSERT_TRUE(h.ok());
      for (std::size_t off = 0; off < 2 * MiB; off += record.size()) {
        ASSERT_TRUE(shim.write(h.value(), record, off).ok());
      }
      ASSERT_TRUE(shim.fsync(h.value()).ok());
      ASSERT_TRUE(shim.close(h.value()).ok());
    });
  }
  for (auto& t : ranks) t.join();
  return std::move(fs.value());
}

TEST(PipelineObs, StageHistogramsFillDuringCheckpoint) {
  auto fs = run_checkpoint(/*tracing=*/true);

  // 3 ranks x 2 MiB / 64 KiB chunks = 96 full chunks (+ drain partials).
  const auto snap = fs->metrics().snapshot();
  auto hist = [&](const std::string& name) -> const HistogramSnapshot* {
    for (const auto& [n, h] : snap.histograms) {
      if (n == name) return &h;
    }
    return nullptr;
  };
  const auto* queue_wait = hist("crfs.queue.wait_ns");
  ASSERT_NE(queue_wait, nullptr);
  EXPECT_GE(queue_wait->count, 96u);
  const auto* pwrite = hist("crfs.io.pwrite_ns");
  ASSERT_NE(pwrite, nullptr);
  EXPECT_GE(pwrite->count, 96u);
  const auto* copy = hist("crfs.write.copy_ns");
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->count, 3u * (2 * MiB / (32 * KiB)));  // one per app write
  const auto* drain = hist("crfs.drain.wait_ns");
  ASSERT_NE(drain, nullptr);
  EXPECT_GE(drain->count, 3u);  // one per fsync and close at least

  // Counters agree with the data volume.
  bool saw_bytes = false;
  for (const auto& [name, v] : snap.counters) {
    if (name == "crfs.io.pwrite_bytes") {
      saw_bytes = true;
      EXPECT_EQ(v, 3u * 2 * MiB);
    }
  }
  EXPECT_TRUE(saw_bytes);

  // Span events captured for every instrumented stage.
  const auto events = fs->trace().snapshot();
  ASSERT_FALSE(events.empty());
  bool saw_write = false, saw_pwrite = false, saw_drain = false, saw_flush = false;
  for (const auto& ev : events) {
    const std::string name = ev.name;
    saw_write |= name == "write";
    saw_pwrite |= name == "pwrite";
    saw_drain |= name == "drain";
    saw_flush |= name == "flush";
  }
  EXPECT_TRUE(saw_write);
  EXPECT_TRUE(saw_pwrite);
  EXPECT_TRUE(saw_drain);
  EXPECT_TRUE(saw_flush);

  // The exported trace passes the same schema check as ChromeTrace above.
  const std::string path = ::testing::TempDir() + "crfs_pipeline_trace.json";
  ASSERT_TRUE(fs->export_trace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  auto parsed = obs::json::parse(content);
  ASSERT_TRUE(parsed.has_value());
  const auto* trace_events = parsed->get("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  EXPECT_EQ(trace_events->array->size(), events.size());
}

TEST(PipelineObs, TracingOffLeavesSpansEmptyButCountersOn) {
  auto fs = run_checkpoint(/*tracing=*/false);

  // Spans: exactly none — no ring was even allocated.
  EXPECT_EQ(fs->trace().snapshot().size(), 0u);
  EXPECT_EQ(fs->trace().total_recorded(), 0u);

  // Counters and histograms: still fully populated.
  EXPECT_EQ(fs->stats().snapshot().app_bytes, 3u * 2 * MiB);
  const auto snap = fs->metrics().snapshot();
  for (const auto& [name, h] : snap.histograms) {
    if (name == "crfs.queue.wait_ns" || name == "crfs.io.pwrite_ns" ||
        name == "crfs.write.copy_ns") {
      EXPECT_GT(h.count, 0u) << name;
    }
  }
}

TEST(PipelineObs, StatsReportAndJson) {
  auto fs = run_checkpoint(/*tracing=*/false);
  const std::string report = fs->stats_report();
  EXPECT_NE(report.find("app_writes"), std::string::npos);
  EXPECT_NE(report.find("crfs.io.pwrite_ns"), std::string::npos);
  EXPECT_NE(report.find("crfs.queue.wait_ns"), std::string::npos);
  EXPECT_NE(report.find("p99"), std::string::npos);

  auto parsed = obs::json::parse(fs->stats_json());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_NE(parsed->get("mount"), nullptr);
  EXPECT_DOUBLE_EQ(parsed->get("mount")->get("app_bytes")->number,
                   static_cast<double>(3u * 2 * MiB));
  ASSERT_NE(parsed->get("pipeline"), nullptr);
  EXPECT_NE(parsed->get("pipeline")->get("histograms"), nullptr);
}

// ------------------------------------------------------------ sim engine

TEST(SimTrace, VirtualTimeSpansShareTheSchema) {
  sim::Simulation sim;
  sim.enable_tracing();
  sim.trace_complete("write", 0, 0.001, 0.003);
  sim.trace_complete("pwrite", 101, 0.002, 0.010);
  const auto& events = sim.trace_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ts_ns, 1000000u);  // 1 ms of virtual time
  EXPECT_EQ(events[0].dur_ns, 2000000u);

  const std::string json = obs::to_chrome_json(events);
  auto parsed = obs::json::parse(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get("traceEvents")->array->size(), 2u);

  // Disabled by default: spans are dropped.
  sim::Simulation quiet;
  quiet.trace_complete("write", 0, 0.0, 1.0);
  EXPECT_TRUE(quiet.trace_events().empty());
}

}  // namespace
}  // namespace crfs
