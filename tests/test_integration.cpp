// Integration tests: whole-system scenarios across module boundaries —
// coordinated checkpoint through CRFS over a real directory with restart
// verification, concurrent checkpoint + metadata traffic, failure
// recovery mid-checkpoint, and checkpoint-over-checkpoint cycles.
#include <gtest/gtest.h>

#include <filesystem>

#include "backend/mem_backend.h"
#include "backend/posix_backend.h"
#include "backend/wrappers.h"
#include "blcr/checkpoint_writer.h"
#include "blcr/process_image.h"
#include "blcr/restart_reader.h"
#include "blcr/sinks.h"
#include "common/units.h"
#include "crfs/file.h"
#include "crfs/fuse_shim.h"
#include "mpi/job.h"
#include "mpi/targets.h"

namespace crfs {
namespace {

class Integration : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("crfs_integration_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(Integration, CoordinatedCheckpointToRealDiskThenRestart) {
  mpi::JobConfig job;
  job.nprocs = 3;
  job.lu_class = mpi::LuClass::kB;
  job.image_bytes_override = 4 * MiB;

  std::vector<std::uint64_t> crcs;
  {
    auto backend = PosixBackend::create(dir_.string());
    ASSERT_TRUE(backend.ok());
    auto fs = Crfs::mount(std::move(backend.value()), Config{.chunk_size = 1 * MiB,
                                                             .pool_size = 4 * MiB});
    ASSERT_TRUE(fs.ok());
    FuseShim shim(*fs.value(), FuseOptions{.big_writes = true});
    mpi::CrfsTarget target(shim);
    const auto report = mpi::run_checkpoint(job, target);
    ASSERT_TRUE(report.ok) << report.error;
    for (const auto& r : report.ranks) crcs.push_back(r.payload_crc);
  }  // unmounted

  // Restart every rank from the raw directory, no CRFS.
  auto backend = PosixBackend::create(dir_.string());
  ASSERT_TRUE(backend.ok());
  for (unsigned r = 0; r < job.nprocs; ++r) {
    auto bf = backend.value()->open_file("rank" + std::to_string(r) + ".ckpt",
                                         {.create = false, .truncate = false, .write = false});
    ASSERT_TRUE(bf.ok()) << "rank " << r;
    blcr::BackendSource source(*backend.value(), bf.value());
    auto restored = blcr::RestartReader::read_image(source);
    ASSERT_TRUE(restored.ok()) << restored.error().to_string();
    EXPECT_EQ(restored.value().payload_crc, crcs[r]);
    ASSERT_TRUE(backend.value()->close_file(bf.value()).ok());
  }
}

TEST_F(Integration, CheckpointSurvivesConcurrentMetadataTraffic) {
  // A checkpoint stream and a metadata-heavy workload share the mount.
  auto mem = std::make_shared<MemBackend>();
  auto fs = Crfs::mount(mem, Config{.chunk_size = 256 * KiB, .pool_size = 1 * MiB});
  ASSERT_TRUE(fs.ok());
  FuseShim shim(*fs.value(), FuseOptions{});

  std::atomic<bool> stop{false};
  std::thread metadata([&] {
    int i = 0;
    while (!stop.load()) {
      const std::string d = "meta" + std::to_string(i++ % 16);
      (void)fs.value()->mkdir(d);
      (void)fs.value()->getattr(d);
      (void)fs.value()->list_dir("/");
      (void)fs.value()->rmdir(d);
    }
  });

  const auto image = blcr::ProcessImage::synthesize(1, 8 * MiB, 3);
  auto file = File::open(shim, "busy.ckpt", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(file.ok());
  blcr::CrfsFileSink sink(file.value());
  auto crc = blcr::CheckpointWriter::write_image(image, sink);
  ASSERT_TRUE(crc.ok());
  ASSERT_TRUE(file.value().close().ok());
  stop.store(true);
  metadata.join();

  auto bf = mem->open_file("busy.ckpt", {.create = false, .truncate = false, .write = false});
  ASSERT_TRUE(bf.ok());
  blcr::BackendSource source(*mem, bf.value());
  auto restored = blcr::RestartReader::read_image(source);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().payload_crc, crc.value());
}

TEST_F(Integration, MidCheckpointBackendFailureIsReportedAndRecoverable) {
  auto mem = std::make_shared<MemBackend>();
  auto faulty = std::make_shared<FaultyBackend>(mem);
  auto fs = Crfs::mount(faulty, Config{.chunk_size = 256 * KiB, .pool_size = 1 * MiB});
  ASSERT_TRUE(fs.ok());
  FuseShim shim(*fs.value(), FuseOptions{});

  // First attempt: the backend dies after a few chunk writes.
  faulty->fail_writes_after(3);
  {
    const auto image = blcr::ProcessImage::synthesize(1, 4 * MiB, 9);
    auto file = File::open(shim, "attempt1.ckpt",
                           {.create = true, .truncate = true, .write = true});
    ASSERT_TRUE(file.ok());
    blcr::CrfsFileSink sink(file.value());
    (void)blcr::CheckpointWriter::write_image(image, sink);  // may or may not fail inline
    const Status st = file.value().close();
    EXPECT_FALSE(st.ok()) << "the failure must surface by close()";
  }

  // Backend recovers; the retry must produce a valid image.
  faulty->fail_writes_after(-1);
  const auto image = blcr::ProcessImage::synthesize(1, 4 * MiB, 9);
  auto file = File::open(shim, "attempt2.ckpt",
                         {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(file.ok());
  blcr::CrfsFileSink sink(file.value());
  auto crc = blcr::CheckpointWriter::write_image(image, sink);
  ASSERT_TRUE(crc.ok());
  ASSERT_TRUE(file.value().close().ok());

  auto bf = mem->open_file("attempt2.ckpt", {.create = false, .truncate = false, .write = false});
  ASSERT_TRUE(bf.ok());
  blcr::BackendSource source(*mem, bf.value());
  auto restored = blcr::RestartReader::read_image(source);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(restored.value().payload_crc, crc.value());
}

TEST_F(Integration, RepeatedCheckpointCyclesOverwriteCleanly) {
  // Periodic checkpointing truncates and rewrites the same files.
  auto mem = std::make_shared<MemBackend>();
  auto fs = Crfs::mount(mem, Config{.chunk_size = 512 * KiB, .pool_size = 2 * MiB});
  ASSERT_TRUE(fs.ok());
  FuseShim shim(*fs.value(), FuseOptions{});

  std::uint64_t last_crc = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    const auto image = blcr::ProcessImage::synthesize(
        7, (2 + static_cast<std::uint64_t>(cycle)) * MiB, 100 + static_cast<unsigned>(cycle));
    auto file = File::open(shim, "periodic.ckpt",
                           {.create = true, .truncate = true, .write = true});
    ASSERT_TRUE(file.ok());
    blcr::CrfsFileSink sink(file.value());
    auto crc = blcr::CheckpointWriter::write_image(image, sink);
    ASSERT_TRUE(crc.ok());
    ASSERT_TRUE(file.value().close().ok());
    last_crc = crc.value();
  }

  auto bf = mem->open_file("periodic.ckpt", {.create = false, .truncate = false, .write = false});
  ASSERT_TRUE(bf.ok());
  blcr::BackendSource source(*mem, bf.value());
  auto restored = blcr::RestartReader::read_image(source);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(restored.value().payload_crc, last_crc);
  EXPECT_EQ(restored.value().image_bytes, 6 * MiB);  // the last cycle's size
}

TEST_F(Integration, CheckpointWhileReadingPreviousCheckpoint) {
  // Restart of generation N-1 runs concurrently with checkpoint N.
  auto mem = std::make_shared<MemBackend>();
  auto fs = Crfs::mount(mem, Config{.chunk_size = 256 * KiB, .pool_size = 1 * MiB});
  ASSERT_TRUE(fs.ok());
  FuseShim shim(*fs.value(), FuseOptions{});

  const auto old_image = blcr::ProcessImage::synthesize(1, 3 * MiB, 50);
  std::uint64_t old_crc = 0;
  {
    auto file = File::open(shim, "gen0.ckpt", {.create = true, .truncate = true, .write = true});
    ASSERT_TRUE(file.ok());
    blcr::CrfsFileSink sink(file.value());
    old_crc = blcr::CheckpointWriter::write_image(old_image, sink).value();
    ASSERT_TRUE(file.value().close().ok());
  }

  std::atomic<bool> reader_ok{false};
  std::thread reader([&] {
    auto file = File::open(shim, "gen0.ckpt", {.create = false, .truncate = false, .write = false});
    if (!file.ok()) return;
    blcr::CrfsFileSource source(file.value());
    auto restored = blcr::RestartReader::read_image(source);
    reader_ok.store(restored.ok() && restored.value().payload_crc == old_crc);
  });

  const auto new_image = blcr::ProcessImage::synthesize(1, 3 * MiB, 51);
  auto file = File::open(shim, "gen1.ckpt", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(file.ok());
  blcr::CrfsFileSink sink(file.value());
  auto crc = blcr::CheckpointWriter::write_image(new_image, sink);
  ASSERT_TRUE(crc.ok());
  ASSERT_TRUE(file.value().close().ok());
  reader.join();
  EXPECT_TRUE(reader_ok.load());
}

}  // namespace
}  // namespace crfs
