// Tests for incremental (delta) checkpoints: change detection, delta
// composition, reference verification against the parent, chained
// epochs, and corruption/mismatch failure modes.
#include <gtest/gtest.h>

#include "backend/mem_backend.h"
#include "blcr/incremental.h"
#include "blcr/sinks.h"
#include "common/units.h"
#include "crfs/file.h"
#include "crfs/fuse_shim.h"

namespace crfs::blcr {
namespace {

class VecSink final : public ByteSink {
 public:
  Status write(std::span<const std::byte> data) override {
    bytes.insert(bytes.end(), data.begin(), data.end());
    return {};
  }
  std::vector<std::byte> bytes;
};

class VecSource final : public ByteSource {
 public:
  explicit VecSource(std::vector<std::byte> b) : bytes_(std::move(b)) {}
  Result<std::size_t> read(std::span<std::byte> out) override {
    const std::size_t n = std::min(out.size(), bytes_.size() - pos_);
    std::memcpy(out.data(), bytes_.data() + pos_, n);
    pos_ += n;
    return n;
  }
  std::vector<std::byte> bytes_;
  std::size_t pos_ = 0;
};

// Writes a full image, returns its serialised bytes + digest.
std::pair<std::vector<std::byte>, ImageDigest> full_image_bytes(const ProcessImage& img) {
  VecSink sink;
  EXPECT_TRUE(CheckpointWriter::write_image(img, sink).ok());
  return {std::move(sink.bytes), digest_image(img)};
}

TEST(Incremental, DigestDetectsContentChanges) {
  const auto base = ProcessImage::synthesize(1, 4 * MiB, 5);
  const auto same = digest_image(base);
  const auto again = digest_image(base);
  ASSERT_EQ(same.size(), again.size());
  for (std::size_t i = 0; i < same.size(); ++i) {
    EXPECT_EQ(same[i].payload_crc, again[i].payload_crc);
  }
  const auto mutated = mutate_image(base, 0.3, 99);
  const auto changed = digest_image(mutated);
  int diffs = 0;
  for (std::size_t i = 0; i < same.size(); ++i) {
    diffs += same[i].payload_crc != changed[i].payload_crc;
  }
  EXPECT_GT(diffs, 0);
  EXPECT_LT(diffs, static_cast<int>(same.size()));  // some unchanged
}

TEST(Incremental, ReadImagePayloadsMaterialises) {
  const auto img = ProcessImage::synthesize(2, 2 * MiB, 6);
  auto [bytes, digest] = full_image_bytes(img);
  VecSource source(std::move(bytes));
  auto mat = read_image_payloads(source);
  ASSERT_TRUE(mat.ok()) << mat.error().to_string();
  EXPECT_EQ(mat.value().pid, 2u);
  EXPECT_EQ(mat.value().vmas.size(), img.vmas.size());
  std::uint64_t total = 0;
  for (const auto& [start, payload] : mat.value().payloads) total += payload.size();
  EXPECT_EQ(total, img.content_bytes());
  // digest_of(materialised) == digest_image(original).
  const auto dm = digest_of(mat.value());
  ASSERT_EQ(dm.size(), digest.size());
  for (std::size_t i = 0; i < dm.size(); ++i) {
    EXPECT_EQ(dm[i].payload_crc, digest[i].payload_crc);
  }
}

TEST(Incremental, DeltaWritesOnlyChangedVmas) {
  const auto base = ProcessImage::synthesize(3, 8 * MiB, 7);
  const auto next = mutate_image(base, 0.25, 11);
  const auto parent_digest = digest_image(base);

  VecSink delta;
  auto stats = write_delta_image(next, parent_digest, delta);
  ASSERT_TRUE(stats.ok()) << stats.error().to_string();
  EXPECT_GT(stats.value().unchanged_vmas, 0u);
  EXPECT_GT(stats.value().changed_vmas, 0u);
  EXPECT_EQ(stats.value().changed_vmas + stats.value().unchanged_vmas, next.vmas.size());

  // The delta must be much smaller than a full image when most VMAs are
  // unchanged... here ~25% changed by count; compare against full size.
  VecSink full;
  ASSERT_TRUE(CheckpointWriter::write_image(next, full).ok());
  EXPECT_LT(delta.bytes.size(), full.bytes.size());
}

TEST(Incremental, DeltaComposesOverParentAndVerifies) {
  const auto base = ProcessImage::synthesize(4, 6 * MiB, 8);
  const auto next = mutate_image(base, 0.3, 12);

  auto [base_bytes, base_digest] = full_image_bytes(base);
  VecSource base_source(std::move(base_bytes));
  auto parent = read_image_payloads(base_source);
  ASSERT_TRUE(parent.ok());

  VecSink delta;
  auto stats = write_delta_image(next, base_digest, delta);
  ASSERT_TRUE(stats.ok());

  VecSource delta_source(std::move(delta.bytes));
  auto composed = read_delta_image(delta_source, parent.value());
  ASSERT_TRUE(composed.ok()) << composed.error().to_string();
  EXPECT_EQ(composed.value().payload_crc, stats.value().full_image_crc);
  EXPECT_EQ(composed.value().vmas.size(), next.vmas.size());

  // The composed image must equal a direct full write of `next`.
  VecSink full;
  auto full_crc = CheckpointWriter::write_image(next, full);
  ASSERT_TRUE(full_crc.ok());
  EXPECT_EQ(composed.value().payload_crc, full_crc.value());
}

TEST(Incremental, ChainedEpochs) {
  // epoch0 full, epoch1 delta(epoch0), epoch2 delta(epoch1).
  const auto e0 = ProcessImage::synthesize(5, 4 * MiB, 20);
  const auto e1 = mutate_image(e0, 0.2, 21);
  const auto e2 = mutate_image(e1, 0.2, 22);

  auto [b0, d0] = full_image_bytes(e0);
  VecSource s0(std::move(b0));
  auto m0 = read_image_payloads(s0);
  ASSERT_TRUE(m0.ok());

  VecSink delta1;
  ASSERT_TRUE(write_delta_image(e1, digest_of(m0.value()), delta1).ok());
  VecSource ds1(std::move(delta1.bytes));
  auto m1 = read_delta_image(ds1, m0.value());
  ASSERT_TRUE(m1.ok());

  VecSink delta2;
  auto stats2 = write_delta_image(e2, digest_of(m1.value()), delta2);
  ASSERT_TRUE(stats2.ok());
  VecSource ds2(std::move(delta2.bytes));
  auto m2 = read_delta_image(ds2, m1.value());
  ASSERT_TRUE(m2.ok()) << m2.error().to_string();

  VecSink full2;
  auto full_crc = CheckpointWriter::write_image(e2, full2);
  ASSERT_TRUE(full_crc.ok());
  EXPECT_EQ(m2.value().payload_crc, full_crc.value());
}

TEST(Incremental, WrongParentIsRejected) {
  const auto base = ProcessImage::synthesize(6, 2 * MiB, 30);
  const auto other = ProcessImage::synthesize(6, 2 * MiB, 31);  // different content
  const auto next = mutate_image(base, 0.2, 32);

  VecSink delta;
  ASSERT_TRUE(write_delta_image(next, digest_image(base), delta).ok());

  // Materialise the WRONG parent and try to compose.
  auto [wrong_bytes, wd] = full_image_bytes(other);
  VecSource ws(std::move(wrong_bytes));
  auto wrong_parent = read_image_payloads(ws);
  ASSERT_TRUE(wrong_parent.ok());

  VecSource ds(std::move(delta.bytes));
  auto composed = read_delta_image(ds, wrong_parent.value());
  ASSERT_FALSE(composed.ok()) << "composing over a wrong parent must fail";
}

TEST(Incremental, CorruptDeltaDetected) {
  const auto base = ProcessImage::synthesize(7, 2 * MiB, 40);
  const auto next = mutate_image(base, 0.5, 41);
  auto [bb, bd] = full_image_bytes(base);
  VecSource bs(std::move(bb));
  auto parent = read_image_payloads(bs);
  ASSERT_TRUE(parent.ok());

  VecSink delta;
  ASSERT_TRUE(write_delta_image(next, bd, delta).ok());
  delta.bytes[delta.bytes.size() / 2] ^= std::byte{0x10};
  VecSource ds(std::move(delta.bytes));
  EXPECT_FALSE(read_delta_image(ds, parent.value()).ok());
}

TEST(Incremental, NoChangesMakesTinyDelta) {
  const auto base = ProcessImage::synthesize(8, 8 * MiB, 50);
  VecSink delta;
  auto stats = write_delta_image(base, digest_image(base), delta);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().changed_vmas, 0u);
  EXPECT_EQ(stats.value().payload_bytes_written, 0u);
  // Header + context + per-VMA references only: a few KB for an 8 MB image.
  EXPECT_LT(delta.bytes.size(), 16 * KiB);
}

TEST(Incremental, DeltaThroughCrfsMount) {
  // The practical flow: full epoch then delta epoch, both through CRFS;
  // restore composes from the backend without CRFS.
  auto mem = std::make_shared<MemBackend>();
  const auto e0 = ProcessImage::synthesize(9, 6 * MiB, 60);
  const auto e1 = mutate_image(e0, 0.25, 61);
  {
    auto fs = Crfs::mount(mem, Config{.chunk_size = 512 * KiB, .pool_size = 2 * MiB});
    ASSERT_TRUE(fs.ok());
    FuseShim shim(*fs.value(), FuseOptions{});
    {
      auto f = File::open(shim, "e0.full", {.create = true, .truncate = true, .write = true});
      ASSERT_TRUE(f.ok());
      CrfsFileSink sink(f.value());
      ASSERT_TRUE(CheckpointWriter::write_image(e0, sink).ok());
      ASSERT_TRUE(f.value().close().ok());
    }
    {
      auto f = File::open(shim, "e1.delta", {.create = true, .truncate = true, .write = true});
      ASSERT_TRUE(f.ok());
      CrfsFileSink sink(f.value());
      ASSERT_TRUE(write_delta_image(e1, digest_image(e0), sink).ok());
      ASSERT_TRUE(f.value().close().ok());
    }
  }
  // Restore from the raw backend.
  auto bf0 = mem->open_file("e0.full", {.create = false, .truncate = false, .write = false});
  ASSERT_TRUE(bf0.ok());
  BackendSource s0(*mem, bf0.value());
  auto parent = read_image_payloads(s0);
  ASSERT_TRUE(parent.ok()) << parent.error().to_string();

  auto bf1 = mem->open_file("e1.delta", {.create = false, .truncate = false, .write = false});
  ASSERT_TRUE(bf1.ok());
  BackendSource s1(*mem, bf1.value());
  auto composed = read_delta_image(s1, parent.value());
  ASSERT_TRUE(composed.ok()) << composed.error().to_string();

  VecSink full1;
  auto expect = CheckpointWriter::write_image(e1, full1);
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ(composed.value().payload_crc, expect.value());
}

}  // namespace
}  // namespace crfs::blcr
