// IO engine tests (docs/PERFORMANCE.md "IO engines"): mount-option
// plumbing, sync fallback, uring/sync byte-identity over a real
// PosixBackend, engine error propagation through the sticky FileEntry
// error, the large-write copy bypass, and the in-flight-depth evidence
// that the async engine actually decouples submission from completion.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "backend/mem_backend.h"
#include "backend/posix_backend.h"
#include "backend/wrappers.h"
#include "common/rng.h"
#include "common/units.h"
#include "crfs/crfs.h"
#include "crfs/io_engine.h"
#include "crfs/mount_options.h"

namespace crfs {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

// Scoped temp dir for PosixBackend mounts.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("crfs_ioengine_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

// Scoped CRFS_FORCE_SYNC so one test's forcing never leaks into another.
class ForceSyncEnv {
 public:
  ForceSyncEnv() { ::setenv("CRFS_FORCE_SYNC", "1", 1); }
  ~ForceSyncEnv() { ::unsetenv("CRFS_FORCE_SYNC"); }
};

std::string read_file(const std::filesystem::path& p) {
  std::string out;
  std::FILE* f = std::fopen(p.c_str(), "rb");
  if (f == nullptr) return out;
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// ------------------------------------------------------- mount options

TEST(IoEngineOptions, MountOptionRoundTrip) {
  auto parsed = parse_mount_options("chunk=64K,pool=1M,io_engine=uring,uring_depth=128,no_bypass");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().config.io_engine, IoEngineKind::kUring);
  EXPECT_EQ(parsed.value().config.uring_depth, 128u);
  EXPECT_FALSE(parsed.value().config.large_write_bypass);

  const std::string rendered = format_mount_options(parsed.value());
  EXPECT_NE(rendered.find("io_engine=uring"), std::string::npos);
  EXPECT_NE(rendered.find("uring_depth=128"), std::string::npos);
  EXPECT_NE(rendered.find("no_bypass"), std::string::npos);

  auto reparsed = parse_mount_options(rendered);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string();
  EXPECT_EQ(reparsed.value().config.io_engine, IoEngineKind::kUring);
  EXPECT_EQ(reparsed.value().config.uring_depth, 128u);
  EXPECT_FALSE(reparsed.value().config.large_write_bypass);
}

TEST(IoEngineOptions, DefaultsAreSyncWithBypass) {
  auto parsed = parse_mount_options("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().config.io_engine, IoEngineKind::kSync);
  EXPECT_EQ(parsed.value().config.uring_depth, 64u);
  EXPECT_TRUE(parsed.value().config.large_write_bypass);
  const std::string rendered = format_mount_options(parsed.value());
  EXPECT_EQ(rendered.find("io_engine"), std::string::npos);
  EXPECT_EQ(rendered.find("no_bypass"), std::string::npos);
}

TEST(IoEngineOptions, RejectsBadValues) {
  EXPECT_FALSE(parse_mount_options("io_engine=epoll").ok());
  EXPECT_FALSE(parse_mount_options("uring_depth=0").ok());
  EXPECT_FALSE(parse_mount_options("uring_depth=99999").ok());
}

TEST(IoEngineOptions, DescribeShowsEngineAndBypass) {
  Config cfg;
  cfg.io_engine = IoEngineKind::kUring;
  cfg.uring_depth = 32;
  cfg.large_write_bypass = false;
  const std::string d = cfg.describe();
  EXPECT_NE(d.find("io_engine=uring(depth=32)"), std::string::npos);
  EXPECT_NE(d.find("no_bypass"), std::string::npos);
}

// ------------------------------------------------------- sync fallback

TEST(IoEngineFallback, ForcedSyncKeepsPipelineGreen) {
  ForceSyncEnv force;
  TempDir dir("forced_sync");
  auto backend = PosixBackend::create(dir.path().string());
  ASSERT_TRUE(backend.ok());

  Config cfg;
  cfg.chunk_size = 16 * KiB;
  cfg.pool_size = 8 * 16 * KiB;
  cfg.io_engine = IoEngineKind::kUring;  // requested, but forced to sync
  auto fs = Crfs::mount(std::move(backend.value()), cfg);
  ASSERT_TRUE(fs.ok());
  EXPECT_STREQ(fs.value()->active_io_engine(), "sync");

  // The fallback mount still moves data end to end.
  auto h = fs.value()->open("f.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  const std::string payload(40 * KiB, 'q');
  ASSERT_TRUE(fs.value()->write(h.value(), as_bytes(payload), 0).ok());
  ASSERT_TRUE(fs.value()->close(h.value()).ok());
  EXPECT_EQ(read_file(dir.path() / "f.bin"), payload);

  // stats_json reports both what was asked for and what runs.
  const std::string json = fs.value()->stats_json();
  EXPECT_NE(json.find("\"io_engine\":\"sync\""), std::string::npos);
  EXPECT_NE(json.find("\"io_engine_requested\":\"uring\""), std::string::npos);
}

TEST(IoEngineFallback, MakeIoEngineNeverReturnsNull) {
  ForceSyncEnv force;
  MemBackend mem;
  auto eng = make_io_engine(IoEngineOptions{.requested = IoEngineKind::kUring},
                            mem, {}, {}, [](IoRun, Status, std::uint64_t, std::uint64_t) {});
  ASSERT_NE(eng, nullptr);
  EXPECT_STREQ(eng->name(), "sync");
}

// ------------------------------------------------- sync/uring identity

// Runs the same seeded workload (multiple files, sequential streams,
// overwrites, interleaved handles) against a sync mount and a
// uring-requested mount over two real directories, then compares the
// backend byte for byte. This is the core "the async engine changes the
// plumbing, not the contents" guarantee.
TEST(IoEngineIdentity, SyncAndUringProduceByteIdenticalFiles) {
  TempDir sync_dir("ident_sync");
  TempDir uring_dir("ident_uring");

  const auto run = [](const std::filesystem::path& root, IoEngineKind kind) -> std::string {
    auto backend = PosixBackend::create(root.string());
    EXPECT_TRUE(backend.ok());
    Config cfg;
    cfg.chunk_size = 4 * KiB;  // small chunks: deep pipelines, many runs
    cfg.pool_size = 8 * 4 * KiB;
    cfg.io_threads = 2;
    cfg.io_engine = kind;
    cfg.uring_depth = 8;
    auto fs = Crfs::mount(std::move(backend.value()), cfg);
    EXPECT_TRUE(fs.ok());

    constexpr int kFiles = 4;
    std::vector<Crfs::FileHandle> handles(kFiles);
    std::vector<std::uint64_t> cursor(kFiles, 0);
    for (int f = 0; f < kFiles; ++f) {
      auto h = fs.value()->open("file" + std::to_string(f),
                                {.create = true, .truncate = true, .write = true});
      EXPECT_TRUE(h.ok());
      handles[f] = h.value();
    }
    Rng rng(20260806);
    for (int op = 0; op < 800; ++op) {
      const int f = static_cast<int>(rng.next_below(kFiles));
      const std::size_t len = rng.uniform(1, 12 * KiB);
      std::string data(len, '\0');
      for (auto& c : data) c = static_cast<char>('a' + rng.next_below(26));
      std::uint64_t off = cursor[f];
      if (cursor[f] > 0 && rng.bernoulli(0.15)) {
        off = rng.next_below(cursor[f]);  // overwrite inside written range
      }
      EXPECT_TRUE(fs.value()->write(handles[f], as_bytes(data), off).ok());
      if (off + len > cursor[f]) cursor[f] = off + len;
    }
    std::string engine = fs.value()->active_io_engine();
    for (int f = 0; f < kFiles; ++f) EXPECT_TRUE(fs.value()->close(handles[f]).ok());
    return engine;
  };

  run(sync_dir.path(), IoEngineKind::kSync);
  const std::string uring_engine = run(uring_dir.path(), IoEngineKind::kUring);

  for (int f = 0; f < 4; ++f) {
    const std::string name = "file" + std::to_string(f);
    const std::string a = read_file(sync_dir.path() / name);
    const std::string b = read_file(uring_dir.path() / name);
    ASSERT_EQ(a.size(), b.size()) << name;
    EXPECT_TRUE(a == b) << name << " diverges (uring engine ran as '" << uring_engine << "')";
  }
}

// Same identity under concurrent writer threads, each with its own file.
TEST(IoEngineIdentity, ConcurrentStreamsUringByteExact) {
  TempDir dir("conc_uring");
  auto backend = PosixBackend::create(dir.path().string());
  ASSERT_TRUE(backend.ok());
  Config cfg;
  cfg.chunk_size = 4 * KiB;
  cfg.pool_size = 16 * 4 * KiB;
  cfg.io_threads = 2;
  cfg.io_engine = IoEngineKind::kUring;
  cfg.uring_depth = 16;
  auto fs = Crfs::mount(std::move(backend.value()), cfg);
  ASSERT_TRUE(fs.ok());

  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 200;
  std::vector<std::string> expect(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto h = fs.value()->open("stream" + std::to_string(t),
                                {.create = true, .truncate = true, .write = true});
      ASSERT_TRUE(h.ok());
      Rng rng(1000 + t);
      std::string& exp = expect[t];
      for (int i = 0; i < kWritesPerThread; ++i) {
        const std::size_t len = rng.uniform(100, 6000);
        std::string data(len, static_cast<char>('A' + (i % 26)));
        ASSERT_TRUE(fs.value()->write(h.value(), as_bytes(data), exp.size()).ok());
        exp += data;
      }
      ASSERT_TRUE(fs.value()->close(h.value()).ok());
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(read_file(dir.path() / ("stream" + std::to_string(t))), expect[t]) << t;
  }
}

// ------------------------------------------------- engine error paths

// FaultyBackend hides its fd (raw_fd == -1), so a uring-requested mount
// routes its runs through the synchronous engine path — injected faults
// keep applying, and a submission-level failure must mark the sticky
// FileEntry error exactly once per chunk, surfaced exactly once at close.
TEST(IoEngineErrors, FaultySubmissionMarksStickyErrorOncePerChunk) {
  auto mem = std::make_shared<MemBackend>();
  auto faulty = std::make_shared<FaultyBackend>(mem);
  Config cfg;
  cfg.chunk_size = 4096;
  cfg.pool_size = 8 * 4096;
  cfg.io_engine = IoEngineKind::kUring;
  cfg.large_write_bypass = false;  // pin the queued-chunk path
  auto fs = Crfs::mount(faulty, cfg);
  ASSERT_TRUE(fs.ok());

  auto h = fs.value()->open("sticky.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  faulty->fail_writes_after(0);  // every backend write fails EIO
  std::vector<std::byte> data(3 * 4096, std::byte{7});  // three full chunks
  ASSERT_TRUE(fs.value()->write(h.value(), data, 0).ok());  // buffering succeeds
  const Status st = fs.value()->close(h.value());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, EIO);

  // Sticky error reported once: a fresh handle on the same path is clean.
  faulty->fail_writes_after(-1);
  auto h2 = fs.value()->open("sticky.bin", {.create = true, .truncate = false, .write = true});
  ASSERT_TRUE(h2.ok());
  EXPECT_TRUE(fs.value()->close(h2.value()).ok());

  // Every failed chunk was counted (once per chunk, not once per run).
  const auto snap = fs.value()->metrics().snapshot();
  bool found = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "crfs.io.pwrite_errors") {
      found = true;
      EXPECT_GE(value, 1u);
    }
  }
  EXPECT_TRUE(found);
}

// Drives the uring engine directly (no pool/queue) against a read-only
// backend fd: the CQE carries -EBADF, which must come back through the
// completion callback as a Status error.
TEST(IoEngineErrors, UringCompletionCarriesBackendErrno) {
  TempDir dir("cqe_err");
  auto backend = PosixBackend::create(dir.path().string());
  ASSERT_TRUE(backend.ok());
  auto& b = *backend.value();

  // Create the file, then open read-only: pwrite via SQE must fail.
  auto wf = b.open_file("ro.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(wf.ok());
  ASSERT_TRUE(b.close_file(wf.value()).ok());
  auto rf = b.open_file("ro.bin", {.create = false, .truncate = false, .write = false});
  ASSERT_TRUE(rf.ok());

  Status got;
  int completions = 0;
  auto eng = make_uring_engine(4, b, {},
                               {}, [&](IoRun, Status st, std::uint64_t, std::uint64_t) {
                                 got = std::move(st);
                                 completions += 1;
                               });
  if (eng == nullptr) GTEST_SKIP() << "io_uring unavailable on this kernel";

  auto file = std::make_shared<FileEntry>("ro.bin", rf.value());
  auto chunk = std::make_unique<Chunk>(4096);
  chunk->reset(0);
  const std::string payload(4096, 'x');
  chunk->append(as_bytes(payload));

  IoRun run;
  run.offset = 0;
  run.total = chunk->fill();
  run.jobs.push_back(WriteJob{file, std::move(chunk), nullptr});
  eng->submit(std::move(run));
  eng->flush();
  eng->reap(/*wait=*/true);

  ASSERT_EQ(completions, 1);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error().code, EBADF);
  ASSERT_TRUE(b.close_file(rf.value()).ok());
}

// ------------------------------------------------- large-write bypass

TEST(LargeWriteBypass, ChunkSizedWriteSkipsThePool) {
  auto mem = std::make_shared<MemBackend>();
  Config cfg;
  cfg.chunk_size = 64 * KiB;
  cfg.pool_size = 4 * 64 * KiB;
  auto fs = Crfs::mount(mem, cfg);
  ASSERT_TRUE(fs.ok());

  auto h = fs.value()->open("big.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  std::string payload(128 * KiB, 'B');
  ASSERT_TRUE(fs.value()->write(h.value(), as_bytes(payload), 0).ok());

  // Bypassed: already durable, nothing buffered, no chunks consumed.
  auto contents = mem->contents("big.bin");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value().size(), payload.size());
  EXPECT_EQ(fs.value()->stats().snapshot().bypass_writes, 1u);
  EXPECT_EQ(fs.value()->buffer_pool().in_use_chunks(), 0u);

  const auto snap = fs.value()->metrics().snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (name == "crfs.write.bypass_bytes") {
      EXPECT_EQ(value, payload.size());
    }
  }
  ASSERT_TRUE(fs.value()->close(h.value()).ok());
}

TEST(LargeWriteBypass, MixedSmallAndLargeWritesStayOrdered) {
  auto mem = std::make_shared<MemBackend>();
  Config cfg;
  cfg.chunk_size = 16 * KiB;
  cfg.pool_size = 4 * 16 * KiB;
  auto fs = Crfs::mount(mem, cfg);
  ASSERT_TRUE(fs.ok());

  auto h = fs.value()->open("mix.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  std::string expect;
  Rng rng(42);
  for (int i = 0; i < 40; ++i) {
    const bool large = rng.bernoulli(0.3);
    const std::size_t len = large ? 16 * KiB + rng.next_below(16 * KiB)
                                  : 1 + rng.next_below(4 * KiB);
    std::string data(len, static_cast<char>('a' + (i % 26)));
    ASSERT_TRUE(fs.value()->write(h.value(), as_bytes(data), expect.size()).ok());
    expect += data;
  }
  ASSERT_TRUE(fs.value()->close(h.value()).ok());

  auto contents = mem->contents("mix.bin");
  ASSERT_TRUE(contents.ok());
  const std::string got(reinterpret_cast<const char*>(contents.value().data()),
                        contents.value().size());
  EXPECT_TRUE(got == expect);
  // With a partial chunk parked, large writes take the aggregation path
  // (current != nullptr) — but at least some fell on a clean append point.
  EXPECT_GT(fs.value()->stats().snapshot().bypass_writes, 0u);
}

TEST(LargeWriteBypass, OverwriteBelowHighWaterMarkAggregates) {
  auto mem = std::make_shared<MemBackend>();
  Config cfg;
  cfg.chunk_size = 8 * KiB;
  cfg.pool_size = 4 * 8 * KiB;
  auto fs = Crfs::mount(mem, cfg);
  ASSERT_TRUE(fs.ok());

  auto h = fs.value()->open("ow.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  const std::string first(32 * KiB, '1');
  ASSERT_TRUE(fs.value()->write(h.value(), as_bytes(first), 0).ok());
  EXPECT_EQ(fs.value()->stats().snapshot().bypass_writes, 1u);

  // Rewriting inside the already-written range must NOT bypass: ordering
  // against queued chunks for those bytes is only guaranteed on the
  // aggregation path.
  const std::string second(16 * KiB, '2');
  ASSERT_TRUE(fs.value()->write(h.value(), as_bytes(second), 8 * KiB).ok());
  EXPECT_EQ(fs.value()->stats().snapshot().bypass_writes, 1u);  // unchanged
  ASSERT_TRUE(fs.value()->close(h.value()).ok());

  auto contents = mem->contents("ow.bin");
  ASSERT_TRUE(contents.ok());
  const std::string got(reinterpret_cast<const char*>(contents.value().data()),
                        contents.value().size());
  ASSERT_EQ(got.size(), first.size());
  EXPECT_EQ(got.substr(0, 8 * KiB), first.substr(0, 8 * KiB));
  EXPECT_EQ(got.substr(8 * KiB, 16 * KiB), second);
  EXPECT_EQ(got.substr(24 * KiB), first.substr(24 * KiB));
}

TEST(LargeWriteBypass, NoBypassOptionDisablesIt) {
  auto mem = std::make_shared<MemBackend>();
  Config cfg;
  cfg.chunk_size = 16 * KiB;
  cfg.pool_size = 4 * 16 * KiB;
  cfg.large_write_bypass = false;
  auto fs = Crfs::mount(mem, cfg);
  ASSERT_TRUE(fs.ok());

  auto h = fs.value()->open("nb.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  std::string payload(64 * KiB, 'N');
  ASSERT_TRUE(fs.value()->write(h.value(), as_bytes(payload), 0).ok());
  EXPECT_EQ(fs.value()->stats().snapshot().bypass_writes, 0u);
  ASSERT_TRUE(fs.value()->close(h.value()).ok());
  auto contents = mem->contents("nb.bin");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value().size(), payload.size());
}

// --------------------------------------------------- in-flight depth

// The structural win the async engine exists for: one submitter (in
// production, one IO thread) keeps many backend writes in flight. The
// sync engine completes inline — depth can never exceed 1 per thread —
// while the uring engine holds every submitted run in the ring until
// reaped. Driving the engine directly (submit six runs, then flush,
// then reap) makes the depth observation deterministic: nothing
// completes until we ask, so inflight() and the crfs.io.inflight_depth
// histogram must both see all six, regardless of scheduler timing.
TEST(IoEngineDepth, UringSustainsDepthBeyondIoThreads) {
  TempDir dir("depth");
  auto backend = PosixBackend::create(dir.path().string());
  ASSERT_TRUE(backend.ok());
  auto& b = *backend.value();
  auto f = b.open_file("deep.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());

  obs::Registry reg;
  IoEngineObs obs;
  obs.inflight_depth = &reg.histogram("crfs.io.inflight_depth");
  int completions = 0;
  auto eng = make_uring_engine(
      8, b, {}, obs, [&](IoRun, Status st, std::uint64_t, std::uint64_t) {
        EXPECT_TRUE(st.ok()) << st.error().to_string();
        completions += 1;
      });
  if (eng == nullptr) GTEST_SKIP() << "io_uring unavailable on this kernel";

  // Six non-adjacent 4 KiB stripes: each is its own run (no coalescing
  // possible), submitted back to back with no reap in between.
  constexpr int kRuns = 6;
  auto file = std::make_shared<FileEntry>("deep.bin", f.value());
  std::string expect(static_cast<std::size_t>(kRuns - 1) * 8 * KiB + 4 * KiB, '\0');
  for (int i = 0; i < kRuns; ++i) {
    const std::uint64_t off = static_cast<std::uint64_t>(i) * 8 * KiB;
    const std::string stripe(4 * KiB, static_cast<char>('a' + i));
    expect.replace(off, stripe.size(), stripe);
    auto chunk = std::make_unique<Chunk>(4 * KiB);
    chunk->reset(off);
    chunk->append(as_bytes(stripe));
    IoRun run;
    run.offset = off;
    run.total = chunk->fill();
    run.jobs.push_back(WriteJob{file, std::move(chunk), nullptr});
    eng->submit(std::move(run));
  }
  eng->flush();
  EXPECT_EQ(eng->inflight(), static_cast<std::size_t>(kRuns))
      << "submitted runs should stay in flight until reaped";

  while (eng->inflight() > 0) eng->reap(/*wait=*/true);
  EXPECT_EQ(completions, kRuns);

  const auto snap = reg.snapshot();
  bool found = false;
  for (const auto& [name, hist] : snap.histograms) {
    if (name == "crfs.io.inflight_depth") {
      found = true;
      EXPECT_GE(hist.max, static_cast<std::uint64_t>(kRuns))
          << "ring depth never reached the number of unreaped submissions";
    }
  }
  EXPECT_TRUE(found);

  eng.reset();  // drop the registered-fd slot before closing
  ASSERT_TRUE(b.close_file(f.value()).ok());
  EXPECT_EQ(read_file(dir.path() / "deep.bin"), expect);
}

}  // namespace
}  // namespace crfs
