// Control-plane tests: KnobPlane bounds/veto/generation semantics, the
// Crfs tune plumbing (API, .crfs_tune control file, audit trail in
// metrics/stats_json), the Controller's rule edges and cooldown (exactly
// two decisions across fire -> cooldown -> re-fire, under both a real
// Sampler thread and manual virtual-time ticks), and the DES policy
// scenario: against a concurrency-sensitive backend the shed_io rule
// observably lowers submission aggregation and backend residency, and
// identical replays produce byte-identical decision logs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "backend/mem_backend.h"
#include "common/units.h"
#include "crfs/crfs.h"
#include "crfs/fuse_shim.h"
#include "crfs/knobs.h"
#include "obs/controller.h"
#include "obs/health.h"
#include "obs/json_lite.h"
#include "obs/metrics.h"
#include "obs/prom.h"
#include "obs/sampler.h"
#include "sim/crfs_sim.h"
#include "sim/engine.h"
#include "sim/throttled_sim.h"

namespace crfs {
namespace {

std::uint64_t counter_value(const obs::Registry& reg, std::string_view name) {
  for (const auto& [n, v] : reg.snapshot().counters) {
    if (n == name) return v;
  }
  return 0;
}

std::int64_t gauge_value(const obs::Registry& reg, std::string_view name) {
  for (const auto& [n, v] : reg.snapshot().gauges) {
    if (n == name) return v;
  }
  return -1;
}

// ------------------------------------------------------------ KnobPlane

TEST(KnobPlane, TuneAppliesWithinBoundsAndBumpsGeneration) {
  KnobPlane plane;
  double live = 4.0;
  plane.define(KnobDef{"x", 1.0, 10.0, "chunks"}, live,
               [&](double v, double*, std::string*) {
                 live = v;
                 return true;
               });
  EXPECT_EQ(plane.generation(), 0u);
  EXPECT_DOUBLE_EQ(plane.snapshot()->get("x"), 4.0);

  const TuneResult r = plane.tune("x", 6.0);
  EXPECT_EQ(r.outcome, "applied");
  EXPECT_DOUBLE_EQ(r.from, 4.0);
  EXPECT_DOUBLE_EQ(r.to, 6.0);
  EXPECT_TRUE(r.reason.empty());
  EXPECT_EQ(r.generation, 1u);
  EXPECT_DOUBLE_EQ(live, 6.0);
  EXPECT_DOUBLE_EQ(plane.snapshot()->get("x"), 6.0);
  EXPECT_EQ(plane.generation(), 1u);
}

TEST(KnobPlane, OutOfBoundsRequestsAreClampedWithReason) {
  KnobPlane plane;
  plane.define(KnobDef{"x", 1.0, 10.0, "chunks"}, 4.0,
               [](double, double*, std::string*) { return true; });
  const TuneResult high = plane.tune("x", 100.0);
  EXPECT_EQ(high.outcome, "clamped");
  EXPECT_DOUBLE_EQ(high.to, 10.0);
  EXPECT_EQ(high.reason, "clamped to [1, 10]");
  const TuneResult low = plane.tune("x", -3.0);
  EXPECT_EQ(low.outcome, "clamped");
  EXPECT_DOUBLE_EQ(low.to, 1.0);
}

TEST(KnobPlane, UnknownKnobAndApplyRefusalAreVetoed) {
  KnobPlane plane;
  plane.define(KnobDef{"x", 1.0, 10.0, "chunks"}, 4.0,
               [](double, double*, std::string* reason) {
                 *reason = "component says no";
                 return false;
               });
  const TuneResult unknown = plane.tune("y", 2.0);
  EXPECT_EQ(unknown.outcome, "vetoed");
  EXPECT_EQ(unknown.reason, "unknown knob 'y'");

  const TuneResult refused = plane.tune("x", 8.0);
  EXPECT_EQ(refused.outcome, "vetoed");
  EXPECT_EQ(refused.reason, "component says no");
  EXPECT_DOUBLE_EQ(refused.to, 4.0);  // value untouched
  // Vetoes never publish: generation stays 0 and the snapshot is stale.
  EXPECT_EQ(plane.generation(), 0u);
  EXPECT_DOUBLE_EQ(plane.snapshot()->get("x"), 4.0);
}

TEST(KnobPlane, PartialApplyReportsClampedWithApplyReason) {
  KnobPlane plane;
  plane.define(KnobDef{"x", 1.0, 100.0, "chunks"}, 8.0,
               [](double v, double* achieved, std::string* reason) {
                 if (v < 8.0) {
                   *achieved = 6.0;  // e.g. shrink bounded by free chunks
                   *reason = "shrink bounded by free chunks";
                 }
                 return true;
               });
  const TuneResult r = plane.tune("x", 2.0);
  EXPECT_EQ(r.outcome, "clamped");
  EXPECT_DOUBLE_EQ(r.to, 6.0);
  EXPECT_EQ(r.reason, "shrink bounded by free chunks");
  EXPECT_DOUBLE_EQ(plane.snapshot()->get("x"), 6.0);
}

TEST(KnobPlane, ToJsonListsSortedKnobsWithBounds) {
  KnobPlane plane;
  plane.define(KnobDef{"zeta", 0.0, 5.0, "ms"}, 1.0, {});
  plane.define(KnobDef{"alpha", 1.0, 10.0, "chunks"}, 4.0, {});
  auto doc = obs::json::parse(plane.to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(doc->get("generation")->number, 0.0);
  const auto* knobs = doc->get("knobs");
  ASSERT_TRUE(knobs != nullptr && knobs->is_array());
  ASSERT_EQ(knobs->array->size(), 2u);
  EXPECT_EQ((*knobs->array)[0].get("name")->string, "alpha");
  EXPECT_EQ((*knobs->array)[1].get("name")->string, "zeta");
  EXPECT_DOUBLE_EQ((*knobs->array)[0].get("max")->number, 10.0);
  EXPECT_EQ((*knobs->array)[0].get("unit")->string, "chunks");
}

// ------------------------------------------------------- Crfs::tune API

Config small_config() {
  Config cfg;
  cfg.chunk_size = 256 * KiB;
  cfg.pool_size = 1 * MiB;  // 4 chunks
  cfg.io_threads = 1;
  return cfg;
}

TEST(CrfsTune, PoolGrowReclampsBatchAndLandsEverywhere) {
  auto fs = Crfs::mount(std::make_shared<MemBackend>(), small_config());
  ASSERT_TRUE(fs.ok());
  Crfs& crfs = *fs.value();

  // 4-chunk pool: the effective io_batch was mount-clamped to half of it.
  EXPECT_DOUBLE_EQ(crfs.knob_plane().snapshot()->get("io_batch"), 2.0);

  const obs::CtlDecision d = crfs.tune("pool_chunks", 8.0);
  EXPECT_EQ(d.outcome, "applied");
  EXPECT_EQ(d.source, "manual");
  EXPECT_EQ(d.rule, "tune");
  EXPECT_DOUBLE_EQ(d.from, 4.0);
  EXPECT_DOUBLE_EQ(d.to, 8.0);
  EXPECT_EQ(d.seq, 1u);

  // Audit trail: decision log, crfs.ctl.* counters, knob gauge, event log.
  EXPECT_EQ(crfs.decision_log().total(), 1u);
  EXPECT_EQ(counter_value(crfs.metrics(), "crfs.ctl.decisions"), 1u);
  EXPECT_EQ(counter_value(crfs.metrics(), "crfs.ctl.applied"), 1u);
  EXPECT_EQ(gauge_value(crfs.metrics(), "crfs.knob.pool_chunks"), 8);
  const auto events = crfs.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].rule, "ctl.tune");
  EXPECT_NE(events[0].message.find("manual pool_chunks 4 -> 8"), std::string::npos);

  // A raise beyond the knob's ceiling clamps with the bounds in the reason.
  const obs::CtlDecision big = crfs.tune("pool_chunks", 1000.0);
  EXPECT_EQ(big.outcome, "clamped");
  EXPECT_DOUBLE_EQ(big.to, 16.0);  // tune_pool_max auto = 4x pool
  EXPECT_NE(big.reason.find("clamped to [1, 16]"), std::string::npos);

  // io_batch may now use half of the grown pool.
  const obs::CtlDecision batch = crfs.tune("io_batch", 8.0);
  EXPECT_EQ(batch.outcome, "applied");
  EXPECT_DOUBLE_EQ(batch.to, 8.0);

  // ...but never more than that: requests beyond it report the cap.
  const obs::CtlDecision over = crfs.tune("io_batch", 64.0);
  EXPECT_EQ(over.outcome, "clamped");
  EXPECT_DOUBLE_EQ(over.to, 8.0);
  EXPECT_NE(over.reason.find("capped at half the pool"), std::string::npos);
}

TEST(CrfsTune, ComponentVetoesAreAuditedNotApplied) {
  auto fs = Crfs::mount(std::make_shared<MemBackend>(), small_config());
  ASSERT_TRUE(fs.ok());
  Crfs& crfs = *fs.value();

  // Sync engine: no ring to re-arm.
  const obs::CtlDecision ring = crfs.tune("uring_depth", 8.0);
  EXPECT_EQ(ring.outcome, "vetoed");
  EXPECT_NE(ring.reason.find("io engine 'sync' has no ring"), std::string::npos);

  // sample_ms=0 mount: no sampler thread to re-arm.
  const obs::CtlDecision period = crfs.tune("sample_ms", 50.0);
  EXPECT_EQ(period.outcome, "vetoed");
  EXPECT_NE(period.reason.find("sampler disabled"), std::string::npos);

  const obs::CtlDecision unknown = crfs.tune("warp_factor", 9.0);
  EXPECT_EQ(unknown.outcome, "vetoed");
  EXPECT_NE(unknown.reason.find("unknown knob 'warp_factor'"), std::string::npos);

  EXPECT_EQ(counter_value(crfs.metrics(), "crfs.ctl.vetoed"), 3u);
  EXPECT_EQ(crfs.knob_plane().generation(), 0u);  // nothing moved
}

TEST(CrfsTune, StatsJsonCarriesSchemaVersionAndControllerSection) {
  auto fs = Crfs::mount(std::make_shared<MemBackend>(), small_config());
  ASSERT_TRUE(fs.ok());
  (void)fs.value()->tune("pool_chunks", 8.0);

  auto doc = obs::json::parse(fs.value()->stats_json());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->get("schema_version") != nullptr);
  EXPECT_DOUBLE_EQ(doc->get("schema_version")->number, 3.0);
  const auto* ctl = doc->get("controller");
  ASSERT_TRUE(ctl != nullptr && ctl->is_object());
  EXPECT_FALSE(ctl->get("enabled")->boolean);
  EXPECT_DOUBLE_EQ(ctl->get("generation")->number, 1.0);
  EXPECT_DOUBLE_EQ(ctl->get("decisions_total")->number, 1.0);
  const auto* decisions = ctl->get("decisions");
  ASSERT_TRUE(decisions != nullptr && decisions->is_array());
  ASSERT_EQ(decisions->array->size(), 1u);
  EXPECT_EQ((*decisions->array)[0].get("knob")->string, "pool_chunks");
  const auto* knobs = ctl->get("knob_plane")->get("knobs");
  ASSERT_TRUE(knobs != nullptr && knobs->is_array());
  EXPECT_EQ(knobs->array->size(), 12u);
}

// ----------------------------------------------- .crfs_tune control file

TEST(TuneControlFile, TokensApplyAndMalformedOnesNameTheToken) {
  auto fs = Crfs::mount(std::make_shared<MemBackend>(), small_config());
  ASSERT_TRUE(fs.ok());
  FuseShim shim(*fs.value(), FuseOptions{});

  auto h = shim.open(".crfs_tune", {.write = true});
  ASSERT_TRUE(h.ok());

  const auto put = [&](const char* text) {
    std::vector<std::byte> payload(std::strlen(text));
    std::memcpy(payload.data(), text, payload.size());
    return shim.write(h.value(), payload, 0);
  };

  auto good = put("pool_chunks=8, io_batch=4");
  ASSERT_TRUE(good.ok());
  const auto decisions = fs.value()->decision_log().snapshot();
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0].source, "ctlfile");
  EXPECT_EQ(decisions[0].knob, "pool_chunks");
  EXPECT_EQ(decisions[1].knob, "io_batch");
  EXPECT_DOUBLE_EQ(fs.value()->knob_plane().snapshot()->get("pool_chunks"), 8.0);

  // Malformed / unknown tokens fail with EINVAL naming the exact token.
  auto bad_value = put("io_batch=abc");
  ASSERT_FALSE(bad_value.ok());
  EXPECT_NE(bad_value.error().to_string().find("\"io_batch=abc\""), std::string::npos);
  auto no_eq = put("io_batch");
  ASSERT_FALSE(no_eq.ok());
  EXPECT_NE(no_eq.error().to_string().find("expected knob=value"), std::string::npos);
  auto unknown = put("bogus=1");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.error().to_string().find("\"bogus=1\""), std::string::npos);
  EXPECT_NE(unknown.error().to_string().find("unknown knob"), std::string::npos);

  // Vetoed knobs surface the veto reason through the same errno path.
  auto vetoed = put("uring_depth=8");
  ASSERT_FALSE(vetoed.ok());
  EXPECT_NE(vetoed.error().to_string().find("no ring"), std::string::npos);

  // Reads return EOF; the control file never reaches the backend.
  std::byte buf[16];
  auto rd = shim.read(h.value(), std::span<std::byte>(buf), 0);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(rd.value(), 0u);
  ASSERT_TRUE(shim.close(h.value()).ok());
}

// --------------------------------- cooldown: fire, cool down, re-fire

// Standalone control loop: a settable free-chunk gauge drives the
// HealthMonitor's pool_starvation rule, which the grow_pool policy acts
// on. The knob plane is a bare one-knob plane so the test observes pure
// rule/cooldown behaviour.
struct LoopParts {
  obs::Registry reg;
  std::atomic<std::int64_t> free{0};
  obs::EventBuffer events{64};
  obs::HealthMonitor monitor;
  KnobPlane plane;
  obs::DecisionLog log{64, nullptr, nullptr};
  obs::Controller controller;

  explicit LoopParts(std::uint64_t cooldown_ns)
      : monitor(obs::HealthConfig{.starvation_samples = 1}, events),
        controller(
            obs::ControllerConfig{.cooldown_ns = cooldown_ns}, log, &events, nullptr,
            [this](std::string_view name, double fb) {
              return plane.snapshot()->get(name, fb);
            },
            [this](std::string_view name, double requested) {
              const TuneResult r = plane.tune(name, requested);
              return obs::TuneOutcome{r.outcome, r.from, r.to, r.reason, r.generation};
            }) {
    reg.gauge_fn("crfs.pool.free_chunks", [this] { return free.load(); });
    plane.define(KnobDef{"pool_chunks", 1.0, 64.0, "chunks"}, 4.0,
                 [](double, double*, std::string*) { return true; });
  }
};

TEST(ControllerCooldown, ExactlyTwoDecisionsOnVirtualTimeTicks) {
  const auto run = [] {
    LoopParts parts(/*cooldown_ns=*/1'000'000'000);
    obs::Sampler sampler(parts.reg);
    sampler.set_health_monitor(&parts.monitor);
    sampler.set_tick_observer(
        [&](const obs::Sample& s) { parts.controller.tick(s); });

    const auto step = [&](std::int64_t free, std::uint64_t ts_ms) {
      parts.free.store(free);
      sampler.tick(ts_ms * 1'000'000);
    };
    step(0, 10);    // starvation edge -> grow_pool fires (decision 1)
    step(8, 20);    // clears; health rule re-arms
    step(0, 30);    // new edge, but inside the 1 s cooldown: no decision
    step(8, 40);    // clears again
    step(0, 1500);  // new edge, cooldown elapsed -> re-fires (decision 2)
    step(16, 1600);
    return parts.log.snapshot();
  };

  const auto decisions = run();
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0].rule, "grow_pool");
  EXPECT_DOUBLE_EQ(decisions[0].from, 4.0);
  EXPECT_DOUBLE_EQ(decisions[0].to, 8.0);
  EXPECT_EQ(decisions[0].ts_ns, 10u * 1'000'000);
  EXPECT_EQ(decisions[1].rule, "grow_pool");
  EXPECT_DOUBLE_EQ(decisions[1].from, 8.0);
  EXPECT_DOUBLE_EQ(decisions[1].to, 16.0);
  EXPECT_EQ(decisions[1].ts_ns, 1500u * 1'000'000);

  // Virtual-time decisions replay byte-identically.
  EXPECT_EQ(obs::decisions_to_json(run()), obs::decisions_to_json(decisions));
}

TEST(ControllerCooldown, ExactlyTwoDecisionsOnRealSamplerThread) {
  LoopParts parts(/*cooldown_ns=*/150'000'000);  // 150 ms
  obs::Sampler sampler(parts.reg);
  sampler.set_health_monitor(&parts.monitor);
  sampler.set_tick_observer([&](const obs::Sample& s) { parts.controller.tick(s); });

  const auto wait_for_total = [&](std::uint64_t want) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (parts.log.total() < want && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return parts.log.total();
  };

  parts.free.store(0);
  sampler.start(std::chrono::milliseconds(1));
  EXPECT_EQ(wait_for_total(1), 1u);  // first starvation -> decision 1

  // Clear the condition and sit out the cooldown: the health rule re-arms
  // but nothing new fires.
  parts.free.store(8);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(parts.log.total(), 1u);

  parts.free.store(0);  // re-starve after the cooldown -> decision 2
  EXPECT_EQ(wait_for_total(2), 2u);

  parts.free.store(16);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  sampler.stop();
  EXPECT_EQ(parts.log.total(), 2u);  // exactly two, not three

  const auto decisions = parts.log.snapshot();
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0].rule, "grow_pool");
  EXPECT_DOUBLE_EQ(decisions[0].to, 8.0);
  EXPECT_DOUBLE_EQ(decisions[1].to, 16.0);
}

// ------------------------------------------------- DES policy scenario

sim::Task drive_shed_stream(sim::CrfsSimNode& node, std::uint64_t bytes) {
  co_await node.app_write(0, bytes);
  co_await node.close_file(0);
  node.stop();
}

struct ShedRun {
  std::string decisions_json;
  std::vector<obs::CtlDecision> decisions;
  double mean_residency_s = 0.0;
  double final_io_batch = 0.0;
  double final_uring_depth = 0.0;
  std::uint64_t shed_fired = 0;
};

// 256 MiB checkpoint stream against a backend whose effective bandwidth
// degrades with concurrent pending calls (ThrottledBackendSim). The uring
// mirror keeps up to uring_depth coalesced runs pending, so without
// intervention the station is permanently crowded; the shed_io rule
// halves io_batch/uring_depth once pwrite p99 blows past the threshold
// with a standing queue. widen is effectively disabled so the scenario
// isolates the shed policy.
ShedRun run_shed_scenario(bool controlled) {
  sim::Simulation sim;
  sim::Calibration cal;
  sim::ThrottledBackendSim backend(sim);
  Config cfg;
  cfg.chunk_size = 1 * MiB;
  cfg.pool_size = 128 * MiB;  // pool never binds; the ring gate does
  cfg.io_threads = 2;
  cfg.io_batch = 4;
  cfg.io_engine = IoEngineKind::kUring;
  cfg.uring_depth = 16;
  sim::CrfsSimNode node(sim, cal, backend, /*node=*/0, cfg, FuseOptions{}, /*ppn=*/1);

  obs::EventBuffer events(256);
  obs::DecisionLog log(256, &node.metrics(), &events);
  obs::ControllerConfig ctl_cfg;
  ctl_cfg.widen_rising_samples = 1'000'000;  // isolate shed_io
  obs::Controller controller(
      ctl_cfg, log, &events, &node.metrics(),
      [&](std::string_view name, double fb) {
        return node.knob_plane().snapshot()->get(name, fb);
      },
      [&](std::string_view name, double requested) {
        const TuneResult r = node.knob_plane().tune(name, requested);
        return obs::TuneOutcome{r.outcome, r.from, r.to, r.reason, r.generation};
      });

  obs::Sampler sampler(node.metrics());
  if (controlled) {
    sampler.set_tick_observer([&](const obs::Sample& s) { controller.tick(s); });
  }

  node.start();
  sim.spawn(node.sample_loop(sampler, 0.010));
  sim.spawn(drive_shed_stream(node, 256 * MiB));
  sim.run();

  ShedRun out;
  out.decisions = log.snapshot();
  out.decisions_json = obs::decisions_to_json(out.decisions);
  out.mean_residency_s = backend.mean_residency_s();
  out.final_io_batch = node.knob_plane().snapshot()->get("io_batch");
  out.final_uring_depth = node.knob_plane().snapshot()->get("uring_depth");
  out.shed_fired = counter_value(node.metrics(), "crfs.ctl.fired.shed_io");
  return out;
}

TEST(ControllerSim, ShedsAggregationAgainstThrottledBackend) {
  const ShedRun off = run_shed_scenario(false);
  const ShedRun on = run_shed_scenario(true);

  // Uncontrolled: no decisions, knobs never move.
  EXPECT_TRUE(off.decisions.empty());
  EXPECT_DOUBLE_EQ(off.final_io_batch, 4.0);
  EXPECT_DOUBLE_EQ(off.final_uring_depth, 16.0);

  // Controlled: the shed rule fired and the submission knobs came down.
  EXPECT_GE(on.shed_fired, 1u);
  ASSERT_FALSE(on.decisions.empty());
  bool shed_applied = false;
  for (const auto& d : on.decisions) {
    EXPECT_EQ(d.rule, "shed_io");
    EXPECT_EQ(d.source, "controller");
    if (d.outcome == "applied" && d.to < d.from) shed_applied = true;
  }
  EXPECT_TRUE(shed_applied);
  EXPECT_LT(on.final_io_batch, 4.0);
  EXPECT_LT(on.final_uring_depth, 16.0);

  // The §IV payoff: less submission concurrency against the interfering
  // station means every call queues behind a smaller, faster-draining
  // crowd — backend residency drops.
  EXPECT_LT(on.mean_residency_s, off.mean_residency_s);
}

TEST(ControllerSim, IdenticalReplaysYieldByteIdenticalDecisionLogs) {
  const ShedRun a = run_shed_scenario(true);
  const ShedRun b = run_shed_scenario(true);
  ASSERT_FALSE(a.decisions.empty());
  EXPECT_EQ(a.decisions_json, b.decisions_json);
}

// ------------------------------------------------------------ widen_io

TEST(ControllerRules, WidenFiresOnRisingQueueWithHealthyBackend) {
  obs::Registry reg;
  std::atomic<std::int64_t> depth{0};
  reg.gauge_fn("crfs.queue.depth", [&] { return depth.load(); });
  auto& pwrite = reg.histogram("crfs.io.pwrite_ns");
  pwrite.record(100'000);  // 0.1 ms: comfortably healthy

  KnobPlane plane;
  plane.define(KnobDef{"io_batch", 1.0, 64.0, "chunks"}, 4.0,
               [](double, double*, std::string*) { return true; });
  plane.define(KnobDef{"uring_depth", 1.0, 4096.0, "sqes"}, 16.0,
               [](double, double*, std::string*) { return true; });
  obs::DecisionLog log(64, nullptr, nullptr);
  obs::Controller controller(
      obs::ControllerConfig{}, log, nullptr, nullptr,
      [&](std::string_view name, double fb) { return plane.snapshot()->get(name, fb); },
      [&](std::string_view name, double requested) {
        const TuneResult r = plane.tune(name, requested);
        return obs::TuneOutcome{r.outcome, r.from, r.to, r.reason, r.generation};
      });

  obs::Sampler sampler(reg);
  sampler.set_tick_observer([&](const obs::Sample& s) { controller.tick(s); });
  // Depth strictly rising for 4 frames: widen fires on the 4th (3 rising
  // deltas), doubling both submission knobs.
  for (std::int64_t d = 1; d <= 4; ++d) {
    depth.store(d);
    sampler.tick(static_cast<std::uint64_t>(d) * 10'000'000);
  }
  const auto decisions = log.snapshot();
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0].rule, "widen_io");
  EXPECT_EQ(decisions[0].knob, "io_batch");
  EXPECT_DOUBLE_EQ(decisions[0].to, 8.0);
  EXPECT_EQ(decisions[1].knob, "uring_depth");
  EXPECT_DOUBLE_EQ(decisions[1].to, 32.0);
}

// Prometheus exposition is a scrape endpoint: it must be readable while
// the controller (or an operator) retunes knobs and the pipeline writes.
// Runs under the TSan CI job — any knob-plane/registry/exposition data
// race fails the suite there.
TEST(ControlPlane, PrometheusScrapeRacesKnobRetunes) {
  Config cfg = small_config();
  cfg.sample_ms = 5;  // live sampler ticking alongside
  auto fs = Crfs::mount(std::make_shared<MemBackend>(), cfg);
  ASSERT_TRUE(fs.ok());
  Crfs& crfs = *fs.value();

  std::atomic<bool> done{false};
  std::thread writer([&] {
    FuseShim shim(crfs, FuseOptions{});
    std::vector<std::byte> record(64 * KiB, std::byte{1});
    auto h = shim.open("scrape.ckpt", {.create = true, .truncate = true, .write = true});
    ASSERT_TRUE(h.ok());
    for (std::size_t off = 0; off < 8 * MiB; off += record.size()) {
      ASSERT_TRUE(shim.write(h.value(), record, off).ok());
    }
    ASSERT_TRUE(shim.close(h.value()).ok());
    done.store(true);
  });
  std::thread tuner([&] {
    // Hammer every hot-path-visible knob, including the slow-store
    // threshold the IO completion path reads per chunk.
    for (int i = 0; !done.load() || i < 16; ++i) {
      (void)crfs.tune("io_batch", 1.0 + i % 4);
      (void)crfs.tune("pool_chunks", 4.0 + i % 3);
      (void)crfs.tune("slow_capture_ms", (i % 2) != 0 ? 1.0 : 1000.0);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (i >= 1000) break;  // safety against a stuck writer
    }
  });
  std::string last;
  for (int scrape = 0; scrape < 50; ++scrape) {
    last = obs::to_prometheus(crfs.metrics().snapshot());
    EXPECT_NE(last.find("crfs_"), std::string::npos);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  writer.join();
  tuner.join();
  // The final exposition carries the knob gauges with legal values.
  last = obs::to_prometheus(crfs.metrics().snapshot());
  EXPECT_NE(last.find("crfs_knob_io_batch"), std::string::npos);
  EXPECT_NE(last.find("crfs_knob_slow_capture_ms"), std::string::npos);
  EXPECT_GT(crfs.knob_plane().generation(), 0u);
}

}  // namespace
}  // namespace crfs
