// Tests for CheckpointSet (epoch management, atomic publish, crash
// recovery, pruning) and the mount-option parser.
#include <gtest/gtest.h>

#include "backend/mem_backend.h"
#include "blcr/checkpoint_set.h"
#include "blcr/checkpoint_writer.h"
#include "blcr/process_image.h"
#include "common/units.h"
#include "crfs/mount_options.h"

namespace crfs::blcr {
namespace {

class CheckpointSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mem_ = std::make_shared<MemBackend>();
    auto fs = Crfs::mount(mem_, Config{.chunk_size = 256 * KiB, .pool_size = 1 * MiB});
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(fs.value());
    shim_ = std::make_unique<FuseShim>(*fs_, FuseOptions{});
  }

  // Writes one full epoch with `ranks` small images; returns its id.
  unsigned write_epoch(CheckpointSet& set, unsigned ranks, std::uint64_t seed) {
    auto writer = set.begin_epoch(ranks);
    EXPECT_TRUE(writer.ok());
    for (unsigned r = 0; r < ranks; ++r) {
      const auto image = ProcessImage::synthesize(r, 512 * KiB, seed + r);
      auto file = writer.value().open_rank(r);
      EXPECT_TRUE(file.ok());
      CrfsFileSink sink(file.value());
      auto crc = CheckpointWriter::write_image(image, sink);
      EXPECT_TRUE(crc.ok());
      EXPECT_TRUE(file.value().close().ok());
      writer.value().record(r, image.content_bytes(), crc.value());
    }
    EXPECT_TRUE(writer.value().commit().ok());
    return writer.value().epoch();
  }

  std::shared_ptr<MemBackend> mem_;
  std::unique_ptr<Crfs> fs_;
  std::unique_ptr<FuseShim> shim_;
};

TEST_F(CheckpointSetTest, OpenCreatesBaseDirectory) {
  auto set = CheckpointSet::open(*shim_, "ckpts");
  ASSERT_TRUE(set.ok());
  EXPECT_TRUE(fs_->getattr("ckpts").value().is_dir);
  EXPECT_TRUE(set.value().epochs().value().empty());
  EXPECT_FALSE(set.value().latest().value().has_value());
}

TEST_F(CheckpointSetTest, CommitPublishesEpochAtomically) {
  auto set = CheckpointSet::open(*shim_, "ckpts");
  ASSERT_TRUE(set.ok());
  const unsigned epoch = write_epoch(set.value(), 3, 100);
  EXPECT_EQ(epoch, 0u);

  auto epochs = set.value().epochs();
  ASSERT_TRUE(epochs.ok());
  EXPECT_EQ(epochs.value(), std::vector<unsigned>{0});
  EXPECT_EQ(set.value().latest().value().value(), 0u);

  auto info = set.value().inspect(0);
  ASSERT_TRUE(info.ok()) << info.error().to_string();
  EXPECT_EQ(info.value().epoch, 0u);
  EXPECT_EQ(info.value().ranks, 3u);
  EXPECT_EQ(info.value().rank_files.size(), 3u);

  EXPECT_TRUE(set.value().verify(0).ok());
  // No staging leftovers.
  auto names = fs_->list_dir("ckpts");
  ASSERT_TRUE(names.ok());
  for (const auto& name : names.value()) {
    EXPECT_FALSE(name.ends_with(".tmp")) << name;
  }
}

TEST_F(CheckpointSetTest, EpochIdsIncrease) {
  auto set = CheckpointSet::open(*shim_, "ckpts");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(write_epoch(set.value(), 2, 1), 0u);
  EXPECT_EQ(write_epoch(set.value(), 2, 2), 1u);
  EXPECT_EQ(write_epoch(set.value(), 2, 3), 2u);
  EXPECT_EQ(set.value().latest().value().value(), 2u);
}

TEST_F(CheckpointSetTest, CommitRefusesMissingRanks) {
  auto set = CheckpointSet::open(*shim_, "ckpts");
  ASSERT_TRUE(set.ok());
  auto writer = set.value().begin_epoch(2);
  ASSERT_TRUE(writer.ok());
  {
    auto file = writer.value().open_rank(0);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value().write("x", 1).ok());
    ASSERT_TRUE(file.value().close().ok());
  }
  writer.value().record(0, 1, 42);
  // rank 1 never recorded:
  const Status st = writer.value().commit();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, EINVAL);
  ASSERT_TRUE(writer.value().abort().ok());
  EXPECT_TRUE(set.value().epochs().value().empty());
}

TEST_F(CheckpointSetTest, AbandonedStagingIsInvisibleAndPrunable) {
  auto set = CheckpointSet::open(*shim_, "ckpts");
  ASSERT_TRUE(set.ok());
  write_epoch(set.value(), 2, 5);
  {
    // Simulate a crash mid-checkpoint: writer destroyed without commit
    // after writing partial data.
    auto writer = set.value().begin_epoch(2);
    ASSERT_TRUE(writer.ok());
    auto file = writer.value().open_rank(0);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value().write("partial", 7).ok());
    ASSERT_TRUE(file.value().close().ok());
    // EpochWriter's destructor aborts (removes staging).
  }
  // Restart sees only the committed epoch.
  EXPECT_EQ(set.value().epochs().value(), std::vector<unsigned>{0});
  EXPECT_TRUE(set.value().verify(0).ok());
}

TEST_F(CheckpointSetTest, StaleStagingFromHardCrashIsPrunedNotListed) {
  auto set = CheckpointSet::open(*shim_, "ckpts");
  ASSERT_TRUE(set.ok());
  write_epoch(set.value(), 1, 5);
  // Hard crash: staging directory left on disk (bypass EpochWriter).
  ASSERT_TRUE(fs_->mkdir("ckpts/.epoch_000001.tmp").ok());
  {
    auto h = fs_->open("ckpts/.epoch_000001.tmp/rank_0.ckpt",
                       {.create = true, .truncate = true, .write = true});
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(fs_->close(h.value()).ok());
  }
  EXPECT_EQ(set.value().epochs().value(), std::vector<unsigned>{0});  // ignored
  // Before pruning, the stale staging directory reserves its id.
  {
    auto writer = set.value().begin_epoch(1);
    ASSERT_TRUE(writer.ok());
    EXPECT_EQ(writer.value().epoch(), 2u);
    ASSERT_TRUE(writer.value().abort().ok());
  }
  ASSERT_TRUE(set.value().prune(10).ok());
  // Staging gone; ids continue from the committed epochs.
  EXPECT_FALSE(fs_->getattr("ckpts/.epoch_000001.tmp").ok());
  EXPECT_EQ(write_epoch(set.value(), 1, 6), 1u);
}

TEST_F(CheckpointSetTest, PruneKeepsNewest) {
  auto set = CheckpointSet::open(*shim_, "ckpts");
  ASSERT_TRUE(set.ok());
  for (int i = 0; i < 5; ++i) write_epoch(set.value(), 1, 10 + i);
  auto removed = set.value().prune(2);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 3u);
  EXPECT_EQ(set.value().epochs().value(), (std::vector<unsigned>{3, 4}));
  EXPECT_TRUE(set.value().verify(3).ok());
  EXPECT_TRUE(set.value().verify(4).ok());
}

TEST_F(CheckpointSetTest, VerifyDetectsCorruptedRankFile) {
  auto set = CheckpointSet::open(*shim_, "ckpts");
  ASSERT_TRUE(set.ok());
  write_epoch(set.value(), 2, 7);
  // Corrupt rank 1's file directly in the backend.
  auto bf = mem_->open_file("ckpts/epoch_000000/rank_1.ckpt",
                            {.create = false, .truncate = false, .write = true});
  ASSERT_TRUE(bf.ok());
  const std::byte junk{0xFF};
  ASSERT_TRUE(mem_->pwrite(bf.value(), {&junk, 1}, 100 * KiB).ok());
  ASSERT_TRUE(mem_->close_file(bf.value()).ok());

  const Status st = set.value().verify(0);
  ASSERT_FALSE(st.ok());
}

TEST_F(CheckpointSetTest, RestartFromLatestEpoch) {
  auto set = CheckpointSet::open(*shim_, "ckpts");
  ASSERT_TRUE(set.ok());
  write_epoch(set.value(), 2, 20);
  const unsigned latest_epoch = write_epoch(set.value(), 2, 30);

  auto info = set.value().inspect(latest_epoch);
  ASSERT_TRUE(info.ok());
  for (const auto& rank : info.value().rank_files) {
    auto file = set.value().open_rank_for_restart(latest_epoch, rank.rank);
    ASSERT_TRUE(file.ok());
    CrfsFileSource source(file.value());
    auto restored = RestartReader::read_image(source);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored.value().payload_crc, rank.payload_crc);
    EXPECT_EQ(restored.value().image_bytes, rank.bytes);
  }
}

TEST_F(CheckpointSetTest, InspectRejectsGarbageManifest) {
  auto set = CheckpointSet::open(*shim_, "ckpts");
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE(fs_->mkdir("ckpts/epoch_000000").ok());
  auto h = fs_->open("ckpts/epoch_000000/MANIFEST",
                     {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  const std::string junk = "not a manifest\n";
  ASSERT_TRUE(fs_->write(h.value(), {reinterpret_cast<const std::byte*>(junk.data()),
                                     junk.size()}, 0).ok());
  ASSERT_TRUE(fs_->close(h.value()).ok());
  EXPECT_FALSE(set.value().inspect(0).ok());
}

}  // namespace
}  // namespace crfs::blcr

namespace crfs {
namespace {

TEST(MountOptions, DefaultsWhenEmpty) {
  auto opts = parse_mount_options("");
  ASSERT_TRUE(opts.ok());
  EXPECT_EQ(opts.value().config.chunk_size, 4 * MiB);
  EXPECT_EQ(opts.value().config.pool_size, 16 * MiB);
  EXPECT_EQ(opts.value().config.io_threads, 4u);
  EXPECT_TRUE(opts.value().fuse.big_writes);
}

TEST(MountOptions, ParsesFullString) {
  auto opts = parse_mount_options("chunk=1M, pool=8M ,threads=2,no_big_writes,paper_reads");
  ASSERT_TRUE(opts.ok()) << opts.error().to_string();
  EXPECT_EQ(opts.value().config.chunk_size, 1 * MiB);
  EXPECT_EQ(opts.value().config.pool_size, 8 * MiB);
  EXPECT_EQ(opts.value().config.io_threads, 2u);
  EXPECT_FALSE(opts.value().fuse.big_writes);
  EXPECT_FALSE(opts.value().config.flush_before_read);
}

TEST(MountOptions, RejectsUnknownKey) {
  EXPECT_FALSE(parse_mount_options("chnk=4M").ok());
}

TEST(MountOptions, RejectsBadValues) {
  EXPECT_FALSE(parse_mount_options("chunk=banana").ok());
  EXPECT_FALSE(parse_mount_options("threads=0").ok());
  EXPECT_FALSE(parse_mount_options("threads=abc").ok());
}

TEST(MountOptions, RejectsInvalidCombination) {
  // pool smaller than chunk fails Config::validate().
  EXPECT_FALSE(parse_mount_options("chunk=16M,pool=4M").ok());
}

TEST(MountOptions, RoundTripsThroughFormat) {
  auto opts = parse_mount_options("chunk=2M,pool=32M,threads=8,no_big_writes");
  ASSERT_TRUE(opts.ok());
  const std::string text = format_mount_options(opts.value());
  auto again = parse_mount_options(text);
  ASSERT_TRUE(again.ok()) << text;
  EXPECT_EQ(again.value().config.chunk_size, 2 * MiB);
  EXPECT_EQ(again.value().config.pool_size, 32 * MiB);
  EXPECT_EQ(again.value().config.io_threads, 8u);
  EXPECT_FALSE(again.value().fuse.big_writes);
}

}  // namespace
}  // namespace crfs
