// Read-path tests: pread conformance across every backend (short reads,
// chunk-boundary straddling, EOF), the sequential-scan prefetcher (arming,
// seek eviction, runtime toggle), coherence against buffered and racing
// writes, and bit-identical blcr restart with readahead on / off / retuned
// mid-stream.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <functional>
#include <thread>
#include <vector>

#include "backend/mem_backend.h"
#include "backend/null_backend.h"
#include "backend/posix_backend.h"
#include "backend/wrappers.h"
#include "blcr/checkpoint_writer.h"
#include "blcr/process_image.h"
#include "blcr/restart_reader.h"
#include "blcr/sinks.h"
#include "common/units.h"
#include "crfs/crfs.h"
#include "crfs/file.h"
#include "crfs/fuse_shim.h"

namespace crfs {
namespace {

constexpr std::size_t kChunk = 64 * KiB;
constexpr std::size_t kPool = 1 * MiB;

std::byte pattern_at(std::uint64_t i, std::uint64_t salt = 0) {
  return static_cast<std::byte>((i * 131 + (i >> 9) * 7 + salt + 13) & 0xff);
}

std::vector<std::byte> make_pattern(std::size_t n, std::uint64_t salt = 0) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = pattern_at(i, salt);
  return out;
}

class ReadPath : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("crfs_read_path_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

void write_file(Crfs& fs, const std::string& path, const std::vector<std::byte>& data) {
  auto h = fs.open(path, {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  // Sub-chunk pieces so the data flows through aggregation, not the bypass.
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t n = std::min<std::size_t>(48 * KiB, data.size() - off);
    ASSERT_TRUE(fs.write(h.value(), {data.data() + off, n}, off).ok());
    off += n;
  }
  ASSERT_TRUE(fs.close(h.value()).ok());
}

// Every read shape the restart path produces: a full sequential scan (arms
// the prefetcher when enabled), chunk-straddling and unaligned positioned
// reads, a short read crossing EOF, and reads at/past EOF returning 0.
void expect_readable(Crfs& fs, const std::string& path,
                     const std::vector<std::byte>& expect) {
  auto h = fs.open(path, {.create = false, .truncate = false, .write = false});
  ASSERT_TRUE(h.ok());
  const std::size_t size = expect.size();
  ASSERT_GT(size, 2 * kChunk + 2000);

  std::vector<std::byte> got(size);
  std::size_t off = 0;
  while (off < size) {
    const std::size_t want = std::min(kChunk, size - off);
    auto r = fs.read(h.value(), {got.data() + off, want}, off);
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    ASSERT_GT(r.value(), 0u) << "unexpected EOF at " << off;
    off += r.value();
  }
  EXPECT_TRUE(got == expect) << "sequential scan corrupted " << path;

  std::vector<std::byte> buf(4096);
  auto r = fs.read(h.value(), buf, kChunk - 2048);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value(), buf.size());
  EXPECT_EQ(0, std::memcmp(buf.data(), expect.data() + kChunk - 2048, buf.size()))
      << "chunk-straddling read corrupted " << path;

  std::vector<std::byte> odd(7777);
  r = fs.read(h.value(), odd, 12345);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value(), odd.size());
  EXPECT_EQ(0, std::memcmp(odd.data(), expect.data() + 12345, odd.size()))
      << "unaligned read corrupted " << path;

  std::vector<std::byte> tail(8192);
  r = fs.read(h.value(), tail, size - 1000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 1000u) << "EOF-crossing read not short on " << path;
  EXPECT_EQ(0, std::memcmp(tail.data(), expect.data() + size - 1000, 1000));

  r = fs.read(h.value(), tail, size);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0u) << "read at EOF not empty on " << path;
  r = fs.read(h.value(), tail, size + 4096);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0u) << "read past EOF not empty on " << path;

  ASSERT_TRUE(fs.close(h.value()).ok());
}

TEST_F(ReadPath, PreadConformanceAcrossBackends) {
  const auto data = make_pattern(3 * kChunk + 1234);
  struct Case {
    const char* label;
    std::function<std::shared_ptr<BackendFs>(const std::filesystem::path&)> make;
  };
  const Case cases[] = {
      {"mem", [](const auto&) { return std::make_shared<MemBackend>(); }},
      {"posix",
       [](const auto& dir) -> std::shared_ptr<BackendFs> {
         std::filesystem::create_directories(dir);
         auto b = PosixBackend::create(dir.string());
         EXPECT_TRUE(b.ok());
         if (!b.ok()) return nullptr;
         return std::shared_ptr<BackendFs>(std::move(b.value()));
       }},
      {"faulty",
       [](const auto&) -> std::shared_ptr<BackendFs> {
         // Unarmed: exercises the wrapper's pread passthrough.
         return std::make_shared<FaultyBackend>(std::make_shared<MemBackend>());
       }},
      {"throttled",
       [](const auto&) -> std::shared_ptr<BackendFs> {
         auto t = std::make_shared<ThrottledBackend>(std::make_shared<MemBackend>(),
                                                     512.0 * MiB);
         t->throttle_reads(true);
         return t;
       }},
  };

  for (const Case& c : cases) {
    for (bool readahead : {true, false}) {
      SCOPED_TRACE(std::string(c.label) + (readahead ? "/readahead" : "/no_readahead"));
      auto backend = c.make(dir_ / c.label / (readahead ? "on" : "off"));
      ASSERT_NE(backend, nullptr);
      auto fs = Crfs::mount(backend, Config{.chunk_size = kChunk,
                                            .pool_size = kPool,
                                            .readahead = readahead});
      ASSERT_TRUE(fs.ok());
      write_file(*fs.value(), "conf.dat", data);
      expect_readable(*fs.value(), "conf.dat", data);
    }
  }
}

TEST_F(ReadPath, UringEnginePreadConformance) {
  // kUring is a request: on kernels without io_uring the read engine falls
  // back to sync and the same assertions must still hold.
  const auto data = make_pattern(3 * kChunk + 999, /*salt=*/3);
  auto fs = Crfs::mount(std::make_shared<MemBackend>(),
                        Config{.chunk_size = kChunk,
                               .pool_size = kPool,
                               .io_engine = IoEngineKind::kUring,
                               .uring_depth = 16});
  ASSERT_TRUE(fs.ok());
  write_file(*fs.value(), "uring.dat", data);
  expect_readable(*fs.value(), "uring.dat", data);
  EXPECT_STREQ(fs.value()->active_read_engine(), fs.value()->active_io_engine());
}

TEST_F(ReadPath, NullBackendReadsReportEof) {
  auto fs = Crfs::mount(std::make_shared<NullBackend>(),
                        Config{.chunk_size = kChunk, .pool_size = kPool});
  ASSERT_TRUE(fs.ok());
  auto h = fs.value()->open("sink.dat", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  const auto data = make_pattern(2 * kChunk);
  ASSERT_TRUE(fs.value()->write(h.value(), data, 0).ok());
  ASSERT_TRUE(fs.value()->fsync(h.value()).ok());

  // The null backend discards everything; reads must report EOF, not hang
  // the prefetcher or fabricate bytes.
  std::vector<std::byte> buf(kChunk);
  for (int i = 0; i < 3; ++i) {
    auto r = fs.value()->read(h.value(), buf, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 0u);
  }
  ASSERT_TRUE(fs.value()->close(h.value()).ok());
}

TEST_F(ReadPath, ReadsObserveBufferedWritesAndOverwrites) {
  auto fs = Crfs::mount(std::make_shared<MemBackend>(),
                        Config{.chunk_size = kChunk, .pool_size = kPool});
  ASSERT_TRUE(fs.ok());
  auto data = make_pattern(4 * kChunk + 512);
  auto h = fs.value()->open("race.dat", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t n = std::min<std::size_t>(48 * KiB, data.size() - off);
    ASSERT_TRUE(fs.value()->write(h.value(), {data.data() + off, n}, off).ok());
    off += n;
  }

  // No fsync: part of the file is still buffered or queued. flush_before_read
  // must barrier exactly this file so the scan observes every byte.
  std::vector<std::byte> got(data.size());
  for (off = 0; off < got.size();) {
    auto r = fs.value()->read(h.value(), {got.data() + off, std::min(kChunk, got.size() - off)},
                              off);
    ASSERT_TRUE(r.ok());
    ASSERT_GT(r.value(), 0u);
    off += r.value();
  }
  EXPECT_TRUE(got == data);

  // Overwrite a region the prefetcher may have cached: the write-generation
  // bump must invalidate the window so the next read returns fresh bytes.
  const auto fresh = make_pattern(kChunk, /*salt=*/91);
  ASSERT_TRUE(fs.value()->write(h.value(), fresh, kChunk).ok());
  std::vector<std::byte> region(kChunk);
  auto r = fs.value()->read(h.value(), region, kChunk);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value(), region.size());
  EXPECT_TRUE(region == fresh) << "stale prefetched bytes served after overwrite";
  r = fs.value()->read(h.value(), region, 0);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value(), region.size());
  EXPECT_EQ(0, std::memcmp(region.data(), data.data(), region.size()));
  ASSERT_TRUE(fs.value()->close(h.value()).ok());
}

TEST_F(ReadPath, ReadsRaceInflightWrites) {
  // A writer appends records while a reader scans everything below the
  // published watermark. flush_before_read + the prefetch coherence rules
  // must keep every observed byte exact. (Also the TSan workload.)
  auto fs = Crfs::mount(std::make_shared<MemBackend>(),
                        Config{.chunk_size = kChunk, .pool_size = kPool});
  ASSERT_TRUE(fs.ok());
  constexpr std::size_t kRecord = 64 * KiB;
  constexpr std::size_t kRecords = 32;
  const auto data = make_pattern(kRecords * kRecord, /*salt=*/7);

  auto wh = fs.value()->open("live.dat", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(wh.ok());
  auto rh = fs.value()->open("live.dat", {.create = false, .truncate = false, .write = false});
  ASSERT_TRUE(rh.ok());

  std::atomic<std::size_t> watermark{0};
  std::thread writer([&] {
    for (std::size_t i = 0; i < kRecords; ++i) {
      const std::size_t off2 = i * kRecord;
      ASSERT_TRUE(fs.value()->write(wh.value(), {data.data() + off2, kRecord}, off2).ok());
      watermark.store(off2 + kRecord, std::memory_order_release);
      if (i % 8 == 7) ASSERT_TRUE(fs.value()->fsync(wh.value()).ok());
    }
  });

  std::vector<std::byte> buf(kRecord);
  std::size_t verified = 0;
  while (verified < data.size()) {
    const std::size_t limit = watermark.load(std::memory_order_acquire);
    while (verified + kRecord <= limit) {
      auto r = fs.value()->read(rh.value(), buf, verified);
      ASSERT_TRUE(r.ok());
      ASSERT_EQ(r.value(), kRecord);
      ASSERT_EQ(0, std::memcmp(buf.data(), data.data() + verified, kRecord))
          << "corruption at offset " << verified;
      verified += kRecord;
    }
    std::this_thread::yield();
  }
  writer.join();
  ASSERT_TRUE(fs.value()->close(rh.value()).ok());
  ASSERT_TRUE(fs.value()->close(wh.value()).ok());
}

TEST_F(ReadPath, SequentialScanArmsThePrefetcher) {
  auto fs = Crfs::mount(std::make_shared<MemBackend>(),
                        Config{.chunk_size = kChunk, .pool_size = 2 * MiB});
  ASSERT_TRUE(fs.ok());
  const auto data = make_pattern(1 * MiB);
  write_file(*fs.value(), "seq.dat", data);

  auto h = fs.value()->open("seq.dat", {.create = false, .truncate = false, .write = false});
  ASSERT_TRUE(h.ok());
  std::vector<std::byte> buf(kChunk);
  for (std::size_t off = 0; off < data.size(); off += kChunk) {
    auto r = fs.value()->read(h.value(), buf, off);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.value(), kChunk);
    ASSERT_EQ(0, std::memcmp(buf.data(), data.data() + off, kChunk));
  }
  ASSERT_TRUE(fs.value()->close(h.value()).ok());

  EXPECT_EQ(fs.value()->metrics().counter("crfs.read.ops").value(), data.size() / kChunk);
  EXPECT_EQ(fs.value()->metrics().counter("crfs.read.bytes").value(), data.size());
  EXPECT_GT(fs.value()->metrics().counter("crfs.read.prefetch_issued").value(), 0u);
  EXPECT_GT(fs.value()->metrics().counter("crfs.read.prefetch_hits").value(), 0u);

  // Per-restore attribution: close finalized the scan into the ledger.
  const auto ledger = fs.value()->restore_ledger();
  ASSERT_FALSE(ledger.empty());
  bool found = false;
  for (const auto& row : ledger) {
    if (row.path != "seq.dat") continue;
    found = true;
    EXPECT_EQ(row.bytes, data.size());
    EXPECT_EQ(row.ops, data.size() / kChunk);
    EXPECT_GT(row.prefetch_hits, 0u);
    EXPECT_FALSE(row.active);
  }
  EXPECT_TRUE(found) << "seq.dat missing from the restore ledger";
}

TEST_F(ReadPath, SeekDropsThePrefetchWindow) {
  auto fs = Crfs::mount(std::make_shared<MemBackend>(),
                        Config{.chunk_size = kChunk, .pool_size = 2 * MiB});
  ASSERT_TRUE(fs.ok());
  const auto data = make_pattern(16 * kChunk);
  write_file(*fs.value(), "seek.dat", data);

  auto h = fs.value()->open("seek.dat", {.create = false, .truncate = false, .write = false});
  ASSERT_TRUE(h.ok());
  std::vector<std::byte> buf(kChunk);
  // Establish the scan so the window fills ahead of the cursor...
  for (std::size_t off = 0; off < 4 * kChunk; off += kChunk) {
    ASSERT_TRUE(fs.value()->read(h.value(), buf, off).ok());
  }
  ASSERT_GT(fs.value()->metrics().counter("crfs.read.prefetch_issued").value(), 0u);
  // ...then seek backwards: the window is evicted, unconsumed slots count
  // as wasted, and the re-read is still exact.
  auto r = fs.value()->read(h.value(), buf, 0);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value(), kChunk);
  EXPECT_EQ(0, std::memcmp(buf.data(), data.data(), kChunk));
  EXPECT_GT(fs.value()->metrics().counter("crfs.read.prefetch_wasted").value(), 0u);
  ASSERT_TRUE(fs.value()->close(h.value()).ok());
}

TEST_F(ReadPath, ReadaheadOffNeverPrefetches) {
  auto fs = Crfs::mount(std::make_shared<MemBackend>(),
                        Config{.chunk_size = kChunk, .pool_size = kPool,
                               .readahead = false});
  ASSERT_TRUE(fs.ok());
  const auto data = make_pattern(8 * kChunk);
  write_file(*fs.value(), "off.dat", data);

  auto h = fs.value()->open("off.dat", {.create = false, .truncate = false, .write = false});
  ASSERT_TRUE(h.ok());
  std::vector<std::byte> buf(kChunk);
  for (std::size_t off = 0; off < data.size(); off += kChunk) {
    auto r = fs.value()->read(h.value(), buf, off);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.value(), kChunk);
  }
  ASSERT_TRUE(fs.value()->close(h.value()).ok());
  EXPECT_EQ(fs.value()->metrics().counter("crfs.read.prefetch_issued").value(), 0u);
  // Every read fell through to one blocking pread.
  EXPECT_EQ(fs.value()->metrics().counter("crfs.read.sync_preads").value(),
            data.size() / kChunk);
}

TEST_F(ReadPath, RuntimeToggleStopsPrefetching) {
  auto fs = Crfs::mount(std::make_shared<MemBackend>(),
                        Config{.chunk_size = kChunk, .pool_size = 2 * MiB});
  ASSERT_TRUE(fs.ok());
  const auto data = make_pattern(16 * kChunk);
  write_file(*fs.value(), "toggle.dat", data);

  auto scan = [&] {
    auto h =
        fs.value()->open("toggle.dat", {.create = false, .truncate = false, .write = false});
    ASSERT_TRUE(h.ok());
    std::vector<std::byte> buf(kChunk);
    for (std::size_t off = 0; off < data.size(); off += kChunk) {
      auto r = fs.value()->read(h.value(), buf, off);
      ASSERT_TRUE(r.ok());
      ASSERT_EQ(r.value(), kChunk);
    }
    ASSERT_TRUE(fs.value()->close(h.value()).ok());
  };

  EXPECT_EQ(fs.value()->tune("readahead", 0.0).outcome, "applied");
  scan();
  const auto issued_off = fs.value()->metrics().counter("crfs.read.prefetch_issued").value();
  EXPECT_EQ(issued_off, 0u);

  EXPECT_EQ(fs.value()->tune("readahead", 1.0).outcome, "applied");
  EXPECT_EQ(fs.value()->tune("readahead_window", 2.0).outcome, "applied");
  scan();
  EXPECT_GT(fs.value()->metrics().counter("crfs.read.prefetch_issued").value(), issued_off);
}

TEST_F(ReadPath, RestoreBitIdenticalAcrossBackendsAndModes) {
  struct Case {
    const char* label;
    std::shared_ptr<BackendFs> backend;
  };
  std::vector<Case> cases;
  cases.push_back({"mem", std::make_shared<MemBackend>()});
  {
    auto t = std::make_shared<ThrottledBackend>(std::make_shared<MemBackend>(), 512.0 * MiB);
    t->throttle_reads(true);
    cases.push_back({"throttled", t});
  }
  {
    const auto pdir = dir_ / "restore";
    std::filesystem::create_directories(pdir);
    auto b = PosixBackend::create(pdir.string());
    ASSERT_TRUE(b.ok());
    cases.push_back({"posix", std::shared_ptr<BackendFs>(std::move(b.value()))});
  }

  const auto image = blcr::ProcessImage::synthesize(17, 6 * MiB, 55);
  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    auto fs = Crfs::mount(c.backend, Config{.chunk_size = 256 * KiB, .pool_size = 2 * MiB});
    ASSERT_TRUE(fs.ok());
    FuseShim shim(*fs.value(), FuseOptions{});

    std::uint64_t crc = 0;
    {
      auto f = File::open(shim, "rank0.ckpt", {.create = true, .truncate = true, .write = true});
      ASSERT_TRUE(f.ok());
      blcr::CrfsFileSink sink(f.value());
      auto written = blcr::CheckpointWriter::write_image(image, sink);
      ASSERT_TRUE(written.ok());
      crc = written.value();
      ASSERT_TRUE(f.value().close().ok());
    }

    // Restore 1: readahead on (mount default).
    {
      auto f = File::open(shim, "rank0.ckpt",
                          {.create = false, .truncate = false, .write = false});
      ASSERT_TRUE(f.ok());
      blcr::CrfsFileSource source(f.value());
      auto restored = blcr::RestartReader::read_image(source);
      ASSERT_TRUE(restored.ok()) << restored.error().to_string();
      EXPECT_EQ(restored.value().payload_crc, crc);
    }

    // Restore 2: readahead off via the knob plane.
    fs.value()->tune("readahead", 0.0);
    {
      auto f = File::open(shim, "rank0.ckpt",
                          {.create = false, .truncate = false, .write = false});
      ASSERT_TRUE(f.ok());
      blcr::CrfsFileSource source(f.value());
      auto restored = blcr::RestartReader::read_image(source);
      ASSERT_TRUE(restored.ok()) << restored.error().to_string();
      EXPECT_EQ(restored.value().payload_crc, crc);
    }

    // Restore 3: retuned mid-stream — window shrunk, prefetch switched off,
    // then back on wider, all while the reader is inside the image.
    fs.value()->tune("readahead", 1.0);
    {
      auto f = File::open(shim, "rank0.ckpt",
                          {.create = false, .truncate = false, .write = false});
      ASSERT_TRUE(f.ok());
      std::uint64_t seen = 0;
      int stage = 0;
      blcr::FnSource source([&](std::span<std::byte> out) -> Result<std::size_t> {
        if (stage == 0 && seen > 1 * MiB) {
          fs.value()->tune("readahead_window", 1.0);
          stage = 1;
        } else if (stage == 1 && seen > 2 * MiB) {
          fs.value()->tune("readahead", 0.0);
          stage = 2;
        } else if (stage == 2 && seen > 4 * MiB) {
          fs.value()->tune("readahead", 1.0);
          fs.value()->tune("readahead_window", 8.0);
          stage = 3;
        }
        auto r = f.value().read(out);
        if (r.ok()) seen += r.value();
        return r;
      });
      auto restored = blcr::RestartReader::read_image(source);
      ASSERT_TRUE(restored.ok()) << restored.error().to_string();
      EXPECT_EQ(restored.value().payload_crc, crc);
      EXPECT_EQ(stage, 3) << "mid-stream retune points never reached";
    }
  }
}

}  // namespace
}  // namespace crfs
