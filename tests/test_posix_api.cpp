// Tests for the errno-style POSIX facade (fd table, cursors, O_APPEND,
// lseek semantics, errno propagation).
#include <gtest/gtest.h>

#include <thread>

#include "backend/mem_backend.h"
#include "backend/wrappers.h"
#include "common/units.h"
#include "crfs/posix_api.h"

namespace crfs {
namespace {

class PosixApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mem_ = std::make_shared<MemBackend>();
    auto fs = Crfs::mount(mem_, Config{.chunk_size = 4096, .pool_size = 8 * 4096});
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(fs.value());
    shim_ = std::make_unique<FuseShim>(*fs_, FuseOptions{});
    api_ = std::make_unique<PosixApi>(*shim_);
  }

  std::string backend_content(const std::string& path) {
    auto c = mem_->contents(path);
    if (!c.ok()) return "<missing>";
    return {reinterpret_cast<const char*>(c.value().data()), c.value().size()};
  }

  std::shared_ptr<MemBackend> mem_;
  std::unique_ptr<Crfs> fs_;
  std::unique_ptr<FuseShim> shim_;
  std::unique_ptr<PosixApi> api_;
};

TEST_F(PosixApiTest, OpenWriteCloseRoundTrip) {
  const int fd = api_->open("a.txt", O_CREAT | O_WRONLY | O_TRUNC);
  ASSERT_GE(fd, 3);
  EXPECT_EQ(api_->write(fd, "hello", 5), 5);
  EXPECT_EQ(api_->write(fd, " world", 6), 6);  // cursor advanced
  EXPECT_EQ(api_->close(fd), 0);
  EXPECT_EQ(backend_content("a.txt"), "hello world");
}

TEST_F(PosixApiTest, ReadWithCursor) {
  const int wfd = api_->open("r.txt", O_CREAT | O_WRONLY);
  ASSERT_GE(wfd, 0);
  EXPECT_EQ(api_->write(wfd, "0123456789", 10), 10);
  EXPECT_EQ(api_->close(wfd), 0);

  const int fd = api_->open("r.txt", O_RDONLY);
  ASSERT_GE(fd, 0);
  char buf[4];
  EXPECT_EQ(api_->read(fd, buf, 4), 4);
  EXPECT_EQ(std::memcmp(buf, "0123", 4), 0);
  EXPECT_EQ(api_->read(fd, buf, 4), 4);
  EXPECT_EQ(std::memcmp(buf, "4567", 4), 0);
  EXPECT_EQ(api_->read(fd, buf, 4), 2);  // short read at EOF
  EXPECT_EQ(api_->read(fd, buf, 4), 0);  // EOF
  EXPECT_EQ(api_->close(fd), 0);
}

TEST_F(PosixApiTest, LseekAllWhences) {
  const int fd = api_->open("s.txt", O_CREAT | O_RDWR);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(api_->write(fd, "abcdefgh", 8), 8);
  ASSERT_EQ(api_->fsync(fd), 0);

  EXPECT_EQ(api_->lseek(fd, 2, SEEK_SET), 2);
  char c;
  EXPECT_EQ(api_->read(fd, &c, 1), 1);
  EXPECT_EQ(c, 'c');
  EXPECT_EQ(api_->lseek(fd, 1, SEEK_CUR), 4);
  EXPECT_EQ(api_->lseek(fd, -1, SEEK_END), 7);
  EXPECT_EQ(api_->read(fd, &c, 1), 1);
  EXPECT_EQ(c, 'h');
  errno = 0;
  EXPECT_EQ(api_->lseek(fd, -100, SEEK_SET), -1);
  EXPECT_EQ(errno, EINVAL);
  EXPECT_EQ(api_->close(fd), 0);
}

TEST_F(PosixApiTest, OAppendAlwaysWritesAtEnd) {
  const int fd = api_->open("log", O_CREAT | O_WRONLY);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(api_->write(fd, "line1\n", 6), 6);
  EXPECT_EQ(api_->close(fd), 0);

  const int afd = api_->open("log", O_WRONLY | O_APPEND);
  ASSERT_GE(afd, 0);
  EXPECT_EQ(api_->write(afd, "line2\n", 6), 6);
  EXPECT_EQ(api_->lseek(afd, 0, SEEK_SET), 0);
  EXPECT_EQ(api_->write(afd, "line3\n", 6), 6);  // O_APPEND ignores cursor
  EXPECT_EQ(api_->close(afd), 0);
  EXPECT_EQ(backend_content("log"), "line1\nline2\nline3\n");
}

TEST_F(PosixApiTest, PwritePreadDoNotMoveCursor) {
  const int fd = api_->open("p.bin", O_CREAT | O_RDWR);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(api_->pwrite(fd, "XXXX", 4, 10), 4);
  EXPECT_EQ(api_->write(fd, "head", 4), 4);  // cursor still at 0
  ASSERT_EQ(api_->fsync(fd), 0);
  char buf[4];
  EXPECT_EQ(api_->pread(fd, buf, 4, 10), 4);
  EXPECT_EQ(std::memcmp(buf, "XXXX", 4), 0);
  EXPECT_EQ(api_->close(fd), 0);
  EXPECT_EQ(backend_content("p.bin").substr(0, 4), "head");
}

TEST_F(PosixApiTest, OExclSemantics) {
  const int fd = api_->open("x", O_CREAT | O_EXCL | O_WRONLY);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(api_->close(fd), 0);
  errno = 0;
  EXPECT_EQ(api_->open("x", O_CREAT | O_EXCL | O_WRONLY), -1);
  EXPECT_EQ(errno, EEXIST);
  errno = 0;
  EXPECT_EQ(api_->open("y", O_EXCL | O_WRONLY), -1);  // O_EXCL without O_CREAT
  EXPECT_EQ(errno, EINVAL);
}

TEST_F(PosixApiTest, ErrnoOnBadFd) {
  errno = 0;
  EXPECT_EQ(api_->write(99, "x", 1), -1);
  EXPECT_EQ(errno, EBADF);
  errno = 0;
  EXPECT_EQ(api_->close(99), -1);
  EXPECT_EQ(errno, EBADF);
  errno = 0;
  char c;
  EXPECT_EQ(api_->read(99, &c, 1), -1);
  EXPECT_EQ(errno, EBADF);
}

TEST_F(PosixApiTest, WriteOnReadOnlyFdFails) {
  const int fd = api_->open("ro", O_CREAT | O_WRONLY);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(api_->close(fd), 0);
  const int rfd = api_->open("ro", O_RDONLY);
  ASSERT_GE(rfd, 0);
  errno = 0;
  EXPECT_EQ(api_->write(rfd, "no", 2), -1);
  EXPECT_EQ(errno, EBADF);
  EXPECT_EQ(api_->close(rfd), 0);
}

TEST_F(PosixApiTest, MetadataOps) {
  EXPECT_EQ(api_->mkdir("d"), 0);
  struct ::stat st{};
  ASSERT_EQ(api_->stat("d", &st), 0);
  EXPECT_TRUE(S_ISDIR(st.st_mode));

  const int fd = api_->open("d/f", O_CREAT | O_WRONLY);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(api_->write(fd, "data", 4), 4);
  EXPECT_EQ(api_->close(fd), 0);
  ASSERT_EQ(api_->stat("d/f", &st), 0);
  EXPECT_EQ(st.st_size, 4);
  EXPECT_TRUE(S_ISREG(st.st_mode));

  EXPECT_EQ(api_->rename("d/f", "d/g"), 0);
  errno = 0;
  EXPECT_EQ(api_->stat("d/f", &st), -1);
  EXPECT_EQ(errno, ENOENT);
  EXPECT_EQ(api_->truncate("d/g", 2), 0);
  ASSERT_EQ(api_->stat("d/g", &st), 0);
  EXPECT_EQ(st.st_size, 2);
  EXPECT_EQ(api_->unlink("d/g"), 0);
  EXPECT_EQ(api_->rmdir("d"), 0);
}

TEST_F(PosixApiTest, ErrnoOnMissingPath) {
  errno = 0;
  EXPECT_EQ(api_->open("missing", O_RDONLY), -1);
  EXPECT_EQ(errno, ENOENT);
  errno = 0;
  struct ::stat st{};
  EXPECT_EQ(api_->stat("missing", &st), -1);
  EXPECT_EQ(errno, ENOENT);
}

TEST_F(PosixApiTest, ConcurrentFdsIndependent) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string path = "t" + std::to_string(t);
      const int fd = api_->open(path.c_str(), O_CREAT | O_WRONLY);
      ASSERT_GE(fd, 0);
      for (int i = 0; i < 100; ++i) {
        const std::string rec = std::to_string(t) + ":" + std::to_string(i) + "\n";
        ASSERT_EQ(api_->write(fd, rec.data(), rec.size()),
                  static_cast<ssize_t>(rec.size()));
      }
      ASSERT_EQ(api_->close(fd), 0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(api_->open_fds(), 0u);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_NE(backend_content("t" + std::to_string(t)).find(std::to_string(t) + ":99"),
              std::string::npos);
  }
}

TEST_F(PosixApiTest, ErrorPropagationFromBackend) {
  auto mem = std::make_shared<MemBackend>();
  auto faulty = std::make_shared<FaultyBackend>(mem);
  // no_bypass pins the asynchronous error path (the default bypass would
  // surface the failure synchronously at write()).
  auto fs = Crfs::mount(faulty, Config{.chunk_size = 4096, .pool_size = 4 * 4096,
                                       .large_write_bypass = false});
  ASSERT_TRUE(fs.ok());
  FuseShim shim(*fs.value(), FuseOptions{});
  PosixApi api(shim);

  const int fd = api.open("e", O_CREAT | O_WRONLY);
  ASSERT_GE(fd, 0);
  faulty->fail_writes_after(0);
  std::vector<char> big(20000, 'x');  // multiple chunks -> async failure
  EXPECT_EQ(api.write(fd, big.data(), big.size()), static_cast<ssize_t>(big.size()));
  errno = 0;
  EXPECT_EQ(api.close(fd), -1);  // surfaces the EIO at close
  EXPECT_EQ(errno, EIO);
}

}  // namespace
}  // namespace crfs
