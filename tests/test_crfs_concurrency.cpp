// Concurrency and property tests for CRFS: many parallel writers, pool
// backpressure under pressure, data integrity under every interleaving,
// and parameterized sweeps over chunk/pool/thread configurations.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "backend/mem_backend.h"
#include "backend/wrappers.h"
#include "common/checksum.h"
#include "common/rng.h"
#include "common/units.h"
#include "crfs/crfs.h"

namespace crfs {
namespace {

// Writes `total` pseudo-random bytes to `path` in randomly sized
// sequential application writes (mimicking a checkpoint stream) and
// returns the CRC of what was written.
std::uint64_t write_stream(Crfs& fs, const std::string& path, std::size_t total,
                           std::uint64_t seed) {
  auto h = fs.open(path, {.create = true, .truncate = true, .write = true});
  EXPECT_TRUE(h.ok());
  Rng data_rng(seed);
  Rng size_rng(seed ^ 0xABCDEF);
  Crc64 crc;
  std::vector<std::byte> buf;
  std::size_t written = 0;
  while (written < total) {
    const std::size_t n =
        std::min<std::size_t>(size_rng.uniform(1, 32 * 1024), total - written);
    buf.resize(n);
    for (auto& b : buf) b = static_cast<std::byte>(data_rng.next_u64());
    crc.update(buf.data(), buf.size());
    EXPECT_TRUE(fs.write(h.value(), buf, written).ok());
    written += n;
  }
  EXPECT_TRUE(fs.close(h.value()).ok());
  return crc.digest();
}

std::uint64_t crc_of_backend(MemBackend& mem, const std::string& path) {
  auto c = mem.contents(path);
  EXPECT_TRUE(c.ok());
  return Crc64::of(c.value().data(), c.value().size());
}

TEST(CrfsConcurrency, EightWritersEightFilesIntegrity) {
  // The paper's N-N checkpoint pattern: one file per process.
  auto mem = std::make_shared<MemBackend>();
  auto fs = Crfs::mount(mem, Config{.chunk_size = 64 * 1024, .pool_size = 256 * 1024});
  ASSERT_TRUE(fs.ok());

  constexpr int kWriters = 8;
  constexpr std::size_t kBytes = 512 * 1024;
  std::vector<std::uint64_t> expected(kWriters);
  std::vector<std::thread> threads;
  threads.reserve(kWriters);
  for (int i = 0; i < kWriters; ++i) {
    threads.emplace_back([&, i] {
      expected[static_cast<std::size_t>(i)] =
          write_stream(*fs.value(), "proc" + std::to_string(i) + ".ckpt", kBytes,
                       static_cast<std::uint64_t>(i) + 100);
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kWriters; ++i) {
    const std::string path = "proc" + std::to_string(i) + ".ckpt";
    EXPECT_EQ(crc_of_backend(*mem, path), expected[static_cast<std::size_t>(i)])
        << "corruption in " << path;
    EXPECT_EQ(mem->contents(path).value().size(), kBytes);
  }
  EXPECT_EQ(fs.value()->open_files(), 0u);
  EXPECT_EQ(fs.value()->queue_depth(), 0u);
}

TEST(CrfsConcurrency, TinyPoolForcesBackpressureWithoutLoss) {
  // One chunk total: every writer contends for the single buffer. The
  // blocking acquire path must not deadlock against the IO pool.
  auto mem = std::make_shared<MemBackend>();
  auto fs = Crfs::mount(mem, Config{.chunk_size = 16 * 1024, .pool_size = 16 * 1024,
                                    .io_threads = 2});
  ASSERT_TRUE(fs.ok());

  constexpr int kWriters = 4;
  constexpr std::size_t kBytes = 256 * 1024;
  std::vector<std::uint64_t> expected(kWriters);
  std::vector<std::thread> threads;
  for (int i = 0; i < kWriters; ++i) {
    threads.emplace_back([&, i] {
      expected[static_cast<std::size_t>(i)] =
          write_stream(*fs.value(), "p" + std::to_string(i), kBytes,
                       static_cast<std::uint64_t>(i) + 7);
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kWriters; ++i) {
    EXPECT_EQ(crc_of_backend(*mem, "p" + std::to_string(i)),
              expected[static_cast<std::size_t>(i)]);
  }
  EXPECT_GT(fs.value()->buffer_pool().contention_count(), 0u);
}

TEST(CrfsConcurrency, ConcurrentWritersOnSameFileDisjointRegions) {
  // Two handles, two disjoint halves of one file (N-1 segmented pattern).
  auto mem = std::make_shared<MemBackend>();
  auto fs = Crfs::mount(mem, Config{.chunk_size = 8 * 1024, .pool_size = 64 * 1024});
  ASSERT_TRUE(fs.ok());

  constexpr std::size_t kHalf = 128 * 1024;
  auto h1 = fs.value()->open("shared", {.create = true, .truncate = true, .write = true});
  auto h2 = fs.value()->open("shared", {.create = false, .truncate = false, .write = true});
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());

  auto writer = [&](Crfs::FileHandle h, std::uint64_t base, char fill) {
    std::vector<std::byte> buf(4096, static_cast<std::byte>(fill));
    for (std::size_t off = 0; off < kHalf; off += buf.size()) {
      ASSERT_TRUE(fs.value()->write(h, buf, base + off).ok());
    }
  };
  std::thread t1([&] { writer(h1.value(), 0, 'A'); });
  std::thread t2([&] { writer(h2.value(), kHalf, 'B'); });
  t1.join();
  t2.join();
  ASSERT_TRUE(fs.value()->close(h1.value()).ok());
  ASSERT_TRUE(fs.value()->close(h2.value()).ok());

  auto content = mem->contents("shared");
  ASSERT_TRUE(content.ok());
  ASSERT_EQ(content.value().size(), 2 * kHalf);
  for (std::size_t i = 0; i < 2 * kHalf; i += 997) {
    const char expect = i < kHalf ? 'A' : 'B';
    ASSERT_EQ(static_cast<char>(content.value()[i]), expect) << "at offset " << i;
  }
}

TEST(CrfsConcurrency, InterleavedFsyncsDoNotCorrupt) {
  auto mem = std::make_shared<MemBackend>();
  auto fs = Crfs::mount(mem, Config{.chunk_size = 8 * 1024, .pool_size = 32 * 1024});
  ASSERT_TRUE(fs.ok());

  auto h = fs.value()->open("fsynced", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  Crc64 crc;
  Rng rng(42);
  std::uint64_t off = 0;
  for (int i = 0; i < 200; ++i) {
    std::vector<std::byte> buf(rng.uniform(1, 8000));
    for (auto& b : buf) b = static_cast<std::byte>(rng.next_u64());
    crc.update(buf.data(), buf.size());
    ASSERT_TRUE(fs.value()->write(h.value(), buf, off).ok());
    off += buf.size();
    if (i % 17 == 0) {
      ASSERT_TRUE(fs.value()->fsync(h.value()).ok());
    }
  }
  ASSERT_TRUE(fs.value()->close(h.value()).ok());
  EXPECT_EQ(crc_of_backend(*mem, "fsynced"), crc.digest());
  EXPECT_GE(mem->fsync_count("fsynced"), 12u);
}

TEST(CrfsConcurrency, ManyFilesOpenCloseChurn) {
  auto mem = std::make_shared<MemBackend>();
  auto fs = Crfs::mount(mem, Config{.chunk_size = 4096, .pool_size = 16 * 4096});
  ASSERT_TRUE(fs.ok());

  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 40; ++i) {
        const std::string path = "churn" + std::to_string(t) + "_" + std::to_string(i);
        auto h = fs.value()->open(path, {.create = true, .truncate = true, .write = true});
        ASSERT_TRUE(h.ok());
        const std::string data = "iteration " + std::to_string(i);
        ASSERT_TRUE(fs.value()
                        ->write(h.value(),
                                {reinterpret_cast<const std::byte*>(data.data()), data.size()}, 0)
                        .ok());
        ASSERT_TRUE(fs.value()->close(h.value()).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fs.value()->open_files(), 0u);
  // Every file exists with its content.
  for (int t = 0; t < kThreads; ++t) {
    auto c = mem->contents("churn" + std::to_string(t) + "_39");
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c.value().size(), std::string("iteration 39").size());
  }
}

// --------------------------------------------- parameterized property set

struct SweepParam {
  std::size_t chunk;
  std::size_t pool;
  unsigned threads;
  std::size_t bytes;
};

class CrfsConfigSweep : public ::testing::TestWithParam<SweepParam> {};

// Property: for ANY (chunk, pool, io_threads) configuration, a sequential
// write stream lands byte-identical in the backend, and the number of
// backend writes never exceeds ceil(bytes/chunk) + 1.
TEST_P(CrfsConfigSweep, IntegrityAndAggregationBound) {
  const auto p = GetParam();
  auto mem = std::make_shared<MemBackend>();
  auto fs = Crfs::mount(mem, Config{.chunk_size = p.chunk, .pool_size = p.pool,
                                    .io_threads = p.threads});
  ASSERT_TRUE(fs.ok());

  const std::uint64_t crc = write_stream(*fs.value(), "f", p.bytes, 0xC0FFEE ^ p.chunk);
  EXPECT_EQ(crc_of_backend(*mem, "f"), crc);
  EXPECT_EQ(mem->contents("f").value().size(), p.bytes);

  const std::uint64_t max_backend_writes = (p.bytes + p.chunk - 1) / p.chunk + 1;
  EXPECT_LE(mem->total_pwrites(), max_backend_writes)
      << "aggregation must bound backend write count";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrfsConfigSweep,
    ::testing::Values(
        SweepParam{1 * KiB, 4 * KiB, 1, 100 * KiB},
        SweepParam{4 * KiB, 16 * KiB, 2, 100 * KiB},
        SweepParam{4 * KiB, 4 * KiB, 4, 64 * KiB},     // single-chunk pool
        SweepParam{64 * KiB, 256 * KiB, 4, 1 * MiB},
        SweepParam{128 * KiB, 16 * MiB, 4, 2 * MiB},
        SweepParam{1 * MiB, 16 * MiB, 4, 4 * MiB},
        SweepParam{4 * MiB, 16 * MiB, 4, 8 * MiB},     // paper default
        SweepParam{4 * MiB, 16 * MiB, 8, 8 * MiB},
        SweepParam{3000, 9000, 3, 1000000}),           // non-power-of-two
    [](const auto& param_info) {
      const auto& p = param_info.param;
      return "chunk" + std::to_string(p.chunk) + "_pool" + std::to_string(p.pool) +
             "_t" + std::to_string(p.threads) + "_n" + std::to_string(p.bytes);
    });

// Property: unaligned write sizes around the chunk boundary never corrupt.
class ChunkBoundaryProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChunkBoundaryProperty, WritesStraddlingChunkEdge) {
  const int delta = GetParam();
  constexpr std::size_t kChunk = 4096;
  auto mem = std::make_shared<MemBackend>();
  auto fs = Crfs::mount(mem, Config{.chunk_size = kChunk, .pool_size = 4 * kChunk});
  ASSERT_TRUE(fs.ok());

  auto h = fs.value()->open("edge", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  // First write ends exactly `delta` bytes before/after the chunk edge.
  const std::size_t first = static_cast<std::size_t>(static_cast<int>(kChunk) + delta);
  std::vector<std::byte> a(first, std::byte{'a'});
  std::vector<std::byte> b(kChunk, std::byte{'b'});
  ASSERT_TRUE(fs.value()->write(h.value(), a, 0).ok());
  ASSERT_TRUE(fs.value()->write(h.value(), b, a.size()).ok());
  ASSERT_TRUE(fs.value()->close(h.value()).ok());

  auto c = mem->contents("edge");
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c.value().size(), a.size() + b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(static_cast<char>(c.value()[i]), 'a') << i;
  }
  for (std::size_t i = a.size(); i < c.value().size(); ++i) {
    ASSERT_EQ(static_cast<char>(c.value()[i]), 'b') << i;
  }
}

INSTANTIATE_TEST_SUITE_P(EdgeDeltas, ChunkBoundaryProperty,
                         ::testing::Values(-3, -1, 0, 1, 3, -4096 + 1, 4096 - 1));


// Regression: more open files than pool chunks used to deadlock — every
// chunk ended up parked as some file's partial current chunk while a new
// file's writer blocked forever on the pool. The pool-exhaustion rescue
// (partial-chunk stealing) must keep the mount live.
TEST(CrfsConcurrency, MoreOpenFilesThanChunksDoesNotDeadlock) {
  auto mem = std::make_shared<MemBackend>();
  // Exactly 2 chunks in the pool; 6 files held open simultaneously.
  auto fs = Crfs::mount(mem, Config{.chunk_size = 8 * 1024, .pool_size = 16 * 1024,
                                    .io_threads = 1});
  ASSERT_TRUE(fs.ok());

  std::vector<Crfs::FileHandle> handles;
  for (int i = 0; i < 6; ++i) {
    auto h = fs.value()->open("park" + std::to_string(i),
                              {.create = true, .truncate = true, .write = true});
    ASSERT_TRUE(h.ok());
    handles.push_back(h.value());
  }
  // Round-robin small writes: each file parks a partial chunk, then the
  // single writer moves on and needs a chunk for the next file.
  std::vector<std::byte> piece(512);
  Rng rng(9);
  std::vector<std::uint64_t> offsets(handles.size(), 0);
  for (int round = 0; round < 40; ++round) {
    for (std::size_t f = 0; f < handles.size(); ++f) {
      for (auto& b : piece) b = static_cast<std::byte>(rng.next_u64());
      ASSERT_TRUE(fs.value()->write(handles[f], piece, offsets[f]).ok());
      offsets[f] += piece.size();
    }
  }
  for (std::size_t f = 0; f < handles.size(); ++f) {
    ASSERT_TRUE(fs.value()->close(handles[f]).ok());
    EXPECT_EQ(mem->contents("park" + std::to_string(f)).value().size(), offsets[f]);
  }
  EXPECT_GT(fs.value()->stats().snapshot().chunk_steals, 0u)
      << "the rescue path must have engaged";
}

// Stress: N writer threads × M files over a pool far smaller than the
// working set, with the sharded pool and batched/coalescing IO path at
// non-default settings. Every interleaving must land byte-exact content;
// the tiny pool guarantees constant exhaustion (and with more parked
// files than chunks, the rescue/steal path engages too). Runs under the
// TSan preset via scripts/check_tsan.sh.
TEST(CrfsConcurrency, ManyWritersManyFilesTinyPoolByteExact) {
  auto mem = std::make_shared<MemBackend>();
  // 4 chunks total; pool_shards asks for 8 and must clamp to the chunk
  // count. io_batch=4 exceeds the half-the-pool cap, so the effective
  // batch is 2 — the batched/coalescing dequeue runs while the pool
  // stays under constant exhaustion.
  auto fs = Crfs::mount(mem, Config{.chunk_size = 8 * 1024,
                                    .pool_size = 32 * 1024,
                                    .io_threads = 2,
                                    .pool_shards = 8,
                                    .io_batch = 4});
  ASSERT_TRUE(fs.ok());

  constexpr int kWriters = 8;
  constexpr int kFilesPerWriter = 3;
  constexpr std::size_t kBytes = 96 * 1024;

  // Deterministic per-file payloads, built up front so the check below is
  // a straight byte comparison against backend contents.
  auto payload = [](int writer, int file) {
    std::vector<std::byte> data(kBytes);
    Rng rng(static_cast<std::uint64_t>(writer) * 131 + static_cast<std::uint64_t>(file));
    for (auto& b : data) b = static_cast<std::byte>(rng.next_u64());
    return data;
  };

  std::vector<std::thread> threads;
  threads.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Rng size_rng(static_cast<std::uint64_t>(w) ^ 0x5EED);
      for (int f = 0; f < kFilesPerWriter; ++f) {
        const std::string path =
            "stress" + std::to_string(w) + "_" + std::to_string(f);
        const std::vector<std::byte> data = payload(w, f);
        auto h = fs.value()->open(path, {.create = true, .truncate = true, .write = true});
        ASSERT_TRUE(h.ok());
        std::size_t off = 0;
        while (off < kBytes) {
          // Odd sizes straddle chunk edges; occasional fsync interleaves
          // drain() with other writers' flushes.
          const std::size_t n =
              std::min<std::size_t>(size_rng.uniform(1, 20 * 1024), kBytes - off);
          ASSERT_TRUE(
              fs.value()->write(h.value(), {data.data() + off, n}, off).ok());
          off += n;
          if (size_rng.uniform(0, 9) == 0) {
            ASSERT_TRUE(fs.value()->fsync(h.value()).ok());
          }
        }
        ASSERT_TRUE(fs.value()->close(h.value()).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int w = 0; w < kWriters; ++w) {
    for (int f = 0; f < kFilesPerWriter; ++f) {
      const std::string path =
          "stress" + std::to_string(w) + "_" + std::to_string(f);
      auto c = mem->contents(path);
      ASSERT_TRUE(c.ok()) << path;
      const std::vector<std::byte> expect = payload(w, f);
      ASSERT_EQ(c.value().size(), expect.size()) << path;
      ASSERT_EQ(std::memcmp(c.value().data(), expect.data(), expect.size()), 0)
          << "byte mismatch in " << path;
    }
  }
  EXPECT_EQ(fs.value()->open_files(), 0u);
  EXPECT_EQ(fs.value()->queue_depth(), 0u);
  // The working set dwarfs the pool, so acquisition had to contend.
  EXPECT_GT(fs.value()->buffer_pool().contention_count(), 0u);
}

}  // namespace
}  // namespace crfs
