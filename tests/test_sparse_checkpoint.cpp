// Tests for zero-page elision (vmadump-style sparse checkpoints): byte
// savings, restart equivalence with dense images, hole semantics through
// CRFS, and the dense fallback for non-seekable sinks.
#include <gtest/gtest.h>

#include "backend/mem_backend.h"
#include "blcr/checkpoint_writer.h"
#include "blcr/process_image.h"
#include "blcr/restart_reader.h"
#include "blcr/sinks.h"
#include "common/units.h"
#include "crfs/file.h"
#include "crfs/fuse_shim.h"

namespace crfs::blcr {
namespace {

// Counts bytes actually pushed through (skips excluded).
class CountingSink final : public ByteSink {
 public:
  Status write(std::span<const std::byte> data) override {
    written += data.size();
    bytes.insert(bytes.end(), data.begin(), data.end());
    return {};
  }
  bool skip(std::uint64_t n) override {
    skipped += n;
    bytes.resize(bytes.size() + n);  // hole reads as zeros
    return true;
  }
  std::uint64_t written = 0;
  std::uint64_t skipped = 0;
  std::vector<std::byte> bytes;
};

class VecSource final : public ByteSource {
 public:
  explicit VecSource(std::vector<std::byte> b) : bytes_(std::move(b)) {}
  Result<std::size_t> read(std::span<std::byte> out) override {
    const std::size_t n = std::min(out.size(), bytes_.size() - pos_);
    std::memcpy(out.data(), bytes_.data() + pos_, n);
    pos_ += n;
    return n;
  }

 private:
  std::vector<std::byte> bytes_;
  std::size_t pos_ = 0;
};

TEST(SparseCheckpoint, ImagesContainZeroPages) {
  const auto img = ProcessImage::synthesize(1, 8 * MiB, 42);
  std::vector<std::byte> payload;
  std::uint64_t zero_pages = 0, pages = 0;
  for (const auto& vma : img.vmas) {
    generate_vma_payload(vma, payload);
    for (std::size_t p = 0; p < payload.size(); p += 4096) {
      const std::size_t n = std::min<std::size_t>(4096, payload.size() - p);
      bool zero = true;
      for (std::size_t i = 0; i < n && zero; ++i) zero = payload[p + i] == std::byte{0};
      zero_pages += zero;
      pages += 1;
    }
  }
  // Heap is 25% zero and dominates; overall zero share should be 10-40%.
  const double share = static_cast<double>(zero_pages) / static_cast<double>(pages);
  EXPECT_GT(share, 0.10);
  EXPECT_LT(share, 0.45);
}

TEST(SparseCheckpoint, ElisionSkipsBytesAndPreservesCrc) {
  const auto img = ProcessImage::synthesize(2, 6 * MiB, 7);

  CountingSink dense;
  auto dense_crc = CheckpointWriter::write_image(img, dense);
  ASSERT_TRUE(dense_crc.ok());
  EXPECT_EQ(dense.skipped, 0u);

  CountingSink sparse;
  auto sparse_crc =
      CheckpointWriter::write_image(img, sparse, nullptr, {.elide_zero_pages = true});
  ASSERT_TRUE(sparse_crc.ok());

  // Same logical image: CRCs equal, total logical bytes equal.
  EXPECT_EQ(sparse_crc.value(), dense_crc.value());
  EXPECT_EQ(sparse.bytes.size(), dense.bytes.size());
  EXPECT_EQ(sparse.bytes, dense.bytes);
  // But meaningfully fewer bytes transferred.
  EXPECT_GT(sparse.skipped, dense.written / 20);
  EXPECT_LT(sparse.written, dense.written);
}

TEST(SparseCheckpoint, SparseImageRestoresIdentically) {
  const auto img = ProcessImage::synthesize(3, 4 * MiB, 9);
  CountingSink sparse;
  auto crc = CheckpointWriter::write_image(img, sparse, nullptr, {.elide_zero_pages = true});
  ASSERT_TRUE(crc.ok());

  VecSource source(std::move(sparse.bytes));
  auto restored = RestartReader::read_image(source);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(restored.value().payload_crc, crc.value());
  EXPECT_EQ(restored.value().image_bytes, img.content_bytes());
}

TEST(SparseCheckpoint, NonSeekableSinkFallsBackToDense) {
  const auto img = ProcessImage::synthesize(4, 2 * MiB, 11);
  std::uint64_t total = 0;
  FnSink plain([&](std::span<const std::byte> data) -> Status {  // no skip()
    total += data.size();
    return {};
  });
  auto crc = CheckpointWriter::write_image(img, plain, nullptr, {.elide_zero_pages = true});
  ASSERT_TRUE(crc.ok());
  EXPECT_GT(total, img.content_bytes());  // every byte written densely
}

// The end-to-end payoff: sparse checkpoint through a real CRFS mount,
// restart from the backend, and the backend holds fewer bytes of data
// (MemBackend materialises holes as zeros, so we check transfer counts).
TEST(SparseCheckpoint, ThroughCrfsRoundTrip) {
  const auto img = ProcessImage::synthesize(5, 8 * MiB, 13);

  auto run = [&](bool sparse) {
    auto mem = std::make_shared<MemBackend>();
    auto fs = Crfs::mount(mem, Config{.chunk_size = 512 * KiB, .pool_size = 2 * MiB});
    EXPECT_TRUE(fs.ok());
    FuseShim shim(*fs.value(), FuseOptions{.big_writes = true});
    std::uint64_t crc = 0;
    {
      auto file = File::open(shim, "img.ckpt", {.create = true, .truncate = true, .write = true});
      EXPECT_TRUE(file.ok());
      CrfsFileSink sink(file.value());
      auto r = CheckpointWriter::write_image(img, sink, nullptr,
                                             {.elide_zero_pages = sparse});
      EXPECT_TRUE(r.ok());
      crc = r.value();
      EXPECT_TRUE(file.value().close().ok());
    }
    // Restart directly from the backend.
    auto bf = mem->open_file("img.ckpt", {.create = false, .truncate = false, .write = false});
    EXPECT_TRUE(bf.ok());
    BackendSource source(*mem, bf.value());
    auto restored = RestartReader::read_image(source);
    EXPECT_TRUE(restored.ok()) << (restored.ok() ? "" : restored.error().to_string());
    EXPECT_EQ(restored.value().payload_crc, crc);
    (void)mem->close_file(bf.value());
    return std::pair{crc, mem->total_pwritten_bytes()};
  };

  const auto [dense_crc, dense_bytes] = run(false);
  const auto [sparse_crc, sparse_bytes] = run(true);
  EXPECT_EQ(dense_crc, sparse_crc);
  EXPECT_LT(sparse_bytes, dense_bytes) << "elision must reduce backend traffic";
}

TEST(SparseCheckpoint, PlanUnaffectedByOptions) {
  // The DES replays plan(); elision is a real-mode extension and must not
  // change the paper-mode plan.
  const auto img = ProcessImage::synthesize(6, 2 * MiB, 17);
  const auto plan = CheckpointWriter::plan(img);
  CountingSink dense;
  ASSERT_TRUE(CheckpointWriter::write_image(img, dense).ok());
  std::uint64_t plan_bytes = 0;
  for (const auto& op : plan) plan_bytes += op.size;
  EXPECT_EQ(plan_bytes, dense.written);
}

}  // namespace
}  // namespace crfs::blcr
