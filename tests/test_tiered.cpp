// Tiered burst-buffer backend tests: epoch-aware drain correctness
// (eviction only after remote durability), fault injection (remote tier
// down mid-drain, stage-full backpressure), restore coherence across
// tiers with readahead on/off, the shed_drain controller rule, and the
// DES mirror's deterministic replay + bandwidth-decoupling structure.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "backend/mem_backend.h"
#include "backend/tiered_backend.h"
#include "backend/wrappers.h"
#include "blcr/checkpoint_writer.h"
#include "blcr/process_image.h"
#include "blcr/restart_reader.h"
#include "blcr/sinks.h"
#include "common/units.h"
#include "crfs/crfs.h"
#include "crfs/file.h"
#include "crfs/fuse_shim.h"
#include "crfs/knobs.h"
#include "crfs/mount_options.h"
#include "obs/controller.h"
#include "obs/sampler.h"
#include "sim/tiered_sim.h"

namespace crfs {
namespace {

std::byte pattern_at(std::uint64_t i, std::uint64_t salt = 0) {
  return static_cast<std::byte>((i * 131 + (i >> 9) * 7 + salt + 13) & 0xff);
}

std::vector<std::byte> make_pattern(std::size_t n, std::uint64_t salt = 0) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = pattern_at(i, salt);
  return out;
}

std::uint64_t counter_value(const obs::Registry& reg, std::string_view name) {
  for (const auto& [n, v] : reg.snapshot().counters) {
    if (n == name) return v;
  }
  return 0;
}

// Writes `data` to `path` on a bare backend through its own open handle.
void backend_write(BackendFs& b, const std::string& path,
                   const std::vector<std::byte>& data, std::uint64_t offset = 0) {
  auto f = b.open_file(path, {.create = true, .truncate = false, .write = true});
  ASSERT_TRUE(f.ok()) << f.error().to_string();
  ASSERT_TRUE(b.pwrite(f.value(), data, offset).ok());
  ASSERT_TRUE(b.close_file(f.value()).ok());
}

std::vector<std::byte> backend_read(BackendFs& b, const std::string& path,
                                    std::size_t n, std::uint64_t offset = 0) {
  std::vector<std::byte> out(n);
  auto f = b.open_file(path, {.create = false, .truncate = false, .write = false});
  EXPECT_TRUE(f.ok()) << f.error().to_string();
  if (!f.ok()) return {};
  std::size_t got = 0;
  while (got < n) {
    auto r = b.pread(f.value(), std::span(out).subspan(got), offset + got);
    EXPECT_TRUE(r.ok());
    if (!r.ok() || r.value() == 0) break;
    got += r.value();
  }
  out.resize(got);
  (void)b.close_file(f.value());
  return out;
}

// -- Drain-unit correctness ---------------------------------------------------

TEST(TieredBackendTest, StagedDataIsReadableThenDrainsByteIdentical) {
  auto stage = std::make_shared<MemBackend>();
  auto remote = std::make_shared<MemBackend>();
  TieredBackend tier(stage, remote, TieredOptions{});

  const auto data = make_pattern(3 * MiB, 5);
  backend_write(tier, "ckpt.img", data);

  // Still staged: nothing sealed, remote has no bytes, reads come back
  // bit-identical from the stage.
  EXPECT_EQ(tier.tier_stats().units_evicted, 0u);
  EXPECT_EQ(backend_read(tier, "ckpt.img", data.size()), data);

  tier.seal_epoch(1);
  ASSERT_TRUE(tier.flush().ok());

  // Fully drained + evicted: the remote holds the exact bytes, the stage
  // occupancy is released, and reads still come back identical (now from
  // the remote).
  const TierStats st = tier.tier_stats();
  EXPECT_EQ(st.stage_used, 0u);
  EXPECT_EQ(st.drained_bytes, data.size());
  EXPECT_EQ(st.units_evicted, 1u);
  auto remote_data = remote->contents("ckpt.img");
  ASSERT_TRUE(remote_data.ok());
  EXPECT_EQ(remote_data.value(), data);
  EXPECT_EQ(backend_read(tier, "ckpt.img", data.size()), data);
}

TEST(TieredBackendTest, FsyncRemoteModeBlocksUntilRemoteDurable) {
  auto stage = std::make_shared<MemBackend>();
  auto remote = std::make_shared<MemBackend>();
  TieredOptions opts;
  opts.fsync_mode = TierFsyncMode::kRemote;
  TieredBackend tier(stage, remote, opts);

  const auto data = make_pattern(1 * MiB, 9);
  auto f = tier.open_file("sync.img", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(tier.pwrite(f.value(), data, 0).ok());
  // fsync in remote mode returns only once this file's bytes are durable
  // at the remote — no separate seal/flush needed.
  ASSERT_TRUE(tier.fsync(f.value()).ok());
  auto remote_data = remote->contents("sync.img");
  ASSERT_TRUE(remote_data.ok());
  EXPECT_EQ(remote_data.value(), data);
  ASSERT_TRUE(tier.close_file(f.value()).ok());
}

TEST(TieredBackendTest, OverwriteAfterSealDrainsBothVersionsInOrder) {
  auto stage = std::make_shared<MemBackend>();
  auto remote = std::make_shared<MemBackend>();
  TieredBackend tier(stage, remote, TieredOptions{});

  const auto v1 = make_pattern(256 * KiB, 1);
  const auto v2 = make_pattern(256 * KiB, 2);
  backend_write(tier, "a.img", v1);
  tier.seal_epoch(1);
  // Overwrite the same range after the seal: the new bytes belong to the
  // open unit; the drain must not evict them when unit 1 completes.
  backend_write(tier, "a.img", v2);
  tier.seal_epoch(2);
  ASSERT_TRUE(tier.flush().ok());

  auto remote_data = remote->contents("a.img");
  ASSERT_TRUE(remote_data.ok());
  EXPECT_EQ(remote_data.value(), v2);
  EXPECT_EQ(backend_read(tier, "a.img", v2.size()), v2);
}

// -- Fault injection: remote down mid-drain ----------------------------------

TEST(TieredFaults, RemoteDownMidDrainRetainsStageAndRecovers) {
  auto stage = std::make_shared<MemBackend>();
  auto remote_mem = std::make_shared<MemBackend>();
  auto faulty = std::make_shared<FaultyBackend>(remote_mem);
  TieredOptions opts;
  opts.retry_backoff = std::chrono::milliseconds(1);
  opts.retry_backoff_max = std::chrono::milliseconds(8);
  TieredBackend tier(stage, faulty, opts);
  obs::Registry reg;
  obs::EventBuffer events;
  tier.bind_obs(&reg, &events);

  faulty->fail_writes_after(0);  // remote tier is down
  const auto data = make_pattern(2 * MiB, 3);
  backend_write(tier, "burst.img", data);
  tier.seal_epoch(1);

  // The drain retries with backoff while the remote is down: staged data
  // must be retained (still readable), nothing evicted, retries counted,
  // and the health plane told once.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (tier.tier_stats().retries < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  TierStats st = tier.tier_stats();
  EXPECT_GE(st.retries, 2u);
  EXPECT_EQ(st.units_evicted, 0u);
  EXPECT_EQ(st.stage_used, data.size());
  EXPECT_EQ(backend_read(tier, "burst.img", data.size()), data);
  bool down_event = false;
  for (const auto& ev : events.snapshot()) {
    if (ev.rule == "tier_remote_down") down_event = true;
  }
  EXPECT_TRUE(down_event);

  // Heal the remote: the drain must complete, evict, and announce
  // recovery. (Healing before unmount also keeps the test from hanging.)
  faulty->fail_writes_after(-1);
  ASSERT_TRUE(tier.flush().ok());
  st = tier.tier_stats();
  EXPECT_EQ(st.units_evicted, 1u);
  EXPECT_EQ(st.stage_used, 0u);
  auto remote_data = remote_mem->contents("burst.img");
  ASSERT_TRUE(remote_data.ok());
  EXPECT_EQ(remote_data.value(), data);
  bool recovered_event = false;
  for (const auto& ev : events.snapshot()) {
    if (ev.rule == "tier_remote_recovered") recovered_event = true;
  }
  EXPECT_TRUE(recovered_event);
  EXPECT_GE(counter_value(reg, "crfs.tier.retries"), 2u);
}

// -- Fault injection: stage-full backpressure ---------------------------------

TEST(TieredFaults, TinyStageCapStallsWritersAndKeepsBytesExact) {
  auto stage = std::make_shared<MemBackend>();
  auto remote = std::make_shared<MemBackend>();
  TieredOptions opts;
  opts.stage_cap = 256 * KiB;  // far below the write set
  TieredBackend tier(stage, remote, opts);

  // 2 MiB through a 256 KiB stage: writers must stall on the cap and the
  // drain must free space unit by unit; every byte still lands exactly.
  const auto data = make_pattern(2 * MiB, 7);
  auto f = tier.open_file("bp.img", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  constexpr std::size_t kStep = 64 * KiB;
  for (std::size_t off = 0; off < data.size(); off += kStep) {
    ASSERT_TRUE(
        tier.pwrite(f.value(), std::span(data).subspan(off, kStep), off).ok());
  }
  ASSERT_TRUE(tier.close_file(f.value()).ok());
  tier.seal_epoch(1);
  ASSERT_TRUE(tier.flush().ok());

  const TierStats st = tier.tier_stats();
  EXPECT_GT(st.stalls, 0u);
  EXPECT_GT(st.stall_ns, 0u);
  EXPECT_EQ(st.staged_bytes + st.spill_bytes, data.size());
  EXPECT_EQ(st.stage_used, 0u);
  auto remote_data = remote->contents("bp.img");
  ASSERT_TRUE(remote_data.ok());
  EXPECT_EQ(remote_data.value(), data);
}

TEST(TieredFaults, OversizedWriteSpillsThroughToRemote) {
  auto stage = std::make_shared<MemBackend>();
  auto remote = std::make_shared<MemBackend>();
  TieredOptions opts;
  opts.stage_cap = 128 * KiB;
  TieredBackend tier(stage, remote, opts);

  // A single write larger than the whole stage cannot ever fit: it must
  // spill through to the remote directly instead of deadlocking.
  const auto big = make_pattern(512 * KiB, 11);
  backend_write(tier, "spill.img", big);
  const TierStats st = tier.tier_stats();
  EXPECT_EQ(st.spill_bytes, big.size());
  auto remote_data = remote->contents("spill.img");
  ASSERT_TRUE(remote_data.ok());
  EXPECT_EQ(remote_data.value(), big);
  EXPECT_EQ(backend_read(tier, "spill.img", big.size()), big);
}

// -- Full-mount integration: epochs seal drain units --------------------------

TEST(TieredMount, EpochFinalizeSealsAndLedgerGainsDrainColumns) {
  auto tier = std::make_shared<TieredBackend>(std::make_shared<MemBackend>(),
                                              std::make_shared<MemBackend>(),
                                              TieredOptions{});
  auto fs = Crfs::mount(tier, Config{.chunk_size = 256 * KiB, .pool_size = 2 * MiB});
  ASSERT_TRUE(fs.ok());
  ASSERT_NE(fs.value()->tiered_backend(), nullptr);

  ASSERT_TRUE(fs.value()->epoch_begin("ckpt-0").ok());
  FuseShim shim(*fs.value(), FuseOptions{});
  const auto data = make_pattern(1 * MiB, 21);
  auto h = shim.open("rank0.ckpt", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  for (std::size_t off = 0; off < data.size(); off += 64 * KiB) {
    ASSERT_TRUE(
        shim.write(h.value(), std::span(data).subspan(off, 64 * KiB), off).ok());
  }
  ASSERT_TRUE(shim.close(h.value()).ok());
  ASSERT_TRUE(fs.value()->epoch_end().ok());

  // Epoch finalize sealed the unit; the drain completes and reports back
  // into the ledger row via attach_drain.
  ASSERT_TRUE(tier->flush().ok());
  const auto records = fs.value()->epochs();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].drained_bytes, data.size());
  EXPECT_GT(records[0].drain_ns, 0u);
  EXPECT_GT(records[0].drain_bw(), 0.0);
  EXPECT_GT(records[0].drain_end_ns, 0u);

  // The mount surfaces the tier section and metrics.
  EXPECT_NE(fs.value()->stats_json().find("\"tier\":{\"enabled\":true"),
            std::string::npos);
  EXPECT_GE(counter_value(fs.value()->metrics(), "crfs.tier.drained_bytes"),
            data.size());
}

// -- Restore coherence: staged vs drained-and-evicted -------------------------

TEST(TieredRestore, BitIdenticalFromStageAndFromRemoteWithReadaheadOnOff) {
  auto tier = std::make_shared<TieredBackend>(std::make_shared<MemBackend>(),
                                              std::make_shared<MemBackend>(),
                                              TieredOptions{});
  auto fs = Crfs::mount(tier, Config{.chunk_size = 256 * KiB, .pool_size = 2 * MiB});
  ASSERT_TRUE(fs.ok());
  FuseShim shim(*fs.value(), FuseOptions{});

  const auto image = blcr::ProcessImage::synthesize(17, 6 * MiB, 55);
  std::uint64_t crc = 0;
  {
    auto f = File::open(shim, "rank0.ckpt",
                        {.create = true, .truncate = true, .write = true});
    ASSERT_TRUE(f.ok());
    blcr::CrfsFileSink sink(f.value());
    auto written = blcr::CheckpointWriter::write_image(image, sink);
    ASSERT_TRUE(written.ok());
    crc = written.value();
    ASSERT_TRUE(f.value().close().ok());
  }

  const auto restore_and_check = [&](const char* label) {
    SCOPED_TRACE(label);
    auto f = File::open(shim, "rank0.ckpt",
                        {.create = false, .truncate = false, .write = false});
    ASSERT_TRUE(f.ok());
    blcr::CrfsFileSource source(f.value());
    auto restored = blcr::RestartReader::read_image(source);
    ASSERT_TRUE(restored.ok()) << restored.error().to_string();
    EXPECT_EQ(restored.value().payload_crc, crc);
  };

  // Stage-resident, readahead on (default) and off.
  ASSERT_EQ(tier->tier_stats().units_evicted, 0u);
  restore_and_check("staged/readahead-on");
  fs.value()->tune("readahead", 0.0);
  restore_and_check("staged/readahead-off");

  // Drain + evict, then the same two restores come from the remote tier.
  tier->seal_epoch(1);
  ASSERT_TRUE(tier->flush().ok());
  ASSERT_GE(tier->tier_stats().units_evicted, 1u);
  ASSERT_EQ(tier->tier_stats().stage_used, 0u);
  restore_and_check("evicted/readahead-off");
  fs.value()->tune("readahead", 1.0);
  restore_and_check("evicted/readahead-on");
}

// -- shed_drain controller rule ----------------------------------------------

TEST(TieredControl, ShedDrainHalvesThenRestoresOnEpochFinalize) {
  obs::Registry reg;
  std::atomic<std::int64_t> depth{4};
  reg.gauge_fn("crfs.queue.depth", [&] { return depth.load(); });
  auto& drain_hist = reg.histogram("crfs.tier.drain_pwrite_ns");
  drain_hist.record(100'000'000);  // 100 ms: remote saturated
  auto& epochs_done = reg.counter("crfs.epoch.completed");

  KnobPlane plane;
  plane.define(KnobDef{"drain_mbps", 0.0, 1e6, "MB/s"}, 200.0,
               [](double, double*, std::string*) { return true; });
  obs::DecisionLog log(64, nullptr, nullptr);
  obs::Controller controller(
      obs::ControllerConfig{}, log, nullptr, nullptr,
      [&](std::string_view name, double fb) { return plane.snapshot()->get(name, fb); },
      [&](std::string_view name, double requested) {
        const TuneResult r = plane.tune(name, requested);
        return obs::TuneOutcome{r.outcome, r.from, r.to, r.reason, r.generation};
      });
  obs::Sampler sampler(reg);
  sampler.set_tick_observer([&](const obs::Sample& s) { controller.tick(s); });

  // Saturated remote + standing queue: shed_drain halves drain_mbps.
  sampler.tick(1'000'000'000);
  {
    const auto decisions = log.snapshot();
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_EQ(decisions[0].rule, "shed_drain");
    EXPECT_EQ(decisions[0].knob, "drain_mbps");
    EXPECT_DOUBLE_EQ(decisions[0].from, 200.0);
    EXPECT_DOUBLE_EQ(decisions[0].to, 100.0);
  }

  // Still shed, no epoch finalized yet: nothing further fires (the rule
  // is a one-shot episode, not a repeated halving).
  sampler.tick(2'000'000'000);
  EXPECT_EQ(log.snapshot().size(), 1u);

  // The burst epoch finalizes: the rule restores the pre-shed value
  // immediately, cooldown notwithstanding.
  epochs_done.add(1);
  sampler.tick(2'500'000'000);
  const auto decisions = log.snapshot();
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[1].rule, "shed_drain");
  EXPECT_DOUBLE_EQ(decisions[1].to, 200.0);
  EXPECT_DOUBLE_EQ(plane.snapshot()->get("drain_mbps", 0.0), 200.0);
}

TEST(TieredControl, DrainKnobsVetoedWithoutTieredBackend) {
  auto fs = Crfs::mount(std::make_shared<MemBackend>(),
                        Config{.chunk_size = 64 * KiB, .pool_size = 1 * MiB});
  ASSERT_TRUE(fs.ok());
  const auto r = fs.value()->tune("drain_mbps", 100.0);
  EXPECT_EQ(r.outcome, "vetoed");
  EXPECT_NE(r.reason.find("tiered backend"), std::string::npos);
}

TEST(TieredControl, DrainKnobsApplyOnTieredMount) {
  auto tier = std::make_shared<TieredBackend>(std::make_shared<MemBackend>(),
                                              std::make_shared<MemBackend>(),
                                              TieredOptions{});
  auto fs = Crfs::mount(tier, Config{.chunk_size = 64 * KiB, .pool_size = 1 * MiB});
  ASSERT_TRUE(fs.ok());
  EXPECT_EQ(fs.value()->tune("drain_mbps", 64.0).outcome, "applied");
  EXPECT_DOUBLE_EQ(tier->drain_mbps(), 64.0);
  EXPECT_EQ(fs.value()->tune("drain_parallel", 2.0).outcome, "applied");
  EXPECT_EQ(tier->drain_parallel(), 2u);
}

// -- Mount options ------------------------------------------------------------

TEST(TieredOptionsTest, MountOptionsParseAndFormatRoundtrip) {
  auto opts = parse_mount_options(
      "stage=mem,remote=/r,stage_cap=64M,drain_mbps=100,drain_parallel=2,"
      "fsync_mode=remote");
  ASSERT_TRUE(opts.ok()) << opts.error().to_string();
  const Config& cfg = opts.value().config;
  EXPECT_EQ(cfg.tier_stage, "mem");
  EXPECT_EQ(cfg.tier_remote, "/r");
  EXPECT_EQ(cfg.stage_cap, 64u * MiB);
  EXPECT_EQ(cfg.drain_mbps, 100u);
  EXPECT_EQ(cfg.drain_parallel, 2u);
  EXPECT_EQ(cfg.fsync_mode, "remote");

  const std::string rendered = format_mount_options(opts.value());
  EXPECT_NE(rendered.find("stage=mem"), std::string::npos);
  EXPECT_NE(rendered.find("remote=/r"), std::string::npos);
  EXPECT_NE(rendered.find("stage_cap=64M"), std::string::npos);
  EXPECT_NE(rendered.find("drain_mbps=100"), std::string::npos);
  EXPECT_NE(rendered.find("fsync_mode=remote"), std::string::npos);

  EXPECT_FALSE(parse_mount_options("fsync_mode=sometimes").ok());
  EXPECT_FALSE(parse_mount_options("stage=").ok());
}

// -- DES mirror ---------------------------------------------------------------

struct SimRun {
  double write_done_s = 0.0;
  double drain_done_s = 0.0;
  std::uint64_t staged = 0;
  std::uint64_t drained = 0;
  std::uint64_t evicted = 0;
  std::uint64_t stalls = 0;
};

sim::Task sim_burst(sim::Simulation& s, sim::TieredBackendSim& tier,
                    std::uint64_t bytes, SimRun* out) {
  constexpr std::uint64_t kRec = 4 * MiB;
  for (std::uint64_t off = 0; off < bytes; off += kRec) {
    co_await tier.write_call(0, 0, off, kRec, true);
  }
  out->write_done_s = s.now();
  tier.seal_epoch(1);
  tier.stop();
}

SimRun run_sim(sim::TieredBackendSim::Options opts, std::uint64_t bytes) {
  sim::Simulation s;
  auto tier = std::make_unique<sim::TieredBackendSim>(s, opts);
  SimRun out;
  s.spawn(sim_burst(s, *tier, bytes, &out));
  s.run();
  out.drain_done_s = tier->last_drain_end_s();
  out.staged = tier->staged_bytes();
  out.drained = tier->drained_bytes();
  out.evicted = tier->units_evicted();
  out.stalls = tier->stalls();
  return out;
}

TEST(TieredSim, AbsorptionDecouplesFromRemoteBandwidthDeterministically) {
  sim::TieredBackendSim::Options opts;
  opts.stage_bw = 1024.0 * MiB;
  opts.remote_bw = 64.0 * MiB;  // 16x slower remote
  const std::uint64_t bytes = 256 * MiB;
  const SimRun a = run_sim(opts, bytes);

  // Structural decoupling: the burst is absorbed at staging speed while
  // durability trails at remote speed — write completion must beat the
  // drain by at least the bandwidth ratio's margin.
  EXPECT_EQ(a.staged, bytes);
  EXPECT_EQ(a.drained, bytes);
  EXPECT_EQ(a.evicted, 1u);
  EXPECT_GT(a.drain_done_s, a.write_done_s * 4.0);

  // Byte-identical replay: the DES is deterministic.
  const SimRun b = run_sim(opts, bytes);
  EXPECT_EQ(a.write_done_s, b.write_done_s);
  EXPECT_EQ(a.drain_done_s, b.drain_done_s);
  EXPECT_EQ(a.staged, b.staged);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.stalls, b.stalls);
}

sim::Task sim_capped_burst(sim::Simulation& s, sim::TieredBackendSim& tier,
                           std::uint64_t bytes, unsigned epochs, SimRun* out) {
  constexpr std::uint64_t kRec = 4 * MiB;
  const std::uint64_t per_epoch = bytes / epochs;
  for (unsigned e = 0; e < epochs; ++e) {
    for (std::uint64_t off = 0; off < per_epoch; off += kRec) {
      co_await tier.write_call(0, static_cast<int>(e), off, kRec, true);
    }
    tier.seal_epoch(e + 1);
  }
  out->write_done_s = s.now();
  tier.stop();
}

TEST(TieredSim, StageCapBoundsOccupancyAndStallsWriters) {
  sim::TieredBackendSim::Options opts;
  opts.stage_bw = 1024.0 * MiB;
  opts.remote_bw = 64.0 * MiB;
  opts.stage_cap = 32 * MiB;
  sim::Simulation s;
  auto tier = std::make_unique<sim::TieredBackendSim>(s, opts);
  SimRun out;
  s.spawn(sim_capped_burst(s, *tier, 128 * MiB, 8, &out));
  s.run();

  // The cap held (peak occupancy never exceeded it), writers stalled, and
  // everything still drained.
  EXPECT_LE(tier->stage_peak(), opts.stage_cap);
  EXPECT_GT(tier->stalls(), 0u);
  EXPECT_EQ(tier->drained_bytes(), 128u * MiB);
  EXPECT_EQ(tier->units_evicted(), 8u);
}

}  // namespace
}  // namespace crfs
