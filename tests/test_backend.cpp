// Unit tests for the BackendFs implementations: MemBackend (full
// semantics), PosixBackend (against a temp dir), NullBackend, and the
// Faulty/Throttled decorators.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "backend/mem_backend.h"
#include "backend/null_backend.h"
#include "backend/posix_backend.h"
#include "backend/posix_io.h"
#include "backend/wrappers.h"
#include "common/rng.h"
#include "common/units.h"

namespace crfs {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string to_string(std::span<const std::byte> b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

// Shared conformance suite run against every backend that stores data.
class BackendConformance : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "mem") {
      backend_ = std::make_shared<MemBackend>();
    } else {
      dir_ = std::filesystem::temp_directory_path() /
             ("crfs_backend_test_" + std::to_string(::getpid()));
      std::filesystem::create_directories(dir_);
      auto b = PosixBackend::create(dir_.string());
      ASSERT_TRUE(b.ok()) << b.error().to_string();
      backend_ = std::move(b.value());
    }
  }

  void TearDown() override {
    backend_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::shared_ptr<BackendFs> backend_;
  std::filesystem::path dir_;
};

TEST_P(BackendConformance, CreateWriteReadBack) {
  auto f = backend_->open_file("a.txt", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok()) << f.error().to_string();
  const std::string msg = "hello backend";
  ASSERT_TRUE(backend_->pwrite(f.value(), as_bytes(msg), 0).ok());

  std::vector<std::byte> buf(msg.size());
  auto n = backend_->pread(f.value(), buf, 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), msg.size());
  EXPECT_EQ(to_string(buf), msg);
  EXPECT_TRUE(backend_->close_file(f.value()).ok());
}

TEST_P(BackendConformance, OpenMissingFails) {
  auto f = backend_->open_file("missing.txt", {.create = false, .truncate = false, .write = false});
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.error().code, ENOENT);
}

TEST_P(BackendConformance, PositionalWritesWithHole) {
  auto f = backend_->open_file("holes.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(backend_->pwrite(f.value(), as_bytes("tail"), 100).ok());
  ASSERT_TRUE(backend_->pwrite(f.value(), as_bytes("head"), 0).ok());

  auto st = backend_->stat("holes.bin");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, 104u);

  std::vector<std::byte> buf(104);
  auto n = backend_->pread(f.value(), buf, 0);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(n.value(), 104u);
  EXPECT_EQ(to_string(std::span(buf).first(4)), "head");
  EXPECT_EQ(static_cast<char>(buf[50]), '\0');  // hole reads as zero
  EXPECT_EQ(to_string(std::span(buf).subspan(100)), "tail");
  ASSERT_TRUE(backend_->close_file(f.value()).ok());
}

TEST_P(BackendConformance, ReadPastEofReturnsShort) {
  auto f = backend_->open_file("short.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(backend_->pwrite(f.value(), as_bytes("abc"), 0).ok());
  std::vector<std::byte> buf(10);
  auto n = backend_->pread(f.value(), buf, 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 3u);
  auto n2 = backend_->pread(f.value(), buf, 100);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(n2.value(), 0u);
  ASSERT_TRUE(backend_->close_file(f.value()).ok());
}

TEST_P(BackendConformance, TruncateShrinksAndGrows) {
  auto f = backend_->open_file("t.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(backend_->pwrite(f.value(), as_bytes("0123456789"), 0).ok());
  ASSERT_TRUE(backend_->truncate(f.value(), 4).ok());
  EXPECT_EQ(backend_->stat("t.bin").value().size, 4u);
  ASSERT_TRUE(backend_->truncate(f.value(), 8).ok());
  EXPECT_EQ(backend_->stat("t.bin").value().size, 8u);
  std::vector<std::byte> buf(8);
  ASSERT_EQ(backend_->pread(f.value(), buf, 0).value(), 8u);
  EXPECT_EQ(to_string(std::span(buf).first(4)), "0123");
  EXPECT_EQ(static_cast<char>(buf[6]), '\0');
  ASSERT_TRUE(backend_->close_file(f.value()).ok());
}

TEST_P(BackendConformance, MkdirListUnlinkRmdir) {
  ASSERT_TRUE(backend_->mkdir("d").ok());
  ASSERT_TRUE(backend_->mkdir("d/sub").ok());
  auto f = backend_->open_file("d/file", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(backend_->close_file(f.value()).ok());

  auto names = backend_->list_dir("d");
  ASSERT_TRUE(names.ok());
  std::sort(names.value().begin(), names.value().end());
  EXPECT_EQ(names.value(), (std::vector<std::string>{"file", "sub"}));

  EXPECT_FALSE(backend_->rmdir("d").ok());  // non-empty
  ASSERT_TRUE(backend_->unlink("d/file").ok());
  ASSERT_TRUE(backend_->rmdir("d/sub").ok());
  ASSERT_TRUE(backend_->rmdir("d").ok());
  EXPECT_FALSE(backend_->stat("d").ok());
}

TEST_P(BackendConformance, RenameMovesContent) {
  auto f = backend_->open_file("old", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(backend_->pwrite(f.value(), as_bytes("data"), 0).ok());
  ASSERT_TRUE(backend_->close_file(f.value()).ok());

  ASSERT_TRUE(backend_->rename("old", "new").ok());
  EXPECT_FALSE(backend_->stat("old").ok());
  EXPECT_EQ(backend_->stat("new").value().size, 4u);
}

TEST_P(BackendConformance, StatDirectory) {
  ASSERT_TRUE(backend_->mkdir("somedir").ok());
  auto st = backend_->stat("somedir");
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st.value().is_dir);
}

TEST_P(BackendConformance, MkdirExistingFails) {
  ASSERT_TRUE(backend_->mkdir("dup").ok());
  auto st = backend_->mkdir("dup");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, EEXIST);
}

TEST_P(BackendConformance, FsyncSucceedsOnOpenFile) {
  auto f = backend_->open_file("s.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(backend_->pwrite(f.value(), as_bytes("x"), 0).ok());
  EXPECT_TRUE(backend_->fsync(f.value()).ok());
  ASSERT_TRUE(backend_->close_file(f.value()).ok());
}

TEST_P(BackendConformance, LargeWriteRoundTrip) {
  auto f = backend_->open_file("big.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  std::vector<std::byte> data(4 * MiB);
  Rng r(7);
  for (auto& b : data) b = static_cast<std::byte>(r.next_u64());
  ASSERT_TRUE(backend_->pwrite(f.value(), data, 0).ok());

  std::vector<std::byte> back(data.size());
  ASSERT_EQ(backend_->pread(f.value(), back, 0).value(), data.size());
  EXPECT_EQ(std::memcmp(data.data(), back.data(), data.size()), 0);
  ASSERT_TRUE(backend_->close_file(f.value()).ok());
}

TEST_P(BackendConformance, PwritevLandsSegmentsBackToBack) {
  auto f = backend_->open_file("vec.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  const std::string a = "first-";
  const std::string b = "second-";
  const std::string c = "third";
  const BackendIoVec iov[] = {
      {reinterpret_cast<const std::byte*>(a.data()), a.size()},
      {reinterpret_cast<const std::byte*>(b.data()), b.size()},
      {reinterpret_cast<const std::byte*>(c.data()), c.size()},
  };
  ASSERT_TRUE(backend_->pwritev(f.value(), iov, 10).ok());

  const std::string expect = a + b + c;
  std::vector<std::byte> back(expect.size());
  ASSERT_EQ(backend_->pread(f.value(), back, 10).value(), expect.size());
  EXPECT_EQ(to_string(back), expect);
  EXPECT_EQ(backend_->stat("vec.bin").value().size, 10 + expect.size());
  ASSERT_TRUE(backend_->close_file(f.value()).ok());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendConformance,
                         ::testing::Values("mem", "posix"),
                         [](const auto& param_info) { return param_info.param; });

// ------------------------------------------------------------ MemBackend

TEST(MemBackend, UnlinkedFileStaysReadableThroughOpenHandle) {
  MemBackend mem;
  auto f = mem.open_file("ghost", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(mem.pwrite(f.value(), as_bytes("boo"), 0).ok());
  ASSERT_TRUE(mem.unlink("ghost").ok());
  EXPECT_FALSE(mem.stat("ghost").ok());
  std::vector<std::byte> buf(3);
  EXPECT_EQ(mem.pread(f.value(), buf, 0).value(), 3u);
  EXPECT_TRUE(mem.close_file(f.value()).ok());
}

TEST(MemBackend, CountsPwrites) {
  MemBackend mem;
  auto f = mem.open_file("c", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(mem.pwrite(f.value(), as_bytes("x"), static_cast<std::uint64_t>(i)).ok());
  }
  EXPECT_EQ(mem.total_pwrites(), 5u);
  EXPECT_EQ(mem.total_pwritten_bytes(), 5u);
  ASSERT_TRUE(mem.close_file(f.value()).ok());
}

TEST(MemBackend, PwritevCountsAsOneAggregatedWrite) {
  MemBackend mem;
  auto f = mem.open_file("v", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  const std::string a = "AAAA";
  const std::string b = "BBBB";
  const BackendIoVec iov[] = {
      {reinterpret_cast<const std::byte*>(a.data()), a.size()},
      {reinterpret_cast<const std::byte*>(b.data()), b.size()},
  };
  ASSERT_TRUE(mem.pwritev(f.value(), iov, 0).ok());
  // The aggregation-bound tests count backend calls: a coalesced run is
  // one call regardless of how many chunks it carried.
  EXPECT_EQ(mem.total_pwrites(), 1u);
  EXPECT_EQ(mem.total_pwritten_bytes(), 8u);
  EXPECT_EQ(to_string(mem.contents("v").value()), "AAAABBBB");
  ASSERT_TRUE(mem.close_file(f.value()).ok());
}

TEST(MemBackend, FsyncCounterVisible) {
  MemBackend mem;
  auto f = mem.open_file("s", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(mem.fsync(f.value()).ok());
  ASSERT_TRUE(mem.fsync(f.value()).ok());
  EXPECT_EQ(mem.fsync_count("s"), 2u);
  ASSERT_TRUE(mem.close_file(f.value()).ok());
}

TEST(MemBackend, WriteOnReadOnlyHandleFails) {
  MemBackend mem;
  {
    auto f = mem.open_file("ro", {.create = true, .truncate = true, .write = true});
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(mem.close_file(f.value()).ok());
  }
  auto f = mem.open_file("ro", {.create = false, .truncate = false, .write = false});
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(mem.pwrite(f.value(), as_bytes("no"), 0).ok());
  ASSERT_TRUE(mem.close_file(f.value()).ok());
}

// ---------------------------------------------------------- PosixBackend

TEST(PosixBackend, RejectsEscapingPaths) {
  auto dir = std::filesystem::temp_directory_path() / "crfs_posix_escape";
  std::filesystem::create_directories(dir);
  auto b = PosixBackend::create(dir.string());
  ASSERT_TRUE(b.ok());
  auto f = b.value()->open_file("../etc/passwd", {.create = false, .truncate = false, .write = false});
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.error().code, EINVAL);
  EXPECT_FALSE(b.value()->stat("a/../../b").ok());
  std::filesystem::remove_all(dir);
}

TEST(PosixBackend, CreateFailsOnMissingRoot) {
  auto b = PosixBackend::create("/nonexistent_root_dir_for_crfs_test");
  EXPECT_FALSE(b.ok());
}

// -------------------------------------------- posix_detail::pwritev_all

// The extracted retry loop behind PosixBackend::pwritev, driven with an
// injected write function so every kernel-edge case (EINTR, short writes
// at and inside segment boundaries, impossible zero returns) is covered
// without needing a filesystem that actually misbehaves.

std::vector<struct iovec> make_iovecs(std::vector<std::string>& segs) {
  std::vector<struct iovec> vecs(segs.size());
  for (std::size_t i = 0; i < segs.size(); ++i) {
    vecs[i].iov_base = segs[i].data();
    vecs[i].iov_len = segs[i].size();
  }
  return vecs;
}

std::string gather(const struct iovec* v, int cnt) {
  std::string out;
  for (int i = 0; i < cnt; ++i) {
    out.append(static_cast<const char*>(v[i].iov_base), v[i].iov_len);
  }
  return out;
}

TEST(PwritevAll, EintrIsRetriedUntilComplete) {
  std::vector<std::string> segs = {"aaaa", "bbbb"};
  auto vecs = make_iovecs(segs);
  int eintrs = 2;
  std::string sink;
  const int err = posix_detail::pwritev_all(
      vecs, 0, [&](struct iovec* v, int cnt, off_t off) -> ssize_t {
        if (eintrs > 0) {
          --eintrs;
          errno = EINTR;
          return -1;
        }
        EXPECT_EQ(off, 0);
        sink = gather(v, cnt);
        return static_cast<ssize_t>(sink.size());
      });
  EXPECT_EQ(err, 0);
  EXPECT_EQ(eintrs, 0);
  EXPECT_EQ(sink, "aaaabbbb");
}

TEST(PwritevAll, ShortWriteInsideSegmentResumesAtTrimmedOffset) {
  std::vector<std::string> segs = {"0123", "4567", "89AB"};
  auto vecs = make_iovecs(segs);
  std::string sink(12, '.');
  int calls = 0;
  const int err = posix_detail::pwritev_all(
      vecs, 100, [&](struct iovec* v, int cnt, off_t off) -> ssize_t {
        ++calls;
        // First call: 6 bytes — all of segment 0 plus half of segment 1.
        // The loop must resume at offset 106 with "67" then "89AB".
        const std::string data = gather(v, cnt);
        const ssize_t n = calls == 1 ? 6 : static_cast<ssize_t>(data.size());
        sink.replace(static_cast<std::size_t>(off - 100), static_cast<std::size_t>(n),
                     data.substr(0, static_cast<std::size_t>(n)));
        return n;
      });
  EXPECT_EQ(err, 0);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(sink, "0123456789AB");
}

TEST(PwritevAll, ShortWriteAtExactSegmentBoundary) {
  std::vector<std::string> segs = {"head", "tail"};
  auto vecs = make_iovecs(segs);
  std::string sink;
  int calls = 0;
  const int err = posix_detail::pwritev_all(
      vecs, 0, [&](struct iovec* v, int cnt, off_t off) -> ssize_t {
        ++calls;
        if (calls == 1) {
          EXPECT_EQ(cnt, 2);
          sink += gather(v, 1);  // exactly the first segment
          return static_cast<ssize_t>(v[0].iov_len);
        }
        // Resume must start cleanly at segment 1, untrimmed.
        EXPECT_EQ(off, 4);
        EXPECT_EQ(cnt, 1);
        sink += gather(v, cnt);
        return static_cast<ssize_t>(v[0].iov_len);
      });
  EXPECT_EQ(err, 0);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(sink, "headtail");
}

TEST(PwritevAll, OneByteAtATimeStillCompletes) {
  std::vector<std::string> segs = {"ab", "cd", "ef"};
  auto vecs = make_iovecs(segs);
  std::string sink;
  const int err = posix_detail::pwritev_all(
      vecs, 0, [&](struct iovec* v, int, off_t off) -> ssize_t {
        EXPECT_EQ(off, static_cast<off_t>(sink.size()));
        sink += static_cast<const char*>(v[0].iov_base)[0];
        return 1;
      });
  EXPECT_EQ(err, 0);
  EXPECT_EQ(sink, "abcdef");
}

TEST(PwritevAll, ZeroReturnIsReportedAsEio) {
  // A 0-byte pwritev with non-empty segments cannot make progress; the
  // loop must fail rather than spin forever.
  std::vector<std::string> segs = {"stuck"};
  auto vecs = make_iovecs(segs);
  const int err = posix_detail::pwritev_all(
      vecs, 0, [](struct iovec*, int, off_t) -> ssize_t { return 0; });
  EXPECT_EQ(err, EIO);
}

TEST(PwritevAll, HardErrnoPropagatesAfterPartialProgress) {
  std::vector<std::string> segs = {"some", "data"};
  auto vecs = make_iovecs(segs);
  int calls = 0;
  const int err = posix_detail::pwritev_all(
      vecs, 0, [&](struct iovec*, int, off_t) -> ssize_t {
        if (++calls == 1) return 4;  // first segment lands
        errno = ENOSPC;
        return -1;
      });
  EXPECT_EQ(err, ENOSPC);
}

TEST(PosixBackend, PwritevBeyondIovMaxFallsBackToSegmentLoop) {
  auto dir = std::filesystem::temp_directory_path() /
             ("crfs_posix_iovmax_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  auto b = PosixBackend::create(dir.string());
  ASSERT_TRUE(b.ok());
  auto f = b.value()->open_file("wide.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());

  // More segments than IOV_MAX: PosixBackend must split (via the base
  // class loop) instead of letting ::pwritev fail with EINVAL.
  const std::size_t count = static_cast<std::size_t>(IOV_MAX) + 10;
  std::string payload(count, '\0');
  for (std::size_t i = 0; i < count; ++i) payload[i] = static_cast<char>('a' + (i % 26));
  std::vector<BackendIoVec> iov(count);
  for (std::size_t i = 0; i < count; ++i) {
    iov[i] = {reinterpret_cast<const std::byte*>(payload.data() + i), 1};
  }
  ASSERT_TRUE(b.value()->pwritev(f.value(), iov, 0).ok());

  std::vector<std::byte> back(count);
  ASSERT_EQ(b.value()->pread(f.value(), back, 0).value(), count);
  EXPECT_EQ(to_string(back), payload);
  ASSERT_TRUE(b.value()->close_file(f.value()).ok());
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------------- NullBackend

TEST(NullBackend, DiscardsButCounts) {
  NullBackend null;
  auto f = null.open_file("whatever", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  std::vector<std::byte> data(1 * MiB);
  ASSERT_TRUE(null.pwrite(f.value(), data, 0).ok());
  ASSERT_TRUE(null.pwrite(f.value(), data, 1 * MiB).ok());
  EXPECT_EQ(null.bytes_discarded(), 2 * MiB);
  EXPECT_EQ(null.writes_observed(), 2u);
  std::vector<std::byte> buf(8);
  EXPECT_EQ(null.pread(f.value(), buf, 0).value(), 0u);  // always EOF
  EXPECT_TRUE(null.close_file(f.value()).ok());
}

// -------------------------------------------------------- FaultyBackend

TEST(FaultyBackend, FailsAfterNWrites) {
  auto mem = std::make_shared<MemBackend>();
  FaultyBackend faulty(mem);
  faulty.fail_writes_after(2);

  auto f = faulty.open_file("f", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(faulty.pwrite(f.value(), as_bytes("a"), 0).ok());
  EXPECT_TRUE(faulty.pwrite(f.value(), as_bytes("b"), 1).ok());
  auto third = faulty.pwrite(f.value(), as_bytes("c"), 2);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.error().code, EIO);
}

TEST(FaultyBackend, PwritevFallbackKeepsPerSegmentInjection) {
  // Decorators don't override pwritev: the BackendFs default forwards
  // segment by segment through their virtual pwrite, so write-count fault
  // injection still sees each segment individually.
  auto mem = std::make_shared<MemBackend>();
  FaultyBackend faulty(mem);
  faulty.fail_writes_after(1);

  auto f = faulty.open_file("v", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  const std::string a = "ok";
  const std::string b = "boom";
  const BackendIoVec iov[] = {
      {reinterpret_cast<const std::byte*>(a.data()), a.size()},
      {reinterpret_cast<const std::byte*>(b.data()), b.size()},
  };
  auto st = faulty.pwritev(f.value(), iov, 0);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, EIO);
  // First segment landed before the injected failure.
  EXPECT_EQ(to_string(mem->contents("v").value()), "ok");
}

TEST(FaultyBackend, FsyncAndOpenInjection) {
  auto mem = std::make_shared<MemBackend>();
  FaultyBackend faulty(mem);
  auto f = faulty.open_file("f", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  faulty.fail_fsync(true);
  EXPECT_FALSE(faulty.fsync(f.value()).ok());
  faulty.fail_open(true);
  EXPECT_FALSE(faulty.open_file("g", {.create = true, .truncate = false, .write = true}).ok());
}

// ------------------------------------------------------ ThrottledBackend

TEST(ThrottledBackend, SlowsWrites) {
  auto mem = std::make_shared<MemBackend>();
  // 1 MB/s: a 100 KB write must take >= ~0.1 s.
  ThrottledBackend slow(mem, 1e6);
  auto f = slow.open_file("s", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  std::vector<std::byte> data(100 * 1024);
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(slow.pwrite(f.value(), data, 0).ok());
  const auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 0.09);
  // Data still lands in the inner backend.
  EXPECT_EQ(mem->contents("s").value().size(), data.size());
}

}  // namespace
}  // namespace crfs
