// Behavioural tests for the Crfs filesystem class: aggregation semantics,
// close/fsync durability contract, passthrough operations, error
// propagation, and the paper's §IV invariants.
#include <gtest/gtest.h>

#include "backend/mem_backend.h"
#include "backend/null_backend.h"
#include "backend/wrappers.h"
#include "common/checksum.h"
#include "common/rng.h"
#include "crfs/crfs.h"

namespace crfs {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

class CrfsBasic : public ::testing::Test {
 protected:
  void SetUp() override { remount(Config{.chunk_size = 4096, .pool_size = 4 * 4096}); }

  void remount(Config cfg) {
    fs_.reset();
    mem_ = std::make_shared<MemBackend>();
    auto fs = Crfs::mount(mem_, cfg);
    ASSERT_TRUE(fs.ok()) << fs.error().to_string();
    fs_ = std::move(fs.value());
  }

  std::string backend_content(const std::string& path) {
    auto c = mem_->contents(path);
    if (!c.ok()) return "<missing>";
    return {reinterpret_cast<const char*>(c.value().data()), c.value().size()};
  }

  std::shared_ptr<MemBackend> mem_;
  std::unique_ptr<Crfs> fs_;
};

TEST_F(CrfsBasic, MountRejectsBadConfig) {
  auto bad = Crfs::mount(std::make_shared<MemBackend>(),
                         Config{.chunk_size = 0, .pool_size = 4096});
  EXPECT_FALSE(bad.ok());
  auto bad2 = Crfs::mount(std::make_shared<MemBackend>(),
                          Config{.chunk_size = 4096, .pool_size = 4096, .io_threads = 0});
  EXPECT_FALSE(bad2.ok());
  auto bad3 = Crfs::mount(nullptr, Config{});
  EXPECT_FALSE(bad3.ok());
}

TEST_F(CrfsBasic, WriteCloseLandsInBackend) {
  auto h = fs_->open("ckpt.img", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_->write(h.value(), as_bytes("checkpoint data"), 0).ok());
  ASSERT_TRUE(fs_->close(h.value()).ok());
  EXPECT_EQ(backend_content("ckpt.img"), "checkpoint data");
}

TEST_F(CrfsBasic, SmallWritesCoalesceIntoOneBackendWrite) {
  auto h = fs_->open("agg.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  // 64 x 32B = 2 KB, well under the 4 KB chunk: exactly one backend pwrite
  // should be issued, at close.
  std::string expect;
  for (int i = 0; i < 64; ++i) {
    const std::string piece(32, static_cast<char>('a' + i % 26));
    ASSERT_TRUE(fs_->write(h.value(), as_bytes(piece), expect.size()).ok());
    expect += piece;
  }
  EXPECT_EQ(mem_->total_pwrites(), 0u);  // still buffered
  ASSERT_TRUE(fs_->close(h.value()).ok());
  EXPECT_EQ(mem_->total_pwrites(), 1u);
  EXPECT_EQ(backend_content("agg.bin"), expect);
  const MountStats::Snapshot stats = fs_->stats().snapshot();
  EXPECT_EQ(stats.app_writes, 64u);
  EXPECT_EQ(stats.partial_flushes, 1u);
  EXPECT_EQ(stats.full_flushes, 0u);
}

TEST_F(CrfsBasic, FullChunksFlushEagerly) {
  // no_bypass: this test is about eager flushing of full aggregation
  // chunks; with the default large-write bypass a 3-chunk write goes
  // straight to the backend instead (covered in test_io_engine.cpp).
  remount(Config{.chunk_size = 4096, .pool_size = 4 * 4096, .large_write_bypass = false});
  auto h = fs_->open("full.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  std::vector<std::byte> data(4096 * 3, std::byte{0x5A});  // exactly 3 chunks
  ASSERT_TRUE(fs_->write(h.value(), data, 0).ok());
  ASSERT_TRUE(fs_->close(h.value()).ok());
  const MountStats::Snapshot stats = fs_->stats().snapshot();
  EXPECT_EQ(stats.full_flushes, 3u);
  EXPECT_EQ(stats.partial_flushes, 0u);
  EXPECT_EQ(mem_->total_pwritten_bytes(), data.size());
}

TEST_F(CrfsBasic, WriteLargerThanPoolStreamsThrough) {
  // 64 KB write through a 16 KB pool of 4 KB chunks: backpressure recycles
  // chunks; all data must land.
  auto h = fs_->open("big.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  std::vector<std::byte> data(64 * 1024);
  Rng r(1);
  for (auto& b : data) b = static_cast<std::byte>(r.next_u64());
  ASSERT_TRUE(fs_->write(h.value(), data, 0).ok());
  ASSERT_TRUE(fs_->close(h.value()).ok());
  auto out = mem_->contents("big.bin");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), data.size());
  EXPECT_EQ(Crc64::of(out.value().data(), out.value().size()),
            Crc64::of(data.data(), data.size()));
}

TEST_F(CrfsBasic, NonContiguousWriteFlushesAndRestarts) {
  auto h = fs_->open("sparse.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_->write(h.value(), as_bytes("head"), 0).ok());
  // Jump far forward: current chunk must be flushed, new chunk at 1000.
  ASSERT_TRUE(fs_->write(h.value(), as_bytes("tail"), 1000).ok());
  ASSERT_TRUE(fs_->close(h.value()).ok());
  const std::string content = backend_content("sparse.bin");
  ASSERT_EQ(content.size(), 1004u);
  EXPECT_EQ(content.substr(0, 4), "head");
  EXPECT_EQ(content.substr(1000), "tail");
  EXPECT_EQ(content[500], '\0');
  EXPECT_GE(fs_->stats().snapshot().partial_flushes, 2u);
}

TEST_F(CrfsBasic, BackwardOverwriteIsHonoured) {
  auto h = fs_->open("ow.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_->write(h.value(), as_bytes("XXXXXXXXXX"), 0).ok());
  ASSERT_TRUE(fs_->write(h.value(), as_bytes("ab"), 2).ok());
  ASSERT_TRUE(fs_->close(h.value()).ok());
  EXPECT_EQ(backend_content("ow.bin"), "XXabXXXXXX");
}

TEST_F(CrfsBasic, FsyncFlushesBufferedDataAndSyncsBackend) {
  auto h = fs_->open("sync.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_->write(h.value(), as_bytes("durable"), 0).ok());
  EXPECT_EQ(mem_->total_pwrites(), 0u);
  ASSERT_TRUE(fs_->fsync(h.value()).ok());
  // Paper §IV-D2: enqueue current chunk, wait, then fsync the backend.
  EXPECT_EQ(backend_content("sync.bin"), "durable");
  EXPECT_EQ(mem_->fsync_count("sync.bin"), 1u);
  // Writing continues after fsync.
  ASSERT_TRUE(fs_->write(h.value(), as_bytes("!more"), 7).ok());
  ASSERT_TRUE(fs_->close(h.value()).ok());
  EXPECT_EQ(backend_content("sync.bin"), "durable!more");
}

TEST_F(CrfsBasic, CloseIsDurabilityBarrier) {
  // Paper §IV-C: close blocks until complete == write chunk counts.
  auto h = fs_->open("barrier.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  std::vector<std::byte> data(40 * 1024, std::byte{7});
  ASSERT_TRUE(fs_->write(h.value(), data, 0).ok());
  ASSERT_TRUE(fs_->close(h.value()).ok());
  // After close returns, every byte is in the backend, no pending data.
  EXPECT_EQ(mem_->contents("barrier.bin").value().size(), data.size());
  EXPECT_EQ(fs_->queue_depth(), 0u);
  EXPECT_EQ(fs_->open_files(), 0u);
}

TEST_F(CrfsBasic, ReadPassesThroughToBackend) {
  {
    auto h = fs_->open("r.bin", {.create = true, .truncate = true, .write = true});
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(fs_->write(h.value(), as_bytes("restart image"), 0).ok());
    ASSERT_TRUE(fs_->close(h.value()).ok());
  }
  auto h = fs_->open("r.bin", {.create = false, .truncate = false, .write = false});
  ASSERT_TRUE(h.ok());
  std::vector<std::byte> buf(7);
  auto n = fs_->read(h.value(), buf, 8);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 5u);
  EXPECT_EQ(std::memcmp(buf.data(), "image", 5), 0);
  ASSERT_TRUE(fs_->close(h.value()).ok());
  EXPECT_EQ(fs_->stats().snapshot().reads, 1u);
}

TEST_F(CrfsBasic, FlushBeforeReadSeesBufferedData) {
  // Default config: read() observes prior writes even if still buffered.
  auto h = fs_->open("rw.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_->write(h.value(), as_bytes("visible"), 0).ok());
  std::vector<std::byte> buf(7);
  auto n = fs_->read(h.value(), buf, 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 7u);
  EXPECT_EQ(std::memcmp(buf.data(), "visible", 7), 0);
  ASSERT_TRUE(fs_->close(h.value()).ok());
}

TEST_F(CrfsBasic, PaperFaithfulReadModeSkipsFlush) {
  remount(Config{.chunk_size = 4096, .pool_size = 4 * 4096, .flush_before_read = false});
  auto h = fs_->open("pf.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_->write(h.value(), as_bytes("buffered"), 0).ok());
  std::vector<std::byte> buf(8);
  auto n = fs_->read(h.value(), buf, 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);  // backend file still empty: pure passthrough
  ASSERT_TRUE(fs_->close(h.value()).ok());
}

TEST_F(CrfsBasic, SharedOpenRefcounts) {
  // Paper §IV-A: reopening bumps the entry's reference counter.
  auto h1 = fs_->open("shared.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h1.ok());
  auto h2 = fs_->open("shared.bin", {.create = false, .truncate = false, .write = true});
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(fs_->open_files(), 1u);  // one table entry
  EXPECT_EQ(fs_->stats().snapshot().reopens, 1u);

  ASSERT_TRUE(fs_->write(h1.value(), as_bytes("one"), 0).ok());
  ASSERT_TRUE(fs_->close(h1.value()).ok());
  EXPECT_EQ(fs_->open_files(), 1u);  // still referenced by h2
  ASSERT_TRUE(fs_->write(h2.value(), as_bytes("two"), 3).ok());
  ASSERT_TRUE(fs_->close(h2.value()).ok());
  EXPECT_EQ(fs_->open_files(), 0u);
  EXPECT_EQ(backend_content("shared.bin"), "onetwo");
}

TEST_F(CrfsBasic, GetattrReportsBufferedSize) {
  auto h = fs_->open("sz.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_->write(h.value(), as_bytes("0123456789"), 0).ok());
  auto st = fs_->getattr("sz.bin");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, 10u);  // buffered but visible via size_seen
  ASSERT_TRUE(fs_->close(h.value()).ok());
  EXPECT_EQ(fs_->getattr("sz.bin").value().size, 10u);
}

TEST_F(CrfsBasic, MetadataOpsPassThrough) {
  ASSERT_TRUE(fs_->mkdir("dir").ok());
  ASSERT_TRUE(fs_->mkdir("dir/sub").ok());
  auto h = fs_->open("dir/f", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_->close(h.value()).ok());
  auto ls = fs_->list_dir("dir");
  ASSERT_TRUE(ls.ok());
  EXPECT_EQ(ls.value().size(), 2u);
  ASSERT_TRUE(fs_->unlink("dir/f").ok());
  ASSERT_TRUE(fs_->rmdir("dir/sub").ok());
  ASSERT_TRUE(fs_->rmdir("dir").ok());
  EXPECT_FALSE(fs_->getattr("dir").ok());
}

TEST_F(CrfsBasic, RenameFlushesBufferedDataFirst) {
  auto h = fs_->open("tmp.ckpt", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_->write(h.value(), as_bytes("atomic publish"), 0).ok());
  ASSERT_TRUE(fs_->rename("tmp.ckpt", "final.ckpt").ok());
  EXPECT_EQ(backend_content("final.ckpt"), "atomic publish");
  ASSERT_TRUE(fs_->close(h.value()).ok());
}

TEST_F(CrfsBasic, TruncateOpenFileDropsData) {
  auto h = fs_->open("tr.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_->write(h.value(), as_bytes("0123456789"), 0).ok());
  ASSERT_TRUE(fs_->truncate("tr.bin", 4).ok());
  ASSERT_TRUE(fs_->close(h.value()).ok());
  EXPECT_EQ(backend_content("tr.bin"), "0123");
  EXPECT_EQ(fs_->getattr("tr.bin").value().size, 4u);
}

TEST_F(CrfsBasic, TruncateOnReopenDiscardsBufferedData) {
  auto h1 = fs_->open("reopen.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(fs_->write(h1.value(), as_bytes("stale"), 0).ok());
  // Second open with O_TRUNC while first still open.
  auto h2 = fs_->open("reopen.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h2.ok());
  ASSERT_TRUE(fs_->write(h2.value(), as_bytes("fresh"), 0).ok());
  ASSERT_TRUE(fs_->close(h1.value()).ok());
  ASSERT_TRUE(fs_->close(h2.value()).ok());
  EXPECT_EQ(backend_content("reopen.bin"), "fresh");
}

TEST_F(CrfsBasic, OperationsOnBadHandleFail) {
  EXPECT_FALSE(fs_->write(9999, as_bytes("x"), 0).ok());
  std::vector<std::byte> buf(1);
  EXPECT_FALSE(fs_->read(9999, buf, 0).ok());
  EXPECT_FALSE(fs_->fsync(9999).ok());
  EXPECT_FALSE(fs_->close(9999).ok());
}

TEST_F(CrfsBasic, WriteOnReadOnlyHandleFails) {
  {
    auto h = fs_->open("ro.bin", {.create = true, .truncate = true, .write = true});
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(fs_->close(h.value()).ok());
  }
  auto h = fs_->open("ro.bin", {.create = false, .truncate = false, .write = false});
  ASSERT_TRUE(h.ok());
  auto st = fs_->write(h.value(), as_bytes("nope"), 0);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, EBADF);
  ASSERT_TRUE(fs_->close(h.value()).ok());
}

TEST_F(CrfsBasic, DoubleCloseFails) {
  auto h = fs_->open("dc.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_->close(h.value()).ok());
  EXPECT_FALSE(fs_->close(h.value()).ok());
}

TEST_F(CrfsBasic, UnmountFlushesLeakedHandles) {
  auto h = fs_->open("leak.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_->write(h.value(), as_bytes("do not lose me"), 0).ok());
  fs_.reset();  // unmount without close
  EXPECT_EQ(backend_content("leak.bin"), "do not lose me");
}

TEST_F(CrfsBasic, EmptyFileCloseWritesNothing) {
  auto h = fs_->open("empty.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_->close(h.value()).ok());
  EXPECT_EQ(mem_->total_pwrites(), 0u);
  EXPECT_EQ(backend_content("empty.bin"), "");
}

TEST_F(CrfsBasic, ZeroByteWriteIsNoop) {
  auto h = fs_->open("z.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_->write(h.value(), {}, 0).ok());
  ASSERT_TRUE(fs_->close(h.value()).ok());
  EXPECT_EQ(mem_->total_pwrites(), 0u);
}

// ----------------------------------------------------- error propagation

TEST(CrfsErrors, AsyncWriteErrorSurfacesAtClose) {
  auto mem = std::make_shared<MemBackend>();
  auto faulty = std::make_shared<FaultyBackend>(mem);
  // no_bypass pins the asynchronous error path: with the bypass a
  // 2-chunk write would fail synchronously at write() instead.
  auto fs = Crfs::mount(faulty, Config{.chunk_size = 4096, .pool_size = 4 * 4096,
                                       .large_write_bypass = false});
  ASSERT_TRUE(fs.ok());

  auto h = fs.value()->open("err.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  faulty->fail_writes_after(0);
  std::vector<std::byte> data(8192, std::byte{1});  // two full chunks -> async writes
  ASSERT_TRUE(fs.value()->write(h.value(), data, 0).ok());  // buffering succeeds
  const Status st = fs.value()->close(h.value());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, EIO);
}

TEST(CrfsErrors, AsyncWriteErrorSurfacesAtFsync) {
  auto mem = std::make_shared<MemBackend>();
  auto faulty = std::make_shared<FaultyBackend>(mem);
  auto fs = Crfs::mount(faulty, Config{.chunk_size = 4096, .pool_size = 4 * 4096});
  ASSERT_TRUE(fs.ok());

  auto h = fs.value()->open("err2.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  faulty->fail_writes_after(0);
  ASSERT_TRUE(fs.value()->write(h.value(), std::vector<std::byte>(100, std::byte{2}), 0).ok());
  const Status st = fs.value()->fsync(h.value());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, EIO);
  // Error reported once; a later close without further failures is clean
  // apart from any still-buffered data failing again.
  faulty->fail_writes_after(-1);
  EXPECT_TRUE(fs.value()->close(h.value()).ok());
}

TEST(CrfsErrors, FsyncBackendFailurePropagates) {
  auto mem = std::make_shared<MemBackend>();
  auto faulty = std::make_shared<FaultyBackend>(mem);
  auto fs = Crfs::mount(faulty, Config{.chunk_size = 4096, .pool_size = 4 * 4096});
  ASSERT_TRUE(fs.ok());
  auto h = fs.value()->open("err3.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  faulty->fail_fsync(true);
  EXPECT_FALSE(fs.value()->fsync(h.value()).ok());
  faulty->fail_fsync(false);
  EXPECT_TRUE(fs.value()->close(h.value()).ok());
}

TEST(CrfsErrors, OpenFailurePropagates) {
  auto mem = std::make_shared<MemBackend>();
  auto faulty = std::make_shared<FaultyBackend>(mem);
  auto fs = Crfs::mount(faulty, Config{.chunk_size = 4096, .pool_size = 4 * 4096});
  ASSERT_TRUE(fs.ok());
  faulty->fail_open(true);
  auto h = fs.value()->open("nope", {.create = true, .truncate = true, .write = true});
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(h.error().code, EACCES);
  EXPECT_EQ(fs.value()->open_files(), 0u);  // no stale table entry
}

// -------------------------------------------------------- NullBackend fit

TEST(CrfsNull, DiscardModeCountsAllBytes) {
  auto null = std::make_shared<NullBackend>();
  auto fs = Crfs::mount(null, Config{.chunk_size = 64 * 1024, .pool_size = 512 * 1024});
  ASSERT_TRUE(fs.ok());
  auto h = fs.value()->open("sink", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  std::vector<std::byte> data(1 * MiB, std::byte{0xEE});
  ASSERT_TRUE(fs.value()->write(h.value(), data, 0).ok());
  ASSERT_TRUE(fs.value()->close(h.value()).ok());
  EXPECT_EQ(null->bytes_discarded(), data.size());
  // 1 MiB through 64 KiB chunks = 16 chunks; batched dequeue may coalesce
  // adjacent chunks into fewer (vectored) backend calls, never more.
  EXPECT_GE(null->writes_observed(), 1u);
  EXPECT_LE(null->writes_observed(), 16u);
}

}  // namespace
}  // namespace crfs
