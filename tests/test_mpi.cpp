// Tests for the MPI stack models and the coordinated checkpoint job
// driver (real-thread mode), including full native-vs-CRFS cycles.
#include <gtest/gtest.h>

#include "backend/mem_backend.h"
#include "backend/wrappers.h"
#include "common/units.h"
#include "mpi/job.h"
#include "mpi/stack_model.h"
#include "mpi/targets.h"

namespace crfs::mpi {
namespace {

TEST(StackModel, Table2ValuesExactAt128) {
  // Table II per-process image sizes, 128 processes.
  struct Case { Stack s; LuClass c; double mb; };
  const Case cases[] = {
      {Stack::kMvapich2, LuClass::kB, 7.1},  {Stack::kMvapich2, LuClass::kC, 15.1},
      {Stack::kMvapich2, LuClass::kD, 106.7}, {Stack::kOpenMpi, LuClass::kB, 7.1},
      {Stack::kOpenMpi, LuClass::kC, 13.7},  {Stack::kOpenMpi, LuClass::kD, 108.3},
      {Stack::kMpich2, LuClass::kB, 3.9},    {Stack::kMpich2, LuClass::kC, 10.7},
      {Stack::kMpich2, LuClass::kD, 103.6},
  };
  for (const auto& tc : cases) {
    const double got =
        static_cast<double>(image_bytes_per_process(tc.s, tc.c, 128)) / static_cast<double>(MiB);
    EXPECT_NEAR(got, tc.mb, 0.01) << stack_name(tc.s) << " " << lu_class_name(tc.c);
  }
}

TEST(StackModel, IbStacksBiggerThanTcp) {
  for (const LuClass c : {LuClass::kB, LuClass::kC, LuClass::kD}) {
    EXPECT_GT(image_bytes_per_process(Stack::kMvapich2, c, 128),
              image_bytes_per_process(Stack::kMpich2, c, 128));
  }
}

TEST(StackModel, FewerProcsMeanBiggerImages) {
  // Fixed problem size divided across fewer ranks (Fig 9's setup).
  const auto at16 = image_bytes_per_process(Stack::kMvapich2, LuClass::kD, 16);
  const auto at128 = image_bytes_per_process(Stack::kMvapich2, LuClass::kD, 128);
  EXPECT_GT(at16, 6 * at128);  // ~8x the data share, minus the fixed base
  // Total data is conserved up to the per-rank base.
  const auto total16 = total_checkpoint_bytes(Stack::kMvapich2, LuClass::kD, 16);
  const auto total128 = total_checkpoint_bytes(Stack::kMvapich2, LuClass::kD, 128);
  EXPECT_NEAR(static_cast<double>(total16) / static_cast<double>(total128), 1.0, 0.05);
}

TEST(StackModel, Names) {
  EXPECT_STREQ(stack_name(Stack::kMvapich2), "MVAPICH2");
  EXPECT_STREQ(stack_transport(Stack::kMvapich2), "IB");
  EXPECT_STREQ(stack_transport(Stack::kMpich2), "TCP");
  EXPECT_EQ(benchmark_tag(LuClass::kC, 64), "LU.C.64");
}

// ---------------------------------------------------------------- driver

class JobDriver : public ::testing::Test {
 protected:
  void SetUp() override {
    mem_ = std::make_shared<MemBackend>();
    auto fs = Crfs::mount(mem_, Config{.chunk_size = 1 * MiB, .pool_size = 8 * MiB});
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(fs.value());
    shim_ = std::make_unique<FuseShim>(*fs_, FuseOptions{.big_writes = true});
  }

  // Tiny synthetic job: 4 ranks, smallest class, scaled-down images by
  // using a large nprocs in the size model but few actual ranks.
  JobConfig small_config() {
    JobConfig cfg;
    cfg.stack = Stack::kMpich2;
    cfg.lu_class = LuClass::kB;
    cfg.nprocs = 4;
    cfg.seed = 7;
    return cfg;
  }

  std::shared_ptr<MemBackend> mem_;
  std::unique_ptr<Crfs> fs_;
  std::unique_ptr<FuseShim> shim_;
};

TEST_F(JobDriver, CrfsCheckpointProducesAllRankFiles) {
  CrfsTarget target(*shim_, "job/");
  ASSERT_TRUE(fs_->mkdir("job").ok());
  auto report = run_checkpoint(small_config(), target);
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_EQ(report.ranks.size(), 4u);
  for (unsigned r = 0; r < 4; ++r) {
    auto c = mem_->contents("job/rank" + std::to_string(r) + ".ckpt");
    ASSERT_TRUE(c.ok()) << "rank " << r;
    EXPECT_GT(c.value().size(), report.ranks[r].image_bytes);  // payload + headers
    EXPECT_GT(report.ranks[r].write_seconds, 0.0);
    EXPECT_NE(report.ranks[r].payload_crc, 0u);
  }
  EXPECT_GT(report.checkpoint_seconds, 0.0);
  // The coordinated cycle is at least as long as the slowest rank.
  double slowest = 0;
  for (const auto& r : report.ranks) slowest = std::max(slowest, r.write_seconds);
  EXPECT_GE(report.checkpoint_seconds * 1.05, slowest);
}

TEST_F(JobDriver, NativeCheckpointEquivalentContent) {
  // The same job, native vs CRFS, must produce byte-identical rank files
  // (CRFS "doesn't change any file layout").
  CrfsTarget crfs_target(*shim_, "crfs_");
  NativeTarget native_target(mem_, "native_");
  const auto cfg = small_config();
  auto r1 = run_checkpoint(cfg, crfs_target);
  auto r2 = run_checkpoint(cfg, native_target);
  ASSERT_TRUE(r1.ok) << r1.error;
  ASSERT_TRUE(r2.ok) << r2.error;
  for (unsigned r = 0; r < cfg.nprocs; ++r) {
    auto a = mem_->contents("crfs_rank" + std::to_string(r) + ".ckpt");
    auto b = mem_->contents("native_rank" + std::to_string(r) + ".ckpt");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value()) << "rank " << r;
    EXPECT_EQ(r1.ranks[r].payload_crc, r2.ranks[r].payload_crc);
  }
}

TEST_F(JobDriver, RecordersAttachWhenRequested) {
  CrfsTarget target(*shim_);
  auto cfg = small_config();
  cfg.record_writes = true;
  auto report = run_checkpoint(cfg, target);
  ASSERT_TRUE(report.ok);
  for (const auto& r : report.ranks) {
    EXPECT_GT(r.recorder.count(), 100u);  // BLCR's many small writes
    EXPECT_EQ(r.recorder.total_bytes() > r.image_bytes, true);
  }
}

TEST_F(JobDriver, FailedRankPropagatesToJobReport) {
  auto faulty_backend = std::make_shared<FaultyBackend>(mem_);
  faulty_backend->fail_open(true);
  NativeTarget target(faulty_backend, "bad_");
  auto report = run_checkpoint(small_config(), target);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.error.empty());
}

TEST_F(JobDriver, ImageSizesFollowStackModel) {
  CrfsTarget target(*shim_, "sz_");
  JobConfig cfg = small_config();
  cfg.stack = Stack::kMvapich2;
  auto report = run_checkpoint(cfg, target);
  ASSERT_TRUE(report.ok);
  const auto expected = image_bytes_per_process(cfg.stack, cfg.lu_class, cfg.nprocs);
  for (const auto& r : report.ranks) {
    EXPECT_EQ(r.image_bytes, expected);
    // Actual file content ~= image + format metadata (within 2%+64K).
    auto c = mem_->contents("sz_rank" + std::to_string(r.rank) + ".ckpt");
    ASSERT_TRUE(c.ok());
    EXPECT_NEAR(static_cast<double>(c.value().size()), static_cast<double>(expected),
                static_cast<double>(expected) * 0.03 + 64 * KiB);
  }
}

TEST_F(JobDriver, DeterministicAcrossRuns) {
  NativeTarget t1(mem_, "d1_");
  NativeTarget t2(mem_, "d2_");
  const auto cfg = small_config();
  auto r1 = run_checkpoint(cfg, t1);
  auto r2 = run_checkpoint(cfg, t2);
  ASSERT_TRUE(r1.ok);
  ASSERT_TRUE(r2.ok);
  for (unsigned r = 0; r < cfg.nprocs; ++r) {
    EXPECT_EQ(r1.ranks[r].payload_crc, r2.ranks[r].payload_crc);
  }
}

}  // namespace
}  // namespace crfs::mpi
