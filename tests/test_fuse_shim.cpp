// Tests for FuseShim (kernel request splitting) and the crfs::File RAII
// wrapper.
#include <gtest/gtest.h>

#include "backend/mem_backend.h"
#include "common/checksum.h"
#include "common/rng.h"
#include "common/units.h"
#include "crfs/file.h"
#include "crfs/fuse_shim.h"

namespace crfs {
namespace {

class FuseShimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mem_ = std::make_shared<MemBackend>();
    auto fs = Crfs::mount(mem_, Config{.chunk_size = 256 * KiB, .pool_size = 1 * MiB});
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(fs.value());
  }

  std::shared_ptr<MemBackend> mem_;
  std::unique_ptr<Crfs> fs_;
};

TEST_F(FuseShimTest, BigWritesSplitAt128K) {
  FuseShim shim(*fs_, FuseOptions{.big_writes = true});
  EXPECT_EQ(shim.options().max_write(), 128 * KiB);

  auto h = shim.open("f", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  std::vector<std::byte> data(512 * KiB, std::byte{1});
  const std::uint64_t before = shim.requests_routed();
  ASSERT_TRUE(shim.write(h.value(), data, 0).ok());
  // 512K / 128K = 4 write requests.
  EXPECT_EQ(shim.requests_routed() - before, 4u);
  ASSERT_TRUE(shim.close(h.value()).ok());
  EXPECT_EQ(fs_->stats().snapshot().app_writes, 4u);
}

TEST_F(FuseShimTest, SmallWritesSplitAt4K) {
  FuseShim shim(*fs_, FuseOptions{.big_writes = false});
  EXPECT_EQ(shim.options().max_write(), 4 * KiB);

  auto h = shim.open("f", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  std::vector<std::byte> data(512 * KiB, std::byte{1});
  const std::uint64_t before = shim.requests_routed();
  ASSERT_TRUE(shim.write(h.value(), data, 0).ok());
  EXPECT_EQ(shim.requests_routed() - before, 128u);  // 512K / 4K
  ASSERT_TRUE(shim.close(h.value()).ok());
}

TEST_F(FuseShimTest, WriteSmallerThanRequestIsOneRequest) {
  FuseShim shim(*fs_, FuseOptions{});
  auto h = shim.open("g", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  const std::uint64_t before = shim.requests_routed();
  std::vector<std::byte> tiny(100, std::byte{2});
  ASSERT_TRUE(shim.write(h.value(), tiny, 0).ok());
  EXPECT_EQ(shim.requests_routed() - before, 1u);
  ASSERT_TRUE(shim.close(h.value()).ok());
}

TEST_F(FuseShimTest, SplitWritesPreserveContent) {
  FuseShim shim(*fs_, FuseOptions{.big_writes = true});
  auto h = shim.open("content", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  std::vector<std::byte> data(777 * 1024 + 13);  // deliberately unaligned
  Rng r(5);
  for (auto& b : data) b = static_cast<std::byte>(r.next_u64());
  ASSERT_TRUE(shim.write(h.value(), data, 0).ok());
  ASSERT_TRUE(shim.close(h.value()).ok());

  auto c = mem_->contents("content");
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c.value().size(), data.size());
  EXPECT_EQ(Crc64::of(c.value().data(), c.value().size()),
            Crc64::of(data.data(), data.size()));
}

TEST_F(FuseShimTest, ReadSplitsAndReassembles) {
  FuseShim shim(*fs_, FuseOptions{.big_writes = true});
  std::vector<std::byte> data(300 * KiB);
  Rng r(6);
  for (auto& b : data) b = static_cast<std::byte>(r.next_u64());
  {
    auto h = shim.open("rr", {.create = true, .truncate = true, .write = true});
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(shim.write(h.value(), data, 0).ok());
    ASSERT_TRUE(shim.close(h.value()).ok());
  }
  auto h = shim.open("rr", {.create = false, .truncate = false, .write = false});
  ASSERT_TRUE(h.ok());
  std::vector<std::byte> back(data.size());
  auto n = shim.read(h.value(), back, 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), data.size());
  EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
  ASSERT_TRUE(shim.close(h.value()).ok());
}

// ------------------------------------------------------------- crfs::File

TEST_F(FuseShimTest, FileCursorSemantics) {
  FuseShim shim(*fs_, FuseOptions{});
  auto f = File::open(shim, "cursor", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f.value().write("abc", 3).ok());
  EXPECT_EQ(f.value().tell(), 3u);
  ASSERT_TRUE(f.value().write("def", 3).ok());
  EXPECT_EQ(f.value().tell(), 6u);
  ASSERT_TRUE(f.value().close().ok());
  EXPECT_EQ(mem_->contents("cursor").value().size(), 6u);
}

TEST_F(FuseShimTest, FileDestructorCloses) {
  FuseShim shim(*fs_, FuseOptions{});
  {
    auto f = File::open(shim, "raii", {.create = true, .truncate = true, .write = true});
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value().write("bye", 3).ok());
    // destructor closes
  }
  EXPECT_EQ(fs_->open_files(), 0u);
  EXPECT_EQ(mem_->contents("raii").value().size(), 3u);
}

TEST_F(FuseShimTest, FileMoveTransfersOwnership) {
  FuseShim shim(*fs_, FuseOptions{});
  auto f = File::open(shim, "mv", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  File g = std::move(f.value());
  ASSERT_TRUE(g.write("moved", 5).ok());
  ASSERT_TRUE(g.close().ok());
  EXPECT_EQ(mem_->contents("mv").value().size(), 5u);
}

TEST_F(FuseShimTest, FileReadBackAfterSeek) {
  FuseShim shim(*fs_, FuseOptions{});
  auto f = File::open(shim, "seek", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f.value().write("0123456789", 10).ok());
  ASSERT_TRUE(f.value().fsync().ok());
  f.value().seek(4);
  std::vector<std::byte> buf(3);
  auto n = f.value().read(buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 3u);
  EXPECT_EQ(std::memcmp(buf.data(), "456", 3), 0);
  EXPECT_EQ(f.value().tell(), 7u);
}

}  // namespace
}  // namespace crfs
