// Tests for the beyond-the-paper simulation pieces: the PVFS2 backend
// model and the inter-node coordinated-flush extension (§VII future
// work), plus corruption-sweep property tests on the restart reader.
#include <gtest/gtest.h>

#include "blcr/checkpoint_writer.h"
#include "blcr/process_image.h"
#include "blcr/restart_reader.h"
#include "common/units.h"
#include "sim/crfs_sim.h"
#include "sim/experiment.h"
#include "sim/pvfs2_sim.h"
#include "sim/throttled_sim.h"

namespace crfs::sim {
namespace {

TEST(Pvfs2Sim, StripesAcrossAllServers) {
  Calibration cal;
  Simulation sim;
  Pvfs2Sim pvfs(sim, cal, 1, 1, 7);
  sim.spawn([](Simulation&, Pvfs2Sim& b) -> Task {
    co_await b.write_call(0, 1, 0, 4 * MiB, true);
    co_await b.close_file(0, 1, true);
  }(sim, pvfs));
  sim.run();
  std::uint64_t total = 0;
  for (unsigned s = 0; s < cal.pvfs_servers; ++s) {
    EXPECT_GT(pvfs.server_rpcs(s), 0u) << "server " << s;
    total += pvfs.server_bytes(s);
  }
  EXPECT_EQ(total, 4 * MiB);
}

TEST(Pvfs2Sim, NoClientCacheMakesSmallWritesLatencyBound) {
  Calibration cal;
  auto run_ops = [&](std::uint64_t op_size) {
    Simulation sim;
    Pvfs2Sim pvfs(sim, cal, 1, 1, 7);
    sim.spawn([](Simulation&, Pvfs2Sim& b, std::uint64_t op) -> Task {
      for (std::uint64_t off = 0; off < 8 * MiB; off += op) {
        co_await b.write_call(0, 1, off, op, false);
      }
      co_await b.close_file(0, 1, false);
    }(sim, pvfs, op_size));
    return sim.run();
  };
  const double small = run_ops(8 * KiB);
  const double large = run_ops(1 * MiB);
  // Same bytes; ~128x the RPC count must cost far more than 2x the time.
  EXPECT_GT(small, 3.0 * large);
}

TEST(Pvfs2Sim, CrfsBeatsNativeOnFullExperiment) {
  const auto cell = run_cell(mpi::Stack::kMvapich2, mpi::LuClass::kC, BackendKind::kPvfs2);
  EXPECT_GT(cell.speedup(), 2.0)
      << "without a client cache, aggregation should be maximally effective";
}

TEST(Pvfs2Sim, ExperimentDeterministic) {
  ExperimentConfig cfg;
  cfg.backend = BackendKind::kPvfs2;
  cfg.lu_class = mpi::LuClass::kB;
  const auto a = run_experiment(cfg);
  const auto b = run_experiment(cfg);
  EXPECT_DOUBLE_EQ(a.mean_rank_seconds, b.mean_rank_seconds);
}

// ---- inter-node coordination extension ---------------------------------

TEST(InternodeCoordination, ReducesNativeCommitStorm) {
  ExperimentConfig cfg;
  cfg.backend = BackendKind::kNfs;
  cfg.lu_class = mpi::LuClass::kB;
  cfg.mode = FsMode::kNative;

  const double uncoordinated = run_experiment(cfg).mean_rank_seconds;
  cfg.cal.nfs_coordinated_flushers = 4;
  const double coordinated = run_experiment(cfg).mean_rank_seconds;
  EXPECT_LT(coordinated, uncoordinated * 0.85)
      << "admission control must reduce the commit-storm penalty";
}

TEST(InternodeCoordination, FullSerializationMaximizesServerSequentiality) {
  ExperimentConfig cfg;
  cfg.backend = BackendKind::kNfs;
  cfg.lu_class = mpi::LuClass::kB;
  cfg.mode = FsMode::kNative;

  cfg.cal.nfs_coordinated_flushers = 16;
  const auto some = run_experiment(cfg);
  cfg.cal.nfs_coordinated_flushers = 1;
  const auto serial = run_experiment(cfg);
  // One flusher at a time: the server disk sees per-file sequential
  // streams, so its sequential fraction must rise substantially.
  EXPECT_GT(serial.disk_summary.sequential_fraction,
            some.disk_summary.sequential_fraction + 0.2);
}

TEST(InternodeCoordination, ComposesWithCrfs) {
  ExperimentConfig cfg;
  cfg.backend = BackendKind::kNfs;
  cfg.lu_class = mpi::LuClass::kB;
  cfg.mode = FsMode::kCrfs;
  const double plain = run_experiment(cfg).mean_rank_seconds;
  cfg.cal.nfs_coordinated_flushers = 8;
  const double combined = run_experiment(cfg).mean_rank_seconds;
  EXPECT_LT(combined, plain * 1.02) << "coordination must not hurt CRFS";
}

}  // namespace
}  // namespace crfs::sim

namespace crfs::blcr {
namespace {

// Corruption sweep: flipping a byte ANYWHERE in a checkpoint image must
// make the restart reader fail (headers, payloads, trailer alike).
class CorruptionSweep : public ::testing::TestWithParam<double> {};

TEST_P(CorruptionSweep, FlipAtRelativeOffsetDetected) {
  const auto img = ProcessImage::synthesize(3, 1 * MiB, 77);
  std::vector<std::byte> bytes;
  FnSink sink([&](std::span<const std::byte> data) -> Status {
    bytes.insert(bytes.end(), data.begin(), data.end());
    return {};
  });
  ASSERT_TRUE(CheckpointWriter::write_image(img, sink).ok());

  const auto pos = static_cast<std::size_t>(GetParam() * static_cast<double>(bytes.size() - 1));
  bytes[pos] ^= std::byte{0x40};

  std::size_t cursor = 0;
  FnSource source([&](std::span<std::byte> out) -> Result<std::size_t> {
    const std::size_t n = std::min(out.size(), bytes.size() - cursor);
    std::memcpy(out.data(), bytes.data() + cursor, n);
    cursor += n;
    return n;
  });
  auto restored = RestartReader::read_image(source);
  EXPECT_FALSE(restored.ok()) << "flip at " << pos << " of " << bytes.size()
                              << " went undetected";
}

INSTANTIATE_TEST_SUITE_P(Offsets, CorruptionSweep,
                         ::testing::Values(0.0, 0.0001, 0.001, 0.01, 0.1, 0.25, 0.5,
                                           0.75, 0.9, 0.99, 0.999, 1.0));

}  // namespace
}  // namespace crfs::blcr

// ---- restart-scan (read-path) mirror ------------------------------------

namespace crfs::sim {
namespace {

struct RestoreRun {
  double t_final = 0.0;
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  std::uint64_t issued = 0;
  std::uint64_t hits = 0;
  std::uint64_t wasted = 0;
  std::uint64_t sync_preads = 0;
  std::uint64_t backend_reads = 0;
  std::string metrics_json;
};

// Checkpoint `file_bytes`, close, then restore it with a sequential
// chunk-sized scan — the virtual-time twin of blcr::RestartReader over a
// CRFS mount.
RestoreRun run_restore(bool readahead, unsigned window, std::uint64_t file_bytes) {
  Simulation sim;
  Calibration cal;
  ThrottledBackendSim backend(
      sim, ThrottledBackendSim::Options{.bw = 64.0 * MiB, .alpha = 0.0,
                                        .per_call = 300e-6});
  crfs::Config cfg;
  cfg.chunk_size = 1 * MiB;
  cfg.pool_size = 16 * MiB;
  cfg.readahead = readahead;
  cfg.readahead_window = window;
  CrfsSimNode node(sim, cal, backend, 0, cfg, crfs::FuseOptions{}, 1);
  node.start();
  sim.spawn([](Simulation&, CrfsSimNode& n, std::uint64_t bytes) -> Task {
    co_await n.app_write(1, bytes);
    co_await n.close_file(1);
    for (std::uint64_t off = 0; off < bytes; off += 1 * MiB) {
      co_await n.app_read(1, off, 1 * MiB);
    }
    co_await n.close_file(1);
  }(sim, node, file_bytes));

  RestoreRun out;
  out.t_final = sim.run();
  auto& m = node.metrics();
  out.ops = m.counter("crfs.read.ops").value();
  out.bytes = m.counter("crfs.read.bytes").value();
  out.issued = m.counter("crfs.read.prefetch_issued").value();
  out.hits = m.counter("crfs.read.prefetch_hits").value();
  out.wasted = m.counter("crfs.read.prefetch_wasted").value();
  out.sync_preads = m.counter("crfs.read.sync_preads").value();
  out.backend_reads = backend.read_calls();
  out.metrics_json = m.snapshot().to_json();
  return out;
}

TEST(SimReadMirror, SequentialScanPrefetchesWithoutDoubleFetching) {
  const RestoreRun r = run_restore(/*readahead=*/true, /*window=*/4, 32 * MiB);
  EXPECT_EQ(r.ops, 32u);
  EXPECT_EQ(r.bytes, 32 * MiB);
  EXPECT_GT(r.issued, 0u);
  EXPECT_GT(r.hits, 0u);
  // Every byte leaves the backend exactly once: no wasted prefetch on a
  // straight scan, and issued + sync tails account for all 32 chunks.
  EXPECT_EQ(r.wasted, 0u);
  EXPECT_EQ(r.backend_reads, 32u);
  EXPECT_EQ(r.issued + r.sync_preads, 32u);
}

TEST(SimReadMirror, ReadaheadOffFallsBackToBlockingReads) {
  const RestoreRun r = run_restore(/*readahead=*/false, /*window=*/4, 32 * MiB);
  EXPECT_EQ(r.issued, 0u);
  EXPECT_EQ(r.hits, 0u);
  EXPECT_EQ(r.sync_preads, 32u);
  EXPECT_EQ(r.backend_reads, 32u);
}

TEST(SimReadMirror, ReadaheadOverlapsTheRestoreScan) {
  // Linear backend (alpha=0): total backend busy time is identical either
  // way, so any virtual-time win is pure overlap of prefetch with the
  // FUSE/copy-out side of the scan — the effect bench_restore measures.
  const RestoreRun on = run_restore(true, 4, 32 * MiB);
  const RestoreRun off = run_restore(false, 4, 32 * MiB);
  EXPECT_LT(on.t_final, off.t_final);
}

TEST(SimReadMirror, ReplaysAreByteIdentical) {
  const RestoreRun a = run_restore(true, 4, 32 * MiB);
  const RestoreRun b = run_restore(true, 4, 32 * MiB);
  EXPECT_DOUBLE_EQ(a.t_final, b.t_final);
  // Full registry snapshot — counters AND virtual-ns histograms — must
  // replay byte-for-byte, like the write-side epoch/slow mirrors.
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

TEST(SimReadMirror, SeekEvictsTheWindowAndKnobsRetuneMidScan) {
  Simulation sim;
  Calibration cal;
  ThrottledBackendSim backend(sim, ThrottledBackendSim::Options{});
  crfs::Config cfg;
  cfg.chunk_size = 1 * MiB;
  cfg.pool_size = 16 * MiB;
  CrfsSimNode node(sim, cal, backend, 0, cfg, crfs::FuseOptions{}, 1);
  node.start();
  sim.spawn([](Simulation&, CrfsSimNode& n) -> Task {
    co_await n.app_write(1, 16 * MiB);
    co_await n.close_file(1);
    // Arm the prefetcher, then seek back to the start mid-window.
    for (std::uint64_t off = 0; off < 4 * MiB; off += 1 * MiB) {
      co_await n.app_read(1, off, 1 * MiB);
    }
    co_await n.app_read(1, 0, 1 * MiB);
    // Shed the window to 1 and switch prefetch off, like the controller's
    // shed_readahead rule; the scan must keep completing.
    (void)n.knob_plane().tune("readahead_window", 1.0);
    (void)n.knob_plane().tune("readahead", 0.0);
    for (std::uint64_t off = 1 * MiB; off < 8 * MiB; off += 1 * MiB) {
      co_await n.app_read(1, off, 1 * MiB);
    }
    co_await n.close_file(1);
  }(sim, node));
  sim.run();
  auto& m = node.metrics();
  EXPECT_GT(m.counter("crfs.read.prefetch_wasted").value(), 0u);
  EXPECT_EQ(m.counter("crfs.read.ops").value(), 12u);
  EXPECT_EQ(m.counter("crfs.read.bytes").value(), 12 * MiB);
}

}  // namespace
}  // namespace crfs::sim
