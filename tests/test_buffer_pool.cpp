// Unit tests for Chunk and BufferPool: pool carving, blocking acquire
// backpressure, shutdown semantics, and chunk append mechanics.
#include <gtest/gtest.h>

#include <thread>

#include "common/units.h"
#include "crfs/buffer_pool.h"

namespace crfs {
namespace {

TEST(Chunk, AppendTracksFillAndOffset) {
  Chunk c(1024);
  c.reset(5000);
  EXPECT_EQ(c.capacity(), 1024u);
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.file_offset(), 5000u);
  EXPECT_EQ(c.append_point(), 5000u);

  std::vector<std::byte> data(100, std::byte{0x42});
  EXPECT_EQ(c.append(data), 100u);
  EXPECT_EQ(c.fill(), 100u);
  EXPECT_EQ(c.append_point(), 5100u);
  EXPECT_EQ(c.remaining(), 924u);
  EXPECT_FALSE(c.full());
}

TEST(Chunk, AppendConsumesOnlyWhatFits) {
  Chunk c(64);
  c.reset(0);
  std::vector<std::byte> data(100, std::byte{1});
  EXPECT_EQ(c.append(data), 64u);
  EXPECT_TRUE(c.full());
  EXPECT_EQ(c.append(data), 0u);
}

TEST(Chunk, PayloadReflectsWrittenBytes) {
  Chunk c(128);
  c.reset(0);
  const std::string msg = "payload bytes";
  c.append({reinterpret_cast<const std::byte*>(msg.data()), msg.size()});
  auto p = c.payload();
  ASSERT_EQ(p.size(), msg.size());
  EXPECT_EQ(std::memcmp(p.data(), msg.data(), msg.size()), 0);
}

TEST(Chunk, ResetClearsFill) {
  Chunk c(64);
  c.reset(0);
  std::vector<std::byte> data(10);
  c.append(data);
  c.reset(999);
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.file_offset(), 999u);
}

TEST(BufferPool, CarvesPoolIntoChunks) {
  BufferPool pool(16 * MiB, 4 * MiB);
  EXPECT_EQ(pool.total_chunks(), 4u);
  EXPECT_EQ(pool.free_chunks(), 4u);
  EXPECT_EQ(pool.chunk_size(), 4 * MiB);
}

TEST(BufferPool, AtLeastOneChunkEvenWhenPoolTooSmall) {
  BufferPool pool(1024, 4096);
  EXPECT_EQ(pool.total_chunks(), 1u);
}

TEST(BufferPool, AcquireReleaseCycle) {
  BufferPool pool(8192, 4096);
  auto a = pool.try_acquire(0);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(pool.free_chunks(), 1u);
  auto b = pool.try_acquire(4096);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool.free_chunks(), 0u);
  EXPECT_EQ(pool.try_acquire(0), nullptr);
  pool.release(std::move(a));
  EXPECT_EQ(pool.free_chunks(), 1u);
  auto c = pool.try_acquire(123);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->file_offset(), 123u);
  pool.release(std::move(b));
  pool.release(std::move(c));
}

TEST(BufferPool, AcquireBlocksUntilRelease) {
  BufferPool pool(4096, 4096);  // exactly one chunk
  auto held = pool.try_acquire(0);
  ASSERT_NE(held, nullptr);

  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    auto c = pool.acquire_for(0, std::chrono::seconds(10));
    acquired.store(c != nullptr);
    pool.release(std::move(c));
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  EXPECT_GE(pool.contention_count(), 1u);

  pool.release(std::move(held));
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(BufferPool, ShutdownUnblocksWaiters) {
  BufferPool pool(4096, 4096);
  auto held = pool.try_acquire(0);
  ASSERT_NE(held, nullptr);

  std::atomic<bool> got_null{false};
  std::thread waiter([&] {
    got_null.store(pool.acquire_for(0, std::chrono::seconds(10)) == nullptr);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pool.shutdown();
  waiter.join();
  EXPECT_TRUE(got_null.load());
  pool.release(std::move(held));  // safe no-op after shutdown
}

TEST(BufferPool, ManyThreadsChurnWithoutLoss) {
  BufferPool pool(16 * 4096, 4096);
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        auto c = pool.acquire_for(static_cast<std::uint64_t>(i), std::chrono::seconds(10));
        ASSERT_NE(c, nullptr);
        std::vector<std::byte> junk(64);
        c->append(junk);
        pool.release(std::move(c));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(pool.free_chunks(), 16u);  // nothing leaked
}

// ------------------------------------------------------------- sharding

TEST(BufferPool, ShardCountClampedToChunkCount) {
  BufferPool pool(4 * 4096, 4096, /*shards=*/64);
  EXPECT_EQ(pool.total_chunks(), 4u);
  EXPECT_LE(pool.shard_count(), 4u);
  EXPECT_GE(pool.shard_count(), 1u);
}

TEST(BufferPool, AutoShardingPicksAtLeastOneShard) {
  BufferPool pool(16 * MiB, 4 * MiB);  // shards = 0 -> auto
  EXPECT_GE(pool.shard_count(), 1u);
  EXPECT_LE(pool.shard_count(), pool.total_chunks());
}

TEST(BufferPool, OneThreadCanDrainEveryShard) {
  // Work stealing: a single thread's home shard holds only a fraction of
  // the chunks, but try_acquire must find the rest in the other shards.
  BufferPool pool(8 * 4096, 4096, /*shards=*/8);
  std::vector<std::unique_ptr<Chunk>> held;
  for (int i = 0; i < 8; ++i) {
    auto c = pool.try_acquire(static_cast<std::uint64_t>(i));
    ASSERT_NE(c, nullptr) << "chunk " << i << " not found via shard scan";
    held.push_back(std::move(c));
  }
  EXPECT_EQ(pool.free_chunks(), 0u);
  EXPECT_EQ(pool.try_acquire(0), nullptr);
  for (auto& c : held) pool.release(std::move(c));
  EXPECT_EQ(pool.free_chunks(), 8u);
}

TEST(BufferPool, ShardedChurnKeepsCountsConsistent) {
  BufferPool pool(8 * 4096, 4096, /*shards=*/4);
  constexpr int kThreads = 8;
  constexpr int kIters = 300;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        auto c = pool.acquire_for(static_cast<std::uint64_t>(i), std::chrono::seconds(10));
        ASSERT_NE(c, nullptr);
        pool.release(std::move(c));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(pool.free_chunks(), 8u);
  EXPECT_EQ(pool.in_use_chunks(), 0u);
}

}  // namespace
}  // namespace crfs
