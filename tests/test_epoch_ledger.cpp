// Checkpoint-epoch attribution, chunk-lifecycle ledger, and flight
// recorder (obs/epoch.h, obs/flight_recorder.h, docs/OBSERVABILITY.md):
//   * two interleaved multi-file checkpoint epochs account every byte
//     exactly, with sane durability-lag derivations, and the crfs.epoch.*
//     registry metrics agree with the ledger;
//   * the EpochTracker's rotation heuristics (ckpt generation key, quiet
//     gap, explicit markers) behave as documented;
//   * the epoch control file drives begin/end through the write API;
//   * a SIGABRT mid-checkpoint leaves a parseable postmortem document
//     showing the open epoch and the last pipeline events;
//   * CrfsSimNode emits byte-identical epoch records across two runs.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "backend/mem_backend.h"
#include "common/units.h"
#include "crfs/crfs.h"
#include "obs/epoch.h"
#include "obs/json_lite.h"
#include "sim/crfs_sim.h"

namespace crfs {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

// ------------------------------------------------------------- e2e ledger

class EpochLedger : public ::testing::Test {
 protected:
  void remount(Config cfg) {
    fs_.reset();
    mem_ = std::make_shared<MemBackend>();
    auto fs = Crfs::mount(mem_, cfg);
    ASSERT_TRUE(fs.ok()) << fs.error().to_string();
    fs_ = std::move(fs.value());
  }

  // One multi-file checkpoint "epoch": `files` ranks, `per_file` bytes
  // each, written by concurrent threads in `record`-sized pieces so the
  // two files' chunks interleave through the pipeline.
  void run_checkpoint(const std::string& label, unsigned files,
                      std::size_t per_file, std::size_t record) {
    ASSERT_TRUE(fs_->epoch_begin(label).ok());
    std::vector<std::thread> ranks;
    for (unsigned r = 0; r < files; ++r) {
      ranks.emplace_back([&, r] {
        const std::string path = label + ".rank" + std::to_string(r);
        std::vector<std::byte> buf(record, static_cast<std::byte>(r));
        auto h = fs_->open(path, {.create = true, .truncate = true, .write = true});
        ASSERT_TRUE(h.ok());
        for (std::size_t off = 0; off < per_file; off += record) {
          ASSERT_TRUE(fs_->write(h.value(), buf, off).ok());
        }
        ASSERT_TRUE(fs_->close(h.value()).ok());
      });
    }
    for (auto& t : ranks) t.join();
    ASSERT_TRUE(fs_->epoch_end().ok());
  }

  std::shared_ptr<MemBackend> mem_;
  std::unique_ptr<Crfs> fs_;
};

TEST_F(EpochLedger, TwoInterleavedEpochsAccountEveryByte) {
  constexpr std::size_t kChunk = 64 * KiB;
  constexpr unsigned kFiles = 2;
  constexpr std::size_t kPerFile = 512 * KiB;  // 8 chunks per file
  constexpr std::size_t kRecord = 16 * KiB;
  remount(Config{.chunk_size = kChunk, .pool_size = 8 * kChunk});

  run_checkpoint("ea", kFiles, kPerFile, kRecord);
  run_checkpoint("eb", kFiles, kPerFile, kRecord);

  const auto records = fs_->epochs();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_FALSE(fs_->open_epoch().has_value());

  for (const auto& rec : records) {
    // Exact byte/chunk/file accounting: close() drains, so by epoch_end
    // every byte the app acknowledged is durable on the backend.
    EXPECT_EQ(rec.bytes, kFiles * kPerFile);
    EXPECT_EQ(rec.durable_bytes, kFiles * kPerFile);
    EXPECT_EQ(rec.files, kFiles);
    EXPECT_EQ(rec.chunks, kFiles * kPerFile / kChunk);
    EXPECT_EQ(rec.app_writes, kFiles * kPerFile / kRecord);
    EXPECT_GE(rec.backend_writes, 1u);
    EXPECT_LE(rec.backend_writes, rec.chunks);
    EXPECT_EQ(rec.io_errors, 0u);
    EXPECT_TRUE(rec.explicit_marker);
    EXPECT_FALSE(rec.open);

    // Monotone-sane lag derivations: every durable chunk contributed one
    // lag sample; the max bounds the mean; all inside the epoch's wall.
    EXPECT_GE(rec.end_ns, rec.start_ns);
    EXPECT_GT(rec.durability_lag_max_ns, 0u);
    EXPECT_GE(rec.durability_lag_sum_ns, rec.durability_lag_max_ns);
    EXPECT_GE(static_cast<double>(rec.durability_lag_max_ns),
              rec.mean_durability_lag_ns());
    EXPECT_LE(rec.durability_lag_max_ns, rec.end_ns - rec.start_ns);
    EXPECT_GT(rec.aggregation_ratio(), 1.0);  // 16K writes into 64K chunks
    EXPECT_GT(rec.effective_bw(), 0.0);
  }
  EXPECT_EQ(records[0].label, "ea");
  EXPECT_EQ(records[1].label, "eb");
  EXPECT_GE(records[1].start_ns, records[0].end_ns);

  // The crfs.epoch.* registry metrics are exactly the ledger's sums.
  auto& m = fs_->metrics();
  EXPECT_EQ(m.counter("crfs.epoch.completed").value(), 2u);
  EXPECT_EQ(m.counter("crfs.epoch.bytes").value(), records[0].bytes + records[1].bytes);
  EXPECT_EQ(m.counter("crfs.epoch.files").value(), records[0].files + records[1].files);
  EXPECT_EQ(m.counter("crfs.epoch.chunks").value(),
            records[0].chunks + records[1].chunks);
  // Durability-lag histogram saw one sample per chunk, mount-wide.
  const auto snap = m.snapshot();
  bool found = false;
  for (const auto& h : snap.histograms) {
    if (h.first == "crfs.chunk.durability_lag_ns") {
      found = true;
      EXPECT_EQ(h.second.count, records[0].chunks + records[1].chunks);
    }
  }
  EXPECT_TRUE(found);

  // Ledger keys are in stats_json.
  const std::string json = fs_->stats_json();
  auto parsed = obs::json::parse(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  ASSERT_NE(parsed->get("epochs"), nullptr);
  ASSERT_TRUE(parsed->get("epochs")->is_array());
  EXPECT_EQ(parsed->get("epochs")->array->size(), 2u);
  ASSERT_NE(parsed->get("epochs_completed"), nullptr);
  EXPECT_EQ(parsed->get("epochs_completed")->number, 2.0);
}

TEST_F(EpochLedger, OpenEpochSnapshotTracksLiveCounters) {
  remount(Config{.chunk_size = 4096, .pool_size = 4 * 4096});
  ASSERT_TRUE(fs_->epoch_begin("live").ok());
  auto h = fs_->open("live.img", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_->write(h.value(), as_bytes("0123456789abcdef"), 0).ok());

  auto open = fs_->open_epoch();
  ASSERT_TRUE(open.has_value());
  EXPECT_TRUE(open->open);
  EXPECT_EQ(open->label, "live");
  EXPECT_EQ(open->bytes, 16u);
  EXPECT_EQ(open->files, 1u);
  EXPECT_EQ(fs_->metrics().gauge("crfs.epoch.open").value(),
            static_cast<std::int64_t>(open->id));

  ASSERT_TRUE(fs_->close(h.value()).ok());
  ASSERT_TRUE(fs_->epoch_end().ok());
  EXPECT_EQ(fs_->metrics().gauge("crfs.epoch.open").value(), 0);
}

TEST_F(EpochLedger, EpochApiErrorsWhenTrackingDisabled) {
  remount(Config{.chunk_size = 4096, .pool_size = 4 * 4096, .epoch_tracking = false});
  EXPECT_FALSE(fs_->epoch_begin("x").ok());
  EXPECT_FALSE(fs_->epoch_end().ok());
  EXPECT_TRUE(fs_->epochs().empty());
  EXPECT_FALSE(fs_->open_epoch().has_value());

  // The pipeline still works with attribution off.
  auto h = fs_->open("plain", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_->write(h.value(), as_bytes("data"), 0).ok());
  ASSERT_TRUE(fs_->close(h.value()).ok());
}

// ------------------------------------------------- rotation heuristics

TEST(EpochTrackerRules, CkptGenerationKeyExtraction) {
  using obs::EpochTracker;
  EXPECT_EQ(EpochTracker::ckpt_key("rank0.ckpt.12"), "ckpt:12");
  EXPECT_EQ(EpochTracker::ckpt_key("img_ckpt-7"), "ckpt:7");
  EXPECT_EQ(EpochTracker::ckpt_key("a/b/context.123.ckpt"), "");
  EXPECT_EQ(EpochTracker::ckpt_key("checkpoint"), "");
  EXPECT_EQ(EpochTracker::ckpt_key("plain.img"), "");
}

TEST(EpochTrackerRules, GenerationChangeRotatesAutomaticEpoch) {
  obs::EpochTracker tracker({.gap_ns = 1'000'000'000, .ledger_capacity = 8}, nullptr);
  auto e1 = tracker.on_open("rank0.ckpt.1", 100);
  auto e1b = tracker.on_open("rank1.ckpt.1", 200);
  EXPECT_EQ(e1.get(), e1b.get());  // same generation -> same epoch
  tracker.on_close("rank0.ckpt.1", 300);
  tracker.on_close("rank1.ckpt.1", 400);

  auto e2 = tracker.on_open("rank0.ckpt.2", 500);  // inside the quiet gap
  EXPECT_NE(e1.get(), e2.get());                   // generation change rotates anyway
  ASSERT_EQ(tracker.records().size(), 1u);
  EXPECT_EQ(tracker.records()[0].label, "ckpt:1");
  EXPECT_EQ(tracker.records()[0].files, 2u);
  EXPECT_EQ(tracker.records()[0].end_ns, 500u);
}

TEST(EpochTrackerRules, QuietGapRotatesAndReopenDedupesFiles) {
  obs::EpochTracker tracker({.gap_ns = 1'000, .ledger_capacity = 8}, nullptr);
  auto e1 = tracker.on_open("a.img", 0);
  auto e1b = tracker.on_open("a.img", 10);  // reopen: same epoch, one file
  EXPECT_EQ(e1.get(), e1b.get());
  tracker.on_close("a.img", 20);
  tracker.on_close("a.img", 30);

  // Within the gap: still the same epoch.
  auto e1c = tracker.on_open("b.img", 500);
  EXPECT_EQ(e1.get(), e1c.get());
  tracker.on_close("b.img", 600);

  // Past the gap with nothing open: next open starts a fresh epoch.
  auto e2 = tracker.on_open("c.img", 5'000);
  EXPECT_NE(e1.get(), e2.get());
  ASSERT_EQ(tracker.records().size(), 1u);
  EXPECT_EQ(tracker.records()[0].files, 2u);  // a.img counted once

  // A still-open handle blocks gap rotation no matter how long the quiet.
  auto e2b = tracker.on_open("d.img", 50'000);
  EXPECT_EQ(e2.get(), e2b.get());
}

TEST(EpochTrackerRules, ExplicitEpochNeverAutoRotates) {
  obs::EpochTracker tracker({.gap_ns = 10, .ledger_capacity = 8}, nullptr);
  tracker.begin("manual", 0);
  auto e1 = tracker.on_open("rank.ckpt.1", 100);
  tracker.on_close("rank.ckpt.1", 110);
  // Generation change AND quiet gap both elapsed: explicit epoch holds.
  auto e2 = tracker.on_open("rank.ckpt.2", 10'000);
  EXPECT_EQ(e1.get(), e2.get());
  EXPECT_TRUE(tracker.records().empty());

  tracker.end(20'000);
  ASSERT_EQ(tracker.records().size(), 1u);
  EXPECT_EQ(tracker.records()[0].label, "manual");
  EXPECT_TRUE(tracker.records()[0].explicit_marker);
  EXPECT_EQ(tracker.records()[0].files, 2u);
}

TEST(EpochTrackerRules, LedgerIsBoundedButTotalKeepsCounting) {
  obs::EpochTracker tracker({.gap_ns = 1, .ledger_capacity = 2}, nullptr);
  for (int i = 0; i < 5; ++i) {
    std::string label = "e";
    label += std::to_string(i);
    tracker.begin(label, i * 100);
    tracker.end(i * 100 + 50);
  }
  EXPECT_EQ(tracker.records().size(), 2u);
  EXPECT_EQ(tracker.total_finalized(), 5u);
  EXPECT_EQ(tracker.records()[0].label, "e3");
  EXPECT_EQ(tracker.records()[1].label, "e4");
}

// ------------------------------------------------------ marker control file

TEST_F(EpochLedger, MarkerFileDrivesExplicitEpochs) {
  remount(Config{.chunk_size = 4096, .pool_size = 4 * 4096});
  auto ctl = fs_->open(".crfs_epoch", {.create = true, .write = true});
  ASSERT_TRUE(ctl.ok());
  ASSERT_TRUE(fs_->write(ctl.value(), as_bytes("begin ckpt-A\n"), 0).ok());

  auto h = fs_->open("a.img", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs_->write(h.value(), as_bytes("payload"), 0).ok());
  ASSERT_TRUE(fs_->close(h.value()).ok());

  ASSERT_TRUE(fs_->write(ctl.value(), as_bytes("end"), 0).ok());
  // Bad commands error; the control file accepts nothing else.
  EXPECT_FALSE(fs_->write(ctl.value(), as_bytes("bogus"), 0).ok());
  ASSERT_TRUE(fs_->close(ctl.value()).ok());

  const auto records = fs_->epochs();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].label, "ckpt-A");
  EXPECT_TRUE(records[0].explicit_marker);
  EXPECT_EQ(records[0].bytes, 7u);
  // The control file never reached the backend.
  EXPECT_FALSE(mem_->contents(".crfs_epoch").ok());
}

// --------------------------------------------------------- concurrency

// Stress variant (TSan-checked under CRFS_SANITIZE, scripts/check_tsan.sh):
// concurrent writers against epoch begin/end churn exercises the
// EpochState handoff through WriteJobs across rotations.
TEST(EpochLedgerStress, RotationUnderConcurrentWriters) {
  auto mem = std::make_shared<MemBackend>();
  auto fs = Crfs::mount(mem, Config{.chunk_size = 16 * KiB, .pool_size = 8 * 16 * KiB});
  ASSERT_TRUE(fs.ok());

  constexpr unsigned kWriters = 4;
  constexpr int kRounds = 8;
  std::vector<std::thread> writers;
  for (unsigned w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      std::vector<std::byte> buf(8 * KiB, static_cast<std::byte>(w));
      for (int round = 0; round < kRounds; ++round) {
        std::string path = "s";
        path += std::to_string(w);
        path += "_";
        path += std::to_string(round);
        auto h = fs.value()->open(path, {.create = true, .truncate = true, .write = true});
        if (!h.ok()) continue;
        for (std::size_t off = 0; off < 64 * KiB; off += buf.size()) {
          (void)fs.value()->write(h.value(), buf, off);
        }
        (void)fs.value()->close(h.value());
      }
    });
  }
  // Epoch churn from the control thread while writers run.
  for (int i = 0; i < 16; ++i) {
    (void)fs.value()->epoch_begin("churn" + std::to_string(i));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    (void)fs.value()->epoch_end();
  }
  for (auto& t : writers) t.join();
  (void)fs.value()->epoch_end();

  // Each byte is attributed to exactly one EpochState; a rotation that
  // strikes while a file is mid-stream snapshots the record before the
  // file's remaining bytes land, so the ledger sum is bounded by (and
  // under no churn equals) the mount total — never above it, never zero.
  std::uint64_t ledger_bytes = 0;
  for (const auto& rec : fs.value()->epochs()) ledger_bytes += rec.bytes;
  if (auto open = fs.value()->open_epoch()) ledger_bytes += open->bytes;
  EXPECT_LE(ledger_bytes, static_cast<std::uint64_t>(kWriters) * kRounds * 64 * KiB);
  EXPECT_GT(ledger_bytes, 0u);
  EXPECT_GE(fs.value()->epochs().size(), 16u);  // the explicit churn epochs
}

// ------------------------------------------------------------ postmortem

using PostmortemDeathTest = ::testing::Test;

TEST(PostmortemDeathTest, AbortMidCheckpointLeavesParseableDump) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string dump = ::testing::TempDir() + "crfs_epoch_postmortem.json";
  std::filesystem::remove(dump);

  EXPECT_EXIT(
      {
        auto fs = Crfs::mount(
            std::make_shared<MemBackend>(),
            Config{.chunk_size = 4096,
                   .pool_size = 4 * 4096,
                   .enable_tracing = true,
                   .postmortem_path = dump,
                   .postmortem_refresh_ms = 0});  // re-render every IO run
        if (!fs.ok()) std::exit(3);
        (void)fs.value()->epoch_begin("doomed");
        auto h = fs.value()->open("mid.ckpt",
                                  {.create = true, .truncate = true, .write = true});
        if (!h.ok()) std::exit(3);
        std::vector<std::byte> buf(4096, std::byte{0x5A});
        for (std::size_t off = 0; off < 8 * 4096; off += 4096) {
          (void)fs.value()->write(h.value(), buf, off);
        }
        (void)fs.value()->fsync(h.value());      // pipeline drained
        (void)fs.value()->dump_postmortem();     // deterministic final refresh
        std::filesystem::remove(dump);           // only the handler can recreate it
        std::abort();                            // die mid-epoch, file still open
      },
      ::testing::KilledBySignal(SIGABRT), "");

  // The fatal-signal handler wrote the last published document.
  std::string text;
  {
    std::FILE* f = std::fopen(dump.c_str(), "r");
    ASSERT_NE(f, nullptr) << "no postmortem dump at " << dump;
    char buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  auto doc = obs::json::parse(text);
  ASSERT_TRUE(doc.has_value()) << "unparseable dump: " << text.substr(0, 400);
  ASSERT_NE(doc->get("crfs_postmortem"), nullptr);

  const auto* open = doc->get("epoch_open");
  ASSERT_NE(open, nullptr);
  ASSERT_TRUE(open->is_object()) << "no epoch open at dump time";
  EXPECT_EQ(open->get("label")->string, "doomed");
  EXPECT_EQ(open->get("bytes")->number, 8.0 * 4096);
  EXPECT_EQ(open->get("durable_bytes")->number, 8.0 * 4096);  // fsync drained

  // The last pipeline spans made it into the trace tail.
  const auto* tail = doc->get("trace_tail");
  ASSERT_NE(tail, nullptr);
  ASSERT_TRUE(tail->is_array());
  EXPECT_GT(tail->array->size(), 0u);
  ASSERT_NE(doc->get("pipeline"), nullptr);
  ASSERT_NE(doc->get("events"), nullptr);
  std::filesystem::remove(dump);
}

TEST(Postmortem, DumpOnDemandWithoutSignal) {
  const std::string dump = ::testing::TempDir() + "crfs_epoch_dump_now.json";
  std::filesystem::remove(dump);
  auto fs = Crfs::mount(std::make_shared<MemBackend>(),
                        Config{.chunk_size = 4096,
                               .pool_size = 4 * 4096,
                               .postmortem_path = dump});
  ASSERT_TRUE(fs.ok());
  auto h = fs.value()->open("f", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(fs.value()->write(h.value(), as_bytes("abc"), 0).ok());
  ASSERT_TRUE(fs.value()->close(h.value()).ok());
  ASSERT_TRUE(fs.value()->dump_postmortem().ok());

  std::string text;
  {
    std::FILE* f = std::fopen(dump.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  auto doc = obs::json::parse(text);
  ASSERT_TRUE(doc.has_value());
  EXPECT_NE(doc->get("crfs_postmortem"), nullptr);
  std::filesystem::remove(dump);

  // No recorder configured -> dump_postmortem errors instead of writing.
  auto plain = Crfs::mount(std::make_shared<MemBackend>(),
                           Config{.chunk_size = 4096, .pool_size = 4 * 4096});
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value()->flight_recorder(), nullptr);
  EXPECT_FALSE(plain.value()->dump_postmortem().ok());
}

// -------------------------------------------------------- sim determinism

// Fixed-bandwidth backend on the virtual clock (same shape as the
// SimHealth harness in test_obs.cpp).
class FixedRateBackend final : public sim::BackendSim {
 public:
  FixedRateBackend(sim::Simulation& sim, double bytes_per_sec)
      : sim_(sim), bw_(bytes_per_sec) {}
  sim::Task write_call(unsigned, sim::FileId, std::uint64_t, std::uint64_t len,
                       bool) override {
    co_await sim_.delay(static_cast<double>(len) / bw_);
  }
  sim::Task close_file(unsigned, sim::FileId, bool) override { co_return; }
  void stop() override {}

 private:
  sim::Simulation& sim_;
  double bw_;
};

sim::Task drive_two_epoch_checkpoint(sim::CrfsSimNode& node) {
  node.epoch_begin("sim-ckpt-0");
  co_await node.app_write(0, 4 * MiB);
  co_await node.app_write(1, 4 * MiB);
  co_await node.close_file(0);
  co_await node.close_file(1);
  node.epoch_end();
  node.epoch_begin("sim-ckpt-1");
  co_await node.app_write(2, 2 * MiB);
  co_await node.close_file(2);
  node.stop();  // finalizes the open epoch at the final virtual time
}

std::string run_sim_epochs() {
  sim::Simulation sim;
  sim::Calibration cal;
  FixedRateBackend backend(sim, 256.0 * MiB);
  Config cfg;
  cfg.chunk_size = 1 * MiB;
  cfg.pool_size = 4 * MiB;
  cfg.io_threads = 2;
  sim::CrfsSimNode node(sim, cal, backend, /*node=*/0, cfg, FuseOptions{}, /*ppn=*/1);
  node.start();
  sim.spawn(drive_two_epoch_checkpoint(node));
  sim.run();
  return obs::epochs_to_json(node.epochs());
}

TEST(SimEpochs, RecordsAreByteIdenticalAcrossRuns) {
  const std::string a = run_sim_epochs();
  const std::string b = run_sim_epochs();
  EXPECT_EQ(a, b);

  auto doc = obs::json::parse(a);
  ASSERT_TRUE(doc.has_value()) << a;
  ASSERT_TRUE(doc->is_array());
  ASSERT_EQ(doc->array->size(), 2u);
  const auto& e0 = (*doc->array)[0];
  EXPECT_EQ(e0.get("label")->string, "sim-ckpt-0");
  EXPECT_EQ(e0.get("bytes")->number, 8.0 * MiB);
  EXPECT_EQ(e0.get("durable_bytes")->number, 8.0 * MiB);
  EXPECT_EQ(e0.get("files")->number, 2.0);
  EXPECT_EQ(e0.get("chunks")->number, 8.0);
  const auto& e1 = (*doc->array)[1];
  EXPECT_EQ(e1.get("label")->string, "sim-ckpt-1");
  EXPECT_EQ(e1.get("bytes")->number, 2.0 * MiB);
  EXPECT_EQ(e1.get("durable_bytes")->number, 2.0 * MiB);
}

}  // namespace
}  // namespace crfs
