// Tests for the coroutine DES engine: virtual clock, task composition,
// FCFS resources, and events.
#include <gtest/gtest.h>

#include "sim/engine.h"

namespace crfs::sim {
namespace {

TEST(SimEngine, DelayAdvancesVirtualTime) {
  Simulation sim;
  std::vector<double> stamps;
  sim.spawn([](Simulation& s, std::vector<double>& out) -> Task {
    out.push_back(s.now());
    co_await s.delay(1.5);
    out.push_back(s.now());
    co_await s.delay(2.5);
    out.push_back(s.now());
  }(sim, stamps));
  const double end = sim.run();
  EXPECT_EQ(end, 4.0);
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_EQ(stamps[0], 0.0);
  EXPECT_EQ(stamps[1], 1.5);
  EXPECT_EQ(stamps[2], 4.0);
}

TEST(SimEngine, ZeroAndNegativeDelaysDoNotRewind) {
  Simulation sim;
  sim.spawn([](Simulation& s) -> Task {
    co_await s.delay(1.0);
    co_await s.delay(0.0);
    co_await s.delay(-5.0);  // clamped to 0
  }(sim));
  EXPECT_EQ(sim.run(), 1.0);
}

TEST(SimEngine, ConcurrentTasksInterleaveByTime) {
  Simulation sim;
  std::vector<int> order;
  auto proc = [](Simulation& s, std::vector<int>& out, int id, double dt) -> Task {
    co_await s.delay(dt);
    out.push_back(id);
  };
  sim.spawn(proc(sim, order, 1, 3.0));
  sim.spawn(proc(sim, order, 2, 1.0));
  sim.spawn(proc(sim, order, 3, 2.0));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(SimEngine, SimultaneousEventsRunInSpawnOrder) {
  Simulation sim;
  std::vector<int> order;
  auto proc = [](Simulation& s, std::vector<int>& out, int id) -> Task {
    co_await s.delay(1.0);
    out.push_back(id);
  };
  for (int i = 0; i < 5; ++i) sim.spawn(proc(sim, order, i));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimEngine, NestedTaskComposition) {
  Simulation sim;
  double inner_done = -1, outer_done = -1;
  auto inner = [](Simulation& s, double& t) -> Task {
    co_await s.delay(2.0);
    t = s.now();
  };
  sim.spawn([](Simulation& s, decltype(inner)& in, double& it, double& ot) -> Task {
    co_await s.delay(1.0);
    co_await in(s, it);  // sub-task runs to completion
    ot = s.now();
  }(sim, inner, inner_done, outer_done));
  sim.run();
  EXPECT_EQ(inner_done, 3.0);
  EXPECT_EQ(outer_done, 3.0);
}

TEST(SimResource, SerializesAtCapacityOne) {
  Simulation sim;
  Resource disk(sim, 1);
  std::vector<double> completions;
  auto proc = [](Simulation& s, Resource& r, std::vector<double>& out) -> Task {
    co_await r.use(2.0);
    out.push_back(s.now());
  };
  for (int i = 0; i < 3; ++i) sim.spawn(proc(sim, disk, completions));
  sim.run();
  EXPECT_EQ(completions, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(SimResource, ParallelismAtHigherCapacity) {
  Simulation sim;
  Resource cpu(sim, 2);
  std::vector<double> completions;
  auto proc = [](Simulation& s, Resource& r, std::vector<double>& out) -> Task {
    co_await r.use(2.0);
    out.push_back(s.now());
  };
  for (int i = 0; i < 4; ++i) sim.spawn(proc(sim, cpu, completions));
  sim.run();
  EXPECT_EQ(completions, (std::vector<double>{2.0, 2.0, 4.0, 4.0}));
}

TEST(SimResource, FifoGrantOrder) {
  Simulation sim;
  Resource r(sim, 1);
  std::vector<int> grants;
  auto proc = [](Simulation& s, Resource& res, std::vector<int>& out, int id,
                 double arrive) -> Task {
    co_await s.delay(arrive);
    co_await res.acquire();
    out.push_back(id);
    co_await s.delay(10.0);
    res.release();
  };
  sim.spawn(proc(sim, r, grants, 1, 0.0));
  sim.spawn(proc(sim, r, grants, 2, 1.0));
  sim.spawn(proc(sim, r, grants, 3, 2.0));
  sim.run();
  EXPECT_EQ(grants, (std::vector<int>{1, 2, 3}));
}

TEST(SimResource, AcquireImmediateWhenFree) {
  Simulation sim;
  Resource r(sim, 1);
  double acquired_at = -1;
  sim.spawn([](Simulation& s, Resource& res, double& t) -> Task {
    co_await s.delay(5.0);
    co_await res.acquire();  // free: no time passes
    t = s.now();
    res.release();
  }(sim, r, acquired_at));
  sim.run();
  EXPECT_EQ(acquired_at, 5.0);
}

TEST(SimEvent, WaitersReleasedOnSet) {
  Simulation sim;
  Event ev(sim);
  std::vector<double> woke;
  auto waiter = [](Simulation& s, Event& e, std::vector<double>& out) -> Task {
    co_await e.wait();
    out.push_back(s.now());
  };
  sim.spawn(waiter(sim, ev, woke));
  sim.spawn(waiter(sim, ev, woke));
  sim.spawn([](Simulation& s, Event& e) -> Task {
    co_await s.delay(7.0);
    e.set();
  }(sim, ev));
  sim.run();
  EXPECT_EQ(woke, (std::vector<double>{7.0, 7.0}));
}

TEST(SimEvent, SetIsLatched) {
  Simulation sim;
  Event ev(sim);
  double woke = -1;
  sim.spawn([](Simulation&, Event& e) -> Task {
    e.set();
    co_return;
  }(sim, ev));
  sim.spawn([](Simulation& s, Event& e, double& t) -> Task {
    co_await s.delay(3.0);
    co_await e.wait();  // already set: immediate
    t = s.now();
  }(sim, ev, woke));
  sim.run();
  EXPECT_EQ(woke, 3.0);
}

TEST(SimEvent, PulseWakesOnlyCurrentWaiters) {
  Simulation sim;
  Event ev(sim);
  int wakeups = 0;
  auto waiter = [](Simulation& s, Event& e, int& n, double arrive) -> Task {
    co_await s.delay(arrive);
    co_await e.wait();
    n += 1;
  };
  sim.spawn(waiter(sim, ev, wakeups, 0.0));   // waits before pulse
  sim.spawn(waiter(sim, ev, wakeups, 2.0));   // arrives after pulse: stays
  sim.spawn([](Simulation& s, Event& e) -> Task {
    co_await s.delay(1.0);
    e.pulse();
  }(sim, ev));
  sim.run();
  EXPECT_EQ(wakeups, 1);
  EXPECT_FALSE(ev.is_set());
}

TEST(SimEngine, DeterministicEventCount) {
  auto run_once = [] {
    Simulation sim;
    Resource r(sim, 2);
    auto proc = [](Simulation&, Resource& res, int reps) -> Task {
      for (int i = 0; i < reps; ++i) co_await res.use(0.5);
    };
    for (int i = 0; i < 10; ++i) sim.spawn(proc(sim, r, 20));
    sim.run();
    return sim.events_processed();
  };
  EXPECT_EQ(run_once(), run_once());
}

// A producer/consumer pipeline exercising Resource + Event together — the
// same shape as the simulated CRFS work queue.
TEST(SimEngine, ProducerConsumerPipeline) {
  Simulation sim;
  struct Queue {
    std::deque<int> items;
    Event ready;
    explicit Queue(Simulation& s) : ready(s) {}
  } queue{sim};
  std::vector<int> consumed;

  sim.spawn([](Simulation& s, Queue& q) -> Task {
    for (int i = 0; i < 5; ++i) {
      co_await s.delay(1.0);
      q.items.push_back(i);
      q.ready.pulse();
    }
  }(sim, queue));

  sim.spawn([](Simulation& s, Queue& q, std::vector<int>& out) -> Task {
    while (out.size() < 5) {
      while (q.items.empty()) co_await q.ready.wait();
      const int item = q.items.front();
      q.items.pop_front();
      co_await s.delay(0.25);  // service
      out.push_back(item);
    }
  }(sim, queue, consumed));

  sim.run();
  EXPECT_EQ(consumed, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace crfs::sim
