// End-to-end DES experiment tests: determinism, paper-shape assertions
// for every figure the simulation backs, and the CRFS-pipeline sim.
#include <gtest/gtest.h>

#include "sim/crfs_sim.h"
#include "sim/experiment.h"
#include "sim/ext3_sim.h"

namespace crfs::sim {
namespace {

ExperimentConfig base_config(mpi::LuClass cls, BackendKind backend, FsMode mode) {
  ExperimentConfig cfg;
  cfg.lu_class = cls;
  cfg.backend = backend;
  cfg.mode = mode;
  return cfg;
}

TEST(Experiment, DeterministicForSeed) {
  auto cfg = base_config(mpi::LuClass::kB, BackendKind::kExt3, FsMode::kNative);
  const auto a = run_experiment(cfg);
  const auto b = run_experiment(cfg);
  ASSERT_EQ(a.rank_seconds.size(), b.rank_seconds.size());
  for (std::size_t i = 0; i < a.rank_seconds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rank_seconds[i], b.rank_seconds[i]);
  }
  EXPECT_DOUBLE_EQ(a.mean_rank_seconds, b.mean_rank_seconds);
}

TEST(Experiment, SeedChangesJitterNotShape) {
  auto cfg = base_config(mpi::LuClass::kB, BackendKind::kExt3, FsMode::kNative);
  const auto a = run_experiment(cfg);
  cfg.seed = 1234;
  const auto b = run_experiment(cfg);
  EXPECT_NE(a.mean_rank_seconds, b.mean_rank_seconds);
  EXPECT_NEAR(a.mean_rank_seconds, b.mean_rank_seconds, a.mean_rank_seconds * 0.4);
}

TEST(Experiment, AllRanksComplete) {
  auto cfg = base_config(mpi::LuClass::kB, BackendKind::kLustre, FsMode::kCrfs);
  cfg.nodes = 4;
  cfg.ppn = 4;
  const auto r = run_experiment(cfg);
  ASSERT_EQ(r.rank_seconds.size(), 16u);
  for (double t : r.rank_seconds) EXPECT_GT(t, 0.0);
  EXPECT_GE(r.max_rank_seconds, r.mean_rank_seconds);
  EXPECT_LE(r.min_rank_seconds, r.mean_rank_seconds);
}

// ---- paper-shape assertions (the figures' qualitative claims) ----------

// Figs 6-8: CRFS wins on all three backends for class B and C.
TEST(PaperShapes, CrfsWinsClassBAndC) {
  for (const auto backend : {BackendKind::kExt3, BackendKind::kLustre, BackendKind::kNfs}) {
    for (const auto cls : {mpi::LuClass::kB, mpi::LuClass::kC}) {
      const auto cell = run_cell(mpi::Stack::kMvapich2, cls, backend);
      EXPECT_GT(cell.speedup(), 1.5)
          << backend_name(backend) << " " << mpi::lu_class_name(cls);
    }
  }
}

// Fig 6b anchor: CRFS over Lustre at class C is a multi-X win (paper 5.5X).
TEST(PaperShapes, LustreClassCHeadlineSpeedup) {
  const auto cell = run_cell(mpi::Stack::kMvapich2, mpi::LuClass::kC, BackendKind::kLustre);
  EXPECT_GT(cell.speedup(), 3.5);
  EXPECT_LT(cell.speedup(), 9.0);
}

// Fig 6c: class D gains shrink — ~30% on Lustre, ~10% on ext3.
TEST(PaperShapes, ClassDGainsShrink) {
  const auto lustre = run_cell(mpi::Stack::kMvapich2, mpi::LuClass::kD, BackendKind::kLustre);
  EXPECT_GT(lustre.speedup(), 1.1);
  EXPECT_LT(lustre.speedup(), 1.7);
  const auto ext3 = run_cell(mpi::Stack::kMvapich2, mpi::LuClass::kD, BackendKind::kExt3);
  EXPECT_GT(ext3.speedup(), 1.02);
  EXPECT_LT(ext3.speedup(), 1.6);
}

// §V-C: "CRFS+NFS performs slightly worse than the native NFS" at class D.
TEST(PaperShapes, NfsOutlierAtClassD) {
  const auto cell = run_cell(mpi::Stack::kMvapich2, mpi::LuClass::kD, BackendKind::kNfs);
  EXPECT_LT(cell.speedup(), 1.0);
  EXPECT_GT(cell.speedup(), 0.85);  // only slightly worse
}

// Fig 9: benefit grows with process multiplexing and saturates ~30%.
TEST(PaperShapes, MultiplexingScalability) {
  std::vector<double> reductions;
  for (const unsigned ppn : {1u, 2u, 4u, 8u}) {
    const auto cell =
        run_cell(mpi::Stack::kMvapich2, mpi::LuClass::kD, BackendKind::kLustre, 16, ppn);
    reductions.push_back(1.0 - cell.crfs_seconds / cell.native_seconds);
  }
  EXPECT_LT(reductions[0], 0.18) << "little benefit at 1 ppn";
  for (std::size_t i = 1; i < reductions.size(); ++i) {
    EXPECT_GE(reductions[i], reductions[i - 1] - 0.02) << "benefit must grow with ppn";
  }
  EXPECT_GT(reductions[3], 0.18) << "~30% reduction at 8 ppn";
  EXPECT_LT(reductions[3], 0.45);
}

// Fig 3 / Fig 11: native spread ~2x, CRFS collapses it.
TEST(PaperShapes, VarianceCollapse) {
  auto cfg = base_config(mpi::LuClass::kC, BackendKind::kExt3, FsMode::kNative);
  cfg.nodes = 8;
  cfg.ppn = 8;
  const auto native = run_experiment(cfg);
  cfg.mode = FsMode::kCrfs;
  const auto crfs = run_experiment(cfg);
  EXPECT_GT(native.spread(), 1.5);
  EXPECT_LT(crfs.spread(), 1.35);
  EXPECT_LT(crfs.spread(), native.spread() * 0.75);
}

// Fig 10: CRFS has far fewer disk seeks and bigger requests.
TEST(PaperShapes, BlockTraceSequentiality) {
  auto cfg = base_config(mpi::LuClass::kC, BackendKind::kExt3, FsMode::kNative);
  cfg.nodes = 8;
  cfg.ppn = 8;
  const auto native = run_experiment(cfg);
  cfg.mode = FsMode::kCrfs;
  const auto crfs = run_experiment(cfg);
  ASSERT_GT(native.disk_summary.requests, 0u);
  ASSERT_GT(crfs.disk_summary.requests, 0u);
  EXPECT_GT(native.disk_summary.requests, 4 * crfs.disk_summary.requests);
  EXPECT_GT(native.disk_summary.seeks, 4 * crfs.disk_summary.seeks);
  const double native_req =
      static_cast<double>(native.disk_summary.bytes) /
      static_cast<double>(native.disk_summary.requests);
  const double crfs_req = static_cast<double>(crfs.disk_summary.bytes) /
                          static_cast<double>(crfs.disk_summary.requests);
  EXPECT_GT(crfs_req, 3.0 * native_req);
}

// Table I (time column): medium writes carry a disproportionate share of
// time on native ext3; tiny writes are nearly free.
TEST(PaperShapes, TableOneTimeShares) {
  auto cfg = base_config(mpi::LuClass::kC, BackendKind::kExt3, FsMode::kNative);
  cfg.nodes = 8;
  cfg.ppn = 8;
  cfg.record_writes = true;
  const auto r = run_experiment(cfg);
  const auto& h = r.profile.histogram();
  const double total_time = h.total_seconds();
  ASSERT_GT(total_time, 0.0);
  const auto& b = h.buckets();
  const double tiny_time = b[0].seconds / total_time;          // 0-64
  const double medium_time = b[4].seconds / total_time;        // 4K-16K
  const double medium_data =
      static_cast<double>(b[4].bytes) / static_cast<double>(h.total_bytes());
  EXPECT_LT(tiny_time, 0.05) << "paper: 0.17%";
  EXPECT_GT(medium_time, 0.25) << "paper: 44.66%";
  EXPECT_GT(medium_time, 2.0 * medium_data)
      << "medium ops must be disproportionately expensive";
}

// Image sizes flow through: bigger class => longer checkpoint.
TEST(Experiment, ClassOrderingMonotone) {
  for (const auto backend : {BackendKind::kExt3, BackendKind::kLustre}) {
    double prev = 0;
    for (const auto cls : {mpi::LuClass::kB, mpi::LuClass::kC, mpi::LuClass::kD}) {
      auto cfg = base_config(cls, backend, FsMode::kNative);
      const double t = run_experiment(cfg).mean_rank_seconds;
      EXPECT_GT(t, prev) << backend_name(backend);
      prev = t;
    }
  }
}

// The ext3 single-node shortcut equals the statistics of a multi-node run.
TEST(Experiment, Ext3ShortcutMatchesFullRun) {
  auto cfg = base_config(mpi::LuClass::kB, BackendKind::kExt3, FsMode::kCrfs);
  cfg.nodes = 4;
  cfg.ppn = 4;
  const auto fast = run_experiment(cfg);
  cfg.ext3_single_node = false;
  const auto full = run_experiment(cfg);
  // Full run simulates 16 ranks; shortcut 4. Means agree within jitter.
  EXPECT_EQ(fast.rank_seconds.size(), 4u);
  EXPECT_EQ(full.rank_seconds.size(), 16u);
  EXPECT_NEAR(fast.mean_rank_seconds, full.mean_rank_seconds,
              0.3 * full.mean_rank_seconds);
}

// ------------------------------------------------------------ CrfsSimNode

TEST(CrfsSimNode, ChunkAccountingMatchesData) {
  Simulation sim;
  Calibration cal;
  Ext3Sim backend(sim, cal, 1, 1, 7);
  crfs::Config config;  // 4M chunks, 16M pool
  CrfsSimNode node(sim, cal, backend, 0, config, crfs::FuseOptions{}, 1);
  node.start();
  sim.spawn([](Simulation&, CrfsSimNode& n) -> Task {
    for (int i = 0; i < 6; ++i) co_await n.app_write(1, 4 * MiB);
    co_await n.app_write(1, 1 * MiB);  // partial
    co_await n.close_file(1);
  }(sim, node));
  sim.run();
  EXPECT_EQ(node.chunks_flushed(), 7u);  // 6 full + 1 partial
}

TEST(CrfsSimNode, PoolBackpressureEngagesWithSlowBackend) {
  Simulation sim;
  Calibration cal;
  cal.dirty_limit = 1;  // force every backend write to wait on the disk
  Ext3Sim backend(sim, cal, 1, 1, 7);
  crfs::Config config;
  CrfsSimNode node(sim, cal, backend, 0, config, crfs::FuseOptions{}, 1);
  node.start();
  sim.spawn([](Simulation&, CrfsSimNode& n) -> Task {
    co_await n.app_write(1, 64 * MiB);  // far beyond the 16 MB pool
    co_await n.close_file(1);
  }(sim, node));
  sim.run();
  EXPECT_GT(node.pool_waits(), 0u);
}

// Uring queue-depth mirror (docs/PERFORMANCE.md "IO engines"): with one
// IO worker, the sync engine serializes runs (depth effectively 1) while
// the uring mirror keeps many runs in flight. Totals (chunks flushed,
// close-waits-for-all) are engine-invariant — only timing changes.
TEST(CrfsSimNode, UringMirrorSustainsDepthBeyondWorkers) {
  auto run_engine = [](IoEngineKind kind, std::uint64_t* max_depth) {
    Simulation sim;
    Calibration cal;
    cal.dirty_limit = 1;  // slow disk: depth can only build when the
                          // backend is slower than the producers
    Ext3Sim backend(sim, cal, 1, 1, 7);
    crfs::Config config;
    config.io_threads = 1;
    config.io_batch = 8;
    config.io_engine = kind;
    config.uring_depth = 8;
    CrfsSimNode node(sim, cal, backend, 0, config, crfs::FuseOptions{}, 1);
    node.start();
    sim.spawn([](Simulation&, CrfsSimNode& n) -> Task {
      co_await n.app_write(1, 48 * MiB);
      co_await n.close_file(1);
    }(sim, node));
    const double t = sim.run();
    for (const auto& [name, hist] : node.metrics().snapshot().histograms) {
      if (name == "crfs.io.inflight_depth") *max_depth = hist.max;
    }
    EXPECT_EQ(node.chunks_flushed(), 12u);  // 48M / 4M chunks, both engines
    return t;
  };

  std::uint64_t sync_depth = 0, uring_depth = 0;
  run_engine(IoEngineKind::kSync, &sync_depth);
  run_engine(IoEngineKind::kUring, &uring_depth);
  EXPECT_EQ(sync_depth, 0u);   // sync engine never records ring depth
  EXPECT_GT(uring_depth, 1u);  // one worker, many runs in flight
}

TEST(CrfsSimNode, UringMirrorRespectsDepthCap) {
  Simulation sim;
  Calibration cal;
  cal.dirty_limit = 1;  // slow disk: submissions outpace completions
  Ext3Sim backend(sim, cal, 1, 1, 7);
  crfs::Config config;
  config.io_threads = 2;
  config.io_batch = 8;
  config.io_engine = IoEngineKind::kUring;
  config.uring_depth = 3;
  config.pool_size = 64 * MiB;  // deep pool so the queue can back up
  CrfsSimNode node(sim, cal, backend, 0, config, crfs::FuseOptions{}, 1);
  node.start();
  sim.spawn([](Simulation&, CrfsSimNode& n) -> Task {
    co_await n.app_write(1, 96 * MiB);
    co_await n.close_file(1);
  }(sim, node));
  sim.run();
  std::uint64_t max_depth = 0;
  for (const auto& [name, hist] : node.metrics().snapshot().histograms) {
    if (name == "crfs.io.inflight_depth") max_depth = hist.max;
  }
  EXPECT_GT(max_depth, 1u);
  EXPECT_LE(max_depth, 3u);  // never exceeds uring_depth
  EXPECT_EQ(node.chunks_flushed(), 24u);
}

TEST(CrfsSimNode, CloseWaitsForAllChunks) {
  Simulation sim;
  Calibration cal;
  Ext3Sim backend(sim, cal, 1, 1, 7);
  crfs::Config config;
  CrfsSimNode node(sim, cal, backend, 0, config, crfs::FuseOptions{}, 1);
  node.start();
  double write_done = 0, close_done = 0;
  sim.spawn([](Simulation& s, CrfsSimNode& n, double& wd, double& cd) -> Task {
    co_await n.app_write(1, 32 * MiB);
    wd = s.now();
    co_await n.close_file(1);
    cd = s.now();
  }(sim, node, write_done, close_done));
  sim.run();
  EXPECT_GT(close_done, write_done);  // close waits for outstanding chunks
}

}  // namespace
}  // namespace crfs::sim
