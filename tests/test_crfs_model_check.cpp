// Model-checking property test: CRFS against a trivially-correct
// reference filesystem model.
//
// Random sequences of open/write/read/fsync/close/truncate/rename/unlink
// operations are applied simultaneously to a CRFS mount (over MemBackend)
// and to a plain in-memory map of byte vectors. After every sequence the
// two must agree byte-for-byte on every surviving file. Sequences are
// seeded, so any failure is replayable from the printed seed.
#include <gtest/gtest.h>

#include <map>

#include "backend/mem_backend.h"
#include "common/rng.h"
#include "common/units.h"
#include "crfs/crfs.h"
#include "crfs/fuse_shim.h"

namespace crfs {
namespace {

// The reference model: files are byte vectors, writes are memcpy.
class ModelFs {
 public:
  void write(const std::string& path, std::uint64_t offset,
             std::span<const std::byte> data) {
    auto& f = files_[path];
    if (f.size() < offset + data.size()) f.resize(offset + data.size());
    std::memcpy(f.data() + offset, data.data(), data.size());
  }

  void truncate(const std::string& path, std::uint64_t size) {
    files_[path].resize(size);
  }

  void unlink(const std::string& path) { files_.erase(path); }

  void rename(const std::string& from, const std::string& to) {
    auto it = files_.find(from);
    if (it == files_.end()) return;
    files_[to] = std::move(it->second);
    files_.erase(it);
  }

  const std::map<std::string, std::vector<std::byte>>& files() const { return files_; }

 private:
  std::map<std::string, std::vector<std::byte>> files_;
};

struct OpenFile {
  Crfs::FileHandle handle;
  std::string path;
  std::uint64_t cursor = 0;  // model of sequential access
};

class ModelCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelCheck, RandomOpSequenceAgreesWithModel) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  auto mem = std::make_shared<MemBackend>();
  // Small chunks/pool so sequences cross many chunk boundaries.
  auto fs = Crfs::mount(mem, Config{.chunk_size = static_cast<std::size_t>(
                                        rng.uniform(1, 8) * 1024),
                                    .pool_size = 32 * 1024,
                                    .io_threads = static_cast<unsigned>(rng.uniform(1, 4))});
  ASSERT_TRUE(fs.ok());
  FuseShim shim(*fs.value(), FuseOptions{.big_writes = rng.bernoulli(0.5)});

  ModelFs model;
  std::vector<OpenFile> open_files;
  const int kPaths = 4;
  auto random_path = [&] { return "f" + std::to_string(rng.uniform(0, kPaths - 1)); };

  std::vector<std::byte> buf;
  const int ops = 300;
  for (int i = 0; i < ops; ++i) {
    const double roll = rng.next_double();
    if (roll < 0.25 && open_files.size() < 6) {
      // open (create if missing, sometimes truncating)
      const std::string path = random_path();
      const bool trunc = rng.bernoulli(0.2);
      auto h = shim.open(path, {.create = true, .truncate = trunc, .write = true});
      ASSERT_TRUE(h.ok());
      if (model.files().count(path) == 0) model.write(path, 0, {});
      if (trunc) model.truncate(path, 0);
      open_files.push_back({h.value(), path, 0});
    } else if (roll < 0.65 && !open_files.empty()) {
      // sequential-ish write at cursor (sometimes jump)
      auto& f = open_files[rng.uniform(0, open_files.size() - 1)];
      if (rng.bernoulli(0.15)) f.cursor = rng.uniform(0, 64 * 1024);
      buf.resize(rng.uniform(1, 12 * 1024));
      for (auto& b : buf) b = static_cast<std::byte>(rng.next_u64());
      ASSERT_TRUE(shim.write(f.handle, buf, f.cursor).ok());
      model.write(f.path, f.cursor, buf);
      f.cursor += buf.size();
    } else if (roll < 0.75 && !open_files.empty()) {
      // fsync
      const auto& f = open_files[rng.uniform(0, open_files.size() - 1)];
      ASSERT_TRUE(shim.fsync(f.handle).ok());
    } else if (roll < 0.85 && !open_files.empty()) {
      // read-back at a random offset and compare against the model NOW
      const auto& f = open_files[rng.uniform(0, open_files.size() - 1)];
      auto it = model.files().find(f.path);
      if (it != model.files().end() && !it->second.empty()) {
        const std::uint64_t off = rng.uniform(0, it->second.size() - 1);
        const std::size_t want =
            std::min<std::size_t>(rng.uniform(1, 4096), it->second.size() - off);
        buf.resize(want);
        auto n = shim.read(f.handle, buf, off);
        ASSERT_TRUE(n.ok());
        ASSERT_EQ(n.value(), want) << "seed " << seed << " op " << i;
        ASSERT_EQ(std::memcmp(buf.data(), it->second.data() + off, want), 0)
            << "read mismatch at " << f.path << "+" << off << " seed " << seed;
      }
    } else if (roll < 0.95 && !open_files.empty()) {
      // close one
      const std::size_t idx = rng.uniform(0, open_files.size() - 1);
      ASSERT_TRUE(shim.close(open_files[idx].handle).ok());
      open_files.erase(open_files.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      // truncate a closed file via path (only when not open, to keep the
      // model simple)
      const std::string path = random_path();
      bool is_open = false;
      for (const auto& f : open_files) is_open |= f.path == path;
      if (!is_open && model.files().count(path) != 0) {
        const std::uint64_t size = rng.uniform(0, 8 * 1024);
        ASSERT_TRUE(fs.value()->truncate(path, size).ok());
        model.truncate(path, size);
      }
    }
  }
  for (auto& f : open_files) ASSERT_TRUE(shim.close(f.handle).ok());

  // Final agreement: every model file exists in the backend with
  // identical bytes.
  for (const auto& [path, bytes] : model.files()) {
    auto contents = mem->contents(path);
    ASSERT_TRUE(contents.ok()) << path << " seed " << seed;
    ASSERT_EQ(contents.value().size(), bytes.size()) << path << " seed " << seed;
    EXPECT_EQ(std::memcmp(contents.value().data(), bytes.data(), bytes.size()), 0)
        << path << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelCheck,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233,
                                           377, 610, 987, 1597));

}  // namespace
}  // namespace crfs
