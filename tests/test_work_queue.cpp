// Unit tests for WorkQueue and IoThreadPool.
#include <gtest/gtest.h>

#include <thread>

#include "backend/mem_backend.h"
#include "backend/wrappers.h"
#include "crfs/file_table.h"
#include "crfs/io_pool.h"
#include "crfs/work_queue.h"

namespace crfs {
namespace {

WriteJob make_job(std::shared_ptr<FileEntry> file, std::size_t chunk_size,
                  std::uint64_t offset, char fill_byte, std::size_t fill_len) {
  auto chunk = std::make_unique<Chunk>(chunk_size);
  chunk->reset(offset);
  std::vector<std::byte> data(fill_len, static_cast<std::byte>(fill_byte));
  chunk->append(data);
  return WriteJob{std::move(file), std::move(chunk)};
}

TEST(WorkQueue, FifoOrder) {
  WorkQueue q;
  auto entry = std::make_shared<FileEntry>("f", 1);
  q.push(make_job(entry, 64, 0, 'a', 1));
  q.push(make_job(entry, 64, 1, 'b', 1));
  q.push(make_job(entry, 64, 2, 'c', 1));
  EXPECT_EQ(q.depth(), 3u);
  EXPECT_EQ(q.total_pushed(), 3u);

  EXPECT_EQ(q.pop()->chunk->file_offset(), 0u);
  EXPECT_EQ(q.pop()->chunk->file_offset(), 1u);
  EXPECT_EQ(q.pop()->chunk->file_offset(), 2u);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(WorkQueue, PopBlocksUntilPush) {
  WorkQueue q;
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto job = q.pop();
    got.store(job.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(got.load());
  q.push(make_job(std::make_shared<FileEntry>("f", 1), 64, 0, 'x', 1));
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(WorkQueue, ShutdownDrainsThenReturnsNullopt) {
  WorkQueue q;
  auto entry = std::make_shared<FileEntry>("f", 1);
  q.push(make_job(entry, 64, 0, 'a', 1));
  q.shutdown();
  EXPECT_TRUE(q.pop().has_value());   // queued job still delivered
  EXPECT_FALSE(q.pop().has_value());  // then closed
}

TEST(WorkQueue, ShutdownUnblocksWaiters) {
  WorkQueue q;
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.shutdown();
  consumer.join();
}

TEST(WorkQueue, PopBatchDrainsUpToMaxInFifoOrder) {
  WorkQueue q;
  auto entry = std::make_shared<FileEntry>("f", 1);
  for (int i = 0; i < 5; ++i) {
    q.push(make_job(entry, 64, static_cast<std::uint64_t>(i), 'a', 1));
  }
  auto first = q.pop_batch(3);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].chunk->file_offset(), 0u);
  EXPECT_EQ(first[1].chunk->file_offset(), 1u);
  EXPECT_EQ(first[2].chunk->file_offset(), 2u);
  auto rest = q.pop_batch(8);  // only 2 left; must not block for more
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].chunk->file_offset(), 3u);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(WorkQueue, PopBatchBlocksForFirstJobOnly) {
  WorkQueue q;
  std::atomic<std::size_t> got{0};
  std::thread consumer([&] { got.store(q.pop_batch(4).size()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(got.load(), 0u);
  q.push(make_job(std::make_shared<FileEntry>("f", 1), 64, 0, 'x', 1));
  consumer.join();
  EXPECT_EQ(got.load(), 1u);  // returned with the one available job
}

TEST(WorkQueue, PopBatchReturnsEmptyAfterShutdownDrained) {
  WorkQueue q;
  auto entry = std::make_shared<FileEntry>("f", 1);
  q.push(make_job(entry, 64, 0, 'a', 1));
  q.push(make_job(entry, 64, 1, 'b', 1));
  q.shutdown();
  EXPECT_EQ(q.pop_batch(8).size(), 2u);  // queued jobs still delivered
  EXPECT_TRUE(q.pop_batch(8).empty());   // then closed
}

TEST(WorkQueue, TryPopBatchNeverBlocks) {
  WorkQueue q;
  EXPECT_TRUE(q.try_pop_batch(4).empty());  // empty queue: immediate return

  auto entry = std::make_shared<FileEntry>("f", 1);
  for (int i = 0; i < 3; ++i) {
    q.push(make_job(entry, 64, static_cast<std::uint64_t>(i), 'a', 1));
  }
  auto batch = q.try_pop_batch(2);  // caps at max, FIFO order
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].chunk->file_offset(), 0u);
  EXPECT_EQ(batch[1].chunk->file_offset(), 1u);
  EXPECT_EQ(q.try_pop_batch(8).size(), 1u);

  q.shutdown();
  EXPECT_TRUE(q.try_pop_batch(8).empty());  // drained + closed: still empty
}

TEST(WorkQueue, TryPopBatchStampsDequeueTimes) {
  WorkQueue q;
  auto entry = std::make_shared<FileEntry>("f", 1);
  q.push(make_job(entry, 64, 0, 'a', 1));
  auto batch = q.try_pop_batch(1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_GT(batch[0].enqueue_ns, 0u);
  EXPECT_GE(batch[0].dequeue_ns, batch[0].enqueue_ns);
}

// --------------------------------------------------------- IoThreadPool

class IoPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    backend_ = std::make_shared<MemBackend>();
    pool_ = std::make_unique<BufferPool>(16 * 4096, 4096);
  }

  std::shared_ptr<FileEntry> open_entry(const std::string& path) {
    auto bf = backend_->open_file(path, {.create = true, .truncate = true, .write = true});
    EXPECT_TRUE(bf.ok());
    return std::make_shared<FileEntry>(path, bf.value());
  }

  WriteJob pool_job(std::shared_ptr<FileEntry> entry, std::uint64_t offset,
                    const std::string& payload) {
    auto chunk = pool_->acquire_for(offset, std::chrono::seconds(10));
    EXPECT_NE(chunk, nullptr);
    chunk->append({reinterpret_cast<const std::byte*>(payload.data()), payload.size()});
    entry->write_chunks.fetch_add(1);
    return WriteJob{std::move(entry), std::move(chunk)};
  }

  std::shared_ptr<MemBackend> backend_;
  std::unique_ptr<BufferPool> pool_;
  WorkQueue queue_;
};

TEST_F(IoPoolTest, WritesChunksAtRecordedOffsets) {
  auto entry = open_entry("out.bin");
  {
    IoThreadPool io(2, queue_, *pool_, *backend_);
    queue_.push(pool_job(entry, 0, "AAAA"));
    queue_.push(pool_job(entry, 4, "BBBB"));
    entry->wait_for_completion(2);
    EXPECT_EQ(io.chunks_written(), 2u);
    EXPECT_EQ(io.bytes_written(), 8u);
  }
  auto content = backend_->contents("out.bin");
  ASSERT_TRUE(content.ok());
  ASSERT_EQ(content.value().size(), 8u);
  EXPECT_EQ(std::memcmp(content.value().data(), "AAAABBBB", 8), 0);
}

TEST_F(IoPoolTest, ChunksReturnToPoolAfterWrite) {
  auto entry = open_entry("r.bin");
  IoThreadPool io(1, queue_, *pool_, *backend_);
  const std::size_t before = pool_->free_chunks();
  queue_.push(pool_job(entry, 0, "x"));
  entry->wait_for_completion(1);
  // The IO thread releases the chunk after completing; allow a beat.
  for (int i = 0; i < 100 && pool_->free_chunks() != before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool_->free_chunks(), before);
}

TEST_F(IoPoolTest, CompletionCountsTrackJobs) {
  auto entry = open_entry("c.bin");
  IoThreadPool io(4, queue_, *pool_, *backend_);
  constexpr int kJobs = 12;
  for (int i = 0; i < kJobs; ++i) {
    queue_.push(pool_job(entry, static_cast<std::uint64_t>(i), "z"));
  }
  entry->wait_for_completion(kJobs);
  EXPECT_EQ(entry->complete_chunks.load(), static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(entry->write_chunks.load(), static_cast<std::uint64_t>(kJobs));
  EXPECT_FALSE(entry->has_error());
}

TEST_F(IoPoolTest, BackendErrorRecordedOnEntry) {
  auto faulty = std::make_shared<FaultyBackend>(backend_);
  faulty->fail_writes_after(0);  // every pwrite fails
  auto bf = faulty->open_file("bad.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(bf.ok());
  auto entry = std::make_shared<FileEntry>("bad.bin", bf.value());

  IoThreadPool io(1, queue_, *pool_, *faulty);
  queue_.push(pool_job(entry, 0, "doomed"));
  entry->wait_for_completion(1);
  EXPECT_TRUE(entry->has_error());
  auto err = entry->take_error();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, EIO);
  EXPECT_FALSE(entry->has_error());  // consumed
  EXPECT_EQ(io.chunks_written(), 0u);
}

TEST_F(IoPoolTest, BatchedWorkerCoalescesAdjacentChunks) {
  auto entry = open_entry("seq.bin");
  // Queue four offset-adjacent chunks BEFORE any worker exists, so the
  // single worker's first pop_batch sees them all and must coalesce the
  // run into one vectored backend write.
  const std::string chunks[] = {"AAAA", "BBBB", "CCCC", "DDDD"};
  std::uint64_t off = 0;
  for (const auto& payload : chunks) {
    queue_.push(pool_job(entry, off, payload));
    off += payload.size();
  }
  const std::uint64_t pwrites_before = backend_->total_pwrites();
  obs::Registry metrics;
  IoPoolObs observe;
  observe.batch_chunks = &metrics.histogram("crfs.io.batch_chunks");
  observe.coalesced_pwrites = &metrics.counter("crfs.io.coalesced_pwrites");
  {
    IoThreadPool io(1, queue_, *pool_, *backend_, observe, /*batch=*/8);
    entry->wait_for_completion(4);
    EXPECT_EQ(io.chunks_written(), 4u);
    EXPECT_EQ(io.bytes_written(), 16u);
  }
  // One coalesced pwritev for the whole run, not four pwrites.
  EXPECT_EQ(backend_->total_pwrites() - pwrites_before, 1u);
  EXPECT_GE(observe.coalesced_pwrites->value(), 1u);
  EXPECT_GE(observe.batch_chunks->count(), 1u);
  auto content = backend_->contents("seq.bin");
  ASSERT_TRUE(content.ok());
  ASSERT_EQ(content.value().size(), 16u);
  EXPECT_EQ(std::memcmp(content.value().data(), "AAAABBBBCCCCDDDD", 16), 0);
}

TEST_F(IoPoolTest, BatchedWorkerPreservesFifoOrderForOverlappingChunks) {
  auto entry = open_entry("overlap.bin");
  // A later overwrite at a LOWER offset: batching must not reorder these
  // by offset — the second (newer) chunk has to land after the first, or
  // last-writer-wins breaks for the overlapping bytes.
  queue_.push(pool_job(entry, 2, "XXXX"));  // older write, [2,6)
  queue_.push(pool_job(entry, 0, "yyyy"));  // newer overwrite, [0,4)
  {
    IoThreadPool io(1, queue_, *pool_, *backend_, {}, /*batch=*/4);
    entry->wait_for_completion(2);
  }
  auto content = backend_->contents("overlap.bin");
  ASSERT_TRUE(content.ok());
  ASSERT_EQ(content.value().size(), 6u);
  EXPECT_EQ(std::memcmp(content.value().data(), "yyyyXX", 6), 0);
}

TEST_F(IoPoolTest, BatchedWorkerGroupsByFileAcrossInterleavedStreams) {
  auto a = open_entry("a.bin");
  auto b = open_entry("b.bin");
  // Two streams interleaved in the queue: grouping by file must still
  // coalesce each stream's adjacent chunks into one write per file.
  queue_.push(pool_job(a, 0, "AAAA"));
  queue_.push(pool_job(b, 0, "1111"));
  queue_.push(pool_job(a, 4, "BBBB"));
  queue_.push(pool_job(b, 4, "2222"));
  const std::uint64_t pwrites_before = backend_->total_pwrites();
  {
    IoThreadPool io(1, queue_, *pool_, *backend_, {}, /*batch=*/8);
    a->wait_for_completion(2);
    b->wait_for_completion(2);
  }
  EXPECT_EQ(backend_->total_pwrites() - pwrites_before, 2u);  // one per file
  EXPECT_EQ(std::memcmp(backend_->contents("a.bin").value().data(), "AAAABBBB", 8), 0);
  EXPECT_EQ(std::memcmp(backend_->contents("b.bin").value().data(), "11112222", 8), 0);
}

TEST_F(IoPoolTest, BatchedWorkerKeepsNonAdjacentChunksSeparate) {
  auto entry = open_entry("gap.bin");
  queue_.push(pool_job(entry, 0, "AAAA"));
  queue_.push(pool_job(entry, 100, "BBBB"));  // hole: must not coalesce
  const std::uint64_t pwrites_before = backend_->total_pwrites();
  obs::Registry metrics;
  IoPoolObs observe;
  observe.coalesced_pwrites = &metrics.counter("crfs.io.coalesced_pwrites");
  {
    IoThreadPool io(1, queue_, *pool_, *backend_, observe, /*batch=*/4);
    entry->wait_for_completion(2);
  }
  EXPECT_EQ(backend_->total_pwrites() - pwrites_before, 2u);
  EXPECT_EQ(observe.coalesced_pwrites->value(), 0u);
  auto content = backend_->contents("gap.bin");
  ASSERT_TRUE(content.ok());
  ASSERT_EQ(content.value().size(), 104u);
  EXPECT_EQ(std::memcmp(content.value().data(), "AAAA", 4), 0);
  EXPECT_EQ(std::memcmp(content.value().data() + 100, "BBBB", 4), 0);
}

TEST_F(IoPoolTest, DestructorDrainsQueuedJobs) {
  auto entry = open_entry("drain.bin");
  for (int i = 0; i < 8; ++i) {
    queue_.push(pool_job(entry, static_cast<std::uint64_t>(i), "q"));
  }
  {
    IoThreadPool io(2, queue_, *pool_, *backend_);
    // Destroyed immediately: must still write all 8 queued jobs.
  }
  EXPECT_EQ(entry->complete_chunks.load(), 8u);
  EXPECT_EQ(backend_->contents("drain.bin").value().size(), 8u);
}

}  // namespace
}  // namespace crfs
