// Unit tests for WorkQueue and IoThreadPool.
#include <gtest/gtest.h>

#include <thread>

#include "backend/mem_backend.h"
#include "backend/wrappers.h"
#include "crfs/file_table.h"
#include "crfs/io_pool.h"
#include "crfs/work_queue.h"

namespace crfs {
namespace {

WriteJob make_job(std::shared_ptr<FileEntry> file, std::size_t chunk_size,
                  std::uint64_t offset, char fill_byte, std::size_t fill_len) {
  auto chunk = std::make_unique<Chunk>(chunk_size);
  chunk->reset(offset);
  std::vector<std::byte> data(fill_len, static_cast<std::byte>(fill_byte));
  chunk->append(data);
  return WriteJob{std::move(file), std::move(chunk)};
}

TEST(WorkQueue, FifoOrder) {
  WorkQueue q;
  auto entry = std::make_shared<FileEntry>("f", 1);
  q.push(make_job(entry, 64, 0, 'a', 1));
  q.push(make_job(entry, 64, 1, 'b', 1));
  q.push(make_job(entry, 64, 2, 'c', 1));
  EXPECT_EQ(q.depth(), 3u);
  EXPECT_EQ(q.total_pushed(), 3u);

  EXPECT_EQ(q.pop()->chunk->file_offset(), 0u);
  EXPECT_EQ(q.pop()->chunk->file_offset(), 1u);
  EXPECT_EQ(q.pop()->chunk->file_offset(), 2u);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(WorkQueue, PopBlocksUntilPush) {
  WorkQueue q;
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto job = q.pop();
    got.store(job.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(got.load());
  q.push(make_job(std::make_shared<FileEntry>("f", 1), 64, 0, 'x', 1));
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(WorkQueue, ShutdownDrainsThenReturnsNullopt) {
  WorkQueue q;
  auto entry = std::make_shared<FileEntry>("f", 1);
  q.push(make_job(entry, 64, 0, 'a', 1));
  q.shutdown();
  EXPECT_TRUE(q.pop().has_value());   // queued job still delivered
  EXPECT_FALSE(q.pop().has_value());  // then closed
}

TEST(WorkQueue, ShutdownUnblocksWaiters) {
  WorkQueue q;
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.shutdown();
  consumer.join();
}

// --------------------------------------------------------- IoThreadPool

class IoPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    backend_ = std::make_shared<MemBackend>();
    pool_ = std::make_unique<BufferPool>(16 * 4096, 4096);
  }

  std::shared_ptr<FileEntry> open_entry(const std::string& path) {
    auto bf = backend_->open_file(path, {.create = true, .truncate = true, .write = true});
    EXPECT_TRUE(bf.ok());
    return std::make_shared<FileEntry>(path, bf.value());
  }

  WriteJob pool_job(std::shared_ptr<FileEntry> entry, std::uint64_t offset,
                    const std::string& payload) {
    auto chunk = pool_->acquire(offset);
    chunk->append({reinterpret_cast<const std::byte*>(payload.data()), payload.size()});
    entry->write_chunks.fetch_add(1);
    return WriteJob{std::move(entry), std::move(chunk)};
  }

  std::shared_ptr<MemBackend> backend_;
  std::unique_ptr<BufferPool> pool_;
  WorkQueue queue_;
};

TEST_F(IoPoolTest, WritesChunksAtRecordedOffsets) {
  auto entry = open_entry("out.bin");
  {
    IoThreadPool io(2, queue_, *pool_, *backend_);
    queue_.push(pool_job(entry, 0, "AAAA"));
    queue_.push(pool_job(entry, 4, "BBBB"));
    entry->wait_for_completion(2);
    EXPECT_EQ(io.chunks_written(), 2u);
    EXPECT_EQ(io.bytes_written(), 8u);
  }
  auto content = backend_->contents("out.bin");
  ASSERT_TRUE(content.ok());
  ASSERT_EQ(content.value().size(), 8u);
  EXPECT_EQ(std::memcmp(content.value().data(), "AAAABBBB", 8), 0);
}

TEST_F(IoPoolTest, ChunksReturnToPoolAfterWrite) {
  auto entry = open_entry("r.bin");
  IoThreadPool io(1, queue_, *pool_, *backend_);
  const std::size_t before = pool_->free_chunks();
  queue_.push(pool_job(entry, 0, "x"));
  entry->wait_for_completion(1);
  // The IO thread releases the chunk after completing; allow a beat.
  for (int i = 0; i < 100 && pool_->free_chunks() != before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool_->free_chunks(), before);
}

TEST_F(IoPoolTest, CompletionCountsTrackJobs) {
  auto entry = open_entry("c.bin");
  IoThreadPool io(4, queue_, *pool_, *backend_);
  constexpr int kJobs = 12;
  for (int i = 0; i < kJobs; ++i) {
    queue_.push(pool_job(entry, static_cast<std::uint64_t>(i), "z"));
  }
  entry->wait_for_completion(kJobs);
  EXPECT_EQ(entry->complete_chunks.load(), static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(entry->write_chunks.load(), static_cast<std::uint64_t>(kJobs));
  EXPECT_FALSE(entry->has_error());
}

TEST_F(IoPoolTest, BackendErrorRecordedOnEntry) {
  auto faulty = std::make_shared<FaultyBackend>(backend_);
  faulty->fail_writes_after(0);  // every pwrite fails
  auto bf = faulty->open_file("bad.bin", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(bf.ok());
  auto entry = std::make_shared<FileEntry>("bad.bin", bf.value());

  IoThreadPool io(1, queue_, *pool_, *faulty);
  queue_.push(pool_job(entry, 0, "doomed"));
  entry->wait_for_completion(1);
  EXPECT_TRUE(entry->has_error());
  auto err = entry->take_error();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, EIO);
  EXPECT_FALSE(entry->has_error());  // consumed
  EXPECT_EQ(io.chunks_written(), 0u);
}

TEST_F(IoPoolTest, DestructorDrainsQueuedJobs) {
  auto entry = open_entry("drain.bin");
  for (int i = 0; i < 8; ++i) {
    queue_.push(pool_job(entry, static_cast<std::uint64_t>(i), "q"));
  }
  {
    IoThreadPool io(2, queue_, *pool_, *backend_);
    // Destroyed immediately: must still write all 8 queued jobs.
  }
  EXPECT_EQ(entry->complete_chunks.load(), 8u);
  EXPECT_EQ(backend_->contents("drain.bin").value().size(), 8u);
}

}  // namespace
}  // namespace crfs
