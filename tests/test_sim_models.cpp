// Tests for the DES component models: disk, block allocator, and the
// three backend simulations' mechanism-level invariants.
#include <gtest/gtest.h>

#include "sim/disk_model.h"
#include "sim/ext3_sim.h"
#include "sim/lustre_sim.h"
#include "sim/nfs_sim.h"

namespace crfs::sim {
namespace {

// --------------------------------------------------------------- DiskSim

TEST(DiskSim, SequentialFasterThanRandom) {
  Calibration cal;
  auto run_pattern = [&](bool sequential) {
    Simulation sim;
    DiskSim disk(sim, cal.disk_seq_bw, cal.disk_seek, 0.0, 1);
    sim.spawn([](Simulation&, DiskSim& d, bool seq) -> Task {
      for (int i = 0; i < 100; ++i) {
        const std::uint64_t off =
            seq ? static_cast<std::uint64_t>(i) * MiB
                : static_cast<std::uint64_t>(i % 2) * GiB + static_cast<std::uint64_t>(i) * MiB;
        co_await d.write(off, 1 * MiB);
      }
    }(sim, disk, sequential));
    return sim.run();
  };
  const double seq_time = run_pattern(true);
  const double rnd_time = run_pattern(false);
  EXPECT_GT(rnd_time, seq_time * 1.1);
  // Sequential: exactly bytes / bandwidth (no jitter, one seek at start).
  EXPECT_NEAR(seq_time, 100.0 * static_cast<double>(MiB) / cal.disk_seq_bw, 0.01);
}

TEST(DiskSim, CountsSeeksAndBytes) {
  Simulation sim;
  DiskSim disk(sim, 50e6, 5e-3, 0.0, 1);
  sim.spawn([](Simulation&, DiskSim& d) -> Task {
    co_await d.write(0, 4096);        // seek from head=0? offset==head: no seek
    co_await d.write(4096, 4096);     // contiguous: no seek
    co_await d.write(1 * GiB, 4096);  // seek
  }(sim, disk));
  sim.run();
  EXPECT_EQ(disk.requests(), 3u);
  EXPECT_EQ(disk.seeks(), 1u);
  EXPECT_EQ(disk.bytes_written(), 3u * 4096);
  EXPECT_EQ(disk.block_trace().ios().size(), 3u);
}

TEST(DiskSim, FcfsAcrossConcurrentWriters) {
  Simulation sim;
  DiskSim disk(sim, 100e6, 0.0, 0.0, 1);
  std::vector<double> done(2);
  auto writer = [](Simulation& s, DiskSim& d, double& out, std::uint64_t base) -> Task {
    co_await d.write(base, 50 * MiB);  // 0.5 s each at 100 MB/s
    out = s.now();
  };
  sim.spawn(writer(sim, disk, done[0], 0));
  sim.spawn(writer(sim, disk, done[1], 10 * GiB));
  sim.run();
  EXPECT_NEAR(done[0], 0.524, 0.01);  // ~0.5 s (+ MiB/MB rounding)
  EXPECT_NEAR(done[1], 1.049, 0.02);  // serialized behind the first
}

TEST(BlockAllocator, FilesLiveInDistantRegions) {
  BlockAllocator alloc;
  EXPECT_EQ(alloc.address(0, 0), 0u);
  EXPECT_EQ(alloc.address(0, 4096), 4096u);
  EXPECT_GE(alloc.address(1, 0), BlockAllocator::kRegion);
  EXPECT_GT(alloc.address(2, 0), alloc.address(1, 0));
}

// ------------------------------------------------------ backend invariants

// Helper: run `writers` ranks on one node, each writing `per_rank` bytes
// in `op` sized ops, against a backend; returns per-rank times.
template <typename Backend>
std::vector<double> run_writers(Backend& backend, Simulation& sim, unsigned writers,
                                std::uint64_t per_rank, std::uint64_t op, bool via_crfs) {
  std::vector<double> done(writers);
  for (unsigned w = 0; w < writers; ++w) {
    sim.spawn([](Simulation& s, Backend& b, unsigned rank, std::uint64_t total,
                 std::uint64_t opsize, bool crfs, double& out) -> Task {
      for (std::uint64_t off = 0; off < total; off += opsize) {
        co_await b.write_call(0, static_cast<FileId>(rank), off, opsize, crfs);
      }
      co_await b.close_file(0, static_cast<FileId>(rank), crfs);
      out = s.now();
    }(sim, backend, w, per_rank, op, via_crfs, done[w]));
  }
  sim.run();
  return done;
}

TEST(Ext3Sim, NativeSmallOpsSlowerThanCrfsChunks) {
  Calibration cal;
  double native_time, crfs_time;
  {
    Simulation sim;
    Ext3Sim ext3(sim, cal, 1, 8, 7);
    auto done = run_writers(ext3, sim, 8, 32 * MiB, 8 * KiB, false);
    native_time = *std::max_element(done.begin(), done.end());
  }
  {
    Simulation sim;
    Ext3Sim ext3(sim, cal, 1, 8, 7);
    auto done = run_writers(ext3, sim, 8, 32 * MiB, 4 * MiB, true);
    crfs_time = *std::max_element(done.begin(), done.end());
  }
  EXPECT_GT(native_time, 2.0 * crfs_time)
      << "aggregated large writes must beat the small-write storm";
}

TEST(Ext3Sim, NativeInterleaveCausesSeeks) {
  Calibration cal;
  Simulation sim;
  Ext3Sim ext3(sim, cal, 1, 8, 7);
  run_writers(ext3, sim, 8, 16 * MiB, 64 * KiB, false);
  const auto* trace = ext3.disk_trace(0);
  ASSERT_NE(trace, nullptr);
  const auto s = trace->summarize();
  EXPECT_GT(s.requests, 100u);
  // Round-robin across 8 far-apart file regions: most requests seek.
  EXPECT_GT(static_cast<double>(s.seeks) / static_cast<double>(s.requests), 0.8);
}

TEST(Ext3Sim, CrfsChunksNearlySequentialPerFile) {
  Calibration cal;
  Simulation sim;
  Ext3Sim ext3(sim, cal, 1, 1, 7);
  run_writers(ext3, sim, 1, 64 * MiB, 4 * MiB, true);
  const auto s = ext3.disk_trace(0)->summarize();
  // One file, whole-chunk writes: at most the initial positioning seek.
  EXPECT_LE(s.seeks, 1u);
  EXPECT_EQ(s.bytes, 64 * MiB);
}

TEST(Ext3Sim, DirtyLimitThrottlesLargeCheckpoints) {
  // Writing far beyond the dirty limit must take ~bytes/disk_bw.
  Calibration cal;
  Simulation sim;
  Ext3Sim ext3(sim, cal, 1, 1, 7);
  const std::uint64_t total = cal.dirty_limit * 3;
  auto done = run_writers(ext3, sim, 1, total, 4 * MiB, true);
  const double floor_time =
      static_cast<double>(total - cal.dirty_limit) / cal.disk_seq_bw;
  EXPECT_GT(done[0], floor_time * 0.8);
}

TEST(Ext3Sim, UnfairnessSpreadsNativeCompletionTimes) {
  Calibration cal;
  Simulation sim;
  Ext3Sim ext3(sim, cal, 1, 8, 123);
  auto done = run_writers(ext3, sim, 8, 24 * MiB, 16 * KiB, false);
  const auto [lo, hi] = std::minmax_element(done.begin(), done.end());
  EXPECT_GT(*hi / *lo, 1.2) << "native completion must show the Fig 3 spread";
}

TEST(LustreSim, SmallOpCostDominatesNative) {
  Calibration cal;
  double small_ops, large_ops;
  {
    Simulation sim;
    LustreSim lustre(sim, cal, 1, 8, 7);
    auto done = run_writers(lustre, sim, 8, 4 * MiB, 8 * KiB, false);
    small_ops = *std::max_element(done.begin(), done.end());
  }
  {
    Simulation sim;
    LustreSim lustre(sim, cal, 1, 8, 7);
    auto done = run_writers(lustre, sim, 8, 4 * MiB, 1 * MiB, false);
    large_ops = *std::max_element(done.begin(), done.end());
  }
  EXPECT_GT(small_ops, 5.0 * large_ops);
}

TEST(LustreSim, GrantLimitThrottles) {
  Calibration cal;
  Simulation sim;
  LustreSim lustre(sim, cal, 1, 1, 7);
  const std::uint64_t total = cal.lustre_client_cache * 4;
  auto done = run_writers(lustre, sim, 1, total, 4 * MiB, true);
  // Must include drain time of (total - cache) through the OSTs: the
  // node's serial writeback sends ~144 x 1 MB RPCs at ~1.4 ms each.
  EXPECT_GT(done[0], 0.15);
  std::uint64_t rpc_bytes = 0;
  for (unsigned o = 0; o < cal.lustre_osts; ++o) rpc_bytes += lustre.ost_bytes(o);
  EXPECT_GE(rpc_bytes, total - cal.lustre_client_cache);
}

TEST(LustreSim, StripingUsesAllOsts) {
  Calibration cal;
  Simulation sim;
  LustreSim lustre(sim, cal, 1, 1, 7);
  run_writers(lustre, sim, 1, 256 * MiB, 4 * MiB, true);
  for (unsigned o = 0; o < cal.lustre_osts; ++o) {
    EXPECT_GT(lustre.ost_rpcs(o), 0u) << "OST " << o << " unused";
  }
}

TEST(NfsSim, CommitStormSlowerThanCrfsFlush) {
  Calibration cal;
  double native_time, crfs_time;
  {
    Simulation sim;
    NfsSim nfs(sim, cal, 4, 2, 7);
    std::vector<double> done(8);
    for (unsigned n = 0; n < 4; ++n) {
      for (unsigned p = 0; p < 2; ++p) {
        const unsigned rank = n * 2 + p;
        sim.spawn([](Simulation& s, NfsSim& b, unsigned node, FileId f, double& out) -> Task {
          for (std::uint64_t off = 0; off < 16 * MiB; off += 16 * KiB) {
            co_await b.write_call(node, f, off, 16 * KiB, false);
          }
          co_await b.close_file(node, f, false);
          out = s.now();
        }(sim, nfs, n, static_cast<FileId>(rank), done[rank]));
      }
    }
    sim.run();
    native_time = *std::max_element(done.begin(), done.end());
  }
  {
    Simulation sim;
    NfsSim nfs(sim, cal, 4, 2, 7);
    std::vector<double> done(8);
    for (unsigned n = 0; n < 4; ++n) {
      for (unsigned p = 0; p < 2; ++p) {
        const unsigned rank = n * 2 + p;
        sim.spawn([](Simulation& s, NfsSim& b, unsigned node, FileId f, double& out) -> Task {
          for (std::uint64_t off = 0; off < 16 * MiB; off += 4 * MiB) {
            co_await b.write_call(node, f, off, 4 * MiB, true);
          }
          co_await b.close_file(node, f, true);
          out = s.now();
        }(sim, nfs, n, static_cast<FileId>(rank), done[rank]));
      }
    }
    sim.run();
    crfs_time = *std::max_element(done.begin(), done.end());
  }
  EXPECT_GT(native_time, 1.5 * crfs_time);
}

TEST(NfsSim, CloseIsTheExpensivePart) {
  // Below the background threshold nothing is sent until close.
  Calibration cal;
  Simulation sim;
  NfsSim nfs(sim, cal, 1, 1, 7);
  double write_done = 0, close_done = 0;
  sim.spawn([](Simulation& s, NfsSim& b, double& wd, double& cd) -> Task {
    for (std::uint64_t off = 0; off < 8 * MiB; off += 64 * KiB) {
      co_await b.write_call(0, 1, off, 64 * KiB, false);
    }
    wd = s.now();
    co_await b.close_file(0, 1, false);
    cd = s.now();
  }(sim, nfs, write_done, close_done));
  sim.run();
  EXPECT_GT(close_done - write_done, 5.0 * write_done)
      << "flush+commit at close dominates for cache-resident checkpoints";
  EXPECT_GT(nfs.server_requests(), 8 * MiB / cal.nfs_native_commit_run / 2);
}

}  // namespace
}  // namespace crfs::sim
