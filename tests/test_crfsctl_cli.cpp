// End-to-end tests for the crfsctl binary: each subcommand (stats, trace,
// watch, prom) runs against a temp directory and must exit 0 with output
// matching its schema — JSON that parses (stats/trace), Prometheus
// exposition whose cumulative buckets check out (prom), greppable WATCH
// frames (watch). The binary path is injected by CMake as CRFSCTL_BIN.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "obs/json_lite.h"

namespace crfs {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

RunResult run_crfsctl(const std::string& args) {
  const std::string cmd = std::string(CRFSCTL_BIN) + " " + args + " 2>&1";
  std::FILE* pipe = popen(cmd.c_str(), "r");
  RunResult res;
  if (pipe == nullptr) return res;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) res.output.append(buf, n);
  const int status = pclose(pipe);
  res.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return res;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "crfsctl_cli_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(CrfsctlCli, NoArgsPrintsUsageAndFails) {
  const RunResult res = run_crfsctl("");
  EXPECT_NE(res.exit_code, 0);
  EXPECT_NE(res.output.find("usage:"), std::string::npos);
  EXPECT_NE(res.output.find("watch"), std::string::npos);
  EXPECT_NE(res.output.find("prom"), std::string::npos);
}

TEST(CrfsctlCli, StatsEmitsParsableJson) {
  const RunResult res = run_crfsctl("stats " + fresh_dir("stats") + " --json");
  ASSERT_EQ(res.exit_code, 0) << res.output;
  auto parsed = obs::json::parse(res.output);
  ASSERT_TRUE(parsed.has_value()) << res.output;
  ASSERT_NE(parsed->get("mount"), nullptr);
  EXPECT_GT(parsed->get("mount")->get("app_bytes")->number, 0.0);
  ASSERT_NE(parsed->get("pipeline"), nullptr);
  ASSERT_NE(parsed->get("events"), nullptr);
  EXPECT_TRUE(parsed->get("events")->is_array());
}

TEST(CrfsctlCli, StatsHumanReportMentionsPipelineStages) {
  const RunResult res = run_crfsctl("stats " + fresh_dir("statsh"));
  ASSERT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("app_writes"), std::string::npos);
  EXPECT_NE(res.output.find("crfs.io.pwrite_ns"), std::string::npos);
}

TEST(CrfsctlCli, TraceWritesChromeJson) {
  const std::string dir = fresh_dir("trace");
  const std::string out = dir + "/trace.json";
  const RunResult res = run_crfsctl("trace " + dir + " " + out);
  ASSERT_EQ(res.exit_code, 0) << res.output;
  std::FILE* f = std::fopen(out.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  auto parsed = obs::json::parse(content);
  ASSERT_TRUE(parsed.has_value());
  const auto* events = parsed->get("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->array->size(), 0u);
}

TEST(CrfsctlCli, PromEmitsValidExposition) {
  const RunResult res = run_crfsctl("prom " + fresh_dir("prom"));
  ASSERT_EQ(res.exit_code, 0) << res.output;
  // Counter with data, _total suffix.
  EXPECT_NE(res.output.find("crfs_io_pwrite_bytes_total 67108864"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("# TYPE crfs_io_pwrite_ns histogram"), std::string::npos);
  // Cumulative bucket series must be monotone and +Inf must equal _count.
  double prev = 0.0, inf = -1.0, count = -1.0;
  std::size_t pos = 0;
  while (pos < res.output.size()) {
    std::size_t eol = res.output.find('\n', pos);
    if (eol == std::string::npos) eol = res.output.size();
    const std::string line = res.output.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("crfs_io_pwrite_ns_bucket{", 0) == 0) {
      const double v = std::stod(line.substr(line.rfind(' ') + 1));
      EXPECT_GE(v, prev) << line;
      prev = v;
      if (line.find("le=\"+Inf\"") != std::string::npos) inf = v;
    } else if (line.rfind("crfs_io_pwrite_ns_count ", 0) == 0) {
      count = std::stod(line.substr(line.rfind(' ') + 1));
    }
  }
  EXPECT_GT(inf, 0.0);
  EXPECT_EQ(inf, count);
}

TEST(CrfsctlCli, WatchRendersFramesAndSummary) {
  // Piped stdout -> !isatty -> plain WATCH lines, one per sample frame.
  const RunResult res = run_crfsctl("watch " + fresh_dir("watch") + " sample_ms=20");
  ASSERT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("crfsctl watch: 4 ranks"), std::string::npos);
  EXPECT_NE(res.output.find("WATCH t="), std::string::npos);
  EXPECT_NE(res.output.find("MB/s"), std::string::npos);
  EXPECT_NE(res.output.find("free_chunks="), std::string::npos);
  EXPECT_NE(res.output.find("queue="), std::string::npos);
  EXPECT_NE(res.output.find("samples="), std::string::npos);
  // Final report follows the live frames.
  EXPECT_NE(res.output.find("app_writes"), std::string::npos);
}

TEST(CrfsctlCli, BadMountOptionFailsCleanly) {
  const RunResult res = run_crfsctl("prom " + fresh_dir("bad") + " sample_ms=banana");
  EXPECT_NE(res.exit_code, 0);
  EXPECT_NE(res.output.find("error"), std::string::npos);
}

}  // namespace
}  // namespace crfs
