// End-to-end tests for the crfsctl binary: each subcommand (stats, trace,
// watch, prom, report, postmortem) runs against a temp directory and must
// exit 0 with output matching its schema — JSON that parses
// (stats/trace/report), Prometheus exposition whose cumulative buckets
// check out (prom), greppable WATCH/EPOCH frames (watch/report), and the
// postmortem pretty-printer against a real flight-recorder dump. The
// binary path is injected by CMake as CRFSCTL_BIN.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "backend/mem_backend.h"
#include "crfs/crfs.h"
#include "obs/json_lite.h"

namespace crfs {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

RunResult run_crfsctl(const std::string& args) {
  const std::string cmd = std::string(CRFSCTL_BIN) + " " + args + " 2>&1";
  std::FILE* pipe = popen(cmd.c_str(), "r");
  RunResult res;
  if (pipe == nullptr) return res;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) res.output.append(buf, n);
  const int status = pclose(pipe);
  res.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return res;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "crfsctl_cli_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(CrfsctlCli, NoArgsPrintsUsageAndFails) {
  const RunResult res = run_crfsctl("");
  EXPECT_NE(res.exit_code, 0);
  EXPECT_NE(res.output.find("usage:"), std::string::npos);
  EXPECT_NE(res.output.find("watch"), std::string::npos);
  EXPECT_NE(res.output.find("prom"), std::string::npos);
}

TEST(CrfsctlCli, StatsEmitsParsableJson) {
  const RunResult res = run_crfsctl("stats " + fresh_dir("stats") + " --json");
  ASSERT_EQ(res.exit_code, 0) << res.output;
  auto parsed = obs::json::parse(res.output);
  ASSERT_TRUE(parsed.has_value()) << res.output;
  ASSERT_NE(parsed->get("mount"), nullptr);
  EXPECT_GT(parsed->get("mount")->get("app_bytes")->number, 0.0);
  ASSERT_NE(parsed->get("pipeline"), nullptr);
  ASSERT_NE(parsed->get("events"), nullptr);
  EXPECT_TRUE(parsed->get("events")->is_array());
}

TEST(CrfsctlCli, StatsHumanReportMentionsPipelineStages) {
  const RunResult res = run_crfsctl("stats " + fresh_dir("statsh"));
  ASSERT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("app_writes"), std::string::npos);
  EXPECT_NE(res.output.find("crfs.io.pwrite_ns"), std::string::npos);
  EXPECT_NE(res.output.find("engine="), std::string::npos);  // active IO engine
}

TEST(CrfsctlCli, TraceWritesChromeJson) {
  const std::string dir = fresh_dir("trace");
  const std::string out = dir + "/trace.json";
  const RunResult res = run_crfsctl("trace " + dir + " " + out);
  ASSERT_EQ(res.exit_code, 0) << res.output;
  std::FILE* f = std::fopen(out.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  auto parsed = obs::json::parse(content);
  ASSERT_TRUE(parsed.has_value());
  const auto* events = parsed->get("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->array->size(), 0u);
}

TEST(CrfsctlCli, PromEmitsValidExposition) {
  const RunResult res = run_crfsctl("prom " + fresh_dir("prom"));
  ASSERT_EQ(res.exit_code, 0) << res.output;
  // Counter with data, _total suffix.
  EXPECT_NE(res.output.find("crfs_io_pwrite_bytes_total 67108864"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("# TYPE crfs_io_pwrite_ns histogram"), std::string::npos);
  // Info-style engine series: active engine as a label, value 1.
  EXPECT_NE(res.output.find("# TYPE crfs_io_engine_info gauge"), std::string::npos);
  const bool engine_info =
      res.output.find("crfs_io_engine_info{engine=\"sync\"} 1") != std::string::npos ||
      res.output.find("crfs_io_engine_info{engine=\"uring\"} 1") != std::string::npos;
  EXPECT_TRUE(engine_info) << res.output;
  // Cumulative bucket series must be monotone and +Inf must equal _count.
  double prev = 0.0, inf = -1.0, count = -1.0;
  std::size_t pos = 0;
  while (pos < res.output.size()) {
    std::size_t eol = res.output.find('\n', pos);
    if (eol == std::string::npos) eol = res.output.size();
    const std::string line = res.output.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("crfs_io_pwrite_ns_bucket{", 0) == 0) {
      const double v = std::stod(line.substr(line.rfind(' ') + 1));
      EXPECT_GE(v, prev) << line;
      prev = v;
      if (line.find("le=\"+Inf\"") != std::string::npos) inf = v;
    } else if (line.rfind("crfs_io_pwrite_ns_count ", 0) == 0) {
      count = std::stod(line.substr(line.rfind(' ') + 1));
    }
  }
  EXPECT_GT(inf, 0.0);
  EXPECT_EQ(inf, count);
}

TEST(CrfsctlCli, WatchRendersFramesAndSummary) {
  // Piped stdout -> !isatty -> plain WATCH lines, one per sample frame.
  const RunResult res = run_crfsctl("watch " + fresh_dir("watch") + " sample_ms=20");
  ASSERT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("crfsctl watch: 4 ranks"), std::string::npos);
  EXPECT_NE(res.output.find("WATCH t="), std::string::npos);
  EXPECT_NE(res.output.find("MB/s"), std::string::npos);
  EXPECT_NE(res.output.find("free_chunks="), std::string::npos);
  EXPECT_NE(res.output.find("queue="), std::string::npos);
  EXPECT_NE(res.output.find("ring="), std::string::npos);  // engine in-flight depth
  EXPECT_NE(res.output.find("samples="), std::string::npos);
  // Final report follows the live frames.
  EXPECT_NE(res.output.find("app_writes"), std::string::npos);
}

std::vector<std::string> object_keys(const obs::json::Value& v) {
  std::vector<std::string> keys;
  if (v.is_object()) {
    for (const auto& [k, member] : *v.object) keys.push_back(k);
  }
  return keys;  // std::map iteration -> already sorted
}

// The ONE list of sections shared by stats_json and the postmortem. Both
// golden tests assert against it, so the two documents cannot silently
// drift apart: adding a section means adding it to both emitters AND here.
const std::vector<std::string>& shared_section_keys() {
  static const std::vector<std::string> keys = {
      "controller", "epochs", "epochs_completed", "events",          "journal",
      "mount",      "pipeline", "schema_version", "slo",             "slow",
      "tier"};
  return keys;
}

constexpr double kSchemaVersion = 3.0;

// Golden key-set check: the stats --json schema is a contract consumed by
// dashboards; adding a key means updating this list deliberately, and
// removing or renaming one is a breaking change this test catches.
TEST(CrfsctlCli, StatsJsonGoldenKeySet) {
  const RunResult res = run_crfsctl("stats " + fresh_dir("golden") + " --json");
  ASSERT_EQ(res.exit_code, 0) << res.output;
  auto parsed = obs::json::parse(res.output);
  ASSERT_TRUE(parsed.has_value()) << res.output;

  // Top-level = the shared sections plus the stats-only extras.
  std::vector<std::string> expected_top = shared_section_keys();
  expected_top.push_back("epoch_open");
  expected_top.push_back("restores");
  std::sort(expected_top.begin(), expected_top.end());
  EXPECT_EQ(object_keys(*parsed), expected_top);
  EXPECT_DOUBLE_EQ(parsed->get("schema_version")->number, kSchemaVersion);

  // schema_version 3 sections: journal/slo are objects even when disabled.
  ASSERT_NE(parsed->get("journal"), nullptr);
  EXPECT_TRUE(parsed->get("journal")->is_object());
  EXPECT_FALSE(parsed->get("journal")->get("enabled")->boolean);
  ASSERT_NE(parsed->get("slo"), nullptr);
  EXPECT_TRUE(parsed->get("slo")->is_object());
  EXPECT_FALSE(parsed->get("slo")->get("enabled")->boolean);
  ASSERT_NE(parsed->get("tier"), nullptr);
  EXPECT_TRUE(parsed->get("tier")->is_object());
  EXPECT_FALSE(parsed->get("tier")->get("enabled")->boolean);

  const std::vector<std::string> expected_controller = {
      "decisions", "decisions_total", "enabled", "generation", "knob_plane",
      "ticks"};
  ASSERT_NE(parsed->get("controller"), nullptr);
  EXPECT_EQ(object_keys(*parsed->get("controller")), expected_controller);

  const std::vector<std::string> expected_mount = {
      "app_bytes",     "app_writes",         "bypass_writes",
      "chunk_steals",  "full_flushes",       "io_engine",
      "io_engine_requested", "partial_flushes", "read_bytes",
      "read_engine",   "reads",              "reopens"};
  ASSERT_NE(parsed->get("mount"), nullptr);
  EXPECT_EQ(object_keys(*parsed->get("mount")), expected_mount);

  const std::vector<std::string> expected_pipeline = {"counters", "gauges",
                                                      "histograms"};
  ASSERT_NE(parsed->get("pipeline"), nullptr);
  EXPECT_EQ(object_keys(*parsed->get("pipeline")), expected_pipeline);
}

TEST(CrfsctlCli, ReportPrintsGreppableEpochLines) {
  const RunResult res = run_crfsctl("report " + fresh_dir("report"));
  ASSERT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("crfsctl report: 2 epochs x 4 ranks"), std::string::npos);
  // One EPOCH line per checkpoint, exact byte accounting: 4 ranks x 8 MiB.
  EXPECT_NE(res.output.find("EPOCH id=1 label=ckpt-0 files=4 bytes=33554432"),
            std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("EPOCH id=2 label=ckpt-1 files=4 bytes=33554432"),
            std::string::npos);
  EXPECT_NE(res.output.find("durable=33554432"), std::string::npos);
  // The per-epoch table renders the derived columns.
  EXPECT_NE(res.output.find("Agg ratio"), std::string::npos);
  // The restore phase attributes each rank's read-back scan: one RESTORE
  // line per rank image, exact byte accounting.
  EXPECT_NE(res.output.find("RESTORE path=.crfsctl_report_rank0.ckpt.1 "
                            "bytes=8388608"),
            std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("TTFB"), std::string::npos);
  EXPECT_NE(res.output.find("Lag max"), std::string::npos);
}

TEST(CrfsctlCli, ReportJsonIsArrayOfEpochRecords) {
  const RunResult res = run_crfsctl("report " + fresh_dir("reportj") + " --json");
  ASSERT_EQ(res.exit_code, 0) << res.output;
  auto parsed = obs::json::parse(res.output);
  ASSERT_TRUE(parsed.has_value()) << res.output;
  ASSERT_TRUE(parsed->is_array());
  ASSERT_EQ(parsed->array->size(), 2u);

  // Golden key set of one EpochRecord (the stats_json/report schema).
  const std::vector<std::string> expected = {"aggregation_ratio",
                                            "app_writes",
                                            "backend_writes",
                                            "barrier_ns",
                                            "bytes",
                                            "chunks",
                                            "copy_ns",
                                            "device_ns",
                                            "drain_bw_bytes_per_sec",
                                            "drain_end_ns",
                                            "drain_ns",
                                            "drained_bytes",
                                            "durability_lag_max_ns",
                                            "durability_lag_mean_ns",
                                            "durability_lag_sum_ns",
                                            "durable_bytes",
                                            "effective_bw_bytes_per_sec",
                                            "end_ns",
                                            "explicit",
                                            "files",
                                            "id",
                                            "io_errors",
                                            "label",
                                            "open",
                                            "pool_stall_ns",
                                            "queue_residency_ns",
                                            "start_ns",
                                            "submit_wait_ns",
                                            "wall_seconds"};
  for (const auto& rec : *parsed->array) {
    EXPECT_EQ(object_keys(rec), expected);
    EXPECT_EQ(rec.get("bytes")->number, 4.0 * 8 * 1024 * 1024);
    EXPECT_EQ(rec.get("durable_bytes")->number, 4.0 * 8 * 1024 * 1024);
    EXPECT_EQ(rec.get("open")->type, obs::json::Value::Type::Bool);
    EXPECT_FALSE(rec.get("open")->boolean);
  }
}

TEST(CrfsctlCli, ReportRefusesWhenEpochsDisabled) {
  const RunResult res = run_crfsctl("report " + fresh_dir("reportoff") + " no_epochs");
  EXPECT_NE(res.exit_code, 0);
  EXPECT_NE(res.output.find("epoch tracking"), std::string::npos);
}

TEST(CrfsctlCli, PostmortemPrettyPrintsARealDump) {
  // Generate a genuine flight-recorder dump in-process, then feed it to
  // the CLI pretty-printer.
  const std::string dump = fresh_dir("pm") + "/dump.json";
  {
    auto fs = Crfs::mount(std::make_shared<MemBackend>(),
                          Config{.chunk_size = 64 * 1024,
                                 .pool_size = 4 * 64 * 1024,
                                 .enable_tracing = true,
                                 .postmortem_path = dump});
    ASSERT_TRUE(fs.ok());
    ASSERT_TRUE(fs.value()->epoch_begin("cli-demo").ok());
    auto h = fs.value()->open("f.ckpt", {.create = true, .truncate = true, .write = true});
    ASSERT_TRUE(h.ok());
    std::vector<std::byte> buf(64 * 1024, std::byte{1});
    ASSERT_TRUE(fs.value()->write(h.value(), buf, 0).ok());
    ASSERT_TRUE(fs.value()->close(h.value()).ok());
    ASSERT_TRUE(fs.value()->dump_postmortem().ok());
  }
  // The dump itself is versioned and carries the controller section.
  {
    std::string text;
    std::FILE* f = std::fopen(dump.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
    auto doc = obs::json::parse(text);
    ASSERT_TRUE(doc.has_value());
    ASSERT_NE(doc->get("schema_version"), nullptr);
    EXPECT_DOUBLE_EQ(doc->get("schema_version")->number, kSchemaVersion);
    // Every shared section appears in the postmortem too — same list the
    // stats golden test uses, so the schemas stay in lockstep.
    for (const std::string& key : shared_section_keys()) {
      EXPECT_NE(doc->get(key.c_str()), nullptr) << key;
    }
    const auto* ctl = doc->get("controller");
    ASSERT_TRUE(ctl != nullptr && ctl->is_object());
    EXPECT_FALSE(ctl->get("enabled")->boolean);
    ASSERT_NE(ctl->get("knob_plane"), nullptr);
  }

  const RunResult res = run_crfsctl("postmortem " + dump);
  ASSERT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("CRFS postmortem"), std::string::npos);
  EXPECT_NE(res.output.find("OPEN EPOCH id=1 label=cli-demo bytes=65536"),
            std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("SPAN"), std::string::npos);  // trace tail rendered
}

TEST(CrfsctlCli, PostmortemRejectsMissingOrForeignFiles) {
  const std::string dir = fresh_dir("pmbad");
  EXPECT_EQ(run_crfsctl("postmortem " + dir + "/nope.json").exit_code, 2);

  const std::string garbage = dir + "/garbage.json";
  {
    std::FILE* f = std::fopen(garbage.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"not_a_postmortem\":true}", f);
    std::fclose(f);
  }
  const RunResult res = run_crfsctl("postmortem " + garbage);
  EXPECT_EQ(res.exit_code, 2);
  EXPECT_NE(res.output.find("not a CRFS postmortem"), std::string::npos);

  const std::string unparseable = dir + "/broken.json";
  {
    std::FILE* f = std::fopen(unparseable.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"crfs_postmortem\":", f);
    std::fclose(f);
  }
  EXPECT_EQ(run_crfsctl("postmortem " + unparseable).exit_code, 2);
}

TEST(CrfsctlCli, KnobsPrintsTheRuntimeKnobTable) {
  const std::string dir = fresh_dir("knobs");
  const RunResult table = run_crfsctl("knobs " + dir);
  ASSERT_EQ(table.exit_code, 0) << table.output;
  EXPECT_NE(table.output.find("generation=0"), std::string::npos);
  EXPECT_NE(table.output.find("pool_chunks"), std::string::npos);
  EXPECT_NE(table.output.find("uring_depth"), std::string::npos);
  EXPECT_NE(table.output.find("journal_fsync_ms"), std::string::npos);
  EXPECT_NE(table.output.find("drain_mbps"), std::string::npos);

  const RunResult res = run_crfsctl("knobs " + dir + " --json");
  ASSERT_EQ(res.exit_code, 0) << res.output;
  auto parsed = obs::json::parse(res.output);
  ASSERT_TRUE(parsed.has_value()) << res.output;
  EXPECT_DOUBLE_EQ(parsed->get("generation")->number, 0.0);
  const auto* knobs = parsed->get("knobs");
  ASSERT_TRUE(knobs != nullptr && knobs->is_array());
  EXPECT_EQ(knobs->array->size(), 12u);
  const std::vector<std::string> knob_keys = {"max", "min", "name", "unit", "value"};
  for (const auto& k : *knobs->array) EXPECT_EQ(object_keys(k), knob_keys);
}

TEST(CrfsctlCli, TuneAppliesTokensAndAuditsCtlfileDecisions) {
  const std::string dir = fresh_dir("tune");
  const RunResult res = run_crfsctl("tune " + dir + " pool_chunks=8,io_batch=2 --json");
  ASSERT_EQ(res.exit_code, 0) << res.output;
  auto parsed = obs::json::parse(res.output);
  ASSERT_TRUE(parsed.has_value()) << res.output;
  ASSERT_TRUE(parsed->is_array());
  ASSERT_EQ(parsed->array->size(), 2u);
  EXPECT_EQ((*parsed->array)[0].get("source")->string, "ctlfile");
  EXPECT_EQ((*parsed->array)[0].get("knob")->string, "pool_chunks");
  EXPECT_EQ((*parsed->array)[0].get("outcome")->string, "applied");
  EXPECT_DOUBLE_EQ((*parsed->array)[0].get("to")->number, 8.0);
  EXPECT_EQ((*parsed->array)[1].get("knob")->string, "io_batch");

  // A rejected token names itself in the error and fails the command.
  const RunResult bad = run_crfsctl("tune " + dir + " warp_factor=9");
  EXPECT_NE(bad.exit_code, 0);
  EXPECT_NE(bad.output.find("\"warp_factor=9\""), std::string::npos) << bad.output;
  EXPECT_NE(bad.output.find("unknown knob"), std::string::npos);
}

TEST(CrfsctlCli, ControllerRunsTheLoopAndEmitsItsJson) {
  const RunResult res = run_crfsctl("controller " + fresh_dir("ctl") + " --json");
  ASSERT_EQ(res.exit_code, 0) << res.output;
  auto parsed = obs::json::parse(res.output);
  ASSERT_TRUE(parsed.has_value()) << res.output;
  EXPECT_TRUE(parsed->get("enabled")->boolean);
  EXPECT_GT(parsed->get("ticks")->number, 0.0);
  ASSERT_NE(parsed->get("knob_plane"), nullptr);
  ASSERT_NE(parsed->get("decisions"), nullptr);
  EXPECT_TRUE(parsed->get("decisions")->is_array());

  const RunResult human = run_crfsctl("controller " + fresh_dir("ctlh"));
  ASSERT_EQ(human.exit_code, 0) << human.output;
  EXPECT_NE(human.output.find("crfsctl controller:"), std::string::npos);
  EXPECT_NE(human.output.find("ticks="), std::string::npos);
}

TEST(CrfsctlCli, BadMountOptionFailsCleanly) {
  const RunResult res = run_crfsctl("prom " + fresh_dir("bad") + " sample_ms=banana");
  EXPECT_EQ(res.exit_code, 1);  // argument error, not unreachable/malformed
  EXPECT_NE(res.output.find("error"), std::string::npos);
}

// Exit-code contract: 3 = mount unreachable, 2 = malformed document,
// 1 = bad arguments, 64 = usage. Scripts branch on these, so each class
// must stay distinct.
TEST(CrfsctlCli, ExitCodesDistinguishFailureClasses) {
  const std::string missing = ::testing::TempDir() + "crfsctl_cli_no_such_dir_xyz";
  std::filesystem::remove_all(missing);
  EXPECT_EQ(run_crfsctl("stats " + missing + " --json").exit_code, 3);
  EXPECT_EQ(run_crfsctl("knobs " + missing).exit_code, 3);
  EXPECT_EQ(run_crfsctl("report " + missing).exit_code, 3);
  EXPECT_EQ(run_crfsctl("slow " + missing).exit_code, 3);
  // Malformed document (the postmortem parser) stays 2 — see
  // PostmortemRejectsMissingOrForeignFiles.
  EXPECT_EQ(run_crfsctl("nonsense-subcommand").exit_code, 64);
  EXPECT_EQ(run_crfsctl("stats").exit_code, 64);
}

// `crfsctl slow --inject-slow` must always produce exemplars: the
// throttled backend makes every chunk pwrite tens of ms while the armed
// threshold is 5 ms. This is the acceptance check that an injected slow
// pwrite yields a causal chain covering copy-in -> durable.
TEST(CrfsctlCli, SlowInjectCapturesExemplarsWithFullChain) {
  const RunResult res = run_crfsctl("slow " + fresh_dir("slow") +
                                    " chunk=1M,pool=4M --inject-slow=64 --json");
  ASSERT_EQ(res.exit_code, 0) << res.output;
  auto parsed = obs::json::parse(res.output);
  ASSERT_TRUE(parsed.has_value()) << res.output;

  const std::vector<std::string> expected_store = {"capacity", "captured",
                                                   "exemplars", "threshold_ms"};
  EXPECT_EQ(object_keys(*parsed), expected_store);
  EXPECT_DOUBLE_EQ(parsed->get("threshold_ms")->number, 5.0);
  const auto* exemplars = parsed->get("exemplars");
  ASSERT_TRUE(exemplars != nullptr && exemplars->is_array());
  ASSERT_GT(exemplars->array->size(), 0u) << res.output;

  const std::vector<std::string> expected_ex = {
      "born_ns",      "dequeue_ns",   "device_ns",        "durable_ns",
      "engine",       "enqueue_ns",   "fill_ns",          "free_chunks",
      "kind",         "knob_generation", "len",           "offset",
      "path",         "pool_stall_ns", "queue_depth",     "queue_ns",
      "submit_ns",    "submit_wait_ns", "total_lag_ns",   "trace_id"};
  bool saw_write = false;
  bool saw_read = false;
  for (const auto& ex : *exemplars->array) {
    EXPECT_EQ(object_keys(ex), expected_ex);
    // The injected throttle is what made it slow: device dominates.
    EXPECT_GE(ex.get("device_ns")->number, 5e6);
    if (ex.get("kind")->string == "read") {
      // Restore reads have no copy-in chain: the whole duration is the
      // blocking backend read.
      saw_read = true;
      EXPECT_DOUBLE_EQ(ex.get("born_ns")->number, 0.0);
      EXPECT_DOUBLE_EQ(ex.get("device_ns")->number, ex.get("total_lag_ns")->number);
      continue;
    }
    saw_write = true;
    EXPECT_EQ(ex.get("kind")->string, "write");
    // The causal chain covers copy-in -> durable with monotone stamps...
    EXPECT_GT(ex.get("trace_id")->number, 0.0);
    EXPECT_GT(ex.get("born_ns")->number, 0.0);
    EXPECT_GE(ex.get("enqueue_ns")->number, ex.get("born_ns")->number);
    EXPECT_GE(ex.get("dequeue_ns")->number, ex.get("enqueue_ns")->number);
    EXPECT_GE(ex.get("submit_ns")->number, ex.get("dequeue_ns")->number);
    EXPECT_GT(ex.get("durable_ns")->number, ex.get("submit_ns")->number);
    // ...and the disjoint stages reassemble the total lag.
    const double stages = ex.get("fill_ns")->number + ex.get("queue_ns")->number +
                          ex.get("submit_wait_ns")->number +
                          ex.get("device_ns")->number;
    EXPECT_NEAR(stages, ex.get("total_lag_ns")->number,
                ex.get("total_lag_ns")->number * 0.01 + 1000);
  }
  EXPECT_TRUE(saw_write) << res.output;
  EXPECT_TRUE(saw_read) << res.output;

  // The human rendering carries greppable SLOW lines and the chain table.
  const RunResult human =
      run_crfsctl("slow " + fresh_dir("slowh") + " chunk=1M,pool=4M --inject-slow=64");
  ASSERT_EQ(human.exit_code, 0) << human.output;
  EXPECT_NE(human.output.find("SLOW trace_id="), std::string::npos) << human.output;
  EXPECT_NE(human.output.find("kind=write"), std::string::npos) << human.output;
  EXPECT_NE(human.output.find("kind=read"), std::string::npos) << human.output;
  EXPECT_NE(human.output.find("Device"), std::string::npos);
}

TEST(CrfsctlCli, SlowWithoutInjectionReportsEmptyStoreCleanly) {
  // Default threshold is 1 s; a RAM-backed temp dir never crosses it.
  const RunResult res = run_crfsctl("slow " + fresh_dir("slowempty"));
  ASSERT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("no slow exemplars captured"), std::string::npos)
      << res.output;
}

TEST(CrfsctlCli, ReportPrintsCriticalPathStageLines) {
  const RunResult res = run_crfsctl("report " + fresh_dir("stages"));
  ASSERT_EQ(res.exit_code, 0) << res.output;
  // One STAGES line per epoch with every stage field present.
  EXPECT_NE(res.output.find("STAGES id=1 copy_ns="), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("STAGES id=2 copy_ns="), std::string::npos);
  for (const char* field : {"pool_stall_ns=", "queue_ns=", "submit_wait_ns=",
                            "device_ns=", "barrier_ns="}) {
    EXPECT_NE(res.output.find(field), std::string::npos) << field;
  }
  EXPECT_NE(res.output.find("critical path"), std::string::npos);
}

TEST(CrfsctlCli, TraceFiltersNarrowTheExportedDocument) {
  const std::string dir = fresh_dir("tracef");
  const auto span_count = [&](const std::string& args, const std::string& out) {
    const RunResult res = run_crfsctl("trace " + dir + " " + out + " " + args);
    EXPECT_EQ(res.exit_code, 0) << res.output;
    std::string content;
    std::FILE* f = std::fopen(out.c_str(), "r");
    if (f == nullptr) return static_cast<std::size_t>(0);
    char buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
    std::fclose(f);
    auto parsed = obs::json::parse(content);
    if (!parsed.has_value() || parsed->get("traceEvents") == nullptr) {
      return static_cast<std::size_t>(0);
    }
    return parsed->get("traceEvents")->array->size();
  };
  const std::size_t all = span_count("", dir + "/all.json");
  ASSERT_GT(all, 0u);
  // One lane is a strict subset of the whole capture.
  const std::size_t lane = span_count("--thread=0", dir + "/lane.json");
  EXPECT_GT(lane, 0u);
  EXPECT_LT(lane, all);
  // A file-substring filter keeps only tagged spans (IO-side stages carry
  // the interned path; rank3 excludes rank0..2's spans).
  const std::size_t file = span_count("--file=rank3", dir + "/file.json");
  EXPECT_GT(file, 0u);
  EXPECT_LT(file, all);
  // A generous trailing window keeps everything from its own run. Span
  // counts vary slightly across independent runs (pool_wait spans are
  // timing-dependent), so compare with a tolerance rather than exactly.
  const std::size_t recent = span_count("--since-ms=600000", dir + "/recent.json");
  EXPECT_GT(recent, 0u);
  EXPECT_NEAR(static_cast<double>(recent), static_cast<double>(all),
              static_cast<double>(all) * 0.05);
  // A bad filter value is an argument error.
  EXPECT_EQ(run_crfsctl("trace " + dir + " " + dir + "/bad.json --since-ms=banana")
                .exit_code,
            1);
}

// The mount options shared by both journal CLI tests: journal under the
// mount's .crfs/journal dir plus an SLO so tight (1ms lag budget) that the
// synthetic workload is guaranteed to breach it.
std::string journal_mount_opts(const std::string& dir) {
  return "journal=" + dir +
         "/.crfs/journal,sample_ms=5,slo_lag_ms=1,slo_stall_pct=1,"
         "slo_short_s=1,slo_long_s=5";
}

TEST(CrfsctlCli, TimelineReadsJournalAfterUnmount) {
  const std::string dir = fresh_dir("timeline");
  // Produce a journal, then let the writing process exit entirely.
  const RunResult mk = run_crfsctl("stats " + dir + " " + journal_mount_opts(dir) + " --json");
  ASSERT_EQ(mk.exit_code, 0) << mk.output;

  const RunResult res = run_crfsctl("timeline " + dir + " --json");
  ASSERT_EQ(res.exit_code, 0) << res.output;
  auto parsed = obs::json::parse(res.output);
  ASSERT_TRUE(parsed.has_value()) << res.output;
  EXPECT_DOUBLE_EQ(parsed->get("crfs_timeline")->number, 1.0);
  EXPECT_GT(parsed->get("samples")->number, 0.0);
  const auto* buckets = parsed->get("buckets");
  ASSERT_TRUE(buckets != nullptr && buckets->is_array());
  EXPECT_FALSE(buckets->array->empty());
  // The meta frame survives the writer and carries the SLO config.
  const auto* meta = parsed->get("meta");
  ASSERT_TRUE(meta != nullptr && meta->is_object());
  EXPECT_NE(meta->get("slo"), nullptr);

  // The human rendering is greppable bucket-per-line.
  const RunResult human = run_crfsctl("timeline " + dir);
  ASSERT_EQ(human.exit_code, 0) << human.output;
  EXPECT_NE(human.output.find("BUCKET t="), std::string::npos);
  EXPECT_NE(human.output.find("pwrite_bytes="), std::string::npos);

  // --since far in the future empties the buckets but still succeeds.
  const RunResult since = run_crfsctl("timeline " + dir + " --since=999999 --json");
  ASSERT_EQ(since.exit_code, 0) << since.output;
  auto sp = obs::json::parse(since.output);
  ASSERT_TRUE(sp.has_value());
  EXPECT_TRUE(sp->get("buckets")->array->empty());

  // No journal on disk is a malformed-document failure, not a crash.
  EXPECT_EQ(run_crfsctl("timeline " + fresh_dir("timelinebad")).exit_code, 2);
  EXPECT_EQ(run_crfsctl("timeline " + dir + " --bogus-flag").exit_code, 1);
}

TEST(CrfsctlCli, SloReplaysJournalBurnRates) {
  const std::string dir = fresh_dir("sloreplay");
  const RunResult mk = run_crfsctl("stats " + dir + " " + journal_mount_opts(dir) + " --json");
  ASSERT_EQ(mk.exit_code, 0) << mk.output;
  // The live run itself must have breached the 1ms lag objective.
  auto live = obs::json::parse(mk.output);
  ASSERT_TRUE(live.has_value()) << mk.output;
  const auto* live_slo = live->get("slo");
  ASSERT_TRUE(live_slo != nullptr && live_slo->is_object());
  EXPECT_TRUE(live_slo->get("enabled")->boolean);

  // Offline replay of the journal reconstructs the burn-rate state.
  const RunResult res = run_crfsctl("slo " + dir + " --json");
  ASSERT_EQ(res.exit_code, 0) << res.output;
  auto parsed = obs::json::parse(res.output);
  ASSERT_TRUE(parsed.has_value()) << res.output;
  EXPECT_TRUE(parsed->get("enabled")->boolean);
  EXPECT_GE(parsed->get("breaches")->number, 1.0);
  const auto* objectives = parsed->get("objectives");
  ASSERT_TRUE(objectives != nullptr && objectives->is_array());
  EXPECT_GE(objectives->array->size(), 2u);

  const RunResult human = run_crfsctl("slo " + dir);
  ASSERT_EQ(human.exit_code, 0) << human.output;
  EXPECT_NE(human.output.find("SLO name=lag"), std::string::npos);
  EXPECT_NE(human.output.find("slo_breach"), std::string::npos);

  // A directory without a journal fails as a malformed document.
  EXPECT_EQ(run_crfsctl("slo " + fresh_dir("slobad")).exit_code, 2);
}

}  // namespace
}  // namespace crfs
