// Tests for the trace module: write recorder profiles, cumulative
// curves, and block-trace seek analysis.
#include <gtest/gtest.h>

#include "common/units.h"
#include "trace/block_trace.h"
#include "trace/write_recorder.h"

namespace crfs::trace {
namespace {

TEST(WriteRecorder, AccumulatesTotals) {
  WriteRecorder r(3);
  r.record(100, 0.0, 0.001);
  r.record(4096, 0.002, 0.010);
  r.record(1 * MiB, 0.02, 0.200);
  EXPECT_EQ(r.process_id(), 3);
  EXPECT_EQ(r.count(), 3u);
  EXPECT_EQ(r.total_bytes(), 100 + 4096 + 1 * MiB);
  EXPECT_NEAR(r.total_write_seconds(), 0.211, 1e-12);
}

TEST(WriteRecorder, HistogramBucketsOps) {
  WriteRecorder r;
  r.record(10, 0, 0.1);     // 0-64
  r.record(8000, 0, 0.2);   // 4K-16K
  r.record(2 * MiB, 0, 0.3);
  const auto h = r.histogram();
  EXPECT_EQ(h.buckets()[0].ops, 1u);
  EXPECT_EQ(h.buckets()[4].ops, 1u);
  EXPECT_EQ(h.buckets()[9].ops, 1u);
  EXPECT_NEAR(h.total_seconds(), 0.6, 1e-12);
}

TEST(WriteRecorder, CumulativeCurveMonotone) {
  WriteRecorder r;
  r.record(64, 0, 0.5);
  r.record(4096, 0, 0.25);
  r.record(8, 0, 0.25);
  const auto curve = r.cumulative_time_by_size();
  ASSERT_EQ(curve.size(), 3u);
  // Sorted by size: 8, 64, 4096.
  EXPECT_EQ(curve[0].first, 8.0);
  EXPECT_EQ(curve[1].first, 64.0);
  EXPECT_EQ(curve[2].first, 4096.0);
  EXPECT_LE(curve[0].second, curve[1].second);
  EXPECT_LE(curve[1].second, curve[2].second);
  EXPECT_NEAR(curve[2].second, 1.0, 1e-12);  // total time
}

TEST(WriteProfile, MergesProcessesAndComputesSpread) {
  WriteProfile profile;
  WriteRecorder fast(0), slow(1);
  fast.record(4096, 0, 1.0);
  slow.record(4096, 0, 2.0);
  profile.add(fast);
  profile.add(slow);
  EXPECT_EQ(profile.processes(), 2u);
  EXPECT_EQ(profile.histogram().total_ops(), 2u);
  const auto times = profile.completion_times();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_NEAR(profile.completion_spread(), 2.0, 1e-12);
}

TEST(WriteProfile, SpreadOfEmptyProfileIsOne) {
  WriteProfile profile;
  EXPECT_EQ(profile.completion_spread(), 1.0);
}

// ------------------------------------------------------------ BlockTrace

TEST(BlockTrace, FullySequentialHasNoSeeks) {
  BlockTrace t;
  std::uint64_t off = 0;
  for (int i = 0; i < 100; ++i) {
    t.record(i * 0.001, off, 4 * MiB);
    off += 4 * MiB;
  }
  const auto s = t.summarize();
  EXPECT_EQ(s.requests, 100u);
  EXPECT_EQ(s.seeks, 0u);
  EXPECT_DOUBLE_EQ(s.sequential_fraction, 1.0);
  EXPECT_EQ(s.bytes, 400 * MiB);
}

TEST(BlockTrace, InterleavedStreamsSeekEveryRequest) {
  BlockTrace t;
  // Two files far apart, strictly alternating 4K appends: every request
  // after the first is a seek — the paper's native-ext3 pathology.
  std::uint64_t a = 0, b = 10 * GiB;
  for (int i = 0; i < 50; ++i) {
    t.record(i * 0.002, a, 4096);
    a += 4096;
    t.record(i * 0.002 + 0.001, b, 4096);
    b += 4096;
  }
  const auto s = t.summarize();
  EXPECT_EQ(s.requests, 100u);
  EXPECT_EQ(s.seeks, 99u);
  EXPECT_NEAR(s.sequential_fraction, 0.0, 1e-9);
  EXPECT_GT(s.seek_distance_bytes, 1e9);
}

TEST(BlockTrace, EmptyTraceSummary) {
  BlockTrace t;
  const auto s = t.summarize();
  EXPECT_EQ(s.requests, 0u);
  EXPECT_TRUE(t.empty());
}

TEST(BlockTrace, ScatterPointsInMegabytes) {
  BlockTrace t;
  t.record(1.5, 8 * MiB, 4096);
  const auto pts = t.scatter_points();
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts[0].first, 1.5);
  EXPECT_DOUBLE_EQ(pts[0].second, 8.0);
}

TEST(BlockTrace, SummaryDuration) {
  BlockTrace t;
  t.record(1.0, 0, 4096);
  t.record(3.5, 4096, 4096);
  EXPECT_DOUBLE_EQ(t.summarize().duration, 2.5);
}

}  // namespace
}  // namespace crfs::trace
