// Tests for the BLCR-analogue checkpoint engine: image synthesis, write
// plan vs actual writes, Table I distribution conformance, and
// checkpoint/restart round trips (direct and through CRFS).
#include <gtest/gtest.h>

#include "backend/mem_backend.h"
#include "blcr/checkpoint_writer.h"
#include "blcr/process_image.h"
#include "blcr/restart_reader.h"
#include "blcr/sinks.h"
#include "common/units.h"
#include "crfs/crfs.h"
#include "crfs/file.h"
#include "crfs/fuse_shim.h"

namespace crfs::blcr {
namespace {

// In-memory sink/source pair for format round trips.
class VectorSink final : public ByteSink {
 public:
  Status write(std::span<const std::byte> data) override {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
    writes_ += 1;
    return {};
  }
  std::vector<std::byte> bytes_;
  std::uint64_t writes_ = 0;
};

class VectorSource final : public ByteSource {
 public:
  explicit VectorSource(std::vector<std::byte> bytes) : bytes_(std::move(bytes)) {}
  Result<std::size_t> read(std::span<std::byte> data) override {
    const std::size_t n = std::min(data.size(), bytes_.size() - pos_);
    std::memcpy(data.data(), bytes_.data() + pos_, n);
    pos_ += n;
    return n;
  }
  std::vector<std::byte> bytes_;
  std::size_t pos_ = 0;
};

TEST(ProcessImage, SizesLandNearTarget) {
  for (const std::uint64_t target : {7 * MiB, 23 * MiB, 107 * MiB}) {
    const auto img = ProcessImage::synthesize(1, target, 42);
    EXPECT_NEAR(static_cast<double>(img.content_bytes()),
                static_cast<double>(target), static_cast<double>(target) * 0.02)
        << "target " << target;
  }
}

TEST(ProcessImage, DeterministicInSeed) {
  const auto a = ProcessImage::synthesize(3, 10 * MiB, 7);
  const auto b = ProcessImage::synthesize(3, 10 * MiB, 7);
  ASSERT_EQ(a.vmas.size(), b.vmas.size());
  for (std::size_t i = 0; i < a.vmas.size(); ++i) {
    EXPECT_EQ(a.vmas[i].start, b.vmas[i].start);
    EXPECT_EQ(a.vmas[i].length, b.vmas[i].length);
    EXPECT_EQ(a.vmas[i].content_seed, b.vmas[i].content_seed);
  }
  const auto c = ProcessImage::synthesize(3, 10 * MiB, 8);
  EXPECT_NE(a.vmas[0].content_seed, c.vmas[0].content_seed);
}

TEST(ProcessImage, HasExpectedVmaPopulation) {
  const auto img = ProcessImage::synthesize(1, 23 * MiB, 11);
  int libs = 0, heaps = 0, stacks = 0;
  for (const auto& v : img.vmas) {
    if (v.type == VmaType::kLibrary) ++libs;
    if (v.type == VmaType::kHeap) ++heaps;
    if (v.type == VmaType::kStack) ++stacks;
  }
  EXPECT_GE(libs, 50) << "library mappings drive the medium-write buckets";
  EXPECT_GE(heaps, 1);
  EXPECT_EQ(stacks, 1);
}

TEST(ProcessImage, PayloadDeterministicAndCrcStable) {
  const auto img = ProcessImage::synthesize(1, 1 * MiB, 5);
  std::vector<std::byte> a, b;
  const auto crc_a = generate_vma_payload(img.vmas[0], a);
  const auto crc_b = generate_vma_payload(img.vmas[0], b);
  EXPECT_EQ(crc_a, crc_b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), img.vmas[0].length);
}

TEST(CheckpointWriter, PlanMatchesActualWriteSizes) {
  const auto img = ProcessImage::synthesize(9, 5 * MiB, 123);
  const auto plan = CheckpointWriter::plan(img);

  std::vector<std::uint64_t> actual;
  FnSink sink([&](std::span<const std::byte> data) -> Status {
    actual.push_back(data.size());
    return {};
  });
  auto crc = CheckpointWriter::write_image(img, sink);
  ASSERT_TRUE(crc.ok());

  ASSERT_EQ(plan.size(), actual.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].size, actual[i]) << "write op " << i;
  }
}

TEST(CheckpointWriter, TotalBytesMatchImagePlusMetadata) {
  const auto img = ProcessImage::synthesize(2, 8 * MiB, 77);
  VectorSink sink;
  ASSERT_TRUE(CheckpointWriter::write_image(img, sink).ok());
  EXPECT_GT(sink.bytes_.size(), img.content_bytes());
  // Metadata overhead is tiny (headers only).
  EXPECT_LT(sink.bytes_.size(), img.content_bytes() + 64 * KiB);
}

// The headline §III reproduction: for the paper's reference case (a
// ~23 MB image, as in LU.C.64), the generated write stream must match
// Table I's distribution: ~51% tiny ops, ~37% ops in 4K-16K carrying
// ~11% of data, and >80% of data in the >=256K buckets.
TEST(CheckpointWriter, WritePatternMatchesTableOne) {
  WriteSizeHistogram hist;
  // Aggregate over 8 processes as the paper does (8 per node).
  for (std::uint32_t pid = 0; pid < 8; ++pid) {
    const auto img = ProcessImage::synthesize(pid, 23 * MiB, 1000 + pid);
    for (const auto& op : CheckpointWriter::plan(img)) {
      hist.record(op.size, 0.0);
    }
  }
  const double ops = static_cast<double>(hist.total_ops());
  const double bytes = static_cast<double>(hist.total_bytes());
  auto ops_pct = [&](int bucket) {
    return 100.0 * static_cast<double>(hist.buckets()[static_cast<std::size_t>(bucket)].ops) / ops;
  };
  auto data_pct = [&](int bucket) {
    return 100.0 * static_cast<double>(hist.buckets()[static_cast<std::size_t>(bucket)].bytes) / bytes;
  };

  // Paper: ~7800 write() calls for 8 processes.
  EXPECT_GT(hist.total_ops(), 4000u);
  EXPECT_LT(hist.total_ops(), 14000u);

  // Bucket 0 (0-64): paper 50.86% of writes, ~0.04% of data.
  EXPECT_NEAR(ops_pct(0), 50.9, 8.0);
  EXPECT_LT(data_pct(0), 0.5);

  // Bucket 4 (4K-16K): paper 36.49% of writes, 11.36% of data.
  EXPECT_NEAR(ops_pct(4), 36.5, 8.0);
  EXPECT_NEAR(data_pct(4), 11.4, 5.0);

  // Buckets 7-9 (>=256K): paper carries 82.5% of the data in <1.2% of ops.
  const double big_data = data_pct(7) + data_pct(8) + data_pct(9);
  const double big_ops = ops_pct(7) + ops_pct(8) + ops_pct(9);
  EXPECT_NEAR(big_data, 82.5, 8.0);
  EXPECT_LT(big_ops, 3.0);

  // Bucket 9 (>1M) dominates the data as in the paper (61.21%).
  EXPECT_NEAR(data_pct(9), 61.2, 12.0);
}

TEST(RestartReader, RoundTripInMemory) {
  const auto img = ProcessImage::synthesize(17, 6 * MiB, 55);
  VectorSink sink;
  auto crc = CheckpointWriter::write_image(img, sink);
  ASSERT_TRUE(crc.ok());

  VectorSource source(std::move(sink.bytes_));
  auto restored = RestartReader::read_image(source);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(restored.value().pid, 17u);
  EXPECT_EQ(restored.value().vma_count, img.vmas.size());
  EXPECT_EQ(restored.value().image_bytes, img.content_bytes());
  EXPECT_EQ(restored.value().payload_crc, crc.value());
  ASSERT_EQ(restored.value().vmas.size(), img.vmas.size());
  for (std::size_t i = 0; i < img.vmas.size(); ++i) {
    EXPECT_EQ(restored.value().vmas[i].start, img.vmas[i].start);
    EXPECT_EQ(restored.value().vmas[i].type, img.vmas[i].type);
  }
}

TEST(RestartReader, DetectsCorruption) {
  const auto img = ProcessImage::synthesize(1, 2 * MiB, 66);
  VectorSink sink;
  ASSERT_TRUE(CheckpointWriter::write_image(img, sink).ok());

  // Flip one payload byte somewhere in the middle.
  auto corrupted = sink.bytes_;
  corrupted[corrupted.size() / 2] ^= std::byte{0x01};
  VectorSource source(std::move(corrupted));
  auto restored = RestartReader::read_image(source);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.error().context.find("CRC"), std::string::npos);
}

TEST(RestartReader, DetectsBadMagic) {
  std::vector<std::byte> junk(64, std::byte{0x77});
  VectorSource source(std::move(junk));
  auto restored = RestartReader::read_image(source);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.error().context.find("magic"), std::string::npos);
}

TEST(RestartReader, DetectsTruncation) {
  const auto img = ProcessImage::synthesize(1, 1 * MiB, 66);
  VectorSink sink;
  ASSERT_TRUE(CheckpointWriter::write_image(img, sink).ok());
  auto truncated = sink.bytes_;
  truncated.resize(truncated.size() / 2);
  VectorSource source(std::move(truncated));
  EXPECT_FALSE(RestartReader::read_image(source).ok());
}

// -------- the full paper cycle: checkpoint through CRFS, restart from
// -------- the backend WITHOUT CRFS mounted (paper §V-F).

TEST(CheckpointCycle, ThroughCrfsRestartFromBackendDirectly) {
  auto mem = std::make_shared<MemBackend>();
  const auto img = ProcessImage::synthesize(4, 9 * MiB, 99);
  std::uint64_t written_crc = 0;

  {
    auto fs = Crfs::mount(mem, Config{});  // paper defaults: 4M chunks, 16M pool
    ASSERT_TRUE(fs.ok());
    FuseShim shim(*fs.value(), FuseOptions{.big_writes = true});
    auto file = File::open(shim, "rank4.ckpt", {.create = true, .truncate = true, .write = true});
    ASSERT_TRUE(file.ok());
    CrfsFileSink sink(file.value());
    auto crc = CheckpointWriter::write_image(img, sink);
    ASSERT_TRUE(crc.ok());
    written_crc = crc.value();
    ASSERT_TRUE(file.value().close().ok());
  }  // CRFS unmounted here

  // "An application can be restarted directly from the back-end
  // filesystem, without the need to mount CRFS."
  auto bf = mem->open_file("rank4.ckpt", {.create = false, .truncate = false, .write = false});
  ASSERT_TRUE(bf.ok());
  BackendSource source(*mem, bf.value());
  auto restored = RestartReader::read_image(source);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(restored.value().payload_crc, written_crc);
  EXPECT_EQ(restored.value().image_bytes, img.content_bytes());
  ASSERT_TRUE(mem->close_file(bf.value()).ok());
}

TEST(CheckpointCycle, RestartThroughCrfsAlsoWorks) {
  auto mem = std::make_shared<MemBackend>();
  const auto img = ProcessImage::synthesize(5, 3 * MiB, 101);
  auto fs = Crfs::mount(mem, Config{.chunk_size = 256 * KiB, .pool_size = 1 * MiB});
  ASSERT_TRUE(fs.ok());
  FuseShim shim(*fs.value(), FuseOptions{});

  std::uint64_t crc = 0;
  {
    auto file = File::open(shim, "r5.ckpt", {.create = true, .truncate = true, .write = true});
    ASSERT_TRUE(file.ok());
    CrfsFileSink sink(file.value());
    auto r = CheckpointWriter::write_image(img, sink);
    ASSERT_TRUE(r.ok());
    crc = r.value();
    ASSERT_TRUE(file.value().close().ok());
  }
  {
    auto file = File::open(shim, "r5.ckpt", {.create = false, .truncate = false, .write = false});
    ASSERT_TRUE(file.ok());
    CrfsFileSource source(file.value());
    auto restored = RestartReader::read_image(source);
    ASSERT_TRUE(restored.ok()) << restored.error().to_string();
    EXPECT_EQ(restored.value().payload_crc, crc);
  }
}

TEST(CheckpointWriter, RecorderCapturesEveryWrite) {
  const auto img = ProcessImage::synthesize(6, 2 * MiB, 33);
  VectorSink sink;
  trace::WriteRecorder recorder(6);
  ASSERT_TRUE(CheckpointWriter::write_image(img, sink, &recorder).ok());
  EXPECT_EQ(recorder.count(), sink.writes_);
  EXPECT_EQ(recorder.total_bytes(), sink.bytes_.size());
  // Histogram buckets cover all ops.
  EXPECT_EQ(recorder.histogram().total_ops(), recorder.count());
}

}  // namespace
}  // namespace crfs::blcr
