// Durable telemetry journal tests: writer/reader round-trip with CRC
// framing, segment rotation + retention (meta frame re-written at every
// segment head), torn-tail recovery after truncation and bit corruption,
// a fork+SIGKILL crash test proving the offline reader recovers every
// fully-written frame, DES determinism (two replays of the same throttled
// scenario produce byte-identical journals and slo_json), and a real-mount
// end-to-end SLO breach against a ThrottledBackend that must be visible in
// crfs.slo.* metrics, events, stats_json, the postmortem, and the journal.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "backend/mem_backend.h"
#include "backend/wrappers.h"
#include "common/units.h"
#include "crfs/crfs.h"
#include "crfs/fuse_shim.h"
#include "obs/json_lite.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/slo.h"
#include "sim/crfs_sim.h"
#include "sim/engine.h"
#include "sim/throttled_sim.h"

namespace crfs {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "crfs_journal_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::uint64_t counter_value(const obs::Registry& reg, std::string_view name) {
  for (const auto& [n, v] : reg.snapshot().counters) {
    if (n == name) return v;
  }
  return 0;
}

std::vector<std::string> segment_paths(const std::string& dir) {
  std::vector<std::string> out;
  if (!fs::exists(dir)) return out;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("seg-", 0) == 0 && e.path().extension() == ".crfsj") {
      out.push_back(e.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::string concat_segments(const std::string& dir) {
  std::string all;
  for (const auto& p : segment_paths(dir)) all += slurp(p);
  return all;
}

// ------------------------------------------------------------- round-trip

TEST(Journal, RoundTripPreservesFramesInOrder) {
  const std::string dir = fresh_dir("roundtrip");
  obs::Registry reg;
  obs::Journal j({.dir = dir}, &reg);
  ASSERT_TRUE(j.ok()) << j.error();
  j.set_meta(R"({"mount":"test"})", 5);
  j.append(obs::FrameType::kSample, 100, R"({"seq":0})");
  j.append(obs::FrameType::kEvent, 200, R"({"rule":"x"})");
  j.append(obs::FrameType::kEpoch, 300, R"({"id":1})");
  j.append(obs::FrameType::kSlow, 400, R"({"lat":9})");
  j.flush(1'000'000'000, /*force_fsync=*/true);

  const auto r = obs::JournalReader::read_dir(dir);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.torn_tail);
  EXPECT_EQ(r.segments, 1u);
  EXPECT_EQ(r.meta_json, R"({"mount":"test"})");
  ASSERT_EQ(r.records.size(), 4u);
  EXPECT_EQ(r.records[0].type, obs::FrameType::kSample);
  EXPECT_EQ(r.records[0].ts_ns, 100u);
  EXPECT_EQ(r.records[0].payload, R"({"seq":0})");
  EXPECT_EQ(r.records[1].type, obs::FrameType::kEvent);
  EXPECT_EQ(r.records[2].type, obs::FrameType::kEpoch);
  EXPECT_EQ(r.records[3].type, obs::FrameType::kSlow);
  EXPECT_EQ(r.records[3].seq, r.records[0].seq + 3);

  // Registry mirror: 4 appends + 1 meta, at least one fsync, no errors.
  EXPECT_EQ(counter_value(reg, "crfs.journal.appends"), j.appends());
  EXPECT_GE(counter_value(reg, "crfs.journal.fsyncs"), 1u);
  EXPECT_EQ(counter_value(reg, "crfs.journal.errors"), 0u);
  EXPECT_GT(counter_value(reg, "crfs.journal.bytes"), 0u);
}

TEST(Journal, ReadDirOnMissingOrEmptyDirFails) {
  const auto missing = obs::JournalReader::read_dir("/nonexistent/journal");
  EXPECT_FALSE(missing.ok);
  EXPECT_FALSE(missing.error.empty());
  const std::string dir = fresh_dir("empty");
  const auto empty = obs::JournalReader::read_dir(dir);
  EXPECT_FALSE(empty.ok);
}

// ------------------------------------------- rotation + retention + meta

TEST(Journal, RotationRetiresOldSegmentsAndReplantsMeta) {
  const std::string dir = fresh_dir("rotate");
  obs::Journal j({.dir = dir, .segment_bytes = 512, .max_bytes = 2048}, nullptr);
  ASSERT_TRUE(j.ok()) << j.error();
  j.set_meta(R"({"cfg":"rotate-test"})", 0);
  const std::string payload(100, 'x');
  for (std::uint64_t i = 0; i < 64; ++i) {
    j.append(obs::FrameType::kSample, i, payload);
    j.flush(i, false);
  }
  j.flush(64, true);

  EXPECT_GT(j.segments_created(), 4u);
  const auto segs = segment_paths(dir);
  ASSERT_GE(segs.size(), 2u);
  // Retention unlinked the oldest: segment 0 must be gone and the total
  // on-disk footprint bounded near max_bytes.
  EXPECT_EQ(fs::exists(dir + "/seg-00000000.crfsj"), false);
  std::size_t total = 0;
  for (const auto& p : segs) total += fs::file_size(p);
  EXPECT_LE(total, 2048u + 512u + 256u);

  // Every surviving segment starts with a kMeta frame (magic at offset 0,
  // FrameType u16 at offset 6 — see the header layout in journal.h).
  for (const auto& p : segs) {
    const std::string bytes = slurp(p);
    ASSERT_GE(bytes.size(), obs::kJournalHeaderBytes);
    std::uint32_t magic = 0;
    std::memcpy(&magic, bytes.data(), sizeof(magic));
    EXPECT_EQ(magic, obs::kJournalMagic) << p;
    std::uint16_t type = 0;
    std::memcpy(&type, bytes.data() + 6, sizeof(type));
    EXPECT_EQ(type, static_cast<std::uint16_t>(obs::FrameType::kMeta)) << p;
  }

  // The reader still sees the meta and a contiguous suffix of samples.
  const auto r = obs::JournalReader::read_dir(dir);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.meta_json, R"({"cfg":"rotate-test"})");
  EXPECT_FALSE(r.records.empty());
  for (std::size_t k = 1; k < r.records.size(); ++k) {
    EXPECT_EQ(r.records[k].ts_ns, r.records[k - 1].ts_ns + 1);
  }
}

// ------------------------------------------------------- torn-tail + CRC

TEST(Journal, TruncatedTailIsReportedTornNotFatal) {
  const std::string dir = fresh_dir("torn");
  obs::Journal j({.dir = dir}, nullptr);
  ASSERT_TRUE(j.ok()) << j.error();
  j.set_meta("{}", 0);
  for (std::uint64_t i = 0; i < 10; ++i) {
    j.append(obs::FrameType::kSample, i, "{\"i\":" + std::to_string(i) + "}");
  }
  j.flush(0, true);

  const auto segs = segment_paths(dir);
  ASSERT_EQ(segs.size(), 1u);
  // Chop into the last frame: everything before it must still decode.
  fs::resize_file(segs[0], fs::file_size(segs[0]) - 3);

  const auto r = obs::JournalReader::read_dir(dir);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.torn_tail);
  EXPECT_GT(r.torn_bytes, 0u);
  ASSERT_EQ(r.records.size(), 9u);
  EXPECT_EQ(r.records.back().payload, "{\"i\":8}");
}

TEST(Journal, CrcRejectsCorruptedFrame) {
  const std::string dir = fresh_dir("crc");
  obs::Journal j({.dir = dir}, nullptr);
  ASSERT_TRUE(j.ok()) << j.error();
  j.set_meta("{}", 0);
  for (std::uint64_t i = 0; i < 10; ++i) {
    j.append(obs::FrameType::kSample, i, "{\"i\":" + std::to_string(i) + "}");
  }
  j.flush(0, true);

  const auto segs = segment_paths(dir);
  ASSERT_EQ(segs.size(), 1u);
  // Flip a payload byte inside the final frame; its CRC must reject it.
  {
    std::fstream f(segs[0], std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-2, std::ios::end);
    char c = 0;
    f.seekg(-2, std::ios::end);
    f.get(c);
    f.seekp(-2, std::ios::end);
    f.put(static_cast<char>(c ^ 0x5A));
  }

  const auto r = obs::JournalReader::read_dir(dir);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.torn_tail);
  ASSERT_EQ(r.records.size(), 9u);
  EXPECT_EQ(r.records.back().payload, "{\"i\":8}");
}

// -------------------------------------------------------- SIGKILL crash
// Named JournalCrash so scripts/check_tsan.sh can exclude the fork from
// the TSan pass (fork + instrumented runtime don't mix).

TEST(JournalCrash, SigkilledWriterLeavesRecoverablePrefix) {
  const std::string dir = fresh_dir("sigkill");
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: append+flush numbered frames forever (one big segment so the
    // recovered prefix is the full history, not a retention suffix).
    obs::Journal j({.dir = dir, .segment_bytes = 64u << 20, .max_bytes = 128u << 20},
                   nullptr);
    if (!j.ok()) _exit(1);
    j.set_meta(R"({"writer":"doomed"})", 0);
    for (std::uint64_t i = 0;; ++i) {
      j.append(obs::FrameType::kSample, i, "{\"i\":" + std::to_string(i) + "}");
      j.flush(i, false);
    }
    _exit(0);  // unreachable
  }

  // Parent: wait for a healthy amount of journal, then SIGKILL mid-append.
  const std::string seg0 = dir + "/seg-00000000.crfsj";
  for (int spins = 0; spins < 2000; ++spins) {
    std::error_code ec;
    if (fs::exists(seg0, ec) && fs::file_size(seg0, ec) > 64 * 1024) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));

  const auto r = obs::JournalReader::read_dir(dir);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.meta_json, R"({"writer":"doomed"})");
  ASSERT_GT(r.records.size(), 100u);
  // Every fully-written frame before the torn tail survives, in order,
  // with nothing missing: at most the one in-flight frame is lost.
  for (std::size_t k = 0; k < r.records.size(); ++k) {
    ASSERT_EQ(r.records[k].payload, "{\"i\":" + std::to_string(k) + "}");
  }
}

// -------------------------------------------------------- DES determinism

sim::Task drive_sim(sim::CrfsSimNode& node, std::uint64_t bytes) {
  co_await node.app_write(0, bytes);
  co_await node.close_file(0);
  node.stop();
}

struct SimReplay {
  std::string slo_json;
  std::string journal_bytes;
  std::uint64_t breaches = 0;
  std::uint64_t records = 0;
};

// One throttled-backend replay journaling into `dir` (cleaned first, so
// both runs embed the identical meta frame — the config string includes
// the journal path).
SimReplay run_throttled_replay(const std::string& dir) {
  fs::remove_all(dir);
  fs::create_directories(dir);
  sim::Simulation sim;
  sim::Calibration cal;
  sim::ThrottledBackendSim backend(sim);
  Config cfg;
  cfg.chunk_size = 1 * MiB;
  cfg.pool_size = 8 * MiB;
  cfg.io_threads = 2;
  cfg.sample_ms = 10;
  cfg.journal_dir = dir;
  cfg.journal_fsync_ms = 0;
  cfg.slo_lag_ms = 1;  // any real flush latency breaches this
  cfg.slo_short_s = 1;
  cfg.slo_long_s = 5;
  sim::CrfsSimNode node(sim, cal, backend, /*node=*/0, cfg, FuseOptions{}, /*ppn=*/1);

  obs::Sampler sampler(node.metrics());
  node.start();
  sim.spawn(node.sample_loop(sampler, 0.010));
  sim.spawn(drive_sim(node, 64 * MiB));
  sim.run();

  SimReplay out;
  out.slo_json = node.slo_json();
  out.breaches = counter_value(node.metrics(), "crfs.slo.breaches");
  out.journal_bytes = concat_segments(dir);
  const auto r = obs::JournalReader::read_dir(dir);
  out.records = r.ok ? r.records.size() : 0;
  return out;
}

TEST(JournalSim, ReplaysAreByteIdenticalIncludingBurnRates) {
  const std::string dir = fresh_dir("sim_det");
  const SimReplay a = run_throttled_replay(dir);
  const SimReplay b = run_throttled_replay(dir);

  // The throttled scenario must actually breach the 1ms lag budget, and
  // the virtual-time journal/burn-rate state must replay byte-for-byte.
  EXPECT_GE(a.breaches, 1u);
  EXPECT_GT(a.records, 0u);
  EXPECT_FALSE(a.journal_bytes.empty());
  EXPECT_EQ(a.breaches, b.breaches);
  EXPECT_EQ(a.slo_json, b.slo_json);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.journal_bytes, b.journal_bytes);
}

// ------------------------------------------------- real-mount breach e2e

TEST(JournalMount, ThrottledBackendDrivesVisibleSloBreach) {
  const std::string dir = fresh_dir("mount_breach");
  auto throttled = std::make_shared<ThrottledBackend>(
      std::make_shared<MemBackend>(), /*bytes_per_second=*/8.0 * MiB);
  Config cfg;
  cfg.chunk_size = 256 * KiB;
  cfg.pool_size = 2 * MiB;
  cfg.large_write_bypass = false;  // keep writes on the chunk pipeline
  cfg.sample_ms = 5;
  cfg.journal_dir = dir + "/journal";
  cfg.journal_fsync_ms = 0;
  cfg.slo_lag_ms = 1;  // 1ms durability-lag budget vs an 8 MiB/s backend
  cfg.slo_stall_pct = 1;
  cfg.slo_short_s = 1;
  cfg.slo_long_s = 5;
  auto mounted = Crfs::mount(throttled, cfg);
  ASSERT_TRUE(mounted.ok()) << mounted.error().to_string();
  auto fs_ = std::move(mounted.value());

  auto h = fs_->open("ckpt.img", {.create = true, .truncate = true, .write = true});
  ASSERT_TRUE(h.ok());
  const std::vector<std::byte> data(1 * MiB);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fs_->write(h.value(), data, static_cast<std::uint64_t>(i) * data.size()).ok());
    ASSERT_TRUE(fs_->fsync(h.value()).ok());
  }
  ASSERT_TRUE(fs_->close(h.value()).ok());
  // Let the sampler observe the (terrible) durability lags a few times.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Live surfaces: metric, event, stats_json, postmortem.
  EXPECT_GE(counter_value(fs_->metrics(), "crfs.slo.breaches"), 1u);
  bool saw_breach_event = false;
  for (const auto& ev : fs_->events()) {
    if (ev.rule == "slo_breach") saw_breach_event = true;
  }
  EXPECT_TRUE(saw_breach_event);

  const std::string stats = fs_->stats_json();
  auto doc = obs::json::parse(stats);
  ASSERT_TRUE(doc.has_value()) << stats;
  EXPECT_DOUBLE_EQ(doc->get("schema_version")->number, 3.0);
  const auto* slo = doc->get("slo");
  ASSERT_TRUE(slo != nullptr && slo->is_object()) << stats;
  EXPECT_TRUE(slo->get("enabled")->boolean);
  EXPECT_TRUE(slo->get("breached")->boolean);
  const auto* journal = doc->get("journal");
  ASSERT_TRUE(journal != nullptr && journal->is_object());
  EXPECT_TRUE(journal->get("enabled")->boolean);
  EXPECT_GT(journal->get("appends")->number, 0.0);

  auto pm = obs::json::parse(fs_->render_postmortem());
  ASSERT_TRUE(pm.has_value());
  EXPECT_NE(pm->get("slo"), nullptr);
  EXPECT_NE(pm->get("journal"), nullptr);

  // Unmount, then prove the breach survived the process via the journal.
  fs_.reset();
  const auto r = obs::JournalReader::read_dir(cfg.journal_dir);
  ASSERT_TRUE(r.ok) << r.error;
  bool journaled_breach = false;
  std::size_t samples = 0;
  for (const auto& rec : r.records) {
    if (rec.type == obs::FrameType::kSample) ++samples;
    if (rec.type == obs::FrameType::kEvent &&
        rec.payload.find("slo_breach") != std::string::npos) {
      journaled_breach = true;
    }
  }
  EXPECT_GT(samples, 0u);
  EXPECT_TRUE(journaled_breach);
  // The meta frame carries the mount config and the SLO targets.
  auto meta = obs::json::parse(r.meta_json);
  ASSERT_TRUE(meta.has_value()) << r.meta_json;
  EXPECT_NE(meta->get("slo"), nullptr);
  EXPECT_NE(meta->get("config"), nullptr);
}

}  // namespace
}  // namespace crfs
