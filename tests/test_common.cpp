// Unit tests for src/common: result, rng, units, histogram, stats,
// checksum, table renderers.
#include <gtest/gtest.h>

#include <set>

#include "common/checksum.h"
#include "common/histogram.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace crfs {
namespace {

// ---------------------------------------------------------------- Result

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Error{ENOENT, "missing"};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ENOENT);
  EXPECT_EQ(r.value_or(7), 7);
  EXPECT_NE(r.error().to_string().find("missing"), std::string::npos);
}

TEST(Status, DefaultIsSuccess) {
  Status s;
  EXPECT_TRUE(s.ok());
}

TEST(Status, CarriesError) {
  Status s = Error{EIO, "boom"};
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, EIO);
}

Status fails() { return Error{EACCES, "inner"}; }
Status propagates() {
  CRFS_RETURN_IF_ERROR(fails());
  return {};
}

TEST(Status, ReturnIfErrorMacroPropagates) {
  const Status s = propagates();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, EACCES);
}

// ------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, ChildStreamsIndependent) {
  Rng parent(7);
  Rng c0 = parent.child(0);
  Rng c1 = parent.child(1);
  EXPECT_NE(c0.next_u64(), c1.next_u64());
  // Children are reproducible.
  Rng c0_again = Rng(7).child(0);
  c0 = Rng(7).child(0);
  EXPECT_EQ(c0.next_u64(), c0_again.next_u64());
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(99);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);  // all residues hit
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng r(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng r(17);
  RunningStats st;
  for (int i = 0; i < 200000; ++i) st.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(st.mean(), 10.0, 0.05);
  EXPECT_NEAR(st.stddev(), 2.0, 0.05);
}

// ----------------------------------------------------------------- Units

TEST(Units, ParseBytesPlain) {
  EXPECT_EQ(parse_bytes("4096").value(), 4096u);
  EXPECT_EQ(parse_bytes("0").value(), 0u);
}

TEST(Units, ParseBytesSuffixes) {
  EXPECT_EQ(parse_bytes("128K").value(), 128 * KiB);
  EXPECT_EQ(parse_bytes("4M").value(), 4 * MiB);
  EXPECT_EQ(parse_bytes("1G").value(), 1 * GiB);
  EXPECT_EQ(parse_bytes("4m").value(), 4 * MiB);
  EXPECT_EQ(parse_bytes("16MiB").value(), 16 * MiB);
  EXPECT_EQ(parse_bytes("2KB").value(), 2 * KiB);
}

TEST(Units, ParseBytesRejectsGarbage) {
  EXPECT_FALSE(parse_bytes("").has_value());
  EXPECT_FALSE(parse_bytes("abc").has_value());
  EXPECT_FALSE(parse_bytes("12Q").has_value());
  EXPECT_FALSE(parse_bytes("4M4").has_value());
  EXPECT_FALSE(parse_bytes("99999999999999999999999").has_value());
}

TEST(Units, FormatBytesRoundTripsMagnitude) {
  EXPECT_EQ(format_bytes(512), "512");
  EXPECT_EQ(format_bytes(4 * KiB), "4.0K");
  EXPECT_EQ(format_bytes(16 * MiB), "16.0M");
  EXPECT_EQ(format_bytes(3 * GiB / 2), "1.5G");
}

TEST(Units, FormatSeconds) { EXPECT_EQ(format_seconds(5.53), "5.5 s"); }

// ------------------------------------------------------------- Histogram

TEST(WriteSizeHistogram, BucketIndexMatchesTableOne) {
  EXPECT_EQ(WriteSizeHistogram::bucket_index(0), 0);
  EXPECT_EQ(WriteSizeHistogram::bucket_index(63), 0);
  EXPECT_EQ(WriteSizeHistogram::bucket_index(64), 1);
  EXPECT_EQ(WriteSizeHistogram::bucket_index(255), 1);
  EXPECT_EQ(WriteSizeHistogram::bucket_index(1023), 2);
  EXPECT_EQ(WriteSizeHistogram::bucket_index(4 * KiB - 1), 3);
  EXPECT_EQ(WriteSizeHistogram::bucket_index(4 * KiB), 4);
  EXPECT_EQ(WriteSizeHistogram::bucket_index(16 * KiB), 5);
  EXPECT_EQ(WriteSizeHistogram::bucket_index(64 * KiB), 6);
  EXPECT_EQ(WriteSizeHistogram::bucket_index(256 * KiB), 7);
  EXPECT_EQ(WriteSizeHistogram::bucket_index(512 * KiB), 8);
  EXPECT_EQ(WriteSizeHistogram::bucket_index(1 * MiB), 9);
  EXPECT_EQ(WriteSizeHistogram::bucket_index(100 * MiB), 9);
}

TEST(WriteSizeHistogram, AccumulatesAndMerges) {
  WriteSizeHistogram a, b;
  a.record(10, 0.001);
  a.record(8 * KiB, 0.010);
  b.record(2 * MiB, 0.100);
  a.merge(b);
  EXPECT_EQ(a.total_ops(), 3u);
  EXPECT_EQ(a.total_bytes(), 10 + 8 * KiB + 2 * MiB);
  EXPECT_NEAR(a.total_seconds(), 0.111, 1e-9);
}

TEST(WriteSizeHistogram, RenderContainsAllBuckets) {
  WriteSizeHistogram h;
  h.record(100, 0.5);
  const std::string table = h.render_table("profile");
  for (int i = 0; i < WriteSizeHistogram::kNumBuckets; ++i) {
    EXPECT_NE(table.find(WriteSizeHistogram::bucket_label(i)), std::string::npos)
        << "missing bucket " << i;
  }
}

TEST(WriteSizeHistogram, LabelsMatchPaper) {
  EXPECT_EQ(WriteSizeHistogram::bucket_label(0), "0-64");
  EXPECT_EQ(WriteSizeHistogram::bucket_label(4), "4K-16K");
  EXPECT_EQ(WriteSizeHistogram::bucket_label(9), "> 1M");
}

// ----------------------------------------------------------------- Stats

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  RunningStats a, b, all;
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Samples, ExactPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-12);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-12);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.percentile(99), 99.01, 1e-9);
}

TEST(Samples, SingleElement) {
  Samples s;
  s.add(42.0);
  EXPECT_EQ(s.median(), 42.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
}

// -------------------------------------------------------------- Checksum

TEST(Crc64, KnownValueStable) {
  const char* msg = "123456789";
  const auto d1 = Crc64::of(msg, 9);
  const auto d2 = Crc64::of(msg, 9);
  EXPECT_EQ(d1, d2);
  EXPECT_NE(d1, 0u);
}

TEST(Crc64, ChunkingIndependent) {
  std::vector<std::byte> data(100000);
  Rng r(44);
  for (auto& b : data) b = static_cast<std::byte>(r.next_u64());

  const auto whole = Crc64::of(data.data(), data.size());

  Crc64 pieces;
  std::size_t pos = 0;
  Rng sizes(45);
  while (pos < data.size()) {
    const std::size_t n =
        std::min<std::size_t>(sizes.uniform(1, 4096), data.size() - pos);
    pieces.update(data.data() + pos, n);
    pos += n;
  }
  EXPECT_EQ(pieces.digest(), whole);
}

TEST(Crc64, DetectsSingleBitFlip) {
  std::vector<unsigned char> data(4096, 0xAB);
  const auto before = Crc64::of(data.data(), data.size());
  data[1234] ^= 0x01;
  EXPECT_NE(Crc64::of(data.data(), data.size()), before);
}

// ----------------------------------------------------------------- Table

TEST(TextTable, RendersAlignedCells) {
  TextTable t({"a", "long_header"});
  t.add_row({"hello", "1"});
  t.add_rule();
  t.add_row({"x", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("hello"), std::string::npos);
  // All lines equal width.
  std::size_t width = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t nl = out.find('\n', pos);
    const std::size_t len = nl - pos;
    if (width == 0) width = len;
    EXPECT_EQ(len, width);
    pos = nl + 1;
  }
}

TEST(BarChart, RendersValues) {
  BarChart c("title", "s");
  c.add("native", 6.0);
  c.add("crfs", 1.1);
  const std::string out = c.render();
  EXPECT_NE(out.find("native"), std::string::npos);
  EXPECT_NE(out.find("6.0 s"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(ScatterPlot, RendersGlyphs) {
  ScatterPlot p("plot");
  p.add_series('*', {{1, 1}, {10, 2}, {100, 3}});
  p.set_log_x(true);
  const std::string out = p.render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("(log x)"), std::string::npos);
}

}  // namespace
}  // namespace crfs
