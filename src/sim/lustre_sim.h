// LustreSim: Lustre 1.8.3 with 1 MDS + 3 OSTs over DDR InfiniBand.
//
// Mechanisms:
//  * Client-side per-op cost. Small (< 64 KB) writes pay LDLM lock /
//    grant accounting, inflated by node-level contention — why native
//    checkpointing with ~1000 small writes per rank is seconds-slow even
//    though the data is tiny (Fig 6b: 6.0 s native vs 1.1 s CRFS at C).
//  * Grant-limited client cache. A node may hold only a bounded number of
//    un-RPC'd dirty bytes; past that, writers stall until the node's
//    writeback drains to the OSTs (class D becomes drain-bound).
//  * OST stations. Each OST serves RPCs FCFS: per-RPC overhead + bytes /
//    ingest bandwidth. Files are striped round-robin across OSTs in 1 MB
//    stripes. CRFS chunks drain in full-stripe RPCs; native interleaved
//    dirty pages form smaller RPCs (fewer per-RPC bytes -> lower
//    aggregate rate -> the ~30% class-D gap of Figs 6c/9).
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "sim/backend_sim.h"

namespace crfs::sim {

class LustreSim final : public BackendSim {
 public:
  LustreSim(Simulation& sim, const Calibration& cal, unsigned nodes, unsigned ppn,
            std::uint64_t seed);

  Task write_call(unsigned node, FileId file, std::uint64_t offset, std::uint64_t len,
                  bool via_crfs) override;
  Task close_file(unsigned node, FileId file, bool via_crfs) override;
  void stop() override;

  /// Total RPCs served per OST (for reports).
  std::uint64_t ost_rpcs(unsigned ost) const { return osts_[ost]->rpcs; }
  std::uint64_t ost_bytes(unsigned ost) const { return osts_[ost]->bytes; }

 private:
  struct Ost {
    explicit Ost(Simulation& sim) : station(sim, 1) {}
    Resource station;
    std::uint64_t rpcs = 0;
    std::uint64_t bytes = 0;
  };

  struct Extent {
    FileId file;
    std::uint64_t offset;
    std::uint64_t len;
  };

  struct Node {
    explicit Node(Simulation& sim) : drained(sim), work(sim) {}
    std::uint64_t dirty = 0;
    Event drained;
    Event work;
    std::unordered_map<FileId, std::deque<Extent>> dirty_files;
    std::deque<FileId> rr;
    bool daemon_running = false;
  };

  Task client_writeback(unsigned node);
  Task ost_request(unsigned ost, std::uint64_t len);

  /// Native writeback RPC size shrinks as more files interleave on the
  /// node (ppn streams fragment the dirty page ranges).
  std::uint64_t native_rpc_size() const;

  Simulation& sim_;
  const Calibration& cal_;
  unsigned ppn_;
  bool stopping_ = false;
  Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Ost>> osts_;
};

}  // namespace crfs::sim
