#include "sim/ext3_sim.h"

#include <algorithm>

namespace crfs::sim {

Ext3Sim::Ext3Sim(Simulation& sim, const Calibration& cal, unsigned nodes, unsigned ppn,
                 std::uint64_t seed)
    : sim_(sim), cal_(cal), ppn_(ppn), rng_(seed) {
  nodes_.reserve(nodes);
  for (unsigned n = 0; n < nodes; ++n) {
    nodes_.push_back(std::make_unique<Node>(sim, cal, seed ^ (0xD15C0ULL * (n + 1))));
  }
}

double Ext3Sim::vfs_op_cost(const Calibration& cal, unsigned ppn) {
  // Fitted in calibration.h comments: ~1 ms base, ~7x under 8 writers.
  constexpr double kBaseVfsOp = 0.55e-3;
  constexpr double kVfsContention = 0.9;
  (void)cal;
  return kBaseVfsOp * (1.0 + kVfsContention * (ppn > 0 ? ppn - 1 : 0));
}

double Ext3Sim::unluck(FileId file) {
  auto it = unluck_.find(file);
  if (it == unluck_.end()) {
    it = unluck_.emplace(file, 1.0 + rng_.next_double() * cal_.native_unfairness).first;
  }
  return it->second;
}

Task Ext3Sim::write_call(unsigned node_id, FileId file, std::uint64_t offset,
                         std::uint64_t len, bool via_crfs) {
  Node& node = *nodes_[node_id];

  // ---- in-call CPU cost -------------------------------------------------
  double cost = cal_.syscall_overhead +
                static_cast<double>(len) / contended_copy_bw(cal_, ppn_);
  if (!via_crfs) {
    if (len >= 4096) cost += vfs_op_cost(cal_, ppn_) * unluck(file);
  } else {
    // One journal handle per large aggregated write; amortised.
    cost += vfs_op_cost(cal_, 1);
  }
  co_await sim_.delay(cost);

  // ---- dirty accounting ---------------------------------------------------
  auto& q = node.dirty_files[file];
  // Merge with the previous extent when contiguous (page-cache coalescing).
  if (!q.empty() && q.back().offset + q.back().len == offset && q.back().crfs == via_crfs) {
    q.back().len += len;
  } else {
    if (q.empty()) node.rr.push_back(file);
    q.push_back(Extent{file, offset, len, via_crfs});
  }
  node.dirty += len;
  node.file_dirty[file] += len;
  if (!node.daemon_running) {
    node.daemon_running = true;
    sim_.spawn(writeback_daemon(node_id));
  }
  node.work.pulse();

  // ---- throttling ----------------------------------------------------------
  if (!via_crfs) {
    // Journal coupling: a native writer cannot run ahead of the disk on
    // its own file — ordered-mode commits repeatedly flush its stream.
    while (node.file_dirty[file] > cal_.native_coupling_window) {
      co_await node.dirty_changed.wait();
    }
  }
  // Kernel dirty limit applies to both paths (class D).
  while (node.dirty > cal_.dirty_limit) {
    co_await node.dirty_changed.wait();
  }
}

Task Ext3Sim::writeback_daemon(unsigned node_id) {
  Node& node = *nodes_[node_id];
  for (;;) {
    while (node.rr.empty()) {
      if (stopping_) co_return;
      co_await node.work.wait();
    }
    // Round-robin across dirty files; take up to one writeback run from
    // the head file. CRFS chunks arrive as 4 MB extents and are written
    // whole; native extents — even large merged heap runs — go out in
    // elevator-limited slices (allocation-fragmented ordered data), which
    // is what keeps native class D at ~45 MB/s vs CRFS's ~52.
    const FileId file = node.rr.front();
    node.rr.pop_front();
    auto& q = node.dirty_files[file];
    Extent& head = q.front();
    // Unlucky files drain in shorter runs (their pages more often sit in
    // committing transactions), paying more seeks per byte — the source
    // of Fig 3's per-process completion spread.
    const double u = head.crfs ? 1.0 : unluck(file);
    const std::uint64_t base_cap = head.crfs ? head.len
                                   : head.len >= 2 * MiB ? 1 * MiB
                                                         : cal_.native_writeback_run;
    const std::uint64_t cap =
        std::max<std::uint64_t>(64 * KiB, static_cast<std::uint64_t>(
                                              static_cast<double>(base_cap) / u));
    const std::uint64_t run = std::min(head.len, cap);
    const std::uint64_t addr = node.allocator.address(file, head.offset);

    head.offset += run;
    head.len -= run;
    if (head.len == 0) q.pop_front();
    if (!q.empty()) node.rr.push_back(file);  // stays in rotation

    co_await node.disk.write(addr, run);
    node.dirty -= run;
    node.file_dirty[file] -= run;
    node.dirty_changed.pulse();
  }
}

Task Ext3Sim::close_file(unsigned node_id, FileId file, bool via_crfs) {
  // Local filesystem: close is cheap; buffered data keeps draining in the
  // background. (CRFS's own close-wait happens in the CRFS pipeline.)
  (void)node_id;
  (void)file;
  (void)via_crfs;
  co_await sim_.delay(cal_.syscall_overhead);
}

void Ext3Sim::stop() {
  stopping_ = true;
  for (auto& n : nodes_) n->work.pulse();
}

const trace::BlockTrace* Ext3Sim::disk_trace(unsigned node) const {
  return &nodes_[node]->disk.block_trace();
}

std::uint64_t Ext3Sim::disk_seeks(unsigned node) const {
  return nodes_[node]->disk.seeks();
}

}  // namespace crfs::sim
