// Calibration constants for the cluster DES.
//
// These model the paper's testbed (§V-A): 64-node cluster, 8-core
// 2.33 GHz Xeon nodes, 6 GB RAM, one ST3250620NS SATA disk per node,
// DDR InfiniBand, Lustre 1.8.3 (1 MDS + 3 OSTs, IB transport), NFSv3
// over IPoIB, Linux 2.6.30 + FUSE 2.8.1.
//
// Every constant is either (a) public-spec hardware data for that era, or
// (b) fitted to an anchor number printed in the paper (the anchor cited
// alongside). The *mechanisms* (seek-bound interleaving, dirty-page
// throttling, journal coupling, RPC overheads) are what produce the
// shapes; these constants only set the scale.
#pragma once

#include "common/units.h"

namespace crfs::sim {

struct Calibration {
  // ---- node --------------------------------------------------------------
  /// Per-stream memory copy bandwidth of one 2007 Xeon core (user->kernel
  /// copy in write()). Anchor: CRFS+ext3 LU.B/C node rates ~115-135 MB/s
  /// through FUSE (Figs 6-8) with the double copy below.
  double copy_bw = 1.6e9;

  /// Basic syscall + VFS entry cost per write().
  double syscall_overhead = 4e-6;

  /// Memory-bandwidth contention: effective per-stream copy bandwidth is
  /// copy_bw / (1 + copy_contention * (active_writers - 1)).
  double copy_contention = 0.12;

  // ---- FUSE / CRFS path ----------------------------------------------------
  /// User<->kernel crossing cost per FUSE request (2.6.30 + libfuse 2.8).
  /// The FUSE queue serializes requests from all writers on a node.
  /// Anchor: CRFS+ext3 LU.B 0.5 s with ~5400 node requests.
  double fuse_request_cost = 5.0e-5;

  /// Payload bandwidth through the FUSE station (request copy-in,
  /// userspace dispatch). Anchor: CRFS+ext3 LU.C 0.9 s for 121 MB/node.
  double fuse_station_bw = 200e6;

  /// CRFS adds one extra copy (into the buffer-pool chunk) on the app
  /// side and one backend write() copy on the IO-thread side.
  double crfs_extra_copies = 1.0;

  /// Per-chunk bookkeeping cost (queueing, metadata update).
  double crfs_chunk_overhead = 5e-5;

  // ---- local disk (ST3250620NS, 7200rpm SATA) -----------------------------
  /// Sequential write bandwidth. Spec ~78 MB/s outer; effective through
  /// ext3 journalling ~55 MB/s. Anchor: CRFS+ext3 LU.D 17.2 s for
  /// 853 MB/node (Fig 6c) => ~52 MB/s.
  double disk_seq_bw = 54e6;

  /// Average seek + rotational latency for a non-contiguous request.
  double disk_seek = 2.5e-3;  // elevator-shortened inter-file seeks

  /// Request size the elevator/writeback merges contiguous dirty pages
  /// into, per file, under NATIVE checkpointing: thousands of small
  /// appends to 8 files interleave in the page cache, so writeback's
  /// per-file contiguous runs are short. Anchor: native ext3 effective
  /// rates 30-45 MB/s (Figs 6-8) and Fig 10a's dense seek pattern.
  std::uint64_t native_writeback_run = 448 * KiB;

  /// ext3 in data=ordered mode couples writers to the journal: the many
  /// metadata operations (block allocations) of native checkpoint streams
  /// force frequent transaction commits that flush ordered data, so a
  /// native writer cannot run further than this many bytes ahead of the
  /// disk. CRFS's few large writes cause ~100x fewer commits: its window
  /// is the dirty-page limit instead.
  std::uint64_t native_coupling_window = 2 * MiB;

  /// Kernel dirty-page throttling threshold per node (6 GB RAM, ~2.6.30
  /// defaults dirty_ratio 20% less application residency). Anchor: CRFS
  /// LU.B/C never throttle (0.5 s/0.9 s), LU.D (853 MB/node) does (17.2 s).
  std::uint64_t dirty_limit = 96 * MiB;

  /// Per-process systematic slow-down factor range for native ext3:
  /// journal/writeback blocking is unfair across processes (some lose the
  /// commit lottery repeatedly). Sampled once per process from
  /// [1, 1 + native_unfairness]. Anchor: Fig 3's 4-8 s spread (~2x).
  double native_unfairness = 1.0;

  // ---- Lustre (1 MDS + 3 OSTs, DDR IB) -------------------------------------
  unsigned lustre_osts = 3;

  /// OST ingest is two-tier: bursts that fit the OSS write cache are
  /// absorbed at IB wire speed; past the cache, RPCs drain at the backing
  /// RAID rate with a per-RPC positioning cost. Anchors: CRFS+Lustre
  /// LU.C 1.1 s (cache-absorbed) and LU.D 20.7 s (backing-bound).
  double ost_wire_bw = 1.2e9;
  std::uint64_t ost_cache_bytes = 500 * MiB;
  double ost_backing_bw = 440e6;
  double ost_backing_seek = 0.5e-3;

  /// Server-side per-RPC handling cost. Anchor: native-vs-CRFS LU.D gap
  /// (29.3 vs 20.7 s) given native's smaller writeback RPCs.
  double ost_rpc_overhead = 0.6e-3;

  /// Client-side cost of a small (<64 KB) write() on Lustre: LDLM lock +
  /// grant accounting + copy. Medium checkpoint writes on native Lustre
  /// are ~ms each under 8-way node contention. Anchor: native Lustre
  /// LU.C.128 ~6 s for ~975 ops/proc (Fig 6b).
  double lustre_small_op_cost = 1.7e-3;
  /// Same contention multiplier shape as copy_contention.
  double lustre_op_contention = 0.55;

  /// Client dirty/grant limit per node: writers stall once this many
  /// un-RPC'd bytes accumulate (Lustre grants are tens of MB per client).
  /// Anchor: native Lustre LU.D 29.3 s => ~805 MB/node must drain.
  std::uint64_t lustre_client_cache = 48 * MiB;

  /// Writeback RPC payload: CRFS chunks drain in full 1 MB stripe RPCs;
  /// native interleaved dirty pages form smaller RPCs.
  std::uint64_t lustre_rpc_size = 1 * MiB;
  std::uint64_t lustre_native_rpc_size = 256 * KiB;

  // ---- NFS (single NFSv3 server over IPoIB) --------------------------------
  /// Wire bandwidth client<->server (IPoIB on DDR IB, protocol-limited).
  double nfs_wire_bw = 180e6;

  /// Server disk: same SATA class as compute nodes but behind NFSD with
  /// commit (fsync) obligations.
  double nfs_server_disk_seq_bw = 90e6;
  /// Effective seek between non-contiguous server requests (elevator-
  /// shortened; queue depth keeps seeks short).
  double nfs_server_disk_seek = 2.5e-3;

  /// Per-request server handling cost (RPC decode, nfsd scheduling).
  double nfs_rpc_overhead = 0.35e-3;

  /// Writeback/commit request sizes: native small interleaved commits vs
  /// CRFS large sequential streams. Anchors: native NFS LU.B 35.5 s
  /// (903 MB => ~25 MB/s, seek-dominated) vs CRFS 10.4 s (~87 MB/s).
  std::uint64_t nfs_native_commit_run = 64 * KiB;
  std::uint64_t nfs_crfs_commit_run = 4 * MiB;

  /// Streaming writeback run size once the client cache is past the
  /// background threshold (kernel coalesces whole dirty file ranges).
  std::uint64_t nfs_stream_run = 4 * MiB;

  /// Client dirty background threshold: below it dirty data sits in the
  /// client cache until close ("commit storm" for class B/C); above it
  /// background writeback streams to the server (class D).
  std::uint64_t nfs_background = 48 * MiB;

  /// Client dirty cache before streaming writeback kicks in. At LU.D the
  /// transfer is streaming either way; at LU.B everything flushes at
  /// close ("commit storm").
  std::uint64_t nfs_client_cache = 300 * MiB;

  // ---- PVFS2 (named by the paper as a supported backend; not in its
  // ---- evaluation — constants are era-typical, not paper-fitted) ----------
  unsigned pvfs_servers = 4;
  std::uint64_t pvfs_stripe = 64 * KiB;
  double pvfs_server_bw = 250e6;       ///< per-server ingest
  double pvfs_rpc_overhead = 0.25e-3;  ///< per-RPC server cost
  double pvfs_client_overhead = 0.15e-3;  ///< per-write client marshalling

  /// EXTENSION (paper §VII future work: "explore how CRFS can optimize
  /// inter-node concurrent IO writing"): when non-zero, at most this many
  /// nodes may run a close-time flush against the NFS server
  /// concurrently (a cluster-wide admission token). 0 disables.
  unsigned nfs_coordinated_flushers = 0;

  // ---- misc ---------------------------------------------------------------
  /// Service-time jitter (lognormal sigma) applied to disk requests.
  double jitter_sigma = 0.08;
};

/// The default calibration used by all paper-reproduction benches.
inline const Calibration& default_calibration() {
  static const Calibration c{};
  return c;
}

}  // namespace crfs::sim
