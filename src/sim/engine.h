// Coroutine-based discrete-event simulation engine.
//
// The cluster-scale experiments (Figs 3, 6-11, Table I timing) run on a
// virtual clock: simulated processes are C++20 coroutines that co_await
// delays, FCFS resources, and events. The engine is single-threaded and
// fully deterministic — two runs with the same seed produce identical
// traces, which the reproduction relies on.
//
// Concepts:
//   Task        lazy coroutine; co_await it to run it as a sub-routine,
//               or Simulation::spawn() it as a top-level process.
//   Delay       co_await sim.delay(seconds)
//   Resource    FCFS server with fixed capacity; co_await res.acquire(),
//               then res.release() (or use res.use(seconds) for both).
//   Event       broadcast condition: co_await ev.wait(); ev.set() wakes
//               all current waiters (and, once set, future ones).
#pragma once

#include <coroutine>
#include <exception>
#include <cstdint>
#include <deque>
#include <queue>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/trace.h"

namespace crfs::sim {

class Simulation;

/// Lazy coroutine task. Awaiting a Task starts it and resumes the awaiter
/// when the task completes (symmetric transfer, no recursion growth).
class [[nodiscard]] Task {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }  // sim code must not throw
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// Awaiting: start the child, resume us when it finishes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;
      bool await_ready() noexcept { return !child || child.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) noexcept {
        child.promise().continuation = caller;
        return child;
      }
      void await_resume() noexcept {}
    };
    return Awaiter{handle_};
  }

  bool done() const { return !handle_ || handle_.done(); }

 private:
  friend class Simulation;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

/// The virtual-time event loop.
class Simulation {
 public:
  double now() const { return now_; }

  /// Awaitable advancing virtual time by `seconds` (>= 0).
  auto delay(double seconds) {
    struct Awaiter {
      Simulation* sim;
      double dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->schedule(h, sim->now_ + (dt > 0 ? dt : 0));
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, seconds};
  }

  /// Registers a top-level process; it starts when run() reaches the
  /// current virtual time. The simulation keeps the task alive.
  void spawn(Task task);

  /// Runs until no events remain. Returns the final virtual time.
  double run();

  /// Number of events processed by run() so far (debug/perf metric).
  std::uint64_t events_processed() const { return events_; }

  // -- Virtual-time span tracing ------------------------------------------
  // Emits the same obs::TraceEvent schema as the real pipeline (and the
  // same Chrome-trace export), with virtual seconds mapped to nanoseconds,
  // so a simulated checkpoint epoch and a real one load side by side in
  // Perfetto. Off by default; the sim hot loop pays one bool check.
  void enable_tracing(bool on = true) { tracing_ = on; }
  bool tracing() const { return tracing_; }

  /// Records a completed span [start_s, end_s] (virtual seconds). `tid`
  /// distinguishes lanes (e.g. simulated node or worker id). `trace_id`
  /// attaches the causal chain id (0 = unattributed) and `tag` a static/
  /// interned detail string, mirroring the real TraceRing slots.
  void trace_complete(const char* name, std::uint32_t tid, double start_s, double end_s,
                      std::uint64_t trace_id = 0, const char* tag = "");

  const std::vector<obs::TraceEvent>& trace_events() const { return trace_.events(); }

  /// Writes the captured virtual-time spans as Chrome trace JSON.
  Status export_trace(const std::string& path) const;

  // -- used by awaitables -------------------------------------------------
  void schedule(std::coroutine_handle<> h, double time);

 private:
  struct Scheduled {
    double time;
    std::uint64_t seq;  // FIFO tiebreak for determinism
    std::coroutine_handle<> handle;
    bool operator>(const Scheduled& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
  bool tracing_ = false;
  obs::EventLog trace_;
  std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>> queue_;
  std::vector<Task> tasks_;
};

/// FCFS resource with integer capacity (a queueing station).
class Resource {
 public:
  Resource(Simulation& sim, unsigned capacity) : sim_(sim), capacity_(capacity) {}

  /// Awaitable: completes when a slot is granted (FIFO order).
  auto acquire() {
    struct Awaiter {
      Resource* res;
      bool await_ready() noexcept {
        if (res->in_use_ < res->capacity_) {
          res->in_use_ += 1;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { res->waiters_.push_back(h); }
      void await_resume() noexcept {}
    };
    return Awaiter{this};
  }

  /// Releases a slot; the longest waiter (if any) is resumed at the
  /// current virtual time and inherits the slot.
  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.schedule(h, sim_.now());  // slot transfers to the waiter
    } else {
      in_use_ -= 1;
    }
  }

  /// acquire + delay(seconds) + release as one task.
  Task use(double seconds);

  unsigned in_use() const { return in_use_; }
  std::size_t queue_length() const { return waiters_.size(); }

 private:
  Simulation& sim_;
  unsigned capacity_;
  unsigned in_use_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Broadcast event. Once set, all waiters (current and future) proceed.
/// reset() re-arms it.
class Event {
 public:
  explicit Event(Simulation& sim) : sim_(&sim) {}

  auto wait() {
    struct Awaiter {
      Event* ev;
      bool await_ready() const noexcept { return ev->set_; }
      void await_suspend(std::coroutine_handle<> h) { ev->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void set() {
    set_ = true;
    for (auto h : waiters_) sim_->schedule(h, sim_->now());
    waiters_.clear();
  }

  /// Wakes current waiters without latching (condition-variable pulse).
  void pulse() {
    for (auto h : waiters_) sim_->schedule(h, sim_->now());
    waiters_.clear();
  }

  void reset() { set_ = false; }
  bool is_set() const { return set_; }

 private:
  Simulation* sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace crfs::sim
