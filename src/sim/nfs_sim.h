// NfsSim: a single NFSv3 server over IPoIB.
//
// Mechanisms:
//  * Client cache + close-to-open consistency. Writes land in the client
//    cache; close() flushes every dirty byte of the file to the server
//    and COMMITs it (server fsync). Small checkpoints (class B/C) thus
//    flush in a synchronized "commit storm" across all nodes; class D
//    streams during the run because the cache fills.
//  * Single server. One wire (server NIC) and one seek-modelled disk
//    serve the whole cluster — "its single server design doesn't match
//    the intensive concurrent IO requirements" (§V-C).
//  * Request sizes. Commit-storm flushes of interleaved small files go
//    out in small runs (seek-bound on the server disk: native LU.B
//    35.5 s ~ 25 MB/s); CRFS chunks and streaming writeback form large
//    sequential runs (~87 MB/s). At class D both paths stream large runs
//    and the server is the bottleneck either way, so CRFS's extra copies
//    make it slightly WORSE than native — the paper's NFS outlier.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/backend_sim.h"
#include "sim/disk_model.h"

namespace crfs::sim {

class NfsSim final : public BackendSim {
 public:
  NfsSim(Simulation& sim, const Calibration& cal, unsigned nodes, unsigned ppn,
         std::uint64_t seed);

  Task write_call(unsigned node, FileId file, std::uint64_t offset, std::uint64_t len,
                  bool via_crfs) override;
  Task close_file(unsigned node, FileId file, bool via_crfs) override;
  void stop() override;

  std::uint64_t server_requests() const { return server_requests_; }
  const trace::BlockTrace* server_disk_trace() const { return &server_disk_.block_trace(); }

 private:
  struct Extent {
    FileId file;
    std::uint64_t offset;
    std::uint64_t len;
  };

  struct PerFile {
    std::deque<Extent> dirty;
    std::uint64_t dirty_bytes = 0;
    std::uint64_t in_flight = 0;   ///< bytes currently in RPCs
    std::unique_ptr<Event> flushed;  ///< pulsed when in-flight/dirty shrink
  };

  struct Node {
    explicit Node(Simulation& sim) : drained(sim), work(sim) {}
    std::uint64_t dirty = 0;  ///< total un-sent bytes on this client
    Event drained;
    Event work;
    std::unordered_map<FileId, PerFile> files;
    std::deque<FileId> rr;
    bool daemon_running = false;
    bool streaming = false;  ///< cache overflowed: background writeback on
  };

  /// One wire+server+disk round trip for `len` bytes of `file`.
  Task server_request(FileId file, std::uint64_t offset, std::uint64_t len,
                      bool committed);
  Task client_writeback(unsigned node);
  /// Sends up to `budget` dirty bytes of one file (used by close-flush).
  Task flush_file(unsigned node, FileId file, std::uint64_t run_size);

  Simulation& sim_;
  const Calibration& cal_;
  unsigned ppn_;
  bool stopping_ = false;
  Rng rng_;
  Resource wire_;        ///< server NIC, shared by all clients
  /// Inter-node flush coordination (extension; see calibration.h).
  std::unique_ptr<Resource> flush_tokens_;
  DiskSim server_disk_;
  std::uint64_t server_requests_ = 0;
  std::vector<std::unique_ptr<Node>> nodes_;
  BlockAllocator allocator_;
};

}  // namespace crfs::sim
