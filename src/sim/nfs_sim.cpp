#include "sim/nfs_sim.h"

#include <algorithm>

namespace crfs::sim {

NfsSim::NfsSim(Simulation& sim, const Calibration& cal, unsigned nodes, unsigned ppn,
               std::uint64_t seed)
    : sim_(sim),
      cal_(cal),
      ppn_(ppn),
      rng_(seed),
      wire_(sim, 1),
      server_disk_(sim, cal.nfs_server_disk_seq_bw, cal.nfs_server_disk_seek,
                   cal.jitter_sigma, seed ^ 0xF5F5ULL) {
  if (cal.nfs_coordinated_flushers > 0) {
    flush_tokens_ = std::make_unique<Resource>(sim, cal.nfs_coordinated_flushers);
  }
  nodes_.reserve(nodes);
  for (unsigned n = 0; n < nodes; ++n) nodes_.push_back(std::make_unique<Node>(sim));
}

Task NfsSim::server_request(FileId file, std::uint64_t offset, std::uint64_t len,
                            bool committed) {
  (void)committed;
  // Wire: shared NIC, FCFS.
  co_await wire_.acquire();
  co_await sim_.delay(cal_.nfs_rpc_overhead + static_cast<double>(len) / cal_.nfs_wire_bw);
  wire_.release();
  // Server disk (write-through; the server must commit before close
  // returns, and the disk is the bottleneck either way).
  server_requests_ += 1;
  co_await server_disk_.write(allocator_.address(file, offset), len);
}

Task NfsSim::client_writeback(unsigned node_id) {
  Node& node = *nodes_[node_id];
  for (;;) {
    // Background writeback runs only while the node is over the
    // background threshold (streaming mode); below it, dirty data waits
    // for close-time flushing.
    while (node.rr.empty() || node.dirty <= cal_.nfs_background) {
      if (stopping_ && node.rr.empty()) co_return;
      if (stopping_ && node.dirty <= cal_.nfs_background) co_return;
      co_await node.work.wait();
    }
    const FileId file = node.rr.front();
    node.rr.pop_front();
    PerFile& pf = node.files[file];
    if (pf.dirty.empty()) continue;
    Extent head = pf.dirty.front();
    // Streaming writeback coalesces big sequential runs.
    const std::uint64_t run = std::min<std::uint64_t>(head.len, cal_.nfs_stream_run);
    pf.dirty.front().offset += run;
    pf.dirty.front().len -= run;
    if (pf.dirty.front().len == 0) pf.dirty.pop_front();
    if (!pf.dirty.empty()) node.rr.push_back(file);
    pf.dirty_bytes -= run;
    pf.in_flight += run;

    co_await server_request(file, head.offset, run, /*committed=*/false);

    pf.in_flight -= run;
    node.dirty -= run;
    node.drained.pulse();
    if (pf.flushed != nullptr) pf.flushed->pulse();
    node.work.pulse();  // re-evaluate streaming predicate
  }
}

Task NfsSim::flush_file(unsigned node_id, FileId file, std::uint64_t run_size) {
  Node& node = *nodes_[node_id];
  PerFile& pf = node.files[file];
  while (!pf.dirty.empty()) {
    Extent head = pf.dirty.front();
    const std::uint64_t run = std::min<std::uint64_t>(head.len, run_size);
    pf.dirty.front().offset += run;
    pf.dirty.front().len -= run;
    if (pf.dirty.front().len == 0) pf.dirty.pop_front();
    pf.dirty_bytes -= run;
    pf.in_flight += run;

    co_await server_request(file, head.offset, run, /*committed=*/true);

    pf.in_flight -= run;
    node.dirty -= run;
    node.drained.pulse();
    if (pf.flushed != nullptr) pf.flushed->pulse();
  }
}

Task NfsSim::write_call(unsigned node_id, FileId file, std::uint64_t offset,
                        std::uint64_t len, bool via_crfs) {
  Node& node = *nodes_[node_id];
  (void)via_crfs;

  // Client-side cost: copy into the client page cache.
  const double cost = cal_.syscall_overhead +
                      static_cast<double>(len) / contended_copy_bw(cal_, ppn_);
  co_await sim_.delay(cost);

  PerFile& pf = node.files[file];
  if (!pf.dirty.empty() && pf.dirty.back().offset + pf.dirty.back().len == offset) {
    pf.dirty.back().len += len;
  } else {
    if (pf.dirty.empty()) node.rr.push_back(file);
    pf.dirty.push_back(Extent{file, offset, len});
  }
  pf.dirty_bytes += len;
  node.dirty += len;
  if (!node.daemon_running) {
    node.daemon_running = true;
    sim_.spawn(client_writeback(node_id));
  }
  node.work.pulse();

  // Hard client-cache limit: writers stall (class D becomes drain-bound).
  // Crossing it is what puts the node into sustained-streaming mode: from
  // then on, close-triggered flushes ride the large coalesced writeback
  // instead of cold-flushing fragmented pages.
  while (node.dirty > cal_.nfs_client_cache) {
    node.streaming = true;
    co_await node.drained.wait();
  }
}

Task NfsSim::close_file(unsigned node_id, FileId file, bool via_crfs) {
  Node& node = *nodes_[node_id];
  PerFile& pf = node.files[file];
  if (pf.flushed == nullptr) pf.flushed = std::make_unique<Event>(sim_);

  // Close-to-open consistency: flush + COMMIT everything dirty. CRFS's
  // 4 MB chunk extents go out as large sequential requests. The native
  // pattern's cold fragmented pages flush in small runs (the class B/C
  // "commit storm") — unless the node is already in streaming writeback
  // (class D), where close piggybacks on the large coalesced runs.
  const std::uint64_t run = (via_crfs || node.streaming) ? cal_.nfs_crfs_commit_run
                                                         : cal_.nfs_native_commit_run;
  // Extension: serialize the commit storm across nodes. Holding a token
  // while flushing keeps the server's request stream per-file sequential,
  // which the seek-modelled disk rewards.
  if (flush_tokens_ != nullptr) co_await flush_tokens_->acquire();
  co_await flush_file(node_id, file, run);
  while (pf.in_flight > 0) co_await pf.flushed->wait();
  if (flush_tokens_ != nullptr) flush_tokens_->release();
}

void NfsSim::stop() {
  stopping_ = true;
  for (auto& n : nodes_) n->work.pulse();
}

}  // namespace crfs::sim
