// Experiment driver: runs one coordinated checkpoint of an MPI job in the
// DES and reports what the paper's figures report.
//
// A run is (stack, LU class, nodes x ppn, backend, native-or-CRFS). Every
// rank replays the BLCR write plan of its synthesized process image; all
// ranks start at t=0 (phase 1 is a barrier) and a rank's checkpoint
// writing time is write-plan replay + close (the paper's measured
// quantity). The job's checkpoint time is the slowest rank (phase 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crfs/config.h"
#include "mpi/stack_model.h"
#include "sim/calibration.h"
#include "trace/block_trace.h"
#include "trace/write_recorder.h"

namespace crfs::sim {

enum class BackendKind { kExt3, kLustre, kNfs, kPvfs2 };
enum class FsMode { kNative, kCrfs };

const char* backend_name(BackendKind k);
const char* mode_name(FsMode m);

struct ExperimentConfig {
  mpi::Stack stack = mpi::Stack::kMvapich2;
  mpi::LuClass lu_class = mpi::LuClass::kC;
  unsigned nodes = 16;
  unsigned ppn = 8;
  BackendKind backend = BackendKind::kExt3;
  FsMode mode = FsMode::kNative;

  crfs::Config crfs_config{};     ///< paper defaults: 4M chunk, 16M pool, 4 threads
  crfs::FuseOptions fuse{};       ///< big_writes on

  std::uint64_t seed = 42;
  Calibration cal = Calibration{};

  /// Record every write op per rank (Table I / Figs 3, 11). Costs memory
  /// on big runs; off by default.
  bool record_writes = false;

  /// ext3 nodes are independent: simulating one node with ppn ranks gives
  /// the same per-rank statistics as simulating all of them. Shared
  /// backends (Lustre/NFS) always simulate every node.
  bool ext3_single_node = true;

  unsigned total_processes() const { return nodes * ppn; }
  std::string describe() const;
};

struct ExperimentResult {
  std::vector<double> rank_seconds;       ///< per simulated rank
  double mean_rank_seconds = 0.0;         ///< the figures' y-axis value
  double max_rank_seconds = 0.0;          ///< job checkpoint time (barrier)
  double min_rank_seconds = 0.0;
  std::uint64_t total_bytes = 0;          ///< checkpoint bytes simulated

  trace::WriteProfile profile;            ///< populated when record_writes

  // Node-0 disk behaviour (ext3) or server disk (NFS).
  trace::BlockTraceSummary disk_summary{};
  std::vector<std::pair<double, double>> disk_scatter;  ///< (time, offset MB)

  double spread() const {
    return min_rank_seconds > 0 ? max_rank_seconds / min_rank_seconds : 1.0;
  }
};

/// Runs the experiment to completion (deterministic in config.seed).
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Convenience: the paper's headline comparison — mean checkpoint time
/// native vs CRFS for one (stack, class, backend) cell of Figs 6-8.
struct CellResult {
  double native_seconds = 0.0;
  double crfs_seconds = 0.0;
  double speedup() const { return crfs_seconds > 0 ? native_seconds / crfs_seconds : 0.0; }
};
CellResult run_cell(mpi::Stack stack, mpi::LuClass cls, BackendKind backend,
                    unsigned nodes = 16, unsigned ppn = 8, std::uint64_t seed = 42);

}  // namespace crfs::sim
