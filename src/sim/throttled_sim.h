// ThrottledBackendSim: a deliberately concurrency-sensitive backend for
// feedback-controller policy tests (tests/test_control.cpp).
//
// The production backend models (ext3/Lustre/NFS) are faithful but heavy;
// this one isolates the single effect the shed_io policy exists for — the
// paper's §IV observation that pushing more concurrent IO at a saturated
// backend makes every call slower. Service is one FCFS station whose
// effective bandwidth at service start degrades with the number of calls
// concurrently pending:
//
//   bw_eff = bw / (1 + alpha * (pending - 1))
//
// A purely linear server would null the shed benefit (Little's law: halve
// the concurrency, double the per-call wait, same residency); the
// interference term makes lower submission concurrency genuinely drain
// the station faster, so a controller that sheds io_batch/uring_depth
// measurably reduces backend residency — which is exactly what the test
// asserts. Everything is deterministic on virtual time.
#pragma once

#include <cstdint>

#include "sim/backend_sim.h"

namespace crfs::sim {

class ThrottledBackendSim : public BackendSim {
 public:
  struct Options {
    /// Service bandwidth (bytes/s) with a single pending call.
    double bw = 64.0 * 1024 * 1024;
    /// Interference: fractional bandwidth loss per extra pending call.
    double alpha = 0.75;
    /// Fixed per-call cost (seconds) on top of the transfer.
    double per_call = 200e-6;
  };

  explicit ThrottledBackendSim(Simulation& sim) : ThrottledBackendSim(sim, Options{}) {}
  ThrottledBackendSim(Simulation& sim, Options opts)
      : sim_(sim), opts_(opts), station_(sim, 1) {}

  Task write_call(unsigned, FileId, std::uint64_t, std::uint64_t len,
                  bool) override {
    const double arrival = sim_.now();
    pending_ += 1;
    co_await station_.acquire();
    // Interference is sampled once at service start: the crowd that is
    // pending *now* is what degrades this call's transfer.
    const double eff_bw =
        opts_.bw / (1.0 + opts_.alpha * static_cast<double>(pending_ - 1));
    co_await sim_.delay(opts_.per_call + static_cast<double>(len) / eff_bw);
    station_.release();
    pending_ -= 1;
    calls_ += 1;
    bytes_ += len;
    residency_sum_s_ += sim_.now() - arrival;
    if (sim_.now() - arrival > residency_max_s_) {
      residency_max_s_ = sim_.now() - arrival;
    }
  }

  Task close_file(unsigned, FileId, bool) override { co_return; }

  /// Reads share the station (and its interference) with writes: a
  /// restore scan competes with checkpoint traffic exactly where the
  /// shed_readahead policy expects it to.
  Task read_call(unsigned, FileId, std::uint64_t, std::uint64_t len, bool) override {
    pending_ += 1;
    co_await station_.acquire();
    const double eff_bw =
        opts_.bw / (1.0 + opts_.alpha * static_cast<double>(pending_ - 1));
    co_await sim_.delay(opts_.per_call + static_cast<double>(len) / eff_bw);
    station_.release();
    pending_ -= 1;
    read_calls_ += 1;
    read_bytes_ += len;
  }

  void stop() override {}

  // -- Station-side measurements (arrival -> completion) --------------------
  std::uint64_t calls() const { return calls_; }
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t read_calls() const { return read_calls_; }
  std::uint64_t read_bytes() const { return read_bytes_; }
  double mean_residency_s() const {
    return calls_ > 0 ? residency_sum_s_ / static_cast<double>(calls_) : 0.0;
  }
  double max_residency_s() const { return residency_max_s_; }

 private:
  Simulation& sim_;
  const Options opts_;
  Resource station_;
  unsigned pending_ = 0;  ///< calls arrived but not completed

  std::uint64_t calls_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t read_calls_ = 0;
  std::uint64_t read_bytes_ = 0;
  double residency_sum_s_ = 0.0;
  double residency_max_s_ = 0.0;
};

}  // namespace crfs::sim
