#include "sim/pvfs2_sim.h"

#include <algorithm>
#include <cmath>

namespace crfs::sim {

Pvfs2Sim::Pvfs2Sim(Simulation& sim, const Calibration& cal, unsigned nodes,
                   unsigned ppn, std::uint64_t seed)
    : sim_(sim), cal_(cal), ppn_(ppn), rng_(seed) {
  (void)nodes;  // no per-node client state: PVFS2 has no client cache
  for (unsigned s = 0; s < cal.pvfs_servers; ++s) {
    servers_.push_back(std::make_unique<Server>(sim));
  }
}

Task Pvfs2Sim::rpc(unsigned server_id, std::uint64_t len) {
  Server& server = *servers_[server_id];
  co_await server.station.acquire();
  double service =
      cal_.pvfs_rpc_overhead + static_cast<double>(len) / cal_.pvfs_server_bw;
  service *= std::exp(rng_.normal(0.0, cal_.jitter_sigma));
  server.rpcs += 1;
  server.bytes += len;
  co_await sim_.delay(service);
  server.station.release();
}

Task Pvfs2Sim::write_call(unsigned node, FileId file, std::uint64_t offset,
                          std::uint64_t len, bool via_crfs) {
  (void)node;
  (void)via_crfs;  // no cache => both paths are synchronous RPCs; only the
                   // SIZES differ, and the caller controls those.

  // Client-side cost: request marshalling + copy onto the wire.
  const double cost = cal_.syscall_overhead + cal_.pvfs_client_overhead +
                      static_cast<double>(len) / contended_copy_bw(cal_, ppn_);
  co_await sim_.delay(cost);

  // One blocking RPC per touched 64 KB stripe server region; contiguous
  // stripes on the same server coalesce into a single RPC.
  const std::uint64_t stripe = cal_.pvfs_stripe;
  std::uint64_t pos = offset;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    const unsigned server = static_cast<unsigned>(
        (static_cast<std::uint64_t>(file) + pos / stripe) % servers_.size());
    // Bytes until the end of this stripe unit.
    const std::uint64_t in_stripe = stripe - pos % stripe;
    // Coalesce whole rounds: a large request touches every server once
    // per round; model it as ceil(len/stripe/servers) RPCs per server by
    // sending per-server runs of up to round_bytes.
    const std::uint64_t run = std::min(remaining, in_stripe);
    co_await rpc(server, run);
    pos += run;
    remaining -= run;
  }
}

Task Pvfs2Sim::close_file(unsigned node, FileId file, bool via_crfs) {
  (void)node;
  (void)file;
  (void)via_crfs;
  // Nothing buffered client-side; close is a metadata op.
  co_await sim_.delay(cal_.syscall_overhead + cal_.pvfs_rpc_overhead);
}

}  // namespace crfs::sim
