// Ext3Sim: node-local ext3 (data=ordered) under checkpoint load.
//
// Mechanisms (paper §III and §V-E):
//  * In-call cost. Every page-allocating write (>= 4 KB) pays a VFS/
//    journal-handle cost that grows with the number of concurrently
//    writing processes — the paper's "severe contentions in the VFS
//    layer". Sub-page writes are absorbed by the page cache for almost
//    nothing (Table I: half the ops, ~0.2% of the time).
//  * Journal coupling (native only). BLCR's stream of block allocations
//    forces frequent ordered-mode commits, so a native writer stalls
//    whenever more than a small window of its node's dirty data is
//    waiting on the disk. CRFS's few large writes don't couple; its
//    writers only stall at the kernel dirty limit (class D).
//  * Writeback + disk. A per-node daemon drains dirty extents to a seek-
//    modelled SATA disk. Native appends from P processes interleave, so
//    per-file contiguous runs are short and the head seeks between file
//    regions (Fig 10a). CRFS hands over whole 4 MB chunks (Fig 10b).
//  * Unfairness. Journal blocking is systematically unfair across
//    processes; each native writer draws a persistent luck factor, which
//    reproduces Fig 3's 2x completion-time spread.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/backend_sim.h"
#include "sim/disk_model.h"

namespace crfs::sim {

class Ext3Sim final : public BackendSim {
 public:
  /// One independent ext3 instance per node. `ppn` is the number of
  /// writer processes per node (sets contention factors).
  Ext3Sim(Simulation& sim, const Calibration& cal, unsigned nodes, unsigned ppn,
          std::uint64_t seed);

  Task write_call(unsigned node, FileId file, std::uint64_t offset, std::uint64_t len,
                  bool via_crfs) override;
  Task close_file(unsigned node, FileId file, bool via_crfs) override;
  void stop() override;

  const trace::BlockTrace* disk_trace(unsigned node) const override;
  std::uint64_t disk_seeks(unsigned node) const override;

  /// Per-op VFS cost for a page-allocating write with `ppn` writers.
  static double vfs_op_cost(const Calibration& cal, unsigned ppn);

 private:
  struct Extent {
    FileId file;
    std::uint64_t offset;
    std::uint64_t len;
    bool crfs = false;  ///< arrived as a CRFS chunk pwrite
  };

  struct Node {
    explicit Node(Simulation& sim, const Calibration& cal, std::uint64_t seed)
        : disk(sim, cal.disk_seq_bw, cal.disk_seek, cal.jitter_sigma, seed),
          dirty_changed(sim),
          work(sim) {}

    DiskSim disk;
    BlockAllocator allocator;
    std::uint64_t dirty = 0;
    std::unordered_map<FileId, std::uint64_t> file_dirty;  ///< per-file unflushed bytes
    Event dirty_changed;  ///< pulsed when writeback retires an extent
    Event work;           ///< pulsed when dirty data arrives
    // Per-file queues of dirty extents; round-robin drained.
    std::unordered_map<FileId, std::deque<Extent>> dirty_files;
    std::deque<FileId> rr;  ///< files with dirty data, in arrival order
    bool daemon_running = false;
  };

  Task writeback_daemon(unsigned node);
  double unluck(FileId file);

  Simulation& sim_;
  const Calibration& cal_;
  unsigned ppn_;
  bool stopping_ = false;
  Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<FileId, double> unluck_;
};

}  // namespace crfs::sim
