#include "sim/engine.h"

namespace crfs::sim {

void Simulation::spawn(Task task) {
  schedule(task.handle_, now_);
  tasks_.push_back(std::move(task));
}

void Simulation::schedule(std::coroutine_handle<> h, double time) {
  queue_.push(Scheduled{time, seq_++, h});
}

double Simulation::run() {
  while (!queue_.empty()) {
    Scheduled next = queue_.top();
    queue_.pop();
    now_ = next.time;
    events_ += 1;
    next.handle.resume();
  }
  return now_;
}

Task Resource::use(double seconds) {
  co_await acquire();
  co_await sim_.delay(seconds);
  release();
}

}  // namespace crfs::sim
