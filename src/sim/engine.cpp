#include "sim/engine.h"

#include "obs/chrome_trace.h"

namespace crfs::sim {

void Simulation::trace_complete(const char* name, std::uint32_t tid, double start_s,
                                double end_s, std::uint64_t trace_id, const char* tag) {
  if (!tracing_) return;
  if (end_s < start_s) end_s = start_s;
  // Virtual seconds -> the trace schema's nanosecond time base.
  trace_.record(name, tid, static_cast<std::uint64_t>(start_s * 1e9),
                static_cast<std::uint64_t>((end_s - start_s) * 1e9), trace_id, tag);
}

Status Simulation::export_trace(const std::string& path) const {
  return obs::write_chrome_trace(path, trace_.events());
}

void Simulation::spawn(Task task) {
  schedule(task.handle_, now_);
  tasks_.push_back(std::move(task));
}

void Simulation::schedule(std::coroutine_handle<> h, double time) {
  queue_.push(Scheduled{time, seq_++, h});
}

double Simulation::run() {
  while (!queue_.empty()) {
    Scheduled next = queue_.top();
    queue_.pop();
    now_ = next.time;
    events_ += 1;
    next.handle.resume();
  }
  return now_;
}

Task Resource::use(double seconds) {
  co_await acquire();
  co_await sim_.delay(seconds);
  release();
}

}  // namespace crfs::sim
