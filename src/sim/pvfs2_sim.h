// Pvfs2Sim: PVFS2, the fourth backend the paper names ("CRFS can be
// mounted on top of any existing filesystem, such as ext3, PVFS2, NFS,
// and Lustre"), though its evaluation only covers the other three.
//
// PVFS2's defining property for checkpoint IO is that it has NO client-
// side data cache: every write() is a network round trip to the stripe's
// IO server. That makes the native BLCR pattern pathological (thousands
// of latency-bound small RPCs per rank) and write aggregation maximally
// effective (few large RPCs at near-wire throughput) — a useful extreme
// point between ext3 (all cache) and NFS (cache + commit storm).
//
// Model: N IO servers, file data striped in 64 KB units round-robin; a
// write_call issues one blocking RPC per touched stripe server; servers
// are FCFS stations with per-RPC overhead + payload at server bandwidth.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "sim/backend_sim.h"

namespace crfs::sim {

class Pvfs2Sim final : public BackendSim {
 public:
  Pvfs2Sim(Simulation& sim, const Calibration& cal, unsigned nodes, unsigned ppn,
           std::uint64_t seed);

  Task write_call(unsigned node, FileId file, std::uint64_t offset, std::uint64_t len,
                  bool via_crfs) override;
  Task close_file(unsigned node, FileId file, bool via_crfs) override;
  void stop() override {}

  std::uint64_t server_rpcs(unsigned server) const { return servers_[server]->rpcs; }
  std::uint64_t server_bytes(unsigned server) const { return servers_[server]->bytes; }

 private:
  struct Server {
    explicit Server(Simulation& sim) : station(sim, 1) {}
    Resource station;
    std::uint64_t rpcs = 0;
    std::uint64_t bytes = 0;
  };

  Task rpc(unsigned server, std::uint64_t len);

  Simulation& sim_;
  const Calibration& cal_;
  unsigned ppn_;
  Rng rng_;
  std::vector<std::unique_ptr<Server>> servers_;
};

}  // namespace crfs::sim
