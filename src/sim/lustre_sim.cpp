#include "sim/lustre_sim.h"

#include <algorithm>
#include <cmath>

namespace crfs::sim {

LustreSim::LustreSim(Simulation& sim, const Calibration& cal, unsigned nodes,
                     unsigned ppn, std::uint64_t seed)
    : sim_(sim), cal_(cal), ppn_(ppn), rng_(seed) {
  nodes_.reserve(nodes);
  for (unsigned n = 0; n < nodes; ++n) nodes_.push_back(std::make_unique<Node>(sim));
  for (unsigned o = 0; o < cal.lustre_osts; ++o) {
    osts_.push_back(std::make_unique<Ost>(sim));
  }
}

std::uint64_t LustreSim::native_rpc_size() const {
  // One stream per node coalesces full stripes; interleaving fragments
  // the dirty ranges sublinearly (ppn^(2/3), fitted to Fig 9's native
  // curve) down to the floor.
  const double frag = std::pow(static_cast<double>(std::max(1u, ppn_)), 2.0 / 3.0);
  const auto size = static_cast<std::uint64_t>(static_cast<double>(cal_.lustre_rpc_size) / frag);
  return std::max(size, cal_.lustre_native_rpc_size);
}

Task LustreSim::ost_request(unsigned ost_id, std::uint64_t len) {
  Ost& ost = *osts_[ost_id];
  co_await ost.station.acquire();
  // Two-tier ingest: the OSS write cache absorbs bursts at wire speed;
  // once it has filled, every RPC pays the backing RAID's positioning
  // cost and streams at the backing rate.
  double service = cal_.ost_rpc_overhead + static_cast<double>(len) / cal_.ost_wire_bw;
  if (ost.bytes > cal_.ost_cache_bytes) {
    service += cal_.ost_backing_seek + static_cast<double>(len) / cal_.ost_backing_bw;
  }
  service *= std::exp(rng_.normal(0.0, cal_.jitter_sigma));
  ost.rpcs += 1;
  ost.bytes += len;
  co_await sim_.delay(service);
  ost.station.release();
}

Task LustreSim::client_writeback(unsigned node_id) {
  Node& node = *nodes_[node_id];
  for (;;) {
    while (node.rr.empty()) {
      if (stopping_) co_return;
      co_await node.work.wait();
    }
    const FileId file = node.rr.front();
    node.rr.pop_front();
    auto& q = node.dirty_files[file];
    Extent& head = q.front();
    const std::uint64_t cap = head.len >= cal_.lustre_rpc_size
                                  ? cal_.lustre_rpc_size  // full-stripe RPCs
                                  : native_rpc_size();
    const std::uint64_t run = std::min(head.len, cap);
    // Stripe placement: 1 MB stripes round-robin across OSTs.
    const unsigned ost = static_cast<unsigned>(
        (static_cast<std::uint64_t>(file) + head.offset / cal_.lustre_rpc_size) %
        osts_.size());
    head.offset += run;
    head.len -= run;
    if (head.len == 0) q.pop_front();
    if (!q.empty()) node.rr.push_back(file);

    co_await ost_request(ost, run);
    node.dirty -= run;
    node.drained.pulse();
  }
}

Task LustreSim::write_call(unsigned node_id, FileId file, std::uint64_t offset,
                           std::uint64_t len, bool via_crfs) {
  Node& node = *nodes_[node_id];

  // ---- client-side in-call cost ------------------------------------------
  double cost = cal_.syscall_overhead +
                static_cast<double>(len) / contended_copy_bw(cal_, ppn_);
  if (!via_crfs && len < 64 * KiB) {
    // LDLM lock + grant accounting per small write, contended node-wide.
    cost += cal_.lustre_small_op_cost *
            (1.0 + cal_.lustre_op_contention * (ppn_ > 0 ? ppn_ - 1 : 0));
  }
  co_await sim_.delay(cost);

  // ---- client cache ---------------------------------------------------------
  auto& q = node.dirty_files[file];
  if (!q.empty() && q.back().offset + q.back().len == offset) {
    q.back().len += len;
  } else {
    if (q.empty()) node.rr.push_back(file);
    q.push_back(Extent{file, offset, len});
  }
  node.dirty += len;
  if (!node.daemon_running) {
    node.daemon_running = true;
    sim_.spawn(client_writeback(node_id));
  }
  node.work.pulse();

  // Grant limit: stall until the node drains below its cache allowance.
  while (node.dirty > cal_.lustre_client_cache) {
    co_await node.drained.wait();
  }
}

Task LustreSim::close_file(unsigned node_id, FileId file, bool via_crfs) {
  // Lustre holds dirty data under its locks past close; close itself is a
  // metadata round trip to the MDS.
  (void)node_id;
  (void)file;
  (void)via_crfs;
  co_await sim_.delay(cal_.syscall_overhead + 1e-4);
}

void LustreSim::stop() {
  stopping_ = true;
  for (auto& n : nodes_) n->work.pulse();
}

}  // namespace crfs::sim
