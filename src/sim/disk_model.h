// DiskSim: a single rotational disk as a capacity-1 FCFS station.
//
// Service time = (seek + rotational latency if the request is not
// contiguous with the previous head position) + bytes / sequential_bw,
// with a small lognormal jitter. Each serviced request is recorded in a
// BlockTrace, which is exactly what the paper's blktrace capture in
// Fig 10 shows.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "sim/engine.h"
#include "trace/block_trace.h"

namespace crfs::sim {

class DiskSim {
 public:
  /// `seq_bw` bytes/s sequential bandwidth; `seek` seconds per
  /// non-contiguous request; `jitter_sigma` lognormal sigma on service.
  DiskSim(Simulation& sim, double seq_bw, double seek, double jitter_sigma,
          std::uint64_t rng_seed);

  /// Writes [offset, offset+len) — completes when the request has been
  /// serviced. FCFS across all callers.
  Task write(std::uint64_t offset, std::uint64_t len);

  /// Total bytes serviced so far.
  std::uint64_t bytes_written() const { return bytes_; }
  std::uint64_t requests() const { return requests_; }
  std::uint64_t seeks() const { return seeks_; }

  const trace::BlockTrace& block_trace() const { return trace_; }

 private:
  Simulation& sim_;
  Resource station_;
  double seq_bw_;
  double seek_;
  double jitter_sigma_;
  Rng rng_;

  std::uint64_t head_ = 0;  ///< disk head position (byte address)
  std::uint64_t bytes_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t seeks_ = 0;
  trace::BlockTrace trace_;
};

/// Maps file extents to "disk addresses". Models ext3's per-file block-
/// group preference: every file's blocks are laid out contiguously inside
/// its own allocation region, and different files live in different
/// regions. Writeback that alternates between files therefore jumps
/// between far-apart regions (head seeks — Fig 10a), while draining one
/// file in large runs stays sequential (Fig 10b).
class BlockAllocator {
 public:
  /// Size of each file's allocation region (distance between regions).
  static constexpr std::uint64_t kRegion = 2ULL * 1024 * 1024 * 1024;

  /// Disk address of [offset, offset+len) within `file`. Contiguous
  /// appends within one file yield contiguous addresses.
  std::uint64_t address(int file, std::uint64_t offset) const {
    return static_cast<std::uint64_t>(file) * kRegion + offset;
  }
};

}  // namespace crfs::sim
