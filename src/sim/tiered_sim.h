// TieredBackendSim: the DES mirror of src/backend/tiered_backend.h.
//
// Writes land on a fast staging station and complete at staging speed; a
// background drain coroutine consumes sealed epochs oldest-first and
// copies their bytes to a slow remote station, evicting staged bytes only
// once the whole epoch is remote-durable. When the stage is capped,
// writers block until the drain frees enough occupancy — the same
// backpressure regime the real TieredBackend applies with space_cv_.
//
// This isolates the one effect bench_tiered measures on the real mount:
// checkpoint absorption happens at staging bandwidth while durability
// trails at remote bandwidth, with stage occupancy bounded by what the
// drain has not yet evicted. Everything is deterministic on virtual
// time: two identical runs produce byte-identical counter sequences,
// which tests/test_tiered.cpp asserts by replaying the scenario twice.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/backend_sim.h"

namespace crfs::sim {

class TieredBackendSim : public BackendSim {
 public:
  struct Options {
    /// Staging-tier bandwidth (bytes/s) — the absorption speed.
    double stage_bw = 1.0 * 1024 * 1024 * 1024;
    /// Remote-tier bandwidth (bytes/s) — the durability speed.
    double remote_bw = 64.0 * 1024 * 1024;
    /// Fixed per-call cost (seconds) on either tier.
    double per_call = 50e-6;
    /// Stage capacity in bytes; 0 = unbounded (no backpressure).
    std::uint64_t stage_cap = 0;
    /// Drain granularity: bytes copied per remote write.
    std::uint64_t drain_chunk = 4 * 1024 * 1024;
  };

  explicit TieredBackendSim(Simulation& sim) : TieredBackendSim(sim, Options{}) {}
  TieredBackendSim(Simulation& sim, Options opts)
      : sim_(sim),
        opts_(opts),
        stage_station_(sim, 1),
        remote_station_(sim, 1),
        sealed_cv_(sim),
        space_cv_(sim) {
    sim_.spawn(drain_loop());
  }

  /// A client write: block for stage space if capped, then serve at
  /// staging speed. Bytes accrue to the currently open epoch unit.
  Task write_call(unsigned, FileId, std::uint64_t, std::uint64_t len,
                  bool) override {
    while (opts_.stage_cap != 0 && !stopping_ &&
           stage_used_ + len > opts_.stage_cap) {
      stalls_ += 1;
      co_await space_cv_.wait();
    }
    stage_used_ += len;
    open_bytes_ += len;
    co_await stage_station_.acquire();
    co_await sim_.delay(opts_.per_call + static_cast<double>(len) / opts_.stage_bw);
    stage_station_.release();
    staged_bytes_ += len;
    writes_ += 1;
  }

  Task close_file(unsigned, FileId, bool) override { co_return; }

  /// Restore reads are served from whichever tier still holds the bytes;
  /// the sim charges staging speed while any staged bytes remain (the
  /// common restore-soon-after-checkpoint case), remote speed otherwise.
  Task read_call(unsigned, FileId, std::uint64_t, std::uint64_t len, bool) override {
    const double bw = stage_used_ > 0 ? opts_.stage_bw : opts_.remote_bw;
    co_await sim_.delay(opts_.per_call + static_cast<double>(len) / bw);
    read_bytes_ += len;
  }

  /// Seals the open unit under `epoch_id` and wakes the drain — the sim
  /// analogue of EpochTracker's finalize listener calling seal_epoch().
  void seal_epoch(std::uint64_t epoch_id) {
    if (open_bytes_ == 0) return;
    sealed_.push_back(Unit{epoch_id, open_bytes_, sim_.now()});
    open_bytes_ = 0;
    units_sealed_ += 1;
    sealed_cv_.pulse();
  }

  /// Lets run() terminate: the drain exits once the sealed queue empties.
  void stop() override {
    stopping_ = true;
    sealed_cv_.pulse();
    space_cv_.pulse();
  }

  // -- Deterministic observables (asserted byte-identical across replays) --
  std::uint64_t writes() const { return writes_; }
  std::uint64_t staged_bytes() const { return staged_bytes_; }
  std::uint64_t drained_bytes() const { return drained_bytes_; }
  std::uint64_t units_sealed() const { return units_sealed_; }
  std::uint64_t units_evicted() const { return units_evicted_; }
  std::uint64_t stalls() const { return stalls_; }
  std::uint64_t stage_used() const { return stage_used_; }
  std::uint64_t stage_peak() const { return stage_peak_; }
  double last_drain_end_s() const { return last_drain_end_s_; }
  /// Max (drain completion - seal) over all drained units: durability lag.
  double max_drain_lag_s() const { return max_drain_lag_s_; }

 private:
  struct Unit {
    std::uint64_t epoch_id;
    std::uint64_t bytes;
    double seal_s;
  };

  Task drain_loop() {
    for (;;) {
      while (sealed_.empty()) {
        if (stopping_) co_return;
        co_await sealed_cv_.wait();
      }
      const Unit unit = sealed_.front();
      sealed_.pop_front();
      // Copy the unit to the remote in drain_chunk steps; eviction (the
      // stage_used_ release) happens only after the WHOLE unit is
      // remote-durable, mirroring drain_unit()'s pwrite-all-then-fsync
      // ordering in the real backend.
      std::uint64_t left = unit.bytes;
      while (left > 0) {
        const std::uint64_t step = left < opts_.drain_chunk ? left : opts_.drain_chunk;
        co_await remote_station_.acquire();
        co_await sim_.delay(opts_.per_call +
                            static_cast<double>(step) / opts_.remote_bw);
        remote_station_.release();
        drained_bytes_ += step;
        left -= step;
      }
      if (stage_used_ > stage_peak_) stage_peak_ = stage_used_;
      stage_used_ -= unit.bytes < stage_used_ ? unit.bytes : stage_used_;
      units_evicted_ += 1;
      last_drain_end_s_ = sim_.now();
      const double lag = sim_.now() - unit.seal_s;
      if (lag > max_drain_lag_s_) max_drain_lag_s_ = lag;
      space_cv_.pulse();
    }
  }

  Simulation& sim_;
  const Options opts_;
  Resource stage_station_;
  Resource remote_station_;
  Event sealed_cv_;
  Event space_cv_;
  bool stopping_ = false;

  std::deque<Unit> sealed_;
  std::uint64_t stage_used_ = 0;
  std::uint64_t stage_peak_ = 0;
  std::uint64_t open_bytes_ = 0;

  std::uint64_t writes_ = 0;
  std::uint64_t staged_bytes_ = 0;
  std::uint64_t drained_bytes_ = 0;
  std::uint64_t units_sealed_ = 0;
  std::uint64_t units_evicted_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t read_bytes_ = 0;
  double last_drain_end_s_ = 0.0;
  double max_drain_lag_s_ = 0.0;
};

}  // namespace crfs::sim
