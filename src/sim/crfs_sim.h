// CrfsSimNode: the CRFS pipeline in virtual time.
//
// One instance per simulated node, mirroring the real implementation in
// src/crfs: a FUSE request path (write splitting at max_write), a finite
// buffer pool (blocking acquire = backpressure), a work queue, and a pool
// of IO threads issuing chunk-sized writes to the backend. close_file()
// implements the paper's §IV-C contract: flush the partial chunk, then
// block until complete-chunk count equals write-chunk count.
//
// Costs come from Calibration: per-FUSE-request crossing cost, the extra
// buffer copy, per-chunk bookkeeping. Everything else (how long a chunk
// pwrite takes) is the backend model's business.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>

#include "crfs/config.h"
#include "crfs/knobs.h"
#include "obs/epoch.h"
#include "obs/health.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/slo.h"
#include "obs/slow_store.h"
#include "sim/backend_sim.h"

namespace crfs::sim {

class CrfsSimNode {
 public:
  CrfsSimNode(Simulation& sim, const Calibration& cal, BackendSim& backend,
              unsigned node, crfs::Config config, crfs::FuseOptions fuse, unsigned ppn);

  /// Spawns the IO worker tasks. Call once before any app_write.
  void start();

  /// Application write of `len` bytes appended to `file` (checkpoint
  /// streams are sequential). Completes when the app's write() returns —
  /// i.e. after FUSE routing and the copy into the current chunk, having
  /// possibly blocked on buffer-pool backpressure.
  Task app_write(FileId file, std::uint64_t len);

  /// Application read of `len` bytes at `offset` of `file` — the restart
  /// scan in virtual time. Mirrors Crfs::read: flush-before-read barrier
  /// over this file's outstanding chunks, sequential-scan detection
  /// arming a prefetch window of chunk-sized backend reads (bounded by
  /// the readahead_window knob and free pool chunks), and a blocking
  /// backend read for whatever the window missed. Completes when the
  /// app's read() would return.
  Task app_read(FileId file, std::uint64_t offset, std::uint64_t len);

  /// §IV-C close: enqueue the partial chunk, wait for all outstanding
  /// chunk writes of this file, then close on the backend.
  Task close_file(FileId file);

  /// Lets IO workers exit once the queue drains (end of experiment).
  void stop();

  std::uint64_t chunks_flushed() const { return chunks_flushed_; }
  std::uint64_t pool_waits() const { return pool_waits_; }

  /// The node's metric registry, mirroring the real pipeline's schema
  /// (crfs.pool.free_chunks, crfs.queue.depth, crfs.io.pwrite_ns/_bytes
  /// — see docs/OBSERVABILITY.md) with virtual-time nanoseconds, so an
  /// obs::Sampler and HealthMonitor run unchanged over a simulated node.
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }

  /// Drives `sampler` every `interval_s` of virtual time until stop() —
  /// the deterministic twin of the real mount's sampler thread. Spawn it
  /// alongside the workload:
  ///   sim.spawn(node.sample_loop(sampler, 0.010));
  Task sample_loop(obs::Sampler& sampler, double interval_s);

  /// Trace-lane ids when Simulation tracing is on: one lane for the
  /// node's app/FUSE side, one per IO worker — same span names as the
  /// real pipeline ("write"/"pwrite"/"drain"), so real and simulated
  /// Chrome traces are directly comparable.
  std::uint32_t app_lane() const { return node_ * 100; }
  std::uint32_t io_lane(unsigned worker) const { return node_ * 100 + 1 + worker; }

  // -- Checkpoint epochs (virtual-time twin of Crfs::epoch_*) ---------------
  /// Starts an explicit epoch at the current virtual time. No-op when
  /// Config::epoch_tracking is off.
  void epoch_begin(const std::string& label);
  /// Finalizes the active epoch at the current virtual time.
  void epoch_end();
  /// Finished EpochRecords on virtual nanoseconds. Deterministic: two
  /// runs of the same workload produce byte-identical epochs_to_json().
  std::vector<obs::EpochRecord> epochs() const;

  // -- Tail-latency forensics (virtual-time twin of Crfs::slow_store) -------
  /// Slow-chunk exemplars on virtual nanoseconds. Trace ids come from the
  /// node's own deterministic counter, so two runs of the same workload
  /// produce byte-identical slow_json().
  obs::SlowStore& slow_store() { return slow_; }
  const obs::SlowStore& slow_store() const { return slow_; }
  std::string slow_json() const { return slow_.to_json(); }

  // -- Durable journal + SLO mirror (virtual-time twins) --------------------
  /// Telemetry journal on virtual nanoseconds (nullptr unless
  /// Config::journal_dir is set). No flusher thread: sample_loop drives
  /// appends and flushes, and every frame carries a virtual timestamp, so
  /// two replays of the same workload produce byte-identical segments.
  obs::Journal* journal() { return journal_.get(); }
  /// SLO burn-rate monitor on virtual time (nullptr unless slo targets
  /// are configured). Deterministic: two runs of the same workload
  /// produce byte-identical slo_json().
  obs::SloMonitor* slo_monitor() { return slo_.get(); }
  std::string slo_json() const {
    return slo_ != nullptr ? slo_->to_json() : "{\"enabled\":false}";
  }
  /// Structured events on virtual time (SLO breach/recovery land here).
  obs::EventBuffer& events() { return events_; }

  /// Current virtual time as integer nanoseconds (the clock the epoch
  /// ledger and the mirrored histograms run on).
  std::uint64_t now_ns() const { return static_cast<std::uint64_t>(sim_.now() * 1e9); }

  // -- Control plane (virtual-time twin of the mount's knob plane) ----------
  /// Same knob names and bounds semantics as Crfs::define_knobs, applied
  /// straight to the sim state the io_worker re-reads every iteration:
  /// pool_chunks mutates the free-chunk count (and pulses waiters on
  /// grow), io_batch/uring_depth mutate the config the worker consults,
  /// epoch_gap_ms re-arms the tracker; uring_depth is vetoed on the sync
  /// engine, exactly like the real mount. An obs::Controller wired to
  /// this plane and driven from sample_loop's ticks replays policy
  /// decisions deterministically on virtual time.
  crfs::KnobPlane& knob_plane() { return knobs_; }

 private:
  /// One prefetched chunk-sized read in the window (mirror of
  /// Readahead::Slot, minus the bytes — virtual time carries no payload).
  struct ReadSlot {
    std::uint64_t offset = 0;
    std::uint64_t len = 0;
    bool done = false;      ///< backend read completed
    bool consumed = false;  ///< at least one app read was served from it
    std::unique_ptr<Event> completion;
  };

  struct FileState {
    std::uint64_t append = 0;        ///< next file offset
    bool has_chunk = false;
    std::uint64_t chunk_offset = 0;  ///< file offset of current chunk
    std::uint64_t chunk_fill = 0;
    std::uint64_t chunk_born_ns = 0; ///< virtual ns of first copy-in
    std::uint64_t chunk_trace_id = 0;  ///< causal chain id of the current chunk
    std::uint64_t chunk_stall_ns = 0;  ///< pool wait paid acquiring it
    std::uint64_t write_chunks = 0;
    std::uint64_t complete_chunks = 0;
    std::unique_ptr<Event> completion;
    /// Epoch the file's bytes attribute to (mirror of FileEntry::epoch).
    std::shared_ptr<obs::EpochState> epoch;
    // -- Restart-scan mirror (Readahead::FileState) --
    std::uint64_t read_next = 0;  ///< offset a sequential scan would hit next
    unsigned read_streak = 0;     ///< consecutive sequential reads (>=2 arms)
    std::deque<std::shared_ptr<ReadSlot>> read_slots;  ///< window, front = oldest
  };

  struct Job {
    FileId file{};
    std::uint64_t offset = 0;
    std::uint64_t len = 0;
    /// Chunk-lifecycle ledger mirror: virtual-ns stamps and the epoch
    /// captured at enqueue (mirror of WriteJob + the chunk's causal id).
    std::uint64_t born_ns = 0;
    std::uint64_t enqueue_ns = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t stall_ns = 0;
    std::shared_ptr<obs::EpochState> epoch;
  };

  Task io_worker(unsigned worker);
  /// Registers the runtime knob set against the sim state (ctor tail).
  void define_knobs();
  /// Tick tail of sample_loop: SLO observation, journal sample frame,
  /// cold-sink (epoch/slow) journaling, journal flush — the deterministic
  /// twin of the real mount's composite tick observer.
  void observe_sample(const obs::Sample& s);
  /// One coalesced run's backend write plus all per-chunk completion
  /// bookkeeping (pwrite histograms, epoch attribution, pool release).
  /// The sync engine awaits it inline (worker blocked for the duration,
  /// exactly the pre-engine pipeline); the uring mirror spawns it as a
  /// concurrent task gated on engine_inflight_ < uring_depth, modelling
  /// submission/completion decoupling in virtual time. `engine_slot` is
  /// true for spawned runs, which release their ring slot on completion.
  Task write_run(std::vector<Job> run, std::uint64_t dequeue_now, unsigned worker,
                 bool engine_slot);
  FileState& state(FileId file);
  /// Enqueues the file's current chunk (if non-empty).
  void flush_chunk(FileState& st, FileId file);
  /// One in-flight window read: backend read, then mark done and pulse.
  Task prefetch_read(FileId file, std::shared_ptr<ReadSlot> slot);
  /// Evicts the whole window (seek/close), waiting out in-flight reads;
  /// unconsumed slots count as wasted prefetch.
  Task drop_read_window(FileState& st);
  /// Issues chunk reads until the window covers `readahead_window` chunks
  /// ahead of `next` (bounded by EOF and free pool chunks — opportunistic,
  /// never starves checkpoint writers).
  void top_up_read_window(FileState& st, FileId file, std::uint64_t next);

  Simulation& sim_;
  const Calibration& cal_;
  BackendSim& backend_;
  unsigned node_;
  crfs::Config config_;
  crfs::FuseOptions fuse_;
  unsigned ppn_;

  unsigned free_chunks_;
  Resource fuse_station_;   ///< the node's serialized FUSE request queue
  Event chunk_available_;
  std::deque<Job> queue_;
  Event job_ready_;
  /// Uring mirror: runs currently "in the ring" (spawned write_run tasks
  /// not yet completed) and the event their completions pulse so a worker
  /// blocked at full depth can submit again.
  unsigned engine_inflight_ = 0;
  Event cqe_slot_;
  bool stopping_ = false;
  std::uint64_t chunks_flushed_ = 0;
  std::uint64_t pool_waits_ = 0;
  std::unordered_map<FileId, FileState> files_;

  // Virtual-time telemetry (same names as the real mount's registry).
  obs::Registry metrics_;
  obs::LatencyHistogram* h_pwrite_ = nullptr;
  obs::Counter* c_pwrite_bytes_ = nullptr;
  obs::LatencyHistogram* h_lag_ = nullptr;
  obs::LatencyHistogram* h_inflight_depth_ = nullptr;
  // Read-path mirror (same crfs.read.* schema as the real mount).
  obs::LatencyHistogram* h_read_ = nullptr;
  obs::LatencyHistogram* h_read_inflight_ = nullptr;
  obs::Counter* c_read_ops_ = nullptr;
  obs::Counter* c_read_bytes_ = nullptr;
  obs::Counter* c_prefetch_issued_ = nullptr;
  obs::Counter* c_prefetch_hits_ = nullptr;
  obs::Counter* c_prefetch_wasted_ = nullptr;
  obs::Counter* c_sync_preads_ = nullptr;

  /// Epoch ledger on virtual time (nullptr when Config::epoch_tracking is
  /// off). Same EpochTracker as the real mount; only the clock differs.
  std::unique_ptr<obs::EpochTracker> epochs_;

  /// Slow-exemplar store on virtual time (same SlowStore as the mount).
  obs::SlowStore slow_;
  /// Event buffer + journal/SLO mirror (see journal()/slo_monitor()).
  obs::EventBuffer events_;
  std::unique_ptr<obs::Journal> journal_;
  std::unique_ptr<obs::SloMonitor> slo_;
  std::unique_ptr<obs::SloExtractor> slo_extract_;
  std::uint64_t journaled_epochs_ = 0;
  std::uint64_t journaled_slow_ = 0;
  /// Deterministic causal-id counter (mirror of Crfs::next_trace_id_; a
  /// plain integer — the sim is single-threaded).
  std::uint64_t next_trace_id_ = 1;

  /// Runtime knob plane (see knob_plane()).
  crfs::KnobPlane knobs_;
};

}  // namespace crfs::sim
