#include "sim/experiment.h"

#include <algorithm>
#include <memory>

#include "blcr/checkpoint_writer.h"
#include "blcr/process_image.h"
#include "sim/crfs_sim.h"
#include "sim/ext3_sim.h"
#include "sim/lustre_sim.h"
#include "sim/nfs_sim.h"
#include "sim/pvfs2_sim.h"

namespace crfs::sim {
namespace {

struct RankOutcome {
  double seconds = 0.0;
  trace::WriteRecorder recorder;
};

// One rank's checkpoint: replay the BLCR write plan, then close.
Task rank_proc(Simulation& sim, BackendSim& backend, CrfsSimNode* crfs_node,
               unsigned node, FileId file, std::vector<blcr::PlannedWrite> plan,
               bool record, RankOutcome& out) {
  const double start = sim.now();
  std::uint64_t offset = 0;
  for (const auto& op : plan) {
    const double t0 = sim.now();
    if (crfs_node != nullptr) {
      co_await crfs_node->app_write(file, op.size);
    } else {
      co_await backend.write_call(node, file, offset, op.size, /*via_crfs=*/false);
    }
    if (record) out.recorder.record(op.size, t0 - start, sim.now() - t0);
    offset += op.size;
  }
  if (crfs_node != nullptr) {
    co_await crfs_node->close_file(file);
  } else {
    co_await backend.close_file(node, file, /*via_crfs=*/false);
  }
  out.seconds = sim.now() - start;
}

std::unique_ptr<BackendSim> make_backend(const ExperimentConfig& cfg, Simulation& sim,
                                         unsigned sim_nodes) {
  switch (cfg.backend) {
    case BackendKind::kExt3:
      return std::make_unique<Ext3Sim>(sim, cfg.cal, sim_nodes, cfg.ppn, cfg.seed);
    case BackendKind::kLustre:
      return std::make_unique<LustreSim>(sim, cfg.cal, sim_nodes, cfg.ppn, cfg.seed);
    case BackendKind::kNfs:
      return std::make_unique<NfsSim>(sim, cfg.cal, sim_nodes, cfg.ppn, cfg.seed);
    case BackendKind::kPvfs2:
      return std::make_unique<Pvfs2Sim>(sim, cfg.cal, sim_nodes, cfg.ppn, cfg.seed);
  }
  return nullptr;
}

}  // namespace

const char* backend_name(BackendKind k) {
  switch (k) {
    case BackendKind::kExt3: return "ext3";
    case BackendKind::kLustre: return "lustre";
    case BackendKind::kNfs: return "nfs";
    case BackendKind::kPvfs2: return "pvfs2";
  }
  return "?";
}

const char* mode_name(FsMode m) { return m == FsMode::kNative ? "Native" : "CRFS"; }

std::string ExperimentConfig::describe() const {
  return std::string(mpi::stack_name(stack)) + " " +
         mpi::benchmark_tag(lu_class, total_processes()) + " on " + backend_name(backend) +
         " [" + mode_name(mode) + "] " + std::to_string(nodes) + "x" + std::to_string(ppn);
}

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  Simulation sim;

  // ext3 shortcut: nodes are independent, so simulate one.
  const bool shortcut = cfg.backend == BackendKind::kExt3 && cfg.ext3_single_node;
  const unsigned sim_nodes = shortcut ? 1 : cfg.nodes;
  const unsigned nprocs_global = cfg.total_processes();
  const std::uint64_t image_bytes =
      mpi::image_bytes_per_process(cfg.stack, cfg.lu_class, nprocs_global);

  auto backend = make_backend(cfg, sim, sim_nodes);

  std::vector<std::unique_ptr<CrfsSimNode>> crfs_nodes;
  if (cfg.mode == FsMode::kCrfs) {
    crfs_nodes.reserve(sim_nodes);
    for (unsigned n = 0; n < sim_nodes; ++n) {
      crfs_nodes.push_back(std::make_unique<CrfsSimNode>(
          sim, cfg.cal, *backend, n, cfg.crfs_config, cfg.fuse, cfg.ppn));
      crfs_nodes.back()->start();
    }
  }

  const unsigned sim_ranks = sim_nodes * cfg.ppn;
  std::vector<RankOutcome> outcomes(sim_ranks);

  for (unsigned node = 0; node < sim_nodes; ++node) {
    for (unsigned p = 0; p < cfg.ppn; ++p) {
      const unsigned rank = node * cfg.ppn + p;
      const auto image = blcr::ProcessImage::synthesize(
          rank, image_bytes, cfg.seed ^ (0x5151ULL * (rank + 1)));
      auto plan = blcr::CheckpointWriter::plan(image);
      CrfsSimNode* crfs_node = cfg.mode == FsMode::kCrfs ? crfs_nodes[node].get() : nullptr;
      outcomes[rank].recorder = trace::WriteRecorder(static_cast<int>(rank));
      sim.spawn(rank_proc(sim, *backend, crfs_node, node, static_cast<FileId>(rank),
                          std::move(plan), cfg.record_writes, outcomes[rank]));
    }
  }

  // The rank tasks were all spawned at t=0 (phase-1 barrier). run() ends
  // when no scheduled events remain: every rank has then closed, and any
  // daemon coroutine still parked on an idle-wait is simply destroyed
  // with the simulation (destroying a suspended coroutine is well-
  // defined; nothing resumes it afterwards).
  sim.run();

  ExperimentResult result;
  result.rank_seconds.reserve(sim_ranks);
  double sum = 0;
  for (auto& o : outcomes) {
    result.rank_seconds.push_back(o.seconds);
    sum += o.seconds;
    if (cfg.record_writes) result.profile.add(o.recorder);
  }
  result.mean_rank_seconds = sim_ranks ? sum / sim_ranks : 0.0;
  result.max_rank_seconds =
      *std::max_element(result.rank_seconds.begin(), result.rank_seconds.end());
  result.min_rank_seconds =
      *std::min_element(result.rank_seconds.begin(), result.rank_seconds.end());
  result.total_bytes = static_cast<std::uint64_t>(image_bytes) * nprocs_global;

  if (const auto* trace = backend->disk_trace(0)) {
    result.disk_summary = trace->summarize();
    result.disk_scatter = trace->scatter_points();
  } else if (cfg.backend == BackendKind::kNfs) {
    const auto* server = static_cast<NfsSim*>(backend.get())->server_disk_trace();
    result.disk_summary = server->summarize();
    result.disk_scatter = server->scatter_points();
  }
  return result;
}

CellResult run_cell(mpi::Stack stack, mpi::LuClass cls, BackendKind backend,
                    unsigned nodes, unsigned ppn, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.stack = stack;
  cfg.lu_class = cls;
  cfg.nodes = nodes;
  cfg.ppn = ppn;
  cfg.backend = backend;
  cfg.seed = seed;

  cfg.mode = FsMode::kNative;
  CellResult cell;
  cell.native_seconds = run_experiment(cfg).mean_rank_seconds;
  cfg.mode = FsMode::kCrfs;
  cell.crfs_seconds = run_experiment(cfg).mean_rank_seconds;
  return cell;
}

}  // namespace crfs::sim
