// BackendSim: a simulated backend filesystem under checkpoint load.
//
// The three implementations model the paper's evaluation targets:
//   Ext3Sim    node-local ext3 (journal-coupled writers, page cache with
//              dirty throttling, SATA disk with seeks, blktrace capture)
//   LustreSim  1 MDS + 3 OSTs over IB (per-op client costs, grant-limited
//              client cache, striped RPCs to OST stations)
//   NfsSim     single NFSv3 server over IPoIB (client cache, flush +
//              commit on close, server disk with seeks)
//
// The client-visible contract mirrors what CRFS and native writers see on
// a real mount: write_call() completes when the write() syscall would
// return; close_file() completes when close() would return (for NFS that
// includes the flush/commit storm).
#pragma once

#include <cstdint>

#include "sim/calibration.h"
#include "sim/engine.h"
#include "trace/block_trace.h"

namespace crfs::sim {

/// Identifies one checkpoint file (one rank) within the experiment.
using FileId = int;

class BackendSim {
 public:
  virtual ~BackendSim() = default;

  /// One client-visible write of `len` bytes at `offset` of `file`,
  /// issued from `node`. `via_crfs` selects the CRFS-shaped access
  /// pattern costs (large aligned writes, no metadata storm) vs the
  /// native BLCR pattern.
  virtual Task write_call(unsigned node, FileId file, std::uint64_t offset,
                          std::uint64_t len, bool via_crfs) = 0;

  /// Client-visible close().
  virtual Task close_file(unsigned node, FileId file, bool via_crfs) = 0;

  /// One client-visible read of `len` bytes at `offset` of `file`
  /// (restart traffic). Write-only experiment models inherit a free read;
  /// backends that charge for reads override this.
  virtual Task read_call(unsigned node, FileId file, std::uint64_t offset,
                         std::uint64_t len, bool via_crfs) {
    (void)node;
    (void)file;
    (void)offset;
    (void)len;
    (void)via_crfs;
    co_return;
  }

  /// Tells background daemons (writeback, servers) to exit once idle so
  /// Simulation::run() terminates.
  virtual void stop() = 0;

  /// Node-local disk trace (ext3 only; null otherwise).
  virtual const trace::BlockTrace* disk_trace(unsigned node) const {
    (void)node;
    return nullptr;
  }

  virtual std::uint64_t disk_seeks(unsigned node) const {
    (void)node;
    return 0;
  }
};

/// Effective per-stream copy bandwidth with `ppn` active writers on a
/// node (memory-bandwidth contention).
inline double contended_copy_bw(const Calibration& cal, unsigned ppn) {
  return cal.copy_bw / (1.0 + cal.copy_contention * (ppn > 0 ? ppn - 1 : 0));
}

}  // namespace crfs::sim
