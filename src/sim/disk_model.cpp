#include "sim/disk_model.h"

#include <cmath>

namespace crfs::sim {

DiskSim::DiskSim(Simulation& sim, double seq_bw, double seek, double jitter_sigma,
                 std::uint64_t rng_seed)
    : sim_(sim),
      station_(sim, 1),
      seq_bw_(seq_bw),
      seek_(seek),
      jitter_sigma_(jitter_sigma),
      rng_(rng_seed) {}

Task DiskSim::write(std::uint64_t offset, std::uint64_t len) {
  co_await station_.acquire();

  double service = static_cast<double>(len) / seq_bw_;
  if (offset != head_) {
    service += seek_;
    seeks_ += 1;
  }
  if (jitter_sigma_ > 0) {
    service *= std::exp(rng_.normal(0.0, jitter_sigma_));
  }

  trace_.record(sim_.now(), offset, len);
  head_ = offset + len;
  bytes_ += len;
  requests_ += 1;

  co_await sim_.delay(service);
  station_.release();
}

}  // namespace crfs::sim
