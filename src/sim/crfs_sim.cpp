#include "sim/crfs_sim.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace crfs::sim {
namespace {

// Minimal JSON string escaping for the journal meta frame (same contract
// as the per-TU helpers in src/obs: quotes, backslashes, control chars).
void append_meta_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

CrfsSimNode::CrfsSimNode(Simulation& sim, const Calibration& cal, BackendSim& backend,
                         unsigned node, crfs::Config config, crfs::FuseOptions fuse,
                         unsigned ppn)
    : sim_(sim),
      cal_(cal),
      backend_(backend),
      node_(node),
      config_(config),
      fuse_(fuse),
      ppn_(ppn),
      free_chunks_(static_cast<unsigned>(config.num_chunks() > 0 ? config.num_chunks() : 1)),
      fuse_station_(sim, 1),
      chunk_available_(sim),
      job_ready_(sim),
      cqe_slot_(sim),
      slow_(config.slow_exemplars,
            static_cast<std::uint64_t>(config.slow_capture_ms) * 1'000'000) {
  // Same registry schema as the real mount (crfs.cpp), read on virtual
  // time by an obs::Sampler via sample_loop(). The single-threaded sim
  // pays nothing for the atomics.
  h_pwrite_ = &metrics_.histogram("crfs.io.pwrite_ns");
  c_pwrite_bytes_ = &metrics_.counter("crfs.io.pwrite_bytes");
  h_lag_ = &metrics_.histogram("crfs.chunk.durability_lag_ns");
  // Registered for both engines (schema parity with the real mount); only
  // the uring mirror records non-trivial depths.
  h_inflight_depth_ = &metrics_.histogram("crfs.io.inflight_depth");
  // Restart-scan mirror: same crfs.read.* schema as the real mount, so an
  // obs::Controller's shed_readahead rule ticks unchanged on virtual time.
  h_read_ = &metrics_.histogram("crfs.read.pread_ns");
  h_read_inflight_ = &metrics_.histogram("crfs.read.inflight_depth");
  c_read_ops_ = &metrics_.counter("crfs.read.ops");
  c_read_bytes_ = &metrics_.counter("crfs.read.bytes");
  c_prefetch_issued_ = &metrics_.counter("crfs.read.prefetch_issued");
  c_prefetch_hits_ = &metrics_.counter("crfs.read.prefetch_hits");
  c_prefetch_wasted_ = &metrics_.counter("crfs.read.prefetch_wasted");
  c_sync_preads_ = &metrics_.counter("crfs.read.sync_preads");
  metrics_.gauge_fn("crfs.io.engine_inflight",
                    [this] { return static_cast<std::int64_t>(engine_inflight_); });
  metrics_.gauge_fn("crfs.pool.free_chunks",
                    [this] { return static_cast<std::int64_t>(free_chunks_); });
  metrics_.gauge_fn("crfs.queue.depth",
                    [this] { return static_cast<std::int64_t>(queue_.size()); });
  if (config_.epoch_tracking) {
    epochs_ = std::make_unique<obs::EpochTracker>(
        obs::EpochTracker::Options{
            .gap_ns = static_cast<std::uint64_t>(config_.epoch_gap_ms) * 1'000'000,
            .ledger_capacity = config_.epoch_ledger},
        &metrics_);
  }
  // Journal/SLO mirror: same construction gates as the real mount, but no
  // flusher thread — observe_sample() drives flushes on virtual time, so
  // segment bytes replay identically.
  if (!config_.journal_dir.empty()) {
    journal_ = std::make_unique<obs::Journal>(
        obs::JournalOptions{.dir = config_.journal_dir,
                            .segment_bytes = config_.journal_segment_bytes,
                            .max_bytes = config_.journal_max_bytes,
                            .flush_ms = config_.journal_flush_ms,
                            .fsync_ms = config_.journal_fsync_ms},
        &metrics_);
    events_.set_listener([this](const obs::Event& ev) {
      journal_->append(obs::FrameType::kEvent, ev.ts_ns, ev.to_json());
    });
    std::string meta = "{\"crfs_journal\":1,\"config\":\"";
    append_meta_escaped(meta, config_.describe());
    meta += "\",\"sample_ms\":" + std::to_string(config_.sample_ms);
    meta += ",\"slo\":";
    meta += config_.slo_enabled() ? config_.slo_config().to_json() : std::string("null");
    meta += "}";
    journal_->set_meta(meta, now_ns());
  }
  if (config_.slo_enabled()) {
    slo_ = std::make_unique<obs::SloMonitor>(config_.slo_config(), &metrics_, &events_);
  }
  if (journal_ != nullptr || slo_ != nullptr) {
    slo_extract_ = std::make_unique<obs::SloExtractor>();
  }
  define_knobs();
}

void CrfsSimNode::define_knobs() {
  // Same names/bounds as Crfs::define_knobs; the applies mutate config_
  // and free_chunks_, which io_worker/app_write re-read each iteration —
  // a tune takes effect on the next virtual-time step, mirroring the
  // atomic re-reads of the real pipeline.
  const std::size_t pool_cap_bytes =
      config_.tune_pool_max != 0 ? config_.tune_pool_max : config_.pool_size * 4;
  const std::size_t pool_cap_chunks =
      std::max<std::size_t>(1, pool_cap_bytes / config_.chunk_size);
  knobs_.define(
      crfs::KnobDef{"pool_chunks", 1.0, static_cast<double>(pool_cap_chunks), "chunks"},
      static_cast<double>(config_.num_chunks()),
      [this](double v, double* achieved, std::string* reason) {
        const auto target = static_cast<std::size_t>(v);
        const std::size_t total = config_.num_chunks();
        std::size_t got = target;
        if (target > total) {
          free_chunks_ += static_cast<unsigned>(target - total);
          chunk_available_.pulse();
        } else if (target < total) {
          // Shrink best-effort over free chunks, like BufferPool::resize.
          const std::size_t removable =
              std::min<std::size_t>(total - target, free_chunks_);
          free_chunks_ -= static_cast<unsigned>(removable);
          got = total - removable;
          if (got != target) *reason = "shrink bounded by free chunks";
        }
        config_.pool_size = got * config_.chunk_size;
        *achieved = static_cast<double>(got);
        return true;
      });
  knobs_.define(
      crfs::KnobDef{"io_batch", 1.0, static_cast<double>(config_.tune_io_batch_max),
                    "chunks"},
      static_cast<double>(config_.io_batch),
      [this](double v, double* achieved, std::string* reason) {
        const auto cap = static_cast<unsigned>(
            std::max<std::size_t>(1, config_.num_chunks() / 2));
        const auto want = static_cast<unsigned>(v);
        const unsigned eff = std::min(want, cap);
        config_.io_batch = eff;
        if (eff != want) {
          *achieved = static_cast<double>(eff);
          *reason = "capped at half the pool (" + std::to_string(cap) + " chunks)";
        }
        return true;
      });
  knobs_.define(
      crfs::KnobDef{"uring_depth", 1.0, 4096.0, "sqes"},
      static_cast<double>(config_.uring_depth),
      [this](double v, double*, std::string* reason) {
        if (config_.io_engine != IoEngineKind::kUring) {
          *reason = "io engine 'sync' has no ring";
          return false;
        }
        config_.uring_depth = static_cast<unsigned>(v);
        return true;
      });
  knobs_.define(
      crfs::KnobDef{"slow_capture_ms", 0.0, 100000.0, "ms"},
      static_cast<double>(config_.slow_capture_ms),
      [this](double v, double*, std::string*) {
        slow_.set_threshold_ns(static_cast<std::uint64_t>(v) * 1'000'000);
        return true;
      });
  knobs_.define(
      crfs::KnobDef{"epoch_gap_ms", 1.0, 600000.0, "ms"},
      static_cast<double>(config_.epoch_gap_ms),
      [this](double v, double*, std::string* reason) {
        if (epochs_ == nullptr) {
          *reason = "epoch tracking disabled (no_epochs)";
          return false;
        }
        epochs_->set_gap_ns(static_cast<std::uint64_t>(v) * 1'000'000);
        return true;
      });
  knobs_.define(
      crfs::KnobDef{"readahead", 0.0, 1.0, "bool"},
      config_.readahead ? 1.0 : 0.0,
      [this](double v, double*, std::string*) {
        config_.readahead = v >= 0.5;
        return true;
      });
  knobs_.define(
      crfs::KnobDef{"readahead_window", 1.0, 1024.0, "chunks"},
      static_cast<double>(config_.readahead_window),
      [this](double v, double*, std::string*) {
        config_.readahead_window = static_cast<unsigned>(v);
        return true;
      });
}

void CrfsSimNode::start() {
  for (unsigned i = 0; i < config_.io_threads; ++i) {
    sim_.spawn(io_worker(i));
  }
}

CrfsSimNode::FileState& CrfsSimNode::state(FileId file) {
  auto it = files_.find(file);
  if (it == files_.end()) {
    it = files_.emplace(file, FileState{}).first;
    it->second.completion = std::make_unique<Event>(sim_);
    // Files have no separate open() in the sim; first touch is the open.
    // Synthetic path keeps ckpt-heuristic behaviour reachable via FileId.
    if (epochs_ != nullptr) {
      it->second.epoch =
          epochs_->on_open("sim/file" + std::to_string(file), now_ns());
    }
  }
  return it->second;
}

void CrfsSimNode::flush_chunk(FileState& st, FileId file) {
  if (!st.has_chunk || st.chunk_fill == 0) return;
  Job job;
  job.file = file;
  job.offset = st.chunk_offset;
  job.len = st.chunk_fill;
  job.born_ns = st.chunk_born_ns;
  job.enqueue_ns = now_ns();
  job.trace_id = st.chunk_trace_id;
  job.stall_ns = st.chunk_stall_ns;
  job.epoch = st.epoch;
  if (job.epoch != nullptr) {
    job.epoch->chunks.fetch_add(1, std::memory_order_relaxed);
  }
  queue_.push_back(std::move(job));
  st.write_chunks += 1;
  st.has_chunk = false;
  st.chunk_fill = 0;
  chunks_flushed_ += 1;
  job_ready_.pulse();
}

Task CrfsSimNode::app_write(FileId file, std::uint64_t len) {
  const double span_start = sim_.now();
  FileState& st = state(file);
  const std::uint64_t max_req = fuse_.max_write();
  std::uint64_t span_trace_id = 0;  ///< last chunk acquired (mirror of write())

  std::uint64_t remaining = len;
  while (remaining > 0) {
    const std::uint64_t req = std::min(remaining, max_req);
    const std::uint64_t req_start_ns = now_ns();
    std::uint64_t req_stall_ns = 0;
    // The FUSE request queue serializes all writers on the node: each
    // request pays the user<->kernel crossing plus the payload copy into
    // the chunk buffer (the paper's "multiple buffer copies" overhead).
    const double cost = cal_.fuse_request_cost + cal_.syscall_overhead +
                        static_cast<double>(req) * (1.0 + cal_.crfs_extra_copies) /
                            (cal_.fuse_station_bw * (1.0 + cal_.crfs_extra_copies));
    co_await fuse_station_.acquire();
    co_await sim_.delay(cost);
    fuse_station_.release();

    // Mirror of Crfs::write's epoch attribution: one bump per FUSE-sized
    // request (that is what the real mount sees as one write() call).
    if (st.epoch != nullptr) {
      st.epoch->app_writes.fetch_add(1, std::memory_order_relaxed);
      st.epoch->bytes.fetch_add(req, std::memory_order_relaxed);
    }

    std::uint64_t req_remaining = req;
    while (req_remaining > 0) {
      if (!st.has_chunk) {
        // Buffer-pool acquire: may block until an IO worker releases.
        // Birth is stamped BEFORE the wait (mirror of write()'s t0), so
        // the chunk's fill window splits into stall + copy like the real
        // pipeline's.
        const double pool_wait_start = sim_.now();
        const std::uint64_t born = now_ns();
        while (free_chunks_ == 0) {
          pool_waits_ += 1;
          co_await chunk_available_.wait();
        }
        const std::uint64_t stall =
            static_cast<std::uint64_t>((sim_.now() - pool_wait_start) * 1e9);
        if (st.epoch != nullptr && stall > 0) {
          st.epoch->pool_stall_ns.fetch_add(stall, std::memory_order_relaxed);
        }
        req_stall_ns += stall;
        free_chunks_ -= 1;
        st.has_chunk = true;
        st.chunk_offset = st.append;
        st.chunk_fill = 0;
        st.chunk_born_ns = born;
        st.chunk_trace_id = next_trace_id_++;
        st.chunk_stall_ns = stall;
        span_trace_id = st.chunk_trace_id;
      }
      const std::uint64_t space = config_.chunk_size - st.chunk_fill;
      const std::uint64_t take = std::min(space, req_remaining);
      st.chunk_fill += take;
      st.append += take;
      req_remaining -= take;
      if (st.chunk_fill == config_.chunk_size) {
        flush_chunk(st, file);
      }
    }
    // Critical-path attribution mirror: this request's elapsed time minus
    // its pool stalls is the copy stage (same quantity write() charges).
    if (st.epoch != nullptr) {
      const std::uint64_t req_elapsed = now_ns() - req_start_ns;
      st.epoch->copy_ns.fetch_add(
          req_elapsed > req_stall_ns ? req_elapsed - req_stall_ns : 0,
          std::memory_order_relaxed);
    }
    remaining -= req;
  }
  sim_.trace_complete("write", app_lane(), span_start, sim_.now(), span_trace_id);
}

Task CrfsSimNode::prefetch_read(FileId file, std::shared_ptr<ReadSlot> slot) {
  co_await backend_.read_call(node_, file, slot->offset, slot->len, /*via_crfs=*/true);
  slot->done = true;
  slot->completion->pulse();
}

Task CrfsSimNode::drop_read_window(FileState& st) {
  // In-flight reads must land before their pool chunks can be released
  // (mirror of Readahead::drop_cache_locked waiting out the engine).
  while (!st.read_slots.empty()) {
    auto slot = st.read_slots.front();
    while (!slot->done) co_await slot->completion->wait();
    if (!slot->consumed) c_prefetch_wasted_->add(1);
    st.read_slots.pop_front();
    free_chunks_ += 1;
    chunk_available_.pulse();
  }
}

void CrfsSimNode::top_up_read_window(FileState& st, FileId file, std::uint64_t next) {
  if (!config_.readahead || st.read_streak < 2) return;
  const std::size_t window = std::max(1u, config_.readahead_window);
  std::uint64_t cover_end = next;
  if (!st.read_slots.empty()) {
    cover_end = std::max(cover_end,
                         st.read_slots.back()->offset + st.read_slots.back()->len);
  }
  // Opportunistic, like pool_->try_acquire: stop at EOF (st.append — the
  // sim's files are exactly what was written) or an empty pool.
  while (st.read_slots.size() < window && cover_end < st.append && free_chunks_ > 0) {
    free_chunks_ -= 1;
    auto slot = std::make_shared<ReadSlot>();
    slot->offset = cover_end;
    slot->len = std::min<std::uint64_t>(config_.chunk_size, st.append - cover_end);
    slot->completion = std::make_unique<Event>(sim_);
    st.read_slots.push_back(slot);
    c_prefetch_issued_->add(1);
    sim_.spawn(prefetch_read(file, slot));
    cover_end += slot->len;
  }
  unsigned inflight = 0;
  for (const auto& s : st.read_slots) {
    if (!s->done) inflight += 1;
  }
  h_read_inflight_->record(inflight);
}

Task CrfsSimNode::app_read(FileId file, std::uint64_t offset, std::uint64_t len) {
  const double span_start = sim_.now();
  const std::uint64_t t0 = now_ns();
  FileState& st = state(file);

  // flush_before_read mirror: barrier exactly this file's pending chunks.
  flush_chunk(st, file);
  const std::uint64_t target = st.write_chunks;
  if (st.complete_chunks < target) {
    const double wait_start = sim_.now();
    while (st.complete_chunks < target) co_await st.completion->wait();
    sim_.trace_complete("read_barrier", app_lane(), wait_start, sim_.now());
    if (st.epoch != nullptr) {
      st.epoch->barrier_ns.fetch_add(
          static_cast<std::uint64_t>((sim_.now() - wait_start) * 1e9),
          std::memory_order_relaxed);
    }
  }

  // Sequential-scan detection: a seek evicts the window.
  if (offset == st.read_next) {
    st.read_streak += 1;
  } else {
    co_await drop_read_window(st);
    st.read_streak = 1;
  }

  // FUSE request path: the kernel crossing plus the copy-out to the app,
  // serialized on the node's request queue like writes.
  const std::uint64_t end = std::min(offset + len, st.append);
  const std::uint64_t span = end > offset ? end - offset : 0;
  const std::uint64_t max_req = fuse_.max_write();
  const std::uint64_t requests = span == 0 ? 1 : (span + max_req - 1) / max_req;
  const double fuse_cost =
      static_cast<double>(requests) * (cal_.fuse_request_cost + cal_.syscall_overhead) +
      static_cast<double>(span) / cal_.fuse_station_bw;
  co_await fuse_station_.acquire();
  co_await sim_.delay(fuse_cost);
  fuse_station_.release();

  // Serve from the window front-to-back, then a blocking tail.
  std::uint64_t pos = offset;
  while (pos < end && !st.read_slots.empty()) {
    auto slot = st.read_slots.front();
    if (pos < slot->offset) break;  // gap below the window: sync tail
    if (pos >= slot->offset + slot->len) {
      while (!slot->done) co_await slot->completion->wait();
      if (!slot->consumed) c_prefetch_wasted_->add(1);
      st.read_slots.pop_front();
      free_chunks_ += 1;
      chunk_available_.pulse();
      continue;
    }
    while (!slot->done) co_await slot->completion->wait();
    if (!slot->consumed) {
      slot->consumed = true;
      c_prefetch_hits_->add(1);
    }
    pos = std::min(end, slot->offset + slot->len);
    if (pos == slot->offset + slot->len) {
      st.read_slots.pop_front();
      free_chunks_ += 1;
      chunk_available_.pulse();
    }
  }
  if (pos < end) {
    c_sync_preads_->add(1);
    co_await backend_.read_call(node_, file, pos, end - pos, /*via_crfs=*/true);
    pos = end;
  }

  top_up_read_window(st, file, pos);

  st.read_next = pos;
  c_read_ops_->add(1);
  c_read_bytes_->add(pos - offset);
  h_read_->record(now_ns() - t0);
  sim_.trace_complete("read", app_lane(), span_start, sim_.now());
}

Task CrfsSimNode::io_worker(unsigned worker) {
  for (;;) {
    while (queue_.empty()) {
      if (stopping_) co_return;
      co_await job_ready_.wait();
    }
    // Mirror of IoThreadPool's batch dequeue (docs/PERFORMANCE.md): drain
    // up to io_batch already-queued jobs, group them by file (stable —
    // FIFO order preserved within a file, like the real pool), and issue
    // one backend call per run of adjacent chunks. Per-chunk bookkeeping
    // cost survives coalescing; the backend call does not.
    std::vector<Job> batch;
    // Same half-the-pool batch cap as Crfs::mount: a batch's chunks stay
    // out of the pool until the coalesced write lands, so an uncapped
    // batch would lockstep the simulated pipeline too.
    const std::size_t batch_cap = std::max<std::size_t>(1, config_.num_chunks() / 2);
    const std::size_t max_batch =
        std::min<std::size_t>(config_.io_batch == 0 ? 1 : config_.io_batch, batch_cap);
    // One dequeue stamp for the whole batch (pop_batch holds the lock
    // once in the real pool; virtual time does not advance inside it).
    const std::uint64_t dequeue_now = now_ns();
    while (!queue_.empty() && batch.size() < max_batch) {
      batch.push_back(queue_.front());
      queue_.pop_front();
    }
    std::stable_sort(batch.begin(), batch.end(),
                     [](const Job& a, const Job& b) { return a.file < b.file; });

    std::size_t i = 0;
    while (i < batch.size()) {
      std::size_t j = i + 1;
      while (j < batch.size() && batch[j].file == batch[i].file &&
             batch[j - 1].offset + batch[j - 1].len == batch[j].offset) {
        ++j;
      }
      std::vector<Job> run(batch.begin() + static_cast<std::ptrdiff_t>(i),
                           batch.begin() + static_cast<std::ptrdiff_t>(j));
      if (config_.io_engine == IoEngineKind::kUring) {
        // Uring mirror: the worker only *submits* — the run proceeds as
        // its own task while the worker returns for more jobs, gated on
        // ring capacity exactly like UringEngine::submit's depth drain.
        while (engine_inflight_ >= config_.uring_depth) {
          co_await cqe_slot_.wait();
        }
        engine_inflight_ += 1;
        h_inflight_depth_->record(engine_inflight_);
        sim_.spawn(write_run(std::move(run), dequeue_now, worker, /*engine_slot=*/true));
      } else {
        // Sync engine: the worker is the run (blocking pwrite), exactly
        // the pre-engine pipeline.
        co_await write_run(std::move(run), dequeue_now, worker, /*engine_slot=*/false);
      }
      i = j;
    }
  }
}

Task CrfsSimNode::write_run(std::vector<Job> run, std::uint64_t dequeue_now,
                            unsigned worker, bool engine_slot) {
  std::uint64_t run_len = 0;
  for (const Job& job : run) run_len += job.len;

  const double pwrite_start = sim_.now();
  const std::uint64_t submit_ns = now_ns();
  co_await sim_.delay(cal_.crfs_chunk_overhead * static_cast<double>(run.size()));
  co_await backend_.write_call(node_, run.front().file, run.front().offset, run_len,
                               /*via_crfs=*/true);
  // Causal chain mirror of complete_run: retro-record queue and submit
  // spans from the stamps the jobs carry, then the device span, all under
  // the jobs' trace ids.
  for (const Job& job : run) {
    if (job.enqueue_ns != 0 && dequeue_now > job.enqueue_ns) {
      sim_.trace_complete("queue", io_lane(worker),
                          static_cast<double>(job.enqueue_ns) / 1e9,
                          static_cast<double>(dequeue_now) / 1e9, job.trace_id);
    }
    if (submit_ns > dequeue_now) {
      sim_.trace_complete("submit", io_lane(worker),
                          static_cast<double>(dequeue_now) / 1e9,
                          static_cast<double>(submit_ns) / 1e9, job.trace_id);
    }
  }
  sim_.trace_complete("pwrite", io_lane(worker), pwrite_start, sim_.now(),
                      run.front().trace_id);
  h_pwrite_->record(static_cast<std::uint64_t>((sim_.now() - pwrite_start) * 1e9));
  c_pwrite_bytes_->add(run_len);

  // Mirror of IoThreadPool::complete_run's ledger attribution: the
  // backend call goes to the run's leading epoch, durability per job;
  // submit-wait and device time are charged once per run.
  const std::uint64_t t_done = now_ns();
  if (run.front().epoch != nullptr) {
    obs::EpochState& ep = *run.front().epoch;
    ep.backend_writes.fetch_add(1, std::memory_order_relaxed);
    if (submit_ns > dequeue_now) {
      ep.submit_wait_ns.fetch_add(submit_ns - dequeue_now, std::memory_order_relaxed);
    }
    if (t_done > submit_ns) {
      ep.device_ns.fetch_add(t_done - submit_ns, std::memory_order_relaxed);
    }
  }
  for (const Job& job : run) {
    const std::uint64_t lag =
        job.born_ns != 0 && t_done > job.born_ns ? t_done - job.born_ns : 0;
    const std::uint64_t residency =
        dequeue_now > job.enqueue_ns ? dequeue_now - job.enqueue_ns : 0;
    if (job.born_ns != 0) h_lag_->record(lag);
    if (job.epoch != nullptr) {
      job.epoch->record_chunk_durable(job.len, lag, residency);
    }
    const std::uint64_t device =
        t_done > submit_ns ? t_done - submit_ns : 0;
    if (slow_.over_threshold(lag, device)) {
      // Same exemplar shape as the real IO pool, on virtual time; two
      // replays of one workload capture byte-identical chains.
      obs::SlowExemplar ex;
      ex.trace_id = job.trace_id;
      ex.path = "sim/file" + std::to_string(job.file);
      ex.offset = job.offset;
      ex.len = job.len;
      ex.born_ns = job.born_ns;
      ex.enqueue_ns = job.enqueue_ns;
      ex.dequeue_ns = dequeue_now;
      ex.submit_ns = submit_ns;
      ex.durable_ns = t_done;
      ex.pool_stall_ns = job.stall_ns;
      ex.fill_ns = job.born_ns != 0 && job.enqueue_ns > job.born_ns
                       ? job.enqueue_ns - job.born_ns
                       : 0;
      ex.queue_ns = residency;
      ex.submit_wait_ns = submit_ns > dequeue_now ? submit_ns - dequeue_now : 0;
      ex.device_ns = device;
      ex.total_lag_ns = lag;
      ex.queue_depth = queue_.size();
      ex.free_chunks = free_chunks_;
      ex.knob_generation = knobs_.generation();
      ex.engine = io_engine_name(config_.io_engine);
      slow_.capture(std::move(ex));
    }
  }

  for (const Job& job : run) {
    FileState& st = state(job.file);
    st.complete_chunks += 1;
    st.completion->pulse();
    free_chunks_ += 1;
    chunk_available_.pulse();
  }
  if (engine_slot) {
    engine_inflight_ -= 1;
    cqe_slot_.pulse();
  }
}

Task CrfsSimNode::close_file(FileId file) {
  FileState& st = state(file);
  flush_chunk(st, file);
  // Releasing an empty current chunk (open but never filled).
  if (st.has_chunk) {
    st.has_chunk = false;
    free_chunks_ += 1;
    chunk_available_.pulse();
  }
  const std::uint64_t target = st.write_chunks;
  const double drain_start = sim_.now();
  while (st.complete_chunks < target) {
    co_await st.completion->wait();
  }
  sim_.trace_complete("drain", app_lane(), drain_start, sim_.now());
  // Critical-path mirror of Crfs::drain: the close/fsync barrier wait.
  if (st.epoch != nullptr && sim_.now() > drain_start) {
    st.epoch->barrier_ns.fetch_add(
        static_cast<std::uint64_t>((sim_.now() - drain_start) * 1e9),
        std::memory_order_relaxed);
  }
  // Evict the restart window (mirror of Crfs::close -> Readahead::evict).
  co_await drop_read_window(st);
  st.read_streak = 0;
  st.read_next = 0;
  co_await backend_.close_file(node_, file, /*via_crfs=*/true);
  if (epochs_ != nullptr) {
    epochs_->on_close("sim/file" + std::to_string(file), now_ns());
  }
}

void CrfsSimNode::stop() {
  stopping_ = true;
  job_ready_.pulse();
  // All closes have drained by the time an experiment stops its node, so
  // the final record carries complete durable counts.
  if (epochs_ != nullptr) epochs_->finalize_open(now_ns());
  if (journal_ != nullptr) {
    // Catch the epoch just finalized, then seal the tail. stop() flushes
    // with the wall clock, which only times the final fsync — every frame
    // already carries its virtual timestamp, so the bytes stay replayable.
    const std::uint64_t t = now_ns();
    if (epochs_ != nullptr) {
      const std::uint64_t total = epochs_->total_finalized();
      if (total > journaled_epochs_) {
        const auto recs = epochs_->records();
        std::uint64_t owed = total - journaled_epochs_;
        if (owed > recs.size()) owed = recs.size();
        for (std::size_t i = recs.size() - static_cast<std::size_t>(owed);
             i < recs.size(); ++i) {
          journal_->append(obs::FrameType::kEpoch, recs[i].end_ns, recs[i].to_json());
        }
        journaled_epochs_ = total;
      }
    }
    journal_->flush(t, /*force_fsync=*/true);
  }
}

void CrfsSimNode::epoch_begin(const std::string& label) {
  if (epochs_ != nullptr) epochs_->begin(label, now_ns());
}

void CrfsSimNode::epoch_end() {
  if (epochs_ != nullptr) epochs_->end(now_ns());
}

std::vector<obs::EpochRecord> CrfsSimNode::epochs() const {
  if (epochs_ == nullptr) return {};
  return epochs_->records();
}

Task CrfsSimNode::sample_loop(obs::Sampler& sampler, double interval_s) {
  while (!stopping_) {
    co_await sim_.delay(interval_s);
    observe_sample(sampler.tick(static_cast<std::uint64_t>(sim_.now() * 1e9)));
  }
}

void CrfsSimNode::observe_sample(const obs::Sample& s) {
  if (slo_extract_ != nullptr) {
    const obs::SloInput in = slo_extract_->extract(s);
    if (slo_ != nullptr) slo_->observe(in);
    if (journal_ != nullptr) {
      journal_->append(obs::FrameType::kSample, s.ts_ns,
                       obs::journal_sample_json(s, in));
    }
  }
  if (journal_ == nullptr) return;
  // Cold sinks, exactly like Crfs::journal_poll_cold_sinks: journal
  // whatever finalized since the last tick, indexing from the tail.
  if (epochs_ != nullptr) {
    const std::uint64_t total = epochs_->total_finalized();
    if (total > journaled_epochs_) {
      const auto recs = epochs_->records();
      std::uint64_t owed = total - journaled_epochs_;
      if (owed > recs.size()) owed = recs.size();
      for (std::size_t i = recs.size() - static_cast<std::size_t>(owed);
           i < recs.size(); ++i) {
        journal_->append(obs::FrameType::kEpoch, recs[i].end_ns, recs[i].to_json());
      }
      journaled_epochs_ = total;
    }
  }
  const std::uint64_t captured = slow_.captured();
  if (captured > journaled_slow_) {
    const auto exemplars = slow_.snapshot();
    std::uint64_t owed = captured - journaled_slow_;
    if (owed > exemplars.size()) owed = exemplars.size();
    for (std::size_t i = exemplars.size() - static_cast<std::size_t>(owed);
         i < exemplars.size(); ++i) {
      journal_->append(obs::FrameType::kSlow, exemplars[i].durable_ns,
                       exemplars[i].to_json());
    }
    journaled_slow_ = captured;
  }
  // Flush on virtual time: frame bytes (and rotation points) depend only
  // on the workload, never on wall-clock scheduling.
  journal_->tick(s.ts_ns);
}

}  // namespace crfs::sim
