// Decorator backends used by tests and demos:
//   * FaultyBackend    - injects an error on the Nth write (or on fsync),
//                        exercising CRFS's failure propagation: the error
//                        must surface at the application's close()/fsync().
//   * ThrottledBackend - caps write bandwidth and adds fixed per-op
//                        latency, letting real-mode examples demonstrate
//                        the IO-thread throttle without a slow disk.
#pragma once

#include <atomic>
#include <chrono>
#include <thread>

#include "backend/backend_fs.h"

namespace crfs {

/// Forwards everything to `inner`, failing selected operations.
class FaultyBackend final : public BackendFs {
 public:
  explicit FaultyBackend(std::shared_ptr<BackendFs> inner) : inner_(std::move(inner)) {}

  /// After this many successful pwrites, every further pwrite fails with
  /// EIO. Negative disables (default).
  void fail_writes_after(std::int64_t n) { fail_after_ = n; }
  /// Makes every fsync fail with EIO.
  void fail_fsync(bool on) { fail_fsync_ = on; }
  /// Makes every open fail with EACCES.
  void fail_open(bool on) { fail_open_ = on; }

  Result<BackendFile> open_file(const std::string& path, OpenFlags flags) override {
    if (fail_open_) return Error{EACCES, "injected open failure"};
    return inner_->open_file(path, flags);
  }
  Status close_file(BackendFile f) override { return inner_->close_file(f); }
  Status pwrite(BackendFile f, std::span<const std::byte> d, std::uint64_t off) override {
    const std::int64_t limit = fail_after_.load();
    if (limit >= 0 && writes_.fetch_add(1) >= limit) {
      return Error{EIO, "injected write failure"};
    }
    return inner_->pwrite(f, d, off);
  }
  Result<std::size_t> pread(BackendFile f, std::span<std::byte> d, std::uint64_t off) override {
    return inner_->pread(f, d, off);
  }
  Status fsync(BackendFile f) override {
    if (fail_fsync_) return Error{EIO, "injected fsync failure"};
    return inner_->fsync(f);
  }
  Status truncate(BackendFile f, std::uint64_t s) override { return inner_->truncate(f, s); }
  Result<BackendStat> stat(const std::string& p) override { return inner_->stat(p); }
  Status mkdir(const std::string& p) override { return inner_->mkdir(p); }
  Status rmdir(const std::string& p) override { return inner_->rmdir(p); }
  Status unlink(const std::string& p) override { return inner_->unlink(p); }
  Status rename(const std::string& a, const std::string& b) override {
    return inner_->rename(a, b);
  }
  Result<std::vector<std::string>> list_dir(const std::string& p) override {
    return inner_->list_dir(p);
  }
  std::string name() const override { return "faulty(" + inner_->name() + ")"; }

 private:
  std::shared_ptr<BackendFs> inner_;
  std::atomic<std::int64_t> fail_after_{-1};
  std::atomic<std::int64_t> writes_{0};
  std::atomic<bool> fail_fsync_{false};
  std::atomic<bool> fail_open_{false};
};

/// Rate-limits pwrite to `bytes_per_second` with `per_op_latency` added to
/// every write, emulating a slow/remote backend in real time. Reads pass
/// through untouched unless throttle_reads(true) — restore benches use
/// that to make the cold-read scan feel a slow device while the existing
/// write-side demos keep their fast passthrough reads.
class ThrottledBackend final : public BackendFs {
 public:
  ThrottledBackend(std::shared_ptr<BackendFs> inner, double bytes_per_second,
                   std::chrono::microseconds per_op_latency = {})
      : inner_(std::move(inner)),
        bytes_per_second_(bytes_per_second),
        per_op_latency_(per_op_latency) {}

  /// Applies the same bandwidth cap + per-op latency to pread/preadv.
  void throttle_reads(bool on) { throttle_reads_.store(on, std::memory_order_relaxed); }

  Result<BackendFile> open_file(const std::string& path, OpenFlags flags) override {
    return inner_->open_file(path, flags);
  }
  Status close_file(BackendFile f) override { return inner_->close_file(f); }
  Status pwrite(BackendFile f, std::span<const std::byte> d, std::uint64_t off) override {
    delay(d.size());
    return inner_->pwrite(f, d, off);
  }
  Result<std::size_t> pread(BackendFile f, std::span<std::byte> d, std::uint64_t off) override {
    if (throttle_reads_.load(std::memory_order_relaxed)) delay(d.size());
    return inner_->pread(f, d, off);
  }
  Status fsync(BackendFile f) override { return inner_->fsync(f); }
  Status truncate(BackendFile f, std::uint64_t s) override { return inner_->truncate(f, s); }
  Result<BackendStat> stat(const std::string& p) override { return inner_->stat(p); }
  Status mkdir(const std::string& p) override { return inner_->mkdir(p); }
  Status rmdir(const std::string& p) override { return inner_->rmdir(p); }
  Status unlink(const std::string& p) override { return inner_->unlink(p); }
  Status rename(const std::string& a, const std::string& b) override {
    return inner_->rename(a, b);
  }
  Result<std::vector<std::string>> list_dir(const std::string& p) override {
    return inner_->list_dir(p);
  }
  std::string name() const override { return "throttled(" + inner_->name() + ")"; }

 private:
  void delay(std::size_t bytes) {
    const auto transfer =
        std::chrono::duration<double>(static_cast<double>(bytes) / bytes_per_second_);
    std::this_thread::sleep_for(per_op_latency_ + transfer);
  }

  std::shared_ptr<BackendFs> inner_;
  double bytes_per_second_;
  std::chrono::microseconds per_op_latency_;
  std::atomic<bool> throttle_reads_{false};
};

}  // namespace crfs
