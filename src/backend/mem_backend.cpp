#include "backend/mem_backend.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace crfs {

MemBackend::MemBackend() {
  auto root = std::make_shared<Node>();
  root->is_dir = true;
  tree_[""] = std::move(root);
}

std::string MemBackend::normalize(const std::string& path) {
  std::string out;
  out.reserve(path.size());
  std::size_t pos = 0;
  while (pos < path.size()) {
    while (pos < path.size() && path[pos] == '/') ++pos;
    std::size_t next = path.find('/', pos);
    if (next == std::string::npos) next = path.size();
    if (next > pos) {
      const std::string comp = path.substr(pos, next - pos);
      if (comp != ".") {
        if (!out.empty()) out += '/';
        out += comp;
      }
    }
    pos = next;
  }
  return out;
}

std::string MemBackend::parent_of(const std::string& norm) {
  const std::size_t slash = norm.rfind('/');
  return slash == std::string::npos ? std::string{} : norm.substr(0, slash);
}

std::shared_ptr<MemBackend::Node> MemBackend::find(const std::string& norm) {
  auto it = tree_.find(norm);
  return it == tree_.end() ? nullptr : it->second;
}

Result<MemBackend::Handle> MemBackend::resolve(BackendFile file, const char* op) const {
  std::lock_guard lock(mu_);
  auto it = handles_.find(file);
  if (it == handles_.end()) return Error{EBADF, op};
  return it->second;
}

Result<BackendFile> MemBackend::open_file(const std::string& path, OpenFlags flags) {
  const std::string norm = normalize(path);
  std::shared_ptr<Node> node;
  BackendFile h;
  {
    std::lock_guard lock(mu_);
    node = find(norm);
    if (node == nullptr) {
      if (!flags.create) return Error{ENOENT, "open " + path};
      auto parent = find(parent_of(norm));
      if (parent == nullptr || !parent->is_dir) return Error{ENOENT, "open parent " + path};
      node = std::make_shared<Node>();
      tree_[norm] = node;
    } else if (node->is_dir) {
      return Error{EISDIR, "open " + path};
    }
    node->open_handles += 1;
    h = next_handle_++;
    handles_[h] = Handle{node, flags.write};
  }
  if (flags.truncate && flags.write) {
    std::lock_guard data_lock(node->data_mu);
    node->data.clear();
  }
  return h;
}

Status MemBackend::close_file(BackendFile file) {
  std::lock_guard lock(mu_);
  auto it = handles_.find(file);
  if (it == handles_.end()) return Error{EBADF, "close"};
  it->second.node->open_handles -= 1;
  handles_.erase(it);
  return {};
}

Status MemBackend::pwrite(BackendFile file, std::span<const std::byte> data,
                          std::uint64_t offset) {
  auto handle = resolve(file, "pwrite");
  if (!handle.ok()) return handle.error();
  if (!handle.value().writable) return Error{EBADF, "pwrite on read-only handle"};
  Node& node = *handle.value().node;
  {
    std::lock_guard lock(node.data_mu);
    const std::uint64_t end = offset + data.size();
    if (node.data.size() < end) node.data.resize(end);  // holes are zero-filled
    std::memcpy(node.data.data() + offset, data.data(), data.size());
  }
  pwrite_calls_.fetch_add(1, std::memory_order_relaxed);
  pwrite_bytes_.fetch_add(data.size(), std::memory_order_relaxed);
  return {};
}

Status MemBackend::pwritev(BackendFile file, std::span<const BackendIoVec> iov,
                           std::uint64_t offset) {
  auto handle = resolve(file, "pwritev");
  if (!handle.ok()) return handle.error();
  if (!handle.value().writable) return Error{EBADF, "pwritev on read-only handle"};
  std::size_t total = 0;
  for (const auto& seg : iov) total += seg.len;
  Node& node = *handle.value().node;
  {
    std::lock_guard lock(node.data_mu);
    const std::uint64_t end = offset + total;
    if (node.data.size() < end) node.data.resize(end);
    std::byte* dst = node.data.data() + offset;
    for (const auto& seg : iov) {
      std::memcpy(dst, seg.data, seg.len);
      dst += seg.len;
    }
  }
  pwrite_calls_.fetch_add(1, std::memory_order_relaxed);
  pwrite_bytes_.fetch_add(total, std::memory_order_relaxed);
  return {};
}

Result<std::size_t> MemBackend::pread(BackendFile file, std::span<std::byte> data,
                                      std::uint64_t offset) {
  auto handle = resolve(file, "pread");
  if (!handle.ok()) return handle.error();
  Node& node = *handle.value().node;
  std::lock_guard lock(node.data_mu);
  if (offset >= node.data.size()) return std::size_t{0};
  const std::size_t n = std::min<std::uint64_t>(data.size(), node.data.size() - offset);
  std::memcpy(data.data(), node.data.data() + offset, n);
  return n;
}

Status MemBackend::fsync(BackendFile file) {
  auto handle = resolve(file, "fsync");
  if (!handle.ok()) return handle.error();
  Node& node = *handle.value().node;
  std::lock_guard lock(node.data_mu);
  node.fsyncs += 1;
  return {};
}

Status MemBackend::truncate(BackendFile file, std::uint64_t size) {
  auto handle = resolve(file, "truncate");
  if (!handle.ok()) return handle.error();
  Node& node = *handle.value().node;
  std::lock_guard lock(node.data_mu);
  node.data.resize(size);
  return {};
}

Result<BackendStat> MemBackend::stat(const std::string& path) {
  std::shared_ptr<Node> node;
  {
    std::lock_guard lock(mu_);
    node = find(normalize(path));
  }
  if (node == nullptr) return Error{ENOENT, "stat " + path};
  BackendStat st;
  st.is_dir = node->is_dir;
  {
    std::lock_guard lock(node->data_mu);
    st.size = node->data.size();
  }
  return st;
}

Status MemBackend::mkdir(const std::string& path) {
  const std::string norm = normalize(path);
  std::lock_guard lock(mu_);
  if (find(norm) != nullptr) return Error{EEXIST, "mkdir " + path};
  auto parent = find(parent_of(norm));
  if (parent == nullptr || !parent->is_dir) return Error{ENOENT, "mkdir " + path};
  auto node = std::make_shared<Node>();
  node->is_dir = true;
  tree_[norm] = std::move(node);
  return {};
}

Status MemBackend::rmdir(const std::string& path) {
  const std::string norm = normalize(path);
  std::lock_guard lock(mu_);
  auto node = find(norm);
  if (node == nullptr) return Error{ENOENT, "rmdir " + path};
  if (!node->is_dir) return Error{ENOTDIR, "rmdir " + path};
  // Non-empty check: any key strictly inside norm/ ?
  auto it = tree_.upper_bound(norm);
  if (it != tree_.end() && it->first.starts_with(norm + "/")) {
    return Error{ENOTEMPTY, "rmdir " + path};
  }
  tree_.erase(norm);
  return {};
}

Status MemBackend::unlink(const std::string& path) {
  const std::string norm = normalize(path);
  std::lock_guard lock(mu_);
  auto node = find(norm);
  if (node == nullptr) return Error{ENOENT, "unlink " + path};
  if (node->is_dir) return Error{EISDIR, "unlink " + path};
  node->unlinked = true;
  tree_.erase(norm);  // open handles keep the node alive via shared_ptr
  return {};
}

Status MemBackend::rename(const std::string& from, const std::string& to) {
  const std::string nf = normalize(from);
  const std::string nt = normalize(to);
  std::lock_guard lock(mu_);
  auto node = find(nf);
  if (node == nullptr) return Error{ENOENT, "rename " + from};
  auto parent = find(parent_of(nt));
  if (parent == nullptr || !parent->is_dir) return Error{ENOENT, "rename to " + to};
  if (nt == nf || nt.starts_with(nf + "/")) {
    return Error{EINVAL, "rename into self: " + from + " -> " + to};
  }
  // Move the node and, for directories, its whole subtree.
  std::vector<std::pair<std::string, std::shared_ptr<Node>>> moved;
  moved.emplace_back(nt, node);
  if (node->is_dir) {
    const std::string prefix = nf + "/";
    for (auto it = tree_.upper_bound(nf); it != tree_.end();) {
      if (!it->first.starts_with(prefix)) break;
      moved.emplace_back(nt + "/" + it->first.substr(prefix.size()), it->second);
      it = tree_.erase(it);
    }
  }
  tree_.erase(nf);
  for (auto& [key, n] : moved) tree_[key] = std::move(n);
  return {};
}

Result<std::vector<std::string>> MemBackend::list_dir(const std::string& path) {
  const std::string norm = normalize(path);
  std::lock_guard lock(mu_);
  auto node = find(norm);
  if (node == nullptr) return Error{ENOENT, "list " + path};
  if (!node->is_dir) return Error{ENOTDIR, "list " + path};
  std::vector<std::string> names;
  const std::string prefix = norm.empty() ? "" : norm + "/";
  for (auto it = tree_.upper_bound(norm); it != tree_.end(); ++it) {
    const std::string& key = it->first;
    if (!key.starts_with(prefix)) break;
    const std::string rest = key.substr(prefix.size());
    if (rest.find('/') == std::string::npos && !rest.empty()) names.push_back(rest);
  }
  return names;
}

Result<std::vector<std::byte>> MemBackend::contents(const std::string& path) {
  std::shared_ptr<Node> node;
  {
    std::lock_guard lock(mu_);
    node = find(normalize(path));
  }
  if (node == nullptr) return Error{ENOENT, "contents " + path};
  std::lock_guard lock(node->data_mu);
  return node->data;
}

std::uint64_t MemBackend::fsync_count(const std::string& path) {
  std::shared_ptr<Node> node;
  {
    std::lock_guard lock(mu_);
    node = find(normalize(path));
  }
  if (node == nullptr) return 0;
  std::lock_guard lock(node->data_mu);
  return node->fsyncs;
}

}  // namespace crfs
