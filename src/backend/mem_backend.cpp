#include "backend/mem_backend.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace crfs {

MemBackend::MemBackend() {
  auto root = std::make_shared<Node>();
  root->is_dir = true;
  tree_[""] = std::move(root);
}

std::string MemBackend::normalize(const std::string& path) {
  std::string out;
  out.reserve(path.size());
  std::size_t pos = 0;
  while (pos < path.size()) {
    while (pos < path.size() && path[pos] == '/') ++pos;
    std::size_t next = path.find('/', pos);
    if (next == std::string::npos) next = path.size();
    if (next > pos) {
      const std::string comp = path.substr(pos, next - pos);
      if (comp != ".") {
        if (!out.empty()) out += '/';
        out += comp;
      }
    }
    pos = next;
  }
  return out;
}

std::string MemBackend::parent_of(const std::string& norm) {
  const std::size_t slash = norm.rfind('/');
  return slash == std::string::npos ? std::string{} : norm.substr(0, slash);
}

std::shared_ptr<MemBackend::Node> MemBackend::find(const std::string& norm) {
  auto it = tree_.find(norm);
  return it == tree_.end() ? nullptr : it->second;
}

Result<BackendFile> MemBackend::open_file(const std::string& path, OpenFlags flags) {
  const std::string norm = normalize(path);
  std::lock_guard lock(mu_);
  auto node = find(norm);
  if (node == nullptr) {
    if (!flags.create) return Error{ENOENT, "open " + path};
    auto parent = find(parent_of(norm));
    if (parent == nullptr || !parent->is_dir) return Error{ENOENT, "open parent " + path};
    node = std::make_shared<Node>();
    tree_[norm] = node;
  } else if (node->is_dir) {
    return Error{EISDIR, "open " + path};
  }
  if (flags.truncate && flags.write) node->data.clear();
  node->open_handles += 1;
  const BackendFile h = next_handle_++;
  handles_[h] = Handle{node, flags.write};
  return h;
}

Status MemBackend::close_file(BackendFile file) {
  std::lock_guard lock(mu_);
  auto it = handles_.find(file);
  if (it == handles_.end()) return Error{EBADF, "close"};
  it->second.node->open_handles -= 1;
  handles_.erase(it);
  return {};
}

Status MemBackend::pwrite(BackendFile file, std::span<const std::byte> data,
                          std::uint64_t offset) {
  std::lock_guard lock(mu_);
  auto it = handles_.find(file);
  if (it == handles_.end()) return Error{EBADF, "pwrite"};
  if (!it->second.writable) return Error{EBADF, "pwrite on read-only handle"};
  auto& bytes = it->second.node->data;
  const std::uint64_t end = offset + data.size();
  if (bytes.size() < end) bytes.resize(end);  // holes are zero-filled
  std::memcpy(bytes.data() + offset, data.data(), data.size());
  pwrite_calls_.fetch_add(1, std::memory_order_relaxed);
  pwrite_bytes_.fetch_add(data.size(), std::memory_order_relaxed);
  return {};
}

Result<std::size_t> MemBackend::pread(BackendFile file, std::span<std::byte> data,
                                      std::uint64_t offset) {
  std::lock_guard lock(mu_);
  auto it = handles_.find(file);
  if (it == handles_.end()) return Error{EBADF, "pread"};
  const auto& bytes = it->second.node->data;
  if (offset >= bytes.size()) return std::size_t{0};
  const std::size_t n = std::min<std::uint64_t>(data.size(), bytes.size() - offset);
  std::memcpy(data.data(), bytes.data() + offset, n);
  return n;
}

Status MemBackend::fsync(BackendFile file) {
  std::lock_guard lock(mu_);
  auto it = handles_.find(file);
  if (it == handles_.end()) return Error{EBADF, "fsync"};
  it->second.node->fsyncs += 1;
  return {};
}

Status MemBackend::truncate(BackendFile file, std::uint64_t size) {
  std::lock_guard lock(mu_);
  auto it = handles_.find(file);
  if (it == handles_.end()) return Error{EBADF, "truncate"};
  it->second.node->data.resize(size);
  return {};
}

Result<BackendStat> MemBackend::stat(const std::string& path) {
  std::lock_guard lock(mu_);
  auto node = find(normalize(path));
  if (node == nullptr) return Error{ENOENT, "stat " + path};
  BackendStat st;
  st.size = node->data.size();
  st.is_dir = node->is_dir;
  return st;
}

Status MemBackend::mkdir(const std::string& path) {
  const std::string norm = normalize(path);
  std::lock_guard lock(mu_);
  if (find(norm) != nullptr) return Error{EEXIST, "mkdir " + path};
  auto parent = find(parent_of(norm));
  if (parent == nullptr || !parent->is_dir) return Error{ENOENT, "mkdir " + path};
  auto node = std::make_shared<Node>();
  node->is_dir = true;
  tree_[norm] = std::move(node);
  return {};
}

Status MemBackend::rmdir(const std::string& path) {
  const std::string norm = normalize(path);
  std::lock_guard lock(mu_);
  auto node = find(norm);
  if (node == nullptr) return Error{ENOENT, "rmdir " + path};
  if (!node->is_dir) return Error{ENOTDIR, "rmdir " + path};
  // Non-empty check: any key strictly inside norm/ ?
  auto it = tree_.upper_bound(norm);
  if (it != tree_.end() && it->first.starts_with(norm + "/")) {
    return Error{ENOTEMPTY, "rmdir " + path};
  }
  tree_.erase(norm);
  return {};
}

Status MemBackend::unlink(const std::string& path) {
  const std::string norm = normalize(path);
  std::lock_guard lock(mu_);
  auto node = find(norm);
  if (node == nullptr) return Error{ENOENT, "unlink " + path};
  if (node->is_dir) return Error{EISDIR, "unlink " + path};
  node->unlinked = true;
  tree_.erase(norm);  // open handles keep the node alive via shared_ptr
  return {};
}

Status MemBackend::rename(const std::string& from, const std::string& to) {
  const std::string nf = normalize(from);
  const std::string nt = normalize(to);
  std::lock_guard lock(mu_);
  auto node = find(nf);
  if (node == nullptr) return Error{ENOENT, "rename " + from};
  auto parent = find(parent_of(nt));
  if (parent == nullptr || !parent->is_dir) return Error{ENOENT, "rename to " + to};
  if (nt == nf || nt.starts_with(nf + "/")) {
    return Error{EINVAL, "rename into self: " + from + " -> " + to};
  }
  // Move the node and, for directories, its whole subtree.
  std::vector<std::pair<std::string, std::shared_ptr<Node>>> moved;
  moved.emplace_back(nt, node);
  if (node->is_dir) {
    const std::string prefix = nf + "/";
    for (auto it = tree_.upper_bound(nf); it != tree_.end();) {
      if (!it->first.starts_with(prefix)) break;
      moved.emplace_back(nt + "/" + it->first.substr(prefix.size()), it->second);
      it = tree_.erase(it);
    }
  }
  tree_.erase(nf);
  for (auto& [key, n] : moved) tree_[key] = std::move(n);
  return {};
}

Result<std::vector<std::string>> MemBackend::list_dir(const std::string& path) {
  const std::string norm = normalize(path);
  std::lock_guard lock(mu_);
  auto node = find(norm);
  if (node == nullptr) return Error{ENOENT, "list " + path};
  if (!node->is_dir) return Error{ENOTDIR, "list " + path};
  std::vector<std::string> names;
  const std::string prefix = norm.empty() ? "" : norm + "/";
  for (auto it = tree_.upper_bound(norm); it != tree_.end(); ++it) {
    const std::string& key = it->first;
    if (!key.starts_with(prefix)) break;
    const std::string rest = key.substr(prefix.size());
    if (rest.find('/') == std::string::npos && !rest.empty()) names.push_back(rest);
  }
  return names;
}

Result<std::vector<std::byte>> MemBackend::contents(const std::string& path) {
  std::lock_guard lock(mu_);
  auto node = find(normalize(path));
  if (node == nullptr) return Error{ENOENT, "contents " + path};
  return node->data;
}

std::uint64_t MemBackend::fsync_count(const std::string& path) {
  std::lock_guard lock(mu_);
  auto node = find(normalize(path));
  return node == nullptr ? 0 : node->fsyncs;
}

}  // namespace crfs
