// MemBackend: an in-memory BackendFs with a flat namespace tree.
//
// Unit tests stack CRFS over this backend so every aggregation /
// ordering / durability property can be asserted against exact byte
// content without touching the host filesystem. It also powers the
// integrity property tests: after any interleaving of writers, the file
// contents here must equal the writers' source buffers.
//
// Locking is two-level so the backend scales with concurrent streams
// (bench_multistream drives 16 writers through it): `mu_` guards the
// namespace tree and the handle map, while each Node carries its own
// mutex for its data bytes. Data ops (pwrite/pread/...) resolve the
// handle under a brief `mu_` critical section, then do the memcpy under
// the per-node lock only — two streams writing different files never
// serialize on each other.
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <unordered_map>

#include "backend/backend_fs.h"

namespace crfs {

class MemBackend final : public BackendFs {
 public:
  MemBackend();

  Result<BackendFile> open_file(const std::string& path, OpenFlags flags) override;
  Status close_file(BackendFile file) override;
  Status pwrite(BackendFile file, std::span<const std::byte> data,
                std::uint64_t offset) override;
  /// One backend call (and one pwrite_calls_ tick) for the whole run of
  /// segments: a coalesced flush counts as a single aggregated write in
  /// the aggregation-bound tests, same as it would on a real filesystem.
  Status pwritev(BackendFile file, std::span<const BackendIoVec> iov,
                 std::uint64_t offset) override;
  Result<std::size_t> pread(BackendFile file, std::span<std::byte> data,
                            std::uint64_t offset) override;
  Status fsync(BackendFile file) override;
  Status truncate(BackendFile file, std::uint64_t size) override;

  Result<BackendStat> stat(const std::string& path) override;
  Status mkdir(const std::string& path) override;
  Status rmdir(const std::string& path) override;
  Status unlink(const std::string& path) override;
  Status rename(const std::string& from, const std::string& to) override;
  Result<std::vector<std::string>> list_dir(const std::string& path) override;

  std::string name() const override { return "mem"; }

  // -- Test-introspection helpers ---------------------------------------
  /// Full contents of a file (empty + error if missing).
  Result<std::vector<std::byte>> contents(const std::string& path);
  /// Number of fsync() calls observed on the file, for durability tests.
  std::uint64_t fsync_count(const std::string& path);
  /// Number of pwrite/pwritev calls across all files (aggregation tests
  /// assert CRFS issues far fewer backend writes than app writes).
  std::uint64_t total_pwrites() const { return pwrite_calls_.load(); }
  std::uint64_t total_pwritten_bytes() const { return pwrite_bytes_.load(); }

 private:
  struct Node {
    bool is_dir = false;
    mutable std::mutex data_mu;  ///< guards data + fsyncs (never held with mu_)
    std::vector<std::byte> data;
    std::uint64_t fsyncs = 0;
    int open_handles = 0;
    bool unlinked = false;
  };

  struct Handle {
    std::shared_ptr<Node> node;
    bool writable = false;
  };

  /// Normalizes to a canonical "a/b/c" key (no leading slash).
  static std::string normalize(const std::string& path);
  static std::string parent_of(const std::string& norm);

  std::shared_ptr<Node> find(const std::string& norm);

  /// Copies out the handle (node ptr + writable bit) under mu_; the
  /// caller then operates on the node under its own data_mu.
  Result<Handle> resolve(BackendFile file, const char* op) const;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Node>> tree_;  // ordered: list_dir scans
  std::unordered_map<BackendFile, Handle> handles_;
  BackendFile next_handle_ = 1;
  std::atomic<std::uint64_t> pwrite_calls_{0};
  std::atomic<std::uint64_t> pwrite_bytes_{0};
};

}  // namespace crfs
