// PosixBackend: a BackendFs rooted at a real directory.
//
// All paths handed to the backend are interpreted relative to the root
// via openat/mkdirat etc., so a CRFS mount can never escape its backing
// directory even if a caller passes "..".
#pragma once

#include <string>

#include "backend/backend_fs.h"

namespace crfs {

class PosixBackend final : public BackendFs {
 public:
  /// Opens (and requires) an existing directory as the backing root.
  static Result<std::unique_ptr<PosixBackend>> create(const std::string& root);

  ~PosixBackend() override;

  PosixBackend(const PosixBackend&) = delete;
  PosixBackend& operator=(const PosixBackend&) = delete;

  Result<BackendFile> open_file(const std::string& path, OpenFlags flags) override;
  Status close_file(BackendFile file) override;
  Status pwrite(BackendFile file, std::span<const std::byte> data,
                std::uint64_t offset) override;
  /// Native ::pwritev — one syscall for a whole run of adjacent chunks.
  Status pwritev(BackendFile file, std::span<const BackendIoVec> iov,
                 std::uint64_t offset) override;
  /// BackendFile is the fd itself, so async engines can submit directly.
  int raw_fd(BackendFile file) const override { return static_cast<int>(file); }
  Result<std::size_t> pread(BackendFile file, std::span<std::byte> data,
                            std::uint64_t offset) override;
  /// Native ::preadv — one syscall to fill a run of chunk buffers.
  Result<std::size_t> preadv(BackendFile file, std::span<const BackendMutIoVec> iov,
                             std::uint64_t offset) override;
  Status fsync(BackendFile file) override;
  Status truncate(BackendFile file, std::uint64_t size) override;

  Result<BackendStat> stat(const std::string& path) override;
  Status mkdir(const std::string& path) override;
  Status rmdir(const std::string& path) override;
  Status unlink(const std::string& path) override;
  Status rename(const std::string& from, const std::string& to) override;
  Result<std::vector<std::string>> list_dir(const std::string& path) override;

  std::string name() const override { return "posix:" + root_path_; }

 private:
  explicit PosixBackend(int root_fd, std::string root_path);

  /// Strips leading '/' and rejects ".." components.
  static Result<std::string> sanitize(const std::string& path);

  int root_fd_;
  std::string root_path_;
};

}  // namespace crfs
