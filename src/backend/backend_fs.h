// BackendFs: the filesystem CRFS stacks on top of.
//
// The paper mounts CRFS over ext3, NFS, PVFS2, or Lustre; everything CRFS
// needs from the backend is captured by this narrow interface. Concrete
// implementations:
//   * PosixBackend    - a real directory tree (dirfd-relative syscalls)
//   * MemBackend      - in-memory files, used by unit tests
//   * NullBackend     - discards data; used by the Fig 5 raw-bandwidth
//                       bench exactly as the paper does ("once a filled
//                       chunk is picked up by an IO thread it is discarded")
//   * FaultyBackend   - wrapper injecting errors (failure-path tests)
//   * ThrottledBackend- wrapper limiting write bandwidth (contention demos)
//
// The interface is position-based (pwrite/pread): CRFS's IO threads write
// chunks at explicit offsets from multiple threads concurrently, so there
// is deliberately no per-handle file cursor.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"

namespace crfs {

/// Opaque backend file handle. 64-bit so PosixBackend can store an fd and
/// MemBackend an index without heap indirection.
using BackendFile = std::uint64_t;

/// File metadata subset CRFS forwards through getattr.
struct BackendStat {
  std::uint64_t size = 0;
  bool is_dir = false;
  std::uint32_t mode = 0644;
};

/// Flags for open_file. Kept minimal: CRFS only ever opens for write
/// (checkpoint) or read (restart), plus create/truncate.
struct OpenFlags {
  bool create = false;
  bool truncate = false;
  bool write = false;   ///< open read-only when false
};

/// One segment of a vectored write (mirrors struct iovec without pulling
/// <sys/uio.h> into every backend consumer).
struct BackendIoVec {
  const std::byte* data = nullptr;
  std::size_t len = 0;
};

/// One segment of a vectored read (mutable destination buffer).
struct BackendMutIoVec {
  std::byte* data = nullptr;
  std::size_t len = 0;
};

/// Abstract backend filesystem. All methods are thread-safe: CRFS calls
/// them concurrently from application threads and IO-pool threads.
class BackendFs {
 public:
  virtual ~BackendFs() = default;

  virtual Result<BackendFile> open_file(const std::string& path, OpenFlags flags) = 0;
  virtual Status close_file(BackendFile file) = 0;

  /// Writes the full span at `offset`; partial writes are retried
  /// internally so success means every byte landed.
  virtual Status pwrite(BackendFile file, std::span<const std::byte> data,
                        std::uint64_t offset) = 0;

  /// Writes all segments contiguously starting at `offset` (the segments
  /// land back to back, like ::pwritev). The IO pool uses this to issue
  /// one backend call for a run of adjacent chunks. The default forwards
  /// segment by segment through pwrite(), so decorating backends
  /// (FaultyBackend, ThrottledBackend) keep their per-write behaviour;
  /// backends with a cheaper native path override it.
  virtual Status pwritev(BackendFile file, std::span<const BackendIoVec> iov,
                         std::uint64_t offset) {
    std::uint64_t off = offset;
    for (const auto& seg : iov) {
      CRFS_RETURN_IF_ERROR(pwrite(file, {seg.data, seg.len}, off));
      off += seg.len;
    }
    return {};
  }

  /// Raw OS file descriptor behind `file` for async submission engines
  /// (io_uring), or -1 when the backend has no kernel fd (MemBackend,
  /// NullBackend) or deliberately hides it (decorating wrappers return -1
  /// so injected faults / throttling keep applying — the engine then
  /// routes that file's runs through the synchronous pwrite/pwritev
  /// path).
  virtual int raw_fd(BackendFile file) const {
    (void)file;
    return -1;
  }

  /// Reads up to data.size() bytes at `offset`; returns bytes read
  /// (0 at/after EOF).
  virtual Result<std::size_t> pread(BackendFile file, std::span<std::byte> data,
                                    std::uint64_t offset) = 0;

  /// Fills the segments contiguously starting at `offset` (like ::preadv);
  /// returns total bytes read, which is short only at EOF. The default
  /// forwards segment by segment through pread(), so decorating backends
  /// (FaultyBackend, ThrottledBackend) keep their per-read behaviour;
  /// backends with a cheaper native path override it.
  virtual Result<std::size_t> preadv(BackendFile file,
                                     std::span<const BackendMutIoVec> iov,
                                     std::uint64_t offset) {
    std::uint64_t off = offset;
    std::size_t total = 0;
    for (const auto& seg : iov) {
      auto r = pread(file, {seg.data, seg.len}, off);
      if (!r.ok()) return r;
      total += r.value();
      if (r.value() < seg.len) break;  // EOF
      off += seg.len;
    }
    return total;
  }

  /// Flushes file data (and metadata) to stable storage.
  virtual Status fsync(BackendFile file) = 0;

  virtual Status truncate(BackendFile file, std::uint64_t size) = 0;

  // -- Metadata / namespace ops CRFS passes straight through ------------
  virtual Result<BackendStat> stat(const std::string& path) = 0;
  virtual Status mkdir(const std::string& path) = 0;
  virtual Status rmdir(const std::string& path) = 0;
  virtual Status unlink(const std::string& path) = 0;
  virtual Status rename(const std::string& from, const std::string& to) = 0;
  virtual Result<std::vector<std::string>> list_dir(const std::string& path) = 0;

  /// Human-readable backend name for mount banners and reports.
  virtual std::string name() const = 0;
};

}  // namespace crfs
