// TieredBackend: a composing burst-buffer BackendFs (docs/PERFORMANCE.md
// "Tiered staging").
//
// The paper's pipeline decouples write latency from backend bandwidth
// with the buffer pool, but every chunk still drains straight to one
// backend, so sustained checkpoint absorption is capped at backend speed.
// TieredBackend adds the burst-buffer bandwidth multiple: every write
// lands on a fast staging tier (MemBackend, or a PosixBackend on
// NVMe-class local storage) and a background drain thread copies it to
// the slow remote tier asynchronously, so the application absorbs
// checkpoints at staging speed while the remote catches up.
//
// Drain is epoch-aware. Staged bytes are grouped into drain units; the
// mount seals the open unit whenever the epoch ledger finalizes an epoch
// (EpochTracker finalize listener -> seal_epoch), so a unit IS a
// checkpoint. Sealed units drain oldest-first — whole checkpoints at a
// time — and staged data is evicted only once its entire unit is durable
// (pwritten AND fsynced) at the remote. A crash mid-drain therefore never
// leaves the remote with a half-valid newest checkpoint while the stage
// already dropped the bytes.
//
// Coherence: the extent map tracks exactly which byte ranges are staged;
// an overwrite trims older extents (last-writer-wins), so a read serves
// staged ranges from the stage tier and evicted/never-staged ranges from
// the remote, and superseded bytes are never drained over newer ones.
//
// Backpressure: when staged bytes would exceed `stage_cap`, writers block
// until eviction frees space (counted in crfs.tier.stalls/stall_ns); a
// single write larger than the whole cap spills through directly to the
// remote instead (crfs.tier.spill_bytes). While a writer waits with no
// sealed unit pending, the open unit is auto-sealed so the drain can make
// progress — a cap smaller than one epoch degrades to write-through
// rather than deadlocking.
//
// Remote failures: a failed remote pwrite/fsync never loses data — the
// drain retries the whole unit with exponential backoff (stage retains
// every byte), bumps crfs.tier.retries, and raises a "tier_remote_down"
// health event on the first failure of an episode.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "backend/backend_fs.h"
#include "obs/health.h"
#include "obs/metrics.h"

namespace crfs {

/// What fsync() promises: kStage = data durable on the staging tier
/// (fast, the default — restart can re-read from the stage); kRemote =
/// seal the open unit and block until this file's staged bytes are
/// durable at the remote (the paper's backend-durability semantics).
enum class TierFsyncMode { kStage, kRemote };

struct TieredOptions {
  /// Max staged bytes before writers block (0 = unbounded).
  std::uint64_t stage_cap = 0;
  /// Drain bandwidth cap toward the remote, MB/s (0 = unthrottled).
  /// Runtime-tunable via the `drain_mbps` knob.
  double drain_mbps = 0.0;
  /// Helper threads splitting one unit's runs (>= 1). Runtime-tunable via
  /// the `drain_parallel` knob.
  unsigned drain_parallel = 1;
  TierFsyncMode fsync_mode = TierFsyncMode::kStage;
  /// Remote-failure retry backoff: initial, doubling to the max.
  std::chrono::milliseconds retry_backoff{10};
  std::chrono::milliseconds retry_backoff_max{1000};
};

/// Point-in-time tier state (tier_json / stats_json "tier" section).
struct TierStats {
  std::uint64_t stage_used = 0;        ///< staged (not yet evicted) bytes
  std::uint64_t stage_cap = 0;         ///< configured cap (0 = unbounded)
  std::uint64_t staged_bytes = 0;      ///< bytes ever landed on the stage
  std::uint64_t drained_bytes = 0;     ///< bytes ever copied to the remote
  std::uint64_t spill_bytes = 0;       ///< oversized writes sent direct
  std::uint64_t units_sealed = 0;      ///< drain units closed
  std::uint64_t units_evicted = 0;     ///< units fully drained + evicted
  std::uint64_t pending_units = 0;     ///< sealed, not yet evicted
  std::uint64_t stalls = 0;            ///< writer backpressure blocks
  std::uint64_t stall_ns = 0;          ///< total time writers spent blocked
  std::uint64_t retries = 0;           ///< remote-failure drain retries
  std::uint64_t drain_lag_ns = 0;      ///< age of the oldest undrained unit
  double drain_mbps = 0.0;             ///< current drain throttle
  unsigned drain_parallel = 1;         ///< current drain concurrency
};

class TieredBackend final : public BackendFs {
 public:
  TieredBackend(std::shared_ptr<BackendFs> stage, std::shared_ptr<BackendFs> remote,
                TieredOptions opts);

  /// Seals the open unit, drains everything, then joins the drain thread.
  ~TieredBackend() override;

  // -- BackendFs ----------------------------------------------------------
  Result<BackendFile> open_file(const std::string& path, OpenFlags flags) override;
  Status close_file(BackendFile file) override;
  Status pwrite(BackendFile file, std::span<const std::byte> data,
                std::uint64_t offset) override;
  Result<std::size_t> pread(BackendFile file, std::span<std::byte> data,
                            std::uint64_t offset) override;
  Status fsync(BackendFile file) override;
  Status truncate(BackendFile file, std::uint64_t size) override;
  Result<BackendStat> stat(const std::string& path) override;
  Status mkdir(const std::string& path) override;
  Status rmdir(const std::string& path) override;
  Status unlink(const std::string& path) override;
  Status rename(const std::string& from, const std::string& to) override;
  Result<std::vector<std::string>> list_dir(const std::string& path) override;
  std::string name() const override;
  // raw_fd stays -1 (base default): tier routing must see every IO, so
  // the uring engine falls back to the sync path through us — same
  // decorator contract as FaultyBackend/ThrottledBackend.

  // -- Epoch integration ---------------------------------------------------
  /// Closes the open drain unit and labels it with `epoch_id`, making it
  /// eligible for drain. Wired to EpochTracker's finalize listener by the
  /// mount; `epoch_id` 0 marks an unlabelled (auto-sealed) unit.
  void seal_epoch(std::uint64_t epoch_id);

  /// Invoked (off the drain thread, no tier lock held) when a unit's
  /// epoch becomes fully remote-durable; the mount forwards labelled
  /// units into EpochTracker::attach_drain.
  using DrainListener = std::function<void(
      std::uint64_t epoch_id, std::uint64_t drained_bytes, std::uint64_t drain_ns,
      std::uint64_t drain_end_ns)>;
  void set_drain_listener(DrainListener fn);

  /// Attaches the tier's crfs.tier.* metrics and health events. Call
  /// before concurrent IO (Crfs::mount does, via dynamic_cast).
  void bind_obs(obs::Registry* registry, obs::EventBuffer* events);

  // -- Runtime knobs (drain_mbps / drain_parallel) -------------------------
  void set_drain_mbps(double mbps);
  double drain_mbps() const { return drain_mbps_cap_.load(std::memory_order_relaxed); }
  void set_drain_parallel(unsigned n);
  unsigned drain_parallel() const {
    return drain_parallel_.load(std::memory_order_relaxed);
  }

  /// Seals the open unit and blocks until every sealed unit is drained
  /// and evicted (remote-durable). Returns the first drain error seen
  /// this call, if any unit ultimately could not land (shutdown only —
  /// retries otherwise never give up).
  Status flush();

  TierStats tier_stats() const;
  /// {"enabled":true,"stage":...,"remote":...,"stage_used":...,...}.
  std::string tier_json() const;

  BackendFs& stage_tier() { return *stage_; }
  BackendFs& remote_tier() { return *remote_; }

 private:
  /// One staged byte range of a file; `unit` tags the drain unit that
  /// owns it (last writer wins — an overwrite re-tags to the open unit).
  struct Extent {
    std::uint64_t len = 0;
    std::uint64_t unit = 0;
  };

  /// Per-path tier state. Extents are non-overlapping, keyed by offset.
  struct FileState {
    std::string path;
    BackendFile stage_file = 0;
    bool stage_open = false;
    BackendFile remote_read = 0;
    bool remote_read_open = false;
    std::map<std::uint64_t, Extent> extents;
    std::uint64_t size = 0;  ///< logical high-water mark
    int open_count = 0;
    /// Stage pwrites in flight outside the lock: eviction must not close
    /// or truncate the stage file underneath one.
    int inflight = 0;
    bool unlinked = false;
  };

  /// One drained byte range, snapshotted under the lock, copied outside.
  struct DrainRun {
    std::shared_ptr<FileState> file;
    std::uint64_t offset = 0;
    std::uint64_t len = 0;
  };

  /// A sealed group of extents: the drain ordering + eviction unit.
  struct DrainUnit {
    std::uint64_t seq = 0;       ///< internal, monotonically increasing
    std::uint64_t epoch_id = 0;  ///< ledger epoch label; 0 = unlabelled
    std::uint64_t bytes = 0;     ///< staged bytes tagged to this unit
    std::uint64_t seal_ns = 0;   ///< when it became drain-eligible
  };

  struct OpenHandle {
    std::shared_ptr<FileState> file;
    bool writable = false;
  };

  std::shared_ptr<FileState> file_for(const std::string& path, std::unique_lock<std::mutex>&);
  Result<OpenHandle> resolve(BackendFile file, const char* op) const;
  Status ensure_stage_open_locked(FileState& fs);
  Status ensure_remote_read_locked(FileState& fs);
  /// Removes staged extents overlapping [offset, offset+len), returning
  /// the staged bytes freed. Splits partially-overlapped extents.
  std::uint64_t trim_extents_locked(FileState& fs, std::uint64_t offset,
                                    std::uint64_t len);
  void seal_locked(std::uint64_t epoch_id, std::uint64_t now_ns);
  void release_file_locked(const std::shared_ptr<FileState>& fs);
  void drain_loop();
  /// Drains one unit to the remote; true on success (unit evicted).
  bool drain_unit(const DrainUnit& unit);
  Status copy_run_to_remote(const DrainRun& run);
  void throttle(std::uint64_t bytes);
  std::uint64_t oldest_pending_seal_ns_locked() const;

  const std::shared_ptr<BackendFs> stage_;
  const std::shared_ptr<BackendFs> remote_;
  const TieredOptions opts_;

  std::atomic<double> drain_mbps_cap_;
  std::atomic<unsigned> drain_parallel_;

  mutable std::mutex mu_;
  std::condition_variable space_cv_;   ///< eviction freed stage bytes
  std::condition_variable drain_cv_;   ///< new sealed unit / shutdown
  std::condition_variable idle_cv_;    ///< a unit finished (flush/fsync waiters)
  bool shutdown_ = false;

  std::unordered_map<std::string, std::shared_ptr<FileState>> files_;
  std::unordered_map<BackendFile, OpenHandle> handles_;
  BackendFile next_handle_ = 1;

  std::uint64_t stage_used_ = 0;
  std::uint64_t open_unit_seq_ = 1;  ///< unit collecting new writes
  std::uint64_t next_unit_seq_ = 2;
  std::uint64_t open_unit_bytes_ = 0;
  std::deque<DrainUnit> sealed_;  ///< oldest-first drain queue
  // Remote writer handles are owned by the drain side only (single
  // logical writer toward the remote), keyed by path.
  std::unordered_map<std::string, BackendFile> remote_write_;

  // Lifetime totals mirrored into the (optional) registry.
  std::atomic<std::uint64_t> t_staged_bytes_{0};
  std::atomic<std::uint64_t> t_drained_bytes_{0};
  std::atomic<std::uint64_t> t_spill_bytes_{0};
  std::atomic<std::uint64_t> t_units_sealed_{0};
  std::atomic<std::uint64_t> t_units_evicted_{0};
  std::atomic<std::uint64_t> t_stalls_{0};
  std::atomic<std::uint64_t> t_stall_ns_{0};
  std::atomic<std::uint64_t> t_retries_{0};

  obs::Registry* registry_ = nullptr;
  obs::EventBuffer* events_ = nullptr;
  obs::Counter* c_staged_bytes_ = nullptr;
  obs::Counter* c_drained_bytes_ = nullptr;
  obs::Counter* c_spill_bytes_ = nullptr;
  obs::Counter* c_evictions_ = nullptr;
  obs::Counter* c_stalls_ = nullptr;
  obs::Counter* c_stall_ns_ = nullptr;
  obs::Counter* c_retries_ = nullptr;
  obs::LatencyHistogram* h_drain_pwrite_ = nullptr;

  DrainListener drain_listener_;

  /// Drain-thread-private: tracks the failure episode so tier_remote_down
  /// fires once per outage, not once per retry.
  bool remote_down_ = false;

  std::thread drain_thread_;
};

struct Config;  // crfs/config.h

/// Composes a TieredBackend from the mount Config's tier_* fields over
/// `remote_dir`: stage "mem" -> MemBackend, otherwise a PosixBackend on
/// that directory; remote = PosixBackend on remote_dir. Used by crfsctl /
/// benches so `stage=`/`remote=` mount options work end to end.
Result<std::shared_ptr<BackendFs>> make_tiered_backend(const Config& cfg,
                                                       const std::string& remote_dir);

}  // namespace crfs
