#include "backend/tiered_backend.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <vector>

#include "backend/mem_backend.h"
#include "backend/posix_backend.h"
#include "crfs/config.h"

namespace crfs {

namespace {

constexpr std::size_t kBounceBytes = 4 * 1024 * 1024;

/// "a/b/c" with no leading slash; "" for the root. Matches MemBackend's
/// normalization closely enough for the staged-name union in list_dir.
std::string normalize(const std::string& path) {
  std::string out;
  out.reserve(path.size());
  for (char c : path) {
    if (c == '/' && (out.empty() || out.back() == '/')) continue;
    out += c;
  }
  while (!out.empty() && out.back() == '/') out.pop_back();
  return out;
}

}  // namespace

TieredBackend::TieredBackend(std::shared_ptr<BackendFs> stage,
                             std::shared_ptr<BackendFs> remote, TieredOptions opts)
    : stage_(std::move(stage)),
      remote_(std::move(remote)),
      opts_(opts),
      drain_mbps_cap_(opts.drain_mbps),
      drain_parallel_(opts.drain_parallel == 0 ? 1 : opts.drain_parallel) {
  drain_thread_ = std::thread([this] { drain_loop(); });
}

TieredBackend::~TieredBackend() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (open_unit_bytes_ > 0) seal_locked(0, obs::now_ns());
    shutdown_ = true;
  }
  drain_cv_.notify_all();
  space_cv_.notify_all();
  idle_cv_.notify_all();
  if (drain_thread_.joinable()) drain_thread_.join();

  std::unique_lock<std::mutex> lock(mu_);
  for (auto& [path, fs] : files_) {
    if (fs->stage_open) (void)stage_->close_file(fs->stage_file);
    if (fs->remote_read_open) (void)remote_->close_file(fs->remote_read);
  }
  files_.clear();
  for (auto& [path, handle] : remote_write_) (void)remote_->close_file(handle);
  remote_write_.clear();
}

void TieredBackend::bind_obs(obs::Registry* registry, obs::EventBuffer* events) {
  registry_ = registry;
  events_ = events;
  if (registry_ == nullptr) return;
  c_staged_bytes_ = &registry_->counter("crfs.tier.staged_bytes");
  c_drained_bytes_ = &registry_->counter("crfs.tier.drained_bytes");
  c_spill_bytes_ = &registry_->counter("crfs.tier.spill_bytes");
  c_evictions_ = &registry_->counter("crfs.tier.evictions");
  c_stalls_ = &registry_->counter("crfs.tier.stalls");
  c_stall_ns_ = &registry_->counter("crfs.tier.stall_ns");
  c_retries_ = &registry_->counter("crfs.tier.retries");
  h_drain_pwrite_ = &registry_->histogram("crfs.tier.drain_pwrite_ns");
  registry_->gauge_fn("crfs.tier.stage_used", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<std::int64_t>(stage_used_);
  });
  registry_->gauge_fn("crfs.tier.stage_cap",
                      [this] { return static_cast<std::int64_t>(opts_.stage_cap); });
  registry_->gauge_fn("crfs.tier.pending_units", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<std::int64_t>(sealed_.size());
  });
  registry_->gauge_fn("crfs.tier.drain_lag_ns", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t oldest = oldest_pending_seal_ns_locked();
    if (oldest == 0) return std::int64_t{0};
    const std::uint64_t now = obs::now_ns();
    return static_cast<std::int64_t>(now > oldest ? now - oldest : 0);
  });
}

void TieredBackend::set_drain_listener(DrainListener fn) {
  std::lock_guard<std::mutex> lock(mu_);
  drain_listener_ = std::move(fn);
}

void TieredBackend::set_drain_mbps(double mbps) {
  drain_mbps_cap_.store(mbps < 0.0 ? 0.0 : mbps, std::memory_order_relaxed);
}

void TieredBackend::set_drain_parallel(unsigned n) {
  drain_parallel_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

std::uint64_t TieredBackend::oldest_pending_seal_ns_locked() const {
  return sealed_.empty() ? 0 : sealed_.front().seal_ns;
}

std::shared_ptr<TieredBackend::FileState> TieredBackend::file_for(
    const std::string& path, std::unique_lock<std::mutex>&) {
  auto it = files_.find(path);
  if (it != files_.end()) return it->second;
  auto fs = std::make_shared<FileState>();
  fs->path = path;
  files_.emplace(path, fs);
  return fs;
}

Result<TieredBackend::OpenHandle> TieredBackend::resolve(BackendFile file,
                                                         const char* op) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handles_.find(file);
  if (it == handles_.end()) {
    return Error{EBADF, std::string(op) + " on unknown tiered handle"};
  }
  return it->second;
}

Status TieredBackend::ensure_stage_open_locked(FileState& fs) {
  if (fs.stage_open) return {};
  auto opened =
      stage_->open_file(fs.path, {.create = true, .truncate = false, .write = true});
  if (!opened.ok()) return opened.error();
  fs.stage_file = opened.value();
  fs.stage_open = true;
  return {};
}

Status TieredBackend::ensure_remote_read_locked(FileState& fs) {
  if (fs.remote_read_open) return {};
  auto opened = remote_->open_file(fs.path, {.write = false});
  if (!opened.ok()) return opened.error();
  fs.remote_read = opened.value();
  fs.remote_read_open = true;
  return {};
}

std::uint64_t TieredBackend::trim_extents_locked(FileState& fs, std::uint64_t offset,
                                                 std::uint64_t len) {
  if (len == 0) return 0;
  const std::uint64_t end =
      offset > ~std::uint64_t{0} - len ? ~std::uint64_t{0} : offset + len;
  std::uint64_t freed = 0;
  auto it = fs.extents.lower_bound(offset);
  if (it != fs.extents.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.len > offset) it = prev;
  }
  while (it != fs.extents.end() && it->first < end) {
    const std::uint64_t e_off = it->first;
    const Extent e = it->second;
    const std::uint64_t e_end = e_off + e.len;
    it = fs.extents.erase(it);
    // Keep the non-overlapped head/tail pieces (same unit tag).
    if (e_off < offset) {
      fs.extents.emplace(e_off, Extent{offset - e_off, e.unit});
    }
    if (e_end > end) {
      it = fs.extents.emplace(end, Extent{e_end - end, e.unit}).first;
      ++it;
    }
    const std::uint64_t cut =
        std::min(e_end, end) - std::max(e_off, offset);
    freed += cut;
    if (e.unit == open_unit_seq_ && open_unit_bytes_ >= cut) open_unit_bytes_ -= cut;
  }
  stage_used_ -= std::min(stage_used_, freed);
  return freed;
}

void TieredBackend::seal_locked(std::uint64_t epoch_id, std::uint64_t now_ns) {
  if (open_unit_bytes_ == 0) return;
  sealed_.push_back(DrainUnit{open_unit_seq_, epoch_id, open_unit_bytes_, now_ns});
  open_unit_seq_ = next_unit_seq_++;
  open_unit_bytes_ = 0;
  t_units_sealed_.fetch_add(1, std::memory_order_relaxed);
  drain_cv_.notify_all();
}

void TieredBackend::seal_epoch(std::uint64_t epoch_id) {
  std::unique_lock<std::mutex> lock(mu_);
  seal_locked(epoch_id, obs::now_ns());
}

void TieredBackend::release_file_locked(const std::shared_ptr<FileState>& fs) {
  if (fs->open_count > 0 || !fs->extents.empty()) return;
  if (fs->stage_open) {
    (void)stage_->close_file(fs->stage_file);
    fs->stage_open = false;
    (void)stage_->unlink(fs->path);  // reclaim staged bytes
  }
  if (fs->remote_read_open) {
    (void)remote_->close_file(fs->remote_read);
    fs->remote_read_open = false;
  }
  files_.erase(fs->path);
}

Result<BackendFile> TieredBackend::open_file(const std::string& path, OpenFlags flags) {
  std::unique_lock<std::mutex> lock(mu_);
  auto existing = files_.find(path);
  bool exists = existing != files_.end() && !existing->second->unlinked;
  std::uint64_t remote_size = 0;
  bool remote_exists = false;
  if (!exists || !flags.write) {
    lock.unlock();
    auto st = remote_->stat(path);
    lock.lock();
    if (st.ok() && !st.value().is_dir) {
      remote_exists = true;
      remote_size = st.value().size;
    }
    existing = files_.find(path);
    exists = (existing != files_.end() && !existing->second->unlinked) || remote_exists;
  }
  if (!exists && !(flags.write && flags.create)) {
    return Error{ENOENT, "tiered open: no such file: " + path};
  }

  auto fs = file_for(path, lock);
  fs->unlinked = false;
  if (remote_exists && fs->extents.empty() && fs->open_count == 0) {
    fs->size = std::max(fs->size, remote_size);
  }
  if (flags.write) {
    CRFS_RETURN_IF_ERROR(ensure_stage_open_locked(*fs));
    if (flags.truncate) {
      trim_extents_locked(*fs, 0, ~std::uint64_t{0});
      fs->size = 0;
      (void)stage_->truncate(fs->stage_file, 0);
      if (remote_exists) {
        lock.unlock();
        auto rw = remote_->open_file(path, {.create = false, .truncate = true, .write = true});
        if (rw.ok()) (void)remote_->close_file(rw.value());
        lock.lock();
      }
      space_cv_.notify_all();
    }
  }
  fs->open_count += 1;
  const BackendFile handle = next_handle_++;
  handles_.emplace(handle, OpenHandle{fs, flags.write});
  return handle;
}

Status TieredBackend::close_file(BackendFile file) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = handles_.find(file);
  if (it == handles_.end()) return Error{EBADF, "close of unknown tiered handle"};
  auto fs = it->second.file;
  handles_.erase(it);
  if (fs->open_count > 0) fs->open_count -= 1;
  release_file_locked(fs);
  return {};
}

Status TieredBackend::pwrite(BackendFile file, std::span<const std::byte> data,
                             std::uint64_t offset) {
  auto handle = resolve(file, "pwrite");
  if (!handle.ok()) return handle.error();
  if (!handle.value().writable) return Error{EBADF, "pwrite on read-only tiered handle"};
  auto fs = handle.value().file;
  const std::uint64_t len = data.size();
  if (len == 0) return {};

  std::unique_lock<std::mutex> lock(mu_);

  // Spill-through: a single write larger than the whole cap can never be
  // staged. Wait out any staged overlap (so the drain cannot later clobber
  // the fresher remote bytes), then write directly to the remote.
  if (opts_.stage_cap > 0 && len > opts_.stage_cap) {
    for (;;) {
      std::uint64_t overlap = 0;
      bool in_open_unit = false;
      auto it = fs->extents.lower_bound(offset);
      if (it != fs->extents.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second.len > offset) it = prev;
      }
      for (; it != fs->extents.end() && it->first < offset + len; ++it) {
        overlap += it->second.len;
        in_open_unit |= it->second.unit == open_unit_seq_;
      }
      if (overlap == 0 || shutdown_) break;
      if (in_open_unit) seal_locked(0, obs::now_ns());
      idle_cv_.wait(lock);
    }
    BackendFile rw = 0;
    auto wit = remote_write_.find(fs->path);
    if (wit != remote_write_.end()) {
      rw = wit->second;
    } else {
      auto opened =
          remote_->open_file(fs->path, {.create = true, .truncate = false, .write = true});
      if (!opened.ok()) return opened.error();
      rw = opened.value();
      remote_write_.emplace(fs->path, rw);
    }
    fs->size = std::max(fs->size, offset + len);
    lock.unlock();
    CRFS_RETURN_IF_ERROR(remote_->pwrite(rw, data, offset));
    t_spill_bytes_.fetch_add(len, std::memory_order_relaxed);
    if (c_spill_bytes_ != nullptr) c_spill_bytes_->add(len);
    return {};
  }

  // Backpressure: block until eviction frees room for the net new bytes.
  if (opts_.stage_cap > 0) {
    bool stalled = false;
    std::uint64_t stall_start = 0;
    for (;;) {
      std::uint64_t replaced = 0;
      auto it = fs->extents.lower_bound(offset);
      if (it != fs->extents.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second.len > offset) it = prev;
      }
      for (; it != fs->extents.end() && it->first < offset + len; ++it) {
        const std::uint64_t e_end = it->first + it->second.len;
        replaced += std::min(e_end, offset + len) - std::max(it->first, offset);
      }
      if (stage_used_ - replaced + len <= opts_.stage_cap) break;
      if (shutdown_) return Error{EIO, "tiered backend shutting down"};
      // Nothing sealed to drain? Auto-seal the open unit so the drain can
      // make progress — a tiny cap degrades to write-through, not deadlock.
      if (sealed_.empty() && open_unit_bytes_ > 0) seal_locked(0, obs::now_ns());
      if (!stalled) {
        stalled = true;
        stall_start = obs::now_ns();
        t_stalls_.fetch_add(1, std::memory_order_relaxed);
        if (c_stalls_ != nullptr) c_stalls_->add(1);
      }
      space_cv_.wait(lock);
    }
    if (stalled) {
      const std::uint64_t waited = obs::now_ns() - stall_start;
      t_stall_ns_.fetch_add(waited, std::memory_order_relaxed);
      if (c_stall_ns_ != nullptr) c_stall_ns_->add(waited);
    }
  }

  CRFS_RETURN_IF_ERROR(ensure_stage_open_locked(*fs));
  const BackendFile sf = fs->stage_file;
  fs->inflight += 1;
  lock.unlock();

  const Status wrote = stage_->pwrite(sf, data, offset);

  lock.lock();
  fs->inflight -= 1;
  if (!wrote.ok()) return wrote;
  trim_extents_locked(*fs, offset, len);
  fs->extents.emplace(offset, Extent{len, open_unit_seq_});
  fs->size = std::max(fs->size, offset + len);
  stage_used_ += len;
  open_unit_bytes_ += len;
  t_staged_bytes_.fetch_add(len, std::memory_order_relaxed);
  if (c_staged_bytes_ != nullptr) c_staged_bytes_->add(len);
  return {};
}

Result<std::size_t> TieredBackend::pread(BackendFile file, std::span<std::byte> data,
                                         std::uint64_t offset) {
  auto handle = resolve(file, "pread");
  if (!handle.ok()) return handle.error();
  auto fs = handle.value().file;

  struct Seg {
    bool staged;
    std::uint64_t offset;
    std::size_t buf_at;
    std::size_t len;
  };
  std::vector<Seg> segs;
  BackendFile stage_file = 0;
  BackendFile remote_file = 0;
  bool want_remote = false;
  std::size_t effective = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (offset >= fs->size) return std::size_t{0};
    effective = static_cast<std::size_t>(
        std::min<std::uint64_t>(data.size(), fs->size - offset));
    const std::uint64_t end = offset + effective;
    std::uint64_t cur = offset;
    auto it = fs->extents.lower_bound(offset);
    if (it != fs->extents.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second.len > offset) it = prev;
    }
    while (cur < end) {
      if (it == fs->extents.end() || it->first >= end) {
        segs.push_back({false, cur, static_cast<std::size_t>(cur - offset),
                        static_cast<std::size_t>(end - cur)});
        want_remote = true;
        break;
      }
      const std::uint64_t e_off = it->first;
      const std::uint64_t e_end = e_off + it->second.len;
      if (e_off > cur) {
        segs.push_back({false, cur, static_cast<std::size_t>(cur - offset),
                        static_cast<std::size_t>(e_off - cur)});
        want_remote = true;
        cur = e_off;
      }
      const std::uint64_t s_end = std::min(e_end, end);
      if (s_end > cur) {
        segs.push_back({true, cur, static_cast<std::size_t>(cur - offset),
                        static_cast<std::size_t>(s_end - cur)});
        cur = s_end;
      }
      ++it;
    }
    if (!segs.empty()) {
      for (const Seg& s : segs) {
        if (s.staged) {
          // Extents exist => the stage handle is open (invariant).
          stage_file = fs->stage_file;
        }
      }
      if (want_remote) {
        // A gap can also be a never-written hole; remote open may fail
        // with ENOENT when nothing drained yet — the zero-fill covers it.
        if (ensure_remote_read_locked(*fs).ok()) remote_file = fs->remote_read;
      }
    }
  }

  // Gaps (sparse holes, short remote files) read as zeroes, matching the
  // zero-fill semantics of the concrete backends.
  std::fill(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(effective),
            std::byte{0});
  for (const Seg& s : segs) {
    std::span<std::byte> dst = data.subspan(s.buf_at, s.len);
    if (s.staged) {
      auto got = stage_->pread(stage_file, dst, s.offset);
      if (!got.ok()) return got.error();
    } else if (remote_file != 0) {
      auto got = remote_->pread(remote_file, dst, s.offset);
      if (!got.ok()) return got.error();
    }
  }
  return effective;
}

Status TieredBackend::fsync(BackendFile file) {
  auto handle = resolve(file, "fsync");
  if (!handle.ok()) return handle.error();
  auto fs = handle.value().file;

  if (opts_.fsync_mode == TierFsyncMode::kStage) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!fs->stage_open) return {};
    const BackendFile sf = fs->stage_file;
    lock.unlock();
    return stage_->fsync(sf);
  }

  // fsync_mode=remote: seal what this file staged, then wait until every
  // staged byte of it is drained + evicted (the drain fsyncs the remote
  // before evicting, so empty extents == remote-durable).
  std::unique_lock<std::mutex> lock(mu_);
  if (!fs->extents.empty() && open_unit_bytes_ > 0) seal_locked(0, obs::now_ns());
  while (!fs->extents.empty() && !shutdown_) idle_cv_.wait(lock);
  if (!fs->extents.empty()) return Error{EIO, "tiered backend shutting down"};
  return {};
}

Status TieredBackend::truncate(BackendFile file, std::uint64_t size) {
  auto handle = resolve(file, "truncate");
  if (!handle.ok()) return handle.error();
  if (!handle.value().writable) return Error{EBADF, "truncate on read-only tiered handle"};
  auto fs = handle.value().file;

  std::unique_lock<std::mutex> lock(mu_);
  if (size < fs->size) {
    trim_extents_locked(*fs, size, ~std::uint64_t{0} - size);
    space_cv_.notify_all();
  }
  fs->size = size;
  BackendFile sf = 0;
  const bool have_stage = fs->stage_open;
  if (have_stage) sf = fs->stage_file;
  BackendFile rw = 0;
  bool have_remote = false;
  auto wit = remote_write_.find(fs->path);
  if (wit != remote_write_.end()) {
    rw = wit->second;
    have_remote = true;
  } else {
    auto opened =
        remote_->open_file(fs->path, {.create = true, .truncate = false, .write = true});
    if (opened.ok()) {
      rw = opened.value();
      remote_write_.emplace(fs->path, rw);
      have_remote = true;
    }
  }
  lock.unlock();
  if (have_stage) CRFS_RETURN_IF_ERROR(stage_->truncate(sf, size));
  if (have_remote) CRFS_RETURN_IF_ERROR(remote_->truncate(rw, size));
  return {};
}

Result<BackendStat> TieredBackend::stat(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it != files_.end() && !it->second->unlinked) {
      BackendStat st;
      st.size = it->second->size;
      st.is_dir = false;
      return st;
    }
  }
  auto remote = remote_->stat(path);
  if (remote.ok()) return remote;
  return stage_->stat(path);
}

Status TieredBackend::mkdir(const std::string& path) {
  (void)stage_->mkdir(path);
  return remote_->mkdir(path);
}

Status TieredBackend::rmdir(const std::string& path) {
  (void)stage_->rmdir(path);
  return remote_->rmdir(path);
}

Status TieredBackend::unlink(const std::string& path) {
  bool had_state = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it != files_.end()) {
      had_state = true;
      auto fs = it->second;
      trim_extents_locked(*fs, 0, ~std::uint64_t{0});
      fs->size = 0;
      fs->unlinked = true;
      space_cv_.notify_all();
      idle_cv_.notify_all();
      release_file_locked(fs);  // no-op while handles are open
    }
    auto wit = remote_write_.find(path);
    if (wit != remote_write_.end()) {
      (void)remote_->close_file(wit->second);
      remote_write_.erase(wit);
    }
  }
  (void)stage_->unlink(path);
  auto remote = remote_->unlink(path);
  if (!remote.ok() && had_state) return {};  // never drained: only staged
  return remote;
}

Status TieredBackend::rename(const std::string& from, const std::string& to) {
  bool had_state = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = files_.find(from);
    if (it != files_.end()) {
      had_state = true;
      auto fs = it->second;
      files_.erase(it);
      fs->path = to;
      files_[to] = fs;
    }
    auto wit = remote_write_.find(from);
    if (wit != remote_write_.end()) {
      (void)remote_->close_file(wit->second);
      remote_write_.erase(wit);
    }
  }
  (void)stage_->rename(from, to);
  auto remote = remote_->rename(from, to);
  if (!remote.ok() && had_state) return {};
  return remote;
}

Result<std::vector<std::string>> TieredBackend::list_dir(const std::string& path) {
  auto remote = remote_->list_dir(path);
  std::vector<std::string> names;
  if (remote.ok()) names = std::move(remote.value());
  const std::string prefix = normalize(path);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [p, fs] : files_) {
      if (fs->unlinked) continue;
      const std::string norm = normalize(p);
      std::string rest;
      if (prefix.empty()) {
        rest = norm;
      } else if (norm.size() > prefix.size() + 1 &&
                 norm.compare(0, prefix.size(), prefix) == 0 &&
                 norm[prefix.size()] == '/') {
        rest = norm.substr(prefix.size() + 1);
      } else {
        continue;
      }
      if (rest.empty() || rest.find('/') != std::string::npos) continue;
      names.push_back(rest);
    }
  }
  if (!remote.ok() && names.empty()) return remote.error();
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::string TieredBackend::name() const {
  return "tiered(stage=" + stage_->name() + ",remote=" + remote_->name() + ")";
}

Status TieredBackend::flush() {
  std::unique_lock<std::mutex> lock(mu_);
  if (open_unit_bytes_ > 0) seal_locked(0, obs::now_ns());
  while (!sealed_.empty() && !shutdown_) idle_cv_.wait(lock);
  if (!sealed_.empty()) return Error{EIO, "tiered backend shutting down"};
  return {};
}

void TieredBackend::throttle(std::uint64_t bytes) {
  const double mbps = drain_mbps_cap_.load(std::memory_order_relaxed);
  if (mbps <= 0.0) return;
  const unsigned workers = drain_parallel_.load(std::memory_order_relaxed);
  const double per_worker = mbps / static_cast<double>(workers == 0 ? 1 : workers);
  const double seconds = static_cast<double>(bytes) / (per_worker * 1e6);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

Status TieredBackend::copy_run_to_remote(const DrainRun& run) {
  BackendFile sf = 0;
  BackendFile rw = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!run.file->stage_open) {
      return Error{ESTALE, "staged data gone (unlinked mid-drain)"};
    }
    sf = run.file->stage_file;
    auto wit = remote_write_.find(run.file->path);
    if (wit != remote_write_.end()) {
      rw = wit->second;
    } else {
      auto opened = remote_->open_file(run.file->path,
                                       {.create = true, .truncate = false, .write = true});
      if (!opened.ok()) return opened.error();
      rw = opened.value();
      remote_write_.emplace(run.file->path, rw);
    }
  }
  std::vector<std::byte> bounce(
      static_cast<std::size_t>(std::min<std::uint64_t>(run.len, kBounceBytes)));
  std::uint64_t done = 0;
  while (done < run.len) {
    const std::size_t step = static_cast<std::size_t>(
        std::min<std::uint64_t>(run.len - done, bounce.size()));
    std::span<std::byte> buf(bounce.data(), step);
    auto got = stage_->pread(sf, buf, run.offset + done);
    if (!got.ok()) return got.error();
    if (got.value() < step) {
      // Staged extent shorter than recorded: superseded by a concurrent
      // truncate — the re-snapshot after retry sees the trimmed map.
      return Error{ESTALE, "staged extent truncated mid-drain"};
    }
    const std::uint64_t t0 = obs::now_ns();
    const Status wrote = remote_->pwrite(rw, {bounce.data(), step}, run.offset + done);
    const std::uint64_t dt = obs::now_ns() - t0;
    if (h_drain_pwrite_ != nullptr) h_drain_pwrite_->record(dt);
    if (!wrote.ok()) return wrote;
    t_drained_bytes_.fetch_add(step, std::memory_order_relaxed);
    if (c_drained_bytes_ != nullptr) c_drained_bytes_->add(step);
    throttle(step);
    done += step;
  }
  return {};
}

bool TieredBackend::drain_unit(const DrainUnit& unit) {
  // Snapshot this unit's extents (exact eviction keys) and the merged
  // adjacent runs (fewer remote calls) under the lock; copy outside it.
  std::vector<DrainRun> exact;
  std::vector<DrainRun> merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [path, fs] : files_) {
      DrainRun open_run;
      for (auto& [off, ext] : fs->extents) {
        if (ext.unit != unit.seq) continue;
        exact.push_back(DrainRun{fs, off, ext.len});
        if (open_run.file != nullptr && open_run.offset + open_run.len == off) {
          open_run.len += ext.len;
        } else {
          if (open_run.file != nullptr) merged.push_back(open_run);
          open_run = DrainRun{fs, off, ext.len};
        }
      }
      if (open_run.file != nullptr) merged.push_back(open_run);
    }
  }

  const std::uint64_t drain_start = obs::now_ns();
  Status result;
  const unsigned workers =
      std::min<unsigned>(drain_parallel_.load(std::memory_order_relaxed),
                         static_cast<unsigned>(merged.empty() ? 1 : merged.size()));
  if (workers <= 1) {
    for (const DrainRun& run : merged) {
      result = copy_run_to_remote(run);
      if (!result.ok()) break;
    }
  } else {
    std::vector<Status> statuses(workers);
    std::vector<std::thread> helpers;
    helpers.reserve(workers - 1);
    auto work = [&](unsigned w) {
      for (std::size_t i = w; i < merged.size(); i += workers) {
        statuses[w] = copy_run_to_remote(merged[i]);
        if (!statuses[w].ok()) return;
      }
    };
    for (unsigned w = 1; w < workers; ++w) helpers.emplace_back(work, w);
    work(0);
    for (auto& t : helpers) t.join();
    for (Status& st : statuses) {
      if (!st.ok()) {
        result = std::move(st);
        break;
      }
    }
  }

  // Eviction gate: the whole unit must be durable at the remote before a
  // single staged byte is released.
  if (result.ok()) {
    std::vector<std::pair<std::string, BackendFile>> to_sync;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const DrainRun& run : merged) {
        auto wit = remote_write_.find(run.file->path);
        if (wit != remote_write_.end()) to_sync.emplace_back(wit->first, wit->second);
      }
    }
    std::sort(to_sync.begin(), to_sync.end());
    to_sync.erase(std::unique(to_sync.begin(), to_sync.end()), to_sync.end());
    for (const auto& [path, rf] : to_sync) {
      result = remote_->fsync(rf);
      if (!result.ok()) break;
    }
  }

  if (!result.ok()) {
    // ESTALE means the staged bytes vanished legitimately (unlink or
    // truncate won the race); re-snapshotting on retry resolves it.
    // Anything else is the remote tier failing: raise the health event
    // once per episode (the caller counts retries).
    if (result.error().code != ESTALE && events_ != nullptr && !remote_down_) {
      obs::Event ev;
      ev.severity = obs::Severity::kWarning;
      ev.rule = "tier_remote_down";
      ev.message = "drain to remote failed: " + result.error().to_string() +
                   " (unit " + std::to_string(unit.seq) + ", stage retains data)";
      ev.value = static_cast<double>(unit.bytes);
      ev.ts_ns = obs::now_ns();
      events_->push(std::move(ev));
      remote_down_ = true;
    }
    return false;
  }

  const std::uint64_t drain_end = obs::now_ns();
  if (remote_down_ && events_ != nullptr) {
    obs::Event ev;
    ev.severity = obs::Severity::kInfo;
    ev.rule = "tier_remote_recovered";
    ev.message = "drain to remote resumed (unit " + std::to_string(unit.seq) + ")";
    ev.ts_ns = drain_end;
    events_->push(std::move(ev));
  }
  remote_down_ = false;

  // Evict: remove exactly the extents we drained, and only those still
  // tagged to this unit (an overwrite re-tagged fresher bytes — keep them).
  std::uint64_t evicted = 0;
  DrainListener listener;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const DrainRun& run : exact) {
      auto it = run.file->extents.find(run.offset);
      if (it == run.file->extents.end() || it->second.unit != unit.seq ||
          it->second.len != run.len) {
        continue;
      }
      run.file->extents.erase(it);
      evicted += run.len;
      if (run.file->extents.empty() && run.file->inflight == 0) {
        if (run.file->open_count == 0) {
          release_file_locked(run.file);
        } else if (run.file->stage_open) {
          // Still open but fully drained: reclaim the staged bytes now.
          (void)stage_->truncate(run.file->stage_file, 0);
        }
      }
    }
    stage_used_ -= std::min(stage_used_, evicted);
    t_units_evicted_.fetch_add(1, std::memory_order_relaxed);
    if (c_evictions_ != nullptr) c_evictions_->add(1);
    listener = drain_listener_;
  }
  space_cv_.notify_all();
  idle_cv_.notify_all();
  if (listener) {
    listener(unit.epoch_id, evicted, drain_end - drain_start, drain_end);
  }
  return true;
}

void TieredBackend::drain_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  auto backoff = opts_.retry_backoff;
  for (;;) {
    drain_cv_.wait(lock, [&] { return shutdown_ || !sealed_.empty(); });
    if (sealed_.empty()) {
      if (shutdown_) return;
      continue;
    }
    const DrainUnit unit = sealed_.front();
    lock.unlock();
    const bool ok = drain_unit(unit);
    lock.lock();
    if (ok) {
      if (!sealed_.empty() && sealed_.front().seq == unit.seq) sealed_.pop_front();
      backoff = opts_.retry_backoff;
      if (sealed_.empty()) {
        idle_cv_.notify_all();
        // A writer that stalled while this (already-drained) unit still sat
        // in sealed_ skipped its auto-seal; now that the queue is empty it
        // must re-check, or its open bytes never seal and nothing wakes it.
        space_cv_.notify_all();
      }
      continue;
    }
    // Remote down (or staged bytes moved underneath us): retry the unit
    // with exponential backoff. The stage retains every byte meanwhile.
    t_retries_.fetch_add(1, std::memory_order_relaxed);
    if (c_retries_ != nullptr) c_retries_->add(1);
    if (shutdown_ && backoff >= opts_.retry_backoff_max) {
      // Teardown with a dead remote: abandon the unit (bytes stay staged;
      // nothing is evicted, so nothing is lost silently).
      sealed_.pop_front();
      idle_cv_.notify_all();
      if (sealed_.empty()) space_cv_.notify_all();
      continue;
    }
    drain_cv_.wait_for(lock, backoff, [&] { return shutdown_; });
    backoff = std::min(backoff * 2, opts_.retry_backoff_max);
  }
}

TierStats TieredBackend::tier_stats() const {
  TierStats out;
  std::lock_guard<std::mutex> lock(mu_);
  out.stage_used = stage_used_;
  out.stage_cap = opts_.stage_cap;
  out.staged_bytes = t_staged_bytes_.load(std::memory_order_relaxed);
  out.drained_bytes = t_drained_bytes_.load(std::memory_order_relaxed);
  out.spill_bytes = t_spill_bytes_.load(std::memory_order_relaxed);
  out.units_sealed = t_units_sealed_.load(std::memory_order_relaxed);
  out.units_evicted = t_units_evicted_.load(std::memory_order_relaxed);
  out.pending_units = sealed_.size();
  out.stalls = t_stalls_.load(std::memory_order_relaxed);
  out.stall_ns = t_stall_ns_.load(std::memory_order_relaxed);
  out.retries = t_retries_.load(std::memory_order_relaxed);
  const std::uint64_t oldest = oldest_pending_seal_ns_locked();
  if (oldest != 0) {
    const std::uint64_t now = obs::now_ns();
    out.drain_lag_ns = now > oldest ? now - oldest : 0;
  }
  out.drain_mbps = drain_mbps_cap_.load(std::memory_order_relaxed);
  out.drain_parallel = drain_parallel_.load(std::memory_order_relaxed);
  return out;
}

std::string TieredBackend::tier_json() const {
  const TierStats s = tier_stats();
  char mbps[32];
  std::snprintf(mbps, sizeof(mbps), "%g", s.drain_mbps);
  std::string out = "{\"enabled\":true";
  out += ",\"stage\":\"" + stage_->name() + "\"";
  out += ",\"remote\":\"" + remote_->name() + "\"";
  out += ",\"stage_used\":" + std::to_string(s.stage_used);
  out += ",\"stage_cap\":" + std::to_string(s.stage_cap);
  out += ",\"staged_bytes\":" + std::to_string(s.staged_bytes);
  out += ",\"drained_bytes\":" + std::to_string(s.drained_bytes);
  out += ",\"spill_bytes\":" + std::to_string(s.spill_bytes);
  out += ",\"units_sealed\":" + std::to_string(s.units_sealed);
  out += ",\"units_evicted\":" + std::to_string(s.units_evicted);
  out += ",\"pending_units\":" + std::to_string(s.pending_units);
  out += ",\"stalls\":" + std::to_string(s.stalls);
  out += ",\"stall_ns\":" + std::to_string(s.stall_ns);
  out += ",\"retries\":" + std::to_string(s.retries);
  out += ",\"drain_lag_ns\":" + std::to_string(s.drain_lag_ns);
  out += ",\"drain_mbps\":" + std::string(mbps);
  out += ",\"drain_parallel\":" + std::to_string(s.drain_parallel);
  out += "}";
  return out;
}

Result<std::shared_ptr<BackendFs>> make_tiered_backend(const Config& cfg,
                                                       const std::string& remote_dir) {
  std::shared_ptr<BackendFs> stage;
  if (cfg.tier_stage == "mem") {
    stage = std::make_shared<MemBackend>();
  } else {
    ::mkdir(cfg.tier_stage.c_str(), 0755);  // best-effort; create() validates
    auto s = PosixBackend::create(cfg.tier_stage);
    if (!s.ok()) return s.error();
    stage = std::move(s.value());
  }
  auto remote = PosixBackend::create(remote_dir);
  if (!remote.ok()) return remote.error();
  std::shared_ptr<BackendFs> remote_fs = std::move(remote).value();
  TieredOptions opts;
  opts.stage_cap = cfg.stage_cap;
  opts.drain_mbps = static_cast<double>(cfg.drain_mbps);
  opts.drain_parallel = cfg.drain_parallel;
  opts.fsync_mode =
      cfg.fsync_mode == "remote" ? TierFsyncMode::kRemote : TierFsyncMode::kStage;
  return std::shared_ptr<BackendFs>(
      std::make_shared<TieredBackend>(std::move(stage), std::move(remote_fs), opts));
}

}  // namespace crfs
