#include "backend/posix_backend.h"

#include "backend/posix_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <limits.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <vector>

#include <cerrno>

namespace crfs {

Result<std::unique_ptr<PosixBackend>> PosixBackend::create(const std::string& root) {
  const int fd = ::open(root.c_str(), O_DIRECTORY | O_RDONLY);
  if (fd < 0) return Error::from_errno("open backend root " + root);
  return std::unique_ptr<PosixBackend>(new PosixBackend(fd, root));
}

PosixBackend::PosixBackend(int root_fd, std::string root_path)
    : root_fd_(root_fd), root_path_(std::move(root_path)) {}

PosixBackend::~PosixBackend() { ::close(root_fd_); }

Result<std::string> PosixBackend::sanitize(const std::string& path) {
  std::string p = path;
  while (!p.empty() && p.front() == '/') p.erase(p.begin());
  if (p.empty()) p = ".";
  // Reject ".." components: the backend must not escape its root.
  std::size_t pos = 0;
  while (pos < p.size()) {
    std::size_t next = p.find('/', pos);
    if (next == std::string::npos) next = p.size();
    if (p.compare(pos, next - pos, "..") == 0) {
      return Error{EINVAL, "path escapes backend root: " + path};
    }
    pos = next + 1;
  }
  return p;
}

Result<BackendFile> PosixBackend::open_file(const std::string& path, OpenFlags flags) {
  auto rel = sanitize(path);
  if (!rel.ok()) return rel.error();
  int oflags = flags.write ? O_RDWR : O_RDONLY;
  if (flags.create) oflags |= O_CREAT;
  if (flags.truncate) oflags |= O_TRUNC;
  const int fd = ::openat(root_fd_, rel.value().c_str(), oflags, 0644);
  if (fd < 0) return Error::from_errno("openat " + path);
  return static_cast<BackendFile>(fd);
}

Status PosixBackend::close_file(BackendFile file) {
  if (::close(static_cast<int>(file)) != 0) return Error::from_errno("close");
  return {};
}

Status PosixBackend::pwrite(BackendFile file, std::span<const std::byte> data,
                            std::uint64_t offset) {
  const auto* p = reinterpret_cast<const char*>(data.data());
  std::size_t remaining = data.size();
  auto off = static_cast<off_t>(offset);
  while (remaining > 0) {
    const ssize_t n = ::pwrite(static_cast<int>(file), p, remaining, off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Error::from_errno("pwrite");
    }
    p += n;
    off += n;
    remaining -= static_cast<std::size_t>(n);
  }
  return {};
}

Status PosixBackend::pwritev(BackendFile file, std::span<const BackendIoVec> iov,
                             std::uint64_t offset) {
  // IOV_MAX is at least 1024 everywhere; the IO pool's batches are far
  // smaller, but fall back to the segment loop rather than assume.
  if (iov.size() > static_cast<std::size_t>(IOV_MAX)) {
    return BackendFs::pwritev(file, iov, offset);
  }
  std::vector<struct iovec> vecs(iov.size());
  for (std::size_t i = 0; i < iov.size(); ++i) {
    vecs[i].iov_base = const_cast<std::byte*>(iov[i].data);
    vecs[i].iov_len = iov[i].len;
  }
  const int err = posix_detail::pwritev_all(
      vecs, static_cast<off_t>(offset), [fd = static_cast<int>(file)](
                                            struct iovec* v, int cnt, off_t off) {
        return ::pwritev(fd, v, cnt, off);
      });
  if (err != 0) return Error{err, "pwritev"};
  return {};
}

Result<std::size_t> PosixBackend::pread(BackendFile file, std::span<std::byte> data,
                                        std::uint64_t offset) {
  auto* p = reinterpret_cast<char*>(data.data());
  std::size_t total = 0;
  auto off = static_cast<off_t>(offset);
  while (total < data.size()) {
    const ssize_t n = ::pread(static_cast<int>(file), p + total, data.size() - total, off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Error::from_errno("pread");
    }
    if (n == 0) break;  // EOF
    total += static_cast<std::size_t>(n);
    off += n;
  }
  return total;
}

Result<std::size_t> PosixBackend::preadv(BackendFile file,
                                         std::span<const BackendMutIoVec> iov,
                                         std::uint64_t offset) {
  if (iov.size() > static_cast<std::size_t>(IOV_MAX)) {
    return BackendFs::preadv(file, iov, offset);
  }
  std::vector<struct iovec> vecs(iov.size());
  for (std::size_t i = 0; i < iov.size(); ++i) {
    vecs[i].iov_base = iov[i].data;
    vecs[i].iov_len = iov[i].len;
  }
  std::size_t nread = 0;
  const int err = posix_detail::preadv_all(
      vecs, static_cast<off_t>(offset), &nread,
      [fd = static_cast<int>(file)](struct iovec* v, int cnt, off_t off) {
        return ::preadv(fd, v, cnt, off);
      });
  if (err != 0) return Error{err, "preadv"};
  return nread;
}

Status PosixBackend::fsync(BackendFile file) {
  if (::fsync(static_cast<int>(file)) != 0) return Error::from_errno("fsync");
  return {};
}

Status PosixBackend::truncate(BackendFile file, std::uint64_t size) {
  if (::ftruncate(static_cast<int>(file), static_cast<off_t>(size)) != 0) {
    return Error::from_errno("ftruncate");
  }
  return {};
}

Result<BackendStat> PosixBackend::stat(const std::string& path) {
  auto rel = sanitize(path);
  if (!rel.ok()) return rel.error();
  struct ::stat st{};
  if (::fstatat(root_fd_, rel.value().c_str(), &st, 0) != 0) {
    return Error::from_errno("stat " + path);
  }
  BackendStat out;
  out.size = static_cast<std::uint64_t>(st.st_size);
  out.is_dir = S_ISDIR(st.st_mode);
  out.mode = st.st_mode & 07777;
  return out;
}

Status PosixBackend::mkdir(const std::string& path) {
  auto rel = sanitize(path);
  if (!rel.ok()) return rel.error();
  if (::mkdirat(root_fd_, rel.value().c_str(), 0755) != 0) {
    return Error::from_errno("mkdir " + path);
  }
  return {};
}

Status PosixBackend::rmdir(const std::string& path) {
  auto rel = sanitize(path);
  if (!rel.ok()) return rel.error();
  if (::unlinkat(root_fd_, rel.value().c_str(), AT_REMOVEDIR) != 0) {
    return Error::from_errno("rmdir " + path);
  }
  return {};
}

Status PosixBackend::unlink(const std::string& path) {
  auto rel = sanitize(path);
  if (!rel.ok()) return rel.error();
  if (::unlinkat(root_fd_, rel.value().c_str(), 0) != 0) {
    return Error::from_errno("unlink " + path);
  }
  return {};
}

Status PosixBackend::rename(const std::string& from, const std::string& to) {
  auto rel_from = sanitize(from);
  if (!rel_from.ok()) return rel_from.error();
  auto rel_to = sanitize(to);
  if (!rel_to.ok()) return rel_to.error();
  if (::renameat(root_fd_, rel_from.value().c_str(), root_fd_, rel_to.value().c_str()) != 0) {
    return Error::from_errno("rename " + from + " -> " + to);
  }
  return {};
}

Result<std::vector<std::string>> PosixBackend::list_dir(const std::string& path) {
  auto rel = sanitize(path);
  if (!rel.ok()) return rel.error();
  const int fd = ::openat(root_fd_, rel.value().c_str(), O_DIRECTORY | O_RDONLY);
  if (fd < 0) return Error::from_errno("opendir " + path);
  DIR* dir = ::fdopendir(fd);
  if (dir == nullptr) {
    ::close(fd);
    return Error::from_errno("fdopendir " + path);
  }
  std::vector<std::string> names;
  while (struct dirent* e = ::readdir(dir)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(dir);
  return names;
}

}  // namespace crfs
