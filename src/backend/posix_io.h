// Shared POSIX vectored-write retry loop, extracted from
// PosixBackend::pwritev so the EINTR / short-write / resume logic is unit
// testable with an injected write function (tests/test_backend.cpp).
#pragma once

#include <sys/uio.h>

#include <cerrno>
#include <cstddef>
#include <vector>

namespace crfs::posix_detail {

/// Drives `fn` (a ::pwritev-shaped callable: (iovec*, count, offset) ->
/// ssize_t, errno on failure) until every byte of `vecs` has been written
/// contiguously starting at `off`. Retries EINTR, resumes after short
/// writes by advancing past fully-written segments and trimming a
/// partially-written one. `vecs` is consumed (segments are modified in
/// place). Returns 0 on success or the failing errno.
template <typename WriteFn>
int pwritev_all(std::vector<struct iovec>& vecs, off_t off, WriteFn&& fn) {
  std::size_t idx = 0;  // first segment not fully written yet
  while (idx < vecs.size()) {
    const ssize_t n = fn(vecs.data() + idx, static_cast<int>(vecs.size() - idx), off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno != 0 ? errno : EIO;
    }
    if (n == 0) {
      // A 0-byte pwritev on a regular file should be impossible with
      // non-empty segments; treat it as an error rather than spinning.
      return EIO;
    }
    off += n;
    // Advance past fully written segments; trim a partially written one.
    std::size_t remaining = static_cast<std::size_t>(n);
    while (idx < vecs.size() && remaining >= vecs[idx].iov_len) {
      remaining -= vecs[idx].iov_len;
      ++idx;
    }
    if (idx < vecs.size() && remaining > 0) {
      vecs[idx].iov_base = static_cast<char*>(vecs[idx].iov_base) + remaining;
      vecs[idx].iov_len -= remaining;
    }
  }
  return 0;
}

/// Read-side mirror of pwritev_all: drives `fn` (a ::preadv-shaped
/// callable: (iovec*, count, offset) -> ssize_t, errno on failure) until
/// every byte of `vecs` has been filled contiguously starting at `off`
/// or EOF is hit. Retries EINTR and resumes after short reads the same
/// way; unlike the write side, a 0-byte result is legitimate (EOF) and
/// ends the loop. `vecs` is consumed. Returns 0 on success/EOF (with
/// `*nread` = bytes actually read) or the failing errno.
template <typename ReadFn>
int preadv_all(std::vector<struct iovec>& vecs, off_t off, std::size_t* nread,
               ReadFn&& fn) {
  *nread = 0;
  std::size_t idx = 0;  // first segment not fully filled yet
  while (idx < vecs.size()) {
    const ssize_t n = fn(vecs.data() + idx, static_cast<int>(vecs.size() - idx), off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno != 0 ? errno : EIO;
    }
    if (n == 0) return 0;  // EOF: report what we have
    off += n;
    *nread += static_cast<std::size_t>(n);
    // Advance past fully filled segments; trim a partially filled one.
    std::size_t remaining = static_cast<std::size_t>(n);
    while (idx < vecs.size() && remaining >= vecs[idx].iov_len) {
      remaining -= vecs[idx].iov_len;
      ++idx;
    }
    if (idx < vecs.size() && remaining > 0) {
      vecs[idx].iov_base = static_cast<char*>(vecs[idx].iov_base) + remaining;
      vecs[idx].iov_len -= remaining;
    }
  }
  return 0;
}

}  // namespace crfs::posix_detail
