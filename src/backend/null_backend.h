// NullBackend: accepts and discards all data.
//
// Mirrors the paper's Fig 5 methodology: "Once a filled chunk is picked
// up by an IO thread it is discarded without being written to a back-end
// filesystem. With this we can measure the raw performance of CRFS to
// aggregate write streams, precluding the impacts of different back-end
// filesystems."
#pragma once

#include <atomic>

#include "backend/backend_fs.h"

namespace crfs {

class NullBackend final : public BackendFs {
 public:
  Result<BackendFile> open_file(const std::string&, OpenFlags) override {
    open_files_.fetch_add(1, std::memory_order_relaxed);
    return next_.fetch_add(1, std::memory_order_relaxed);
  }
  Status close_file(BackendFile) override {
    open_files_.fetch_sub(1, std::memory_order_relaxed);
    return {};
  }
  Status pwrite(BackendFile, std::span<const std::byte> data, std::uint64_t) override {
    bytes_.fetch_add(data.size(), std::memory_order_relaxed);
    writes_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  Status pwritev(BackendFile, std::span<const BackendIoVec> iov, std::uint64_t) override {
    std::size_t total = 0;
    for (const auto& seg : iov) total += seg.len;
    bytes_.fetch_add(total, std::memory_order_relaxed);
    writes_.fetch_add(1, std::memory_order_relaxed);  // one coalesced call
    return {};
  }
  Result<std::size_t> pread(BackendFile, std::span<std::byte>, std::uint64_t) override {
    return std::size_t{0};  // always EOF
  }
  Status fsync(BackendFile) override { return {}; }
  Status truncate(BackendFile, std::uint64_t) override { return {}; }

  Result<BackendStat> stat(const std::string&) override { return BackendStat{}; }
  Status mkdir(const std::string&) override { return {}; }
  Status rmdir(const std::string&) override { return {}; }
  Status unlink(const std::string&) override { return {}; }
  Status rename(const std::string&, const std::string&) override { return {}; }
  Result<std::vector<std::string>> list_dir(const std::string&) override {
    return std::vector<std::string>{};
  }
  std::string name() const override { return "null"; }

  std::uint64_t bytes_discarded() const { return bytes_.load(); }
  std::uint64_t writes_observed() const { return writes_.load(); }

 private:
  std::atomic<BackendFile> next_{1};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::int64_t> open_files_{0};
};

}  // namespace crfs
