#include "mpi/targets.h"

namespace crfs::mpi {

CrfsTarget::CrfsTarget(FuseShim& shim, std::string prefix)
    : shim_(shim), prefix_(std::move(prefix)) {}

Result<std::unique_ptr<blcr::ByteSink>> CrfsTarget::open_rank(unsigned rank) {
  const std::string path = prefix_ + "rank" + std::to_string(rank) + ".ckpt";
  auto file = File::open(shim_, path, {.create = true, .truncate = true, .write = true});
  if (!file.ok()) return file.error();
  std::lock_guard lock(mu_);
  auto [it, inserted] = files_.insert_or_assign(rank, std::move(file.value()));
  return std::unique_ptr<blcr::ByteSink>(new blcr::CrfsFileSink(it->second));
}

Status CrfsTarget::finish_rank(unsigned rank) {
  std::unique_lock lock(mu_);
  auto it = files_.find(rank);
  if (it == files_.end()) return Error{EBADF, "finish_rank: rank not open"};
  File file = std::move(it->second);
  files_.erase(it);
  lock.unlock();
  return file.close();  // blocks until CRFS drains this file's chunks
}

NativeTarget::NativeTarget(std::shared_ptr<BackendFs> backend, std::string prefix)
    : backend_(std::move(backend)), prefix_(std::move(prefix)) {}

Result<std::unique_ptr<blcr::ByteSink>> NativeTarget::open_rank(unsigned rank) {
  const std::string path = prefix_ + "rank" + std::to_string(rank) + ".ckpt";
  auto bf = backend_->open_file(path, {.create = true, .truncate = true, .write = true});
  if (!bf.ok()) return bf.error();
  {
    std::lock_guard lock(mu_);
    handles_[rank] = bf.value();
  }
  return std::unique_ptr<blcr::ByteSink>(new blcr::BackendSink(*backend_, bf.value()));
}

Status NativeTarget::finish_rank(unsigned rank) {
  BackendFile handle;
  {
    std::lock_guard lock(mu_);
    auto it = handles_.find(rank);
    if (it == handles_.end()) return Error{EBADF, "finish_rank: rank not open"};
    handle = it->second;
    handles_.erase(it);
  }
  return backend_->close_file(handle);
}

}  // namespace crfs::mpi
