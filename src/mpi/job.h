// Coordinated checkpoint job driver (real-thread mode).
//
// Implements the three-phase blocking checkpoint cycle every evaluated
// MPI stack shares (paper §II-C):
//   Phase 1  suspend communication, build a consistent global state
//            (modelled as a barrier over all ranks)
//   Phase 2  every rank dumps its image via the BLCR-analogue writer
//   Phase 3  barrier, then resume communication
//
// Because phase 3 synchronizes, the job's checkpoint time is the time of
// the SLOWEST rank — the variance mechanism the paper highlights in §III:
// "Even if some processes finish their checkpoint writing quicker than
// others, they are forced to coordinate with the slower counterparts."
//
// Ranks run as threads; the target filesystem is pluggable (CRFS mount or
// direct backend) so examples and tests can compare both paths on real
// hardware. The cluster-scale figures use the DES instead (src/sim).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "blcr/checkpoint_writer.h"
#include "common/result.h"
#include "mpi/stack_model.h"
#include "trace/write_recorder.h"

namespace crfs::mpi {

/// Per-rank result of one checkpoint cycle.
struct RankReport {
  unsigned rank = 0;
  std::uint64_t image_bytes = 0;
  double write_seconds = 0.0;   ///< phase-2 time for this rank (incl. close)
  std::uint64_t payload_crc = 0;
  trace::WriteRecorder recorder;
};

/// Whole-job result.
struct JobReport {
  std::vector<RankReport> ranks;
  double checkpoint_seconds = 0.0;   ///< max over ranks (phase-3 barrier)
  double mean_rank_seconds = 0.0;
  bool ok = true;
  std::string error;

  /// max/min rank completion ratio (Fig 11's variance measure).
  double spread() const;
};

/// Abstracts "where rank i's checkpoint file lives". Implementations open
/// a sink per rank; the sink must be independently usable from that
/// rank's thread.
class CheckpointTarget {
 public:
  virtual ~CheckpointTarget() = default;

  /// Opens the checkpoint file for `rank` and returns a sequential sink.
  /// The returned sink is closed/finalized via finish().
  virtual Result<std::unique_ptr<blcr::ByteSink>> open_rank(unsigned rank) = 0;

  /// Completes rank `rank`'s file (close; for CRFS this blocks until all
  /// outstanding chunk writes finish, which is part of the measured time).
  virtual Status finish_rank(unsigned rank) = 0;
};

struct JobConfig {
  Stack stack = Stack::kMvapich2;
  LuClass lu_class = LuClass::kB;
  unsigned nprocs = 8;          ///< ranks (threads) on this node
  std::uint64_t seed = 1;
  bool record_writes = false;   ///< attach a WriteRecorder per rank
  /// When non-zero, use this per-rank image size instead of the stack
  /// model (the model extrapolates to very large images at small rank
  /// counts, which laptop-scale demos don't want).
  std::uint64_t image_bytes_override = 0;
};

/// Runs one coordinated checkpoint of the configured job.
JobReport run_checkpoint(const JobConfig& config, CheckpointTarget& target);

}  // namespace crfs::mpi
