// CheckpointTarget implementations: through a CRFS mount, or natively to
// a backend (the paper's two measured paths).
#pragma once

#include <mutex>
#include <unordered_map>

#include "backend/backend_fs.h"
#include "blcr/sinks.h"
#include "crfs/file.h"
#include "crfs/fuse_shim.h"
#include "mpi/job.h"

namespace crfs::mpi {

/// Ranks checkpoint through a FUSE-shimmed CRFS mount ("Using CRFS").
class CrfsTarget final : public CheckpointTarget {
 public:
  /// Files are created as `<prefix>rank<i>.ckpt` in the mount.
  CrfsTarget(FuseShim& shim, std::string prefix = "");

  Result<std::unique_ptr<blcr::ByteSink>> open_rank(unsigned rank) override;
  Status finish_rank(unsigned rank) override;

 private:
  FuseShim& shim_;
  std::string prefix_;
  std::mutex mu_;
  std::unordered_map<unsigned, File> files_;
};

/// Ranks checkpoint straight to the backend ("Native"): every BLCR write
/// is an individual backend pwrite, no aggregation.
class NativeTarget final : public CheckpointTarget {
 public:
  NativeTarget(std::shared_ptr<BackendFs> backend, std::string prefix = "");

  Result<std::unique_ptr<blcr::ByteSink>> open_rank(unsigned rank) override;
  Status finish_rank(unsigned rank) override;

 private:
  std::shared_ptr<BackendFs> backend_;
  std::string prefix_;
  std::mutex mu_;
  std::unordered_map<unsigned, BackendFile> handles_;
};

}  // namespace crfs::mpi
