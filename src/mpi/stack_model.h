// MPI stack models: the three C/R-capable MPI implementations the paper
// evaluates (§V, Table II), reduced to what distinguishes them for
// checkpoint IO — the per-process image size for each NAS LU class.
//
// Table II (measured at 128 processes):
//   LU.B.128  MVAPICH2-IB 7.1 MB/proc   OpenMPI-IB 7.1   MPICH2-TCP 3.9
//   LU.C.128  MVAPICH2-IB 15.1          OpenMPI-IB 13.7  MPICH2-TCP 10.7
//   LU.D.128  MVAPICH2-IB 106.7         OpenMPI-IB 108.3 MPICH2-TCP 103.6
//
// "MVAPICH2 and OpenMPI produce checkpoint images slightly bigger than
// MPICH2 ... because they use InfiniBand transport which requires more
// memory to maintain the communication channels."
//
// The model decomposes each image into application data (divided across
// ranks) plus a per-rank runtime footprint (transport-dependent), so
// image sizes extrapolate to other process counts (Fig 9 runs LU.D on
// 16-128 processes).
#pragma once

#include <cstdint>
#include <string>

namespace crfs::mpi {

enum class Stack { kMvapich2, kOpenMpi, kMpich2 };
enum class LuClass { kB, kC, kD };

const char* stack_name(Stack s);       ///< "MVAPICH2", "OpenMPI", "MPICH2"
const char* stack_transport(Stack s);  ///< "IB" or "TCP"
const char* lu_class_name(LuClass c);  ///< "LU.B", "LU.C", "LU.D"

/// Per-process checkpoint image size in bytes for `nprocs` total ranks.
/// Exact Table II values at nprocs == 128.
std::uint64_t image_bytes_per_process(Stack stack, LuClass cls, unsigned nprocs);

/// Total checkpoint bytes across the job.
std::uint64_t total_checkpoint_bytes(Stack stack, LuClass cls, unsigned nprocs);

/// "LU.C.128"-style benchmark tag.
std::string benchmark_tag(LuClass cls, unsigned nprocs);

}  // namespace crfs::mpi
