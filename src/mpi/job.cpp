#include "mpi/job.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <mutex>
#include <thread>

#include "blcr/process_image.h"
#include "common/wall_clock.h"

namespace crfs::mpi {

double JobReport::spread() const {
  if (ranks.empty()) return 1.0;
  double lo = ranks.front().write_seconds, hi = lo;
  for (const auto& r : ranks) {
    lo = std::min(lo, r.write_seconds);
    hi = std::max(hi, r.write_seconds);
  }
  return lo > 0 ? hi / lo : 1.0;
}

JobReport run_checkpoint(const JobConfig& config, CheckpointTarget& target) {
  JobReport report;
  report.ranks.resize(config.nprocs);

  const std::uint64_t image_bytes =
      config.image_bytes_override != 0
          ? config.image_bytes_override
          : image_bytes_per_process(config.stack, config.lu_class, config.nprocs);

  // Phase boundaries. One extra participant: the coordinator thread that
  // timestamps the global cycle.
  std::barrier phase_start(static_cast<std::ptrdiff_t>(config.nprocs) + 1);
  std::barrier phase_end(static_cast<std::ptrdiff_t>(config.nprocs) + 1);

  std::mutex error_mu;
  auto record_failure = [&](const std::string& what) {
    std::lock_guard lock(error_mu);
    report.ok = false;
    if (report.error.empty()) report.error = what;
  };

  std::vector<std::thread> ranks;
  ranks.reserve(config.nprocs);
  for (unsigned rank = 0; rank < config.nprocs; ++rank) {
    ranks.emplace_back([&, rank] {
      RankReport& out = report.ranks[rank];
      out.rank = rank;
      out.image_bytes = image_bytes;
      if (config.record_writes) out.recorder = trace::WriteRecorder(static_cast<int>(rank));

      // Phase 1: communication flushed; all ranks aligned.
      phase_start.arrive_and_wait();

      const Stopwatch sw;
      const auto image = blcr::ProcessImage::synthesize(
          rank, image_bytes, config.seed ^ (0x5151ULL * (rank + 1)));

      auto sink = target.open_rank(rank);
      if (!sink.ok()) {
        record_failure("open rank " + std::to_string(rank) + ": " + sink.error().to_string());
      } else {
        auto crc = blcr::CheckpointWriter::write_image(
            image, *sink.value(), config.record_writes ? &out.recorder : nullptr);
        if (!crc.ok()) {
          record_failure("write rank " + std::to_string(rank) + ": " + crc.error().to_string());
        } else {
          out.payload_crc = crc.value();
        }
        const Status fin = target.finish_rank(rank);
        if (!fin.ok()) {
          record_failure("close rank " + std::to_string(rank) + ": " + fin.error().to_string());
        }
      }
      // Measured time includes the close (paper: "the time for BLCR to
      // write the checkpointed data and the time to close the file (so
      // there is no pending data in CRFS)").
      out.write_seconds = sw.elapsed_seconds();

      // Phase 3: wait for the slowest rank, then resume.
      phase_end.arrive_and_wait();
    });
  }

  phase_start.arrive_and_wait();
  const Stopwatch cycle;
  phase_end.arrive_and_wait();
  report.checkpoint_seconds = cycle.elapsed_seconds();

  for (auto& t : ranks) t.join();

  double sum = 0;
  for (const auto& r : report.ranks) sum += r.write_seconds;
  report.mean_rank_seconds = config.nprocs ? sum / config.nprocs : 0.0;
  return report;
}

}  // namespace crfs::mpi
