#include "mpi/stack_model.h"

#include "common/units.h"

namespace crfs::mpi {
namespace {

// Per-rank runtime footprint (transport state, library buffers) in MB.
// IB stacks pin channel memory per connection; TCP is leaner (§V-C).
double runtime_base_mb(Stack s) {
  switch (s) {
    case Stack::kMvapich2: return 3.0;
    case Stack::kOpenMpi: return 3.2;
    case Stack::kMpich2: return 0.7;
  }
  return 0.0;
}

// Table II per-process image sizes (MB) at 128 processes.
double table2_image_mb(Stack s, LuClass c) {
  switch (s) {
    case Stack::kMvapich2:
      switch (c) {
        case LuClass::kB: return 7.1;
        case LuClass::kC: return 15.1;
        case LuClass::kD: return 106.7;
      }
      break;
    case Stack::kOpenMpi:
      switch (c) {
        case LuClass::kB: return 7.1;
        case LuClass::kC: return 13.7;
        case LuClass::kD: return 108.3;
      }
      break;
    case Stack::kMpich2:
      switch (c) {
        case LuClass::kB: return 3.9;
        case LuClass::kC: return 10.7;
        case LuClass::kD: return 103.6;
      }
      break;
  }
  return 0.0;
}

}  // namespace

const char* stack_name(Stack s) {
  switch (s) {
    case Stack::kMvapich2: return "MVAPICH2";
    case Stack::kOpenMpi: return "OpenMPI";
    case Stack::kMpich2: return "MPICH2";
  }
  return "?";
}

const char* stack_transport(Stack s) {
  return s == Stack::kMpich2 ? "TCP" : "IB";
}

const char* lu_class_name(LuClass c) {
  switch (c) {
    case LuClass::kB: return "LU.B";
    case LuClass::kC: return "LU.C";
    case LuClass::kD: return "LU.D";
  }
  return "?";
}

std::uint64_t image_bytes_per_process(Stack stack, LuClass cls, unsigned nprocs) {
  // image(n) = app_data / n + runtime_base, anchored so image(128)
  // reproduces Table II exactly.
  const double base = runtime_base_mb(stack);
  const double app_data_mb = (table2_image_mb(stack, cls) - base) * 128.0;
  const double image_mb = app_data_mb / static_cast<double>(nprocs) + base;
  return static_cast<std::uint64_t>(image_mb * static_cast<double>(MiB));
}

std::uint64_t total_checkpoint_bytes(Stack stack, LuClass cls, unsigned nprocs) {
  return image_bytes_per_process(stack, cls, nprocs) * nprocs;
}

std::string benchmark_tag(LuClass cls, unsigned nprocs) {
  return std::string(lu_class_name(cls)) + "." + std::to_string(nprocs);
}

}  // namespace crfs::mpi
