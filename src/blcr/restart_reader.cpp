#include "blcr/restart_reader.h"

#include <cerrno>
#include <array>
#include <cstring>

#include "common/checksum.h"
#include "common/units.h"

namespace crfs::blcr {
namespace {

// Reads exactly `size` bytes or fails.
Status read_exact(ByteSource& src, void* out, std::size_t size, const char* what) {
  auto r = src.read({static_cast<std::byte*>(out), size});
  if (!r.ok()) return r.error();
  if (r.value() != size) return Error{EILSEQ, std::string("truncated checkpoint at ") + what};
  return {};
}

template <typename T>
Status read_pod(ByteSource& src, T& out, const char* what) {
  return read_exact(src, &out, sizeof(T), what);
}

}  // namespace

Result<RestartSummary> RestartReader::read_image(ByteSource& source) {
  RestartSummary out;

  char magic[8];
  CRFS_RETURN_IF_ERROR(read_exact(source, magic, sizeof(magic), "magic"));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Error{EILSEQ, "bad checkpoint magic"};
  }
  std::uint32_t version = 0;
  CRFS_RETURN_IF_ERROR(read_pod(source, version, "version"));
  if (version != kFormatVersion) {
    return Error{EILSEQ, "unsupported checkpoint version " + std::to_string(version)};
  }
  CRFS_RETURN_IF_ERROR(read_pod(source, out.pid, "pid"));
  CRFS_RETURN_IF_ERROR(read_pod(source, out.vma_count, "vma_count"));
  std::uint64_t declared_bytes = 0;
  CRFS_RETURN_IF_ERROR(read_pod(source, declared_bytes, "image_bytes"));

  // Context section: registers + two blobs, verified against its CRC.
  Crc64 ctx_crc;
  std::uint64_t reg = 0;
  for (unsigned i = 0; i < kContextRegisters; ++i) {
    CRFS_RETURN_IF_ERROR(read_pod(source, reg, "context register"));
    ctx_crc.update(&reg, sizeof(reg));
  }
  std::array<std::byte, kContextBlobBytes> blob;
  CRFS_RETURN_IF_ERROR(read_exact(source, blob.data(), blob.size(), "context blob 0"));
  ctx_crc.update(blob.data(), blob.size());
  CRFS_RETURN_IF_ERROR(read_exact(source, blob.data(), blob.size(), "context blob 1"));
  ctx_crc.update(blob.data(), blob.size());
  std::uint64_t stored_ctx_crc = 0;
  CRFS_RETURN_IF_ERROR(read_pod(source, stored_ctx_crc, "context crc"));
  if (stored_ctx_crc != ctx_crc.digest()) {
    return Error{EILSEQ, "context CRC mismatch (corrupt checkpoint)"};
  }

  Crc64 total_crc;
  std::vector<std::byte> payload;
  out.vmas.reserve(out.vma_count);
  for (std::uint32_t i = 0; i < out.vma_count; ++i) {
    Vma vma;
    std::uint64_t prot_type = 0, vma_crc = 0;
    CRFS_RETURN_IF_ERROR(read_pod(source, vma.start, "vma start"));
    CRFS_RETURN_IF_ERROR(read_pod(source, vma.length, "vma length"));
    CRFS_RETURN_IF_ERROR(read_pod(source, prot_type, "vma prot/type"));
    CRFS_RETURN_IF_ERROR(read_pod(source, vma.content_seed, "vma seed"));
    CRFS_RETURN_IF_ERROR(read_pod(source, vma_crc, "vma crc"));
    vma.prot = static_cast<std::uint32_t>(prot_type >> 32);
    vma.type = static_cast<VmaType>(static_cast<std::uint32_t>(prot_type));

    if (vma.length > 1024 * MiB) {
      return Error{EILSEQ, "implausible VMA length (corrupt header)"};
    }
    payload.resize(vma.length);
    // Restore the mapping contents in bounded slabs, as a restart would
    // fault pages back in.
    std::size_t got = 0;
    while (got < payload.size()) {
      const std::size_t slab = std::min<std::size_t>(1 * MiB, payload.size() - got);
      CRFS_RETURN_IF_ERROR(read_exact(source, payload.data() + got, slab, "vma payload"));
      got += slab;
    }
    if (Crc64::of(payload.data(), payload.size()) != vma_crc) {
      return Error{EILSEQ, "VMA payload CRC mismatch (corrupt checkpoint)"};
    }
    total_crc.update(payload.data(), payload.size());
    out.image_bytes += vma.length;
    out.vmas.push_back(vma);
  }

  if (out.image_bytes != declared_bytes) {
    return Error{EILSEQ, "image byte count mismatch"};
  }

  std::uint64_t trailer_crc = 0;
  CRFS_RETURN_IF_ERROR(read_pod(source, trailer_crc, "trailer crc"));
  if (trailer_crc != total_crc.digest()) {
    return Error{EILSEQ, "whole-image CRC mismatch"};
  }
  out.payload_crc = trailer_crc;

  char end[4];
  CRFS_RETURN_IF_ERROR(read_exact(source, end, sizeof(end), "end magic"));
  if (std::memcmp(end, kEndMagic, sizeof(kEndMagic)) != 0) {
    return Error{EILSEQ, "bad end magic"};
  }
  return out;
}

}  // namespace crfs::blcr
