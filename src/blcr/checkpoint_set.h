// CheckpointSet: epoch management for periodic checkpointing.
//
// The paper's evaluation writes one set of rank files per checkpoint; a
// production deployment needs what sits around that: where do epochs
// live, how does a restart find the latest COMPLETE one when the job
// died mid-checkpoint, and how is old storage reclaimed. CheckpointSet
// provides that layer on top of a CRFS mount:
//
//   base/
//     epoch_000007/              committed epoch (atomically published)
//       MANIFEST                 rank count, per-rank bytes + CRC64
//       rank_0.ckpt ...
//     .epoch_000008.tmp/         in-progress epoch (ignored by restart)
//
// Commit protocol: rank files are written into the hidden .tmp directory
// through CRFS; commit() writes the MANIFEST (after every rank's chunks
// have drained — File::close is the durability barrier) and then
// atomically renames the directory. A crash at ANY point leaves either a
// fully valid epoch or an ignorable .tmp.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "blcr/restart_reader.h"
#include "blcr/sinks.h"
#include "crfs/file.h"
#include "crfs/fuse_shim.h"

namespace crfs::blcr {

/// Parsed MANIFEST contents.
struct EpochInfo {
  unsigned epoch = 0;
  unsigned ranks = 0;
  struct Rank {
    unsigned rank = 0;
    std::uint64_t bytes = 0;
    std::uint64_t payload_crc = 0;
  };
  std::vector<Rank> rank_files;
};

class CheckpointSet;

/// One in-progress epoch. Obtain from CheckpointSet::begin_epoch, then
/// open_rank/record for every rank, then commit() (or abort()).
class EpochWriter {
 public:
  EpochWriter(EpochWriter&& other) noexcept
      : set_(std::exchange(other.set_, nullptr)),
        epoch_(other.epoch_),
        ranks_(other.ranks_),
        staging_(std::move(other.staging_)),
        recorded_(std::move(other.recorded_)),
        finished_(other.finished_) {}
  EpochWriter& operator=(EpochWriter&&) = delete;
  EpochWriter(const EpochWriter&) = delete;
  EpochWriter& operator=(const EpochWriter&) = delete;
  ~EpochWriter();

  unsigned epoch() const { return epoch_; }

  /// Opens rank `r`'s checkpoint file inside the staging directory.
  Result<File> open_rank(unsigned rank);

  /// Records rank metadata for the manifest. Call after the rank's file
  /// is closed.
  void record(unsigned rank, std::uint64_t bytes, std::uint64_t payload_crc);

  /// Writes the MANIFEST and atomically publishes the epoch. Fails if
  /// any rank was not recorded.
  Status commit();

  /// Removes the staging directory.
  Status abort();

 private:
  friend class CheckpointSet;
  EpochWriter(CheckpointSet& set, unsigned epoch, unsigned ranks, std::string staging);

  CheckpointSet* set_;
  unsigned epoch_;
  unsigned ranks_;
  std::string staging_;
  std::vector<std::optional<EpochInfo::Rank>> recorded_;
  bool finished_ = false;
};

class CheckpointSet {
 public:
  /// Manages epochs under `base_dir` of the given CRFS mount. Creates
  /// the base directory if missing.
  static Result<CheckpointSet> open(FuseShim& shim, std::string base_dir);

  /// Starts a new epoch (id = last committed/staged + 1) for `ranks`.
  Result<EpochWriter> begin_epoch(unsigned ranks);

  /// Committed epoch ids, ascending.
  Result<std::vector<unsigned>> epochs();

  /// Highest committed epoch, if any.
  Result<std::optional<unsigned>> latest();

  /// Parses an epoch's MANIFEST.
  Result<EpochInfo> inspect(unsigned epoch);

  /// Full verification: parses the manifest and restart-reads every rank
  /// image, checking payload CRCs against it.
  Status verify(unsigned epoch);

  /// Opens rank `r` of a committed epoch for restart.
  Result<File> open_rank_for_restart(unsigned epoch, unsigned rank);

  /// Deletes committed epochs beyond the newest `keep` and any stale
  /// staging directories. Returns the number of epochs removed.
  Result<unsigned> prune(unsigned keep);

  const std::string& base_dir() const { return base_; }

 private:
  friend class EpochWriter;
  CheckpointSet(FuseShim& shim, std::string base) : shim_(&shim), base_(std::move(base)) {}

  static std::string epoch_dir_name(unsigned epoch);
  static std::string staging_dir_name(unsigned epoch);
  std::string rank_file(const std::string& dir, unsigned rank) const;
  Status remove_tree(const std::string& dir);

  FuseShim* shim_;
  std::string base_;
};

}  // namespace crfs::blcr
