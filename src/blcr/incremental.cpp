#include "blcr/incremental.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/checksum.h"
#include "common/units.h"

namespace crfs::blcr {
namespace {

constexpr std::uint32_t kChanged = 1;
constexpr std::uint32_t kUnchanged = 0;

// -- little write/read helpers (mirrors checkpoint_writer/reader) --------

Status write_pod_to(ByteSink& sink, const void* data, std::size_t size) {
  return sink.write({static_cast<const std::byte*>(data), size});
}

template <typename T>
Status write_pod(ByteSink& sink, const T& v) {
  return write_pod_to(sink, &v, sizeof(T));
}

Status read_exact(ByteSource& src, void* out, std::size_t size, const char* what) {
  auto r = src.read({static_cast<std::byte*>(out), size});
  if (!r.ok()) return r.error();
  if (r.value() != size) return Error{EILSEQ, std::string("truncated delta at ") + what};
  return {};
}

template <typename T>
Status read_pod(ByteSource& src, T& out, const char* what) {
  return read_exact(src, &out, sizeof(T), what);
}

// Context section identical to the full format (see checkpoint_writer).
Status write_context(ByteSink& sink, std::uint32_t pid) {
  Rng ctx_rng(pid + 0xC0DEULL);
  Crc64 ctx_crc;
  for (unsigned i = 0; i < kContextRegisters; ++i) {
    const std::uint64_t reg = ctx_rng.next_u64();
    ctx_crc.update(&reg, sizeof(reg));
    CRFS_RETURN_IF_ERROR(write_pod(sink, reg));
  }
  std::array<std::byte, kContextBlobBytes> blob{};
  for (auto& b : blob) b = static_cast<std::byte>(ctx_rng.next_u64());
  ctx_crc.update(blob.data(), blob.size());
  ctx_crc.update(blob.data(), blob.size());
  CRFS_RETURN_IF_ERROR(write_pod_to(sink, blob.data(), blob.size()));
  CRFS_RETURN_IF_ERROR(write_pod_to(sink, blob.data(), blob.size()));
  return write_pod(sink, ctx_crc.digest());
}

Status read_context(ByteSource& src) {
  Crc64 ctx_crc;
  std::uint64_t reg = 0;
  for (unsigned i = 0; i < kContextRegisters; ++i) {
    CRFS_RETURN_IF_ERROR(read_pod(src, reg, "context register"));
    ctx_crc.update(&reg, sizeof(reg));
  }
  std::array<std::byte, kContextBlobBytes> blob;
  CRFS_RETURN_IF_ERROR(read_exact(src, blob.data(), blob.size(), "blob 0"));
  ctx_crc.update(blob.data(), blob.size());
  CRFS_RETURN_IF_ERROR(read_exact(src, blob.data(), blob.size(), "blob 1"));
  ctx_crc.update(blob.data(), blob.size());
  std::uint64_t stored = 0;
  CRFS_RETURN_IF_ERROR(read_pod(src, stored, "context crc"));
  if (stored != ctx_crc.digest()) return Error{EILSEQ, "delta context CRC mismatch"};
  return {};
}

}  // namespace

ImageDigest digest_image(const ProcessImage& image) {
  ImageDigest out;
  out.reserve(image.vmas.size());
  std::vector<std::byte> payload;
  for (const auto& vma : image.vmas) {
    out.push_back({vma.start, vma.length, generate_vma_payload(vma, payload)});
  }
  return out;
}

ImageDigest digest_of(const MaterializedImage& image) {
  ImageDigest out;
  out.reserve(image.vmas.size());
  for (const auto& vma : image.vmas) {
    auto it = image.payloads.find(vma.start);
    if (it == image.payloads.end()) continue;
    out.push_back({vma.start, vma.length,
                   Crc64::of(it->second.data(), it->second.size())});
  }
  return out;
}

Result<MaterializedImage> read_image_payloads(ByteSource& source) {
  // Parse the full format, retaining payloads. (RestartReader::read_image
  // verifies and discards; this variant materialises.)
  MaterializedImage out;

  char magic[8];
  CRFS_RETURN_IF_ERROR(read_exact(source, magic, sizeof(magic), "magic"));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Error{EILSEQ, "not a full checkpoint image"};
  }
  std::uint32_t version = 0, vma_count = 0;
  CRFS_RETURN_IF_ERROR(read_pod(source, version, "version"));
  if (version != kFormatVersion) return Error{EILSEQ, "unsupported version"};
  CRFS_RETURN_IF_ERROR(read_pod(source, out.pid, "pid"));
  CRFS_RETURN_IF_ERROR(read_pod(source, vma_count, "vma count"));
  std::uint64_t declared = 0;
  CRFS_RETURN_IF_ERROR(read_pod(source, declared, "image bytes"));
  CRFS_RETURN_IF_ERROR(read_context(source));

  Crc64 total;
  for (std::uint32_t i = 0; i < vma_count; ++i) {
    Vma vma;
    std::uint64_t prot_type = 0, vma_crc = 0;
    CRFS_RETURN_IF_ERROR(read_pod(source, vma.start, "vma start"));
    CRFS_RETURN_IF_ERROR(read_pod(source, vma.length, "vma length"));
    CRFS_RETURN_IF_ERROR(read_pod(source, prot_type, "vma prot/type"));
    CRFS_RETURN_IF_ERROR(read_pod(source, vma.content_seed, "vma seed"));
    CRFS_RETURN_IF_ERROR(read_pod(source, vma_crc, "vma crc"));
    vma.prot = static_cast<std::uint32_t>(prot_type >> 32);
    vma.type = static_cast<VmaType>(static_cast<std::uint32_t>(prot_type));
    if (vma.length > 1024 * MiB) return Error{EILSEQ, "implausible VMA length"};

    std::vector<std::byte> payload(vma.length);
    CRFS_RETURN_IF_ERROR(read_exact(source, payload.data(), payload.size(), "payload"));
    if (Crc64::of(payload.data(), payload.size()) != vma_crc) {
      return Error{EILSEQ, "VMA CRC mismatch"};
    }
    total.update(payload.data(), payload.size());
    out.vmas.push_back(vma);
    out.payloads.emplace(vma.start, std::move(payload));
  }

  std::uint64_t trailer = 0;
  CRFS_RETURN_IF_ERROR(read_pod(source, trailer, "trailer crc"));
  if (trailer != total.digest()) return Error{EILSEQ, "image CRC mismatch"};
  out.payload_crc = trailer;
  char end[4];
  CRFS_RETURN_IF_ERROR(read_exact(source, end, sizeof(end), "end magic"));
  if (std::memcmp(end, kEndMagic, sizeof(kEndMagic)) != 0) {
    return Error{EILSEQ, "bad end magic"};
  }
  return out;
}

Result<DeltaStats> write_delta_image(const ProcessImage& image, const ImageDigest& parent,
                                     ByteSink& sink, const WriterOptions& options) {
  std::map<std::uint64_t, VmaDigest> parent_by_start;
  for (const auto& d : parent) parent_by_start.emplace(d.start, d);

  CRFS_RETURN_IF_ERROR(write_pod_to(sink, kDeltaMagic, sizeof(kDeltaMagic)));
  CRFS_RETURN_IF_ERROR(write_pod(sink, kDeltaVersion));
  CRFS_RETURN_IF_ERROR(write_pod(sink, image.pid));
  CRFS_RETURN_IF_ERROR(write_pod(sink, static_cast<std::uint32_t>(image.vmas.size())));
  CRFS_RETURN_IF_ERROR(write_pod(sink, image.content_bytes()));
  CRFS_RETURN_IF_ERROR(write_context(sink, image.pid));

  DeltaStats stats;
  Crc64 total;
  std::vector<std::byte> payload;
  for (const auto& vma : image.vmas) {
    const std::uint64_t crc = generate_vma_payload(vma, payload);
    total.update(payload.data(), payload.size());

    const auto it = parent_by_start.find(vma.start);
    const bool unchanged = it != parent_by_start.end() &&
                           it->second.length == vma.length &&
                           it->second.payload_crc == crc;
    if (unchanged) {
      CRFS_RETURN_IF_ERROR(write_pod(sink, kUnchanged));
      CRFS_RETURN_IF_ERROR(write_pod(sink, vma.start));
      CRFS_RETURN_IF_ERROR(write_pod(sink, vma.length));
      CRFS_RETURN_IF_ERROR(write_pod(sink, crc));
      stats.unchanged_vmas += 1;
      stats.payload_bytes_referenced += vma.length;
      continue;
    }

    CRFS_RETURN_IF_ERROR(write_pod(sink, kChanged));
    CRFS_RETURN_IF_ERROR(write_pod(sink, vma.start));
    CRFS_RETURN_IF_ERROR(write_pod(sink, vma.length));
    const std::uint64_t prot_type =
        (static_cast<std::uint64_t>(vma.prot) << 32) | static_cast<std::uint32_t>(vma.type);
    CRFS_RETURN_IF_ERROR(write_pod(sink, prot_type));
    CRFS_RETURN_IF_ERROR(write_pod(sink, vma.content_seed));
    CRFS_RETURN_IF_ERROR(write_pod(sink, crc));
    // Payload, optionally with zero-page elision (same as the full writer).
    if (!options.elide_zero_pages) {
      CRFS_RETURN_IF_ERROR(write_pod_to(sink, payload.data(), payload.size()));
    } else {
      std::size_t pos = 0;
      while (pos < payload.size()) {
        std::size_t run_end = pos;
        const bool zero = payload[pos] == std::byte{0};
        while (run_end < payload.size() &&
               (payload[run_end] == std::byte{0}) == zero) {
          ++run_end;
        }
        if (zero && run_end - pos >= options.min_skip_run && sink.skip(run_end - pos)) {
          // hole
        } else {
          CRFS_RETURN_IF_ERROR(write_pod_to(sink, payload.data() + pos, run_end - pos));
        }
        pos = run_end;
      }
    }
    stats.changed_vmas += 1;
    stats.payload_bytes_written += vma.length;
  }

  stats.full_image_crc = total.digest();
  CRFS_RETURN_IF_ERROR(write_pod(sink, stats.full_image_crc));
  CRFS_RETURN_IF_ERROR(write_pod_to(sink, kEndMagic, sizeof(kEndMagic)));
  return stats;
}

Result<MaterializedImage> read_delta_image(ByteSource& delta,
                                           const MaterializedImage& parent) {
  MaterializedImage out;

  char magic[8];
  CRFS_RETURN_IF_ERROR(read_exact(delta, magic, sizeof(magic), "delta magic"));
  if (std::memcmp(magic, kDeltaMagic, sizeof(kDeltaMagic)) != 0) {
    return Error{EILSEQ, "not a delta checkpoint image"};
  }
  std::uint32_t version = 0, vma_count = 0;
  CRFS_RETURN_IF_ERROR(read_pod(delta, version, "delta version"));
  if (version != kDeltaVersion) return Error{EILSEQ, "unsupported delta version"};
  CRFS_RETURN_IF_ERROR(read_pod(delta, out.pid, "pid"));
  CRFS_RETURN_IF_ERROR(read_pod(delta, vma_count, "vma count"));
  std::uint64_t declared = 0;
  CRFS_RETURN_IF_ERROR(read_pod(delta, declared, "image bytes"));
  CRFS_RETURN_IF_ERROR(read_context(delta));

  Crc64 total;
  std::uint64_t composed_bytes = 0;
  for (std::uint32_t i = 0; i < vma_count; ++i) {
    std::uint32_t tag = 0;
    CRFS_RETURN_IF_ERROR(read_pod(delta, tag, "vma tag"));
    if (tag == kUnchanged) {
      std::uint64_t start = 0, length = 0, crc = 0;
      CRFS_RETURN_IF_ERROR(read_pod(delta, start, "ref start"));
      CRFS_RETURN_IF_ERROR(read_pod(delta, length, "ref length"));
      CRFS_RETURN_IF_ERROR(read_pod(delta, crc, "ref crc"));
      // Resolve against the parent and verify its ACTUAL content.
      const auto pv = parent.payloads.find(start);
      if (pv == parent.payloads.end() || pv->second.size() != length) {
        return Error{EILSEQ, "delta references a VMA the parent lacks"};
      }
      if (Crc64::of(pv->second.data(), pv->second.size()) != crc) {
        return Error{EILSEQ, "parent VMA content does not match delta reference"};
      }
      // Copy the parent's VMA descriptor.
      const auto pd = std::find_if(parent.vmas.begin(), parent.vmas.end(),
                                   [&](const Vma& v) { return v.start == start; });
      if (pd == parent.vmas.end()) return Error{EILSEQ, "parent VMA descriptor missing"};
      total.update(pv->second.data(), pv->second.size());
      composed_bytes += length;
      out.vmas.push_back(*pd);
      out.payloads.emplace(start, pv->second);
      continue;
    }
    if (tag != kChanged) return Error{EILSEQ, "bad delta VMA tag"};

    Vma vma;
    std::uint64_t prot_type = 0, vma_crc = 0;
    CRFS_RETURN_IF_ERROR(read_pod(delta, vma.start, "vma start"));
    CRFS_RETURN_IF_ERROR(read_pod(delta, vma.length, "vma length"));
    CRFS_RETURN_IF_ERROR(read_pod(delta, prot_type, "vma prot/type"));
    CRFS_RETURN_IF_ERROR(read_pod(delta, vma.content_seed, "vma seed"));
    CRFS_RETURN_IF_ERROR(read_pod(delta, vma_crc, "vma crc"));
    vma.prot = static_cast<std::uint32_t>(prot_type >> 32);
    vma.type = static_cast<VmaType>(static_cast<std::uint32_t>(prot_type));
    if (vma.length > 1024 * MiB) return Error{EILSEQ, "implausible VMA length"};

    std::vector<std::byte> payload(vma.length);
    CRFS_RETURN_IF_ERROR(read_exact(delta, payload.data(), payload.size(), "payload"));
    if (Crc64::of(payload.data(), payload.size()) != vma_crc) {
      return Error{EILSEQ, "delta VMA CRC mismatch"};
    }
    total.update(payload.data(), payload.size());
    composed_bytes += vma.length;
    out.vmas.push_back(vma);
    out.payloads.emplace(vma.start, std::move(payload));
  }

  if (composed_bytes != declared) return Error{EILSEQ, "delta byte count mismatch"};
  std::uint64_t trailer = 0;
  CRFS_RETURN_IF_ERROR(read_pod(delta, trailer, "delta trailer crc"));
  if (trailer != total.digest()) return Error{EILSEQ, "composed image CRC mismatch"};
  out.payload_crc = trailer;
  char end[4];
  CRFS_RETURN_IF_ERROR(read_exact(delta, end, sizeof(end), "delta end magic"));
  if (std::memcmp(end, kEndMagic, sizeof(kEndMagic)) != 0) {
    return Error{EILSEQ, "bad delta end magic"};
  }
  return out;
}

ProcessImage mutate_image(const ProcessImage& image, double change_fraction,
                          std::uint64_t seed) {
  ProcessImage out = image;
  Rng rng(seed);
  for (auto& vma : out.vmas) {
    if (rng.next_double() < change_fraction) {
      vma.content_seed = rng.next_u64();  // new content, same layout
    }
  }
  return out;
}

}  // namespace crfs::blcr
