#include "blcr/process_image.h"

#include <algorithm>
#include <cstring>

#include "common/checksum.h"
#include "common/units.h"

namespace crfs::blcr {
namespace {

constexpr std::uint64_t kPage = 4096;

std::uint64_t page_align(std::uint64_t v) { return (v + kPage - 1) / kPage * kPage; }

}  // namespace

const char* vma_type_name(VmaType t) {
  switch (t) {
    case VmaType::kText: return "text";
    case VmaType::kData: return "data";
    case VmaType::kLibrary: return "library";
    case VmaType::kHeap: return "heap";
    case VmaType::kStack: return "stack";
    case VmaType::kAnonShared: return "anon-shared";
    case VmaType::kAnonPrivate: return "anon-private";
  }
  return "?";
}

std::uint64_t ProcessImage::content_bytes() const {
  std::uint64_t total = 0;
  for (const auto& v : vmas) total += v.length;
  return total;
}

ProcessImage ProcessImage::synthesize(std::uint32_t pid, std::uint64_t target_bytes,
                                      std::uint64_t seed) {
  ProcessImage image;
  image.pid = pid;
  Rng rng(seed ^ (static_cast<std::uint64_t>(pid) << 32));

  std::uint64_t next_addr = 0x400000;  // conventional ELF base
  std::uint64_t remaining = target_bytes;

  auto add = [&](VmaType type, std::uint64_t length, std::uint32_t prot) {
    if (length == 0) return;
    Vma v;
    v.start = next_addr;
    v.length = length;
    v.prot = prot;
    v.type = type;
    v.content_seed = rng.next_u64();
    // Untouched pages: heaps and stacks of real processes carry many
    // all-zero pages; code/data are dense.
    switch (type) {
      case VmaType::kHeap: v.zero_page_fraction = 0.25; break;
      case VmaType::kStack: v.zero_page_fraction = 0.50; break;
      case VmaType::kAnonShared:
      case VmaType::kAnonPrivate: v.zero_page_fraction = 0.35; break;
      default: v.zero_page_fraction = 0.0; break;
    }
    next_addr += page_align(length) + kPage;  // guard page
    image.vmas.push_back(v);
    remaining -= std::min(remaining, length);
  };

  // Executable text + data: two modest mappings.
  add(VmaType::kText, std::min<std::uint64_t>(remaining, rng.uniform(24, 48) * KiB), 0x5);
  add(VmaType::kData, std::min<std::uint64_t>(remaining, rng.uniform(16, 32) * KiB), 0x3);

  // Shared-library mappings: the population whose dump produces the
  // medium (1-16 KB piece) writes. Their total is capped at ~15% of the
  // image (Table I: the 1 K-64 K buckets carry ~13.7% of the data).
  const std::uint64_t lib_budget =
      std::min<std::uint64_t>(remaining * 15 / 100, 21 * MiB / 5);
  std::uint64_t lib_used = 0;
  while (lib_used + 16 * KiB <= lib_budget) {
    const std::uint64_t len =
        std::min<std::uint64_t>(rng.uniform(16, 48) * KiB, lib_budget - lib_used);
    add(VmaType::kLibrary, len, 0x5);
    lib_used += len;
  }

  // Stack: one 512 KB-1 MB region (Table I's 512K-1M bucket).
  add(VmaType::kStack, std::min<std::uint64_t>(remaining, rng.uniform(640, 1000) * KiB), 0x3);

  // A few anonymous regions in the 64K-512K buckets (communication
  // buffers, allocator arenas).
  const unsigned n_anon_shared = 4;
  for (unsigned i = 0; i < n_anon_shared && remaining > 0; ++i) {
    add(VmaType::kAnonShared, std::min<std::uint64_t>(remaining, rng.uniform(80, 240) * KiB), 0x3);
  }
  for (unsigned i = 0; i < 2 && remaining > 0; ++i) {
    add(VmaType::kAnonPrivate, std::min<std::uint64_t>(remaining, rng.uniform(280, 480) * KiB), 0x3);
  }

  // The heap absorbs everything left — the dominant >1 MB bucket. Split
  // into a handful of heap VMAs so very large images (class D: >100 MB)
  // still look like segmented heaps rather than one giant mapping.
  while (remaining > 0) {
    const std::uint64_t len = std::min<std::uint64_t>(remaining, rng.uniform(12, 40) * MiB);
    add(VmaType::kHeap, len, 0x3);
  }

  return image;
}

std::uint64_t generate_vma_payload(const Vma& vma, std::vector<std::byte>& out) {
  out.resize(vma.length);
  Rng rng(vma.content_seed);
  Rng zero_rng(vma.content_seed ^ 0x5E20F00DULL);
  std::size_t i = 0;
  // Fill 8 bytes at a time; tail byte-wise.
  for (; i + 8 <= out.size(); i += 8) {
    const std::uint64_t v = rng.next_u64();
    std::memcpy(out.data() + i, &v, 8);
  }
  for (; i < out.size(); ++i) out[i] = static_cast<std::byte>(rng.next_u64());
  // Zero the untouched pages (deterministic in the seed). Real zero
  // pages cluster — untouched tails of large allocations — so they are
  // laid down as contiguous runs of 16-128 pages, which is what makes
  // run-threshold elision (WriterOptions::min_skip_run) effective.
  if (vma.zero_page_fraction > 0.0 && out.size() >= kPage) {
    const std::size_t npages = (out.size() + kPage - 1) / kPage;
    const auto target = static_cast<std::size_t>(
        vma.zero_page_fraction * static_cast<double>(npages));
    std::size_t zeroed = 0;
    int attempts = 0;
    while (zeroed < target && attempts++ < 1000) {
      const std::size_t run = zero_rng.uniform(16, 128);
      const std::size_t start = zero_rng.uniform(0, npages - 1);
      for (std::size_t p = start; p < std::min(start + run, npages); ++p) {
        const std::size_t off = p * kPage;
        const std::size_t n = std::min<std::size_t>(kPage, out.size() - off);
        // Count only newly zeroed pages so the fraction converges.
        if (out[off] != std::byte{0} || n < kPage ||
            !std::all_of(out.begin() + static_cast<std::ptrdiff_t>(off),
                         out.begin() + static_cast<std::ptrdiff_t>(off + n),
                         [](std::byte b) { return b == std::byte{0}; })) {
          zeroed += 1;
        }
        std::memset(out.data() + off, 0, n);
      }
    }
  }
  return Crc64::of(out.data(), out.size());
}

}  // namespace crfs::blcr
