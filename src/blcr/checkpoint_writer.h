// CheckpointWriter: dumps a ProcessImage with BLCR's write pattern.
//
// BLCR "performs large number of inefficient and relatively small writes
// to save their snapshots" (paper §I): metadata fields go out as
// individual tiny write()s, and VMA payloads are emitted in pieces whose
// size depends on the mapping type. This module reproduces that pattern
// so any filesystem underneath (native or CRFS) sees the same stream the
// paper's profiling measured (§III Table I).
#pragma once

#include <functional>
#include <span>

#include "blcr/checkpoint_format.h"
#include "blcr/process_image.h"
#include "common/result.h"
#include "trace/write_recorder.h"

namespace crfs::blcr {

/// Destination of checkpoint bytes. Sequential: each write appends.
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  virtual Status write(std::span<const std::byte> data) = 0;

  /// Skips `bytes` forward without writing (leaves a hole that reads
  /// back as zeros). Sinks that cannot seek return false and the writer
  /// falls back to writing the zeros densely. Used by zero-page elision.
  virtual bool skip(std::uint64_t bytes) {
    (void)bytes;
    return false;
  }
};

/// Adapts any callable Status(span<const byte>) into a ByteSink.
class FnSink final : public ByteSink {
 public:
  explicit FnSink(std::function<Status(std::span<const std::byte>)> fn)
      : fn_(std::move(fn)) {}
  Status write(std::span<const std::byte> data) override { return fn_(data); }

 private:
  std::function<Status(std::span<const std::byte>)> fn_;
};

/// One planned write operation (size only) — what the DES replays.
struct PlannedWrite {
  std::uint64_t size = 0;
};

/// Writer options. Defaults reproduce BLCR's dense dump (the paper's
/// profiled mode).
struct WriterOptions {
  /// vmadump-style zero-page elision: runs of all-zero 4 KB pages are
  /// skipped (ByteSink::skip), leaving file holes that restore as
  /// zeros. Shrinks the transferred bytes by the image's zero fraction
  /// and turns the stream mostly-sequential-with-gaps — which CRFS's
  /// non-contiguous write path absorbs (see bench_ext_sparse).
  bool elide_zero_pages = false;

  /// Zero runs shorter than this are written densely rather than
  /// skipped. Every skip breaks stream contiguity (a partial chunk flush
  /// in CRFS), so skipping isolated 4 KB pages costs more aggregation
  /// than it saves bytes; only long runs are worth a hole.
  std::uint64_t min_skip_run = 64 * 1024;
};

class CheckpointWriter {
 public:
  /// Writes the full image to `sink`. If `recorder` is non-null, every
  /// write is timed (monotonic clock) and recorded for Table I / Fig 3
  /// profiling. Returns the CRC64 over all VMA payload bytes (zeros
  /// included, so dense and sparse images verify identically).
  static Result<std::uint64_t> write_image(const ProcessImage& image, ByteSink& sink,
                                           trace::WriteRecorder* recorder = nullptr,
                                           const WriterOptions& options = {});

  /// The exact sequence of write sizes write_image would issue, without
  /// materialising any payload. Deterministic in the image. Used by the
  /// DES to replay a rank's checkpoint stream in virtual time.
  static std::vector<PlannedWrite> plan(const ProcessImage& image);

 private:
  /// Splits one VMA payload into BLCR-like piece sizes (deterministic in
  /// the VMA seed): libraries/text/data in 1-16 KB pieces, stack and
  /// anonymous regions whole, heap in 1.5-6 MB pieces with a 512K-1M tail
  /// mix.
  static std::vector<std::uint64_t> payload_pieces(const Vma& vma);

  friend class CheckpointWriterTestPeer;
};

}  // namespace crfs::blcr
