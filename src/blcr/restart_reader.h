// RestartReader: the restart half of the checkpoint cycle (paper §V-F).
//
// "During restart, BLCR library reads from checkpoint files and restores
// the in-memory context for every process." The reader parses the image
// format, reconstructs every VMA, and verifies per-VMA and whole-image
// CRCs — which is also how the integration tests prove that data passing
// through CRFS aggregation is byte-identical.
#pragma once

#include <functional>
#include <span>

#include "blcr/checkpoint_format.h"
#include "blcr/process_image.h"
#include "common/result.h"

namespace crfs::blcr {

/// Source of checkpoint bytes. Sequential, like the writer's sink.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  /// Reads exactly data.size() bytes unless EOF truncates; returns bytes read.
  virtual Result<std::size_t> read(std::span<std::byte> data) = 0;
};

/// Adapts any callable Result<size_t>(span<byte>) into a ByteSource.
class FnSource final : public ByteSource {
 public:
  explicit FnSource(std::function<Result<std::size_t>(std::span<std::byte>)> fn)
      : fn_(std::move(fn)) {}
  Result<std::size_t> read(std::span<std::byte> data) override { return fn_(data); }

 private:
  std::function<Result<std::size_t>(std::span<std::byte>)> fn_;
};

/// What a successful restart recovered.
struct RestartSummary {
  std::uint32_t pid = 0;
  std::uint32_t vma_count = 0;
  std::uint64_t image_bytes = 0;    ///< payload bytes restored
  std::uint64_t payload_crc = 0;    ///< CRC over all payloads, matches trailer
  std::vector<Vma> vmas;            ///< recovered VMA descriptors
};

class RestartReader {
 public:
  /// Parses and verifies a full checkpoint image. Fails with EILSEQ-style
  /// errors on bad magic, truncated stream, or CRC mismatch.
  static Result<RestartSummary> read_image(ByteSource& source);
};

}  // namespace crfs::blcr
