#include "blcr/checkpoint_writer.h"

#include <array>
#include <cstring>

#include "common/checksum.h"
#include "common/units.h"
#include "common/wall_clock.h"

namespace crfs::blcr {
namespace {

// Timed write helper: forwards to the sink and records (size, duration).
class TimedSink {
 public:
  TimedSink(ByteSink& sink, trace::WriteRecorder* recorder)
      : sink_(sink), recorder_(recorder), epoch_(monotonic_seconds()) {}

  Status write(const void* data, std::size_t size) {
    const double t0 = monotonic_seconds();
    const Status st = sink_.write({static_cast<const std::byte*>(data), size});
    if (recorder_ != nullptr) {
      const double t1 = monotonic_seconds();
      recorder_->record(size, t0 - epoch_, t1 - t0);
    }
    return st;
  }

  template <typename T>
  Status write_pod(const T& value) {
    return write(&value, sizeof(T));
  }

 private:
  ByteSink& sink_;
  trace::WriteRecorder* recorder_;
  double epoch_;
};

bool is_all_zero(const std::byte* data, std::uint64_t size) {
  for (std::uint64_t i = 0; i < size; ++i) {
    if (data[i] != std::byte{0}) return false;
  }
  return true;
}

}  // namespace

std::vector<std::uint64_t> CheckpointWriter::payload_pieces(const Vma& vma) {
  std::vector<std::uint64_t> pieces;
  Rng rng(vma.content_seed ^ 0x9e3779b97f4a7c15ULL);
  std::uint64_t remaining = vma.length;

  switch (vma.type) {
    case VmaType::kText:
    case VmaType::kData:
    case VmaType::kLibrary: {
      // Library-ish mappings dump in small page runs: mostly 4-16 KB with
      // a 1-4 KB minority — Table I's dominant medium-op buckets.
      while (remaining > 0) {
        std::uint64_t piece;
        const double roll = rng.next_double();
        if (roll < 0.80) {
          piece = rng.uniform(4 * KiB, 16 * KiB - 1);
        } else if (roll < 0.98) {
          piece = rng.uniform(1 * KiB, 4 * KiB - 1);
        } else {
          piece = rng.uniform(16 * KiB, 48 * KiB);
        }
        piece = std::min(piece, remaining);
        pieces.push_back(piece);
        remaining -= piece;
      }
      break;
    }
    case VmaType::kStack:
    case VmaType::kAnonShared:
    case VmaType::kAnonPrivate: {
      // Dumped as a single writev of the whole mapping.
      pieces.push_back(remaining);
      remaining = 0;
      break;
    }
    case VmaType::kHeap: {
      // Large contiguous runs; mostly multi-megabyte with a 512K-1M tail
      // mix (Table I: >1M carries ~61% of data, 512K-1M ~18%).
      while (remaining > 0) {
        std::uint64_t piece;
        const double roll = rng.next_double();
        if (roll < 0.40) {
          piece = rng.uniform(3 * MiB / 2, 6 * MiB);
        } else if (roll < 0.89) {
          piece = rng.uniform(512 * KiB, 1 * MiB - 1);
        } else {
          piece = rng.uniform(256 * KiB, 512 * KiB - 1);
        }
        piece = std::min(piece, remaining);
        pieces.push_back(piece);
        remaining -= piece;
      }
      break;
    }
  }
  return pieces;
}

Result<std::uint64_t> CheckpointWriter::write_image(const ProcessImage& image,
                                                    ByteSink& sink,
                                                    trace::WriteRecorder* recorder,
                                                    const WriterOptions& options) {
  TimedSink out(sink, recorder);

  // ---- file header: each field is its own tiny write (BLCR style) ----
  CRFS_RETURN_IF_ERROR(out.write(kMagic, sizeof(kMagic)));
  CRFS_RETURN_IF_ERROR(out.write_pod(kFormatVersion));
  CRFS_RETURN_IF_ERROR(out.write_pod(image.pid));
  CRFS_RETURN_IF_ERROR(out.write_pod(static_cast<std::uint32_t>(image.vmas.size())));
  CRFS_RETURN_IF_ERROR(out.write_pod(image.content_bytes()));

  // ---- context: registers + fpu/siginfo blobs, CRC-protected ----------
  Rng ctx_rng(image.pid + 0xC0DEULL);
  Crc64 ctx_crc;
  for (unsigned i = 0; i < kContextRegisters; ++i) {
    const std::uint64_t reg = ctx_rng.next_u64();
    ctx_crc.update(&reg, sizeof(reg));
    CRFS_RETURN_IF_ERROR(out.write_pod(reg));
  }
  std::array<std::byte, kContextBlobBytes> blob{};
  for (auto& b : blob) b = static_cast<std::byte>(ctx_rng.next_u64());
  ctx_crc.update(blob.data(), blob.size());
  ctx_crc.update(blob.data(), blob.size());
  CRFS_RETURN_IF_ERROR(out.write(blob.data(), blob.size()));
  CRFS_RETURN_IF_ERROR(out.write(blob.data(), blob.size()));
  CRFS_RETURN_IF_ERROR(out.write_pod(ctx_crc.digest()));

  // ---- VMAs -----------------------------------------------------------
  Crc64 total_crc;
  std::vector<std::byte> payload;
  for (const auto& vma : image.vmas) {
    const std::uint64_t vma_crc = generate_vma_payload(vma, payload);
    total_crc.update(payload.data(), payload.size());

    CRFS_RETURN_IF_ERROR(out.write_pod(vma.start));
    CRFS_RETURN_IF_ERROR(out.write_pod(vma.length));
    const std::uint64_t prot_type =
        (static_cast<std::uint64_t>(vma.prot) << 32) | static_cast<std::uint32_t>(vma.type);
    CRFS_RETURN_IF_ERROR(out.write_pod(prot_type));
    CRFS_RETURN_IF_ERROR(out.write_pod(vma.content_seed));
    CRFS_RETURN_IF_ERROR(out.write_pod(vma_crc));

    std::uint64_t off = 0;
    for (const std::uint64_t piece : payload_pieces(vma)) {
      if (!options.elide_zero_pages) {
        CRFS_RETURN_IF_ERROR(out.write(payload.data() + off, piece));
      } else {
        // Scan the piece in 4 KB pages; write non-zero runs, skip zero
        // runs. A trailing zero run is written densely if this is the
        // image's final data (nothing after it would extend the file) —
        // the trailer that follows every image makes that moot here.
        std::uint64_t pos = off;
        const std::uint64_t piece_end = off + piece;
        while (pos < piece_end) {
          // Find the end of the current run (zero or non-zero).
          const std::uint64_t page = std::min<std::uint64_t>(4096, piece_end - pos);
          const bool zero = is_all_zero(payload.data() + pos, page);
          std::uint64_t run_end = pos + page;
          while (run_end < piece_end) {
            const std::uint64_t next = std::min<std::uint64_t>(4096, piece_end - run_end);
            if (is_all_zero(payload.data() + run_end, next) != zero) break;
            run_end += next;
          }
          if (zero && run_end - pos >= options.min_skip_run) {
            if (!sink.skip(run_end - pos)) {
              CRFS_RETURN_IF_ERROR(out.write(payload.data() + pos, run_end - pos));
            }
          } else {
            CRFS_RETURN_IF_ERROR(out.write(payload.data() + pos, run_end - pos));
          }
          pos = run_end;
        }
      }
      off += piece;
    }
  }

  // ---- trailer ----------------------------------------------------------
  const std::uint64_t digest = total_crc.digest();
  CRFS_RETURN_IF_ERROR(out.write_pod(digest));
  CRFS_RETURN_IF_ERROR(out.write(kEndMagic, sizeof(kEndMagic)));
  return digest;
}

std::vector<PlannedWrite> CheckpointWriter::plan(const ProcessImage& image) {
  std::vector<PlannedWrite> ops;
  ops.push_back({sizeof(kMagic)});
  ops.push_back({sizeof(kFormatVersion)});
  ops.push_back({sizeof(image.pid)});
  ops.push_back({sizeof(std::uint32_t)});
  ops.push_back({sizeof(std::uint64_t)});
  for (unsigned i = 0; i < kContextRegisters; ++i) ops.push_back({8});
  ops.push_back({kContextBlobBytes});
  ops.push_back({kContextBlobBytes});
  ops.push_back({8});  // context crc
  for (const auto& vma : image.vmas) {
    for (unsigned i = 0; i < kVmaHeaderWrites; ++i) ops.push_back({8});
    for (const std::uint64_t piece : payload_pieces(vma)) ops.push_back({piece});
  }
  ops.push_back({8});
  ops.push_back({sizeof(kEndMagic)});
  return ops;
}

}  // namespace crfs::blcr
