// On-disk checkpoint image format shared by CheckpointWriter and
// RestartReader.
//
// Layout (all integers little-endian, written as the *separate small
// writes* BLCR issues — that write pattern, not the format itself, is
// what the paper profiles):
//
//   file header    magic(8) version(4) pid(4) vma_count(4) image_bytes(8)
//   context        kContextRegisters x 8-byte register dumps,
//                  2 x kContextBlobBytes blobs (fpu state, siginfo),
//                  context_crc(8) over the registers + blobs
//   per VMA        start(8) length(8) prot+type(8) seed(8) crc(8)
//                  payload: `length` bytes, emitted in type-dependent
//                  pieces (see CheckpointWriter)
//   trailer        total_payload_crc(8) end-magic(4)
#pragma once

#include <cstdint>

namespace crfs::blcr {

inline constexpr char kMagic[8] = {'C', 'R', 'F', 'S', 'B', 'L', 'C', 'R'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr char kEndMagic[4] = {'E', 'N', 'D', '!'};

/// Number of 8-byte pseudo-register writes in the context section. Chosen
/// with the per-VMA header writes to land the 0-64 B share of operations
/// near Table I's 50.9%.
inline constexpr unsigned kContextRegisters = 32;

/// Size of each of the two context blobs (fpu area, signal state).
inline constexpr unsigned kContextBlobBytes = 128;

/// Writes per VMA header (start, length, prot+type, seed, crc).
inline constexpr unsigned kVmaHeaderWrites = 5;

}  // namespace crfs::blcr
