// Ready-made ByteSink / ByteSource adapters binding the checkpoint engine
// to CRFS files and raw backends.
#pragma once

#include "backend/backend_fs.h"
#include "blcr/checkpoint_writer.h"
#include "blcr/restart_reader.h"
#include "crfs/file.h"

namespace crfs::blcr {

/// Sink writing sequentially through a crfs::File (i.e. via FUSE shim ->
/// CRFS -> backend). This is the "checkpoint through CRFS" path.
class CrfsFileSink final : public ByteSink {
 public:
  explicit CrfsFileSink(File& file) : file_(file) {}
  Status write(std::span<const std::byte> data) override { return file_.write(data); }
  bool skip(std::uint64_t bytes) override {
    file_.seek(file_.tell() + bytes);
    return true;
  }

 private:
  File& file_;
};

/// Source reading sequentially through a crfs::File.
class CrfsFileSource final : public ByteSource {
 public:
  explicit CrfsFileSource(File& file) : file_(file) {}
  Result<std::size_t> read(std::span<std::byte> data) override { return file_.read(data); }

 private:
  File& file_;
};

/// Sink appending directly to a backend file (the "native filesystem"
/// baseline: no CRFS in the path).
class BackendSink final : public ByteSink {
 public:
  BackendSink(BackendFs& backend, BackendFile file) : backend_(backend), file_(file) {}

  Status write(std::span<const std::byte> data) override {
    const Status st = backend_.pwrite(file_, data, offset_);
    if (st.ok()) offset_ += data.size();
    return st;
  }
  bool skip(std::uint64_t bytes) override {
    offset_ += bytes;
    return true;
  }

  std::uint64_t offset() const { return offset_; }

 private:
  BackendFs& backend_;
  BackendFile file_;
  std::uint64_t offset_ = 0;
};

/// Source reading directly from a backend file.
class BackendSource final : public ByteSource {
 public:
  BackendSource(BackendFs& backend, BackendFile file) : backend_(backend), file_(file) {}

  Result<std::size_t> read(std::span<std::byte> data) override {
    auto r = backend_.pread(file_, data, offset_);
    if (r.ok()) offset_ += r.value();
    return r;
  }

 private:
  BackendFs& backend_;
  BackendFile file_;
  std::uint64_t offset_ = 0;
};

}  // namespace crfs::blcr
