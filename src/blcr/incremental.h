// Incremental (delta) checkpoints.
//
// The paper's reference [10] (Plank et al., memory exclusion) and its
// periodic-checkpoint setting motivate the classic optimization the
// paper leaves on the table: between epochs most VMAs of a process do
// not change, so epoch N+1 need only carry the VMAs whose content
// differs from epoch N, referencing the rest by CRC.
//
// Delta image format (v1):
//   header   delta-magic(8) version(4) pid(4) vma_count(4) image_bytes(8)
//   context  same as the full format (registers, blobs, context crc)
//   per VMA  tag(4):
//              kChanged   -> full-format VMA record + payload pieces
//              kUnchanged -> start(8) length(8) payload_crc(8) reference
//   trailer  full-image payload crc(8) + end magic
//
// Restore composes the delta over its parent image: every reference is
// checked against the parent's actual per-VMA CRC, and the whole-image
// CRC in the trailer covers the COMPOSED image, so a wrong or corrupt
// parent cannot restore silently.
#pragma once

#include <map>

#include "blcr/checkpoint_writer.h"
#include "blcr/restart_reader.h"

namespace crfs::blcr {

inline constexpr char kDeltaMagic[8] = {'C', 'R', 'F', 'S', 'D', 'E', 'L', 'T'};
inline constexpr std::uint32_t kDeltaVersion = 1;

/// Per-VMA identity used for change detection: (start, length, crc).
struct VmaDigest {
  std::uint64_t start = 0;
  std::uint64_t length = 0;
  std::uint64_t payload_crc = 0;
};
using ImageDigest = std::vector<VmaDigest>;

/// Computes an image's digest (generates each VMA payload once).
ImageDigest digest_image(const ProcessImage& image);

/// A fully materialised image: per-VMA payloads keyed by start address.
/// (The payload map is held in memory; callers stream rank-sized images,
/// not whole jobs.)
struct MaterializedImage {
  std::uint32_t pid = 0;
  std::uint64_t payload_crc = 0;
  std::vector<Vma> vmas;
  std::map<std::uint64_t, std::vector<std::byte>> payloads;  // by vma.start
};

/// Reads a FULL (non-delta) image, retaining payloads.
Result<MaterializedImage> read_image_payloads(ByteSource& source);

/// Statistics of one delta write.
struct DeltaStats {
  std::uint32_t changed_vmas = 0;
  std::uint32_t unchanged_vmas = 0;
  std::uint64_t payload_bytes_written = 0;  ///< bytes of changed payloads
  std::uint64_t payload_bytes_referenced = 0;
  std::uint64_t full_image_crc = 0;         ///< CRC of the composed image
};

/// Writes `image` as a delta against `parent`: VMAs whose
/// (start, length, crc) appear in the parent digest become references.
/// Returns the delta statistics (including the composed-image CRC).
Result<DeltaStats> write_delta_image(const ProcessImage& image, const ImageDigest& parent,
                                     ByteSink& sink, const WriterOptions& options = {});

/// Restores a delta by composing it over its materialised parent.
/// Verifies every reference against the parent's actual VMA CRC and the
/// composed image against the delta trailer.
Result<MaterializedImage> read_delta_image(ByteSource& delta,
                                           const MaterializedImage& parent);

/// Derives the change-detection digest from a materialised image (e.g.
/// the restored parent), for chaining delta epochs.
ImageDigest digest_of(const MaterializedImage& image);

/// Helper for tests and demos: a copy of `image` in which roughly
/// `change_fraction` of the VMAs have new content (fresh content seeds),
/// deterministic in `seed`. Models an application making progress
/// between checkpoint epochs.
ProcessImage mutate_image(const ProcessImage& image, double change_fraction,
                          std::uint64_t seed);

}  // namespace crfs::blcr
