// ProcessImage: synthetic process memory map for checkpointing.
//
// The paper checkpoints MPI ranks with BLCR, which walks the process VMA
// list and dumps each mapping to the per-process image file. We have no
// BLCR kernel module, so this module synthesizes a process image whose
// *write pattern* matches the paper's measured profile (§III Table I):
// a process is a collection of VMAs — many small library/text/data
// mappings, a dominant heap, a stack, and a few anonymous regions — and
// the distribution of segment sizes is what produces Table I's mix of
// ~51% tiny metadata writes, ~37% medium (4-16 KB) data writes carrying
// only 13% of bytes, and <1.5% huge writes carrying ~80% of bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace crfs::blcr {

enum class VmaType : std::uint32_t {
  kText = 0,
  kData = 1,
  kLibrary = 2,
  kHeap = 3,
  kStack = 4,
  kAnonShared = 5,
  kAnonPrivate = 6,
};

const char* vma_type_name(VmaType t);

/// One virtual memory area of the synthetic process.
struct Vma {
  std::uint64_t start = 0;        ///< virtual address (synthetic, page aligned)
  std::uint64_t length = 0;       ///< bytes of content to checkpoint
  std::uint32_t prot = 0;         ///< PROT_* style bits (for format realism)
  VmaType type = VmaType::kData;
  std::uint64_t content_seed = 0; ///< deterministic payload generator seed
  /// Fraction of 4 KB pages that are all-zero. Real process images are
  /// full of them (untouched heap/stack pages) — which is why BLCR's
  /// vmadump elides zero pages, reproduced by CheckpointWriter's
  /// elide_zero_pages option.
  double zero_page_fraction = 0.0;
};

/// A synthetic process to checkpoint.
struct ProcessImage {
  std::uint32_t pid = 0;
  std::vector<Vma> vmas;

  /// Total payload bytes across all VMAs.
  std::uint64_t content_bytes() const;

  /// Builds an image totalling ~`target_bytes` of content:
  ///   * a fixed population of library/text/data mappings (16-48 KB each,
  ///     capped at ~13% of the image) — the source of the medium writes;
  ///   * one stack (~768 KB) and a few anonymous regions — the 64 KB-1 MB
  ///     buckets;
  ///   * the heap takes every remaining byte — the >1 MB bucket.
  /// Deterministic in (pid, target_bytes, seed).
  static ProcessImage synthesize(std::uint32_t pid, std::uint64_t target_bytes,
                                 std::uint64_t seed);
};

/// Fills `out` with the VMA's deterministic payload and returns its CRC64.
/// Content depends only on content_seed, so writer and verifier agree.
std::uint64_t generate_vma_payload(const Vma& vma, std::vector<std::byte>& out);

}  // namespace crfs::blcr
