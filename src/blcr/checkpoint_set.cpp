#include "blcr/checkpoint_set.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdio>

namespace crfs::blcr {
namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestMagic[] = "crfs-checkpoint-manifest v1";

/// Parses "epoch_000123" -> 123; nullopt for anything else.
std::optional<unsigned> parse_epoch_dir(const std::string& name) {
  constexpr std::string_view prefix = "epoch_";
  if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
    return std::nullopt;
  }
  unsigned value = 0;
  const char* begin = name.data() + prefix.size();
  const char* end = name.data() + name.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

bool is_staging_dir(const std::string& name) {
  return name.starts_with(".epoch_") && name.ends_with(".tmp");
}

}  // namespace

// ------------------------------------------------------------ EpochWriter

EpochWriter::EpochWriter(CheckpointSet& set, unsigned epoch, unsigned ranks,
                         std::string staging)
    : set_(&set), epoch_(epoch), ranks_(ranks), staging_(std::move(staging)) {
  recorded_.resize(ranks_);
}

EpochWriter::~EpochWriter() {
  if (set_ != nullptr && !finished_) (void)abort();
}

Result<File> EpochWriter::open_rank(unsigned rank) {
  if (rank >= ranks_) return Error{EINVAL, "rank out of range"};
  return File::open(*set_->shim_, set_->rank_file(staging_, rank),
                    {.create = true, .truncate = true, .write = true});
}

void EpochWriter::record(unsigned rank, std::uint64_t bytes, std::uint64_t payload_crc) {
  if (rank < ranks_) recorded_[rank] = EpochInfo::Rank{rank, bytes, payload_crc};
}

Status EpochWriter::commit() {
  if (finished_) return Error{EINVAL, "epoch already finished"};
  for (unsigned r = 0; r < ranks_; ++r) {
    if (!recorded_[r].has_value()) {
      return Error{EINVAL, "rank " + std::to_string(r) + " not recorded; cannot commit"};
    }
  }

  // Manifest written last: its presence marks the rank files complete.
  {
    auto manifest = File::open(*set_->shim_, staging_ + "/" + kManifestName,
                               {.create = true, .truncate = true, .write = true});
    if (!manifest.ok()) return manifest.error();
    std::string text = std::string(kManifestMagic) + "\n";
    text += "epoch " + std::to_string(epoch_) + "\n";
    text += "ranks " + std::to_string(ranks_) + "\n";
    char line[128];
    for (const auto& r : recorded_) {
      std::snprintf(line, sizeof(line), "rank %u bytes %llu crc %016llx\n", r->rank,
                    static_cast<unsigned long long>(r->bytes),
                    static_cast<unsigned long long>(r->payload_crc));
      text += line;
    }
    CRFS_RETURN_IF_ERROR(manifest.value().write(text.data(), text.size()));
    CRFS_RETURN_IF_ERROR(manifest.value().fsync());
    CRFS_RETURN_IF_ERROR(manifest.value().close());
  }

  // Atomic publish.
  CRFS_RETURN_IF_ERROR(set_->shim_->fs().rename(
      staging_, set_->base_ + "/" + CheckpointSet::epoch_dir_name(epoch_)));
  finished_ = true;
  return {};
}

Status EpochWriter::abort() {
  if (finished_) return {};
  finished_ = true;
  return set_->remove_tree(staging_);
}

// ---------------------------------------------------------- CheckpointSet

std::string CheckpointSet::epoch_dir_name(unsigned epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "epoch_%06u", epoch);
  return buf;
}

std::string CheckpointSet::staging_dir_name(unsigned epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), ".epoch_%06u.tmp", epoch);
  return buf;
}

std::string CheckpointSet::rank_file(const std::string& dir, unsigned rank) const {
  return dir + "/rank_" + std::to_string(rank) + ".ckpt";
}

Result<CheckpointSet> CheckpointSet::open(FuseShim& shim, std::string base_dir) {
  CheckpointSet set(shim, std::move(base_dir));
  auto st = shim.fs().getattr(set.base_);
  if (!st.ok()) {
    CRFS_RETURN_IF_ERROR(shim.fs().mkdir(set.base_));
  } else if (!st.value().is_dir) {
    return Error{ENOTDIR, set.base_ + " exists and is not a directory"};
  }
  return set;
}

Result<std::vector<unsigned>> CheckpointSet::epochs() {
  auto names = shim_->fs().list_dir(base_);
  if (!names.ok()) return names.error();
  std::vector<unsigned> out;
  for (const auto& name : names.value()) {
    if (auto epoch = parse_epoch_dir(name)) out.push_back(*epoch);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::optional<unsigned>> CheckpointSet::latest() {
  auto all = epochs();
  if (!all.ok()) return all.error();
  if (all.value().empty()) return std::optional<unsigned>{};
  return std::optional<unsigned>{all.value().back()};
}

Result<EpochWriter> CheckpointSet::begin_epoch(unsigned ranks) {
  if (ranks == 0) return Error{EINVAL, "epoch needs at least one rank"};
  unsigned next = 0;
  {
    auto names = shim_->fs().list_dir(base_);
    if (!names.ok()) return names.error();
    for (const auto& name : names.value()) {
      if (auto epoch = parse_epoch_dir(name)) next = std::max(next, *epoch + 1);
      if (is_staging_dir(name)) {
        // ".epoch_NNNNNN.tmp"
        const std::string core = name.substr(1, name.size() - 5);
        if (auto epoch = parse_epoch_dir(core)) next = std::max(next, *epoch + 1);
      }
    }
  }
  const std::string staging = base_ + "/" + staging_dir_name(next);
  CRFS_RETURN_IF_ERROR(shim_->fs().mkdir(staging));
  return EpochWriter(*this, next, ranks, staging);
}

Result<EpochInfo> CheckpointSet::inspect(unsigned epoch) {
  const std::string dir = base_ + "/" + epoch_dir_name(epoch);
  auto manifest = File::open(*shim_, dir + "/" + kManifestName,
                             {.create = false, .truncate = false, .write = false});
  if (!manifest.ok()) return manifest.error();

  std::string text;
  std::vector<std::byte> buf(4096);
  for (;;) {
    auto n = manifest.value().read(buf);
    if (!n.ok()) return n.error();
    if (n.value() == 0) break;
    text.append(reinterpret_cast<const char*>(buf.data()), n.value());
  }

  EpochInfo info;
  std::size_t pos = 0;
  auto next_line = [&]() -> std::optional<std::string_view> {
    if (pos >= text.size()) return std::nullopt;
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string_view line(text.data() + pos, nl - pos);
    pos = nl + 1;
    return line;
  };

  auto first = next_line();
  if (!first || *first != kManifestMagic) {
    return Error{EILSEQ, "bad manifest magic in epoch " + std::to_string(epoch)};
  }
  while (auto line = next_line()) {
    unsigned u0 = 0;
    unsigned long long u1 = 0, u2 = 0;
    char hex[32];
    if (std::sscanf(std::string(*line).c_str(), "epoch %u", &u0) == 1) {
      info.epoch = u0;
    } else if (std::sscanf(std::string(*line).c_str(), "ranks %u", &u0) == 1) {
      info.ranks = u0;
    } else if (std::sscanf(std::string(*line).c_str(), "rank %u bytes %llu crc %31s", &u0,
                           &u1, hex) == 3) {
      u2 = std::strtoull(hex, nullptr, 16);
      info.rank_files.push_back({u0, u1, u2});
    } else if (!line->empty()) {
      return Error{EILSEQ, "bad manifest line: " + std::string(*line)};
    }
  }
  if (info.rank_files.size() != info.ranks) {
    return Error{EILSEQ, "manifest rank count mismatch in epoch " + std::to_string(epoch)};
  }
  return info;
}

Result<File> CheckpointSet::open_rank_for_restart(unsigned epoch, unsigned rank) {
  const std::string dir = base_ + "/" + epoch_dir_name(epoch);
  return File::open(*shim_, rank_file(dir, rank),
                    {.create = false, .truncate = false, .write = false});
}

Status CheckpointSet::verify(unsigned epoch) {
  auto info = inspect(epoch);
  if (!info.ok()) return info.error();
  for (const auto& rank : info.value().rank_files) {
    auto file = open_rank_for_restart(epoch, rank.rank);
    if (!file.ok()) return file.error();
    CrfsFileSource source(file.value());
    auto restored = RestartReader::read_image(source);
    if (!restored.ok()) return restored.error();
    if (restored.value().payload_crc != rank.payload_crc) {
      return Error{EILSEQ, "epoch " + std::to_string(epoch) + " rank " +
                               std::to_string(rank.rank) + ": CRC mismatch"};
    }
  }
  return {};
}

Status CheckpointSet::remove_tree(const std::string& dir) {
  auto names = shim_->fs().list_dir(dir);
  if (!names.ok()) return names.error();
  for (const auto& name : names.value()) {
    const std::string path = dir + "/" + name;
    auto st = shim_->fs().getattr(path);
    if (st.ok() && st.value().is_dir) {
      CRFS_RETURN_IF_ERROR(remove_tree(path));
    } else {
      CRFS_RETURN_IF_ERROR(shim_->fs().unlink(path));
    }
  }
  return shim_->fs().rmdir(dir);
}

Result<unsigned> CheckpointSet::prune(unsigned keep) {
  auto all = epochs();
  if (!all.ok()) return all.error();
  unsigned removed = 0;
  // Stale staging directories are always garbage.
  auto names = shim_->fs().list_dir(base_);
  if (!names.ok()) return names.error();
  for (const auto& name : names.value()) {
    if (is_staging_dir(name)) {
      CRFS_RETURN_IF_ERROR(remove_tree(base_ + "/" + name));
    }
  }
  if (all.value().size() > keep) {
    const std::size_t excess = all.value().size() - keep;
    for (std::size_t i = 0; i < excess; ++i) {
      CRFS_RETURN_IF_ERROR(remove_tree(base_ + "/" + epoch_dir_name(all.value()[i])));
      removed += 1;
    }
  }
  return removed;
}

}  // namespace crfs::blcr
