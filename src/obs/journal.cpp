#include "obs/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>

#include "common/checksum.h"
#include "obs/sampler.h"
#include "obs/slo.h"

namespace crfs::obs {
namespace {

std::string segment_name(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%08llu.crfsj",
                static_cast<unsigned long long>(index));
  return buf;
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

// mkdir -p for the journal directory (usually `<mount>/.crfs/journal`, two
// levels below an existing root).
bool make_dirs(const std::string& path) {
  std::string partial;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    std::size_t slash = path.find('/', pos);
    if (slash == std::string::npos) slash = path.size();
    partial = path.substr(0, slash);
    pos = slash + 1;
    if (partial.empty()) continue;
    if (::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST) return false;
    if (slash == path.size()) break;
  }
  return true;
}

}  // namespace

void append_frame(std::string& out, FrameType type, std::uint64_t ts_ns,
                  std::string_view payload) {
  put_u32(out, kJournalMagic);
  put_u16(out, kJournalVersion);
  put_u16(out, static_cast<std::uint16_t>(type));
  put_u64(out, ts_ns);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, Crc32::of(payload.data(), payload.size()));
  out.append(payload.data(), payload.size());
}

Journal::Journal(JournalOptions opts, Registry* registry)
    : opts_(std::move(opts)), fsync_ms_(opts_.fsync_ms) {
  if (registry != nullptr) {
    c_appends_ = &registry->counter("crfs.journal.appends");
    c_bytes_ = &registry->counter("crfs.journal.bytes");
    c_segments_ = &registry->counter("crfs.journal.segments");
    c_fsyncs_ = &registry->counter("crfs.journal.fsyncs");
    c_errors_ = &registry->counter("crfs.journal.errors");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!make_dirs(opts_.dir)) {
    error_ = "mkdir failed: " + std::string(std::strerror(errno));
    return;
  }
  // Resume past a previous incarnation's segments: new segments get fresh
  // indices, and the survivors count against the retention bound.
  std::uint64_t max_index = 0;
  if (DIR* d = ::opendir(opts_.dir.c_str())) {
    while (const dirent* e = ::readdir(d)) {
      unsigned long long idx = 0;
      if (std::sscanf(e->d_name, "seg-%08llu.crfsj", &idx) == 1) {
        struct stat st {};
        const std::string path = opts_.dir + "/" + e->d_name;
        if (::stat(path.c_str(), &st) == 0) {
          live_.emplace_back(idx, static_cast<std::size_t>(st.st_size));
          max_index = std::max<std::uint64_t>(max_index, idx + 1);
        }
      }
    }
    ::closedir(d);
    std::sort(live_.begin(), live_.end());
  }
  seg_index_ = max_index;
  ok_ = open_segment_locked();
}

Journal::~Journal() { stop(); }

bool Journal::open_segment_locked() {
  const std::string path = opts_.dir + "/" + segment_name(seg_index_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    error_ = "open " + path + ": " + std::string(std::strerror(errno));
    return false;
  }
  seg_size_ = 0;
  live_.emplace_back(seg_index_, 0);
  segments_.fetch_add(1, std::memory_order_relaxed);
  if (c_segments_ != nullptr) c_segments_->add(1);
  // Every segment opens with the meta frame so retention (which deletes
  // whole old segments) can never strip the mount identity from the rest.
  if (!meta_json_.empty()) {
    std::string frame;
    append_frame(frame, FrameType::kMeta, meta_ts_ns_, meta_json_);
    if (!write_all_locked(frame.data(), frame.size())) return false;
  }
  return true;
}

bool Journal::write_all_locked(const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  std::size_t left = size;
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (c_errors_ != nullptr) c_errors_->add(1);
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  seg_size_ += size;
  if (!live_.empty()) live_.back().second = seg_size_;
  bytes_.fetch_add(size, std::memory_order_relaxed);
  if (c_bytes_ != nullptr) c_bytes_->add(size);
  return true;
}

void Journal::set_meta(std::string meta_json, std::uint64_t ts_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  meta_json_ = std::move(meta_json);
  meta_ts_ns_ = ts_ns;
  if (!ok_) return;
  std::string frame;
  append_frame(frame, FrameType::kMeta, ts_ns, meta_json_);
  pending_ += frame;
}

void Journal::append(FrameType type, std::uint64_t ts_ns, std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ok_) return;
  append_frame(pending_, type, ts_ns, payload);
  appends_.fetch_add(1, std::memory_order_relaxed);
  if (c_appends_ != nullptr) c_appends_->add(1);
}

void Journal::rotate_locked() {
  // A finished segment is sealed durable regardless of the cadence knob —
  // retention may be about to delete the only other copy of its range.
  ::fsync(fd_);
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  if (c_fsyncs_ != nullptr) c_fsyncs_->add(1);
  ::close(fd_);
  fd_ = -1;
  ++seg_index_;
  if (!open_segment_locked()) ok_ = false;
  enforce_retention_locked();
}

void Journal::enforce_retention_locked() {
  std::size_t total = 0;
  for (const auto& [idx, size] : live_) total += size;
  // Never unlink the current segment (live_.back()).
  while (live_.size() > 1 && total > opts_.max_bytes) {
    const auto [idx, size] = live_.front();
    const std::string path = opts_.dir + "/" + segment_name(idx);
    ::unlink(path.c_str());
    total -= size;
    live_.pop_front();
  }
}

void Journal::flush(std::uint64_t now_ns, bool force_fsync) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ok_ || fd_ < 0) return;
  if (!pending_.empty()) {
    std::string out;
    out.swap(pending_);
    if (seg_size_ >= opts_.segment_bytes) rotate_locked();
    if (!ok_ || fd_ < 0) return;
    if (!write_all_locked(out.data(), out.size())) return;
  }
  const unsigned cadence = fsync_ms();
  const bool cadence_due =
      cadence != 0 && now_ns - last_fsync_ns_ >= static_cast<std::uint64_t>(cadence) * 1'000'000;
  if (force_fsync || cadence_due) {
    ::fsync(fd_);
    last_fsync_ns_ = now_ns;
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    if (c_fsyncs_ != nullptr) c_fsyncs_->add(1);
  }
}

void Journal::start() {
  if (thread_.joinable() || !ok_) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { thread_main(); });
}

void Journal::thread_main() {
  const auto period = std::chrono::milliseconds(opts_.flush_ms == 0 ? 1 : opts_.flush_ms);
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (!stop_requested_) {
    wake_cv_.wait_for(lock, period, [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    tick(now_ns());
    lock.lock();
  }
}

void Journal::stop() {
  if (thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      stop_requested_ = true;
    }
    wake_cv_.notify_all();
    thread_.join();
  }
  flush(now_ns(), /*force_fsync=*/true);
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ok_ = false;
}

std::string Journal::to_json() const {
  std::string dir_escaped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (char c : opts_.dir) {
      if (c == '"' || c == '\\') dir_escaped.push_back('\\');
      dir_escaped.push_back(c);
    }
  }
  std::string s = "{\"enabled\":true,\"dir\":\"" + dir_escaped + "\"";
  s += ",\"segment_bytes\":" + std::to_string(opts_.segment_bytes);
  s += ",\"max_bytes\":" + std::to_string(opts_.max_bytes);
  s += ",\"fsync_ms\":" + std::to_string(fsync_ms());
  s += ",\"appends\":" + std::to_string(appends());
  s += ",\"bytes\":" + std::to_string(bytes_written());
  s += ",\"segments\":" + std::to_string(segments_created());
  s += ",\"fsyncs\":" + std::to_string(fsyncs());
  s += ",\"errors\":" + std::to_string(io_errors());
  s += "}";
  return s;
}

JournalReader::Result JournalReader::read_dir(const std::string& dir) {
  Result out;
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    out.error = "opendir " + dir + ": " + std::string(std::strerror(errno));
    return out;
  }
  while (const dirent* e = ::readdir(d)) {
    unsigned long long idx = 0;
    if (std::sscanf(e->d_name, "seg-%08llu.crfsj", &idx) == 1) {
      segments.emplace_back(idx, dir + "/" + e->d_name);
    }
  }
  ::closedir(d);
  if (segments.empty()) {
    out.error = "no journal segments under " + dir;
    return out;
  }
  std::sort(segments.begin(), segments.end());

  out.ok = true;
  std::uint64_t seq = 0;
  for (const auto& [idx, path] : segments) {
    std::ifstream f(path, std::ios::binary);
    if (!f) continue;
    std::string data((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    ++out.segments;
    const auto* p = reinterpret_cast<const unsigned char*>(data.data());
    std::size_t pos = 0;
    while (pos + kJournalHeaderBytes <= data.size()) {
      const std::uint32_t magic = get_u32(p + pos);
      const std::uint16_t version = get_u16(p + pos + 4);
      const std::uint16_t type = get_u16(p + pos + 6);
      const std::uint64_t ts_ns = get_u64(p + pos + 8);
      const std::uint32_t len = get_u32(p + pos + 16);
      const std::uint32_t crc = get_u32(p + pos + 20);
      if (magic != kJournalMagic || version != kJournalVersion ||
          pos + kJournalHeaderBytes + len > data.size()) {
        break;  // torn/corrupt: abandon the rest of this segment
      }
      const char* payload = data.data() + pos + kJournalHeaderBytes;
      if (Crc32::of(payload, len) != crc) break;
      if (static_cast<FrameType>(type) == FrameType::kMeta) {
        out.meta_json.assign(payload, len);
      } else {
        JournalRecord rec;
        rec.type = static_cast<FrameType>(type);
        rec.ts_ns = ts_ns;
        rec.seq = seq++;
        rec.payload.assign(payload, len);
        out.records.push_back(std::move(rec));
      }
      pos += kJournalHeaderBytes + len;
    }
    if (pos < data.size()) {
      out.torn_tail = true;
      out.torn_bytes += data.size() - pos;
    }
  }
  return out;
}

namespace {

std::uint64_t find_counter(const Registry::Snapshot& snap, std::string_view name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

}  // namespace

std::string journal_sample_json(const Sample& s, const SloInput& in) {
  std::string j = "{\"seq\":" + std::to_string(s.seq);
  j += ",\"ts_ns\":" + std::to_string(s.ts_ns);
  j += ",\"dt_ns\":" + std::to_string(s.dt_ns);
  j += ",\"pwrite_bytes\":" + std::to_string(find_counter(s.snap, "crfs.io.pwrite_bytes"));
  const HistogramSnapshot* pw = s.histogram("crfs.io.pwrite_ns");
  j += ",\"pwrites\":" + std::to_string(pw != nullptr ? pw->count : 0);
  const auto depth = s.gauge("crfs.queue.depth");
  j += ",\"queue_depth\":" + std::to_string(depth.value_or(0));
  const auto free_chunks = s.gauge("crfs.pool.free_chunks");
  j += ",\"free_chunks\":" + std::to_string(free_chunks.value_or(0));
  // Windowed SLO inputs (see SloExtractor): _n = observations in this tick
  // window; 0 means "no signal", and the offline replay skips it exactly
  // like the live monitor did.
  j += ",\"lag_p99_ns\":" + std::to_string(static_cast<std::uint64_t>(in.lag_p99_ns));
  j += ",\"lag_n\":" + std::to_string(in.lag_n);
  j += ",\"stall_ratio_ppm\":" + std::to_string(static_cast<std::uint64_t>(in.stall_ratio * 1e6));
  j += ",\"stall_n\":" + std::to_string(in.stall_n);
  j += ",\"ttfb_p99_ns\":" + std::to_string(static_cast<std::uint64_t>(in.ttfb_p99_ns));
  j += ",\"ttfb_n\":" + std::to_string(in.ttfb_n);
  j += "}";
  return j;
}

}  // namespace crfs::obs
