#include "obs/epoch.h"

#include <algorithm>
#include <cstdio>

#include "obs/prom.h"

namespace crfs::obs {

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string EpochRecord::to_json() const {
  std::string out = "{\"id\":" + std::to_string(id);
  out += ",\"label\":";
  append_json_string(out, label);
  out += ",\"explicit\":" + std::string(explicit_marker ? "true" : "false");
  out += ",\"open\":" + std::string(open ? "true" : "false");
  out += ",\"start_ns\":" + std::to_string(start_ns);
  out += ",\"end_ns\":" + std::to_string(end_ns);
  out += ",\"files\":" + std::to_string(files);
  out += ",\"bytes\":" + std::to_string(bytes);
  out += ",\"app_writes\":" + std::to_string(app_writes);
  out += ",\"chunks\":" + std::to_string(chunks);
  out += ",\"backend_writes\":" + std::to_string(backend_writes);
  out += ",\"durable_bytes\":" + std::to_string(durable_bytes);
  out += ",\"pool_stall_ns\":" + std::to_string(pool_stall_ns);
  out += ",\"queue_residency_ns\":" + std::to_string(queue_residency_ns);
  out += ",\"copy_ns\":" + std::to_string(copy_ns);
  out += ",\"submit_wait_ns\":" + std::to_string(submit_wait_ns);
  out += ",\"device_ns\":" + std::to_string(device_ns);
  out += ",\"barrier_ns\":" + std::to_string(barrier_ns);
  out += ",\"durability_lag_sum_ns\":" + std::to_string(durability_lag_sum_ns);
  out += ",\"durability_lag_max_ns\":" + std::to_string(durability_lag_max_ns);
  out += ",\"io_errors\":" + std::to_string(io_errors);
  out += ",\"wall_seconds\":" + format_double(wall_seconds());
  out += ",\"aggregation_ratio\":" + format_double(aggregation_ratio());
  out += ",\"effective_bw_bytes_per_sec\":" + format_double(effective_bw());
  out += ",\"durability_lag_mean_ns\":" + format_double(mean_durability_lag_ns());
  // Tier drain keys append at the end: existing consumers index by name.
  out += ",\"drained_bytes\":" + std::to_string(drained_bytes);
  out += ",\"drain_ns\":" + std::to_string(drain_ns);
  out += ",\"drain_end_ns\":" + std::to_string(drain_end_ns);
  out += ",\"drain_bw_bytes_per_sec\":" + format_double(drain_bw());
  out += "}";
  return out;
}

std::string epochs_to_json(const std::vector<EpochRecord>& records) {
  std::string out = "[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out += ",";
    out += records[i].to_json();
  }
  out += "]";
  return out;
}

std::string epochs_to_prometheus(const std::vector<EpochRecord>& records) {
  if (records.empty()) return "";
  std::string out;
  auto emit_family = [&](const char* name, const char* help, auto&& value_of) {
    out += "# HELP " + std::string(name) + " " + help + "\n";
    out += "# TYPE " + std::string(name) + " gauge\n";
    for (const EpochRecord& r : records) {
      out += name;
      out += "{epoch=\"" + std::to_string(r.id) + "\",label=\"" +
             prometheus_label_value(r.label) + "\"} ";
      out += value_of(r);
      out += "\n";
    }
  };
  emit_family("crfs_epoch_bytes", "CRFS per-epoch app bytes",
              [](const EpochRecord& r) { return std::to_string(r.bytes); });
  emit_family("crfs_epoch_files", "CRFS per-epoch distinct files",
              [](const EpochRecord& r) { return std::to_string(r.files); });
  emit_family("crfs_epoch_wall_seconds", "CRFS per-epoch wall time",
              [](const EpochRecord& r) { return format_double(r.wall_seconds()); });
  emit_family("crfs_epoch_aggregation_ratio",
              "CRFS per-epoch app writes per backend write",
              [](const EpochRecord& r) { return format_double(r.aggregation_ratio()); });
  emit_family("crfs_epoch_effective_bw_bytes_per_sec",
              "CRFS per-epoch durable bytes over wall time",
              [](const EpochRecord& r) { return format_double(r.effective_bw()); });
  emit_family("crfs_epoch_durability_lag_max_ns",
              "CRFS per-epoch max app-ack to durable lag",
              [](const EpochRecord& r) { return std::to_string(r.durability_lag_max_ns); });
  return out;
}

EpochTracker::EpochTracker(Options opts, Registry* registry)
    : opts_(opts), gap_ns_(opts.gap_ns) {
  if (registry != nullptr) {
    c_completed_ = &registry->counter("crfs.epoch.completed");
    c_bytes_ = &registry->counter("crfs.epoch.bytes");
    c_files_ = &registry->counter("crfs.epoch.files");
    c_chunks_ = &registry->counter("crfs.epoch.chunks");
    g_open_ = &registry->gauge("crfs.epoch.open");
  }
}

std::string EpochTracker::ckpt_key(const std::string& path) {
  // Digits directly after a "ckpt" token, skipping . _ - separators:
  // "rank0.ckpt.12" -> "ckpt:12", "img_ckpt-7" -> "ckpt:7",
  // "rank0.ckpt" -> "" (no generation; grouping falls back to the gap
  // window). Deliberately narrow — "rank3" must NOT key on the 3, or two
  // ranks of one checkpoint would land in two epochs.
  for (std::size_t pos = path.find("ckpt"); pos != std::string::npos;
       pos = path.find("ckpt", pos + 1)) {
    std::size_t i = pos + 4;
    while (i < path.size() && (path[i] == '.' || path[i] == '_' || path[i] == '-')) ++i;
    std::size_t digits = i;
    while (digits < path.size() && path[digits] >= '0' && path[digits] <= '9') ++digits;
    if (digits > i) return "ckpt:" + path.substr(i, digits - i);
  }
  return "";
}

EpochRecord EpochTracker::snapshot_locked(const EpochState& st, std::uint64_t end_ns,
                                          bool open) const {
  EpochRecord r;
  r.id = st.id;
  r.label = st.label;
  r.explicit_marker = st.explicit_marker;
  r.open = open;
  r.start_ns = st.start_ns;
  r.end_ns = end_ns;
  r.files = st.files.load(std::memory_order_relaxed);
  r.bytes = st.bytes.load(std::memory_order_relaxed);
  r.app_writes = st.app_writes.load(std::memory_order_relaxed);
  r.chunks = st.chunks.load(std::memory_order_relaxed);
  r.backend_writes = st.backend_writes.load(std::memory_order_relaxed);
  r.durable_bytes = st.durable_bytes.load(std::memory_order_relaxed);
  r.pool_stall_ns = st.pool_stall_ns.load(std::memory_order_relaxed);
  r.queue_residency_ns = st.queue_residency_ns.load(std::memory_order_relaxed);
  r.durability_lag_sum_ns = st.durability_lag_sum_ns.load(std::memory_order_relaxed);
  r.durability_lag_max_ns = st.durability_lag_max_ns.load(std::memory_order_relaxed);
  r.io_errors = st.io_errors.load(std::memory_order_relaxed);
  r.copy_ns = st.copy_ns.load(std::memory_order_relaxed);
  r.submit_wait_ns = st.submit_wait_ns.load(std::memory_order_relaxed);
  r.device_ns = st.device_ns.load(std::memory_order_relaxed);
  r.barrier_ns = st.barrier_ns.load(std::memory_order_relaxed);
  return r;
}

void EpochTracker::start_locked(std::string label, std::string key,
                                std::uint64_t now_ns, bool explicit_marker) {
  active_ = std::make_shared<EpochState>(next_id_++, std::move(label), std::move(key),
                                         now_ns, explicit_marker);
  active_paths_.clear();
  open_handles_ = 0;
  if (g_open_ != nullptr) g_open_->set(static_cast<std::int64_t>(active_->id));
}

std::optional<EpochRecord> EpochTracker::finalize_locked(std::uint64_t end_ns) {
  if (active_ == nullptr) return std::nullopt;
  EpochRecord r = snapshot_locked(*active_, end_ns, /*open=*/false);
  if (c_completed_ != nullptr) {
    c_completed_->add(1);
    c_bytes_->add(r.bytes);
    c_files_->add(r.files);
    c_chunks_->add(r.chunks);
  }
  ledger_.push_back(r);
  while (ledger_.size() > opts_.ledger_capacity) ledger_.pop_front();
  finalized_total_ += 1;
  active_.reset();
  active_paths_.clear();
  open_handles_ = 0;
  if (g_open_ != nullptr) g_open_->set(0);
  return r;
}

void EpochTracker::notify_finalized(const std::optional<EpochRecord>& rec) {
  if (!rec.has_value()) return;
  FinalizeFn fn;
  {
    std::lock_guard lock(mu_);
    fn = finalize_listener_;
  }
  if (fn) fn(*rec);
}

void EpochTracker::set_finalize_listener(FinalizeFn fn) {
  std::lock_guard lock(mu_);
  finalize_listener_ = std::move(fn);
}

void EpochTracker::attach_drain(std::uint64_t id, std::uint64_t drained_bytes,
                                std::uint64_t drain_ns, std::uint64_t drain_end_ns) {
  std::lock_guard lock(mu_);
  for (auto it = ledger_.rbegin(); it != ledger_.rend(); ++it) {
    if (it->id != id) continue;
    it->drained_bytes += drained_bytes;
    it->drain_ns += drain_ns;
    it->drain_end_ns = std::max(it->drain_end_ns, drain_end_ns);
    return;
  }
}

std::shared_ptr<EpochState> EpochTracker::on_open(const std::string& path,
                                                  std::uint64_t now_ns) {
  std::optional<EpochRecord> done;
  std::shared_ptr<EpochState> out;
  {
    std::lock_guard lock(mu_);
    const std::string key = ckpt_key(path);
    if (active_ != nullptr && !active_->explicit_marker) {
      // A new .ckpt generation always starts a new epoch; otherwise rotate
      // only after the correlation window has gone quiet with nothing of
      // the current epoch still open.
      const bool generation_changed =
          !key.empty() && !active_->ckpt_key.empty() && key != active_->ckpt_key;
      const bool gap_expired = open_handles_ == 0 && now_ns >= last_event_ns_ &&
                               now_ns - last_event_ns_ > gap_ns();
      if (generation_changed || gap_expired) done = finalize_locked(now_ns);
    }
    if (active_ == nullptr) {
      const std::string label =
          key.empty() ? "epoch-" + std::to_string(next_id_) : key;
      start_locked(label, key, now_ns, /*explicit_marker=*/false);
    }
    if (active_paths_.insert(path).second) {
      active_->files.fetch_add(1, std::memory_order_relaxed);
    }
    open_handles_ += 1;
    last_event_ns_ = now_ns;
    out = active_;
  }
  notify_finalized(done);
  return out;
}

void EpochTracker::on_close(const std::string&, std::uint64_t now_ns) {
  std::lock_guard lock(mu_);
  if (open_handles_ > 0) open_handles_ -= 1;
  last_event_ns_ = now_ns;
}

void EpochTracker::begin(std::string label, std::uint64_t now_ns) {
  std::optional<EpochRecord> done;
  {
    std::lock_guard lock(mu_);
    done = finalize_locked(now_ns);
    if (label.empty()) label = "epoch-" + std::to_string(next_id_);
    start_locked(std::move(label), /*key=*/"", now_ns, /*explicit_marker=*/true);
    last_event_ns_ = now_ns;
  }
  notify_finalized(done);
}

void EpochTracker::end(std::uint64_t now_ns) {
  std::optional<EpochRecord> done;
  {
    std::lock_guard lock(mu_);
    done = finalize_locked(now_ns);
    last_event_ns_ = now_ns;
  }
  notify_finalized(done);
}

void EpochTracker::finalize_open(std::uint64_t now_ns) {
  std::optional<EpochRecord> done;
  {
    std::lock_guard lock(mu_);
    done = finalize_locked(now_ns);
  }
  notify_finalized(done);
}

std::vector<EpochRecord> EpochTracker::records() const {
  std::lock_guard lock(mu_);
  return {ledger_.begin(), ledger_.end()};
}

std::optional<EpochRecord> EpochTracker::open_epoch(std::uint64_t now_ns) const {
  std::lock_guard lock(mu_);
  if (active_ == nullptr) return std::nullopt;
  return snapshot_locked(*active_, now_ns, /*open=*/true);
}

std::uint64_t EpochTracker::total_finalized() const {
  std::lock_guard lock(mu_);
  return finalized_total_;
}

}  // namespace crfs::obs
