#include "obs/prom.h"

#include <cstdio>

namespace crfs::obs {

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

std::string prometheus_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

void append_u64(std::string& out, std::uint64_t v) { out += std::to_string(v); }

// All label emission funnels through here so no call site can forget the
// value escaping.
void append_label(std::string& out, const char* key, const std::string& value) {
  out += '{';
  out += key;
  out += "=\"";
  out += prometheus_label_value(value);
  out += "\"}";
}

}  // namespace

std::string to_prometheus(const Registry::Snapshot& snap) {
  std::string out;

  for (const auto& [name, value] : snap.counters) {
    const std::string base = prometheus_name(name);
    // Prometheus counters conventionally end in _total.
    const std::string family =
        base.size() >= 6 && base.compare(base.size() - 6, 6, "_total") == 0
            ? base
            : base + "_total";
    out += "# HELP " + family + " CRFS counter " + name + "\n";
    out += "# TYPE " + family + " counter\n";
    out += family + " ";
    append_u64(out, value);
    out += "\n";
  }

  for (const auto& [name, value] : snap.gauges) {
    const std::string family = prometheus_name(name);
    out += "# HELP " + family + " CRFS gauge " + name + "\n";
    out += "# TYPE " + family + " gauge\n";
    out += family + " " + std::to_string(value) + "\n";
  }

  for (const auto& [name, h] : snap.histograms) {
    const std::string family = prometheus_name(name);
    out += "# HELP " + family + " CRFS latency histogram " + name + " (nanoseconds)\n";
    out += "# TYPE " + family + " histogram\n";

    // Highest non-empty bucket bounds how many boundaries we emit; bucket
    // 64's upper bound is UINT64_MAX, which only +Inf can represent, so
    // cap explicit boundaries at 63 and fold the rest into +Inf.
    int top = -1;
    for (int i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      if (h.buckets[i] > 0) top = i;
    }
    if (top > 63) top = 63;

    // The exposition count is the bucket sum: a snapshot racing writers
    // can see count and buckets slightly out of step, and Prometheus
    // requires +Inf == _count exactly, so derive both from one source.
    std::uint64_t cumulative = 0;
    for (int i = 0; i <= top; ++i) {
      cumulative += h.buckets[i];
      out += family + "_bucket";
      append_label(out, "le", std::to_string(LatencyHistogram::bucket_hi(i)));
      out += " ";
      append_u64(out, cumulative);
      out += "\n";
    }
    std::uint64_t total = cumulative;
    for (int i = top + 1; i < HistogramSnapshot::kBuckets; ++i) total += h.buckets[i];
    out += family + "_bucket{le=\"+Inf\"} ";
    append_u64(out, total);
    out += "\n";
    out += family + "_sum ";
    append_u64(out, h.sum);
    out += "\n";
    out += family + "_count ";
    append_u64(out, total);
    out += "\n";
  }

  return out;
}

}  // namespace crfs::obs
