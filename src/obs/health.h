// crfs::obs health: stall/starvation detection over sampled telemetry.
//
// The HealthMonitor evaluates a fixed rule set against each Sample frame
// the Sampler captures and emits structured Event records into a bounded
// EventBuffer. Rules watch the congestion signals the paper's §IV/§V
// analysis turns on:
//
//   pool_starvation  free_chunks == 0 for >= starvation_samples
//                    consecutive frames — writers are blocked on the
//                    finite BufferPool (Fig 5's backpressure regime).
//   queue_stall      queue depth > 0 while zero pwrites completed in the
//                    window, for >= stall_samples consecutive frames —
//                    chunks are waiting but the IO threads make no
//                    progress (saturated or wedged backend).
//   slow_pwrite      p99 of crfs.io.pwrite_ns above slow_pwrite_p99_ns.
//   error_burst      >= error_burst new crfs.io.pwrite_errors in one
//                    window.
//
// Rules are edge-triggered with hysteresis: each fires once when its
// condition has held for the configured run length, then re-arms only
// after the condition clears — a stall that persists for a thousand
// samples produces one event, not a thousand.
//
// The EventBuffer is also the sink for directly-pushed events (the IO
// pool attaches path/offset/errno to every failed pwrite), so the event
// log is the single post-hoc record of everything that went wrong.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/sampler.h"

namespace crfs::obs {

enum class Severity { kInfo, kWarning, kCritical };

/// "info" / "warning" / "critical".
const char* severity_name(Severity s);

/// One structured health/error event.
struct Event {
  Severity severity = Severity::kInfo;
  std::string rule;     ///< rule id: "pool_starvation", "pwrite_error", ...
  std::string message;  ///< human-readable detail (path, offset, errno, ...)
  double value = 0.0;     ///< measured value that tripped the rule
  double threshold = 0.0; ///< configured threshold it was compared against
  std::uint64_t ts_ns = 0;  ///< timestamp of the sample (or of the error)

  /// {"severity":...,"rule":...,"message":...,"value":...,"threshold":...,"ts_ns":...}
  std::string to_json() const;
};

/// JSON array of events (stats_json embedding).
std::string events_to_json(const std::vector<Event>& events);

/// Bounded, thread-safe event log. Oldest events are dropped past
/// `capacity`; total() keeps counting so drops are detectable.
class EventBuffer {
 public:
  explicit EventBuffer(std::size_t capacity = 256);

  void push(Event ev);

  /// Current contents, oldest-first.
  std::vector<Event> snapshot() const;

  /// Events ever pushed (>= size()).
  std::uint64_t total() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Notification hook, invoked after each push OUTSIDE the buffer lock
  /// (the callback may snapshot() this buffer — e.g. the flight recorder
  /// re-rendering its postmortem on a critical event). Install before
  /// any pusher thread runs; the pointer is read unsynchronized after.
  void set_listener(std::function<void(const Event&)> listener) {
    listener_ = std::move(listener);
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Event> events_;
  std::uint64_t total_ = 0;
  std::function<void(const Event&)> listener_;
};

/// Rule thresholds. Defaults are deliberately conservative: only
/// unambiguous pipeline pathology fires.
struct HealthConfig {
  /// Consecutive frames with free_chunks == 0 before pool_starvation.
  unsigned starvation_samples = 3;
  /// Consecutive frames with depth > 0 and zero pwrite completions
  /// before queue_stall.
  unsigned stall_samples = 3;
  /// p99 pwrite latency (ns) above which slow_pwrite fires; 0 disables.
  std::uint64_t slow_pwrite_p99_ns = 0;
  /// New pwrite errors within one window to fire error_burst.
  std::uint64_t error_burst = 1;
};

/// Evaluates the rule set against successive Samples. Single-driver (the
/// Sampler's tick path); the output EventBuffer is thread-safe.
class HealthMonitor {
 public:
  HealthMonitor(HealthConfig cfg, EventBuffer& out)
      : cfg_(cfg), slow_p99_ns_(cfg.slow_pwrite_p99_ns), out_(out) {}

  void evaluate(const Sample& s);

  /// Static thresholds as configured; the slow_pwrite threshold may have
  /// been retuned since — read it via slow_pwrite_p99_ns().
  const HealthConfig& config() const { return cfg_; }

  /// Runtime re-arm of the slow_pwrite threshold (knob plane); 0
  /// disables the rule. Thread-safe against the evaluating driver.
  void set_slow_pwrite_p99_ns(std::uint64_t ns) {
    slow_p99_ns_.store(ns, std::memory_order_relaxed);
  }
  std::uint64_t slow_pwrite_p99_ns() const {
    return slow_p99_ns_.load(std::memory_order_relaxed);
  }

 private:
  HealthConfig cfg_;
  std::atomic<std::uint64_t> slow_p99_ns_;
  EventBuffer& out_;

  // Per-rule run lengths and fired/armed state (hysteresis).
  unsigned starved_run_ = 0;
  bool starvation_fired_ = false;
  unsigned stall_run_ = 0;
  bool stall_fired_ = false;
  bool slow_fired_ = false;
};

}  // namespace crfs::obs
