// crfs::obs Prometheus exposition: renders a Registry snapshot in the
// Prometheus text format (version 0.0.4), so a scraper — or `crfsctl
// prom` — can lift CRFS pipeline metrics into any standard monitoring
// stack without a client-library dependency.
//
// Mapping (docs/OBSERVABILITY.md has the full table):
//   * names: dots become underscores ("crfs.queue.depth" ->
//     "crfs_queue_depth");
//   * counters gain the conventional "_total" suffix and TYPE counter;
//   * gauges expose as-is with TYPE gauge;
//   * log2 histograms expose as TYPE histogram with cumulative
//     `_bucket{le="..."}` series (one per log2 boundary up to the highest
//     non-empty bucket, then `+Inf`), plus `_sum` and `_count`. The
//     `+Inf` bucket always equals `_count`, and bucket counts are
//     monotone — the invariant test_obs round-trips.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace crfs::obs {

/// One metric family per registry entry, HELP/TYPE headers included.
std::string to_prometheus(const Registry::Snapshot& snap);

/// "crfs.io.pwrite_bytes" -> "crfs_io_pwrite_bytes" (exposed for tests).
std::string prometheus_name(const std::string& name);

/// Escapes a label VALUE for the text exposition format: `\` -> `\\`,
/// `"` -> `\"`, newline -> `\n`. Every label value emitted by this
/// subsystem must pass through here — epoch labels and file paths can
/// carry all three characters, and an unescaped one corrupts the whole
/// scrape, not just the series.
std::string prometheus_label_value(const std::string& value);

}  // namespace crfs::obs
