// crfs::obs controller: the feedback half of the telemetry loop.
//
// The Sampler/HealthMonitor plane can *see* pool starvation, queue
// stalls, and slow pwrites; the Controller *acts* on them by retuning the
// runtime knob plane, and the DecisionLog keeps an operator-auditable
// trail of every decision — applied, clamped, or vetoed alike.
//
// Policy rules (all edge-damped by a per-rule cooldown):
//
//   grow_pool   a new pool_starvation event from the HealthMonitor (the
//               epoch-burst backpressure regime of Fig 5) doubles the
//               buffer pool, bounded by the pool_chunks knob's max.
//   widen_io    queue depth rising for >= widen_rising_samples frames
//               while the backend looks healthy (pwrite p99 below
//               widen_max_p99_ns and cqe_wait_ns low): chunks are
//               arriving faster than we submit, so double io_batch and
//               uring_depth.
//   shed_io     pwrite p99 above shed_min_p99_ns with a standing queue:
//               the backend is the bottleneck, so halve io_batch and
//               uring_depth — the paper's §IV insight that IO concurrency
//               is the throttle toward the backend.
//   shed_readahead
//               read p99 (crfs.read.pread_ns) above shed_min_p99_ns while
//               checkpoint writes also queue: restore prefetch is
//               competing with checkpoint traffic on a saturated backend,
//               so halve readahead_window (floor 1).
//   shed_drain  drain pwrite p99 (crfs.tier.drain_pwrite_ns) above
//               shed_min_p99_ns while checkpoint writes queue: the tier's
//               background drain is competing with the burst on a
//               saturated remote, so halve drain_mbps to protect
//               absorption — and restore the pre-shed value as soon as
//               the burst epoch finalizes (crfs.epoch.completed edges).
//
// tick() is clock-agnostic: it only reads the Sample's ts_ns, so the same
// Controller runs on the real Sampler thread (monotonic clock) and inside
// the DES on virtual time. Decisions are stamped exclusively with sample
// timestamps, which is what makes two identical simulated runs produce
// byte-identical decision logs.
//
// The Controller does not know about crfs::KnobPlane (obs sits below the
// core); it reads and tunes knobs through callbacks the owner wires up.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/sampler.h"

namespace crfs::obs {

/// One audited knob-change decision (applied, clamped, or vetoed).
struct CtlDecision {
  std::uint64_t seq = 0;    ///< 1-based, assigned by the DecisionLog
  std::uint64_t ts_ns = 0;  ///< sample timestamp (monotonic or virtual)
  std::string source;       ///< "controller" | "manual" | "ctlfile"
  std::string rule;         ///< "grow_pool" | "widen_io" | "shed_io" | "tune"
  std::string knob;
  double requested = 0.0;
  double from = 0.0;
  double to = 0.0;
  std::string outcome;  ///< "applied" | "clamped" | "vetoed"
  std::string reason;   ///< clamp/veto detail; empty for a plain apply
  std::uint64_t generation = 0;  ///< knob-plane generation after the tune

  std::string to_json() const;
};

/// JSON array of decisions, oldest-first.
std::string decisions_to_json(const std::vector<CtlDecision>& decisions);

/// Bounded, thread-safe audit trail of knob-change decisions. Every
/// record lands in three places at once: the ring here, the crfs.ctl.*
/// counters in the Registry, and (as an info-severity Event) in the
/// EventBuffer — so the decision history survives into stats_json,
/// Prometheus, and the flight-recorder postmortem without extra plumbing.
class DecisionLog {
 public:
  DecisionLog(std::size_t capacity, Registry* metrics, EventBuffer* events);

  /// Assigns the sequence number, stores the decision, bumps metrics,
  /// mirrors it into the EventBuffer, then invokes the listener (if any)
  /// outside the lock. Returns the assigned sequence number.
  std::uint64_t record(CtlDecision d);

  /// Current contents, oldest-first.
  std::vector<CtlDecision> snapshot() const;

  /// Decisions ever recorded (>= size()).
  std::uint64_t total() const;

  /// JSON array of the current contents.
  std::string to_json() const;

  /// Notification hook, invoked after each record OUTSIDE the log lock
  /// (e.g. the mount refreshing its flight recorder). Install before any
  /// recorder thread runs; the pointer is read unsynchronized after.
  void set_listener(std::function<void(const CtlDecision&)> listener) {
    listener_ = std::move(listener);
  }

 private:
  const std::size_t capacity_;
  Registry* metrics_;  // may be null (bare unit tests)
  EventBuffer* events_;  // may be null
  mutable std::mutex mu_;
  std::deque<CtlDecision> ring_;
  std::uint64_t total_ = 0;
  std::function<void(const CtlDecision&)> listener_;
};

/// Rule thresholds and damping. Defaults are conservative enough that a
/// healthy pipeline never trips them (the bench idle-overhead guard).
struct ControllerConfig {
  /// Minimum sample-time ns between firings of the same rule.
  std::uint64_t cooldown_ns = 2'000'000'000;
  /// Pool growth multiplier on pool_starvation.
  double grow_factor = 2.0;
  /// Consecutive frames of strictly rising queue depth before widen_io.
  unsigned widen_rising_samples = 3;
  /// Backend considered healthy (widen allowed) below this pwrite p99.
  double widen_max_p99_ns = 5e6;
  /// Ring considered idle (widen allowed) below this cqe_wait p50.
  double widen_max_cqe_wait_ns = 1e6;
  /// Backend considered the bottleneck (shed) above this pwrite p99...
  double shed_min_p99_ns = 50e6;
  /// ...with at least this much standing queue.
  std::int64_t shed_min_depth = 2;
};

/// Reads the current value of a knob; returns fallback when unknown.
using KnobReadFn = std::function<double(std::string_view name, double fallback)>;

/// Tunes a knob; the owner fills outcome/from/to/reason/generation from
/// its knob plane's TuneResult.
struct TuneOutcome {
  std::string outcome;
  double from = 0.0;
  double to = 0.0;
  std::string reason;
  std::uint64_t generation = 0;
};
using KnobTuneFn = std::function<TuneOutcome(std::string_view name, double requested)>;

/// Evaluates the policy rules against successive Samples. Single-driver
/// (the Sampler's tick path — real thread or sim coroutine); the output
/// DecisionLog is thread-safe.
class Controller {
 public:
  Controller(ControllerConfig cfg, DecisionLog& log, EventBuffer* health_events,
             Registry* metrics, KnobReadFn read, KnobTuneFn tune);

  /// One control step against frame `s`. Clock-agnostic: uses s.ts_ns.
  void tick(const Sample& s);

  /// Control steps taken; readable from any thread.
  std::uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

  const ControllerConfig& config() const { return cfg_; }

 private:
  enum Rule {
    kGrow = 0,
    kWiden = 1,
    kShed = 2,
    kShedReadahead = 3,
    kShedDrain = 4,
    kRuleCount
  };

  bool cooled(Rule r, std::uint64_t ts_ns) const;
  void fire(const Sample& s, Rule r, const char* rule_name, std::string_view knob,
            double requested);

  const ControllerConfig cfg_;
  DecisionLog& log_;
  EventBuffer* health_events_;  // scanned for HealthMonitor edges; may be null
  Registry* metrics_;           // may be null
  KnobReadFn read_;
  KnobTuneFn tune_;

  Counter* c_ticks_ = nullptr;
  Counter* c_fired_[kRuleCount] = {};

  std::atomic<std::uint64_t> ticks_{0};
  std::uint64_t seen_events_ = 0;
  bool have_prev_depth_ = false;
  std::int64_t prev_depth_ = 0;
  unsigned rising_run_ = 0;
  std::uint64_t last_fire_ns_[kRuleCount] = {};
  bool fired_once_[kRuleCount] = {};

  // shed_drain episode state: the rule restores drain_mbps to the value
  // it halved from once an epoch finalizes while shed.
  bool drain_shed_active_ = false;
  double drain_preshed_ = 0.0;
  std::uint64_t drain_shed_epoch_mark_ = 0;
};

}  // namespace crfs::obs
