#include "obs/trace.h"

#include <algorithm>

namespace crfs::obs {

namespace {
std::atomic<std::uint64_t> next_collector_id{1};
}  // namespace

TraceRing::TraceRing(std::uint32_t tid, std::size_t capacity)
    : tid_(tid), slots_(capacity > 0 ? capacity : 1) {}

std::vector<TraceEvent> TraceRing::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t n = std::min<std::uint64_t>(head, slots_.size());
  std::vector<TraceEvent> out;
  out.reserve(n);
  for (std::uint64_t i = head - n; i < head; ++i) {
    const Slot& slot = slots_[i % slots_.size()];
    TraceEvent ev;
    ev.name = slot.name.load(std::memory_order_relaxed);
    ev.tid = tid_;
    ev.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    ev.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
    ev.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    ev.tag = slot.tag.load(std::memory_order_relaxed);
    out.push_back(ev);
  }
  return out;
}

TraceCollector::TraceCollector(std::size_t ring_capacity)
    : id_(next_collector_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(ring_capacity) {}

TraceRing& TraceCollector::ring() {
  struct Cache {
    std::uint64_t collector_id = 0;
    TraceRing* ring = nullptr;
  };
  thread_local Cache cache;
  if (cache.collector_id == id_ && cache.ring != nullptr) return *cache.ring;

  std::lock_guard lock(mu_);
  auto it = by_thread_.find(std::this_thread::get_id());
  if (it == by_thread_.end()) {
    rings_.push_back(std::make_unique<TraceRing>(
        static_cast<std::uint32_t>(rings_.size()), capacity_));
    it = by_thread_.emplace(std::this_thread::get_id(), rings_.back().get()).first;
  }
  cache = Cache{id_, it->second};
  return *it->second;
}

std::vector<TraceEvent> TraceCollector::snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard lock(mu_);
    for (const auto& ring : rings_) {
      auto events = ring->snapshot();
      out.insert(out.end(), events.begin(), events.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.ts_ns < b.ts_ns; });
  return out;
}

std::uint64_t TraceCollector::total_recorded() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->recorded();
  return total;
}

std::size_t TraceCollector::ring_count() const {
  std::lock_guard lock(mu_);
  return rings_.size();
}

std::uint64_t TraceCollector::dropped() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t recorded = ring->recorded();
    if (recorded > ring->capacity()) total += recorded - ring->capacity();
  }
  return total;
}

const char* TraceCollector::intern(const std::string& s) {
  std::lock_guard lock(mu_);
  auto it = intern_index_.find(s);
  if (it != intern_index_.end()) return it->second;
  interned_.push_back(s);
  return intern_index_.emplace(s, interned_.back().c_str()).first->second;
}

}  // namespace crfs::obs
