// crfs::obs tracing: lock-free per-thread event rings for span capture.
//
// A TraceCollector owns one TraceRing per participating thread. Recording
// a span is two relaxed atomic loads (enabled? which ring?) plus four
// relaxed stores into the thread's own ring slot — no locks, no
// allocation, no contention between threads. When tracing is disabled
// (Config::enable_tracing = false, the default) TraceSpan costs a single
// relaxed bool load and no clock read, so the write hot path pays only
// counters.
//
// Events are "complete" spans (begin timestamp + duration), which export
// directly as Chrome trace_event `"ph":"X"` records (chrome_trace.h) and
// load in chrome://tracing and Perfetto.
//
// Concurrency contract: each ring is written by exactly one thread.
// snapshot() may run while writers are active; every slot field is a
// relaxed atomic, so a reader racing a wrap-around sees a torn-but-
// well-typed event rather than undefined behaviour (and ThreadSanitizer
// stays quiet). For an exact trace, export after quiescing the pipeline —
// which is what Crfs::export_trace and `crfsctl trace` do.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace crfs::obs {

/// One completed span, in the export-facing (plain, copyable) form.
struct TraceEvent {
  const char* name = "";    ///< static string; never freed
  std::uint32_t tid = 0;    ///< ring index (creation order) or sim node id
  std::uint64_t ts_ns = 0;  ///< begin timestamp (monotonic or virtual ns)
  std::uint64_t dur_ns = 0; ///< span duration
  std::uint64_t trace_id = 0;  ///< causal chain id (0 = unattributed)
  const char* tag = "";     ///< interned/static detail (file path); never freed
};

/// Fixed-capacity single-writer ring of spans. Oldest events are
/// overwritten once `capacity` is exceeded (recorded() keeps the total).
class TraceRing {
 public:
  TraceRing(std::uint32_t tid, std::size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Called only by the owning thread.
  void record(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns,
              std::uint64_t trace_id = 0, const char* tag = "") {
    Slot& slot = slots_[head_.load(std::memory_order_relaxed) % slots_.size()];
    slot.name.store(name, std::memory_order_relaxed);
    slot.ts_ns.store(ts_ns, std::memory_order_relaxed);
    slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
    slot.trace_id.store(trace_id, std::memory_order_relaxed);
    slot.tag.store(tag, std::memory_order_relaxed);
    // Release-publish so a snapshot that observes the new head also
    // observes the slot it covers.
    head_.fetch_add(1, std::memory_order_release);
  }

  std::uint32_t tid() const { return tid_; }
  std::size_t capacity() const { return slots_.size(); }
  /// Total events ever recorded (>= what the ring still holds).
  std::uint64_t recorded() const { return head_.load(std::memory_order_acquire); }

  /// Ring contents oldest-first, at most capacity() events.
  std::vector<TraceEvent> snapshot() const;

 private:
  struct Slot {
    std::atomic<const char*> name{""};
    std::atomic<std::uint64_t> ts_ns{0};
    std::atomic<std::uint64_t> dur_ns{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<const char*> tag{""};
  };

  std::uint32_t tid_;
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// Owns the per-thread rings of one traced pipeline (one Crfs mount).
class TraceCollector {
 public:
  explicit TraceCollector(std::size_t ring_capacity = 64 * 1024);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// The calling thread's ring, created on first use. A one-entry
  /// thread_local cache keyed by collector id makes the steady state a
  /// pair of relaxed loads; the mutex is only paid on first contact.
  TraceRing& ring();

  /// All rings' events merged and sorted by begin timestamp.
  std::vector<TraceEvent> snapshot() const;

  std::uint64_t total_recorded() const;
  std::size_t ring_count() const;
  /// Spans overwritten before any snapshot could see them: per ring,
  /// max(0, recorded - capacity), summed. Monotone; feeds the
  /// `crfs.trace.dropped_spans` self-health gauge.
  std::uint64_t dropped() const;

  /// Interns a string (e.g. a file path) into collector-lifetime stable
  /// storage so TraceEvent::tag can outlive the FileEntry that named it.
  /// Deduplicated; mutex-guarded (cold path — once per run completion).
  const char* intern(const std::string& s);

 private:
  std::uint64_t id_;
  std::size_t capacity_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::deque<std::unique_ptr<TraceRing>> rings_;
  std::unordered_map<std::thread::id, TraceRing*> by_thread_;
  std::deque<std::string> interned_;
  std::unordered_map<std::string, const char*> intern_index_;
};

/// RAII span: stamps begin on construction, records on destruction.
/// No-op (no clock read) when the collector is disabled.
class TraceSpan {
 public:
  TraceSpan(TraceCollector& collector, const char* name)
      : collector_(collector.enabled() ? &collector : nullptr),
        name_(name),
        start_ns_(collector_ ? now_ns() : 0) {}

  ~TraceSpan() {
    if (collector_ != nullptr) {
      collector_->ring().record(name_, start_ns_, now_ns() - start_ns_, trace_id_, tag_);
    }
  }

  /// Attaches a causal chain id, discovered after construction (e.g. the
  /// id of the chunk a write() call landed in). Plain stores — safe to
  /// call unconditionally on the hot path.
  void set_trace_id(std::uint64_t id) { trace_id_ = id; }
  void set_tag(const char* tag) { tag_ = tag; }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceCollector* collector_;
  const char* name_;
  std::uint64_t start_ns_;
  std::uint64_t trace_id_ = 0;
  const char* tag_ = "";
};

/// Unbounded single-threaded span log — the simulator's sink, recording
/// the same TraceEvent schema in virtual time (src/sim/engine.h).
class EventLog {
 public:
  void record(const char* name, std::uint32_t tid, std::uint64_t ts_ns,
              std::uint64_t dur_ns, std::uint64_t trace_id = 0,
              const char* tag = "") {
    events_.push_back(TraceEvent{name, tid, ts_ns, dur_ns, trace_id, tag});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace crfs::obs
