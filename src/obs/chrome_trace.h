// Chrome trace_event JSON export for obs::TraceEvent spans.
//
// The emitted file is the "JSON Object Format" of the Trace Event spec:
//   {"traceEvents":[{"name":"pwrite","cat":"crfs","ph":"X","pid":1,
//                    "tid":3,"ts":12.345,"dur":4.2}, ...],
//    "displayTimeUnit":"ms"}
// Load it in chrome://tracing or https://ui.perfetto.dev. Timestamps are
// microseconds (the spec's unit) with nanosecond decimals preserved.
// Real runs (Crfs::export_trace) and simulated runs (Simulation trace)
// both emit this schema, so the two are directly comparable.
#pragma once

#include <span>
#include <string>

#include "common/result.h"
#include "obs/trace.h"

namespace crfs::obs {

/// Renders events as a Chrome trace JSON document.
std::string to_chrome_json(std::span<const TraceEvent> events);

/// Writes to_chrome_json(events) to `path` (truncating).
Status write_chrome_trace(const std::string& path, std::span<const TraceEvent> events);

}  // namespace crfs::obs
