#include "obs/chrome_trace.h"

#include <cerrno>
#include <cstdio>

namespace crfs::obs {

namespace {

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

std::string to_chrome_json(std::span<const TraceEvent> events) {
  std::string out = "{\"traceEvents\":[";
  char buf[192];
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ",";
    first = false;
    // ts/dur are microseconds in the trace_event spec; keep ns precision
    // in the decimals.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"crfs\",\"ph\":\"X\",\"pid\":1,"
                  "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                  ev.name != nullptr ? ev.name : "", ev.tid,
                  static_cast<double>(ev.ts_ns) / 1e3,
                  static_cast<double>(ev.dur_ns) / 1e3);
    out += buf;
    // Causal context rides in "args" (Perfetto surfaces it in the span
    // detail pane and `trace_id` is query-able), emitted only when set so
    // untagged spans keep the compact schema.
    const bool has_tag = ev.tag != nullptr && ev.tag[0] != '\0';
    if (ev.trace_id != 0 || has_tag) {
      out += ",\"args\":{";
      if (ev.trace_id != 0) {
        std::snprintf(buf, sizeof(buf), "\"trace_id\":%llu",
                      static_cast<unsigned long long>(ev.trace_id));
        out += buf;
      }
      if (has_tag) {
        if (ev.trace_id != 0) out += ",";
        out += "\"file\":\"";
        append_escaped(out, ev.tag);
        out += "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status write_chrome_trace(const std::string& path, std::span<const TraceEvent> events) {
  const std::string json = to_chrome_json(events);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Error{errno, "cannot open trace output: " + path};
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Error{EIO, "short write to trace output: " + path};
  }
  return {};
}

}  // namespace crfs::obs
