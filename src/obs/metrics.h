// crfs::obs metrics: low-overhead counters, gauges, and log2-bucketed
// latency histograms for the CRFS write pipeline.
//
// Design contract (docs/OBSERVABILITY.md):
//   * The hot path touches only lock-free atomics with relaxed ordering —
//     a Counter::add is one fetch_add, a LatencyHistogram::record is three
//     plus a CAS loop for the max. No locks, no allocation.
//   * Registration (Registry::counter/gauge/histogram) is the cold path:
//     it takes a mutex and hands back a reference that stays valid for the
//     Registry's lifetime, so instrumented code resolves names once at
//     mount time and never again.
//   * snapshot() observes concurrent writers without stopping them; the
//     numbers are per-metric consistent (monotone, never torn) but not a
//     cross-metric atomic cut — fine for monitoring, documented as such.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace crfs::obs {

/// Nanoseconds on the monotonic clock; the time base of every latency
/// histogram and trace event in this subsystem.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Human-readable duration: "812 ns", "13.4 us", "2.07 ms", "1.31 s".
std::string format_ns(double ns);

/// Monotonic event/byte counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous signed level (occupancy, depth).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Point-in-time copy of a LatencyHistogram, safe to do math on.
struct HistogramSnapshot {
  static constexpr int kBuckets = 65;  // bucket i covers [2^(i-1), 2^i - 1]; 0 holds value 0

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  double mean() const { return count ? static_cast<double>(sum) / count : 0.0; }
  /// Approximate quantile (q in [0,1]) by linear interpolation inside the
  /// rank's bucket. Exact to within one log2 bucket.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
};

/// Log2-bucketed histogram for latency (ns) or any uint64 distribution.
/// record() is lock-free; snapshot() can run concurrently with writers.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;

  void record(std::uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (value > prev &&
           !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  HistogramSnapshot snapshot() const;

  /// Bucket 0 holds only the value 0; bucket i >= 1 holds [2^(i-1), 2^i - 1].
  static int bucket_index(std::uint64_t value) { return std::bit_width(value); }
  static std::uint64_t bucket_lo(int i) { return i == 0 ? 0 : std::uint64_t{1} << (i - 1); }
  static std::uint64_t bucket_hi(int i) {
    if (i == 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Named home for a pipeline's metrics. Naming schema (dot-separated,
/// "_ns" suffix for nanosecond histograms): see docs/OBSERVABILITY.md.
class Registry {
 public:
  /// Get-or-create; the returned reference lives as long as the Registry.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  /// Callback gauge, sampled at snapshot time (e.g. pool occupancy read
  /// straight from the BufferPool). `fn` must stay valid and thread-safe.
  void gauge_fn(const std::string& name, std::function<std::int64_t()> fn);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

    /// ASCII tables (common/table.h) — counters/gauges, then a latency
    /// table with count / p50 / p95 / p99 / max per histogram.
    std::string render_table() const;
    /// {"counters":{...},"gauges":{...},"histograms":{name:{count,p50_ns,...}}}
    std::string to_json() const;
  };

  /// Deterministically ordered (by name) point-in-time view.
  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::function<std::int64_t()>> gauge_fns_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace crfs::obs
