// json_lite: a minimal recursive-descent JSON parser, header-only.
//
// Exists so tests and `crfsctl trace` can parse the Chrome trace / stats
// JSON this repo emits back into a typed value and schema-check it,
// without taking a JSON library dependency. Supports the full JSON value
// grammar except \uXXXX escapes beyond the BMP-passthrough below; numbers
// parse as double. Not a general-purpose parser: inputs are our own
// well-formed output, errors just return nullopt.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace crfs::obs::json {

struct Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::shared_ptr<Array> array;     // shared_ptr: Value stays copyable while
  std::shared_ptr<Object> object;   // the struct is still incomplete above

  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }
  bool is_number() const { return type == Type::Number; }
  bool is_string() const { return type == Type::String; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* get(const std::string& key) const {
    if (type != Type::Object || object == nullptr) return nullptr;
    auto it = object->find(key);
    return it == object->end() ? nullptr : &it->second;
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> parse() {
    auto v = parse_value();
    skip_ws();
    if (!v.has_value() || pos_ != text_.size()) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) return std::nullopt;
            out += '?';  // placeholder; we never emit non-ASCII
            pos_ += 4;
            break;
          default: return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    Value v;
    if (c == '{') {
      ++pos_;
      v.type = Value::Type::Object;
      v.object = std::make_shared<Object>();
      skip_ws();
      if (consume('}')) return v;
      for (;;) {
        auto key = parse_string();
        if (!key.has_value() || !consume(':')) return std::nullopt;
        auto member = parse_value();
        if (!member.has_value()) return std::nullopt;
        (*v.object)[*key] = std::move(*member);
        if (consume(',')) continue;
        if (consume('}')) return v;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      v.type = Value::Type::Array;
      v.array = std::make_shared<Array>();
      skip_ws();
      if (consume(']')) return v;
      for (;;) {
        auto item = parse_value();
        if (!item.has_value()) return std::nullopt;
        v.array->push_back(std::move(*item));
        if (consume(',')) continue;
        if (consume(']')) return v;
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto s = parse_string();
      if (!s.has_value()) return std::nullopt;
      v.type = Value::Type::String;
      v.string = std::move(*s);
      return v;
    }
    if (c == 't') {
      if (!literal("true")) return std::nullopt;
      v.type = Value::Type::Bool;
      v.boolean = true;
      return v;
    }
    if (c == 'f') {
      if (!literal("false")) return std::nullopt;
      v.type = Value::Type::Bool;
      return v;
    }
    if (c == 'n') {
      if (!literal("null")) return std::nullopt;
      return v;
    }
    // Number.
    char* end = nullptr;
    const double num = std::strtod(text_.data() + pos_, &end);
    if (end == text_.data() + pos_) return std::nullopt;
    pos_ = static_cast<std::size_t>(end - text_.data());
    v.type = Value::Type::Number;
    v.number = num;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses `text`; nullopt on any syntax error or trailing garbage.
inline std::optional<Value> parse(std::string_view text) {
  return detail::Parser(text).parse();
}

}  // namespace crfs::obs::json
