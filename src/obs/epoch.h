// crfs::obs epoch attribution: ties pipeline bytes back to the checkpoint
// they belonged to (docs/OBSERVABILITY.md "Epoch ledger").
//
// The paper evaluates CRFS by whole-checkpoint numbers — checkpoint time,
// aggregation ratio, effective backend bandwidth — but a mount-global
// registry cannot answer "how did checkpoint #12 do?". The EpochTracker
// groups files written in the same checkpoint session into an epoch and
// emits one EpochRecord per finished epoch into a bounded ledger.
//
// Grouping, in priority order:
//   1. explicit markers — Crfs::epoch_begin/epoch_end (also reachable via
//      the `.crfs_epoch` control file and `crfsctl report`); an explicit
//      epoch is never auto-rotated;
//   2. a `.ckpt`-style path heuristic: files whose name carries a
//      generation number right after a "ckpt" token ("rank0.ckpt.12",
//      "img_ckpt-12") share the epoch; a different generation starts a
//      new one;
//   3. an open/close correlation window: a writable open that arrives
//      after `gap_ns` of open/close quiet (with no file of the epoch
//      still open) starts a new epoch.
//
// Hot-path contract: the write path never touches the tracker. Crfs::open
// resolves the epoch once (cold) and caches a shared_ptr<EpochState> in
// the FileEntry; write() and the IO workers only do relaxed fetch_adds on
// that state. WriteJob carries the shared_ptr so attribution stays safe
// even if the epoch rotates (or the ledger drops the record) while chunks
// are still in flight.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"

namespace crfs::obs {

/// Live accumulator of one (possibly still open) epoch. All counters are
/// relaxed atomics: app threads bump bytes/app_writes/chunks/pool_stall,
/// IO threads bump backend_writes/durable_bytes/lag/residency; nothing
/// here orders anything.
class EpochState {
 public:
  EpochState(std::uint64_t eid, std::string elabel, std::string ekey,
             std::uint64_t estart_ns, bool eexplicit)
      : id(eid),
        label(std::move(elabel)),
        ckpt_key(std::move(ekey)),
        start_ns(estart_ns),
        explicit_marker(eexplicit) {}

  const std::uint64_t id;
  const std::string label;
  const std::string ckpt_key;  ///< heuristic group key; "" when none
  const std::uint64_t start_ns;
  const bool explicit_marker;

  std::atomic<std::uint64_t> files{0};         ///< distinct paths opened
  std::atomic<std::uint64_t> bytes{0};         ///< app bytes acknowledged
  std::atomic<std::uint64_t> app_writes{0};    ///< write() calls
  std::atomic<std::uint64_t> chunks{0};        ///< chunks enqueued
  std::atomic<std::uint64_t> backend_writes{0};///< backend pwrite/pwritev calls
  std::atomic<std::uint64_t> durable_bytes{0}; ///< bytes landed on the backend
  std::atomic<std::uint64_t> pool_stall_ns{0}; ///< app time blocked on the pool
  std::atomic<std::uint64_t> queue_residency_ns{0};  ///< sum enqueue->dequeue
  std::atomic<std::uint64_t> durability_lag_sum_ns{0};
  std::atomic<std::uint64_t> durability_lag_max_ns{0};
  std::atomic<std::uint64_t> io_errors{0};
  // Critical-path stage times (docs/OBSERVABILITY.md "Critical-path
  // attribution"): together with pool_stall_ns and queue_residency_ns
  // these decompose where the epoch's chunks spent their lifetime.
  std::atomic<std::uint64_t> copy_ns{0};        ///< write() minus pool wait
  std::atomic<std::uint64_t> submit_wait_ns{0}; ///< dequeue -> engine submit
  std::atomic<std::uint64_t> device_ns{0};      ///< engine submit -> durable
  std::atomic<std::uint64_t> barrier_ns{0};     ///< close/fsync drain wait

  /// IO-thread hook: one chunk of this epoch became durable.
  void record_chunk_durable(std::uint64_t chunk_bytes, std::uint64_t lag_ns,
                            std::uint64_t residency_ns) {
    durable_bytes.fetch_add(chunk_bytes, std::memory_order_relaxed);
    durability_lag_sum_ns.fetch_add(lag_ns, std::memory_order_relaxed);
    queue_residency_ns.fetch_add(residency_ns, std::memory_order_relaxed);
    std::uint64_t prev = durability_lag_max_ns.load(std::memory_order_relaxed);
    while (lag_ns > prev && !durability_lag_max_ns.compare_exchange_weak(
                                prev, lag_ns, std::memory_order_relaxed)) {
    }
  }
};

/// Immutable summary of one epoch: the paper's per-checkpoint numbers.
struct EpochRecord {
  std::uint64_t id = 0;
  std::string label;
  bool explicit_marker = false;
  bool open = false;  ///< true for a snapshot of the still-running epoch
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;

  std::uint64_t files = 0;
  std::uint64_t bytes = 0;
  std::uint64_t app_writes = 0;
  std::uint64_t chunks = 0;
  std::uint64_t backend_writes = 0;
  std::uint64_t durable_bytes = 0;
  std::uint64_t pool_stall_ns = 0;
  std::uint64_t queue_residency_ns = 0;
  std::uint64_t durability_lag_sum_ns = 0;
  std::uint64_t durability_lag_max_ns = 0;
  std::uint64_t io_errors = 0;
  std::uint64_t copy_ns = 0;
  std::uint64_t submit_wait_ns = 0;
  std::uint64_t device_ns = 0;
  std::uint64_t barrier_ns = 0;

  // Tiered staging (docs/PERFORMANCE.md "Tiered staging"): filled in
  // after finalize by attach_drain() when the epoch's drain unit becomes
  // remote-durable. All zero for non-tiered mounts or not-yet-drained
  // epochs.
  std::uint64_t drained_bytes = 0;  ///< staged bytes landed on the remote
  std::uint64_t drain_ns = 0;       ///< wall time the drain copy took
  std::uint64_t drain_end_ns = 0;   ///< when the epoch became remote-durable

  double wall_seconds() const {
    return end_ns > start_ns ? static_cast<double>(end_ns - start_ns) / 1e9 : 0.0;
  }
  /// App writes folded into one backend call (paper's aggregation ratio).
  double aggregation_ratio() const {
    return backend_writes > 0
               ? static_cast<double>(app_writes) / static_cast<double>(backend_writes)
               : 0.0;
  }
  /// Durable bytes over the epoch's wall time.
  double effective_bw() const {
    const double w = wall_seconds();
    return w > 0.0 ? static_cast<double>(durable_bytes) / w : 0.0;
  }
  double mean_durability_lag_ns() const {
    return chunks > 0 ? static_cast<double>(durability_lag_sum_ns) /
                            static_cast<double>(chunks)
                      : 0.0;
  }
  /// Drained bytes over the drain copy's wall time (remote-tier BW).
  double drain_bw() const {
    return drain_ns > 0
               ? static_cast<double>(drained_bytes) / (static_cast<double>(drain_ns) / 1e9)
               : 0.0;
  }
  /// Seal -> remote-durable lag of this epoch (0 until drained).
  std::uint64_t drain_lag_ns() const {
    return drain_end_ns > end_ns ? drain_end_ns - end_ns : 0;
  }

  /// One JSON object; keys are part of the stats_json schema contract
  /// (tests/test_crfsctl_cli.cpp golden key-set).
  std::string to_json() const;
};

/// JSON array of records (stats_json / postmortem embedding).
std::string epochs_to_json(const std::vector<EpochRecord>& records);

/// Prometheus text exposition of the finished epochs as labelled series
/// (crfs_epoch_bytes{epoch="3",label="ckpt:12"} ...). Labels go through
/// prometheus_label_value() escaping — epoch labels can carry arbitrary
/// user strings.
std::string epochs_to_prometheus(const std::vector<EpochRecord>& records);

class EpochTracker {
 public:
  struct Options {
    /// Open/close quiet gap after which the next writable open starts a
    /// new epoch (heuristic 3 above).
    std::uint64_t gap_ns = 500'000'000;
    /// Finished records kept (oldest evicted); total_finalized() keeps
    /// counting so evictions are detectable.
    std::size_t ledger_capacity = 64;
  };

  /// All registry metrics are optional: pass nullptr for a tracker that
  /// only keeps the ledger. With a registry, finalize bumps
  /// crfs.epoch.{completed,bytes,files,chunks} and maintains the
  /// crfs.epoch.open gauge (current epoch id, 0 when none).
  EpochTracker(Options opts, Registry* registry);

  /// Writable open of `path` at `now_ns`: rotates the epoch if the
  /// heuristics say so, then returns the (possibly fresh) epoch state the
  /// caller caches on the file. Single clock-free mutex; cold path only.
  std::shared_ptr<EpochState> on_open(const std::string& path, std::uint64_t now_ns);

  /// Close of a writable handle opened through on_open.
  void on_close(const std::string& path, std::uint64_t now_ns);

  /// Explicit epoch marker: finalizes any active epoch and opens a new
  /// one that only end()/begin() can close (no auto-rotation).
  void begin(std::string label, std::uint64_t now_ns);

  /// Finalizes the active epoch (explicit or automatic); no-op when idle.
  void end(std::uint64_t now_ns);

  /// Unmount: finalize whatever is still open.
  void finalize_open(std::uint64_t now_ns);

  /// Invoked with every finalized EpochRecord, OUTSIDE the tracker lock
  /// (safe to call back into the tracker or into a backend). The mount
  /// wires this to TieredBackend::seal_epoch so a finalized epoch seals
  /// its drain unit. Set before concurrent use.
  using FinalizeFn = std::function<void(const EpochRecord&)>;
  void set_finalize_listener(FinalizeFn fn);

  /// Amends the ledger row of epoch `id` with its drain outcome (called
  /// from the tier's drain thread once the epoch is remote-durable;
  /// accumulates, so a re-drained epoch adds up). No-op when the row was
  /// evicted or `id` is unknown.
  void attach_drain(std::uint64_t id, std::uint64_t drained_bytes,
                    std::uint64_t drain_ns, std::uint64_t drain_end_ns);

  /// Finished records, oldest first.
  std::vector<EpochRecord> records() const;

  /// Snapshot of the still-running epoch, if any (end_ns = now_ns,
  /// open = true).
  std::optional<EpochRecord> open_epoch(std::uint64_t now_ns) const;

  /// Epochs finalized ever (>= records().size()).
  std::uint64_t total_finalized() const;

  /// The `.ckpt` generation heuristic, exposed for tests: digits directly
  /// after a "ckpt" token (separators ._- allowed) -> "ckpt:<digits>";
  /// "" when the path carries no generation number.
  static std::string ckpt_key(const std::string& path);

  /// Runtime re-arm of the quiet-gap threshold (knob epoch_gap_ms);
  /// applies to the next rotation check. Thread-safe.
  void set_gap_ns(std::uint64_t gap_ns) {
    gap_ns_.store(gap_ns, std::memory_order_relaxed);
  }
  std::uint64_t gap_ns() const { return gap_ns_.load(std::memory_order_relaxed); }

 private:
  EpochRecord snapshot_locked(const EpochState& st, std::uint64_t end_ns,
                              bool open) const;
  /// Returns the finalized record (if there was an active epoch) so the
  /// caller can fire the finalize listener after dropping mu_.
  std::optional<EpochRecord> finalize_locked(std::uint64_t end_ns);
  /// Fires the listener for `rec` outside mu_ (no-op for nullopt).
  void notify_finalized(const std::optional<EpochRecord>& rec);
  void start_locked(std::string label, std::string key, std::uint64_t now_ns,
                    bool explicit_marker);

  const Options opts_;
  std::atomic<std::uint64_t> gap_ns_;  ///< runtime-tunable copy of opts_.gap_ns
  Counter* c_completed_ = nullptr;
  Counter* c_bytes_ = nullptr;
  Counter* c_files_ = nullptr;
  Counter* c_chunks_ = nullptr;
  Gauge* g_open_ = nullptr;

  mutable std::mutex mu_;
  std::shared_ptr<EpochState> active_;
  std::unordered_set<std::string> active_paths_;  ///< distinct files of active_
  unsigned open_handles_ = 0;   ///< writable handles of active_ still open
  std::uint64_t last_event_ns_ = 0;  ///< last open/close seen
  std::uint64_t next_id_ = 1;
  std::uint64_t finalized_total_ = 0;
  std::deque<EpochRecord> ledger_;
  FinalizeFn finalize_listener_;
};

}  // namespace crfs::obs
