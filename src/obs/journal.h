// crfs::obs durable telemetry journal: append-only, CRC32-framed, segment-
// rotated record of the mount's telemetry plane (docs/OBSERVABILITY.md
// "Durable journal").
//
// Everything PR 1-8 built (Sampler ring, events, epoch ledger, slow
// exemplars) is in-process and volatile — the Sampler keeps about a minute
// of frames and all of it dies with the process. The Journal persists those
// records as they happen, so `crfsctl timeline` and `crfsctl slo` can
// answer "was durability lag degrading for the last hour before the crash?"
// from the on-disk segments of a dead mount.
//
// Frame format (little-endian, 24-byte header + payload):
//
//   u32 magic   'CRFJ' (0x4A465243)
//   u16 version (1)
//   u16 type    FrameType
//   u64 ts_ns   record timestamp (monotonic or virtual ns)
//   u32 len     payload length in bytes
//   u32 crc     CRC32 (IEEE, reflected) of the payload bytes
//
// The payload is a self-describing JSON object (the same to_json renderings
// the live surfaces use), so segments stay debuggable with nothing but
// `strings`. The CRC is what makes a SIGKILL recoverable: the offline
// JournalReader accepts frames until the first short/corrupt one and
// reports the tail as torn — at most one partially-written frame is lost.
//
// Write-path contract: append() serializes into an in-memory pending buffer
// under a mutex and is only called from cold paths (the Sampler tick, the
// event listener). Disk IO happens in flush(), driven either by the
// background flusher thread (start(); the real mount) or by explicit
// tick(now_ns) calls (the simulator — no thread, so replays stay
// deterministic). Segments rotate at segment_bytes and the oldest are
// unlinked once the directory exceeds max_bytes; every segment begins with
// a fresh kMeta frame so retention never strips the mount config from what
// remains.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace crfs::obs {

/// Journal frame types. Values are on-disk format; append only.
enum class FrameType : std::uint16_t {
  kMeta = 0,    ///< mount identity + config + SLO targets (head of every segment)
  kSample = 1,  ///< compact per-tick telemetry frame (journal_sample_json)
  kEvent = 2,   ///< health/controller Event::to_json
  kEpoch = 3,   ///< finalized EpochRecord::to_json
  kSlow = 4,    ///< SlowExemplar::to_json
};

/// Fixed-size frame header constants (see format comment above).
inline constexpr std::uint32_t kJournalMagic = 0x4A465243;  // "CRFJ"
inline constexpr std::uint16_t kJournalVersion = 1;
inline constexpr std::size_t kJournalHeaderBytes = 24;

struct JournalOptions {
  /// Directory the segments live in (created if missing). By convention
  /// the mount wiring passes `<dir>/.crfs/journal`.
  std::string dir;
  /// Rotate to a new segment once the current one crosses this size.
  std::size_t segment_bytes = 1u << 20;  // 1 MiB
  /// Unlink oldest segments once the directory total crosses this bound.
  std::size_t max_bytes = 16u << 20;  // 16 MiB
  /// Background flusher cadence (start(); ignored for tick()-driven use).
  unsigned flush_ms = 200;
  /// fsync the current segment at most this often; 0 = never fsync
  /// (rotation still fsyncs the finished segment before closing it).
  /// Runtime-tunable via set_fsync_ms (knob `journal_fsync_ms`).
  unsigned fsync_ms = 1000;
};

/// Append-only segmented journal writer. Thread-safe; one instance per
/// mount. Registry metrics (optional): crfs.journal.appends / bytes /
/// frames dropped on IO error (errors) / segments / fsyncs.
class Journal {
 public:
  /// `registry` may be nullptr (no metrics). Construction creates the
  /// directory and opens the first segment; ok() reports whether that
  /// worked (a journal that failed to open swallows appends).
  Journal(JournalOptions opts, Registry* registry);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  bool ok() const { return ok_; }
  const std::string& dir() const { return opts_.dir; }
  /// errno-style description when !ok().
  const std::string& error() const { return error_; }

  /// Installs the meta payload written as the first frame of every
  /// segment (and immediately appends it to the current one). Call once
  /// right after construction, before any other append.
  void set_meta(std::string meta_json, std::uint64_t ts_ns);

  /// Queues one frame. Cold-path cost: mutex + buffer append.
  void append(FrameType type, std::uint64_t ts_ns, std::string_view payload);

  /// Flush pending frames to the current segment, rotating/retiring
  /// segments as needed; fsyncs when `force_fsync` or the fsync cadence
  /// expired at `now_ns`.
  void flush(std::uint64_t now_ns, bool force_fsync = false);

  /// Virtual-time driver (simulator) and the thread's loop body: flush,
  /// honoring the fsync cadence against `now_ns`.
  void tick(std::uint64_t now_ns) { flush(now_ns, false); }

  /// Starts the background flusher thread (real mounts only).
  void start();
  /// Final flush + fsync, then joins the thread. Idempotent.
  void stop();

  /// Runtime re-arm of the fsync cadence (knob plane). 0 disables.
  void set_fsync_ms(unsigned ms) { fsync_ms_.store(ms, std::memory_order_relaxed); }
  unsigned fsync_ms() const { return fsync_ms_.load(std::memory_order_relaxed); }

  std::uint64_t appends() const { return appends_.load(std::memory_order_relaxed); }
  std::uint64_t bytes_written() const { return bytes_.load(std::memory_order_relaxed); }
  std::uint64_t segments_created() const { return segments_.load(std::memory_order_relaxed); }
  std::uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }
  std::uint64_t io_errors() const { return errors_.load(std::memory_order_relaxed); }

  /// {"enabled":true,"dir":...,"segment_bytes":...,"max_bytes":...,
  ///  "fsync_ms":...,"appends":...,"bytes":...,"segments":...,
  ///  "fsyncs":...,"errors":...} — the stats_json/postmortem "journal" row.
  std::string to_json() const;

 private:
  void thread_main();
  bool open_segment_locked();   // opens seg-<next index>, writes meta frame
  void rotate_locked();         // fsync+close current, open next, retire old
  void enforce_retention_locked();
  bool write_all_locked(const void* data, std::size_t size);

  const JournalOptions opts_;
  std::atomic<unsigned> fsync_ms_;

  std::atomic<std::uint64_t> appends_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> segments_{0};
  std::atomic<std::uint64_t> fsyncs_{0};
  std::atomic<std::uint64_t> errors_{0};
  Counter* c_appends_ = nullptr;
  Counter* c_bytes_ = nullptr;
  Counter* c_segments_ = nullptr;
  Counter* c_fsyncs_ = nullptr;
  Counter* c_errors_ = nullptr;

  mutable std::mutex mu_;
  bool ok_ = false;
  std::string error_;
  std::string meta_json_;
  std::uint64_t meta_ts_ns_ = 0;
  std::string pending_;              ///< serialized frames awaiting flush
  int fd_ = -1;                      ///< current segment
  std::uint64_t seg_index_ = 0;      ///< index of the current segment
  std::size_t seg_size_ = 0;         ///< bytes written to the current segment
  std::deque<std::pair<std::uint64_t, std::size_t>> live_;  ///< (index, size) incl. current
  std::uint64_t last_fsync_ns_ = 0;

  std::thread thread_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;
};

/// One decoded journal frame.
struct JournalRecord {
  FrameType type = FrameType::kMeta;
  std::uint64_t ts_ns = 0;
  std::uint64_t seq = 0;  ///< 0-based decode order across all segments
  std::string payload;
};

/// Offline reader: decodes every segment in index order, verifying magic +
/// CRC per frame. Needs no cooperation from (and never blocks) a live
/// writer; works on the directory a SIGKILLed mount left behind.
class JournalReader {
 public:
  struct Result {
    bool ok = false;           ///< directory existed and held >= 1 segment
    std::string error;         ///< why !ok
    std::string meta_json;     ///< payload of the newest kMeta frame seen
    std::vector<JournalRecord> records;  ///< decode order, kMeta excluded
    std::size_t segments = 0;  ///< segments decoded
    bool torn_tail = false;    ///< a segment ended in a short/corrupt frame
    std::uint64_t torn_bytes = 0;  ///< bytes abandoned at torn tails
  };

  /// Reads `<dir>/seg-*.crfsj`. A torn tail is normal after SIGKILL and
  /// does not clear `ok`; every frame before it is returned.
  static Result read_dir(const std::string& dir);
};

/// Serializes one frame (header + payload) onto `out`. Exposed for the
/// reader/writer round-trip tests.
void append_frame(std::string& out, FrameType type, std::uint64_t ts_ns,
                  std::string_view payload);

/// Compact per-tick telemetry payload for kSample frames: cumulative
/// write/read totals (timeline rates come from deltas between frames) plus
/// the per-window SLO inputs (`crfsctl slo` replays burn rates offline
/// from exactly these). Keys: seq, ts_ns, dt_ns, pwrite_bytes, pwrites,
/// queue_depth, free_chunks, lag_p99_ns, lag_n, stall_ratio_ppm, stall_n,
/// ttfb_p99_ns, ttfb_n.
struct Sample;    // sampler.h
struct SloInput;  // slo.h
std::string journal_sample_json(const Sample& s, const SloInput& in);

}  // namespace crfs::obs
