#include "obs/slow_store.h"

#include <cstdio>

namespace crfs::obs {

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_u64(std::string& out, const char* key, std::uint64_t v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

}  // namespace

std::string SlowExemplar::to_json() const {
  std::string out = "{\"trace_id\":" + std::to_string(trace_id);
  out += ",\"kind\":";
  append_json_string(out, kind);
  out += ",\"path\":";
  append_json_string(out, path);
  append_u64(out, "offset", offset);
  append_u64(out, "len", len);
  append_u64(out, "born_ns", born_ns);
  append_u64(out, "enqueue_ns", enqueue_ns);
  append_u64(out, "dequeue_ns", dequeue_ns);
  append_u64(out, "submit_ns", submit_ns);
  append_u64(out, "durable_ns", durable_ns);
  append_u64(out, "pool_stall_ns", pool_stall_ns);
  append_u64(out, "fill_ns", fill_ns);
  append_u64(out, "queue_ns", queue_ns);
  append_u64(out, "submit_wait_ns", submit_wait_ns);
  append_u64(out, "device_ns", device_ns);
  append_u64(out, "total_lag_ns", total_lag_ns);
  append_u64(out, "queue_depth", queue_depth);
  append_u64(out, "free_chunks", free_chunks);
  append_u64(out, "knob_generation", knob_generation);
  out += ",\"engine\":";
  append_json_string(out, engine);
  out += "}";
  return out;
}

SlowStore::SlowStore(std::size_t capacity, std::uint64_t threshold_ns)
    : capacity_(capacity > 0 ? capacity : 1), threshold_ns_(threshold_ns) {}

void SlowStore::capture(SlowExemplar ex) {
  std::lock_guard lock(mu_);
  captured_.fetch_add(1, std::memory_order_relaxed);
  ring_.push_back(std::move(ex));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<SlowExemplar> SlowStore::snapshot() const {
  std::lock_guard lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::size_t SlowStore::size() const {
  std::lock_guard lock(mu_);
  return ring_.size();
}

std::string SlowStore::to_json() const {
  std::string out =
      "{\"threshold_ms\":" + std::to_string(threshold_ns() / 1'000'000);
  out += ",\"capacity\":" + std::to_string(capacity_);
  out += ",\"captured\":" + std::to_string(captured());
  out += ",\"exemplars\":[";
  bool first = true;
  for (const SlowExemplar& ex : snapshot()) {
    if (!first) out += ",";
    first = false;
    out += ex.to_json();
  }
  out += "]}";
  return out;
}

}  // namespace crfs::obs
