#include "obs/health.h"

#include <cstdio>

namespace crfs::obs {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kCritical: return "critical";
  }
  return "unknown";
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

std::string Event::to_json() const {
  std::string out = "{\"severity\":\"";
  out += severity_name(severity);
  out += "\",\"rule\":\"";
  append_json_escaped(out, rule);
  out += "\",\"message\":\"";
  append_json_escaped(out, message);
  out += "\"";
  char num[96];
  std::snprintf(num, sizeof(num), ",\"value\":%.3f,\"threshold\":%.3f,\"ts_ns\":%llu}",
                value, threshold, static_cast<unsigned long long>(ts_ns));
  out += num;
  return out;
}

std::string events_to_json(const std::vector<Event>& events) {
  std::string out = "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ",";
    out += events[i].to_json();
  }
  out += "]";
  return out;
}

EventBuffer::EventBuffer(std::size_t capacity) : capacity_(capacity > 0 ? capacity : 1) {}

void EventBuffer::push(Event ev) {
  Event copy_for_listener;
  const bool notify = static_cast<bool>(listener_);
  if (notify) copy_for_listener = ev;
  {
    std::lock_guard lock(mu_);
    events_.push_back(std::move(ev));
    while (events_.size() > capacity_) events_.pop_front();
    total_ += 1;
  }
  // Outside the lock: the listener may snapshot() this buffer.
  if (notify) listener_(copy_for_listener);
}

std::vector<Event> EventBuffer::snapshot() const {
  std::lock_guard lock(mu_);
  return {events_.begin(), events_.end()};
}

std::uint64_t EventBuffer::total() const {
  std::lock_guard lock(mu_);
  return total_;
}

std::size_t EventBuffer::size() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

void HealthMonitor::evaluate(const Sample& s) {
  // -- pool_starvation ----------------------------------------------------
  const auto free_chunks = s.gauge("crfs.pool.free_chunks");
  if (free_chunks.has_value() && *free_chunks == 0) {
    starved_run_ += 1;
    if (!starvation_fired_ && starved_run_ >= cfg_.starvation_samples) {
      starvation_fired_ = true;
      out_.push(Event{Severity::kWarning, "pool_starvation",
                      "buffer pool exhausted (free_chunks == 0) for " +
                          std::to_string(starved_run_) + " consecutive samples",
                      static_cast<double>(starved_run_),
                      static_cast<double>(cfg_.starvation_samples), s.ts_ns});
    }
  } else {
    starved_run_ = 0;
    starvation_fired_ = false;
  }

  // -- queue_stall --------------------------------------------------------
  // Depth > 0 with zero pwrite completions in the window: chunks are
  // queued but nothing is landing on the backend. The first frame has no
  // window (dt_ns == 0), so it never counts toward a stall.
  const auto depth = s.gauge("crfs.queue.depth");
  const Rate* pwrites = s.histogram_rate("crfs.io.pwrite_ns");
  const bool stalled = s.dt_ns > 0 && depth.has_value() && *depth > 0 &&
                       (pwrites == nullptr || pwrites->delta == 0);
  if (stalled) {
    stall_run_ += 1;
    if (!stall_fired_ && stall_run_ >= cfg_.stall_samples) {
      stall_fired_ = true;
      out_.push(Event{Severity::kCritical, "queue_stall",
                      "work queue depth " + std::to_string(*depth) +
                          " with zero pwrite completions for " +
                          std::to_string(stall_run_) + " consecutive samples",
                      static_cast<double>(stall_run_),
                      static_cast<double>(cfg_.stall_samples), s.ts_ns});
    }
  } else {
    stall_run_ = 0;
    stall_fired_ = false;
  }

  // -- slow_pwrite --------------------------------------------------------
  // The threshold is runtime-tunable (knob slow_pwrite_ms), so it is read
  // once per frame from the atomic rather than from the static config.
  const std::uint64_t slow_p99_ns = slow_pwrite_p99_ns();
  if (slow_p99_ns > 0) {
    const HistogramSnapshot* pwrite_hist = s.histogram("crfs.io.pwrite_ns");
    const double p99 = pwrite_hist != nullptr && pwrite_hist->count > 0
                           ? pwrite_hist->p99()
                           : 0.0;
    if (p99 > static_cast<double>(slow_p99_ns)) {
      if (!slow_fired_) {
        slow_fired_ = true;
        out_.push(Event{Severity::kWarning, "slow_pwrite",
                        "pwrite p99 " + format_ns(p99) + " above threshold " +
                            format_ns(static_cast<double>(slow_p99_ns)),
                        p99, static_cast<double>(slow_p99_ns), s.ts_ns});
      }
    } else {
      slow_fired_ = false;
    }
  }

  // -- error_burst --------------------------------------------------------
  // Window-scoped (not run-length): each window with >= threshold new
  // errors is its own burst, so no hysteresis state is needed.
  const Rate* errors = s.counter_rate("crfs.io.pwrite_errors");
  if (errors != nullptr && cfg_.error_burst > 0 && errors->delta >= cfg_.error_burst) {
    out_.push(Event{Severity::kCritical, "error_burst",
                    std::to_string(errors->delta) + " pwrite errors in " +
                        format_ns(static_cast<double>(s.dt_ns)) + " window",
                    static_cast<double>(errors->delta),
                    static_cast<double>(cfg_.error_burst), s.ts_ns});
  }
}

}  // namespace crfs::obs
