// crfs::obs tail-latency forensic store: bounded exemplar buffer of the
// slowest chunks' full causal chains.
//
// Aggregate histograms answer "how slow is the tail"; this answers "why
// was *this* chunk slow". When a chunk's durability lag (copy-in ->
// durable) or its backend write time crosses the configured threshold,
// the IO worker captures the chunk's complete stamp chain — born,
// enqueue, dequeue, submit (SQE build on uring / pwrite start on sync),
// durable (CQE reap / pwrite return) — plus the pipeline state it saw
// (queue depth, free chunks, knob generation) into a bounded ring.
//
// Cost contract: the threshold check on the completion path is one
// relaxed atomic load plus two compares; capture itself (mutex + string
// copy) only runs when the threshold actually fired, i.e. when the IO
// was already orders of magnitude slower than the bookkeeping.
//
// Deterministic mirror: the simulator feeds the same store from
// virtual-time stamps, so exemplars are byte-identical across replays
// (test_obs.cpp SimSlowExemplars*).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace crfs::obs {

/// One captured slow chunk: the full causal chain plus context. All
/// timestamps are absolute (monotonic or virtual) nanoseconds; the
/// derived stage durations are redundant but make the JSON directly
/// readable without arithmetic.
struct SlowExemplar {
  std::uint64_t trace_id = 0;      ///< causal chain id (matches trace spans)
  /// "write" (a checkpoint chunk's durability chain) or "read" (a restore
  /// read that blocked past the threshold — only path/offset/len and the
  /// device/total durations apply; the write-side stamps stay 0).
  std::string kind = "write";
  std::string path;                ///< backend file the chunk belongs to
  std::uint64_t offset = 0;        ///< chunk's file offset
  std::uint64_t len = 0;           ///< chunk fill in bytes
  // The stamp chain, copy-in -> durable.
  std::uint64_t born_ns = 0;       ///< first copy-in (Chunk::born_ns)
  std::uint64_t enqueue_ns = 0;    ///< WorkQueue push
  std::uint64_t dequeue_ns = 0;    ///< worker batch pop
  std::uint64_t submit_ns = 0;     ///< engine submit (SQE build / pwrite start)
  std::uint64_t durable_ns = 0;    ///< completion (CQE reap / pwrite return)
  // Derived stage durations (disjoint intervals of born..durable; the
  // fill window born->enqueue splits into pool stall + copy residency).
  std::uint64_t pool_stall_ns = 0; ///< writer blocked on the finite pool
  std::uint64_t fill_ns = 0;       ///< born -> enqueue (app-side residency)
  std::uint64_t queue_ns = 0;      ///< enqueue -> dequeue
  std::uint64_t submit_wait_ns = 0;///< dequeue -> submit
  std::uint64_t device_ns = 0;     ///< submit -> durable (the backend IO)
  std::uint64_t total_lag_ns = 0;  ///< born -> durable (durability lag)
  // Pipeline context at capture time.
  std::uint64_t queue_depth = 0;   ///< work-queue depth the worker saw
  std::uint64_t free_chunks = 0;   ///< buffer-pool free chunks
  std::uint64_t knob_generation = 0; ///< knob-plane generation (0 = none)
  std::string engine;              ///< io engine that carried the write

  std::string to_json() const;
};

/// Bounded, mutex-guarded exemplar ring. Oldest exemplars are dropped
/// once `capacity` is exceeded; `captured()` keeps the lifetime total.
class SlowStore {
 public:
  explicit SlowStore(std::size_t capacity = 32, std::uint64_t threshold_ns = 0);

  /// The trigger threshold; 0 disables capture. Relaxed atomic — safe to
  /// retune from the knob plane while IO workers are completing runs.
  void set_threshold_ns(std::uint64_t ns) {
    threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  std::uint64_t threshold_ns() const {
    return threshold_ns_.load(std::memory_order_relaxed);
  }

  /// The hot-side check: fires when either the durability lag or the
  /// backend write time crossed the threshold.
  bool over_threshold(std::uint64_t lag_ns, std::uint64_t pwrite_ns) const {
    const std::uint64_t t = threshold_ns();
    return t != 0 && (lag_ns >= t || pwrite_ns >= t);
  }

  void capture(SlowExemplar ex);

  std::vector<SlowExemplar> snapshot() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Exemplars ever captured (>= what the ring still holds).
  std::uint64_t captured() const {
    return captured_.load(std::memory_order_relaxed);
  }

  /// {"threshold_ms":N,"capacity":N,"captured":N,"exemplars":[...]}
  std::string to_json() const;

 private:
  std::size_t capacity_;
  std::atomic<std::uint64_t> threshold_ns_;
  std::atomic<std::uint64_t> captured_{0};
  mutable std::mutex mu_;
  std::deque<SlowExemplar> ring_;
};

}  // namespace crfs::obs
