#include "obs/controller.h"

#include <cstdio>

namespace crfs::obs {
namespace {

// Deterministic numeric rendering shared by the decision JSON and event
// messages: integral values print with no fraction, the rest with %g.
// Byte-identical logs across identical replays are part of the contract.
void append_num(std::string& out, double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  out += buf;
}

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

}  // namespace

std::string CtlDecision::to_json() const {
  std::string out = "{\"seq\":";
  append_num(out, static_cast<double>(seq));
  out += ",\"ts_ns\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(ts_ns));
  out += buf;
  out += ",\"source\":\"";
  append_escaped(out, source);
  out += "\",\"rule\":\"";
  append_escaped(out, rule);
  out += "\",\"knob\":\"";
  append_escaped(out, knob);
  out += "\",\"requested\":";
  append_num(out, requested);
  out += ",\"from\":";
  append_num(out, from);
  out += ",\"to\":";
  append_num(out, to);
  out += ",\"outcome\":\"";
  append_escaped(out, outcome);
  out += "\",\"reason\":\"";
  append_escaped(out, reason);
  out += "\",\"generation\":";
  append_num(out, static_cast<double>(generation));
  out += "}";
  return out;
}

std::string decisions_to_json(const std::vector<CtlDecision>& decisions) {
  std::string out = "[";
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    if (i > 0) out += ',';
    out += decisions[i].to_json();
  }
  out += "]";
  return out;
}

DecisionLog::DecisionLog(std::size_t capacity, Registry* metrics, EventBuffer* events)
    : capacity_(capacity == 0 ? 1 : capacity), metrics_(metrics), events_(events) {}

std::uint64_t DecisionLog::record(CtlDecision d) {
  CtlDecision copy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    total_ += 1;
    d.seq = total_;
    ring_.push_back(d);
    while (ring_.size() > capacity_) ring_.pop_front();
    copy = d;
  }
  if (metrics_ != nullptr) {
    metrics_->counter("crfs.ctl.decisions").add(1);
    if (copy.outcome == "applied") {
      metrics_->counter("crfs.ctl.applied").add(1);
    } else if (copy.outcome == "clamped") {
      metrics_->counter("crfs.ctl.clamped").add(1);
    } else {
      metrics_->counter("crfs.ctl.vetoed").add(1);
    }
  }
  if (events_ != nullptr) {
    Event ev;
    ev.severity = Severity::kInfo;
    ev.rule = "ctl." + copy.rule;
    ev.message = copy.source + " " + copy.knob + " ";
    append_num(ev.message, copy.from);
    ev.message += " -> ";
    append_num(ev.message, copy.to);
    ev.message += " (" + copy.outcome + (copy.reason.empty() ? "" : ": " + copy.reason) + ")";
    ev.value = copy.to;
    ev.threshold = copy.from;
    ev.ts_ns = copy.ts_ns;
    events_->push(std::move(ev));
  }
  if (listener_) listener_(copy);
  return copy.seq;
}

std::vector<CtlDecision> DecisionLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t DecisionLog::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::string DecisionLog::to_json() const { return decisions_to_json(snapshot()); }

Controller::Controller(ControllerConfig cfg, DecisionLog& log, EventBuffer* health_events,
                       Registry* metrics, KnobReadFn read, KnobTuneFn tune)
    : cfg_(cfg),
      log_(log),
      health_events_(health_events),
      metrics_(metrics),
      read_(std::move(read)),
      tune_(std::move(tune)) {
  if (metrics_ != nullptr) {
    c_ticks_ = &metrics_->counter("crfs.ctl.ticks");
    c_fired_[kGrow] = &metrics_->counter("crfs.ctl.fired.grow_pool");
    c_fired_[kWiden] = &metrics_->counter("crfs.ctl.fired.widen_io");
    c_fired_[kShed] = &metrics_->counter("crfs.ctl.fired.shed_io");
    c_fired_[kShedReadahead] = &metrics_->counter("crfs.ctl.fired.shed_readahead");
    c_fired_[kShedDrain] = &metrics_->counter("crfs.ctl.fired.shed_drain");
  }
}

bool Controller::cooled(Rule r, std::uint64_t ts_ns) const {
  if (!fired_once_[r]) return true;
  return ts_ns - last_fire_ns_[r] >= cfg_.cooldown_ns;
}

void Controller::fire(const Sample& s, Rule r, const char* rule_name,
                      std::string_view knob, double requested) {
  CtlDecision d;
  d.ts_ns = s.ts_ns;
  d.source = "controller";
  d.rule = rule_name;
  d.knob = std::string(knob);
  d.requested = requested;
  const TuneOutcome out = tune_(knob, requested);
  d.outcome = out.outcome;
  d.from = out.from;
  d.to = out.to;
  d.reason = out.reason;
  d.generation = out.generation;
  log_.record(std::move(d));
  // The cooldown stamps even on a veto: a knob the plane refuses to move
  // should produce one audited veto per cooldown window, not one per tick.
  last_fire_ns_[r] = s.ts_ns;
  fired_once_[r] = true;
  if (c_fired_[r] != nullptr) c_fired_[r]->add(1);
}

void Controller::tick(const Sample& s) {
  ticks_.fetch_add(1, std::memory_order_relaxed);
  if (c_ticks_ != nullptr) c_ticks_->add(1);

  // HealthMonitor edges arrive as events; replay only the ones pushed
  // since the previous tick (the buffer is bounded, so map ring indices
  // back to global sequence via total() - size()).
  bool starved_edge = false;
  if (health_events_ != nullptr) {
    const auto events = health_events_->snapshot();
    const std::uint64_t total = health_events_->total();
    const std::uint64_t base = total - events.size();
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (base + i < seen_events_) continue;
      if (events[i].rule == "pool_starvation") starved_edge = true;
    }
    seen_events_ = total;
  }

  const std::int64_t depth = s.gauge("crfs.queue.depth").value_or(0);
  const HistogramSnapshot* pwrite = s.histogram("crfs.io.pwrite_ns");
  const double p99 = (pwrite != nullptr && pwrite->count > 0) ? pwrite->p99() : 0.0;
  const HistogramSnapshot* cqe = s.histogram("crfs.io.cqe_wait_ns");
  const double cqe_p50 = (cqe != nullptr && cqe->count > 0) ? cqe->p50() : 0.0;

  if (have_prev_depth_ && depth > prev_depth_) {
    rising_run_ += 1;
  } else {
    rising_run_ = 0;
  }
  prev_depth_ = depth;
  have_prev_depth_ = true;

  // grow_pool: an epoch burst exhausted the buffer pool.
  if (starved_edge && cooled(kGrow, s.ts_ns)) {
    const double cur = read_("pool_chunks", 0.0);
    if (cur > 0.0) fire(s, kGrow, "grow_pool", "pool_chunks", cur * cfg_.grow_factor);
  }

  // shed_io takes precedence over widen_io: a saturated backend with a
  // standing queue means submit-side concurrency is the throttle (§IV).
  bool shed_now = false;
  if (p99 >= cfg_.shed_min_p99_ns && depth >= cfg_.shed_min_depth &&
      cooled(kShed, s.ts_ns)) {
    shed_now = true;
    const double batch = read_("io_batch", 0.0);
    if (batch > 1.0) {
      fire(s, kShed, "shed_io", "io_batch", batch / 2.0);
    }
    const double ring = read_("uring_depth", 0.0);
    if (ring > 1.0) {
      fire(s, kShed, "shed_io", "uring_depth", ring / 2.0);
    }
  }

  // shed_readahead: restore reads are slow while checkpoint writes also
  // queue — prefetch is competing with checkpoint traffic on a saturated
  // backend, so narrow the restore window (floor 1, enforced by the knob
  // plane's min).
  const HistogramSnapshot* rd = s.histogram("crfs.read.pread_ns");
  const double read_p99 = (rd != nullptr && rd->count > 0) ? rd->p99() : 0.0;
  if (read_p99 >= cfg_.shed_min_p99_ns && depth >= cfg_.shed_min_depth &&
      cooled(kShedReadahead, s.ts_ns)) {
    const double window = read_("readahead_window", 0.0);
    if (window > 1.0) {
      fire(s, kShedReadahead, "shed_readahead", "readahead_window", window / 2.0);
    }
  }

  // shed_drain: the tier's background drain is slow (remote saturated)
  // while checkpoint writes queue — halve drain_mbps so the drain yields
  // the remote to the burst; restore the pre-shed value once an epoch
  // finalizes (the burst's unit is sealed; the drain should catch up).
  std::uint64_t epochs_completed = 0;
  for (const auto& [cname, cval] : s.snap.counters) {
    if (cname == "crfs.epoch.completed") {
      epochs_completed = cval;
      break;
    }
  }
  if (drain_shed_active_ && epochs_completed > drain_shed_epoch_mark_) {
    // Restore edge: deliberately bypasses the cooldown — holding the
    // drain shed past the burst trades durability lag for nothing.
    fire(s, kShedDrain, "shed_drain", "drain_mbps", drain_preshed_);
    drain_shed_active_ = false;
  } else if (!drain_shed_active_) {
    const HistogramSnapshot* dr = s.histogram("crfs.tier.drain_pwrite_ns");
    const double drain_p99 = (dr != nullptr && dr->count > 0) ? dr->p99() : 0.0;
    if (drain_p99 >= cfg_.shed_min_p99_ns && depth >= cfg_.shed_min_depth &&
        cooled(kShedDrain, s.ts_ns)) {
      const double cur = read_("drain_mbps", 0.0);
      if (cur > 0.0) {
        drain_preshed_ = cur;
        drain_shed_epoch_mark_ = epochs_completed;
        drain_shed_active_ = true;
        fire(s, kShedDrain, "shed_drain", "drain_mbps", cur / 2.0);
      }
    }
  }

  // widen_io: work arriving faster than we submit, backend healthy.
  if (!shed_now && rising_run_ >= cfg_.widen_rising_samples &&
      p99 < cfg_.widen_max_p99_ns && cqe_p50 < cfg_.widen_max_cqe_wait_ns &&
      cooled(kWiden, s.ts_ns)) {
    const double batch = read_("io_batch", 0.0);
    if (batch > 0.0) {
      fire(s, kWiden, "widen_io", "io_batch", batch * 2.0);
    }
    const double ring = read_("uring_depth", 0.0);
    if (ring > 0.0) {
      fire(s, kWiden, "widen_io", "uring_depth", ring * 2.0);
    }
    rising_run_ = 0;
  }
}

}  // namespace crfs::obs
