#include "obs/sampler.h"

#include "obs/health.h"

namespace crfs::obs {

namespace {

/// Derivative of `curr` vs `prev` over `dt_ns`. Counters are monotone, but
/// a racing snapshot can transiently read a smaller value; clamp to 0
/// rather than emit a huge unsigned wraparound rate.
Rate rate_of(std::uint64_t prev, std::uint64_t curr, std::uint64_t dt_ns) {
  Rate r;
  if (curr > prev) r.delta = curr - prev;
  if (dt_ns > 0) r.per_sec = static_cast<double>(r.delta) * 1e9 / static_cast<double>(dt_ns);
  return r;
}

}  // namespace

const Rate* Sample::counter_rate(std::string_view name) const {
  for (std::size_t i = 0; i < snap.counters.size() && i < counter_rates.size(); ++i) {
    if (snap.counters[i].first == name) return &counter_rates[i];
  }
  return nullptr;
}

const Rate* Sample::histogram_rate(std::string_view name) const {
  for (std::size_t i = 0; i < snap.histograms.size() && i < histogram_rates.size(); ++i) {
    if (snap.histograms[i].first == name) return &histogram_rates[i];
  }
  return nullptr;
}

std::optional<std::int64_t> Sample::gauge(std::string_view name) const {
  for (const auto& [n, v] : snap.gauges) {
    if (n == name) return v;
  }
  return std::nullopt;
}

const HistogramSnapshot* Sample::histogram(std::string_view name) const {
  for (const auto& [n, h] : snap.histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

Sampler::Sampler(const Registry& registry, SamplerOptions opts)
    : registry_(registry), opts_(opts) {}

Sampler::~Sampler() { stop(); }

Sample Sampler::tick(std::uint64_t ts_ns) {
  Sample s;
  s.ts_ns = ts_ns;
  s.snap = registry_.snapshot();

  std::lock_guard lock(mu_);
  s.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  const Sample* prev = ring_.empty() ? nullptr : &ring_.back();
  if (prev != nullptr && ts_ns > prev->ts_ns) s.dt_ns = ts_ns - prev->ts_ns;

  // Derivatives by name merge: both snapshots iterate their Registry maps
  // in sorted order, so matching names is a linear two-pointer walk. A
  // metric registered after the previous frame simply has no prior value
  // (delta from 0 would overstate the window, so it rates as 0).
  s.counter_rates.resize(s.snap.counters.size());
  s.histogram_rates.resize(s.snap.histograms.size());
  if (prev != nullptr && s.dt_ns > 0) {
    std::size_t j = 0;
    for (std::size_t i = 0; i < s.snap.counters.size(); ++i) {
      while (j < prev->snap.counters.size() &&
             prev->snap.counters[j].first < s.snap.counters[i].first) {
        ++j;
      }
      if (j < prev->snap.counters.size() &&
          prev->snap.counters[j].first == s.snap.counters[i].first) {
        s.counter_rates[i] =
            rate_of(prev->snap.counters[j].second, s.snap.counters[i].second, s.dt_ns);
      }
    }
    j = 0;
    for (std::size_t i = 0; i < s.snap.histograms.size(); ++i) {
      while (j < prev->snap.histograms.size() &&
             prev->snap.histograms[j].first < s.snap.histograms[i].first) {
        ++j;
      }
      if (j < prev->snap.histograms.size() &&
          prev->snap.histograms[j].first == s.snap.histograms[i].first) {
        s.histogram_rates[i] = rate_of(prev->snap.histograms[j].second.count,
                                       s.snap.histograms[i].second.count, s.dt_ns);
      }
    }
  }

  ring_.push_back(s);
  while (ring_.size() > opts_.ring_capacity) ring_.pop_front();

  if (health_ != nullptr) health_->evaluate(s);
  if (tick_observer_) tick_observer_(s);
  return s;
}

void Sampler::start(std::chrono::milliseconds interval) {
  if (thread_.joinable()) return;
  set_interval(interval);
  {
    std::lock_guard lock(wake_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] {
    std::unique_lock lock(wake_mu_);
    for (;;) {
      // Interruptible sleep: stop() wakes us immediately instead of
      // blocking unmount for up to one period. The period is re-read each
      // pass so a runtime set_interval() lands on the next wakeup.
      const auto period = this->interval();
      if (wake_cv_.wait_for(lock, period, [this] { return stop_requested_; })) return;
      lock.unlock();
      const std::uint64_t t0 = now_ns();
      tick(t0);
      // Self-health: a tick that outruns its own period means telemetry is
      // falling behind (crfs.obs.sampler_overruns).
      if (overruns_ != nullptr) {
        const std::uint64_t elapsed = now_ns() - t0;
        const auto period_ns =
            static_cast<std::uint64_t>(period.count()) * 1'000'000ULL;
        if (elapsed > period_ns) overruns_->add(1);
      }
      lock.lock();
    }
  });
}

void Sampler::stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard lock(wake_mu_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  thread_.join();
}

std::optional<Sample> Sampler::latest() const {
  std::lock_guard lock(mu_);
  if (ring_.empty()) return std::nullopt;
  return ring_.back();
}

std::vector<Sample> Sampler::window(std::size_t n) const {
  std::lock_guard lock(mu_);
  std::vector<Sample> out;
  const std::size_t take = n < ring_.size() ? n : ring_.size();
  out.reserve(take);
  for (std::size_t i = ring_.size() - take; i < ring_.size(); ++i) out.push_back(ring_[i]);
  return out;
}

}  // namespace crfs::obs
