// crfs::obs SLO burn-rate engine (docs/OBSERVABILITY.md "SLOs and burn
// rates").
//
// The HealthMonitor's rules are instantaneous and edge-triggered: "is the
// pipeline pathological right now". An operator's question is different —
// "is this mount eating its error budget fast enough that someone should
// act". The SloMonitor answers it SRE-style: each objective turns every
// Sampler tick into a good/bad observation against a target, and the bad
// fraction over two windows (short, e.g. 5 min, and long, e.g. 1 h) is
// divided by the allowed budget to give a burn rate. An alert fires only
// when BOTH windows burn at >= the threshold — the short window gives
// detection latency, the long window rejects blips.
//
// Objectives (each enabled by a non-zero target):
//   lag    windowed p99 of crfs.chunk.durability_lag_ns  > lag_p99_ns
//   stall  pool-wait ns per wall ns in the window        > stall_ratio
//   ttfb   windowed p99 of crfs.read.pread_ns            > ttfb_p99_ns
//
// Determinism contract: the monitor is pure state machine over SloInput
// observations — no clocks, no allocation-order dependence — so the
// simulator replays burn-rate firing byte-identically (slo_json() emits
// integers only), and `crfsctl slo` replays the exact same decisions
// offline from the journal's persisted SloInput fields.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/sampler.h"

namespace crfs::obs {

/// Per-mount SLO targets. A zero target disables that objective.
struct SloConfig {
  std::uint64_t lag_p99_ns = 0;   ///< durability-lag p99 target
  double stall_ratio = 0.0;       ///< pool-wait ns per wall ns (0.05 = 5%)
  std::uint64_t ttfb_p99_ns = 0;  ///< restore read p99 target
  std::uint64_t short_window_ns = 300ull * 1'000'000'000;   ///< 5 min
  std::uint64_t long_window_ns = 3'600ull * 1'000'000'000;  ///< 1 h
  double budget = 0.10;          ///< allowed bad fraction of a window
  double burn_threshold = 1.0;   ///< fire when both windows burn >= this

  bool any_enabled() const {
    return lag_p99_ns != 0 || stall_ratio > 0.0 || ttfb_p99_ns != 0;
  }

  /// Integer-only JSON (journal meta frame; offline replay recovers the
  /// targets from this).
  std::string to_json() const;
  /// Inverse of to_json(); nullopt on malformed input.
  static std::optional<SloConfig> parse(std::string_view json);
};

/// One tick's worth of SLO-relevant signal, already windowed. `*_n` is the
/// number of underlying observations in the window — 0 means "no signal"
/// and the objective skips the tick entirely (an idle mount burns nothing).
struct SloInput {
  std::uint64_t ts_ns = 0;
  double lag_p99_ns = 0.0;
  std::uint64_t lag_n = 0;     ///< chunks made durable in the window
  double stall_ratio = 0.0;
  std::uint64_t stall_n = 0;   ///< app writes in the window
  double ttfb_p99_ns = 0.0;
  std::uint64_t ttfb_n = 0;    ///< preads in the window
};

/// Turns successive Sample frames into SloInputs by diffing cumulative
/// histograms (windowed p99 = p99 of the bucket deltas). Stateful: keeps
/// the previous frame's snapshots. Single-driver, like the Sampler tick
/// path that owns it.
class SloExtractor {
 public:
  SloInput extract(const Sample& s);

 private:
  HistogramSnapshot prev_lag_;
  HistogramSnapshot prev_pool_wait_;
  HistogramSnapshot prev_copy_;
  HistogramSnapshot prev_pread_;
  std::uint64_t prev_ts_ns_ = 0;
  bool have_prev_ = false;
};

/// Multi-window burn-rate evaluator over SloInput observations.
/// Registry (optional) gets per-objective gauges
/// `crfs.slo.<name>.burn_short` / `.burn_long` / `.breached` (burns in
/// milli-units: 1000 = burning exactly at threshold budget) plus the
/// `crfs.slo.breaches` counter; EventBuffer (optional) gets an
/// edge-triggered critical "slo_breach" per objective, re-armed by an
/// info "slo_recovered" when the short window clears.
class SloMonitor {
 public:
  SloMonitor(SloConfig cfg, Registry* registry, EventBuffer* events);

  /// Live drive point (Sampler tick observer): extract + observe.
  void tick(const Sample& s) { observe(extractor_.extract(s)); }

  /// Replay drive point (simulator determinism tests, `crfsctl slo`).
  void observe(const SloInput& in);

  const SloConfig& config() const { return cfg_; }
  std::uint64_t ticks() const { return ticks_; }
  std::uint64_t breaches() const { return breaches_total_; }
  /// True while any objective is in the breached state.
  bool breached() const;

  /// Deterministic (integer-only) "slo" row for stats_json / postmortem /
  /// `crfsctl slo`: config, then per-objective burn state.
  std::string to_json() const;

 private:
  struct Objective {
    const char* name;     ///< "lag" / "stall" / "ttfb"
    double target = 0.0;  ///< in the objective's native unit
    bool enabled = false;
    std::deque<std::pair<std::uint64_t, bool>> obs;  ///< (ts_ns, bad)
    double burn_short = 0.0;
    double burn_long = 0.0;
    std::uint64_t bad_short = 0, n_short = 0;
    std::uint64_t bad_long = 0, n_long = 0;
    bool fired = false;
    std::uint64_t breaches = 0;
    Gauge* g_burn_short = nullptr;
    Gauge* g_burn_long = nullptr;
    Gauge* g_breached = nullptr;
  };

  void observe_one(Objective& o, std::uint64_t ts_ns, double value,
                   std::uint64_t n);

  const SloConfig cfg_;
  EventBuffer* events_;
  Counter* c_breaches_ = nullptr;
  SloExtractor extractor_;
  Objective lag_, stall_, ttfb_;
  std::uint64_t ticks_ = 0;
  std::uint64_t breaches_total_ = 0;
};

}  // namespace crfs::obs
