// crfs::obs flight recorder: a crash-safe postmortem buffer
// (docs/OBSERVABILITY.md "Postmortem").
//
// Observability that only works while the process cooperates misses the
// most interesting failure: the checkpointing process dying mid-epoch.
// The recorder keeps a PRE-RENDERED postmortem document (trace tail, last
// samples, event buffer, open-epoch state — whatever the owner renders)
// in a reserved double buffer. Normal-path code calls refresh() with the
// freshly rendered bytes; a fatal-signal handler (or an error-burst
// health event) calls dump_now(), which is async-signal-safe by
// construction: it only open()/write()/close()s bytes that were rendered
// and published BEFORE the signal — no allocation, no locks, no
// formatting in the handler.
//
// Publication protocol: refresh() serializes writers with a mutex, copies
// into the buffer the handler is NOT reading, then release-stores the
// buffer index. dump_now() acquire-loads the index and writes that
// buffer. A dump racing a refresh therefore sees the previous complete
// document, never a torn one.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace crfs::obs {

class FlightRecorder {
 public:
  struct Options {
    std::string path;                   ///< postmortem file destination
    std::size_t capacity = 512 * 1024;  ///< reserved bytes per buffer
  };

  explicit FlightRecorder(Options opts);

  /// Uninstalls the signal handlers if this recorder installed them.
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Copies `rendered` into the inactive buffer and publishes it. A
  /// document larger than the reserved capacity is dropped (the previous
  /// complete document stays published — a truncated JSON dump would be
  /// unparseable, which is worse than a slightly stale one).
  void refresh(std::string_view rendered);

  /// Async-signal-safe: writes the last published document to path().
  /// Returns false when nothing was published yet or the write failed.
  /// Safe to call from a signal handler, an error-burst listener, or a
  /// normal thread.
  bool dump_now() const noexcept;

  /// Installs fatal-signal handlers (SIGABRT/SIGSEGV/SIGBUS/SIGFPE/
  /// SIGILL) that dump_now() then re-raise with the default disposition.
  /// At most one recorder per process may install; later installs are
  /// no-ops until the first uninstalls (destructor).
  void install_signal_handlers();

  const std::string& path() const { return opts_.path; }
  std::uint64_t refreshes() const { return refreshes_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  void uninstall_signal_handlers();

  const Options opts_;
  std::array<std::vector<char>, 2> buf_;
  std::array<std::atomic<std::size_t>, 2> len_{};
  std::atomic<int> published_{-1};
  std::atomic<std::uint64_t> refreshes_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::mutex refresh_mu_;
  bool handlers_installed_ = false;
};

}  // namespace crfs::obs
