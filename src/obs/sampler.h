// crfs::obs sampler: the live telemetry plane on top of the Registry.
//
// PR 1's metrics are snapshot-at-exit: monotonic totals you read after the
// checkpoint finishes. The paper's §IV argument, though, is about what
// happens *during* an epoch — transient buffer-pool exhaustion and
// IO-thread saturation. The Sampler turns the Registry into a time
// series: tick() captures a timestamped Sample frame (full snapshot plus
// windowed derivatives of every counter and histogram count) into a
// fixed-capacity ring, so callers get bytes/s, writes/s, and errors/s
// over the last window instead of totals since mount.
//
// tick() is clock-agnostic — the caller supplies the timestamp — so the
// same Sampler serves two drivers:
//   * start(interval): a background thread on the monotonic clock (the
//     real mount, Config::sample_ms / mount option sample_ms=N);
//   * the simulator, which ticks on virtual time from a coroutine
//     (CrfsSimNode::sample_loop), making health rules deterministic.
//
// Cost model: tick() takes the Registry snapshot mutex and allocates —
// it is a cold path by construction (default 100 ms period; the write
// hot path never touches the Sampler). With sample_ms=0 no Sampler (and
// no thread) exists at all.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace crfs::obs {

class HealthMonitor;  // health.h; attached via set_health_monitor

/// Windowed derivative of one monotonic series between two samples.
struct Rate {
  std::uint64_t delta = 0;  ///< increase over the window
  double per_sec = 0.0;     ///< delta / window, in events (or bytes) per second
};

/// One timestamped telemetry frame: a full Registry snapshot plus the
/// derivatives against the previous frame.
struct Sample {
  std::uint64_t seq = 0;    ///< 0-based sample index since the Sampler started
  std::uint64_t ts_ns = 0;  ///< capture timestamp (monotonic or virtual ns)
  std::uint64_t dt_ns = 0;  ///< window vs the previous frame; 0 for the first
  Registry::Snapshot snap;

  /// Parallel to snap.counters / snap.histograms (same order). Counter
  /// rates derive from the value; histogram rates from the sample count
  /// (e.g. pwrites completed in the window).
  std::vector<Rate> counter_rates;
  std::vector<Rate> histogram_rates;

  // Name lookups; nullptr / nullopt when the metric is absent.
  const Rate* counter_rate(std::string_view name) const;
  const Rate* histogram_rate(std::string_view name) const;
  std::optional<std::int64_t> gauge(std::string_view name) const;
  const HistogramSnapshot* histogram(std::string_view name) const;
};

struct SamplerOptions {
  /// Frames kept in the ring (oldest evicted). 600 ≈ one minute at the
  /// 100 ms default period.
  std::size_t ring_capacity = 600;
};

/// Periodically snapshots a Registry into a bounded ring of Samples.
class Sampler {
 public:
  explicit Sampler(const Registry& registry, SamplerOptions opts = {});

  /// Stops the background thread, if running.
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Captures one frame at `ts_ns`: snapshot, derivatives vs the previous
  /// frame, append to the ring, then evaluate the attached HealthMonitor
  /// (if any) against the new frame. Returns a copy of the frame.
  /// Thread-compatible with concurrent readers; tick() itself must come
  /// from one driver at a time (the thread, or the sim coroutine).
  Sample tick(std::uint64_t ts_ns);

  /// Attach before the first tick; `hm` must outlive the Sampler.
  void set_health_monitor(HealthMonitor* hm) { health_ = hm; }

  /// Per-tick hook invoked after the HealthMonitor, with the fresh frame
  /// (the feedback controller's drive point — same call site whether the
  /// driver is the real thread or the sim coroutine). Attach before the
  /// first tick; read unsynchronized after.
  void set_tick_observer(std::function<void(const Sample&)> observer) {
    tick_observer_ = std::move(observer);
  }

  /// Starts the background thread ticking every `interval` on the
  /// monotonic clock. No-op if already running.
  void start(std::chrono::milliseconds interval);

  /// Runtime re-arm of the background period (knob plane); picked up on
  /// the next wakeup. No effect on a sim-driven Sampler (no thread).
  void set_interval(std::chrono::milliseconds interval) {
    interval_ms_.store(interval.count() > 0 ? interval.count() : 1,
                       std::memory_order_relaxed);
  }

  std::chrono::milliseconds interval() const {
    return std::chrono::milliseconds(interval_ms_.load(std::memory_order_relaxed));
  }

  /// Joins the background thread. Idempotent; safe without start().
  void stop();

  bool running() const { return thread_.joinable(); }

  std::uint64_t samples_taken() const { return seq_.load(std::memory_order_relaxed); }

  /// Self-health: counter bumped whenever one tick (snapshot + health
  /// rules + observer) took longer than the configured period, i.e. the
  /// sampler is falling behind its own schedule. Attach before start();
  /// `c` must outlive the Sampler. Exposed as `crfs.obs.sampler_overruns`.
  void set_overrun_counter(Counter* c) { overruns_ = c; }

  /// Most recent frame; nullopt before the first tick.
  std::optional<Sample> latest() const;

  /// Up to `n` most recent frames, oldest-first.
  std::vector<Sample> window(std::size_t n) const;

 private:
  const Registry& registry_;
  const SamplerOptions opts_;
  HealthMonitor* health_ = nullptr;
  std::function<void(const Sample&)> tick_observer_;
  Counter* overruns_ = nullptr;
  std::atomic<long long> interval_ms_{100};

  mutable std::mutex mu_;
  std::deque<Sample> ring_;
  std::atomic<std::uint64_t> seq_{0};

  std::thread thread_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;
};

}  // namespace crfs::obs
