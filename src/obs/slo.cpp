#include "obs/slo.h"

#include <algorithm>
#include <cmath>

#include "obs/json_lite.h"

namespace crfs::obs {
namespace {

constexpr std::uint64_t kNsPerSec = 1'000'000'000;

std::int64_t milli(double v) {
  if (v <= 0.0) return 0;
  const double m = v * 1000.0 + 0.5;
  if (m >= 9.0e18) return 9'000'000'000'000'000'000LL;
  return static_cast<std::int64_t>(m);
}

/// Windowed histogram = cumulative-now minus cumulative-previous,
/// bucket-wise. quantile() only reads count + buckets, so the diff is a
/// valid input for the windowed p99; max is approximated by the cumulative
/// max (unused by quantile()).
HistogramSnapshot diff(const HistogramSnapshot& cur, const HistogramSnapshot& prev) {
  HistogramSnapshot d;
  d.count = cur.count >= prev.count ? cur.count - prev.count : 0;
  d.sum = cur.sum >= prev.sum ? cur.sum - prev.sum : 0;
  d.max = cur.max;
  for (int i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    d.buckets[static_cast<std::size_t>(i)] =
        cur.buckets[static_cast<std::size_t>(i)] >=
                prev.buckets[static_cast<std::size_t>(i)]
            ? cur.buckets[static_cast<std::size_t>(i)] -
                  prev.buckets[static_cast<std::size_t>(i)]
            : 0;
  }
  return d;
}

}  // namespace

std::string SloConfig::to_json() const {
  std::string s = "{\"lag_p99_ns\":" + std::to_string(lag_p99_ns);
  s += ",\"stall_ratio_ppm\":" +
       std::to_string(static_cast<std::uint64_t>(stall_ratio * 1e6 + 0.5));
  s += ",\"ttfb_p99_ns\":" + std::to_string(ttfb_p99_ns);
  s += ",\"short_window_s\":" + std::to_string(short_window_ns / kNsPerSec);
  s += ",\"long_window_s\":" + std::to_string(long_window_ns / kNsPerSec);
  s += ",\"budget_milli\":" + std::to_string(milli(budget));
  s += ",\"burn_threshold_milli\":" + std::to_string(milli(burn_threshold));
  s += "}";
  return s;
}

std::optional<SloConfig> SloConfig::parse(std::string_view text) {
  const auto parsed = json::parse(text);
  if (!parsed.has_value() || !parsed->is_object()) return std::nullopt;
  auto num = [&](const char* key) -> std::optional<double> {
    const json::Value* v = parsed->get(key);
    if (v == nullptr || !v->is_number()) return std::nullopt;
    return v->number;
  };
  SloConfig cfg;
  const auto lag = num("lag_p99_ns");
  const auto stall_ppm = num("stall_ratio_ppm");
  const auto ttfb = num("ttfb_p99_ns");
  const auto short_s = num("short_window_s");
  const auto long_s = num("long_window_s");
  const auto budget = num("budget_milli");
  const auto threshold = num("burn_threshold_milli");
  if (!lag || !stall_ppm || !ttfb || !short_s || !long_s || !budget || !threshold) {
    return std::nullopt;
  }
  cfg.lag_p99_ns = static_cast<std::uint64_t>(*lag);
  cfg.stall_ratio = *stall_ppm / 1e6;
  cfg.ttfb_p99_ns = static_cast<std::uint64_t>(*ttfb);
  cfg.short_window_ns = static_cast<std::uint64_t>(*short_s) * kNsPerSec;
  cfg.long_window_ns = static_cast<std::uint64_t>(*long_s) * kNsPerSec;
  cfg.budget = *budget / 1000.0;
  cfg.burn_threshold = *threshold / 1000.0;
  return cfg;
}

SloInput SloExtractor::extract(const Sample& s) {
  SloInput in;
  in.ts_ns = s.ts_ns;

  const HistogramSnapshot* lag = s.histogram("crfs.chunk.durability_lag_ns");
  const HistogramSnapshot* pool_wait = s.histogram("crfs.write.pool_wait_ns");
  const HistogramSnapshot* copy = s.histogram("crfs.write.copy_ns");
  const HistogramSnapshot* pread = s.histogram("crfs.read.pread_ns");

  const std::uint64_t dt_ns =
      have_prev_ && s.ts_ns > prev_ts_ns_ ? s.ts_ns - prev_ts_ns_ : s.dt_ns;

  if (lag != nullptr) {
    const HistogramSnapshot d = diff(*lag, prev_lag_);
    in.lag_n = d.count;
    if (d.count > 0) in.lag_p99_ns = d.quantile(0.99);
    prev_lag_ = *lag;
  }
  if (pool_wait != nullptr && copy != nullptr) {
    const HistogramSnapshot dw = diff(*pool_wait, prev_pool_wait_);
    const HistogramSnapshot dc = diff(*copy, prev_copy_);
    // Stall ratio: app time blocked on the pool per wall time. Only
    // meaningful while writes are actually flowing.
    in.stall_n = dc.count;
    if (dc.count > 0 && dt_ns > 0) {
      in.stall_ratio = static_cast<double>(dw.sum) / static_cast<double>(dt_ns);
    }
    prev_pool_wait_ = *pool_wait;
    prev_copy_ = *copy;
  }
  if (pread != nullptr) {
    const HistogramSnapshot d = diff(*pread, prev_pread_);
    in.ttfb_n = d.count;
    if (d.count > 0) in.ttfb_p99_ns = d.quantile(0.99);
    prev_pread_ = *pread;
  }

  prev_ts_ns_ = s.ts_ns;
  have_prev_ = true;
  return in;
}

SloMonitor::SloMonitor(SloConfig cfg, Registry* registry, EventBuffer* events)
    : cfg_(cfg), events_(events) {
  lag_.name = "lag";
  lag_.target = static_cast<double>(cfg_.lag_p99_ns);
  lag_.enabled = cfg_.lag_p99_ns != 0;
  stall_.name = "stall";
  stall_.target = cfg_.stall_ratio;
  stall_.enabled = cfg_.stall_ratio > 0.0;
  ttfb_.name = "ttfb";
  ttfb_.target = static_cast<double>(cfg_.ttfb_p99_ns);
  ttfb_.enabled = cfg_.ttfb_p99_ns != 0;
  if (registry != nullptr) {
    c_breaches_ = &registry->counter("crfs.slo.breaches");
    for (Objective* o : {&lag_, &stall_, &ttfb_}) {
      if (!o->enabled) continue;
      const std::string prefix = std::string("crfs.slo.") + o->name;
      o->g_burn_short = &registry->gauge(prefix + ".burn_short");
      o->g_burn_long = &registry->gauge(prefix + ".burn_long");
      o->g_breached = &registry->gauge(prefix + ".breached");
    }
  }
}

void SloMonitor::observe(const SloInput& in) {
  ++ticks_;
  if (lag_.enabled && in.lag_n > 0) {
    observe_one(lag_, in.ts_ns, in.lag_p99_ns, in.lag_n);
  }
  if (stall_.enabled && in.stall_n > 0) {
    observe_one(stall_, in.ts_ns, in.stall_ratio, in.stall_n);
  }
  if (ttfb_.enabled && in.ttfb_n > 0) {
    observe_one(ttfb_, in.ts_ns, in.ttfb_p99_ns, in.ttfb_n);
  }
}

void SloMonitor::observe_one(Objective& o, std::uint64_t ts_ns, double value,
                             std::uint64_t /*n*/) {
  const bool bad = value > o.target;
  o.obs.emplace_back(ts_ns, bad);
  const std::uint64_t long_lo =
      ts_ns >= cfg_.long_window_ns ? ts_ns - cfg_.long_window_ns : 0;
  while (!o.obs.empty() && o.obs.front().first < long_lo) o.obs.pop_front();

  const std::uint64_t short_lo =
      ts_ns >= cfg_.short_window_ns ? ts_ns - cfg_.short_window_ns : 0;
  o.bad_short = o.n_short = o.bad_long = o.n_long = 0;
  for (const auto& [t, b] : o.obs) {
    ++o.n_long;
    if (b) ++o.bad_long;
    if (t >= short_lo) {
      ++o.n_short;
      if (b) ++o.bad_short;
    }
  }
  const double budget = cfg_.budget > 0.0 ? cfg_.budget : 1.0;
  o.burn_short = o.n_short > 0
                     ? (static_cast<double>(o.bad_short) / o.n_short) / budget
                     : 0.0;
  o.burn_long =
      o.n_long > 0 ? (static_cast<double>(o.bad_long) / o.n_long) / budget : 0.0;

  if (o.g_burn_short != nullptr) o.g_burn_short->set(milli(o.burn_short));
  if (o.g_burn_long != nullptr) o.g_burn_long->set(milli(o.burn_long));

  if (!o.fired && o.burn_short >= cfg_.burn_threshold &&
      o.burn_long >= cfg_.burn_threshold) {
    o.fired = true;
    ++o.breaches;
    ++breaches_total_;
    if (c_breaches_ != nullptr) c_breaches_->add(1);
    if (events_ != nullptr) {
      Event ev;
      ev.severity = Severity::kCritical;
      ev.rule = "slo_breach";
      ev.message = std::string("slo ") + o.name + " burning error budget: short=" +
                   std::to_string(milli(o.burn_short)) + "m long=" +
                   std::to_string(milli(o.burn_long)) + "m";
      ev.value = o.burn_short;
      ev.threshold = cfg_.burn_threshold;
      ev.ts_ns = ts_ns;
      events_->push(std::move(ev));
    }
  } else if (o.fired && o.burn_short < cfg_.burn_threshold) {
    o.fired = false;
    if (events_ != nullptr) {
      Event ev;
      ev.severity = Severity::kInfo;
      ev.rule = "slo_recovered";
      ev.message = std::string("slo ") + o.name + " short-window burn back under threshold";
      ev.value = o.burn_short;
      ev.threshold = cfg_.burn_threshold;
      ev.ts_ns = ts_ns;
      events_->push(std::move(ev));
    }
  }
  if (o.g_breached != nullptr) o.g_breached->set(o.fired ? 1 : 0);
}

bool SloMonitor::breached() const {
  return lag_.fired || stall_.fired || ttfb_.fired;
}

std::string SloMonitor::to_json() const {
  std::string s = "{\"enabled\":true,\"config\":" + cfg_.to_json();
  s += ",\"ticks\":" + std::to_string(ticks_);
  s += ",\"breaches\":" + std::to_string(breaches_total_);
  s += ",\"breached\":" + std::string(breached() ? "true" : "false");
  s += ",\"objectives\":[";
  bool first = true;
  for (const Objective* o : {&lag_, &stall_, &ttfb_}) {
    if (!o->enabled) continue;
    if (!first) s += ",";
    first = false;
    s += "{\"name\":\"" + std::string(o->name) + "\"";
    s += ",\"target\":" + std::to_string(static_cast<std::uint64_t>(
                              o->name == std::string("stall")
                                  ? o->target * 1e6 + 0.5
                                  : o->target));
    s += ",\"burn_short_milli\":" + std::to_string(milli(o->burn_short));
    s += ",\"burn_long_milli\":" + std::to_string(milli(o->burn_long));
    s += ",\"bad_short\":" + std::to_string(o->bad_short);
    s += ",\"obs_short\":" + std::to_string(o->n_short);
    s += ",\"bad_long\":" + std::to_string(o->bad_long);
    s += ",\"obs_long\":" + std::to_string(o->n_long);
    s += ",\"breached\":" + std::string(o->fired ? "true" : "false");
    s += ",\"breaches\":" + std::to_string(o->breaches);
    s += "}";
  }
  s += "]}";
  return s;
}

}  // namespace crfs::obs
