#include "obs/metrics.h"

#include <cstdio>

#include "common/table.h"

namespace crfs::obs {

std::string format_ns(double ns) {
  char buf[32];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1f us", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", ns / 1e9);
  }
  return buf;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample (1-based), then walk buckets to find it.
  const double rank = q * static_cast<double>(count - 1) + 1.0;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (static_cast<double>(seen + buckets[i]) >= rank) {
      const double lo = static_cast<double>(LatencyHistogram::bucket_lo(i));
      double hi = static_cast<double>(LatencyHistogram::bucket_hi(i));
      // The top observed bucket can't exceed the recorded max.
      if (static_cast<double>(max) < hi && max >= LatencyHistogram::bucket_lo(i)) {
        hi = static_cast<double>(max);
      }
      const double within = (rank - static_cast<double>(seen)) /
                            static_cast<double>(buckets[i]);  // (0, 1]
      return lo + (hi - lo) * within;
    }
    seen += buckets[i];
  }
  return static_cast<double>(max);
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot out;
  // Relaxed loads: each field is individually consistent; a snapshot racing
  // a record() may see the count without the bucket (or vice versa), which
  // monitoring tolerates. Totals are exact once writers quiesce.
  for (int i = 0; i < kBuckets; ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  // Keep the derived view internally consistent even mid-race: quantile()
  // walks buckets against count, so never report more count than buckets.
  std::uint64_t bucketed = 0;
  for (int i = 0; i < kBuckets; ++i) bucketed += out.buckets[i];
  if (out.count > bucketed) out.count = bucketed;
  return out;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& Registry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

void Registry::gauge_fn(const std::string& name, std::function<std::int64_t()> fn) {
  std::lock_guard lock(mu_);
  gauge_fns_[name] = std::move(fn);
}

Registry::Snapshot Registry::snapshot() const {
  Snapshot out;
  std::lock_guard lock(mu_);
  for (const auto& [name, c] : counters_) out.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) out.gauges.emplace_back(name, g->value());
  for (const auto& [name, fn] : gauge_fns_) out.gauges.emplace_back(name, fn());
  for (const auto& [name, h] : histograms_) out.histograms.emplace_back(name, h->snapshot());
  return out;
}

std::string Registry::Snapshot::render_table() const {
  std::string out;
  if (!counters.empty() || !gauges.empty()) {
    TextTable t({"Metric", "Value"});
    for (const auto& [name, v] : counters) t.add_row({name, std::to_string(v)});
    if (!counters.empty() && !gauges.empty()) t.add_rule();
    for (const auto& [name, v] : gauges) t.add_row({name, std::to_string(v)});
    out += t.render();
  }
  if (!histograms.empty()) {
    TextTable t({"Latency", "Count", "p50", "p95", "p99", "Max"});
    for (const auto& [name, h] : histograms) {
      t.add_row({name, std::to_string(h.count), format_ns(h.p50()), format_ns(h.p95()),
                 format_ns(h.p99()), format_ns(static_cast<double>(h.max))});
    }
    if (!out.empty()) out += "\n";
    out += t.render();
  }
  return out;
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

std::string Registry::Snapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_json_escaped(out, name);
    out += "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_json_escaped(out, name);
    out += "\":" + std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  char num[256];
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_json_escaped(out, name);
    std::snprintf(num, sizeof(num),
                  "\":{\"count\":%llu,\"sum\":%llu,\"max\":%llu,\"p50\":%.1f,"
                  "\"p95\":%.1f,\"p99\":%.1f}",
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum),
                  static_cast<unsigned long long>(h.max), h.p50(), h.p95(), h.p99());
    out += num;
  }
  out += "}}";
  return out;
}

}  // namespace crfs::obs
