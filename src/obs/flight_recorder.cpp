#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace crfs::obs {

namespace {

// The handler needs a process-global way to reach the recorder; plain
// atomics keep installation/teardown race-free against a concurrent
// signal.
std::atomic<FlightRecorder*> g_recorder{nullptr};

constexpr int kFatalSignals[] = {SIGABRT, SIGSEGV, SIGBUS, SIGFPE, SIGILL};

struct sigaction g_previous[sizeof(kFatalSignals) / sizeof(kFatalSignals[0])];

extern "C" void crfs_flight_signal_handler(int sig) {
  // Everything here is async-signal-safe: dump_now() is open/write/close
  // of pre-rendered bytes; then restore the default disposition and
  // re-raise so the process still dies with the original signal (death
  // tests and wait() observers see the truth).
  FlightRecorder* rec = g_recorder.load(std::memory_order_acquire);
  if (rec != nullptr) (void)rec->dump_now();
  struct sigaction dfl;
  std::memset(&dfl, 0, sizeof(dfl));
  dfl.sa_handler = SIG_DFL;
  ::sigaction(sig, &dfl, nullptr);
  ::raise(sig);
}

}  // namespace

FlightRecorder::FlightRecorder(Options opts) : opts_(std::move(opts)) {
  // Reserve both buffers up front: refresh() must never allocate past
  // construction, so a refresh under memory pressure cannot throw away
  // the one diagnostic that matters.
  for (auto& b : buf_) b.resize(opts_.capacity);
  len_[0].store(0, std::memory_order_relaxed);
  len_[1].store(0, std::memory_order_relaxed);
}

FlightRecorder::~FlightRecorder() { uninstall_signal_handlers(); }

void FlightRecorder::refresh(std::string_view rendered) {
  if (rendered.size() > opts_.capacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::lock_guard lock(refresh_mu_);
  // Write into whichever buffer is not published (0 when none is yet).
  const int idx = published_.load(std::memory_order_relaxed) == 0 ? 1 : 0;
  std::memcpy(buf_[idx].data(), rendered.data(), rendered.size());
  len_[idx].store(rendered.size(), std::memory_order_relaxed);
  // Release: a dump that acquires `published_` sees the full copy above.
  published_.store(idx, std::memory_order_release);
  refreshes_.fetch_add(1, std::memory_order_relaxed);
}

bool FlightRecorder::dump_now() const noexcept {
  const int idx = published_.load(std::memory_order_acquire);
  if (idx < 0) return false;
  const std::size_t len = len_[idx].load(std::memory_order_relaxed);
  // opts_.path was built at construction; c_str() on a const std::string
  // does not allocate.
  const int fd = ::open(opts_.path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const char* p = buf_[idx].data();
  std::size_t remaining = len;
  bool ok = true;
  while (remaining > 0) {
    const ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
  ::close(fd);
  return ok;
}

void FlightRecorder::install_signal_handlers() {
  FlightRecorder* expected = nullptr;
  if (!g_recorder.compare_exchange_strong(expected, this, std::memory_order_acq_rel)) {
    return;  // another recorder already owns the handlers
  }
  handlers_installed_ = true;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = crfs_flight_signal_handler;
  sigemptyset(&sa.sa_mask);
  std::size_t i = 0;
  for (int sig : kFatalSignals) {
    ::sigaction(sig, &sa, &g_previous[i++]);
  }
}

void FlightRecorder::uninstall_signal_handlers() {
  if (!handlers_installed_) return;
  handlers_installed_ = false;
  std::size_t i = 0;
  for (int sig : kFatalSignals) {
    ::sigaction(sig, &g_previous[i++], nullptr);
  }
  g_recorder.store(nullptr, std::memory_order_release);
}

}  // namespace crfs::obs
