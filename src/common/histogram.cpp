#include "common/histogram.h"

#include <cstdio>

#include "common/units.h"

namespace crfs {
namespace {

// Table I bucket boundaries (bytes). The final bound is open-ended.
constexpr std::array<std::uint64_t, WriteSizeHistogram::kNumBuckets + 1> kBounds = {
    0,         64,        256,        1 * KiB,   4 * KiB,  16 * KiB,
    64 * KiB,  256 * KiB, 512 * KiB,  1 * MiB,   UINT64_MAX};

}  // namespace

WriteSizeHistogram::WriteSizeHistogram() {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i].lo = kBounds[i];
    buckets_[i].hi = kBounds[i + 1];
  }
}

int WriteSizeHistogram::bucket_index(std::uint64_t size) {
  for (int i = 0; i < kNumBuckets; ++i) {
    if (size < kBounds[i + 1]) return i;
  }
  return kNumBuckets - 1;
}

void WriteSizeHistogram::record(std::uint64_t size, double seconds) {
  SizeBucket& b = buckets_[bucket_index(size)];
  b.ops += 1;
  b.bytes += size;
  b.seconds += seconds;
}

void WriteSizeHistogram::merge(const WriteSizeHistogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i].ops += other.buckets_[i].ops;
    buckets_[i].bytes += other.buckets_[i].bytes;
    buckets_[i].seconds += other.buckets_[i].seconds;
  }
}

std::uint64_t WriteSizeHistogram::total_ops() const {
  std::uint64_t n = 0;
  for (const auto& b : buckets_) n += b.ops;
  return n;
}

std::uint64_t WriteSizeHistogram::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& b : buckets_) n += b.bytes;
  return n;
}

double WriteSizeHistogram::total_seconds() const {
  double s = 0;
  for (const auto& b : buckets_) s += b.seconds;
  return s;
}

std::string WriteSizeHistogram::bucket_label(int i) {
  if (i == kNumBuckets - 1) return "> 1M";
  auto label = [](std::uint64_t v) -> std::string {
    if (v < KiB) return std::to_string(v);
    if (v < MiB) return std::to_string(v / KiB) + "K";
    return std::to_string(v / MiB) + "M";
  };
  return label(kBounds[i]) + "-" + label(kBounds[i + 1]);
}

std::string WriteSizeHistogram::render_table(const std::string& title) const {
  const double ops = static_cast<double>(total_ops());
  const double bytes = static_cast<double>(total_bytes());
  const double secs = total_seconds();
  std::string out;
  out += title + "\n";
  out += "  Write Size   % of Writes   % of Data   % of Time\n";
  out += "  ----------   -----------   ---------   ---------\n";
  char line[128];
  for (int i = 0; i < kNumBuckets; ++i) {
    const SizeBucket& b = buckets_[i];
    std::snprintf(line, sizeof(line), "  %-10s   %11.2f   %9.2f   %9.2f\n",
                  bucket_label(i).c_str(),
                  ops > 0 ? 100.0 * static_cast<double>(b.ops) / ops : 0.0,
                  bytes > 0 ? 100.0 * static_cast<double>(b.bytes) / bytes : 0.0,
                  secs > 0 ? 100.0 * b.seconds / secs : 0.0);
    out += line;
  }
  return out;
}

}  // namespace crfs
