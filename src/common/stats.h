// Streaming and batch statistics used by benches and the DES reports.
#pragma once

#include <cstdint>
#include <vector>

namespace crfs {

/// Welford single-pass accumulator: mean/variance without storing samples.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;    ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch sample set with exact percentiles (sorts on demand).
class Samples {
 public:
  void add(double x) { xs_.push_back(x); sorted_ = false; }
  std::size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  double mean() const;
  double min();
  double max();
  /// Exact percentile by linear interpolation; p in [0,100].
  double percentile(double p);
  double median() { return percentile(50.0); }

  const std::vector<double>& values() const { return xs_; }

 private:
  void ensure_sorted();
  std::vector<double> xs_;
  bool sorted_ = false;
};

}  // namespace crfs
