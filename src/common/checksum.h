// CRC64 (ECMA-182) used by the integrity tests and the restart verifier to
// prove that data passing through CRFS aggregation is byte-identical to
// what the checkpoint writer produced.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace crfs {

/// Incremental CRC64. Feed data in any chunking; the digest is chunking-
/// independent, which is exactly what the aggregation tests rely on.
class Crc64 {
 public:
  Crc64();

  void update(std::span<const std::byte> data);
  void update(const void* data, std::size_t size);

  std::uint64_t digest() const { return ~state_; }

  /// One-shot convenience.
  static std::uint64_t of(const void* data, std::size_t size);

 private:
  std::uint64_t state_;
};

/// Incremental CRC32 (IEEE 802.3, reflected). Smaller than Crc64 on purpose:
/// journal frame headers carry it inline, and 4 bytes per frame is enough to
/// reject a torn tail.
class Crc32 {
 public:
  Crc32();

  void update(std::span<const std::byte> data);
  void update(const void* data, std::size_t size);

  std::uint32_t digest() const { return ~state_; }

  /// One-shot convenience.
  static std::uint32_t of(const void* data, std::size_t size);

 private:
  std::uint32_t state_;
};

}  // namespace crfs
