// Byte-size and duration formatting/parsing helpers used across benches,
// examples, and the trace/report renderers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace crfs {

inline constexpr std::uint64_t KiB = 1024ULL;
inline constexpr std::uint64_t MiB = 1024ULL * KiB;
inline constexpr std::uint64_t GiB = 1024ULL * MiB;

/// Formats a byte count compactly: "512", "4.0K", "16.0M", "1.5G".
std::string format_bytes(std::uint64_t bytes);

/// Formats a throughput value in MB/s with one decimal.
std::string format_bandwidth_mbps(double bytes_per_second);

/// Formats seconds as the paper's figures do: "5.5 s", "0.9 s", "159.4 s".
std::string format_seconds(double seconds);

/// Parses "4096", "128K", "4M", "1G" (case-insensitive suffix, powers of
/// 1024). Returns nullopt on malformed input.
std::optional<std::uint64_t> parse_bytes(std::string_view text);

}  // namespace crfs
