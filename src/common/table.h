// ASCII table and bar-chart renderers. Every bench binary prints the
// paper's table/figure in this textual form so the reproduction can be
// eyeballed against the publication without a plotting stack.
#pragma once

#include <string>
#include <vector>

namespace crfs {

/// Column-aligned ASCII table. Usage:
///   TextTable t({"Backend", "Native", "CRFS", "Speedup"});
///   t.add_row({"ext3", "2.9 s", "0.9 s", "3.2x"});
///   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next row.
  void add_rule();

  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == rule
};

/// Horizontal bar chart, one bar per (label, value). Used for the paper's
/// grouped bar figures (Figs 6-9): pass pairs like "ext3 native" / "ext3
/// CRFS" in sequence.
class BarChart {
 public:
  BarChart(std::string title, std::string unit, int width = 52);

  void add(std::string label, double value);
  /// Blank separator line between bar groups.
  void add_gap();

  std::string render() const;

 private:
  struct Bar { std::string label; double value; bool gap; };
  std::string title_;
  std::string unit_;
  int width_;
  std::vector<Bar> bars_;
};

/// Sparse ASCII scatter plot on log-x axis; used for the cumulative
/// write-time figures (Figs 3/11) and the block-trace figure (Fig 10).
class ScatterPlot {
 public:
  ScatterPlot(std::string title, int cols = 76, int rows = 20);

  /// Adds a point series; `glyph` distinguishes series ('*', 'o', ...).
  void add_series(char glyph, const std::vector<std::pair<double, double>>& pts);
  void set_log_x(bool on) { log_x_ = on; }
  void set_axis_labels(std::string x, std::string y);

  std::string render() const;

 private:
  struct Series { char glyph; std::vector<std::pair<double, double>> pts; };
  std::string title_, xlabel_, ylabel_;
  int cols_, rows_;
  bool log_x_ = false;
  std::vector<Series> series_;
};

}  // namespace crfs
