#include "common/units.h"

#include <cctype>
#include <cstdio>

namespace crfs {

std::string format_bytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes < KiB) {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(bytes));
  } else if (bytes < MiB) {
    std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(bytes) / KiB);
  } else if (bytes < GiB) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(bytes) / MiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fG", static_cast<double>(bytes) / GiB);
  }
  return buf;
}

std::string format_bandwidth_mbps(double bytes_per_second) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f MB/s", bytes_per_second / 1e6);
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  return buf;
}

std::optional<std::uint64_t> parse_bytes(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  std::size_t i = 0;
  bool any_digit = false;
  for (; i < text.size() && std::isdigit(static_cast<unsigned char>(text[i])); ++i) {
    const std::uint64_t digit = static_cast<std::uint64_t>(text[i] - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
    any_digit = true;
  }
  if (!any_digit) return std::nullopt;

  std::uint64_t multiplier = 1;
  if (i < text.size()) {
    switch (std::toupper(static_cast<unsigned char>(text[i]))) {
      case 'K': multiplier = KiB; break;
      case 'M': multiplier = MiB; break;
      case 'G': multiplier = GiB; break;
      default: return std::nullopt;
    }
    ++i;
    // Accept an optional trailing "B" / "iB".
    if (i < text.size() && (text[i] == 'i' || text[i] == 'I')) ++i;
    if (i < text.size() && (text[i] == 'b' || text[i] == 'B')) ++i;
  }
  if (i != text.size()) return std::nullopt;
  if (multiplier != 1 && value > UINT64_MAX / multiplier) return std::nullopt;
  return value * multiplier;
}

}  // namespace crfs
