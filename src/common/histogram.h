// Size-bucketed histograms.
//
// WriteSizeHistogram reproduces the exact bucket boundaries of the paper's
// Table I ("Checkpoint Writing Profile"): 0-64, 64-256, 256-1K, 1K-4K,
// 4K-16K, 16K-64K, 64K-256K, 256K-512K, 512K-1M, >1M. Each bucket
// accumulates operation count, bytes, and elapsed time so the three
// percentage columns of Table I fall out directly.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace crfs {

/// One row of a write-size profile (a Table I row).
struct SizeBucket {
  std::uint64_t lo = 0;        ///< inclusive lower bound in bytes
  std::uint64_t hi = 0;        ///< exclusive upper bound; UINT64_MAX for the top bucket
  std::uint64_t ops = 0;       ///< number of write operations
  std::uint64_t bytes = 0;     ///< total bytes written
  double seconds = 0.0;        ///< total elapsed time in the write path
};

/// Histogram over the paper's Table I size buckets.
class WriteSizeHistogram {
 public:
  static constexpr int kNumBuckets = 10;

  WriteSizeHistogram();

  /// Records one write of `size` bytes that took `seconds`.
  void record(std::uint64_t size, double seconds);

  /// Merges another histogram into this one (e.g. per-process -> node).
  void merge(const WriteSizeHistogram& other);

  const std::array<SizeBucket, kNumBuckets>& buckets() const { return buckets_; }

  std::uint64_t total_ops() const;
  std::uint64_t total_bytes() const;
  double total_seconds() const;

  /// Renders the Table I layout: bucket label, % of writes, % of data,
  /// % of time. Percentages are of this histogram's totals.
  std::string render_table(const std::string& title) const;

  /// Label for bucket `i`, e.g. "4K-16K" or "> 1M".
  static std::string bucket_label(int i);

  /// Index of the bucket containing `size`.
  static int bucket_index(std::uint64_t size);

 private:
  std::array<SizeBucket, kNumBuckets> buckets_;
};

// For latency distributions use obs::LatencyHistogram (obs/metrics.h):
// same log2 bucketing, plus lock-free concurrent recording, sum/max, and
// registry/export integration. WriteSizeHistogram stays here because its
// semantics differ — fixed Table-I size boundaries with per-bucket
// ops/bytes/seconds accounting, not a latency distribution. (A separate
// Log2Histogram used to live here; it was a single-threaded subset of
// obs::LatencyHistogram and has been removed in its favor.)

}  // namespace crfs
