// Size-bucketed histograms.
//
// WriteSizeHistogram reproduces the exact bucket boundaries of the paper's
// Table I ("Checkpoint Writing Profile"): 0-64, 64-256, 256-1K, 1K-4K,
// 4K-16K, 16K-64K, 64K-256K, 256K-512K, 512K-1M, >1M. Each bucket
// accumulates operation count, bytes, and elapsed time so the three
// percentage columns of Table I fall out directly.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace crfs {

/// One row of a write-size profile (a Table I row).
struct SizeBucket {
  std::uint64_t lo = 0;        ///< inclusive lower bound in bytes
  std::uint64_t hi = 0;        ///< exclusive upper bound; UINT64_MAX for the top bucket
  std::uint64_t ops = 0;       ///< number of write operations
  std::uint64_t bytes = 0;     ///< total bytes written
  double seconds = 0.0;        ///< total elapsed time in the write path
};

/// Histogram over the paper's Table I size buckets.
class WriteSizeHistogram {
 public:
  static constexpr int kNumBuckets = 10;

  WriteSizeHistogram();

  /// Records one write of `size` bytes that took `seconds`.
  void record(std::uint64_t size, double seconds);

  /// Merges another histogram into this one (e.g. per-process -> node).
  void merge(const WriteSizeHistogram& other);

  const std::array<SizeBucket, kNumBuckets>& buckets() const { return buckets_; }

  std::uint64_t total_ops() const;
  std::uint64_t total_bytes() const;
  double total_seconds() const;

  /// Renders the Table I layout: bucket label, % of writes, % of data,
  /// % of time. Percentages are of this histogram's totals.
  std::string render_table(const std::string& title) const;

  /// Label for bucket `i`, e.g. "4K-16K" or "> 1M".
  static std::string bucket_label(int i);

  /// Index of the bucket containing `size`.
  static int bucket_index(std::uint64_t size);

 private:
  std::array<SizeBucket, kNumBuckets> buckets_;
};

/// General-purpose log2 histogram for microbench latency distributions.
class Log2Histogram {
 public:
  void record(std::uint64_t value);
  std::uint64_t count() const { return count_; }
  /// Approximate quantile (q in [0,1]) from bucket midpoints.
  double quantile(double q) const;

 private:
  std::array<std::uint64_t, 64> buckets_{};
  std::uint64_t count_ = 0;
};

}  // namespace crfs
