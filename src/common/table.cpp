#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace crfs {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_rule() { rows_.emplace_back(); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string s = "  +";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "  |";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      s += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : line(row);
  }
  out += rule();
  return out;
}

BarChart::BarChart(std::string title, std::string unit, int width)
    : title_(std::move(title)), unit_(std::move(unit)), width_(width) {}

void BarChart::add(std::string label, double value) {
  bars_.push_back({std::move(label), value, false});
}

void BarChart::add_gap() { bars_.push_back({"", 0.0, true}); }

std::string BarChart::render() const {
  double max_v = 0.0;
  std::size_t max_label = 0;
  for (const auto& b : bars_) {
    if (b.gap) continue;
    max_v = std::max(max_v, b.value);
    max_label = std::max(max_label, b.label.size());
  }
  if (max_v <= 0.0) max_v = 1.0;

  std::string out = title_ + "\n";
  char buf[64];
  for (const auto& b : bars_) {
    if (b.gap) { out += "\n"; continue; }
    const int len = static_cast<int>(std::lround(b.value / max_v * width_));
    std::snprintf(buf, sizeof(buf), "%8.1f %s", b.value, unit_.c_str());
    out += "  " + b.label + std::string(max_label - b.label.size(), ' ') + " |" +
           std::string(static_cast<std::size_t>(std::max(len, b.value > 0 ? 1 : 0)), '#') +
           buf + "\n";
  }
  return out;
}

ScatterPlot::ScatterPlot(std::string title, int cols, int rows)
    : title_(std::move(title)), cols_(cols), rows_(rows) {}

void ScatterPlot::add_series(char glyph, const std::vector<std::pair<double, double>>& pts) {
  series_.push_back({glyph, pts});
}

void ScatterPlot::set_axis_labels(std::string x, std::string y) {
  xlabel_ = std::move(x);
  ylabel_ = std::move(y);
}

std::string ScatterPlot::render() const {
  double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
  for (const auto& s : series_) {
    for (auto [x, y] : s.pts) {
      xmin = std::min(xmin, x); xmax = std::max(xmax, x);
      ymin = std::min(ymin, y); ymax = std::max(ymax, y);
    }
  }
  if (xmin > xmax) { xmin = 0; xmax = 1; ymin = 0; ymax = 1; }
  if (xmax == xmin) xmax = xmin + 1;
  if (ymax == ymin) ymax = ymin + 1;

  auto tx = [&](double x) {
    if (log_x_) {
      const double lo = std::log10(std::max(xmin, 1e-12));
      const double hi = std::log10(std::max(xmax, 1e-12));
      const double v = std::log10(std::max(x, 1e-12));
      return (v - lo) / (hi - lo);
    }
    return (x - xmin) / (xmax - xmin);
  };

  std::vector<std::string> grid(static_cast<std::size_t>(rows_),
                                std::string(static_cast<std::size_t>(cols_), ' '));
  for (const auto& s : series_) {
    for (auto [x, y] : s.pts) {
      int cx = static_cast<int>(std::lround(tx(x) * (cols_ - 1)));
      int cy = static_cast<int>(std::lround((y - ymin) / (ymax - ymin) * (rows_ - 1)));
      cx = std::clamp(cx, 0, cols_ - 1);
      cy = std::clamp(cy, 0, rows_ - 1);
      grid[static_cast<std::size_t>(rows_ - 1 - cy)][static_cast<std::size_t>(cx)] = s.glyph;
    }
  }

  char buf[64];
  std::string out = title_ + "\n";
  if (!ylabel_.empty()) out += "  y: " + ylabel_ + "\n";
  for (int r = 0; r < rows_; ++r) {
    const double yv = ymax - (ymax - ymin) * r / (rows_ - 1);
    std::snprintf(buf, sizeof(buf), "%9.2f |", yv);
    out += buf + grid[static_cast<std::size_t>(r)] + "\n";
  }
  out += "          +" + std::string(static_cast<std::size_t>(cols_), '-') + "\n";
  std::snprintf(buf, sizeof(buf), "%.3g", xmin);
  std::string axis = "           ";
  axis += buf;
  std::snprintf(buf, sizeof(buf), "%.3g", xmax);
  const std::string right = buf;
  if (axis.size() + right.size() < static_cast<std::size_t>(cols_) + 11) {
    axis += std::string(static_cast<std::size_t>(cols_) + 11 - axis.size() - right.size(), ' ');
  }
  axis += right;
  out += axis + (log_x_ ? "  (log x)" : "") + "\n";
  if (!xlabel_.empty()) out += "  x: " + xlabel_ + "\n";
  return out;
}

}  // namespace crfs
