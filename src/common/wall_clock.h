// Thin monotonic-clock helpers for the real (non-simulated) measurement
// paths: the raw-bandwidth bench and the real checkpoint examples.
#pragma once

#include <chrono>

namespace crfs {

/// Seconds since an arbitrary monotonic epoch.
inline double monotonic_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

/// Scope timer: Stopwatch sw; ... ; double s = sw.elapsed_seconds();
class Stopwatch {
 public:
  Stopwatch() : start_(monotonic_seconds()) {}
  void reset() { start_ = monotonic_seconds(); }
  double elapsed_seconds() const { return monotonic_seconds() - start_; }

 private:
  double start_;
};

}  // namespace crfs
