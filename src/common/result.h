// Result<T>: lightweight expected-style error handling for IO paths.
//
// CRFS hot paths (write aggregation, chunk flushing) must not throw:
// exceptions crossing thread-pool boundaries would tear down IO workers.
// All fallible filesystem operations return Result<T> / Status instead.
#pragma once

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>
#include <variant>

namespace crfs {

/// An error code plus human-readable context. `code` uses errno values so
/// backend errors can be surfaced unchanged through the POSIX-style API.
struct Error {
  int code = 0;          ///< errno-compatible error code (0 == no error).
  std::string context;   ///< what operation failed, e.g. "pwrite ckpt.img".

  /// Builds an Error from the current errno.
  static Error from_errno(std::string ctx) { return Error{errno, std::move(ctx)}; }

  /// Formats as "context: strerror(code)".
  std::string to_string() const {
    if (context.empty()) return std::strerror(code);
    return context + ": " + std::strerror(code);
  }
};

/// Result of an operation that yields a T on success or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Error err) : v_(std::move(err)) {}            // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  /// Precondition: ok(). The contained success value.
  T& value() & { return std::get<T>(v_); }
  const T& value() const& { return std::get<T>(v_); }
  /// Rvalue access returns BY VALUE (moved out), so patterns like
  /// `for (auto& x : f().value())` are lifetime-safe: the materialised
  /// return value is extended by the range-for, not a dangling reference
  /// into the destroyed temporary Result.
  T value() && { return std::get<T>(std::move(v_)); }

  /// Precondition: !ok(). The contained error.
  const Error& error() const { return std::get<Error>(v_); }

  /// value() if ok, otherwise `fallback`.
  T value_or(T fallback) const { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Error> v_;
};

/// Result of an operation with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;                                   ///< success
  Status(Error err) : err_(std::move(err)), failed_(true) {}  // NOLINT

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const { return err_; }

  static Status success() { return Status{}; }

 private:
  Error err_{};
  bool failed_ = false;
};

/// Propagates an error from an inner call; usable in functions returning
/// Result<T> or Status.
#define CRFS_RETURN_IF_ERROR(expr)                       \
  do {                                                   \
    auto _crfs_status = (expr);                          \
    if (!_crfs_status.ok()) return _crfs_status.error(); \
  } while (0)

}  // namespace crfs
