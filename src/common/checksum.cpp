#include "common/checksum.h"

#include <array>

namespace crfs {
namespace {

constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ULL;  // ECMA-182, reflected

std::array<std::uint64_t, 256> make_table() {
  std::array<std::uint64_t, 256> table{};
  for (std::uint64_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[static_cast<std::size_t>(i)] = crc;
  }
  return table;
}

const std::array<std::uint64_t, 256>& table() {
  static const auto t = make_table();
  return t;
}

constexpr std::uint32_t kPoly32 = 0xEDB88320U;  // IEEE 802.3, reflected

std::array<std::uint32_t, 256> make_table32() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly32 : crc >> 1;
    }
    table[static_cast<std::size_t>(i)] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table32() {
  static const auto t = make_table32();
  return t;
}

}  // namespace

Crc64::Crc64() : state_(~0ULL) {}

void Crc64::update(std::span<const std::byte> data) {
  update(data.data(), data.size());
}

void Crc64::update(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& t = table();
  for (std::size_t i = 0; i < size; ++i) {
    state_ = t[(state_ ^ p[i]) & 0xFF] ^ (state_ >> 8);
  }
}

std::uint64_t Crc64::of(const void* data, std::size_t size) {
  Crc64 c;
  c.update(data, size);
  return c.digest();
}

Crc32::Crc32() : state_(~0U) {}

void Crc32::update(std::span<const std::byte> data) {
  update(data.data(), data.size());
}

void Crc32::update(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& t = table32();
  for (std::size_t i = 0; i < size; ++i) {
    state_ = t[(state_ ^ p[i]) & 0xFF] ^ (state_ >> 8);
  }
}

std::uint32_t Crc32::of(const void* data, std::size_t size) {
  Crc32 c;
  c.update(data, size);
  return c.digest();
}

}  // namespace crfs
