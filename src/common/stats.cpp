#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace crfs {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  n_ += 1;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) { *this = other; return; }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  return std::accumulate(xs_.begin(), xs_.end(), 0.0) / static_cast<double>(xs_.size());
}

void Samples::ensure_sorted() {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Samples::min() {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.front();
}

double Samples::max() {
  ensure_sorted();
  return xs_.empty() ? 0.0 : xs_.back();
}

double Samples::percentile(double p) {
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  if (xs_.size() == 1) return xs_[0];
  const double rank = (p / 100.0) * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

}  // namespace crfs
