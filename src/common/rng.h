// Deterministic pseudo-random number generation.
//
// Every stochastic component in this repository (process-image synthesis,
// DES service-time jitter, workload generators) draws from Xoshiro256**
// seeded via SplitMix64 so that all experiments are bit-reproducible from
// a single seed. std::mt19937 is avoided: its state is large and its
// streams are not cheaply splittable per simulated process.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace crfs {

/// SplitMix64: used to expand a single user seed into generator state and
/// to derive independent child seeds (one per simulated process).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
class Rng {
 public:
  /// Seeds all 256 bits of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  /// Derives an independent child generator; stream `i` of this seed.
  Rng child(std::uint64_t i) const {
    SplitMix64 sm(state_[0] ^ (state_[3] + 0x632be59bd9b4e019ULL * (i + 1)));
    return Rng(sm.next());
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Precondition: n > 0.
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method: unbiased.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      std::uint64_t t = -n % n;
      while (lo < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Exponential with the given mean (service-time jitter in the DES).
  double exponential(double mean) {
    double u;
    do { u = next_double(); } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (one value per call; no caching so the
  /// stream stays position-independent for reproducibility).
  double normal(double mean, double stddev) {
    double u1;
    do { u1 = next_double(); } while (u1 <= 0.0);
    const double u2 = next_double();
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

  /// True with probability p.
  bool bernoulli(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace crfs
