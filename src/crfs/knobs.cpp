#include "crfs/knobs.h"

#include <algorithm>
#include <cstdio>

namespace crfs {
namespace {

// Deterministic numeric rendering for knob values: integral values print
// with no fraction (the common case — chunk counts, batch sizes, ms), the
// rest with %g. Byte-identical output is part of the decision-log replay
// contract, so everything funnels through here.
void append_num(std::string& out, double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  out += buf;
}

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

}  // namespace

double KnobSnapshot::get(std::string_view name, double fallback) const {
  const auto it = std::lower_bound(
      values.begin(), values.end(), name,
      [](const auto& kv, std::string_view n) { return kv.first < n; });
  if (it == values.end() || it->first != name) return fallback;
  return it->second;
}

void KnobPlane::define(KnobDef def, double initial, ApplyFn apply) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::lower_bound(
      defs_.begin(), defs_.end(), def.name,
      [](const KnobDef& d, const std::string& n) { return d.name < n; });
  const auto idx = static_cast<std::size_t>(it - defs_.begin());
  defs_.insert(it, std::move(def));
  applies_.insert(applies_.begin() + static_cast<std::ptrdiff_t>(idx), std::move(apply));
  values_.insert(values_.begin() + static_cast<std::ptrdiff_t>(idx), initial);
  publish_locked();
}

TuneResult KnobPlane::tune(std::string_view name, double requested) {
  std::lock_guard<std::mutex> lock(mu_);
  TuneResult r;
  r.knob = std::string(name);
  r.requested = requested;
  r.generation = generation_;

  const auto it = std::lower_bound(
      defs_.begin(), defs_.end(), name,
      [](const KnobDef& d, std::string_view n) { return d.name < n; });
  if (it == defs_.end() || it->name != name) {
    r.outcome = "vetoed";
    r.reason = "unknown knob '" + std::string(name) + "'";
    return r;
  }
  const auto idx = static_cast<std::size_t>(it - defs_.begin());
  const KnobDef& def = defs_[idx];
  r.from = values_[idx];

  double want = requested;
  bool clamped = false;
  if (want < def.min_value) {
    want = def.min_value;
    clamped = true;
  } else if (want > def.max_value) {
    want = def.max_value;
    clamped = true;
  }
  if (clamped) {
    r.reason = "clamped to [";
    append_num(r.reason, def.min_value);
    r.reason += ", ";
    append_num(r.reason, def.max_value);
    r.reason += "]";
  }

  double achieved = want;
  std::string apply_reason;
  if (applies_[idx] && !applies_[idx](want, &achieved, &apply_reason)) {
    r.outcome = "vetoed";
    r.to = r.from;
    r.reason = apply_reason.empty() ? "apply refused" : apply_reason;
    return r;
  }
  if (achieved != want) {
    clamped = true;
    if (!apply_reason.empty()) {
      if (!r.reason.empty()) r.reason += "; ";
      r.reason += apply_reason;
    }
  }

  values_[idx] = achieved;
  generation_ += 1;
  publish_locked();
  r.to = achieved;
  r.outcome = clamped ? "clamped" : "applied";
  r.generation = generation_;
  return r;
}

const KnobSnapshot* KnobPlane::snapshot() const {
  const KnobSnapshot* s = current_.load(std::memory_order_acquire);
  return s != nullptr ? s : &empty_;
}

std::vector<KnobDef> KnobPlane::defs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return defs_;
}

void KnobPlane::publish_locked() {
  auto snap = std::make_unique<KnobSnapshot>();
  snap->generation = generation_;
  snap->values.reserve(defs_.size());
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    snap->values.emplace_back(defs_[i].name, values_[i]);
  }
  current_.store(snap.get(), std::memory_order_release);
  history_.push_back(std::move(snap));
}

std::string KnobPlane::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"generation\":";
  append_num(out, static_cast<double>(generation_));
  out += ",\"knobs\":[";
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"name\":\"";
    append_escaped(out, defs_[i].name);
    out += "\",\"value\":";
    append_num(out, values_[i]);
    out += ",\"min\":";
    append_num(out, defs_[i].min_value);
    out += ",\"max\":";
    append_num(out, defs_[i].max_value);
    out += ",\"unit\":\"";
    append_escaped(out, defs_[i].unit);
    out += "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace crfs
