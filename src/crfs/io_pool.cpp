#include "crfs/io_pool.h"

#include "crfs/file_table.h"

namespace crfs {

IoThreadPool::IoThreadPool(unsigned threads, WorkQueue& queue, BufferPool& pool,
                           BackendFs& backend)
    : queue_(queue), pool_(pool), backend_(backend) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

IoThreadPool::~IoThreadPool() {
  queue_.shutdown();
  for (auto& w : workers_) w.join();
}

void IoThreadPool::worker_loop() {
  while (auto job = queue_.pop()) {
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    const Status status =
        backend_.pwrite(job->file->backend_file(), job->chunk->payload(),
                        job->chunk->file_offset());
    if (status.ok()) {
      chunks_written_.fetch_add(1, std::memory_order_relaxed);
      bytes_written_.fetch_add(job->chunk->fill(), std::memory_order_relaxed);
    }
    job->file->complete_one(status);
    pool_.release(std::move(job->chunk));
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

}  // namespace crfs
