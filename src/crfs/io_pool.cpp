#include "crfs/io_pool.h"

#include <algorithm>
#include <span>

#include "crfs/file_table.h"

namespace crfs {

IoThreadPool::IoThreadPool(unsigned threads, WorkQueue& queue, BufferPool& pool,
                           BackendFs& backend, IoPoolObs observe, unsigned batch)
    : queue_(queue), pool_(pool), backend_(backend), obs_(observe),
      batch_(batch == 0 ? 1 : batch) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

IoThreadPool::~IoThreadPool() {
  queue_.shutdown();
  for (auto& w : workers_) w.join();
}

void IoThreadPool::worker_loop() {
  for (;;) {
    std::vector<WriteJob> batch = queue_.pop_batch(batch_);
    if (batch.empty()) return;  // shutdown and drained
    // The whole batch counts as in-flight until its last chunk is
    // released: the pool-exhaustion rescue in Crfs::acquire_chunk treats
    // in_flight() > 0 as "chunks are coming back soon", which must cover
    // chunks parked in a worker's batch, not just the one being written.
    in_flight_.fetch_add(static_cast<unsigned>(batch.size()),
                         std::memory_order_acq_rel);
    if (obs_.batch_chunks != nullptr) obs_.batch_chunks->record(batch.size());

    // Group by file so interleaved streams don't break up each other's
    // runs — but stable: FIFO order is preserved WITHIN each file, so two
    // overlapping chunks of one file (an overwrite) are still written in
    // program order. Sorting by offset instead would silently invert
    // last-writer-wins for overlaps. A sequential stream enqueues its
    // chunks in ascending offset order anyway, so the common case still
    // forms maximal adjacent runs.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const WriteJob& a, const WriteJob& b) {
                       return a.file.get() < b.file.get();
                     });
    std::size_t i = 0;
    while (i < batch.size()) {
      std::size_t j = i + 1;
      while (j < batch.size() && batch[j].file.get() == batch[i].file.get() &&
             batch[j - 1].chunk->append_point() == batch[j].chunk->file_offset()) {
        ++j;
      }
      write_run(std::span<WriteJob>{batch}.subspan(i, j - i));
      i = j;
    }
  }
}

void IoThreadPool::write_run(std::span<WriteJob> run) {
  FileEntry& file = *run.front().file;
  const std::uint64_t offset = run.front().chunk->file_offset();
  std::uint64_t total = 0;
  for (const WriteJob& job : run) total += job.chunk->fill();

  // Chunk-lifecycle ledger: one pwrite-start/pwrite-complete stamp pair
  // per backend call is the single time source for the pwrite histogram,
  // the trace span, per-chunk durability lag (copy-in -> durable, via
  // Chunk::born_ns), and epoch attribution. Two clock reads per
  // chunk-sized-or-larger IO: noise next to the IO itself.
  const std::uint64_t t_start = obs::now_ns();
  Status status;
  if (run.size() == 1) {
    status = backend_.pwrite(file.backend_file(), run.front().chunk->payload(), offset);
  } else {
    std::vector<BackendIoVec> iov;
    iov.reserve(run.size());
    for (const WriteJob& job : run) {
      iov.push_back(BackendIoVec{job.chunk->payload().data(), job.chunk->fill()});
    }
    status = backend_.pwritev(file.backend_file(), iov, offset);
    if (obs_.coalesced_pwrites != nullptr) obs_.coalesced_pwrites->add(1);
  }
  const std::uint64_t t_done = obs::now_ns();
  if (obs_.pwrite_ns != nullptr) obs_.pwrite_ns->record(t_done - t_start);
  if (obs_.trace != nullptr && obs_.trace->enabled()) {
    obs_.trace->ring().record("pwrite", t_start, t_done - t_start);
  }

  if (status.ok()) {
    chunks_written_.fetch_add(run.size(), std::memory_order_relaxed);
    bytes_written_.fetch_add(total, std::memory_order_relaxed);
    if (obs_.pwrite_bytes != nullptr) obs_.pwrite_bytes->add(total);
    // The run's jobs all carry the same file but may span an epoch
    // rotation; attribute durability per job, and the backend call to
    // the run's leading epoch.
    if (run.front().epoch != nullptr) {
      run.front().epoch->backend_writes.fetch_add(1, std::memory_order_relaxed);
    }
    for (const WriteJob& job : run) {
      const std::uint64_t born = job.chunk->born_ns();
      const std::uint64_t lag = born != 0 && t_done > born ? t_done - born : 0;
      const std::uint64_t residency =
          job.enqueue_ns != 0 && job.dequeue_ns > job.enqueue_ns
              ? job.dequeue_ns - job.enqueue_ns
              : 0;
      if (obs_.durability_lag_ns != nullptr && born != 0) {
        obs_.durability_lag_ns->record(lag);
      }
      if (job.epoch != nullptr) {
        job.epoch->record_chunk_durable(job.chunk->fill(), lag, residency);
      }
    }
  } else {
    if (obs_.pwrite_errors != nullptr) obs_.pwrite_errors->add(1);
    for (const WriteJob& job : run) {
      if (job.epoch != nullptr) {
        job.epoch->io_errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (obs_.events != nullptr) {
      const Error& err = status.error();
      obs_.events->push(obs::Event{
          obs::Severity::kCritical, "pwrite_error",
          file.path() + " offset=" + std::to_string(offset) + " len=" +
              std::to_string(total) + " chunks=" + std::to_string(run.size()) +
              " errno=" + std::to_string(err.code) + " (" + err.to_string() + ")",
          static_cast<double>(err.code), 0.0, t_done});
    }
  }
  // Every chunk in the run shares the run's fate: complete_one keeps
  // close()/fsync() blocked until write_chunks == complete_chunks, and a
  // failed run marks the sticky FileEntry error once per chunk.
  for (WriteJob& job : run) {
    job.file->complete_one(status);
    pool_.release(std::move(job.chunk));
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  }
  if (obs_.on_run_complete) obs_.on_run_complete();
}

}  // namespace crfs
