#include "crfs/io_pool.h"

#include "crfs/file_table.h"

namespace crfs {

IoThreadPool::IoThreadPool(unsigned threads, WorkQueue& queue, BufferPool& pool,
                           BackendFs& backend, IoPoolObs observe)
    : queue_(queue), pool_(pool), backend_(backend), obs_(observe) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

IoThreadPool::~IoThreadPool() {
  queue_.shutdown();
  for (auto& w : workers_) w.join();
}

void IoThreadPool::worker_loop() {
  while (auto job = queue_.pop()) {
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    // One clock pair per chunk-sized pwrite: noise next to the IO itself.
    const bool timed = obs_.pwrite_ns != nullptr ||
                       (obs_.trace != nullptr && obs_.trace->enabled());
    const std::uint64_t t0 = timed ? obs::now_ns() : 0;
    const Status status =
        backend_.pwrite(job->file->backend_file(), job->chunk->payload(),
                        job->chunk->file_offset());
    if (timed) {
      const std::uint64_t dur = obs::now_ns() - t0;
      if (obs_.pwrite_ns != nullptr) obs_.pwrite_ns->record(dur);
      if (obs_.trace != nullptr && obs_.trace->enabled()) {
        obs_.trace->ring().record("pwrite", t0, dur);
      }
    }
    if (status.ok()) {
      chunks_written_.fetch_add(1, std::memory_order_relaxed);
      bytes_written_.fetch_add(job->chunk->fill(), std::memory_order_relaxed);
      if (obs_.pwrite_bytes != nullptr) obs_.pwrite_bytes->add(job->chunk->fill());
    } else {
      if (obs_.pwrite_errors != nullptr) obs_.pwrite_errors->add(1);
      if (obs_.events != nullptr) {
        const Error& err = status.error();
        obs_.events->push(obs::Event{
            obs::Severity::kCritical, "pwrite_error",
            job->file->path() + " offset=" + std::to_string(job->chunk->file_offset()) +
                " len=" + std::to_string(job->chunk->fill()) + " errno=" +
                std::to_string(err.code) + " (" + err.to_string() + ")",
            static_cast<double>(err.code), 0.0, obs::now_ns()});
      }
    }
    job->file->complete_one(status);
    pool_.release(std::move(job->chunk));
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

}  // namespace crfs
