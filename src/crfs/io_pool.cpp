#include "crfs/io_pool.h"

#include <algorithm>
#include <span>

#include "crfs/file_table.h"

namespace crfs {

IoThreadPool::IoThreadPool(unsigned threads, WorkQueue& queue, BufferPool& pool,
                           BackendFs& backend, IoPoolObs observe, unsigned batch)
    : queue_(queue), pool_(pool), backend_(backend), obs_(observe),
      batch_(batch == 0 ? 1 : batch) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

IoThreadPool::~IoThreadPool() {
  queue_.shutdown();
  for (auto& w : workers_) w.join();
}

void IoThreadPool::worker_loop() {
  for (;;) {
    std::vector<WriteJob> batch = queue_.pop_batch(batch_);
    if (batch.empty()) return;  // shutdown and drained
    // The whole batch counts as in-flight until its last chunk is
    // released: the pool-exhaustion rescue in Crfs::acquire_chunk treats
    // in_flight() > 0 as "chunks are coming back soon", which must cover
    // chunks parked in a worker's batch, not just the one being written.
    in_flight_.fetch_add(static_cast<unsigned>(batch.size()),
                         std::memory_order_acq_rel);
    if (obs_.batch_chunks != nullptr) obs_.batch_chunks->record(batch.size());

    // Group by file so interleaved streams don't break up each other's
    // runs — but stable: FIFO order is preserved WITHIN each file, so two
    // overlapping chunks of one file (an overwrite) are still written in
    // program order. Sorting by offset instead would silently invert
    // last-writer-wins for overlaps. A sequential stream enqueues its
    // chunks in ascending offset order anyway, so the common case still
    // forms maximal adjacent runs.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const WriteJob& a, const WriteJob& b) {
                       return a.file.get() < b.file.get();
                     });
    std::size_t i = 0;
    while (i < batch.size()) {
      std::size_t j = i + 1;
      while (j < batch.size() && batch[j].file.get() == batch[i].file.get() &&
             batch[j - 1].chunk->append_point() == batch[j].chunk->file_offset()) {
        ++j;
      }
      write_run(std::span<WriteJob>{batch}.subspan(i, j - i));
      i = j;
    }
  }
}

void IoThreadPool::write_run(std::span<WriteJob> run) {
  FileEntry& file = *run.front().file;
  const std::uint64_t offset = run.front().chunk->file_offset();
  std::uint64_t total = 0;
  for (const WriteJob& job : run) total += job.chunk->fill();

  // One clock pair per backend call (chunk-sized or larger): noise next
  // to the IO itself.
  const bool timed = obs_.pwrite_ns != nullptr ||
                     (obs_.trace != nullptr && obs_.trace->enabled());
  const std::uint64_t t0 = timed ? obs::now_ns() : 0;
  Status status;
  if (run.size() == 1) {
    status = backend_.pwrite(file.backend_file(), run.front().chunk->payload(), offset);
  } else {
    std::vector<BackendIoVec> iov;
    iov.reserve(run.size());
    for (const WriteJob& job : run) {
      iov.push_back(BackendIoVec{job.chunk->payload().data(), job.chunk->fill()});
    }
    status = backend_.pwritev(file.backend_file(), iov, offset);
    if (obs_.coalesced_pwrites != nullptr) obs_.coalesced_pwrites->add(1);
  }
  if (timed) {
    const std::uint64_t dur = obs::now_ns() - t0;
    if (obs_.pwrite_ns != nullptr) obs_.pwrite_ns->record(dur);
    if (obs_.trace != nullptr && obs_.trace->enabled()) {
      obs_.trace->ring().record("pwrite", t0, dur);
    }
  }

  if (status.ok()) {
    chunks_written_.fetch_add(run.size(), std::memory_order_relaxed);
    bytes_written_.fetch_add(total, std::memory_order_relaxed);
    if (obs_.pwrite_bytes != nullptr) obs_.pwrite_bytes->add(total);
  } else {
    if (obs_.pwrite_errors != nullptr) obs_.pwrite_errors->add(1);
    if (obs_.events != nullptr) {
      const Error& err = status.error();
      obs_.events->push(obs::Event{
          obs::Severity::kCritical, "pwrite_error",
          file.path() + " offset=" + std::to_string(offset) + " len=" +
              std::to_string(total) + " chunks=" + std::to_string(run.size()) +
              " errno=" + std::to_string(err.code) + " (" + err.to_string() + ")",
          static_cast<double>(err.code), 0.0, obs::now_ns()});
    }
  }
  // Every chunk in the run shares the run's fate: complete_one keeps
  // close()/fsync() blocked until write_chunks == complete_chunks, and a
  // failed run marks the sticky FileEntry error once per chunk.
  for (WriteJob& job : run) {
    job.file->complete_one(status);
    pool_.release(std::move(job.chunk));
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

}  // namespace crfs
