#include "crfs/io_pool.h"

#include <algorithm>

#include "crfs/file_table.h"

namespace crfs {

IoThreadPool::IoThreadPool(unsigned threads, WorkQueue& queue, BufferPool& pool,
                           BackendFs& backend, IoPoolObs observe, unsigned batch,
                           IoEngineOptions engine, std::vector<ChunkRegion> regions)
    : queue_(queue), pool_(pool), backend_(backend), obs_(std::move(observe)),
      batch_(batch == 0 ? 1 : batch) {
  // One engine per worker: each uring worker owns its ring outright, so
  // submission and reaping never take a cross-thread lock. Feature
  // detection runs once per worker; a fallback on one implies fallback on
  // all (same kernel), so engine_name() can report engines_[0].
  auto complete = [this](IoRun run, Status status, std::uint64_t t_start,
                         std::uint64_t t_done) {
    complete_run(std::move(run), std::move(status), t_start, t_done);
  };
  const unsigned n = threads == 0 ? 1 : threads;
  engines_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    engines_.push_back(make_io_engine(engine, backend_, regions, obs_.engine, complete));
  }
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

IoThreadPool::~IoThreadPool() {
  queue_.shutdown();
  for (auto& w : workers_) w.join();
}

void IoThreadPool::worker_loop(unsigned idx) {
  IoEngine& eng = *engines_[idx];
  for (;;) {
    // Submission window: how many more chunks this worker may take on.
    // Sync's capacity is effectively unbounded (completions are inline),
    // so want == batch_ and the loop degenerates to the original
    // pop/write/repeat. Uring keeps pulling work while the ring has room
    // and reaps when it does not.
    const std::size_t inflight = eng.inflight();
    const std::size_t room =
        eng.capacity() > inflight ? eng.capacity() - inflight : 0;
    // batch_ and the engine's capacity are both re-read every iteration,
    // so a runtime tune (set_batch / set_uring_depth) lands on the next
    // submission window without waking anyone.
    const std::size_t want =
        std::min<std::size_t>(batch_.load(std::memory_order_relaxed), room);
    if (want == 0) {
      eng.reap(/*wait=*/true);
      continue;
    }

    std::vector<WriteJob> batch;
    if (inflight == 0) {
      // Nothing to reap: park in the blocking pop. Shutdown is detected
      // here — an empty pop_batch means drained, and inflight == 0 means
      // the engine is drained too, so exiting loses nothing.
      batch = queue_.pop_batch(want);
      if (batch.empty()) return;
    } else {
      // Completions pending: never block on the queue. Either take more
      // work or turn the idle moment into a completion wait.
      batch = queue_.try_pop_batch(want);
      if (batch.empty()) {
        eng.reap(/*wait=*/true);
        continue;
      }
    }

    // The whole batch counts as in-flight until its last chunk is
    // released: the pool-exhaustion rescue in Crfs::acquire_chunk treats
    // in_flight() > 0 as "chunks are coming back soon", which must cover
    // chunks parked in a worker's batch or ring, not just the one being
    // written.
    in_flight_.fetch_add(static_cast<unsigned>(batch.size()),
                         std::memory_order_acq_rel);
    if (obs_.batch_chunks != nullptr) obs_.batch_chunks->record(batch.size());

    // Group by file so interleaved streams don't break up each other's
    // runs — but stable: FIFO order is preserved WITHIN each file, so two
    // overlapping chunks of one file (an overwrite) are still written in
    // program order. Sorting by offset instead would silently invert
    // last-writer-wins for overlaps. A sequential stream enqueues its
    // chunks in ascending offset order anyway, so the common case still
    // forms maximal adjacent runs.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const WriteJob& a, const WriteJob& b) {
                       return a.file.get() < b.file.get();
                     });
    std::size_t i = 0;
    while (i < batch.size()) {
      std::size_t j = i + 1;
      while (j < batch.size() && batch[j].file.get() == batch[i].file.get() &&
             batch[j - 1].chunk->append_point() == batch[j].chunk->file_offset()) {
        ++j;
      }
      IoRun run;
      run.offset = batch[i].chunk->file_offset();
      run.jobs.reserve(j - i);
      for (std::size_t k = i; k < j; ++k) {
        run.total += batch[k].chunk->fill();
        run.jobs.push_back(std::move(batch[k]));
      }
      eng.submit(std::move(run));
      i = j;
    }
    eng.flush();
    eng.reap(/*wait=*/false);
  }
}

void IoThreadPool::complete_run(IoRun run, Status status, std::uint64_t t_start,
                                std::uint64_t t_done) {
  // t_start/t_done bracket the backend IO (stamped by the engine): the
  // single time source for the pwrite histogram, the trace span,
  // per-chunk durability lag (copy-in -> durable, via Chunk::born_ns),
  // and epoch attribution.
  FileEntry& file = *run.jobs.front().file;
  if (run.jobs.size() > 1 && obs_.coalesced_pwrites != nullptr) {
    obs_.coalesced_pwrites->add(1);
  }
  if (obs_.pwrite_ns != nullptr) obs_.pwrite_ns->record(t_done - t_start);
  const bool tracing = obs_.trace != nullptr && obs_.trace->enabled();
  const char* path_tag = "";
  if (tracing) {
    // Stitch the cross-thread chain: the producer recorded write/pool_wait
    // spans under the chunk's trace id; here the worker retro-records the
    // queue and submit-wait stages from the stamps the job already carries
    // (no new clock reads), then the device span. All land on this
    // worker's own ring — single-writer invariant holds.
    path_tag = obs_.trace->intern(file.path());
    obs::TraceRing& ring = obs_.trace->ring();
    for (const WriteJob& job : run.jobs) {
      const std::uint64_t id = job.chunk->trace_id();
      if (job.enqueue_ns != 0 && job.dequeue_ns > job.enqueue_ns) {
        ring.record("queue", job.enqueue_ns, job.dequeue_ns - job.enqueue_ns, id,
                    path_tag);
      }
      if (job.dequeue_ns != 0 && t_start > job.dequeue_ns) {
        ring.record("submit", job.dequeue_ns, t_start - job.dequeue_ns, id, path_tag);
      }
    }
    ring.record("pwrite", t_start, t_done - t_start,
                run.jobs.front().chunk->trace_id(), path_tag);
  }
  // Critical-path attribution: the backend call is one event, so its
  // submit-wait and device time are charged ONCE per run, to the run's
  // leading epoch (mirrors the backend_writes attribution below).
  if (run.jobs.front().epoch != nullptr) {
    obs::EpochState& ep = *run.jobs.front().epoch;
    const std::uint64_t dq = run.jobs.front().dequeue_ns;
    if (dq != 0 && t_start > dq) {
      ep.submit_wait_ns.fetch_add(t_start - dq, std::memory_order_relaxed);
    }
    if (t_done > t_start) {
      ep.device_ns.fetch_add(t_done - t_start, std::memory_order_relaxed);
    }
  }

  if (status.ok()) {
    chunks_written_.fetch_add(run.jobs.size(), std::memory_order_relaxed);
    bytes_written_.fetch_add(run.total, std::memory_order_relaxed);
    if (obs_.pwrite_bytes != nullptr) obs_.pwrite_bytes->add(run.total);
    // The run's jobs all carry the same file but may span an epoch
    // rotation; attribute durability per job, and the backend call to
    // the run's leading epoch.
    if (run.jobs.front().epoch != nullptr) {
      run.jobs.front().epoch->backend_writes.fetch_add(1, std::memory_order_relaxed);
    }
    for (const WriteJob& job : run.jobs) {
      const std::uint64_t born = job.chunk->born_ns();
      const std::uint64_t lag = born != 0 && t_done > born ? t_done - born : 0;
      const std::uint64_t residency =
          job.enqueue_ns != 0 && job.dequeue_ns > job.enqueue_ns
              ? job.dequeue_ns - job.enqueue_ns
              : 0;
      if (obs_.durability_lag_ns != nullptr && born != 0) {
        obs_.durability_lag_ns->record(lag);
      }
      if (job.epoch != nullptr) {
        job.epoch->record_chunk_durable(job.chunk->fill(), lag, residency);
      }
      if (obs_.slow != nullptr && obs_.slow->over_threshold(lag, t_done - t_start)) {
        // Tail-latency forensics: this chunk blew the threshold — freeze
        // its whole causal chain plus the pipeline state it saw. Cold by
        // construction (the IO already took >= threshold).
        obs::SlowExemplar ex;
        ex.trace_id = job.chunk->trace_id();
        ex.path = file.path();
        ex.offset = job.chunk->file_offset();
        ex.len = job.chunk->fill();
        ex.born_ns = born;
        ex.enqueue_ns = job.enqueue_ns;
        ex.dequeue_ns = job.dequeue_ns;
        ex.submit_ns = t_start;
        ex.durable_ns = t_done;
        ex.pool_stall_ns = job.chunk->stall_ns();
        ex.fill_ns = born != 0 && job.enqueue_ns > born ? job.enqueue_ns - born : 0;
        ex.queue_ns = residency;
        ex.submit_wait_ns =
            job.dequeue_ns != 0 && t_start > job.dequeue_ns ? t_start - job.dequeue_ns : 0;
        ex.device_ns = t_done > t_start ? t_done - t_start : 0;
        ex.total_lag_ns = lag;
        ex.queue_depth = queue_.depth();
        ex.free_chunks = pool_.free_chunks();
        ex.knob_generation = obs_.knob_generation ? obs_.knob_generation() : 0;
        ex.engine = engines_.front()->name();
        obs_.slow->capture(std::move(ex));
        if (obs_.slow_captured != nullptr) obs_.slow_captured->add(1);
      }
    }
  } else {
    if (obs_.pwrite_errors != nullptr) obs_.pwrite_errors->add(1);
    for (const WriteJob& job : run.jobs) {
      if (job.epoch != nullptr) {
        job.epoch->io_errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (obs_.events != nullptr) {
      const Error& err = status.error();
      obs_.events->push(obs::Event{
          obs::Severity::kCritical, "pwrite_error",
          file.path() + " offset=" + std::to_string(run.offset) + " len=" +
              std::to_string(run.total) + " chunks=" + std::to_string(run.jobs.size()) +
              " errno=" + std::to_string(err.code) + " (" + err.to_string() + ")",
          static_cast<double>(err.code), 0.0, t_done});
    }
  }
  // Every chunk in the run shares the run's fate: complete_one keeps
  // close()/fsync() blocked until write_chunks == complete_chunks, and a
  // failed run marks the sticky FileEntry error once per chunk.
  for (WriteJob& job : run.jobs) {
    job.file->complete_one(status);
    pool_.release(std::move(job.chunk));
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  }
  if (obs_.on_run_complete) obs_.on_run_complete();
}

}  // namespace crfs
