// IoThreadPool: the pool of worker IO threads draining the work queue
// (paper §IV-B). Configuring the thread count throttles the number of
// outstanding chunk writes hitting the backend at once.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "backend/backend_fs.h"
#include "crfs/buffer_pool.h"
#include "crfs/work_queue.h"

namespace crfs {

class IoThreadPool {
 public:
  /// Starts `threads` workers. Each worker loops: pop a chunk, pwrite it
  /// to the backend at its recorded offset, bump the owning file's
  /// complete-chunk count, return the chunk to the pool.
  IoThreadPool(unsigned threads, WorkQueue& queue, BufferPool& pool, BackendFs& backend);

  /// Drains the queue and joins all workers.
  ~IoThreadPool();

  IoThreadPool(const IoThreadPool&) = delete;
  IoThreadPool& operator=(const IoThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Chunks written so far across all workers.
  std::uint64_t chunks_written() const { return chunks_written_.load(); }
  std::uint64_t bytes_written() const { return bytes_written_.load(); }

  /// Jobs currently being written by a worker (popped, not yet finished).
  unsigned in_flight() const { return in_flight_.load(); }

 private:
  void worker_loop();

  WorkQueue& queue_;
  BufferPool& pool_;
  BackendFs& backend_;
  std::atomic<std::uint64_t> chunks_written_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<unsigned> in_flight_{0};
  std::vector<std::thread> workers_;
};

}  // namespace crfs
