// IoThreadPool: the pool of worker IO threads draining the work queue
// (paper §IV-B). Configuring the thread count throttles the number of
// outstanding chunk writes hitting the backend at once.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "backend/backend_fs.h"
#include "crfs/buffer_pool.h"
#include "crfs/work_queue.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace crfs {

/// Optional per-stage instrumentation for the IO workers. All pointers
/// may be null (uninstrumented pool, the default); when set they must
/// outlive the pool. The histogram/counter writes are relaxed atomics, so
/// sharing them across all workers is contention-free.
struct IoPoolObs {
  obs::LatencyHistogram* pwrite_ns = nullptr;  ///< backend pwrite latency
  obs::Counter* pwrite_bytes = nullptr;        ///< bytes successfully written
  obs::Counter* pwrite_errors = nullptr;       ///< failed backend writes
  obs::TraceCollector* trace = nullptr;        ///< span sink for "pwrite"
  /// Structured event sink: every failed pwrite is recorded here with the
  /// file path, chunk offset/length, and errno, so a dropped chunk is
  /// attributable post-hoc (the chunk's data is gone either way — the
  /// sticky FileEntry error surfaces at close/fsync, this log says what
  /// and where).
  obs::EventBuffer* events = nullptr;
  /// Batch-dequeue shape: chunks drained per pop_batch (crfs.io.batch_chunks).
  obs::LatencyHistogram* batch_chunks = nullptr;
  /// Vectored writes issued for runs of >1 adjacent chunks
  /// (crfs.io.coalesced_pwrites).
  obs::Counter* coalesced_pwrites = nullptr;
  /// Chunk-lifecycle ledger (docs/OBSERVABILITY.md "Durability lag"):
  /// copy-in (Chunk::born_ns) -> pwrite-complete, per chunk
  /// (crfs.chunk.durability_lag_ns). Recorded from the run's single
  /// completion stamp; chunks whose producer never stamped born_ns are
  /// skipped.
  obs::LatencyHistogram* durability_lag_ns = nullptr;
  /// Called after each completed run (post chunk release) — the flight
  /// recorder's throttled-refresh hook. One indirect call per backend
  /// write (chunk-sized granularity), nullptr when no recorder exists.
  std::function<void()> on_run_complete;
};

class IoThreadPool {
 public:
  /// Starts `threads` workers. Each worker loops: pop up to `batch`
  /// already-queued chunks in one lock acquisition, group them by file
  /// (keeping FIFO order within a file, so overlapping writes stay in
  /// program order), issue one vectored backend write per run of adjacent
  /// chunks, bump the owning files' complete-chunk counts, and return the
  /// chunks to the pool. `batch == 1` reproduces the original
  /// one-chunk-per-pop behaviour exactly.
  IoThreadPool(unsigned threads, WorkQueue& queue, BufferPool& pool, BackendFs& backend,
               IoPoolObs observe = {}, unsigned batch = 1);

  /// Drains the queue and joins all workers.
  ~IoThreadPool();

  IoThreadPool(const IoThreadPool&) = delete;
  IoThreadPool& operator=(const IoThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Monitoring accessors. Relaxed loads are sufficient: these counters are
  // only read for progress/occupancy reporting and for the pool-exhaustion
  // rescue in Crfs::acquire_chunk, which re-polls in a timeout loop — a
  // stale value is retried, never trusted as a synchronization point. The
  // default seq_cst load would put a fence in the rescue path's spin for
  // no correctness gain.

  /// Chunks written so far across all workers.
  std::uint64_t chunks_written() const {
    return chunks_written_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

  /// Jobs currently being written by a worker (popped, not yet finished).
  unsigned in_flight() const { return in_flight_.load(std::memory_order_relaxed); }

 private:
  void worker_loop();
  /// Writes a run of same-file, offset-adjacent jobs with one backend
  /// call, then completes and releases every chunk in the run.
  void write_run(std::span<WriteJob> run);

  WorkQueue& queue_;
  BufferPool& pool_;
  BackendFs& backend_;
  IoPoolObs obs_;
  unsigned batch_;
  std::atomic<std::uint64_t> chunks_written_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<unsigned> in_flight_{0};
  std::vector<std::thread> workers_;
};

}  // namespace crfs
