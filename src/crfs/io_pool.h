// IoThreadPool: the pool of worker IO threads draining the work queue
// (paper §IV-B). Configuring the thread count throttles the number of
// outstanding chunk writes hitting the backend at once — unless the
// async engine is selected, in which case each worker keeps up to
// uring_depth coalesced runs in flight (docs/PERFORMANCE.md "IO
// engines").
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "backend/backend_fs.h"
#include "crfs/buffer_pool.h"
#include "crfs/io_engine.h"
#include "crfs/work_queue.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/slow_store.h"
#include "obs/trace.h"

namespace crfs {

/// Optional per-stage instrumentation for the IO workers. All pointers
/// may be null (uninstrumented pool, the default); when set they must
/// outlive the pool. The histogram/counter writes are relaxed atomics, so
/// sharing them across all workers is contention-free.
struct IoPoolObs {
  obs::LatencyHistogram* pwrite_ns = nullptr;  ///< backend pwrite latency
  obs::Counter* pwrite_bytes = nullptr;        ///< bytes successfully written
  obs::Counter* pwrite_errors = nullptr;       ///< failed backend writes
  obs::TraceCollector* trace = nullptr;        ///< span sink for "pwrite"
  /// Structured event sink: every failed pwrite is recorded here with the
  /// file path, chunk offset/length, and errno, so a dropped chunk is
  /// attributable post-hoc (the chunk's data is gone either way — the
  /// sticky FileEntry error surfaces at close/fsync, this log says what
  /// and where).
  obs::EventBuffer* events = nullptr;
  /// Batch-dequeue shape: chunks drained per pop_batch (crfs.io.batch_chunks).
  obs::LatencyHistogram* batch_chunks = nullptr;
  /// Vectored writes issued for runs of >1 adjacent chunks
  /// (crfs.io.coalesced_pwrites).
  obs::Counter* coalesced_pwrites = nullptr;
  /// Chunk-lifecycle ledger (docs/OBSERVABILITY.md "Durability lag"):
  /// copy-in (Chunk::born_ns) -> pwrite-complete, per chunk
  /// (crfs.chunk.durability_lag_ns). Recorded from the run's single
  /// completion stamp; chunks whose producer never stamped born_ns are
  /// skipped.
  obs::LatencyHistogram* durability_lag_ns = nullptr;
  /// Engine-level sinks (crfs.io.inflight_depth / sqe_batch /
  /// cqe_wait_ns); only the uring engine records into them.
  IoEngineObs engine{};
  /// Tail-latency forensic store (docs/OBSERVABILITY.md "Slow exemplars"):
  /// a chunk whose durability lag or device time crosses the store's
  /// threshold gets its full causal chain captured here. The threshold
  /// check is one relaxed load plus two compares per chunk; the capture
  /// itself only fires when the IO was already slow.
  obs::SlowStore* slow = nullptr;
  obs::Counter* slow_captured = nullptr;  ///< crfs.slow.captured
  /// Knob-plane generation at capture time (0 when no knob plane); lets a
  /// slow exemplar say which tuning state it was captured under.
  std::function<std::uint64_t()> knob_generation;
  /// Called after each completed run (post chunk release) — the flight
  /// recorder's throttled-refresh hook. One indirect call per backend
  /// write (chunk-sized granularity), nullptr when no recorder exists.
  std::function<void()> on_run_complete;
};

class IoThreadPool {
 public:
  /// Starts `threads` workers, each owning one IoEngine built from
  /// `engine` (with runtime fallback to sync — see make_io_engine). Each
  /// worker loops: pop up to `batch` already-queued chunks, group them by
  /// file (keeping FIFO order within a file, so overlapping writes stay
  /// in program order), submit one coalesced run of adjacent chunks per
  /// engine submission, and reap completions that bump the owning files'
  /// complete-chunk counts and return the chunks to the pool. With the
  /// sync engine and `batch == 1` this reproduces the original
  /// one-chunk-per-pop behaviour exactly. `regions` is the buffer pool's
  /// chunk storage for fixed-buffer registration (pass {} to skip).
  IoThreadPool(unsigned threads, WorkQueue& queue, BufferPool& pool, BackendFs& backend,
               IoPoolObs observe = {}, unsigned batch = 1, IoEngineOptions engine = {},
               std::vector<ChunkRegion> regions = {});

  /// Drains the queue and joins all workers.
  ~IoThreadPool();

  IoThreadPool(const IoThreadPool&) = delete;
  IoThreadPool& operator=(const IoThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Monitoring accessors. Relaxed loads are sufficient: these counters are
  // only read for progress/occupancy reporting and for the pool-exhaustion
  // rescue in Crfs::acquire_chunk, which re-polls in a timeout loop — a
  // stale value is retried, never trusted as a synchronization point. The
  // default seq_cst load would put a fence in the rescue path's spin for
  // no correctness gain.

  /// Chunks written so far across all workers.
  std::uint64_t chunks_written() const {
    return chunks_written_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

  /// Jobs currently being written by a worker (popped, not yet finished).
  unsigned in_flight() const { return in_flight_.load(std::memory_order_relaxed); }

  /// The engine actually running after feature detection ("sync"/"uring").
  const char* engine_name() const { return engines_.front()->name(); }

  /// Runs currently submitted to the kernel across all workers' engines
  /// (0 for sync, whose submissions complete inline).
  std::size_t engine_inflight() const {
    std::size_t n = 0;
    for (const auto& eng : engines_) n += eng->inflight();
    return n;
  }

  /// Invalidates engine-cached state for `file` (registered-fd slots)
  /// before the backend closes it. Call after the file's writes drained.
  void forget_backend_file(BackendFile file) {
    for (const auto& eng : engines_) eng->forget_file(file);
  }

  /// Runtime io_batch re-arm (knob plane): workers pick the new value up
  /// on their next dequeue. The caller pre-clamps to the half-the-pool
  /// cap (Crfs re-derives it whenever the pool or the knob moves).
  void set_batch(unsigned batch) {
    batch_.store(batch == 0 ? 1 : batch, std::memory_order_relaxed);
  }
  unsigned batch() const { return batch_.load(std::memory_order_relaxed); }

  /// Runtime ring re-arm: forwards to every worker's engine. Returns the
  /// effective depth (soft cap clamped to the mount-time ring size), or 0
  /// when the engine is sync and has no ring.
  unsigned set_uring_depth(unsigned depth) {
    unsigned effective = 0;
    for (const auto& eng : engines_) effective = eng->set_depth(depth);
    return effective;
  }

 private:
  void worker_loop(unsigned idx);
  /// Engine completion callback: accounts one finished run (metrics,
  /// epoch attribution, sticky error), completes and releases every
  /// chunk. Runs on the submitting worker's thread.
  void complete_run(IoRun run, Status status, std::uint64_t t_start, std::uint64_t t_done);

  WorkQueue& queue_;
  BufferPool& pool_;
  BackendFs& backend_;
  IoPoolObs obs_;
  std::atomic<unsigned> batch_;
  std::atomic<std::uint64_t> chunks_written_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<unsigned> in_flight_{0};
  std::vector<std::unique_ptr<IoEngine>> engines_;  ///< one per worker
  std::vector<std::thread> workers_;
};

}  // namespace crfs
