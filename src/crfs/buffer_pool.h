// BufferPool: the mount-time pool of aggregation chunks (paper §IV-B).
//
// acquire() blocks when the pool is drained; this is CRFS's natural
// backpressure — writers stall until IO threads return chunks, which is
// exactly why a larger pool raises aggregation bandwidth in Fig 5 until
// the pipeline is deep enough to flatten.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "crfs/chunk.h"

namespace crfs {

class BufferPool {
 public:
  /// Carves `pool_bytes / chunk_bytes` chunks up front. At least one chunk
  /// is always created so a misconfigured pool cannot deadlock the mount.
  BufferPool(std::size_t pool_bytes, std::size_t chunk_bytes);

  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Blocks until a free chunk is available, then hands it out reset to
  /// `file_offset`. Returns nullptr only after shutdown().
  std::unique_ptr<Chunk> acquire(std::uint64_t file_offset);

  /// Non-blocking acquire; nullptr when the pool is empty.
  std::unique_ptr<Chunk> try_acquire(std::uint64_t file_offset);

  /// Blocking acquire with a deadline; nullptr on timeout or shutdown.
  std::unique_ptr<Chunk> acquire_for(std::uint64_t file_offset,
                                     std::chrono::milliseconds timeout);

  /// Returns a chunk to the pool and wakes one blocked acquirer.
  void release(std::unique_ptr<Chunk> chunk);

  /// Unblocks all waiters; subsequent acquires return nullptr. Used when
  /// tearing down a mount.
  void shutdown();

  std::size_t chunk_size() const { return chunk_bytes_; }
  std::size_t total_chunks() const { return total_chunks_; }
  std::size_t free_chunks() const;
  /// Chunks currently out of the pool: parked as some file's current
  /// chunk, queued, or being written. Occupancy gauge for crfs::obs.
  std::size_t in_use_chunks() const { return total_chunks_ - free_chunks(); }

  /// Number of acquire() calls that had to block (backpressure events).
  std::uint64_t contention_count() const;

  /// True once shutdown() has been called.
  bool is_shutdown() const;

 private:
  const std::size_t chunk_bytes_;
  std::size_t total_chunks_ = 0;

  mutable std::mutex mu_;
  std::condition_variable available_;
  std::vector<std::unique_ptr<Chunk>> free_;
  std::uint64_t contentions_ = 0;
  bool shutdown_ = false;
};

}  // namespace crfs
