// BufferPool: the mount-time pool of aggregation chunks (paper §IV-B).
//
// Acquiring blocks when the pool is drained; this is CRFS's natural
// backpressure — writers stall until IO threads return chunks, which is
// exactly why a larger pool raises aggregation bandwidth in Fig 5 until
// the pipeline is deep enough to flatten.
//
// The free list is sharded (docs/PERFORMANCE.md): each shard has its own
// mutex so concurrent checkpoint streams acquire and release chunks
// without rendezvousing on one lock. A thread has a home shard (assigned
// round-robin at first use); when the home shard is empty the acquire
// scans the other shards (work stealing) before concluding the pool is
// exhausted. Blocking waiters park on a single condition variable that is
// only touched on the exhaustion path, so the fast path never sees it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "crfs/chunk.h"

namespace crfs {

/// One chunk's backing storage, for io_uring fixed-buffer registration.
/// Index i in the vector returned by BufferPool::chunk_regions() is the
/// storage of the chunk whose pool_index() is i.
struct ChunkRegion {
  const std::byte* data = nullptr;
  std::size_t len = 0;
};

class BufferPool {
 public:
  /// Carves `pool_bytes / chunk_bytes` chunks up front. At least one chunk
  /// is always created so a misconfigured pool cannot deadlock the mount.
  /// `shards` = 0 picks an automatic shard count (bounded by the number of
  /// chunks); explicit values are clamped to [1, total_chunks].
  BufferPool(std::size_t pool_bytes, std::size_t chunk_bytes, std::size_t shards = 0);

  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Non-blocking acquire; nullptr when every shard is empty. Starts at
  /// the caller's home shard and steals from the others before giving up.
  std::unique_ptr<Chunk> try_acquire(std::uint64_t file_offset);

  /// Blocking acquire with a deadline; nullptr on timeout or shutdown.
  std::unique_ptr<Chunk> acquire_for(std::uint64_t file_offset,
                                     std::chrono::milliseconds timeout);

  /// Returns a chunk to the caller's home shard and wakes one blocked
  /// acquirer (if any are parked on the exhaustion path).
  void release(std::unique_ptr<Chunk> chunk);

  /// Unblocks all waiters; subsequent acquires return nullptr. Used when
  /// tearing down a mount.
  void shutdown();

  /// Runtime resize to `target_chunks` (knob plane, docs/OBSERVABILITY.md
  /// "Control plane"). Growth allocates fresh chunks with no pool_index —
  /// they never enter the fixed-buffer table, so io_uring falls back to
  /// WRITEV for them and the mount-time buffer registration stays valid.
  /// Shrink is best-effort over *free* chunks only (in-flight chunks are
  /// never reclaimed): runtime-grown chunks are freed outright, while
  /// mount-time chunks (registered with the ring) are retired — removed
  /// from circulation but their storage retained so kernel-registered
  /// buffers never dangle. Returns the achieved total, which on a shrink
  /// may be above `target_chunks` when too few chunks were free.
  std::size_t resize(std::size_t target_chunks);

  std::size_t chunk_size() const { return chunk_bytes_; }
  std::size_t total_chunks() const { return total_chunks_.load(std::memory_order_relaxed); }

  /// Mount-time chunks retired by a shrink (storage retained for the
  /// fixed-buffer table). Occupancy gauge for crfs::obs.
  std::size_t retired_chunks() const { return retired_count_.load(std::memory_order_relaxed); }
  std::size_t shard_count() const { return shards_.size(); }

  /// Free chunks across all shards. Occupancy gauge for crfs::obs; the
  /// exhaustion rescue re-polls it in a loop, so a momentarily stale value
  /// is retried, never trusted.
  std::size_t free_chunks() const { return free_count_.load(std::memory_order_relaxed); }

  /// Chunks currently out of the pool: parked as some file's current
  /// chunk, queued, or being written. Occupancy gauge for crfs::obs.
  std::size_t in_use_chunks() const { return total_chunks() - free_chunks(); }

  /// Number of acquires that found the whole pool empty and had to block
  /// (backpressure events).
  std::uint64_t contention_count() const {
    return contentions_.load(std::memory_order_relaxed);
  }

  /// True once shutdown() has been called.
  bool is_shutdown() const { return shutdown_.load(std::memory_order_acquire); }

  /// Backing storage of every chunk, indexed by Chunk::pool_index().
  /// Stable for the pool's lifetime (chunks are carved once at
  /// construction); used to register fixed buffers with io_uring.
  std::vector<ChunkRegion> chunk_regions() const { return regions_; }

 private:
  // One cache line per shard: the mutex and the free list it guards, plus
  // a lock-free occupancy hint so the stealing scan skips empty shards
  // without taking their locks.
  struct alignas(64) Shard {
    std::mutex mu;
    std::vector<std::unique_ptr<Chunk>> free;
    std::atomic<std::uint32_t> count{0};  ///< == free.size(), scan hint
  };

  std::size_t home_shard() const;

  const std::size_t chunk_bytes_;
  std::atomic<std::size_t> total_chunks_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<ChunkRegion> regions_;  ///< immutable after construction

  std::atomic<std::size_t> free_count_{0};
  std::atomic<std::uint64_t> contentions_{0};
  std::atomic<bool> shutdown_{false};

  // Runtime resize (rare; serialized by the knob plane's writer mutex,
  // but guarded here too so direct callers stay safe). Retired mount-time
  // chunks keep their storage alive for the io_uring fixed-buffer table.
  std::mutex resize_mu_;
  std::vector<std::unique_ptr<Chunk>> retired_;  ///< guarded by resize_mu_
  std::atomic<std::size_t> retired_count_{0};

  // Exhaustion path only: waiters park here; release() peeks the hint and
  // grabs wait_mu_ only when someone is actually parked.
  mutable std::mutex wait_mu_;
  std::condition_variable available_;
  std::size_t waiters_ = 0;  ///< guarded by wait_mu_
  std::atomic<std::size_t> waiters_hint_{0};
};

}  // namespace crfs
