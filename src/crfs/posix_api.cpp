#include "crfs/posix_api.h"

#include <sys/stat.h>

#include <cstring>

namespace crfs {

std::shared_ptr<PosixApi::Descriptor> PosixApi::get(int fd) {
  std::lock_guard lock(mu_);
  auto it = fds_.find(fd);
  return it == fds_.end() ? nullptr : it->second;
}

int PosixApi::open(const char* path, int flags) {
  const int access = flags & O_ACCMODE;
  if (access != O_RDONLY && access != O_WRONLY && access != O_RDWR) {
    return fail(EINVAL);
  }
  const bool writable = access != O_RDONLY;

  if ((flags & O_EXCL) != 0) {
    if ((flags & O_CREAT) == 0) return fail(EINVAL);
    if (shim_.fs().getattr(path).ok()) return fail(EEXIST);
  }

  OpenFlags of;
  of.create = (flags & O_CREAT) != 0;
  of.truncate = (flags & O_TRUNC) != 0 && writable;
  of.write = writable;
  auto handle = shim_.open(path, of);
  if (!handle.ok()) return fail(handle.error().code);

  auto desc = std::make_shared<Descriptor>();
  desc->handle = handle.value();
  desc->path = path;
  desc->append = (flags & O_APPEND) != 0;
  desc->writable = writable;

  std::lock_guard lock(mu_);
  const int fd = next_fd_++;
  fds_[fd] = std::move(desc);
  return fd;
}

int PosixApi::close(int fd) {
  std::shared_ptr<Descriptor> desc;
  {
    std::lock_guard lock(mu_);
    auto it = fds_.find(fd);
    if (it == fds_.end()) return fail(EBADF);
    desc = std::move(it->second);
    fds_.erase(it);
  }
  const Status st = shim_.close(desc->handle);
  if (!st.ok()) return fail(st.error().code);
  return 0;
}

ssize_t PosixApi::write(int fd, const void* buf, std::size_t count) {
  auto desc = get(fd);
  if (desc == nullptr) return failz(EBADF);
  if (!desc->writable) return failz(EBADF);

  std::lock_guard lock(desc->mu);
  std::uint64_t offset = desc->cursor;
  if (desc->append) {
    auto st = shim_.fs().getattr(desc->path);
    if (!st.ok()) return failz(st.error().code);
    offset = st.value().size;
  }
  const Status st =
      shim_.write(desc->handle, {static_cast<const std::byte*>(buf), count}, offset);
  if (!st.ok()) return failz(st.error().code);
  desc->cursor = offset + count;
  return static_cast<ssize_t>(count);
}

ssize_t PosixApi::pwrite(int fd, const void* buf, std::size_t count, off_t offset) {
  auto desc = get(fd);
  if (desc == nullptr || !desc->writable) return failz(EBADF);
  if (offset < 0) return failz(EINVAL);
  const Status st = shim_.write(desc->handle, {static_cast<const std::byte*>(buf), count},
                                static_cast<std::uint64_t>(offset));
  if (!st.ok()) return failz(st.error().code);
  return static_cast<ssize_t>(count);
}

ssize_t PosixApi::read(int fd, void* buf, std::size_t count) {
  auto desc = get(fd);
  if (desc == nullptr) return failz(EBADF);
  std::lock_guard lock(desc->mu);
  auto n = shim_.read(desc->handle, {static_cast<std::byte*>(buf), count}, desc->cursor);
  if (!n.ok()) return failz(n.error().code);
  desc->cursor += n.value();
  return static_cast<ssize_t>(n.value());
}

ssize_t PosixApi::pread(int fd, void* buf, std::size_t count, off_t offset) {
  auto desc = get(fd);
  if (desc == nullptr) return failz(EBADF);
  if (offset < 0) return failz(EINVAL);
  auto n = shim_.read(desc->handle, {static_cast<std::byte*>(buf), count},
                      static_cast<std::uint64_t>(offset));
  if (!n.ok()) return failz(n.error().code);
  return static_cast<ssize_t>(n.value());
}

off_t PosixApi::lseek(int fd, off_t offset, int whence) {
  auto desc = get(fd);
  if (desc == nullptr) return static_cast<off_t>(fail(EBADF));
  std::lock_guard lock(desc->mu);

  std::int64_t base = 0;
  switch (whence) {
    case SEEK_SET: base = 0; break;
    case SEEK_CUR: base = static_cast<std::int64_t>(desc->cursor); break;
    case SEEK_END: {
      auto st = shim_.fs().getattr(desc->path);
      if (!st.ok()) return static_cast<off_t>(fail(st.error().code));
      base = static_cast<std::int64_t>(st.value().size);
      break;
    }
    default:
      return static_cast<off_t>(fail(EINVAL));
  }
  const std::int64_t target = base + offset;
  if (target < 0) return static_cast<off_t>(fail(EINVAL));
  desc->cursor = static_cast<std::uint64_t>(target);
  return static_cast<off_t>(target);
}

int PosixApi::fsync(int fd) {
  auto desc = get(fd);
  if (desc == nullptr) return fail(EBADF);
  const Status st = shim_.fsync(desc->handle);
  if (!st.ok()) return fail(st.error().code);
  return 0;
}

int PosixApi::mkdir(const char* path) {
  const Status st = shim_.fs().mkdir(path);
  return st.ok() ? 0 : fail(st.error().code);
}

int PosixApi::rmdir(const char* path) {
  const Status st = shim_.fs().rmdir(path);
  return st.ok() ? 0 : fail(st.error().code);
}

int PosixApi::unlink(const char* path) {
  const Status st = shim_.fs().unlink(path);
  return st.ok() ? 0 : fail(st.error().code);
}

int PosixApi::rename(const char* from, const char* to) {
  const Status st = shim_.fs().rename(from, to);
  return st.ok() ? 0 : fail(st.error().code);
}

int PosixApi::truncate(const char* path, off_t length) {
  if (length < 0) return fail(EINVAL);
  const Status st = shim_.fs().truncate(path, static_cast<std::uint64_t>(length));
  return st.ok() ? 0 : fail(st.error().code);
}

int PosixApi::stat(const char* path, struct ::stat* out) {
  auto st = shim_.fs().getattr(path);
  if (!st.ok()) return fail(st.error().code);
  std::memset(out, 0, sizeof(*out));
  out->st_size = static_cast<off_t>(st.value().size);
  out->st_mode = st.value().is_dir ? (S_IFDIR | 0755) : (S_IFREG | 0644);
  return 0;
}

std::size_t PosixApi::open_fds() const {
  std::lock_guard lock(mu_);
  return fds_.size();
}

}  // namespace crfs
