#include "crfs/readahead.h"

#include <algorithm>
#include <cstring>

#include "crfs/file_table.h"

namespace crfs {

Readahead::Readahead(BackendFs& backend, BufferPool& pool, const IoEngineOptions& engine_opts,
                     std::vector<ChunkRegion> regions, IoEngineObs engine_obs, ReadObs obs,
                     std::size_t ledger_capacity)
    : backend_(backend),
      pool_(pool),
      obs_(std::move(obs)),
      ledger_capacity_(ledger_capacity == 0 ? 1 : ledger_capacity) {
  // The write CompleteFn never fires — this engine only carries reads.
  engine_ = make_io_engine(engine_opts, backend_, std::move(regions), engine_obs,
                           [](IoRun, Status, std::uint64_t, std::uint64_t) {});
  // Runs inline from submit_read/reap, which are only called under mu_ —
  // the lock is already held, so only touch slot/token state here.
  engine_->set_read_complete([this](ReadRun run, Result<std::size_t> nread, std::uint64_t,
                                    std::uint64_t) {
    auto it = inflight_tokens_.find(run.token);
    if (it == inflight_tokens_.end()) return;
    Slot* slot = it->second;
    inflight_tokens_.erase(it);
    slot->owner->inflight -= 1;
    if (nread.ok()) {
      slot->valid = nread.value();
      slot->chunk->set_fill(slot->valid);
      slot->state = Slot::State::kReady;
      if (slot->valid < slot->want) {
        // Short read = EOF inside the slot: stop the window from issuing
        // further reads past the end of the file.
        slot->owner->eof_at = std::min(slot->owner->eof_at, slot->offset + slot->valid);
      }
    } else {
      slot->state = Slot::State::kError;
      slot->err = nread.error().code;
    }
  });
}

Readahead::~Readahead() {
  std::lock_guard lock(mu_);
  for (auto& [entry, fs] : files_) {
    drop_cache_locked(fs);
    finalize_locked(fs);
  }
  files_.clear();
  engine_.reset();
}

Result<std::size_t> Readahead::read(const std::shared_ptr<FileEntry>& entry,
                                    std::span<std::byte> out, std::uint64_t offset,
                                    bool enabled, unsigned window) {
  const std::uint64_t t0 = obs::now_ns();
  std::lock_guard lock(mu_);
  FileState& fs = files_[entry.get()];
  if (!fs.touched) {
    fs.touched = true;
    fs.stats.path = entry->path();
    fs.stats.first_read_ns = t0;
    fs.gen_seen = entry->write_gen.load(std::memory_order_acquire);
  }

  // Coherence: a write or truncate since the cache was filled invalidates
  // every prefetched byte (the caller barriered the file's queued chunks
  // before entering, so fresh backend reads observe them).
  const std::uint64_t gen = entry->write_gen.load(std::memory_order_acquire);
  if (gen != fs.gen_seen) {
    drop_cache_locked(fs);
    fs.gen_seen = gen;
    fs.eof_at = ~std::uint64_t{0};
  }

  // Sequential-scan detection: a seek drops the window, a match extends
  // the streak that arms prefetching.
  if (offset == fs.expected_next) {
    fs.streak += 1;
  } else {
    drop_cache_locked(fs);
    fs.streak = 1;
  }

  // Serve from the cache window front-to-back.
  std::size_t served = 0;
  bool eof_hit = false;
  int slot_err = 0;
  while (served < out.size() && !fs.slots.empty()) {
    const std::uint64_t pos = offset + served;
    Slot* s = fs.slots.front().get();
    if (pos < s->offset) break;  // gap below the window: sync tail fills it
    if (pos >= s->offset + s->want) {
      retire_front_locked(fs);
      continue;
    }
    if (s->state == Slot::State::kInflight) {
      while (s->state == Slot::State::kInflight) engine_->reap(/*wait=*/true);
    }
    if (s->state == Slot::State::kError) {
      // Drop the failed slot and retry the range synchronously below.
      slot_err = s->err;
      retire_front_locked(fs);
      break;
    }
    if (pos >= s->offset + s->valid) {
      eof_hit = true;  // short slot: the file ends inside it
      break;
    }
    const std::size_t n =
        std::min(out.size() - served, static_cast<std::size_t>(s->offset + s->valid - pos));
    std::memcpy(out.data() + served, s->chunk->payload().data() + (pos - s->offset), n);
    if (!s->consumed) {
      s->consumed = true;
      if (obs_.prefetch_hits != nullptr) obs_.prefetch_hits->add(1);
      fs.stats.prefetch_hits += 1;
    }
    served += n;
    if (s->valid < s->want && offset + served == s->offset + s->valid) {
      eof_hit = true;
      break;
    }
  }
  (void)slot_err;  // the sync retry below reports any persistent error

  // Blocking tail for whatever the window did not cover.
  Status tail_error;
  if (served < out.size() && !eof_hit) {
    auto r = backend_.pread(entry->backend_file(), out.subspan(served), offset + served);
    if (obs_.sync_preads != nullptr) obs_.sync_preads->add(1);
    fs.stats.sync_preads += 1;
    if (r.ok()) {
      if (r.value() < out.size() - served) {
        fs.eof_at = std::min(fs.eof_at, offset + served + r.value());
      }
      served += r.value();
    } else {
      tail_error = r.error();
    }
  }

  // Top the window back up while the scan is established.
  if (enabled && tail_error.ok() && fs.streak >= 2 && window > 0) {
    top_up_locked(entry.get(), fs, offset + served, window);
  }

  fs.expected_next = offset + served;
  const std::uint64_t t_done = obs::now_ns();
  if (obs_.ops != nullptr) obs_.ops->add(1);
  if (obs_.bytes != nullptr) obs_.bytes->add(served);
  if (obs_.pread_ns != nullptr) obs_.pread_ns->record(t_done - t0);
  fs.stats.ops += 1;
  fs.stats.bytes += served;
  if (fs.stats.ops == 1) fs.stats.ttfb_ns = t_done - t0;
  fs.stats.last_read_ns = t_done;
  if (obs_.on_slow) obs_.on_slow(entry->path(), offset, out.size(), t0, t_done);

  if (!tail_error.ok() && served == 0) return tail_error.error();
  return served;
}

void Readahead::evict(const FileEntry* entry) {
  std::lock_guard lock(mu_);
  auto it = files_.find(entry);
  if (it == files_.end()) return;
  drop_cache_locked(it->second);
  finalize_locked(it->second);
  files_.erase(it);
}

void Readahead::forget_file(BackendFile file) { engine_->forget_file(file); }

std::vector<RestoreLedgerEntry> Readahead::ledger_snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<RestoreLedgerEntry> out(ledger_.begin(), ledger_.end());
  for (const auto& [entry, fs] : files_) {
    if (fs.stats.ops == 0) continue;
    RestoreLedgerEntry row = fs.stats;
    row.active = true;
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(), [](const RestoreLedgerEntry& a,
                                       const RestoreLedgerEntry& b) {
    if (a.first_read_ns != b.first_read_ns) return a.first_read_ns < b.first_read_ns;
    return a.path < b.path;
  });
  return out;
}

void Readahead::drop_cache_locked(FileState& fs) {
  // Chunks with kernel reads in flight cannot be returned to the pool —
  // wait those out first (the engine only carries reads, so completions
  // are always forthcoming).
  while (fs.inflight > 0) engine_->reap(/*wait=*/true);
  while (!fs.slots.empty()) retire_front_locked(fs);
}

void Readahead::retire_front_locked(FileState& fs) {
  Slot* s = fs.slots.front().get();
  while (s->state == Slot::State::kInflight) engine_->reap(/*wait=*/true);
  if (!s->consumed) {
    if (obs_.prefetch_wasted != nullptr) obs_.prefetch_wasted->add(1);
    fs.stats.prefetch_wasted += 1;
  }
  pool_.release(std::move(s->chunk));
  fs.slots.pop_front();
}

void Readahead::top_up_locked(const FileEntry* entry, FileState& fs, std::uint64_t next,
                              unsigned window) {
  const std::size_t chunk_bytes = pool_.chunk_size();
  const std::size_t cap = std::min<std::size_t>(window, engine_->capacity());
  // The window is contiguous: new reads start where coverage ends.
  std::uint64_t cover_end = next;
  if (!fs.slots.empty()) {
    cover_end = std::max(cover_end, fs.slots.back()->offset + fs.slots.back()->want);
  }
  while (fs.slots.size() < cap && cover_end < fs.eof_at) {
    // Opportunistic only: never starve checkpoint writers of chunks.
    auto chunk = pool_.try_acquire(cover_end);
    if (chunk == nullptr) break;
    chunk->reset(cover_end);
    auto slot = std::make_unique<Slot>();
    slot->chunk = std::move(chunk);
    slot->owner = &fs;
    slot->offset = cover_end;
    slot->want = std::min<std::size_t>(chunk_bytes, slot->chunk->capacity());

    ReadRun run;
    run.file = entry->backend_file();
    run.offset = cover_end;
    run.segs.push_back(ReadSeg{slot->chunk->mutable_storage().data(), slot->want});
    run.total = slot->want;
    run.token = next_token_++;
    run.buf_index = slot->chunk->pool_index();

    inflight_tokens_[run.token] = slot.get();
    fs.inflight += 1;
    fs.slots.push_back(std::move(slot));
    engine_->submit_read(std::move(run));
    if (obs_.prefetch_issued != nullptr) obs_.prefetch_issued->add(1);
    fs.stats.prefetch_issued += 1;
    cover_end += chunk_bytes;
  }
  engine_->flush();
  if (obs_.inflight_depth != nullptr) obs_.inflight_depth->record(engine_->inflight());
}

void Readahead::finalize_locked(FileState& fs) {
  if (fs.stats.ops == 0) return;
  fs.stats.active = false;
  ledger_.push_back(fs.stats);
  while (ledger_.size() > ledger_capacity_) ledger_.pop_front();
}

}  // namespace crfs
