// FileEntry + FileTable: CRFS's hash table of opened files (paper §IV-A).
//
// Each opened path has exactly one FileEntry holding the aggregation
// state the paper enumerates: the current buffer chunk, the append point,
// the chunk's offset in the original file, ownership/refcount, and the
// "write chunk count" / "complete chunk count" pair that close() and
// fsync() reconcile.
//
// Locking protocol (deadlock-free by construction):
//   * entry->agg_mu  - guards the aggregation state (current chunk, append
//                      point). Held only by application threads. May be
//                      held while blocking on BufferPool::acquire.
//   * chunk counters - atomics; IO threads bump complete_chunks without
//                      taking agg_mu, so an application thread blocked on
//                      the pool can never stall the IO pool (no cycle).
//   * completion_mu  - tiny mutex used only to sleep/wake on the counter
//                      pair; IO threads take it only around notify.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "backend/backend_fs.h"
#include "crfs/chunk.h"
#include "common/result.h"
#include "obs/epoch.h"

namespace crfs {

class FileEntry {
 public:
  FileEntry(std::string path, BackendFile backend_file)
      : path_(std::move(path)), backend_file_(backend_file) {}

  const std::string& path() const { return path_; }
  BackendFile backend_file() const { return backend_file_; }

  // -- Aggregation state (guard with agg_mu) ----------------------------
  std::mutex agg_mu;
  std::unique_ptr<Chunk> current;   ///< partially filled chunk, if any
  /// Checkpoint epoch this file's bytes attribute to (obs/epoch.h);
  /// nullptr when epoch tracking is off. Assigned by Crfs::open (cold) —
  /// the write path only does relaxed fetch_adds through it, and flush
  /// copies the shared_ptr into the WriteJob so IO threads never read
  /// this field (they must not take agg_mu).
  std::shared_ptr<obs::EpochState> epoch;

  /// Bytes the application has written past the backend's initial size;
  /// used to answer getattr for still-buffered files.
  std::atomic<std::uint64_t> size_seen{0};

  /// Monotone write-mutation counter: bumped on every write (aggregated
  /// or bypass) and truncate. The read-side prefetcher snapshots it per
  /// serve and drops its whole cache for this file when it moved — data
  /// prefetched before the mutation may be stale.
  std::atomic<std::uint64_t> write_gen{0};

  // -- Completion accounting ---------------------------------------------
  /// Chunks handed to the work queue ("write chunk count").
  std::atomic<std::uint64_t> write_chunks{0};
  /// Chunks the IO pool finished writing ("complete chunk count").
  std::atomic<std::uint64_t> complete_chunks{0};

  /// Sleeps until complete_chunks == write_chunks (all outstanding chunk
  /// writes finished). Safe against concurrent new enqueues: callers take
  /// a snapshot of write_chunks under agg_mu first and pass it here.
  void wait_for_completion(std::uint64_t target_write_chunks) {
    std::unique_lock lock(completion_mu_);
    completion_cv_.wait(lock, [&] {
      return complete_chunks.load(std::memory_order_acquire) >= target_write_chunks;
    });
  }

  /// Called by IO threads after finishing (or failing) a chunk write.
  void complete_one(const Status& status) {
    if (!status.ok()) record_error(status.error());
    complete_chunks.fetch_add(1, std::memory_order_acq_rel);
    {
      std::lock_guard lock(completion_mu_);  // pairs with the cv wait
    }
    completion_cv_.notify_all();
  }

  // -- Sticky error -------------------------------------------------------
  /// First backend write error; surfaced at the next fsync/close like a
  /// kernel writeback error would be.
  void record_error(const Error& e) {
    std::lock_guard lock(error_mu_);
    if (!has_error_) {
      first_error_ = e;
      has_error_ = true;
    }
  }

  /// Returns and clears the sticky error (reported once, like errseq_t).
  std::optional<Error> take_error() {
    std::lock_guard lock(error_mu_);
    if (!has_error_) return std::nullopt;
    has_error_ = false;
    return first_error_;
  }

  bool has_error() const {
    std::lock_guard lock(error_mu_);
    return has_error_;
  }

  // -- Refcounting (guarded by the owning FileTable's mutex) --------------
  int refcount = 0;

 private:
  std::string path_;
  BackendFile backend_file_;

  std::mutex completion_mu_;
  std::condition_variable completion_cv_;

  mutable std::mutex error_mu_;
  Error first_error_{};
  bool has_error_ = false;
};

/// Path-keyed table of open files. A second open of the same path shares
/// the entry and bumps its reference count (paper §IV-A).
class FileTable {
 public:
  /// Finds the entry for `path`, or invokes `make` to create it. Bumps the
  /// refcount either way.
  template <typename MakeFn>
  Result<std::shared_ptr<FileEntry>> find_or_create(const std::string& path, MakeFn&& make) {
    std::lock_guard lock(mu_);
    auto it = entries_.find(path);
    if (it != entries_.end()) {
      it->second->refcount += 1;
      return it->second;
    }
    Result<std::shared_ptr<FileEntry>> made = make();
    if (!made.ok()) return made.error();
    made.value()->refcount = 1;
    entries_.emplace(path, made.value());
    return made;
  }

  std::shared_ptr<FileEntry> find(const std::string& path) {
    std::lock_guard lock(mu_);
    auto it = entries_.find(path);
    return it == entries_.end() ? nullptr : it->second;
  }

  /// Drops one reference; when it reaches zero the entry is removed and
  /// returned so the caller can close the backend handle outside the lock.
  std::shared_ptr<FileEntry> release(const std::string& path) {
    std::lock_guard lock(mu_);
    auto it = entries_.find(path);
    if (it == entries_.end()) return nullptr;
    it->second->refcount -= 1;
    if (it->second->refcount > 0) return nullptr;
    auto entry = std::move(it->second);
    entries_.erase(it);
    return entry;
  }

  std::size_t open_count() const {
    std::lock_guard lock(mu_);
    return entries_.size();
  }

  /// Snapshot of all open entries (used by the pool-exhaustion rescue).
  std::vector<std::shared_ptr<FileEntry>> snapshot() const {
    std::lock_guard lock(mu_);
    std::vector<std::shared_ptr<FileEntry>> out;
    out.reserve(entries_.size());
    for (const auto& [path, entry] : entries_) out.push_back(entry);
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<FileEntry>> entries_;
};

}  // namespace crfs
