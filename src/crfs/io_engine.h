// IoEngine: pluggable submission/completion strategy under the IO pool
// (docs/PERFORMANCE.md "IO engines").
//
// The paper's pipeline parks each IO thread in one blocking pwrite at a
// time, capping backend queue depth at io_threads. The engine abstraction
// decouples submission from completion so a worker can keep many coalesced
// runs in flight:
//   * SyncEngine  - the paper's behaviour: one blocking pwrite/pwritev per
//                   run through BackendFs, completion inline.
//   * UringEngine - raw io_uring (no liburing): SQEs for coalesced runs,
//                   submitted at uring_depth, reaped as CQEs. Built only on
//                   Linux; selected at runtime with feature detection and
//                   silent fallback to sync.
//
// Engines are per-worker (one ring per IO thread, no cross-thread ring
// locking). All methods are called from the owning worker thread except
// forget_file(), which application threads call at close().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "backend/backend_fs.h"
#include "crfs/buffer_pool.h"
#include "crfs/config.h"
#include "crfs/work_queue.h"
#include "obs/metrics.h"

namespace crfs {

/// One coalesced backend write: same-file, offset-adjacent jobs whose
/// payloads land back to back starting at `offset`.
struct IoRun {
  std::vector<WriteJob> jobs;
  std::uint64_t offset = 0;  ///< file offset of the first chunk
  std::uint64_t total = 0;   ///< sum of the chunks' fills
};

/// One destination segment of a chunk-granular read.
struct ReadSeg {
  std::byte* dst = nullptr;
  std::size_t len = 0;
};

/// One chunk-granular backend read: fills `segs` contiguously from
/// `offset`. The read-side mirror of IoRun — the prefetcher submits one
/// per cache slot and correlates the completion back via `token`.
struct ReadRun {
  BackendFile file = 0;
  std::uint64_t offset = 0;       ///< file offset of the first byte
  std::vector<ReadSeg> segs;
  std::uint64_t total = 0;        ///< sum of the segments' lens
  std::uint64_t token = 0;        ///< caller correlation id, opaque here
  /// Registered fixed-buffer index when the single destination segment is
  /// a pool chunk's storage (IORING_OP_READ_FIXED); Chunk::kNoPoolIndex
  /// otherwise.
  std::uint16_t buf_index = Chunk::kNoPoolIndex;
};

/// Engine-level metric sinks (all optional; owned by the mount registry).
struct IoEngineObs {
  /// Runs in flight on the engine after each submission flush
  /// (crfs.io.inflight_depth) — the "backend queue depth > io_threads"
  /// evidence the async engine exists to produce.
  obs::LatencyHistogram* inflight_depth = nullptr;
  /// SQEs published per io_uring_enter (crfs.io.sqe_batch).
  obs::LatencyHistogram* sqe_batch = nullptr;
  /// Time a worker blocked waiting for a CQE (crfs.io.cqe_wait_ns).
  obs::LatencyHistogram* cqe_wait_ns = nullptr;
};

class IoEngine {
 public:
  /// Completion callback: invoked exactly once per submitted run — either
  /// inline from submit() (sync engine, uring non-fd fallback) or from
  /// reap(). `t_start`/`t_done` bracket the backend IO for the pwrite
  /// latency histogram and durability-lag attribution.
  using CompleteFn = std::function<void(IoRun run, Status status, std::uint64_t t_start,
                                        std::uint64_t t_done)>;

  /// Read completion: invoked exactly once per submitted ReadRun — inline
  /// from submit_read() (sync engines, uring non-fd fallback) or from
  /// reap(). `nread` is the bytes actually filled (short only at EOF).
  using ReadCompleteFn = std::function<void(ReadRun run, Result<std::size_t> nread,
                                            std::uint64_t t_start, std::uint64_t t_done)>;

  virtual ~IoEngine() = default;

  /// Queues (or performs) one run. May invoke the completion inline. The
  /// caller must keep inflight() < capacity() before calling.
  virtual void submit(IoRun run) = 0;

  /// Installs the read-completion sink. Must be set before the first
  /// submit_read(); read submissions share the ring (and inflight/
  /// capacity accounting) with writes.
  void set_read_complete(ReadCompleteFn fn) { read_complete_ = std::move(fn); }

  /// Queues (or performs) one chunk read. May invoke the read completion
  /// inline. Same backpressure contract as submit(). The base default
  /// reports ENOTSUP; SyncEngine performs the read inline and UringEngine
  /// submits IORING_OP_READ_FIXED / READV.
  virtual void submit_read(ReadRun run);

  /// Publishes queued submissions to the kernel (no-op for sync).
  virtual void flush() {}

  /// Drives completions. `wait` blocks for at least one completion when
  /// anything is in flight; otherwise only already-finished runs complete.
  virtual void reap(bool wait) { (void)wait; }

  /// Runs submitted but not yet completed. Readable from other threads
  /// (monitoring gauges).
  virtual std::size_t inflight() const { return 0; }

  /// Max runs the engine keeps in flight (SQ depth for uring; effectively
  /// unbounded for sync, whose submit completes inline).
  virtual std::size_t capacity() const = 0;

  /// Runtime re-arm of the submission depth (knob plane). The ring itself
  /// is sized once at mount, so this moves a soft cap clamped to
  /// [1, ring size]; it takes effect on the worker's next submit window
  /// (capacity() is re-read per iteration). Returns the effective depth,
  /// or 0 when the engine has no ring to re-arm (sync). Thread-safe.
  virtual unsigned set_depth(unsigned depth) {
    (void)depth;
    return 0;
  }

  /// "sync" or "uring" — the engine actually running after fallback.
  virtual const char* name() const = 0;

  /// Drops any cached per-file state (registered-fd slots) before the
  /// backend closes `file`. Called from application threads; must be
  /// thread-safe against the worker using the engine.
  virtual void forget_file(BackendFile file) { (void)file; }

 protected:
  ReadCompleteFn read_complete_;
};

/// The paper's blocking engine: one pwrite/pwritev per run, inline
/// completion, zero in-flight state. batch_ == 1 with this engine is
/// byte-for-byte the pre-engine IoThreadPool behaviour.
class SyncEngine final : public IoEngine {
 public:
  SyncEngine(BackendFs& backend, CompleteFn complete)
      : backend_(backend), complete_(std::move(complete)) {}

  void submit(IoRun run) override;
  void submit_read(ReadRun run) override;
  std::size_t capacity() const override;
  const char* name() const override { return "sync"; }

 private:
  BackendFs& backend_;
  CompleteFn complete_;
};

struct IoEngineOptions {
  IoEngineKind requested = IoEngineKind::kSync;
  unsigned uring_depth = 64;
};

/// Issues `run` synchronously through the backend (pwrite for one chunk,
/// pwritev for a coalesced run). Shared by SyncEngine and the uring
/// engine's non-fd fallback path, so decorating backends keep their
/// per-write semantics under either engine.
Status backend_write_run(BackendFs& backend, const IoRun& run);

/// Fills `run` synchronously through the backend (pread for one segment,
/// preadv for several). Shared by SyncEngine and the uring engine's
/// non-fd fallback path, so decorating backends keep their per-read
/// semantics under either engine. Returns bytes read (short only at EOF).
Result<std::size_t> backend_read_run(BackendFs& backend, const ReadRun& run);

/// Builds the engine the options ask for, with runtime feature detection:
/// a uring request falls back silently to sync when the kernel lacks
/// io_uring or the CRFS_FORCE_SYNC environment variable is set (non-empty,
/// not "0"). `regions` is the buffer pool's chunk storage for fixed-buffer
/// registration (may be empty). Never returns nullptr.
std::unique_ptr<IoEngine> make_io_engine(const IoEngineOptions& opts, BackendFs& backend,
                                         std::vector<ChunkRegion> regions, IoEngineObs obs,
                                         IoEngine::CompleteFn complete);

/// The raw-io_uring engine, or nullptr when the platform/kernel cannot
/// provide one (non-Linux build, io_uring_setup refused). Exposed for
/// direct unit tests; production code goes through make_io_engine.
std::unique_ptr<IoEngine> make_uring_engine(unsigned depth, BackendFs& backend,
                                            std::vector<ChunkRegion> regions, IoEngineObs obs,
                                            IoEngine::CompleteFn complete);

}  // namespace crfs
