#include "crfs/work_queue.h"

namespace crfs {

void WorkQueue::push(WriteJob job) {
  // One clock read per chunk (MBs of data), not per write: negligible.
  // Always stamped — the chunk-lifecycle ledger needs queue residency
  // even when no wait histogram is installed.
  job.enqueue_ns = obs::now_ns();
  {
    std::lock_guard lock(mu_);
    jobs_.push_back(std::move(job));
    pushed_ += 1;
  }
  ready_.notify_one();
}

std::optional<WriteJob> WorkQueue::pop() {
  auto batch = pop_batch(1);
  if (batch.empty()) return std::nullopt;
  return std::move(batch.front());
}

std::vector<WriteJob> WorkQueue::pop_batch(std::size_t max) {
  if (max == 0) max = 1;
  std::vector<WriteJob> batch;
  {
    std::unique_lock lock(mu_);
    ready_.wait(lock, [&] { return !jobs_.empty() || shutdown_; });
    drain_locked(batch, max);
    if (batch.empty()) return batch;  // shutdown and drained
  }
  stamp_dequeued(batch);
  return batch;
}

std::vector<WriteJob> WorkQueue::try_pop_batch(std::size_t max) {
  if (max == 0) max = 1;
  std::vector<WriteJob> batch;
  {
    std::lock_guard lock(mu_);
    drain_locked(batch, max);
    if (batch.empty()) return batch;
  }
  stamp_dequeued(batch);
  return batch;
}

void WorkQueue::drain_locked(std::vector<WriteJob>& batch, std::size_t max) {
  const std::size_t n = jobs_.size() < max ? jobs_.size() : max;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(jobs_.front()));
    jobs_.pop_front();
  }
}

void WorkQueue::stamp_dequeued(std::vector<WriteJob>& batch) {
  // One clock read for the whole batch; per-job deltas still recorded.
  const std::uint64_t now = obs::now_ns();
  for (WriteJob& job : batch) {
    job.dequeue_ns = now;
    if (wait_hist_ != nullptr && job.enqueue_ns != 0) {
      wait_hist_->record(now > job.enqueue_ns ? now - job.enqueue_ns : 0);
    }
  }
}

void WorkQueue::shutdown() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  ready_.notify_all();
}

std::size_t WorkQueue::depth() const {
  std::lock_guard lock(mu_);
  return jobs_.size();
}

std::uint64_t WorkQueue::total_pushed() const {
  std::lock_guard lock(mu_);
  return pushed_;
}

}  // namespace crfs
