#include "crfs/work_queue.h"

namespace crfs {

void WorkQueue::push(WriteJob job) {
  // One clock read per chunk (MBs of data), not per write: negligible.
  if (wait_hist_ != nullptr) job.enqueue_ns = obs::now_ns();
  {
    std::lock_guard lock(mu_);
    jobs_.push_back(std::move(job));
    pushed_ += 1;
  }
  ready_.notify_one();
}

std::optional<WriteJob> WorkQueue::pop() {
  std::unique_lock lock(mu_);
  ready_.wait(lock, [&] { return !jobs_.empty() || shutdown_; });
  if (jobs_.empty()) return std::nullopt;
  WriteJob job = std::move(jobs_.front());
  jobs_.pop_front();
  lock.unlock();
  if (wait_hist_ != nullptr && job.enqueue_ns != 0) {
    const std::uint64_t now = obs::now_ns();
    wait_hist_->record(now > job.enqueue_ns ? now - job.enqueue_ns : 0);
  }
  return job;
}

void WorkQueue::shutdown() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  ready_.notify_all();
}

std::size_t WorkQueue::depth() const {
  std::lock_guard lock(mu_);
  return jobs_.size();
}

std::uint64_t WorkQueue::total_pushed() const {
  std::lock_guard lock(mu_);
  return pushed_;
}

}  // namespace crfs
