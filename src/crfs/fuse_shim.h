// FuseShim: in-process model of the FUSE kernel request path.
//
// The paper runs CRFS under the real FUSE kernel module (libfuse 2.8.1,
// Linux 2.6.30, "big_writes" enabled). This repository has no libfuse and
// cannot mount, so the shim reproduces the property of that path that
// matters to CRFS's behaviour and evaluation: the kernel never delivers
// an application write() as one request — it splits it into requests of
// at most max_write bytes (4 KB without big_writes, 128 KB with). Each
// split request is routed to the CRFS operation table exactly as
// fuse_lowlevel would route it.
//
// The shim counts requests so the big_writes ablation can quantify the
// request amplification the paper's option avoids.
#pragma once

#include <atomic>
#include <memory>

#include "crfs/config.h"
#include "crfs/crfs.h"

namespace crfs {

class FuseShim {
 public:
  /// Wraps a mounted CRFS with FUSE request semantics.
  FuseShim(Crfs& fs, FuseOptions opts) : fs_(fs), opts_(opts) {}

  Result<Crfs::FileHandle> open(const std::string& path, OpenFlags flags) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    return fs_.open(path, flags);
  }

  /// Splits into <= max_write kernel requests, forwarding each to CRFS.
  Status write(Crfs::FileHandle h, std::span<const std::byte> data, std::uint64_t offset) {
    // One span per application write; the per-request "write" spans it
    // encloses make FUSE's request amplification visible in the trace.
    obs::TraceSpan span(fs_.trace(), "fuse_write");
    const std::size_t max_req = opts_.max_write();
    while (!data.empty()) {
      const std::size_t n = data.size() < max_req ? data.size() : max_req;
      requests_.fetch_add(1, std::memory_order_relaxed);
      CRFS_RETURN_IF_ERROR(fs_.write(h, data.first(n), offset));
      data = data.subspan(n);
      offset += n;
    }
    return {};
  }

  /// Reads are split by the kernel as well (max_read ~ max_write here).
  Result<std::size_t> read(Crfs::FileHandle h, std::span<std::byte> data, std::uint64_t offset) {
    const std::size_t max_req = opts_.max_write();
    std::size_t total = 0;
    while (total < data.size()) {
      const std::size_t n = std::min(max_req, data.size() - total);
      requests_.fetch_add(1, std::memory_order_relaxed);
      auto r = fs_.read(h, data.subspan(total, n), offset + total);
      if (!r.ok()) return r.error();
      total += r.value();
      if (r.value() < n) break;  // EOF
    }
    return total;
  }

  Status fsync(Crfs::FileHandle h) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    return fs_.fsync(h);
  }

  Status close(Crfs::FileHandle h) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    return fs_.close(h);
  }

  Crfs& fs() { return fs_; }
  const FuseOptions& options() const { return opts_; }

  /// Total kernel requests this shim has routed (ablation A2 metric).
  std::uint64_t requests_routed() const { return requests_.load(); }

 private:
  Crfs& fs_;
  FuseOptions opts_;
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace crfs
