// Mount-option string parsing: "chunk=4M,pool=16M,threads=4,big_writes".
//
// The real CRFS is configured through mount options (`-o` on the fuse
// command line); tools and scripts here use the same convention so a
// deployment can keep its tuning in one string.
#pragma once

#include <string_view>

#include "crfs/config.h"

namespace crfs {

/// Parsed mount options: the CRFS Config plus FUSE options.
struct MountOptions {
  Config config;
  FuseOptions fuse;
};

/// Parses a comma-separated option list. Recognised keys:
///   chunk=<size>        aggregation chunk size          (default 4M)
///   pool=<size>         buffer pool size                (default 16M)
///   threads=<n>         IO thread count                 (default 4)
///   pool_shards=<n>     buffer-pool shard count, 0=auto (default 0)
///   io_batch=<n>        chunks per IO dequeue, 1=off    (default 8)
///   io_engine=<e>       backend submission engine: sync (blocking
///                       pwrite/pwritev) or uring (raw io_uring with
///                       runtime detection, silent fallback to sync)
///                                                       (default sync)
///   uring_depth=<n>     per-worker ring depth, io_engine=uring only
///                                                       (default 64)
///   bypass              large-write copy bypass         (default on)
///   no_bypass           always aggregate through the buffer pool
///   big_writes          128 KB FUSE requests            (default on)
///   no_big_writes       4 KB FUSE requests
///   flush_before_read   reads see buffered data         (default on)
///   paper_reads         paper-faithful read passthrough (no flush)
///   trace               capture span events for Chrome-trace export
///   no_trace            counters/histograms only        (default)
///   epochs              checkpoint-epoch attribution    (default on)
///   no_epochs           no epoch ledger / attribution
///   epoch_gap_ms=<n>    open/close quiet gap that rotates an automatic
///                       epoch                           (default 500)
///   epoch_ledger=<n>    finished EpochRecords kept      (default 64)
///   postmortem=<path>   enable the flight recorder; dump the
///                       pre-rendered postmortem to <path> on a fatal
///                       signal or error burst
///   postmortem_refresh_ms=<n>
///                       min interval between IO-completion-driven
///                       postmortem refreshes, 0=every completion
///                                                       (default 50)
///   sample_ms=<n>       live sampler period, 0=off      (default 0)
///   sample_ring=<n>     sampler frames kept             (default 600)
///   slow_pwrite_ms=<n>  health threshold: pwrite p99 above this fires
///                       a slow_pwrite event
///   controller=on|off   feedback controller on the sampler tick path
///                       (requires sample_ms > 0)        (default off)
///   no_controller       same as controller=off
///   tune_pool_max=<size>
///                       runtime pool-growth ceiling for the knob
///                       plane, 0=auto (4x pool)         (default 0)
///   tune_io_batch_max=<n>
///                       runtime io_batch ceiling        (default 256)
/// Sizes accept K/M/G suffixes. Unknown keys, malformed values, or a
/// configuration that fails Config::validate() return an error.
Result<MountOptions> parse_mount_options(std::string_view text);

/// Renders options back to the canonical string form.
std::string format_mount_options(const MountOptions& options);

}  // namespace crfs
